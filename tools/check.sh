#!/usr/bin/env bash
# Sanitizer gate for the lock-free data path: builds the msg + flow
# test suites (plus the util and driver suites their primitives live
# under) with -fsanitize and runs them under ctest.  The publish path
# takes no locks under HwmPolicy::kDrop, so it must stay TSan-clean;
# the capture front end (table-driven Toeplitz, burst staging, the
# fixed-offset pre-parse probe) does raw byte-offset reads, so it must
# stay UBSan-clean too.
#
# The `metrics` mode gates the telemetry layer instead: it builds the
# obs + core suites under TSan (the snapshot thread reads every shard
# while workers write them, so any missing atomic shows up here), runs
# them, and then asserts end-to-end that a metrics-enabled pipeline run
# self-ingests "ruru.self.*" series into its own TSDB.
#
# The `enrich` mode gates the allocation-free enrichment fast path: the
# geo + analytics suites (interner arena, SoA range DBs with untrusted
# loaders, set-associative flat cache, batch enrichment) built with ASan
# AND UBSan together — the path is raw-pointer-heavy by design, so both
# heap misuse and UB must abort the run.
#
# The `flow` mode gates the SIMD group-probed flow table: the flow
# suites (control-byte kernels, probe core, batched tracking, fuzz
# oracles, zero-alloc burst proof) under ASan+UBSan — the probe core
# indexes raw control bytes and unions SIMD masks, so both heap misuse
# and UB must abort — plus a TSan pass over the single-writer contract:
# contains()/stats()/size() racing the data path from the metrics
# snapshot thread.
#
# The `scale` mode gates the multi-core scale-out (pinned topology,
# sharded injection, fan-in lanes): the msg + driver + core suites
# under TSan — per-lane publish is single-producer by contract and the
# sharded producer lanes feed per-queue SPSC rings, so any accidental
# sharing is a data race this build must catch — then the determinism
# invariant run un-sanitized: the sharded pipeline must emit bit-
# identical samples at 1, 2, and 4 workers.
#
# The `tsdb` mode gates the compressed storage engine: the whole tsdb
# suite (Gorilla bit codec, open-addressed series index, WAL framing
# fed truncated and byte-flipped logs, oracle-parity queries) under
# ASan+UBSan — the codec shifts raw 64-bit lanes and the WAL parses
# hostile bytes, so both heap misuse and UB must abort — plus a TSan
# pass over the sharded engine's reader/writer decoupling (concurrent
# ingest, lock-free sealed-chunk scans, retention rewrites).
#
# The `inflow` mode gates the in-flow RTT kernel: the timestamp-ring
# matcher suites (shared SoA note/match/consume kernel, tracker
# matching semantics, offline-pping fuzz oracles, the zero-allocation
# steady-state proof) under ASan+UBSan — the probe reads TSval/TSecr at
# raw byte offsets and the rings index SoA lanes with masked heads, so
# both heap misuse and UB must abort — plus a TSan pass over the worker
# path (threaded queue workers running the kernel while the snapshot
# thread reads stats) and the explicit bit-identity invariant: the
# handshake sample stream must be unchanged with the kernel on or off.
#
# The `trace` mode gates the flight recorder: the obs + core suites
# under TSan — trace rings are written by pinned workers while the
# watchdog snapshots them live, and the TSC clock calibrates once under
# a Meyers singleton, so any unsynchronized access shows up here — then
# the observer-effect invariant un-sanitized: the same replay traced at
# 1-in-64 must emit a sample stream bit-identical to the untraced run.
#
# The `worker` mode gates the vectorized poll loop: the lane pipeline,
# the scalar-vs-vector fuzz oracles and the zero-alloc proof under
# ASan+UBSan (the SoA descriptor indexes raw lanes and the masked
# classify unions SIMD masks, so both heap misuse and UB must abort), a
# TSan pass over the multi-worker path, and a fig2 regression smoke
# that fails if the vector loop's Transpacific throughput drops below
# 0.95x of the value recorded in bench/BENCH_worker.json.
#
# Usage: tools/check.sh [thread|address|undefined|metrics|enrich|flow|scale|tsdb|trace|inflow|worker]   (default: thread)
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  thread|address|undefined|metrics|enrich|flow|scale|tsdb|trace|inflow|worker) ;;
  *) echo "usage: $0 [thread|address|undefined|metrics|enrich|flow|scale|tsdb|trace|inflow|worker]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

if [ "$SAN" = "metrics" ]; then
  # Telemetry gate: obs registry + snapshot thread + pipeline wiring
  # under TSan.  test_obs carries the dedicated concurrency tests
  # (ConcurrentIncrementAndSnapshotIsRaceFreeAndExact et al.); test_core
  # runs full metrics-enabled pipelines with the snapshot thread live.
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_obs test_core
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'Metrics|Snapshot|Prometheus|JsonLines|SelfIngest|Pipeline')

  # End-to-end self-ingest assertion: a metrics-enabled run must land
  # ruru.self.* series in the TSDB (the test fails otherwise, so its
  # passing IS the assertion — run it by name to make the gate explicit).
  "$BUILD/tests/test_core" \
    --gtest_filter='PipelineMetricsTest.SelfIngestLandsSeriesInTheTsdb'
  echo "metrics gate OK: snapshot thread TSan-clean, self-ingest series present"
  exit 0
fi

if [ "$SAN" = "enrich" ]; then
  # Enrichment gate: geo DB loaders fed truncated/hostile files, the
  # interner's lock-free read path, flat-cache eviction and the
  # zero-allocation batch proof, all under ASan+UBSan in one build.
  BUILD="$ROOT/build-enrich"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=address+undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_geo test_analytics
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'GeoDb|AsDb|Geo6Db|World|StringInterner|FlatCache|DbLoaderRobustness|Enricher|ZeroAlloc|Aggregator|SampleFilter|FilterChain|Pool')
  echo "enrich gate OK: fast path ASan+UBSan-clean"
  exit 0
fi

if [ "$SAN" = "flow" ]; then
  # Flow-table gate, part 1: every probe path under ASan+UBSan in one
  # build — kernel parity, collision saturation, stale reclamation,
  # scalar-vs-SIMD tracker oracles, and the counting-allocator proof
  # that process_burst stays allocation-free.
  BUILD="$ROOT/build-flow"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=address+undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_flow test_analytics
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'GroupProbe|FlowTable|HandshakeTracker|TrackerFuzz|TrackerOracle|Worker|ZeroAlloc')

  # Part 2: the single-writer/many-reader contract under TSan.  The
  # metrics snapshot thread reads stats()/size() (StatCells) while the
  # owning worker mutates the table; FlowTableConcurrency drives exactly
  # that race.
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_flow
  "$BUILD/tests/test_flow" --gtest_filter='FlowTableConcurrency.*'
  echo "flow gate OK: probe paths ASan+UBSan-clean, stats snapshot TSan-clean"
  exit 0
fi

if [ "$SAN" = "scale" ]; then
  # Scale-out gate, part 1: the concurrency surface under TSan.  Fan-in
  # lanes (one producer per worker), sharded injection into per-queue
  # SPSC rings, CPU pinning bookkeeping, and the full sharded pipelines
  # the Scaling suite drives end to end.
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_msg test_driver test_core
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'FanIn|PubSub|BusQueue|Nic|LcoreLauncher|Scaling|Pipeline')

  # Part 2: the determinism invariant, run un-sanitized so timing is
  # representative.  ShardedNWorkersBitIdenticalTo1Worker compares the
  # sorted sample stream at 2 and 4 workers against 1 worker sample for
  # sample; FanInConservesEverySample checks delivered + dropped ==
  # published at every N.  Run them by name so the gate is explicit.
  BUILD="$ROOT/build"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target test_core
  "$BUILD/tests/test_core" \
    --gtest_filter='Scaling.ShardedNWorkersBitIdenticalTo1Worker:Scaling.FanInConservesEverySample'
  echo "scale gate OK: lanes TSan-clean, sharded output bit-identical at 1/2/4 workers"
  exit 0
fi

if [ "$SAN" = "tsdb" ]; then
  # Storage-engine gate, part 1: codec + index + WAL + parity queries
  # under ASan+UBSan in one build.  The chunk codec packs/unpacks raw
  # 64-bit lanes with data-dependent shifts, the series index probes a
  # flat open-addressed table, and the WAL recovery tests feed it logs
  # cut at every byte offset and flipped at every byte — exactly the
  # inputs where heap misuse or UB would hide.
  BUILD="$ROOT/build-tsdb"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=address+undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_tsdb
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'BitStream|ChunkCodec|ChunkWriter|SeriesIndex|Engine|Wal|Tsdb|Downsample')

  # Part 2: the reader/writer decoupling under TSan.  Shard-local
  # append locks, lock-free sealed-chunk reads via shared_ptr snapshots
  # and retention rewriting chunks mid-scan are the claims; the
  # EngineConcurrency suite drives all of them at once.
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_tsdb
  "$BUILD/tests/test_tsdb" --gtest_filter='EngineConcurrency.*'
  echo "tsdb gate OK: codec/index/WAL ASan+UBSan-clean, sharded engine TSan-clean"
  exit 0
fi

if [ "$SAN" = "inflow" ]; then
  # In-flow RTT gate, part 1: the matcher under ASan+UBSan in one
  # build.  TsRing unit semantics (note/match/consume, retransmission,
  # wraparound, eviction order), tracker matching + rate limiting, the
  # fuzz oracles replaying scenario traffic against offline pping
  # bit-for-bit, classic pping itself (the shared kernel's other
  # caller), and the counting-allocator proof that the established-flow
  # steady state never allocates.
  BUILD="$ROOT/build-flow"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=address+undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_flow test_baseline test_analytics test_core
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'TsRing|Inflow|Pping|ZeroAlloc|HandshakeTracker')

  # Part 2: the worker path under TSan.  InflowPipeline runs threaded
  # queue workers with the kernel enabled while the metrics snapshot
  # thread reads tracker stats; any unsynchronized counter or ring
  # access in the fast path shows up here.  Close with the explicit
  # bit-identity invariant: handshake samples must not change when the
  # kernel is switched on.
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_flow test_core
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" -R 'Inflow|Worker')
  "$BUILD/tests/test_flow" \
    --gtest_filter='InflowWorker.HandshakeSamplesBitIdenticalWithKernelOnOrOff'
  echo "inflow gate OK: matcher ASan+UBSan-clean, worker path TSan-clean, handshake stream bit-identical"
  exit 0
fi

if [ "$SAN" = "worker" ]; then
  # Vector-loop gate, part 1: the lane pipeline under ASan+UBSan in one
  # build.  The scalar-vs-vector fuzz oracles (identical samples AND
  # identical stats across random bursts), the mixed-burst
  # handshake-completes-mid-burst ordering test, the masked-eq
  # scalar/SIMD twins, and the counting-allocator proof that the vector
  # poll loop's steady state never allocates.
  BUILD="$ROOT/build-flow"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=address+undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_flow test_analytics
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'WorkerVector|Worker|GroupProbe|ZeroAlloc|Inflow')

  # Part 2: the multi-worker path under TSan — threaded queue workers
  # running the vector loop while the snapshot thread reads stats.
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_flow test_core
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" -R 'Worker|Scaling|Inflow')

  # Part 3: the fig2 regression smoke, un-sanitized so timing is
  # representative.  The vector loop's Transpacific throughput must hold
  # >= 0.95x the pps recorded in bench/BENCH_worker.json (gate_pps).
  BUILD="$ROOT/build"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target bench_worker_pipeline
  GATE_PPS="$(grep -o '"gate_pps"[^,}]*' "$ROOT/bench/BENCH_worker.json" | head -1 | awk -F: '{gsub(/[^0-9.eE+]/,"",$2); print $2}')"
  [ -n "$GATE_PPS" ] || { echo "worker gate: no gate_pps in bench/BENCH_worker.json" >&2; exit 1; }
  MEASURED="$("$BUILD/bench/bench_worker_pipeline" \
      --benchmark_filter='BM_WorkerTranspacific/vector:1' \
      --benchmark_min_time=0.2 --benchmark_format=json 2>/dev/null \
    | grep -o '"items_per_second": [0-9.e+]*' | head -1 | awk '{print $2}')"
  [ -n "$MEASURED" ] || { echo "worker gate: smoke bench produced no throughput" >&2; exit 1; }
  awk -v m="$MEASURED" -v g="$GATE_PPS" 'BEGIN {
    ratio = m / g;
    printf "worker smoke: %.0f pps vs recorded %.0f pps (%.2fx, floor 0.95x)\n", m, g, ratio;
    exit (ratio >= 0.95) ? 0 : 1;
  }' || { echo "worker gate FAILED: fig2 smoke below 0.95x of recorded throughput" >&2; exit 1; }
  echo "worker gate OK: lane loop ASan+UBSan-clean, multi-worker TSan-clean, fig2 smoke held"
  exit 0
fi

if [ "$SAN" = "trace" ]; then
  # Flight-recorder gate, part 1: the tracing concurrency surface under
  # TSan.  Ring writers vs snapshot readers, the locked multi-producer
  # sink ring, watchdog polling live stage counters, the TSC clock
  # singleton, and full traced pipelines end to end.
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS" --target test_obs test_core
  (cd "$BUILD" && ctest --output-on-failure -j"$JOBS" \
    -R 'Trace|Tracer|TscClock|Watchdog|PipelineTrace|Snapshot')

  # Part 2: the observer-effect invariant, un-sanitized so timing is
  # representative.  TracingDoesNotChangeMeasurements replays the same
  # scenario untraced and at 1-in-64 and compares the sorted sample
  # stream fact for fact — run it by name so the gate is explicit.
  BUILD="$ROOT/build"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target test_core
  "$BUILD/tests/test_core" \
    --gtest_filter='PipelineTrace.TracingDoesNotChangeMeasurements:PipelineTrace.SampledFlowsLeaveConnectedSpanChains'
  echo "trace gate OK: rings/watchdog TSan-clean, traced output bit-identical at 1-in-64"
  exit 0
fi

BUILD="$ROOT/build-$SAN"

cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE="$SAN" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$JOBS" --target test_msg test_flow test_util test_driver

# Only the built suites are registered; the concurrency-heavy msg/flow
# tests are the point of this gate.
(cd "$BUILD" && ctest --output-on-failure -j"$JOBS" -E 'NOT_BUILT')
