#!/usr/bin/env bash
# Sanitizer gate for the lock-free data path: builds the msg + flow
# test suites (plus the util and driver suites their primitives live
# under) with -fsanitize and runs them under ctest.  The publish path
# takes no locks under HwmPolicy::kDrop, so it must stay TSan-clean;
# the capture front end (table-driven Toeplitz, burst staging, the
# fixed-offset pre-parse probe) does raw byte-offset reads, so it must
# stay UBSan-clean too.
#
# Usage: tools/check.sh [thread|address|undefined]   (default: thread)
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  thread|address|undefined) ;;
  *) echo "usage: $0 [thread|address|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"
JOBS="$(nproc)"

cmake -B "$BUILD" -S "$ROOT" -DRURU_SANITIZE="$SAN" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$JOBS" --target test_msg test_flow test_util test_driver

# Only the built suites are registered; the concurrency-heavy msg/flow
# tests are the point of this gate.
(cd "$BUILD" && ctest --output-on-failure -j"$JOBS" -E 'NOT_BUILT')
