// E7 / §2 storage — the InfluxDB role: per-sample ingest with geo/AS
// tags, then Grafana's queries (min/max/median/mean per interval,
// grouped by location/AS).
//
// Reports ingest rate, windowed-stats query latency over 1M points, and
// group-by query latency, plus WAL append overhead.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "tsdb/tsdb.hpp"
#include "tsdb/wal.hpp"
#include "util/random.hpp"

namespace {

using namespace ruru;

TagSet make_tags(Pcg32& rng) {
  static const char* kCities[] = {"Auckland", "Wellington", "Christchurch", "Dunedin", "Hamilton"};
  static const char* kDest[] = {"Los Angeles", "San Jose", "Seattle", "London", "Tokyo",
                                "Singapore", "Sydney", "Frankfurt"};
  TagSet t;
  t.add("src_city", kCities[rng.bounded(5)]);
  t.add("dst_city", kDest[rng.bounded(8)]);
  t.add("dst_as", std::to_string(1000 + rng.bounded(8)));
  return t;
}

void BM_TsdbIngest(benchmark::State& state) {
  Pcg32 rng(0xDB);
  TimeSeriesDb db;
  std::int64_t t = 0;
  for (auto _ : state) {
    db.write("total_ms", make_tags(rng), Timestamp::from_us(t += 100), rng.uniform(80.0, 300.0));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["series"] = static_cast<double>(db.series_count());
}
BENCHMARK(BM_TsdbIngest);

void BM_TsdbIngestWithWal(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("bench_wal_" + std::to_string(::getpid()) + ".wal"))
          .string();
  auto wal = Wal::create(path);
  if (!wal.ok()) {
    state.SkipWithError("wal create failed");
    return;
  }
  Pcg32 rng(0xDB);
  TimeSeriesDb db;
  db.attach_wal(&wal.value());
  std::int64_t t = 0;
  for (auto _ : state) {
    db.write("total_ms", make_tags(rng), Timestamp::from_us(t += 100), rng.uniform(80.0, 300.0));
  }
  wal.value().sync();
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_TsdbIngestWithWal);

class LoadedDb {
 public:
  static const TimeSeriesDb& instance() {
    static const LoadedDb db;
    return db.db_;
  }

 private:
  LoadedDb() {
    Pcg32 rng(0xDB2);
    for (int i = 0; i < 1'000'000; ++i) {
      db_.write("total_ms", make_tags(rng), Timestamp::from_ms(i / 10),
                rng.uniform(80.0, 300.0));
    }
  }
  TimeSeriesDb db_;
};

// The Grafana panel query: stats over a time interval.
void BM_TsdbAggregateQuery(benchmark::State& state) {
  const auto& db = LoadedDb::instance();
  const auto span_ms = state.range(0);
  for (auto _ : state) {
    const auto r = db.aggregate("total_ms", TagSet{}, Timestamp::from_ms(1'000),
                                Timestamp::from_ms(1'000 + span_ms));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbAggregateQuery)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->ArgName("span_ms")
    ->Unit(benchmark::kMicrosecond);

// The dashboard time-series: windowed stats across the run.
void BM_TsdbWindowQuery(benchmark::State& state) {
  const auto& db = LoadedDb::instance();
  for (auto _ : state) {
    const auto r = db.window_aggregate("total_ms", TagSet{}, Timestamp{},
                                       Timestamp::from_ms(100'000),
                                       Duration::from_sec(static_cast<double>(state.range(0))));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbWindowQuery)->Arg(1)->Arg(10)->ArgName("window_s")->Unit(benchmark::kMillisecond);

// "InfluxDB takes care of indexing data on geo-location and AS": the
// group-by query behind per-location panels.
void BM_TsdbGroupBy(benchmark::State& state) {
  const auto& db = LoadedDb::instance();
  const char* key = state.range(0) == 0 ? "src_city" : "dst_as";
  for (auto _ : state) {
    const auto r = db.group_by("total_ms", key, TagSet{}, Timestamp{}, Timestamp::from_ms(100'000));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbGroupBy)->Arg(0)->Arg(1)->ArgName("key")->Unit(benchmark::kMillisecond);

// Retention enforcement cost.
void BM_TsdbRetention(benchmark::State& state) {
  Pcg32 rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    TimeSeriesDb db;
    for (int i = 0; i < 100'000; ++i) {
      db.write("m", make_tags(rng), Timestamp::from_ms(i), 1.0);
    }
    state.ResumeTiming();
    const auto dropped = db.enforce_retention(Timestamp::from_ms(100'000),
                                              Duration::from_sec(50.0));
    benchmark::DoNotOptimize(dropped);
  }
}
BENCHMARK(BM_TsdbRetention)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
