// Flight-recorder overhead (ISSUE 8 tentpole bench): what does tracing
// cost the pipeline it observes?
//
// Three angles:
//
//  * BM_TraceOverheadPipeline — the full pipeline over the same
//    pre-seeded trans-Pacific replay at sample_n = 0 (tracing off),
//    64 (the shipping 1-in-64 rate) and 1 (every flow traced — the
//    worst case).  The acceptance bar is the off -> 64 delta staying
//    within noise of a few percent; the run also asserts the sample
//    stream is bit-identical across rates (`identical_to_untraced`),
//    because a recorder that perturbs its subject is lying.
//
//  * BM_TraceEmit — the raw ring: one emit is three relaxed stores and
//    a release store, so this should sit in the very low nanoseconds.
//    The locked variant is benchmarked next to it to justify keeping
//    the mutex path confined to the one multi-producer ring.
//
//  * BM_TraceSnapshotWhileWriting — the reader side: snapshotting a
//    ring being hammered by a writer, i.e. what a watchdog dump costs
//    while the pipeline is live.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "obs/trace.hpp"
#include "obs/tsc_clock.hpp"

namespace {

using namespace ruru;

// --- full pipeline: traced vs untraced ---

void BM_TraceOverheadPipeline(benchmark::State& state) {
  const auto sample_n = static_cast<std::uint32_t>(state.range(0));
  static const World world = ruru::bench::scenario_world();
  // Filled by the sample_n=0 run (registered first); traced runs compare.
  static std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>>
      ref_samples;

  std::uint64_t frames = 0;
  std::uint64_t samples = 0;
  std::uint64_t events = 0;
  double inject_seconds = 0.0;
  bool identical = true;
  for (auto _ : state) {
    PipelineConfig cfg;
    cfg.num_queues = 2;
    cfg.queue_depth = 16384;
    cfg.enrichment_threads = 1;
    cfg.trace_sample_n = sample_n;
    cfg.trace_ring_capacity = 1 << 15;
    RuruPipeline pipeline(cfg, world.geo, world.as);

    std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>> facts;
    std::mutex mu;
    pipeline.add_enriched_sink([&](const EnrichedSample& s) {
      std::lock_guard lock(mu);
      facts.emplace_back(s.started_at.ns, s.completed_at.ns, s.internal.ns, s.external.ns);
    });

    pipeline.start();
    auto model = scenarios::transpacific(0xF162, 4000.0, Duration::from_sec(5.0));
    const ReplayStats rs = replay_scenario_sharded(pipeline, model, /*retry_drops=*/true);
    pipeline.finish();

    std::sort(facts.begin(), facts.end());
    if (sample_n == 0) {
      ref_samples = facts;
    } else if (!ref_samples.empty()) {
      identical = identical && facts == ref_samples;
    }
    samples += pipeline.summary().tracker.samples_emitted;
    events += pipeline.tracer().events_emitted();
    frames += rs.frames;
    inject_seconds += rs.wall_seconds;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.counters["inject_pps"] =
      inject_seconds > 0 ? static_cast<double>(frames) / inject_seconds : 0.0;
  state.counters["samples"] =
      static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["trace_events"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
  state.counters["identical_to_untraced"] = identical ? 1.0 : 0.0;
}
BENCHMARK(BM_TraceOverheadPipeline)
    ->Arg(0)
    ->Arg(64)
    ->Arg(1)
    ->ArgName("sample_n")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- raw emit cost ---

void BM_TraceEmit(benchmark::State& state) {
  obs::TraceRing ring(4096);
  obs::TraceHandle handle(&ring);
  std::uint32_t i = 0;
  for (auto _ : state) {
    handle.span(obs::TraceStage::kWorker, i | 1u, static_cast<std::int64_t>(i), 100, i, 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["emitted"] = static_cast<double>(ring.emitted());
}
BENCHMARK(BM_TraceEmit);

void BM_TraceEmitLocked(benchmark::State& state) {
  obs::TraceRing ring(4096);
  obs::TraceHandle handle(&ring, /*shared=*/true);
  std::uint32_t i = 0;
  for (auto _ : state) {
    handle.span(obs::TraceStage::kTsdb, i | 1u, static_cast<std::int64_t>(i), 100, i, 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitLocked);

void BM_TraceInertHandle(benchmark::State& state) {
  // The untraced hot path: a default-constructed handle.  This must
  // optimize to (nearly) nothing — it is what every packet pays when
  // tracing is off.
  obs::TraceHandle handle;
  std::uint32_t i = 0;
  for (auto _ : state) {
    handle.span(obs::TraceStage::kWorker, i, static_cast<std::int64_t>(i), 100);
    benchmark::DoNotOptimize(i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInertHandle);

void BM_TscClockNow(benchmark::State& state) {
  const obs::TscClock& clock = obs::trace_clock();
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.now_ns());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tsc_usable"] = clock.calibration().usable ? 1.0 : 0.0;
}
BENCHMARK(BM_TscClockNow);

// --- snapshot under fire ---

void BM_TraceSnapshotWhileWriting(benchmark::State& state) {
  obs::TraceRing ring(4096);
  obs::TraceHandle handle(&ring);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      handle.instant(obs::TraceStage::kWorker, i | 1u, static_cast<std::int64_t>(i), i, 0);
      ++i;
    }
  });
  std::vector<obs::TraceEvent> out;
  std::uint64_t events = 0;
  for (auto _ : state) {
    ring.snapshot(out);
    events += out.size();
  }
  stop.store(true);
  writer.join();
  state.SetItemsProcessed(state.iterations());
  state.counters["events_per_snapshot"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TraceSnapshotWhileWriting)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
