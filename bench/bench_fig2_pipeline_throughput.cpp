// E2 / Figure 2 — pipeline throughput vs RSS queue count.
//
// Paper claim: symmetric RSS over multiple DPDK queues with per-core
// processing threads lets Ruru tap a 10 Gbit/s link.  This bench blasts
// a pre-generated trans-Pacific trace through SimNic + per-queue workers
// and reports sustained packet and bit rates as queues scale 1..8, plus
// a frame-size sweep (min-size vs MTU frames).  Expected shape: rates
// high enough for 10G-class traffic; scaling limited by available cores
// (this reproduction runs on however many cores the host has).

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "driver/eal.hpp"
#include "flow/worker.hpp"
#include "msg/codec.hpp"
#include "msg/pubsub.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace ruru;

const std::vector<TimedFrame>& trace() {
  static const std::vector<TimedFrame> frames = [] {
    auto model = scenarios::transpacific(0xF162, 4000.0, Duration::from_sec(5.0));
    return ruru::bench::pregenerate(model);
  }();
  return frames;
}

void BM_PipelineThroughputVsQueues(benchmark::State& state) {
  const auto num_queues = static_cast<std::uint16_t>(state.range(0));
  const auto& frames = trace();

  std::uint64_t total_bytes = 0;
  std::uint64_t samples = 0;
  std::uint64_t drops = 0;
  for (auto _ : state) {
    Mempool pool(1 << 16, 2048);
    NicConfig cfg;
    cfg.num_queues = num_queues;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);

    std::vector<std::unique_ptr<QueueWorker>> workers;
    std::atomic<std::uint64_t> sample_count{0};
    for (std::uint16_t q = 0; q < num_queues; ++q) {
      workers.push_back(std::make_unique<QueueWorker>(
          nic, q, 1 << 14,
          [&sample_count](const LatencySample&) {
            sample_count.fetch_add(1, std::memory_order_relaxed);
          }));
    }
    LcoreLauncher lcores;
    for (auto& w : workers) {
      QueueWorker* wp = w.get();
      lcores.launch([wp](std::uint32_t, const std::atomic<bool>& stop) { wp->run(stop); });
    }

    std::uint64_t bytes = 0;
    for (const auto& f : frames) {
      while (!nic.inject(f.frame, f.timestamp)) {
        // NIC full: spin until a worker drains (lossless for accuracy).
      }
      bytes += f.frame.size();
    }
    lcores.stop_and_join();
    total_bytes += bytes;
    samples += sample_count.load();
    drops += nic.stats().dropped_queue_full + nic.stats().dropped_no_mbuf;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(total_bytes));
  state.counters["gbps"] = benchmark::Counter(static_cast<double>(total_bytes) * 8.0,
                                              benchmark::Counter::kIsRate,
                                              benchmark::Counter::kIs1000);
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  state.counters["handshakes"] = static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["drops"] = static_cast<double>(drops);
}
BENCHMARK(BM_PipelineThroughputVsQueues)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("queues")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Injection-batching sweep at fixed queue count: burst=1 is the seed's
// per-frame inject behaviour, burst=32 stages mbufs per queue and
// publishes each queue's run with one release store. Items/sec is
// packets/sec through the capture front end; `samples_per_sec` reports
// the measurement rate alongside it. Failed frames retry individually
// (lossless), so handshake counts stay comparable across burst sizes.
void BM_PipelineThroughputVsBurst(benchmark::State& state) {
  const auto burst_size = static_cast<std::size_t>(state.range(0));
  constexpr std::uint16_t kQueues = 4;
  const auto& frames = trace();

  std::uint64_t samples = 0;
  std::uint64_t drops = 0;
  for (auto _ : state) {
    Mempool pool(1 << 16, 2048);
    NicConfig cfg;
    cfg.num_queues = kQueues;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);

    std::vector<std::unique_ptr<QueueWorker>> workers;
    std::atomic<std::uint64_t> sample_count{0};
    for (std::uint16_t q = 0; q < kQueues; ++q) {
      workers.push_back(std::make_unique<QueueWorker>(
          nic, q, 1 << 14,
          [&sample_count](const LatencySample&) {
            sample_count.fetch_add(1, std::memory_order_relaxed);
          }));
    }
    LcoreLauncher lcores;
    for (auto& w : workers) {
      QueueWorker* wp = w.get();
      lcores.launch([wp](std::uint32_t, const std::atomic<bool>& stop) { wp->run(stop); });
    }

    std::vector<RxFrame> burst;
    burst.reserve(burst_size);
    const auto queued = std::make_unique<bool[]>(burst_size);
    const auto flush = [&] {
      if (burst.empty()) return;
      nic.inject_burst(burst, queued.get());
      for (std::size_t i = 0; i < burst.size(); ++i) {
        while (!queued[i] && !nic.inject(burst[i].data, burst[i].rx_time)) {
          // NIC full: spin until a worker drains (lossless for accuracy).
        }
      }
      burst.clear();
    };
    for (const auto& f : frames) {
      burst.push_back({f.frame, f.timestamp});
      if (burst.size() == burst_size) flush();
    }
    flush();
    lcores.stop_and_join();
    samples += sample_count.load();
    drops += nic.stats().dropped_queue_full + nic.stats().dropped_no_mbuf;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  state.counters["handshakes"] =
      static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["retried"] = static_cast<double>(drops);
}
BENCHMARK(BM_PipelineThroughputVsBurst)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->ArgName("burst")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Frame-size sweep: raw RX path cost for 64B-1500B frames (single queue,
// inline worker poll — isolates per-packet cost from thread scheduling).
void BM_RxPathVsFrameSize(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = Ipv4Address(10, 2, 0, 1);
  spec.src_port = 40'000;
  spec.dst_port = 443;
  spec.flags = TcpFlags::kAck;
  spec.seq = 1;
  spec.ack = 1;
  spec.payload_length = payload;
  const auto frame = build_tcp_frame(spec);

  Mempool pool(8192, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, pool);
  QueueWorker worker(nic, 0, 1 << 12, nullptr);

  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) nic.inject(frame, Timestamp::from_ns(++t));
    while (worker.poll_once() != 0) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetBytesProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(frame.size()));
  state.counters["frame_bytes"] = static_cast<double>(frame.size());
}
BENCHMARK(BM_RxPathVsFrameSize)
    ->Arg(0)      // 54B frame (min-ish)
    ->Arg(512)
    ->Arg(1446)   // 1500B frame
    ->ArgName("payload");

// Capture → bus → decode with the batched publish path, batch=1 (the
// seed's one-message-per-sample behaviour) vs batch=32. Reports
// samples/sec through the whole feed and proves sample conservation:
// every sample a worker emitted is either delivered or dropped at the
// HWM — never silently lost in the batching layer.
void BM_PipelineBusBatching(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  constexpr std::uint16_t kQueues = 2;
  const auto& frames = trace();

  std::uint64_t emitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t decoded_total = 0;
  bool conserved = true;
  for (auto _ : state) {
    Mempool pool(1 << 16, 2048);
    NicConfig cfg;
    cfg.num_queues = kQueues;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);

    PubSocket bus;
    auto sub = bus.subscribe(std::string(kLatencyTopic), 1 << 14);
    std::atomic<std::uint64_t> decoded_samples{0};
    std::thread consumer([&] {
      std::vector<LatencySample> decoded;
      decoded.reserve(kMaxLatencyBatch);
      while (const auto m = sub->recv()) {
        decoded.clear();
        if (m->frames.size() >= 2 && decode_latency_payload(m->frames[1], decoded)) {
          decoded_samples.fetch_add(decoded.size(), std::memory_order_relaxed);
        }
      }
    });

    std::vector<std::unique_ptr<QueueWorker>> workers;
    for (std::uint16_t q = 0; q < kQueues; ++q) {
      auto w = std::make_unique<QueueWorker>(nic, q, 1 << 14, nullptr);
      w->set_batch_sink(
          [&bus](std::span<const LatencySample> samples) {
            bus.publish(encode_latency_batch(samples), samples.size());
          },
          batch);
      workers.push_back(std::move(w));
    }
    LcoreLauncher lcores;
    for (auto& w : workers) {
      QueueWorker* wp = w.get();
      lcores.launch([wp](std::uint32_t, const std::atomic<bool>& stop) { wp->run(stop); });
    }

    for (const auto& f : frames) {
      while (!nic.inject(f.frame, f.timestamp)) {
      }
    }
    lcores.stop_and_join();
    bus.close_all();
    consumer.join();

    std::uint64_t iter_emitted = 0;
    for (const auto& w : workers) iter_emitted += w->stats().batched_samples;
    emitted += iter_emitted;
    delivered += sub->delivered();
    dropped += sub->dropped();
    decoded_total += decoded_samples.load();
    conserved = conserved && iter_emitted == sub->delivered() + sub->dropped() &&
                decoded_samples.load() == sub->delivered();
  }

  // Items are SAMPLES through the bus: comparable across batch sizes.
  state.SetItemsProcessed(static_cast<std::int64_t>(emitted));
  state.counters["samples"] = static_cast<double>(emitted) / static_cast<double>(state.iterations());
  state.counters["delivered"] = static_cast<double>(delivered);
  state.counters["hwm_dropped"] = static_cast<double>(dropped);
  state.counters["decoded"] = static_cast<double>(decoded_total);
  state.counters["conserved"] = conserved ? 1.0 : 0.0;
}
BENCHMARK(BM_PipelineBusBatching)
    ->Arg(1)
    ->Arg(32)
    ->ArgName("batch")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Instrumentation overhead: the full pipeline (capture → workers → bus
// → enrichment → sinks) with the telemetry layer off vs on.  "On" means
// the hot-path histograms record every poll/batch/enrich, every bus
// message is wall-clock stamped, transit is sampled 1-in-16, and the
// snapshot thread exports 4×/s.  Target: <2% drop in packets/sec.
void BM_FullPipelineMetricsOverhead(benchmark::State& state) {
  const bool metrics_on = state.range(0) != 0;
  const auto& frames = trace();
  static const World world = ruru::bench::scenario_world();

  std::uint64_t samples = 0;
  for (auto _ : state) {
    PipelineConfig cfg;
    cfg.num_queues = 4;
    cfg.queue_depth = 16384;
    cfg.enrichment_threads = 2;
    cfg.metrics_enabled = metrics_on;
    cfg.metrics_interval = Duration::from_ms(250);
    RuruPipeline pipeline(cfg, world.geo, world.as);
    pipeline.start();
    for (const auto& f : frames) {
      while (!pipeline.inject(f.frame, f.timestamp)) {
      }
    }
    pipeline.finish();
    samples += pipeline.summary().tracker.samples_emitted;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_FullPipelineMetricsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("metrics")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
