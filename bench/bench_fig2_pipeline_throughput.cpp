// E2 / Figure 2 — pipeline throughput vs RSS queue count.
//
// Paper claim: symmetric RSS over multiple DPDK queues with per-core
// processing threads lets Ruru tap a 10 Gbit/s link.  This bench blasts
// a pre-generated trans-Pacific trace through SimNic + per-queue workers
// and reports sustained packet and bit rates as queues scale 1..8, plus
// a frame-size sweep (min-size vs MTU frames).  Expected shape: rates
// high enough for 10G-class traffic; scaling limited by available cores
// (this reproduction runs on however many cores the host has).

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.hpp"
#include "driver/eal.hpp"
#include "flow/worker.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace ruru;

const std::vector<TimedFrame>& trace() {
  static const std::vector<TimedFrame> frames = [] {
    auto model = scenarios::transpacific(0xF162, 4000.0, Duration::from_sec(5.0));
    return ruru::bench::pregenerate(model);
  }();
  return frames;
}

void BM_PipelineThroughputVsQueues(benchmark::State& state) {
  const auto num_queues = static_cast<std::uint16_t>(state.range(0));
  const auto& frames = trace();

  std::uint64_t total_bytes = 0;
  std::uint64_t samples = 0;
  std::uint64_t drops = 0;
  for (auto _ : state) {
    Mempool pool(1 << 16, 2048);
    NicConfig cfg;
    cfg.num_queues = num_queues;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);

    std::vector<std::unique_ptr<QueueWorker>> workers;
    std::atomic<std::uint64_t> sample_count{0};
    for (std::uint16_t q = 0; q < num_queues; ++q) {
      workers.push_back(std::make_unique<QueueWorker>(
          nic, q, 1 << 14,
          [&sample_count](const LatencySample&) {
            sample_count.fetch_add(1, std::memory_order_relaxed);
          }));
    }
    LcoreLauncher lcores;
    for (auto& w : workers) {
      QueueWorker* wp = w.get();
      lcores.launch([wp](std::uint32_t, const std::atomic<bool>& stop) { wp->run(stop); });
    }

    std::uint64_t bytes = 0;
    for (const auto& f : frames) {
      while (!nic.inject(f.frame, f.timestamp)) {
        // NIC full: spin until a worker drains (lossless for accuracy).
      }
      bytes += f.frame.size();
    }
    lcores.stop_and_join();
    total_bytes += bytes;
    samples += sample_count.load();
    drops += nic.stats().dropped_queue_full + nic.stats().dropped_no_mbuf;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(total_bytes));
  state.counters["gbps"] = benchmark::Counter(static_cast<double>(total_bytes) * 8.0,
                                              benchmark::Counter::kIsRate,
                                              benchmark::Counter::kIs1000);
  state.counters["handshakes"] = static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["drops"] = static_cast<double>(drops);
}
BENCHMARK(BM_PipelineThroughputVsQueues)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("queues")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Frame-size sweep: raw RX path cost for 64B-1500B frames (single queue,
// inline worker poll — isolates per-packet cost from thread scheduling).
void BM_RxPathVsFrameSize(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = Ipv4Address(10, 2, 0, 1);
  spec.src_port = 40'000;
  spec.dst_port = 443;
  spec.flags = TcpFlags::kAck;
  spec.seq = 1;
  spec.ack = 1;
  spec.payload_length = payload;
  const auto frame = build_tcp_frame(spec);

  Mempool pool(8192, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, pool);
  QueueWorker worker(nic, 0, 1 << 12, nullptr);

  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) nic.inject(frame, Timestamp::from_ns(++t));
    while (worker.poll_once() != 0) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetBytesProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(frame.size()));
  state.counters["frame_bytes"] = static_cast<double>(frame.size());
}
BENCHMARK(BM_RxPathVsFrameSize)
    ->Arg(0)      // 54B frame (min-ish)
    ->Arg(512)
    ->Arg(1446)   // 1500B frame
    ->ArgName("payload");

}  // namespace

BENCHMARK_MAIN();
