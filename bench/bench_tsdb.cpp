// TSDB engine vs the mutex/std::map legacy store (ISSUE 7).
//
// Three questions, answered with manual-time runs so the concurrent
// parts measure wall clock, not per-thread CPU:
//  * ingest-while-querying: W writer threads stream route-shaped points
//    while one query thread runs window_aggregate scans back to back —
//    the legacy store serializes everything behind one mutex, the
//    engine's shards + lock-free sealed reads must not (target >= 5x);
//  * query latency under ingest: per-query p50/p99 sampled on the
//    query thread of the same run;
//  * bytes/point: storage_stats() on a monitoring-shaped workload
//    (1 s cadence, repeat-heavy gauge — the >= 8x claim) and on
//    scenario-replay-shaped handshake latencies (entropy-bound, so the
//    honest number is reported rather than 8x).
//
// Results land in bench/BENCH_tsdb.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "tsdb/query.hpp"
#include "tsdb/tsdb.hpp"
#include "util/random.hpp"

namespace {

using namespace ruru;

constexpr int kWriters = 4;
constexpr int kPointsPerWriter = 150'000;
constexpr std::int64_t kCadenceNs = 1'000'000;  // 1 ms between a writer's points

const char* const kSrc[] = {"Auckland", "Wellington", "Christchurch", "Dunedin", "Hamilton"};
const char* const kDst[] = {"Los Angeles", "San Jose", "Seattle", "London", "Tokyo",
                            "Singapore", "Sydney", "Frankfurt"};

TagSet route_tags(std::uint32_t route) {
  TagSet t;
  t.add("src_city", kSrc[route % 5]);
  t.add("dst_city", kDst[(route / 5) % 8]);
  t.add("dst_as", std::to_string(1000 + route % 8));
  return t;
}

struct QueryStats {
  std::uint64_t queries = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Runs the window_aggregate scan loop on the calling thread until
/// `stop`, sampling per-query latency.
template <typename Store>
QueryStats query_loop(const Store& store, const std::atomic<bool>& stop) {
  QueryStats out;
  std::vector<double> lat_ms;
  lat_ms.reserve(1 << 14);
  const Timestamp t0{0};
  const Timestamp t1{static_cast<std::int64_t>(kPointsPerWriter) * kCadenceNs};
  while (!stop.load(std::memory_order_acquire)) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        store.window_aggregate("total_ms", TagSet{}, t0, t1, Duration::from_ms(1000)));
    const auto end = std::chrono::steady_clock::now();
    lat_ms.push_back(std::chrono::duration<double, std::milli>(end - start).count());
    ++out.queries;
  }
  if (!lat_ms.empty()) {
    std::sort(lat_ms.begin(), lat_ms.end());
    out.p50_ms = lat_ms[lat_ms.size() / 2];
    out.p99_ms = lat_ms[std::min(lat_ms.size() - 1, lat_ms.size() * 99 / 100)];
  }
  return out;
}

/// One full ingest-while-querying run; returns elapsed seconds.
template <typename WriterFn, typename Store>
double run_concurrent(const Store& store, WriterFn writer, QueryStats& qstats) {
  std::atomic<bool> stop{false};
  QueryStats collected;
  std::thread query([&] { collected = query_loop(store, stop); });
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) writers.emplace_back(writer, w);
    for (auto& t : writers) t.join();
  }
  const auto end = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_release);
  query.join();
  qstats = collected;
  return std::chrono::duration<double>(end - start).count();
}

void report(benchmark::State& state, double seconds, const QueryStats& q) {
  state.SetIterationTime(seconds);
  state.counters["points_per_sec"] = benchmark::Counter(
      static_cast<double>(kWriters) * kPointsPerWriter / seconds);
  state.counters["queries"] = static_cast<double>(q.queries);
  state.counters["query_p50_ms"] = q.p50_ms;
  state.counters["query_p99_ms"] = q.p99_ms;
}

constexpr int kWarmupPoints = 100'000;

void BM_LegacyIngestWhileQuerying(benchmark::State& state) {
  for (auto _ : state) {
    TimeSeriesDb db;
    // Pre-load before the clock starts so every query scans a real
    // store: an empty-store scan returns in nanoseconds and would make
    // the latency percentiles (and the mutex contention) meaningless.
    {
      Pcg32 rng(0xBEEF);
      for (int i = 0; i < kWarmupPoints; ++i) {
        db.write("total_ms", route_tags(rng.bounded(40)),
                 Timestamp{static_cast<std::int64_t>(i % kPointsPerWriter) * kCadenceNs},
                 rng.uniform(80.0, 300.0));
      }
    }
    QueryStats q;
    const double secs = run_concurrent(
        db,
        [&db](int w) {
          // The legacy hot path: canonicalized tag strings + the global
          // mutex + std::map walk on every point.
          Pcg32 rng(static_cast<std::uint64_t>(w) + 1);
          for (int i = 0; i < kPointsPerWriter; ++i) {
            db.write("total_ms", route_tags(rng.bounded(40)),
                     Timestamp{static_cast<std::int64_t>(i) * kCadenceNs},
                     rng.uniform(80.0, 300.0));
          }
        },
        q);
    report(state, secs, q);
  }
}
BENCHMARK(BM_LegacyIngestWhileQuerying)->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_EngineIngestWhileQuerying(benchmark::State& state) {
  for (auto _ : state) {
    TsdbEngine db(TsdbOptions{8, 512, Duration::from_sec(600.0)});
    // Route cache, as the pipeline sink keeps one: resolve each of the
    // 40 routes once, then the per-point path is id-only appends.
    std::vector<SeriesId> routes;
    for (std::uint32_t r = 0; r < 40; ++r) routes.push_back(db.series("total_ms", route_tags(r)));
    {
      Pcg32 rng(0xBEEF);
      for (int i = 0; i < kWarmupPoints; ++i) {
        db.append(routes[rng.bounded(40)],
                  Timestamp{static_cast<std::int64_t>(i % kPointsPerWriter) * kCadenceNs},
                  rng.uniform(80.0, 300.0));
      }
    }
    QueryStats q;
    const double secs = run_concurrent(
        db,
        [&db, &routes](int w) {
          Pcg32 rng(static_cast<std::uint64_t>(w) + 1);
          for (int i = 0; i < kPointsPerWriter; ++i) {
            db.append(routes[rng.bounded(40)],
                      Timestamp{static_cast<std::int64_t>(i) * kCadenceNs},
                      rng.uniform(80.0, 300.0));
          }
        },
        q);
    report(state, secs, q);
  }
}
BENCHMARK(BM_EngineIngestWhileQuerying)->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_EngineIngestNoQueries(benchmark::State& state) {
  // Upper bound: the same sharded ingest with the query thread absent.
  for (auto _ : state) {
    TsdbEngine db(TsdbOptions{8, 512, Duration::from_sec(600.0)});
    std::vector<SeriesId> routes;
    for (std::uint32_t r = 0; r < 40; ++r) routes.push_back(db.series("total_ms", route_tags(r)));
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&db, &routes, w] {
        Pcg32 rng(static_cast<std::uint64_t>(w) + 1);
        for (int i = 0; i < kPointsPerWriter; ++i) {
          db.append(routes[rng.bounded(40)],
                    Timestamp{static_cast<std::int64_t>(i) * kCadenceNs},
                    rng.uniform(80.0, 300.0));
        }
      });
    }
    for (auto& t : writers) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    state.SetIterationTime(secs);
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(kWriters) * kPointsPerWriter / secs);
  }
}
BENCHMARK(BM_EngineIngestNoQueries)->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_EngineBytesPerPointMonitoring(benchmark::State& state) {
  // Monitoring shape: fixed 1 s cadence, gauge stepping occasionally in
  // small exact-decimal increments (Gorilla's repeat-heavy regime).
  for (auto _ : state) {
    TsdbEngine db(TsdbOptions{4, 512, Duration::from_sec(3600.0)});
    Pcg32 rng(7);
    std::vector<SeriesId> sids;
    for (std::uint32_t r = 0; r < 8; ++r) sids.push_back(db.series("rtt_ms", route_tags(r)));
    std::vector<double> gauges(8, 120.0);
    for (int i = 0; i < 40'000; ++i) {
      const std::uint32_t r = static_cast<std::uint32_t>(i) % 8;
      if (rng.chance(0.3)) {
        gauges[r] += (static_cast<double>(rng.bounded(7)) - 3.0) * 0.125;
      }
      db.append(sids[r], Timestamp::from_ns((i / 8) * 1'000'000'000LL), gauges[r]);
    }
    const auto stats = db.storage_stats();
    state.counters["bytes_per_point"] = stats.bytes_per_point();
    state.counters["compression_x"] = 16.0 / stats.bytes_per_point();
  }
}
BENCHMARK(BM_EngineBytesPerPointMonitoring);

void BM_EngineBytesPerPointHandshake(benchmark::State& state) {
  // Scenario-replay shape: jittered arrivals, full-range latency values
  // — high-entropy input, so this reports the honest floor, not 8x.
  for (auto _ : state) {
    TsdbEngine db(TsdbOptions{4, 512, Duration::from_sec(3600.0)});
    Pcg32 rng(9);
    std::vector<SeriesId> sids;
    for (std::uint32_t r = 0; r < 40; ++r) sids.push_back(db.series("total_ms", route_tags(r)));
    std::int64_t t = 0;
    for (int i = 0; i < 40'000; ++i) {
      t += 500'000 + static_cast<std::int64_t>(rng.bounded(1'000'000));
      db.append(sids[rng.bounded(40)], Timestamp::from_ns(t), rng.uniform(80.0, 300.0));
    }
    const auto stats = db.storage_stats();
    state.counters["bytes_per_point"] = stats.bytes_per_point();
    state.counters["compression_x"] = 16.0 / stats.bytes_per_point();
  }
}
BENCHMARK(BM_EngineBytesPerPointHandshake);

}  // namespace

BENCHMARK_MAIN();
