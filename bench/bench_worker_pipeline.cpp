// Vectorized worker pipeline (DESIGN.md §5l acceptance) — the staged
// lane loop against the retired per-packet loop it replaced, on the
// workloads the redesign targets:
//
//   EstablishedHeavy — the acceptance mix: a resident set of established
//       flows exchanging timestamped request/response segments (candidate
//       lanes resolved by the in-flow kernel) with a fraction of
//       untracked background segments (skip lanes).  The vector loop
//       must hold >= 1.3x the scalar loop here (mean of 3 runs,
//       recorded in BENCH_worker.json).
//   SkipHeavy — in-flow kernel off: every candidate lane is an untracked
//       skip, isolating the batched classify/probe stages.
//   PrefetchDepth — the rx-loop lookahead knob (flow.prefetch_depth)
//       swept 0..4 over the established-heavy mix on the vector loop.
//   Transpacific — the fig2 workload on one worker, both kernels; the
//       vector number doubles as the CI regression smoke
//       (tools/check.sh worker fails below 0.95x of the recorded pps).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "flow/worker.hpp"
#include "net/packet_builder.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace ruru;

void push_tcp(std::vector<std::vector<std::uint8_t>>& out, Ipv4Address client, Ipv4Address server,
              std::uint16_t cport, bool c2s, std::uint8_t flags, std::uint32_t seq,
              std::uint32_t ack, std::uint32_t tsval, std::uint32_t tsecr, std::size_t payload) {
  TcpFrameSpec s;
  s.src_ip = c2s ? client : server;
  s.dst_ip = c2s ? server : client;
  s.src_port = c2s ? cport : 443;
  s.dst_port = c2s ? 443 : cport;
  s.flags = flags;
  s.seq = seq;
  s.ack = ack;
  s.payload_length = payload;
  s.with_timestamps = tsval != 0;
  s.ts_val = tsval;
  s.ts_ecr = tsecr;
  out.push_back(build_tcp_frame(s));
}

/// The established-heavy mix: kFlows resident flows cycling timestamped
/// request/response pairs, one untracked background segment per four
/// flows.  `setup` holds the timestamped handshakes that make the flows
/// resident; `data` is the steady-state burst material.
///
/// The flow population is ISP-scale on purpose: 1M resident flows in a
/// 4M-slot table put the hot/cold SoA arrays (hot_ alone is 256MB) past
/// even a large server L3, so every probe is a genuine DRAM access —
/// the regime the batched prefetch-then-resolve stages exist for, and
/// the population Ruru's 10Gbps ISP deployment actually tracks.  (A few
/// hundred flows fit in L1 and measure only lane bookkeeping overhead.)
struct EstablishedMix {
  static constexpr int kFlows = 1 << 20;
  static constexpr std::uint32_t kRounds = 2;
  std::vector<std::vector<std::uint8_t>> setup;
  std::vector<std::vector<std::uint8_t>> data;

  static Ipv4Address client_addr(std::uint8_t net, int i) {
    // net selects a /12 (tracked vs background); the low 20 bits of i
    // spread across the remaining octets so 1M flows stay tuple-unique.
    return Ipv4Address(10, static_cast<std::uint8_t>((net << 4) | ((i >> 16) & 15)),
                       static_cast<std::uint8_t>((i >> 8) & 255),
                       static_cast<std::uint8_t>(i & 255));
  }

  /// Ephemeral port decorrelated from the client address.  The symmetric
  /// RSS key folds the tuple to 16 bits of XOR entropy; a port that
  /// tracks the address (40000 + i against 10.x.(i>>8).(i&255)) cancels
  /// most of it and collapses the table's home slots, which no real
  /// traffic does — so scramble i the way a kernel's ephemeral-port
  /// allocator would.
  static std::uint16_t client_port(int i) {
    const auto r = static_cast<std::uint32_t>(i) * 2654435761u;  // Fibonacci hashing
    return static_cast<std::uint16_t>(1024 + (r >> 17));
  }

  EstablishedMix() {
    const auto server = Ipv4Address(10, 2, 0, 1);
    for (int i = 0; i < kFlows; ++i) {
      const auto client = client_addr(1, i);
      const auto cport = client_port(i);
      push_tcp(setup, client, server, cport, true, TcpFlags::kSyn, 1000, 0, 100, 0, 0);
      push_tcp(setup, client, server, cport, false, TcpFlags::kSyn | TcpFlags::kAck, 5000, 1001,
               500, 100, 0);
      push_tcp(setup, client, server, cport, true, TcpFlags::kAck, 1001, 5001, 105, 500, 0);
    }
    // Round-robin across flows (not per-flow blocks): consecutive lanes
    // hit different table groups, the shape real RSS-sprayed bursts have.
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kFlows; ++i) {
        const auto client = client_addr(1, i);
        const auto cport = client_port(i);
        push_tcp(data, client, server, cport, true, TcpFlags::kAck, 1001, 5001, 200 + r,
                 r == 0 ? 0 : 600 + r - 1, 64);
        push_tcp(data, client, server, cport, false, TcpFlags::kAck, 5001, 1065, 600 + r, 200 + r,
                 64);
        if (i % 4 == 0) {
          // Untracked background flow: a pure data segment nobody is
          // following — the skip lane.
          push_tcp(data, client_addr(9, i), server, static_cast<std::uint16_t>(client_port(i) ^ 0x8000u),
                   true, TcpFlags::kAck, 1, 1, 0, 0, 32);
        }
      }
    }
  }

  static const EstablishedMix& instance() {
    static const EstablishedMix mix;
    return mix;
  }
};

/// One worker fed the established mix; `kernel` and `depth` select the
/// loop under test.  Injection (Toeplitz + frame copy, identical for
/// both kernels) happens with the timer paused: the measured region is
/// the poll loop itself — rx_burst, classify, probes, resolve — which is
/// what the two kernels differ in.
void run_established(benchmark::State& state, QueueWorker::LoopKernel kernel, std::size_t depth,
                     bool inflow_on) {
  constexpr std::size_t kChunk = 16'384;  // == queue depth: one fill per iteration
  const EstablishedMix& mix = EstablishedMix::instance();

  Mempool pool(1 << 15, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  cfg.queue_depth = kChunk;
  SimNic nic(cfg, pool);
  InflowConfig icfg;
  icfg.enabled = inflow_on;
  icfg.min_interval = Duration{0};
  QueueWorker worker(nic, 0, EstablishedMix::kFlows * 4, nullptr, Duration::from_sec(1e6),
                     FlowTable::kDefaultProbeWindow, icfg);
  worker.set_loop_kernel(kernel);
  worker.set_prefetch_depth(depth);

  std::int64_t t = 0;
  for (const auto& f : mix.setup) {
    nic.inject(f, Timestamp::from_ns(++t));
    worker.poll_once();
  }
  while (worker.poll_once() != 0) {
  }

  std::size_t cursor = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t k = 0; k < kChunk; ++k) {
      nic.inject(mix.data[cursor], Timestamp::from_ns(++t));
      cursor = cursor + 1 == mix.data.size() ? 0 : cursor + 1;
    }
    state.ResumeTiming();
    while (worker.poll_once() != 0) {
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kChunk));
  state.counters["skips"] = static_cast<double>(worker.stats().fast_path_skips.load());
  state.counters["consumed"] = static_cast<double>(worker.stats().inflow_consumed.load());
  state.counters["revalidated"] = static_cast<double>(worker.stats().lane_revalidated.load());
  state.counters["resident"] = static_cast<double>(worker.tracker().table().size());
  state.counters["insert_failures"] =
      static_cast<double>(worker.tracker().table().stats().insert_failures.load());
}

void BM_WorkerEstablishedHeavy(benchmark::State& state) {
  const auto kernel =
      state.range(0) == 0 ? QueueWorker::LoopKernel::kScalar : QueueWorker::LoopKernel::kVector;
  run_established(state, kernel, /*depth=*/1, /*inflow_on=*/true);
}
BENCHMARK(BM_WorkerEstablishedHeavy)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("vector")
    ->Unit(benchmark::kMillisecond);

void BM_WorkerSkipHeavy(benchmark::State& state) {
  // In-flow kernel off: tracked flows' data segments skip, making every
  // candidate lane a pure classify-and-skip — the batched probe stages
  // with no per-lane kernel work to hide behind.
  const auto kernel =
      state.range(0) == 0 ? QueueWorker::LoopKernel::kScalar : QueueWorker::LoopKernel::kVector;
  run_established(state, kernel, /*depth=*/1, /*inflow_on=*/false);
}
BENCHMARK(BM_WorkerSkipHeavy)->Arg(0)->Arg(1)->ArgName("vector")->Unit(benchmark::kMillisecond);

void BM_WorkerPrefetchDepth(benchmark::State& state) {
  // On the scalar loop the depth is the classic lookahead distance
  // (flow.prefetch_depth's pre-PR meaning) — 1 vs 2 is the interesting
  // comparison.  On the vector loop the staged prefetch covers the whole
  // burst, so depth only gates it: 0 (off) vs nonzero (on).
  const auto kernel =
      state.range(0) == 0 ? QueueWorker::LoopKernel::kScalar : QueueWorker::LoopKernel::kVector;
  run_established(state, kernel, static_cast<std::size_t>(state.range(1)), /*inflow_on=*/true);
}
BENCHMARK(BM_WorkerPrefetchDepth)
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4}})
    ->ArgNames({"vector", "depth"})
    ->Unit(benchmark::kMillisecond);

// The fig2 workload on one worker — handshake churn, data segments,
// realistic arrival order — both kernels.  The vector number is the
// recorded reference for the check.sh regression smoke.
void BM_WorkerTranspacific(benchmark::State& state) {
  const auto kernel =
      state.range(0) == 0 ? QueueWorker::LoopKernel::kScalar : QueueWorker::LoopKernel::kVector;
  static const std::vector<TimedFrame>& frames = [] {
    static auto model = scenarios::transpacific(0xF162, 4000.0, Duration::from_sec(5.0));
    static const auto f = ruru::bench::pregenerate(model);
    return f;
  }();

  std::uint64_t samples_total = 0;
  // Lane-occupancy distributions (EXPERIMENTS.md E13): candidate lanes
  // per poll and consecutive-candidate run lengths, recorded by the
  // vector loop's classify stage.
  obs::MetricsRegistry metrics;
  for (auto _ : state) {
    Mempool pool(1 << 16, 2048);
    NicConfig cfg;
    cfg.num_queues = 1;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);
    InflowConfig icfg;
    icfg.enabled = true;
    std::uint64_t samples = 0;
    QueueWorker worker(nic, 0, 1 << 14, [&samples](const LatencySample&) { ++samples; },
                       Duration::from_sec(30.0), FlowTable::kDefaultProbeWindow, icfg);
    worker.set_loop_kernel(kernel);
    WorkerObs wobs;
    wobs.poll_batch = metrics.histogram("worker.poll_batch");
    wobs.burst_candidates = metrics.histogram("worker.burst_candidates");
    wobs.candidate_run_len = metrics.histogram("worker.candidate_run_len");
    worker.set_obs(wobs);
    std::size_t pending = 0;
    for (const auto& f : frames) {
      while (!nic.inject(f.frame, f.timestamp)) worker.poll_once();
      if (++pending >= 64) {
        worker.poll_once();
        pending = 0;
      }
    }
    while (worker.poll_once() != 0) {
    }
    samples_total += samples;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  state.counters["samples"] =
      static_cast<double>(samples_total) / static_cast<double>(state.iterations());
  const auto snap = metrics.snapshot(Timestamp::from_ns(0));
  if (const auto* h = snap.histogram("worker.burst_candidates"); h != nullptr && h->count != 0) {
    state.counters["cand_p50"] = static_cast<double>(h->percentile(0.5));
    state.counters["cand_p90"] = static_cast<double>(h->percentile(0.9));
    state.counters["cand_mean"] = h->mean();
  }
  if (const auto* h = snap.histogram("worker.candidate_run_len"); h != nullptr && h->count != 0) {
    state.counters["run_p50"] = static_cast<double>(h->percentile(0.5));
    state.counters["run_p90"] = static_cast<double>(h->percentile(0.9));
  }
  if (const auto* h = snap.histogram("worker.poll_batch"); h != nullptr && h->count != 0) {
    state.counters["poll_p50"] = static_cast<double>(h->percentile(0.5));
  }
}
BENCHMARK(BM_WorkerTranspacific)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("vector")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
