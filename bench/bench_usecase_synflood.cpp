// E4 / §3 use case — SYN flood and connection-count anomalies in real time.
//
// Sweeps flood intensity and reports detection (0/1), detection latency
// from flood start, alert counts and the false-positive control on clean
// traffic.  Expected shape: floods well above the benign SYN rate are
// caught within one detection window; clean runs raise nothing.

#include <benchmark/benchmark.h>

#include "anomaly/synflood_detector.hpp"
#include "bench_util.hpp"
#include "flow/handshake_tracker.hpp"
#include "net/packet_view.hpp"

namespace {

using namespace ruru;

struct FloodRun {
  bool detected = false;
  double detection_latency_s = -1;
  int alerts = 0;
  std::uint64_t syns_processed = 0;
};

FloodRun run_flood(double flood_rate, std::uint64_t seed) {
  const Timestamp flood_start = Timestamp::from_sec(2.0);
  auto model = scenarios::syn_flood(seed, 50.0, flood_rate, Duration::from_sec(6.0), flood_start,
                                    Duration::from_sec(2.0));

  SynFloodConfig cfg;
  cfg.window = Duration::from_sec(1.0);
  cfg.min_syns = 200;
  SynFloodDetector detector(cfg);
  HandshakeTracker tracker(1 << 16);

  FloodRun r;
  while (auto f = model.next()) {
    PacketView view;
    if (parse_packet(f->frame, view) != ParseStatus::kOk) continue;
    if (view.tcp.is_syn_only() && view.is_v4) {
      detector.on_syn(f->timestamp, view.ip4.dst);
      ++r.syns_processed;
    }
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    if (auto s = tracker.process(view, f->timestamp, rss, 0)) {
      if (s->server.is_v4()) detector.on_completion(s->ack_time, s->server.v4);
    }
  }
  std::vector<Alert> alerts;
  detector.flush(alerts);
  for (const auto& a : alerts) {
    if (a.kind != "syn-flood") continue;
    ++r.alerts;
    const double latency = (a.time + cfg.window - flood_start).to_sec();
    if (!r.detected || latency < r.detection_latency_s) r.detection_latency_s = latency;
    r.detected = true;
  }
  return r;
}

void BM_SynFloodDetection(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  FloodRun r;
  for (auto _ : state) {
    r = run_flood(rate, 0xF164);
    benchmark::DoNotOptimize(r);
  }
  state.counters["detected"] = r.detected ? 1 : 0;
  state.counters["detect_latency_s"] = r.detection_latency_s;
  state.counters["alerts"] = r.alerts;
  state.counters["syns"] = static_cast<double>(r.syns_processed);
}
BENCHMARK(BM_SynFloodDetection)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(10000)
    ->ArgName("flood_syns_per_s")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Control: benign-only traffic must not alert at any benign rate.
void BM_SynFloodFalsePositives(benchmark::State& state) {
  const double benign_rate = static_cast<double>(state.range(0));
  int alerts = 0;
  for (auto _ : state) {
    auto model = scenarios::transpacific(0xF165, benign_rate, Duration::from_sec(5.0));
    SynFloodDetector detector;
    while (auto f = model.next()) {
      PacketView view;
      if (parse_packet(f->frame, view) != ParseStatus::kOk) continue;
      if (view.tcp.is_syn_only() && view.is_v4) detector.on_syn(f->timestamp, view.ip4.dst);
      if (view.tcp.ack_flag() && !view.tcp.syn() && view.is_v4) {
        detector.on_completion(f->timestamp, view.ip4.dst);
      }
    }
    std::vector<Alert> out;
    detector.flush(out);
    alerts += static_cast<int>(out.size());
  }
  state.counters["false_alerts"] = alerts;
}
BENCHMARK(BM_SynFloodFalsePositives)
    ->Arg(100)
    ->Arg(1000)
    ->ArgName("benign_flows_per_s")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Raw detector cost: events/sec through on_syn (the per-packet hook).
void BM_SynFloodDetectorCost(benchmark::State& state) {
  SynFloodDetector detector;
  const Ipv4Address target(10, 1, 0, 80);
  std::int64_t t = 0;
  for (auto _ : state) {
    detector.on_syn(Timestamp::from_us(t += 3), target);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SynFloodDetectorCost);

}  // namespace

BENCHMARK_MAIN();
