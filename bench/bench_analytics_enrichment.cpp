// E6 / §2 analytics — multi-threaded geo/AS enrichment with IP removal.
//
// Sweeps worker thread count over a fixed batch of bus messages and
// reports enrichment throughput (samples/sec), LRU cache hit rate and
// the unlocated fraction.  Expected shape: throughput scales with
// threads up to the host's core count; cache hit rate is high because
// traffic is endpoint-skewed.

#include <benchmark/benchmark.h>

#include "analytics/pool.hpp"
#include "bench_util.hpp"
#include "util/random.hpp"

namespace {

using namespace ruru;

std::vector<Message> make_batch(std::size_t count, std::uint32_t host_spread) {
  Pcg32 rng(0xE6);
  std::vector<Message> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    LatencySample s;
    // Clients from the NZ blocks, servers worldwide; spread controls
    // cache friendliness.
    s.client = Ipv4Address(Ipv4Address(10, 1, 0, 0).value() + rng.bounded(host_spread));
    s.server = Ipv4Address(Ipv4Address(10, 2, 0, 0).value() + rng.bounded(host_spread * 4));
    s.client_port = static_cast<std::uint16_t>(rng.next_u32());
    s.server_port = 443;
    s.syn_time = Timestamp::from_ms(static_cast<std::int64_t>(i));
    s.synack_time = s.syn_time + Duration::from_ms(128);
    s.ack_time = s.synack_time + Duration::from_ms(5);
    batch.push_back(encode_latency_sample(s));
  }
  return batch;
}

void BM_EnrichmentVsThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static const World world = ruru::bench::scenario_world();
  const auto batch = make_batch(50'000, 200);

  std::uint64_t processed = 0;
  double hit_rate = 0;
  for (auto _ : state) {
    PubSocket bus;
    auto sub = bus.subscribe("", batch.size() + 16);
    EnrichmentPool pool(sub, world.geo, world.as, threads);
    std::atomic<std::uint64_t> sunk{0};
    pool.add_sink([&sunk](const EnrichedSample&) { sunk.fetch_add(1, std::memory_order_relaxed); });
    pool.start();
    for (const auto& m : batch) bus.publish(m);
    bus.close_all();
    pool.stop();
    processed += pool.processed();
    const auto stats = pool.combined_stats();
    hit_rate = stats.cache_hits + stats.cache_misses != 0
                   ? static_cast<double>(stats.cache_hits) /
                         static_cast<double>(stats.cache_hits + stats.cache_misses)
                   : 0;
    if (sunk.load() != batch.size()) state.SkipWithError("lost samples");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cache_hit_rate"] = hit_rate;
}
BENCHMARK(BM_EnrichmentVsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Single-threaded enricher cost by cache friendliness (host spread).
void BM_EnrichLookupCost(benchmark::State& state) {
  static const World world = ruru::bench::scenario_world();
  const auto spread = static_cast<std::uint32_t>(state.range(0));
  Enricher enricher(world.geo, world.as);
  Pcg32 rng(1);
  LatencySample s;
  s.syn_time = Timestamp::from_ms(0);
  s.synack_time = Timestamp::from_ms(128);
  s.ack_time = Timestamp::from_ms(133);
  for (auto _ : state) {
    s.client = Ipv4Address(Ipv4Address(10, 1, 0, 0).value() + rng.bounded(spread));
    s.server = Ipv4Address(Ipv4Address(10, 2, 0, 0).value() + rng.bounded(spread));
    const EnrichedSample out = enricher.enrich(s);
    benchmark::DoNotOptimize(out.total);
  }
  state.SetItemsProcessed(state.iterations());
  const auto& st = enricher.stats();
  state.counters["hit_rate"] =
      st.cache_hits + st.cache_misses != 0
          ? static_cast<double>(st.cache_hits) / static_cast<double>(st.cache_hits + st.cache_misses)
          : 0;
}
BENCHMARK(BM_EnrichLookupCost)->Arg(16)->Arg(256)->Arg(1280)->ArgName("host_spread");

}  // namespace

BENCHMARK_MAIN();
