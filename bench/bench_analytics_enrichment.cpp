// E6 / §2 analytics — multi-threaded geo/AS enrichment with IP removal.
//
// Sweeps worker thread count over a fixed batch of bus messages and
// reports enrichment throughput (samples/sec), LRU cache hit rate and
// the unlocated fraction.  Expected shape: throughput scales with
// threads up to the host's core count; cache hit rate is high because
// traffic is endpoint-skewed.

#include <benchmark/benchmark.h>

#include "analytics/pool.hpp"
#include "bench_util.hpp"
#include "util/random.hpp"

namespace {

using namespace ruru;

std::vector<Message> make_batch(std::size_t count, std::uint32_t host_spread) {
  Pcg32 rng(0xE6);
  std::vector<Message> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    LatencySample s;
    // Clients from the NZ blocks, servers worldwide; spread controls
    // cache friendliness.
    s.client = Ipv4Address(Ipv4Address(10, 1, 0, 0).value() + rng.bounded(host_spread));
    s.server = Ipv4Address(Ipv4Address(10, 2, 0, 0).value() + rng.bounded(host_spread * 4));
    s.client_port = static_cast<std::uint16_t>(rng.next_u32());
    s.server_port = 443;
    s.syn_time = Timestamp::from_ms(static_cast<std::int64_t>(i));
    s.synack_time = s.syn_time + Duration::from_ms(128);
    s.ack_time = s.synack_time + Duration::from_ms(5);
    batch.push_back(encode_latency_sample(s));
  }
  return batch;
}

void BM_EnrichmentVsThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static const World world = ruru::bench::scenario_world();
  const auto batch = make_batch(50'000, 200);

  std::uint64_t processed = 0;
  double hit_rate = 0;
  for (auto _ : state) {
    PubSocket bus;
    auto sub = bus.subscribe("", batch.size() + 16);
    EnrichmentPool pool(sub, world.geo, world.as, threads);
    std::atomic<std::uint64_t> sunk{0};
    pool.add_sink([&sunk](const EnrichedSample&) { sunk.fetch_add(1, std::memory_order_relaxed); });
    pool.start();
    for (const auto& m : batch) bus.publish(m);
    bus.close_all();
    pool.stop();
    processed += pool.processed();
    const auto stats = pool.combined_stats();
    hit_rate = stats.cache_hits + stats.cache_misses != 0
                   ? static_cast<double>(stats.cache_hits) /
                         static_cast<double>(stats.cache_hits + stats.cache_misses)
                   : 0;
    if (sunk.load() != batch.size()) state.SkipWithError("lost samples");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cache_hit_rate"] = hit_rate;
}
BENCHMARK(BM_EnrichmentVsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Single-threaded enricher cost by cache friendliness (host spread).
void BM_EnrichLookupCost(benchmark::State& state) {
  static const World world = ruru::bench::scenario_world();
  const auto spread = static_cast<std::uint32_t>(state.range(0));
  Enricher enricher(world.geo, world.as);
  Pcg32 rng(1);
  LatencySample s;
  s.syn_time = Timestamp::from_ms(0);
  s.synack_time = Timestamp::from_ms(128);
  s.ack_time = Timestamp::from_ms(133);
  for (auto _ : state) {
    s.client = Ipv4Address(Ipv4Address(10, 1, 0, 0).value() + rng.bounded(spread));
    s.server = Ipv4Address(Ipv4Address(10, 2, 0, 0).value() + rng.bounded(spread));
    const EnrichedSample out = enricher.enrich(s);
    benchmark::DoNotOptimize(out.total);
  }
  state.SetItemsProcessed(state.iterations());
  const auto& st = enricher.stats();
  state.counters["hit_rate"] =
      st.cache_hits + st.cache_misses != 0
          ? static_cast<double>(st.cache_hits) / static_cast<double>(st.cache_hits + st.cache_misses)
          : 0;
}
BENCHMARK(BM_EnrichLookupCost)->Arg(16)->Arg(256)->Arg(1280)->ArgName("host_spread");

// --- cache-regime scenarios (hot / cold / Zipf) -----------------------
//
// Address sequences are pregenerated so the timed loop measures the
// enricher alone.  The world is the 220-city large world: 220 blocks of
// 4096 addresses starting at 100.0.0.0, ~900k addressable hosts — far
// beyond the enricher's cache, so "cold" really misses.

constexpr std::size_t kSeqLen = 1 << 16;

World& large_world() {
  static World world = [] {
    auto w = build_world(large_world_sites(220));
    if (!w.ok()) std::abort();
    return std::move(w).value();
  }();
  return world;
}

enum class AddrMix { kHot, kCold, kZipf };

std::vector<LatencySample> make_scenario_samples(AddrMix mix) {
  constexpr std::uint32_t kBase = 100u << 24;
  constexpr std::uint32_t kSpan = 220u * 4096u;
  Pcg32 rng(0xE6E6);
  std::vector<LatencySample> seq;
  seq.reserve(kSeqLen);
  // Rank -> address scatter: consecutive Zipf ranks land in different
  // city blocks (golden-ratio stride), like real popular hosts do.
  const ruru::bench::ZipfSampler zipf(1 << 18, 1.0);
  for (std::size_t i = 0; i < kSeqLen; ++i) {
    std::uint32_t client = 0;
    std::uint32_t server = 0;
    switch (mix) {
      case AddrMix::kHot:
        client = kBase + 7;
        server = kBase + 4096 + 9;
        break;
      case AddrMix::kCold:
        client = kBase + rng.bounded(kSpan);
        server = kBase + rng.bounded(kSpan);
        break;
      case AddrMix::kZipf:
        client = kBase + static_cast<std::uint32_t>(
                             (zipf.next(rng) * 2654435761ULL) % kSpan);
        server = kBase + static_cast<std::uint32_t>(
                             (zipf.next(rng) * 2654435761ULL) % kSpan);
        break;
    }
    LatencySample s;
    s.client = Ipv4Address(client);
    s.server = Ipv4Address(server);
    s.client_port = static_cast<std::uint16_t>(rng.next_u32());
    s.server_port = 443;
    s.syn_time = Timestamp::from_ms(static_cast<std::int64_t>(i));
    s.synack_time = s.syn_time + Duration::from_ms(128);
    s.ack_time = s.synack_time + Duration::from_ms(5);
    seq.push_back(s);
  }
  return seq;
}

void run_single_enrich(benchmark::State& state, AddrMix mix) {
  const World& world = large_world();
  const auto seq = make_scenario_samples(mix);
  Enricher enricher(world.geo, world.as);
  std::size_t i = 0;
  for (auto _ : state) {
    const EnrichedSample out = enricher.enrich(seq[i]);
    benchmark::DoNotOptimize(out.total);
    i = (i + 1) & (kSeqLen - 1);
  }
  state.SetItemsProcessed(state.iterations());
  const auto& st = enricher.stats();
  state.counters["hit_rate"] =
      st.cache_hits + st.cache_misses != 0
          ? static_cast<double>(st.cache_hits) /
                static_cast<double>(st.cache_hits + st.cache_misses)
          : 0;
}

void BM_EnrichHotCache(benchmark::State& state) { run_single_enrich(state, AddrMix::kHot); }
void BM_EnrichColdCache(benchmark::State& state) { run_single_enrich(state, AddrMix::kCold); }
void BM_EnrichZipfMix(benchmark::State& state) { run_single_enrich(state, AddrMix::kZipf); }
BENCHMARK(BM_EnrichHotCache);
BENCHMARK(BM_EnrichColdCache);
BENCHMARK(BM_EnrichZipfMix);

// Same scenarios through enrich_batch(): adds the lookahead prefetch of
// cache sets and radix buckets, in kMaxLatencyBatch-sized chunks like
// the worker loop.
void run_batch_enrich(benchmark::State& state, AddrMix mix) {
  const World& world = large_world();
  const auto seq = make_scenario_samples(mix);
  Enricher enricher(world.geo, world.as);
  std::vector<EnrichedSample> out;
  out.reserve(kMaxLatencyBatch);
  std::size_t pos = 0;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kMaxLatencyBatch, kSeqLen - pos);
    out.clear();
    enricher.enrich_batch(std::span(seq).subspan(pos, n), out);
    benchmark::DoNotOptimize(out.data());
    samples += n;
    pos = (pos + n) & (kSeqLen - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  const auto& st = enricher.stats();
  state.counters["hit_rate"] =
      st.cache_hits + st.cache_misses != 0
          ? static_cast<double>(st.cache_hits) /
                static_cast<double>(st.cache_hits + st.cache_misses)
          : 0;
}

void BM_EnrichBatchHotCache(benchmark::State& state) { run_batch_enrich(state, AddrMix::kHot); }
void BM_EnrichBatchColdCache(benchmark::State& state) { run_batch_enrich(state, AddrMix::kCold); }
void BM_EnrichBatchZipfMix(benchmark::State& state) { run_batch_enrich(state, AddrMix::kZipf); }
BENCHMARK(BM_EnrichBatchHotCache);
BENCHMARK(BM_EnrichBatchColdCache);
BENCHMARK(BM_EnrichBatchZipfMix);

}  // namespace

BENCHMARK_MAIN();
