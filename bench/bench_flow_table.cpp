// Flow-table probe benchmarks: the SIMD group-probed Swiss-style table
// against (a) its own forced-scalar kernels and (b) a faithful copy of
// the linear-probe table this PR replaced.  Mixes: resident hits, clean
// misses, a collision-heavy high-load mix (the acceptance gate), and a
// Zipf-churned workload shaped like production flow popularity.  The
// tracker benches compare per-packet process() with the batched,
// prefetch-pipelined process_burst().

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "flow/flow_table.hpp"
#include "flow/handshake_tracker.hpp"
#include "net/packet_builder.hpp"
#include "util/random.hpp"

namespace {

using namespace ruru;

// --- the replaced baseline, copied verbatim (minus unused stats) -------
//
// Linear probing over an array of wide entries: every probed slot loads
// a full ~96-byte record to test occupancy and compare the hash/key.

struct LinearEntry {
  FiveTuple canonical;
  Timestamp last_seen;
  std::uint32_t rss_hash = 0;
  bool occupied = false;
};

class LinearFlowTable {
 public:
  static constexpr std::size_t kProbeWindow = 32;

  explicit LinearFlowTable(std::size_t capacity, Duration stale_after)
      : stale_after_(stale_after) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  LinearEntry* find(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) {
    const std::size_t start = slot_for(rss_hash);
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      LinearEntry& e = slots_[(start + i) & mask_];
      if (!e.occupied) continue;
      if (e.rss_hash == rss_hash && e.canonical == key.canonical) {
        if (now - e.last_seen > stale_after_) {
          e.occupied = false;
          continue;
        }
        return &e;
      }
    }
    return nullptr;
  }

  LinearEntry* find_or_insert(const FlowKey& key, std::uint32_t rss_hash, Timestamp now,
                              bool& inserted) {
    inserted = false;
    const std::size_t start = slot_for(rss_hash);
    LinearEntry* free_slot = nullptr;
    LinearEntry* stale_slot = nullptr;
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      LinearEntry& e = slots_[(start + i) & mask_];
      if (!e.occupied) {
        if (free_slot == nullptr) free_slot = &e;
        continue;
      }
      const bool stale = now - e.last_seen > stale_after_;
      if (e.rss_hash == rss_hash && e.canonical == key.canonical) {
        if (!stale) return &e;
        e.occupied = false;
        if (free_slot == nullptr) free_slot = &e;
        continue;
      }
      if (stale && stale_slot == nullptr) stale_slot = &e;
    }
    LinearEntry* slot = free_slot != nullptr ? free_slot : stale_slot;
    if (slot == nullptr) return nullptr;
    *slot = LinearEntry{};
    slot->canonical = key.canonical;
    slot->rss_hash = rss_hash;
    slot->occupied = true;
    slot->last_seen = now;
    inserted = true;
    return slot;
  }

  void erase(LinearEntry* e) {
    if (e != nullptr) e->occupied = false;
  }

 private:
  [[nodiscard]] std::size_t slot_for(std::uint32_t rss_hash) const {
    std::uint64_t h = rss_hash;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h) & mask_;
  }

  std::vector<LinearEntry> slots_;
  std::size_t mask_ = 0;
  Duration stale_after_;
};

// --- workload generation -----------------------------------------------

constexpr Duration kNeverStale = Duration::from_sec(1e9);

struct Flow {
  FlowKey key;
  std::uint32_t rss = 0;
};

/// `collision_piles` > 0: draw rss from that many distinct values so
/// flows pile into shared probe windows; 0: random rss per flow.
std::vector<Flow> make_flows(std::size_t n, std::uint64_t seed, std::size_t collision_piles) {
  Pcg32 rng(seed);
  std::vector<Flow> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FiveTuple t;
    t.src = Ipv4Address(static_cast<std::uint32_t>(0x0A000000u + i + 1));
    t.dst = Ipv4Address(10, 200, 0, static_cast<std::uint8_t>(i % 251));
    t.src_port = static_cast<std::uint16_t>(1024 + (i % 60'000));
    t.dst_port = 443;
    t.protocol = 6;
    Flow f;
    f.key = FlowKey::from(t);
    f.rss = collision_piles == 0
                ? rng.next_u32()
                : static_cast<std::uint32_t>(rng.bounded(
                      static_cast<std::uint32_t>(collision_piles)) *
                  2654435761u);
    flows.push_back(f);
  }
  return flows;
}

enum class Kind { kGroup, kScalar, kLinear };

/// Populates `table` with `flows` (window-saturated inserts just fail)
/// and times find() over `probes` (hit and/or miss traffic).
template <typename Table>
void run_lookups(benchmark::State& state, Table& table, const std::vector<Flow>& flows,
                 const std::vector<Flow>& probes) {
  bool inserted = false;
  for (const auto& f : flows) {
    (void)table.find_or_insert(f.key, f.rss, Timestamp::from_sec(1), inserted);
  }
  const Timestamp now = Timestamp::from_sec(2);
  std::size_t i = 0;
  for (auto _ : state) {
    const Flow& p = probes[i];
    benchmark::DoNotOptimize(table.find(p.key, p.rss, now));
    if (++i == probes.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

void lookup_bench(benchmark::State& state, Kind kind, std::size_t capacity,
                  std::size_t n_flows, std::size_t piles, bool probe_misses) {
  auto flows = make_flows(n_flows, 42, piles);
  // Miss traffic: same pile structure, disjoint keys.
  auto strangers = make_flows(n_flows, 4242, piles);
  for (auto& s : strangers) s.key.canonical.dst_port = 8443;

  std::vector<Flow> probes;
  Pcg32 rng(7);
  for (std::size_t i = 0; i < 4096; ++i) {
    const bool miss = probe_misses && rng.chance(0.5);
    const auto& pool = miss ? strangers : flows;
    probes.push_back(pool[rng.bounded(static_cast<std::uint32_t>(pool.size()))]);
  }

  if (kind == Kind::kLinear) {
    LinearFlowTable table(capacity, kNeverStale);
    run_lookups(state, table, flows, probes);
  } else {
    FlowTable table(capacity, kNeverStale, FlowTable::kDefaultProbeWindow,
                    kind == Kind::kScalar ? ProbeKernel::kScalar : ProbeKernel::kAuto);
    run_lookups(state, table, flows, probes);
  }
}

void BM_LookupHit(benchmark::State& state, Kind kind) {
  // 50% load, random hashes, all probes resident.
  lookup_bench(state, kind, 1 << 14, 1 << 13, 0, false);
}
BENCHMARK_CAPTURE(BM_LookupHit, group, Kind::kGroup);
BENCHMARK_CAPTURE(BM_LookupHit, scalar, Kind::kScalar);
BENCHMARK_CAPTURE(BM_LookupHit, linear, Kind::kLinear);

void BM_LookupMiss(benchmark::State& state, Kind kind) {
  // 50% load, every probe is for an absent flow.
  auto flows = make_flows(1 << 13, 42, 0);
  auto strangers = make_flows(4096, 4242, 0);
  if (kind == Kind::kLinear) {
    LinearFlowTable table(1 << 14, kNeverStale);
    bool inserted = false;
    for (const auto& f : flows) {
      table.find_or_insert(f.key, f.rss, Timestamp::from_sec(1), inserted);
    }
    const Timestamp now = Timestamp::from_sec(2);
    std::size_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(table.find(strangers[i].key, strangers[i].rss, now));
      if (++i == strangers.size()) i = 0;
    }
  } else {
    FlowTable table(1 << 14, kNeverStale, FlowTable::kDefaultProbeWindow,
                    kind == Kind::kScalar ? ProbeKernel::kScalar : ProbeKernel::kAuto);
    bool inserted = false;
    for (const auto& f : flows) {
      table.find_or_insert(f.key, f.rss, Timestamp::from_sec(1), inserted);
    }
    const Timestamp now = Timestamp::from_sec(2);
    std::size_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(table.find(strangers[i].key, strangers[i].rss, now));
      if (++i == strangers.size()) i = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_LookupMiss, group, Kind::kGroup);
BENCHMARK_CAPTURE(BM_LookupMiss, scalar, Kind::kScalar);
BENCHMARK_CAPTURE(BM_LookupMiss, linear, Kind::kLinear);

void BM_CollisionHeavy(benchmark::State& state, Kind kind) {
  // The acceptance mix: 90% load, so probe windows are crowded with
  // colliding residents, and half the probes are for absent flows — the
  // case where the linear baseline walks its whole 32-slot window of
  // wide entries while the group probe is answered by one or two
  // control-byte compares.
  lookup_bench(state, kind, 1 << 13, (1 << 13) * 90 / 100, 0, true);
}
BENCHMARK_CAPTURE(BM_CollisionHeavy, group, Kind::kGroup);
BENCHMARK_CAPTURE(BM_CollisionHeavy, scalar, Kind::kScalar);
BENCHMARK_CAPTURE(BM_CollisionHeavy, linear, Kind::kLinear);

void BM_SharedRssPile(benchmark::State& state, Kind kind) {
  // Adversarial degenerate case: many flows share the *same* RSS hash
  // (hundreds of piles of identical hashes), so every pile member
  // carries the same control tag and fingerprint filtering cannot
  // discriminate — each probe must verify pile members one by one, just
  // like the linear baseline.  Kept honest here: the group table should
  // roughly tie, not win, on this mix.
  lookup_bench(state, kind, 1 << 13, (1 << 13) * 85 / 100, 400, true);
}
BENCHMARK_CAPTURE(BM_SharedRssPile, group, Kind::kGroup);
BENCHMARK_CAPTURE(BM_SharedRssPile, scalar, Kind::kScalar);
BENCHMARK_CAPTURE(BM_SharedRssPile, linear, Kind::kLinear);

void BM_ZipfChurn(benchmark::State& state, Kind kind) {
  // Zipf-popular flows inserted, re-found, and erased — the tracker's
  // real access pattern (a handshake is three touches then an erase).
  constexpr std::size_t kFlows = 1 << 12;
  auto flows = make_flows(kFlows, 42, 0);
  bench::ZipfSampler zipf(kFlows, 1.0);
  Pcg32 rng(13);
  std::vector<std::size_t> order;
  order.reserve(1 << 14);
  for (std::size_t i = 0; i < (1 << 14); ++i) order.push_back(zipf.next(rng));

  std::size_t i = 0;
  bool inserted = false;
  if (kind == Kind::kLinear) {
    LinearFlowTable table(1 << 13, kNeverStale);
    for (auto _ : state) {
      const Flow& f = flows[order[i]];
      LinearEntry* e = table.find_or_insert(f.key, f.rss, Timestamp::from_sec(1), inserted);
      if (e != nullptr && (i & 3) == 0) table.erase(e);
      benchmark::DoNotOptimize(e);
      if (++i == order.size()) i = 0;
    }
  } else {
    FlowTable table(1 << 13, kNeverStale, FlowTable::kDefaultProbeWindow,
                    kind == Kind::kScalar ? ProbeKernel::kScalar : ProbeKernel::kAuto);
    for (auto _ : state) {
      const Flow& f = flows[order[i]];
      const FlowTable::Slot s = table.find_or_insert(f.key, f.rss, Timestamp::from_sec(1), inserted);
      if (s != FlowTable::kNoSlot && (i & 3) == 0) table.erase(s);
      benchmark::DoNotOptimize(s);
      if (++i == order.size()) i = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ZipfChurn, group, Kind::kGroup);
BENCHMARK_CAPTURE(BM_ZipfChurn, scalar, Kind::kScalar);
BENCHMARK_CAPTURE(BM_ZipfChurn, linear, Kind::kLinear);

// --- batched handshake tracking ----------------------------------------

std::vector<TrackedPacket> handshake_stream(std::vector<std::vector<std::uint8_t>>& storage,
                                            std::vector<PacketView>& views, std::size_t flows) {
  storage.clear();
  for (std::size_t i = 0; i < flows; ++i) {
    TcpFrameSpec syn;
    syn.src_ip = Ipv4Address(static_cast<std::uint32_t>(0x0A010000u + i + 1));
    syn.dst_ip = Ipv4Address(10, 2, 0, 1);
    syn.src_port = static_cast<std::uint16_t>(1024 + (i % 60'000));
    syn.dst_port = 443;
    syn.seq = static_cast<std::uint32_t>(i * 7 + 1);
    syn.flags = TcpFlags::kSyn;
    storage.push_back(build_tcp_frame(syn));

    TcpFrameSpec synack;
    synack.src_ip = syn.dst_ip;
    synack.dst_ip = syn.src_ip;
    synack.src_port = 443;
    synack.dst_port = syn.src_port;
    synack.seq = static_cast<std::uint32_t>(i * 13 + 5);
    synack.ack = syn.seq + 1;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    storage.push_back(build_tcp_frame(synack));

    TcpFrameSpec ack;
    ack.src_ip = syn.src_ip;
    ack.dst_ip = syn.dst_ip;
    ack.src_port = syn.src_port;
    ack.dst_port = 443;
    ack.seq = syn.seq + 1;
    ack.ack = synack.seq + 1;
    ack.flags = TcpFlags::kAck;
    storage.push_back(build_tcp_frame(ack));
  }
  views.resize(storage.size());
  std::vector<TrackedPacket> pkts;
  pkts.reserve(storage.size());
  for (std::size_t i = 0; i < storage.size(); ++i) {
    if (parse_packet(storage[i], views[i]) != ParseStatus::kOk) std::abort();
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(views[i].tuple()).hash());
    pkts.push_back({views[i], Timestamp::from_ms(static_cast<std::int64_t>(i)), rss});
  }
  return pkts;
}

void BM_TrackerPerPacket(benchmark::State& state) {
  std::vector<std::vector<std::uint8_t>> storage;
  std::vector<PacketView> views;
  const auto pkts = handshake_stream(storage, views, 2048);
  HandshakeTracker tracker(1 << 14);
  std::uint64_t samples = 0;
  for (auto _ : state) {
    for (const auto& p : pkts) {
      if (tracker.process(p.view, p.rx_time, p.rss_hash, 0)) ++samples;
    }
  }
  benchmark::DoNotOptimize(samples);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(pkts.size()));
}
BENCHMARK(BM_TrackerPerPacket);

void BM_TrackerProcessBurst(benchmark::State& state) {
  std::vector<std::vector<std::uint8_t>> storage;
  std::vector<PacketView> views;
  const auto pkts = handshake_stream(storage, views, 2048);
  HandshakeTracker tracker(1 << 14);
  std::vector<LatencySample> out;
  out.reserve(pkts.size());
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    out.clear();
    for (std::size_t i = 0; i < pkts.size(); i += burst) {
      const std::size_t n = std::min(burst, pkts.size() - i);
      tracker.process_burst(std::span<const TrackedPacket>(pkts.data() + i, n), 0, out);
    }
  }
  benchmark::DoNotOptimize(out.data());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(pkts.size()));
}
BENCHMARK(BM_TrackerProcessBurst)->Arg(32)->Arg(64)->ArgName("burst");

}  // namespace

BENCHMARK_MAIN();
