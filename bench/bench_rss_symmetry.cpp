// E10 / §2 — symmetric RSS dispatch (the ablation DESIGN.md calls out).
//
// Reports: Toeplitz hash cost, the same-queue rate for flow direction
// pairs under the symmetric key vs Microsoft's default key (1.0 vs
// ~1/queues — broken for Ruru), and queue-spread uniformity (max/mean
// load imbalance across queues).

#include <benchmark/benchmark.h>

#include <vector>

#include "driver/toeplitz.hpp"
#include "util/random.hpp"

namespace {

using namespace ruru;

void BM_ToeplitzHashCost(benchmark::State& state) {
  const RssKey& key = state.range(0) == 0 ? symmetric_rss_key() : default_rss_key();
  Pcg32 rng(0x10);
  std::vector<std::uint32_t> srcs(1024), dsts(1024);
  for (auto& v : srcs) v = rng.next_u32();
  for (auto& v : dsts) v = rng.next_u32();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto h = rss_hash_tcp4(key, Ipv4Address(srcs[i & 1023]), Ipv4Address(dsts[i & 1023]),
                                 static_cast<std::uint16_t>(i), 443);
    benchmark::DoNotOptimize(h);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ToeplitzHashCost)->Arg(0)->Arg(1)->ArgName("key(0=sym,1=msft)");

void BM_SameQueueRate(benchmark::State& state) {
  const bool symmetric = state.range(0) == 0;
  const RssKey& key = symmetric ? symmetric_rss_key() : default_rss_key();
  const auto queues = static_cast<std::uint32_t>(state.range(1));
  Pcg32 rng(0x11);

  std::uint64_t same = 0, total = 0;
  for (auto _ : state) {
    const Ipv4Address a(rng.next_u32()), b(rng.next_u32());
    const auto sp = static_cast<std::uint16_t>(rng.next_u32());
    const auto dp = static_cast<std::uint16_t>(rng.next_u32());
    const auto fwd = rss_hash_tcp4(key, a, b, sp, dp) % queues;
    const auto rev = rss_hash_tcp4(key, b, a, dp, sp) % queues;
    if (fwd == rev) ++same;
    ++total;
    benchmark::DoNotOptimize(fwd + rev);
  }
  state.counters["same_queue_rate"] =
      total != 0 ? static_cast<double>(same) / static_cast<double>(total) : 0;
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_SameQueueRate)
    ->ArgsProduct({{0, 1}, {4, 8}})
    ->ArgNames({"key(0=sym,1=msft)", "queues"});

// Load balance: flows per queue imbalance for the symmetric key.
void BM_QueueSpreadImbalance(benchmark::State& state) {
  const auto queues = static_cast<std::uint32_t>(state.range(0));
  double imbalance = 0;
  for (auto _ : state) {
    Pcg32 rng(0x12);
    std::vector<std::uint64_t> counts(queues, 0);
    constexpr int kFlows = 100'000;
    for (int i = 0; i < kFlows; ++i) {
      const auto h = rss_hash_tcp4(symmetric_rss_key(), Ipv4Address(rng.next_u32()),
                                   Ipv4Address(rng.next_u32()),
                                   static_cast<std::uint16_t>(rng.next_u32()), 443);
      ++counts[h % queues];
    }
    std::uint64_t max_count = 0;
    for (const auto c : counts) max_count = std::max(max_count, c);
    imbalance = static_cast<double>(max_count) /
                (static_cast<double>(kFlows) / static_cast<double>(queues));
    benchmark::DoNotOptimize(counts.data());
  }
  state.counters["max_over_mean"] = imbalance;  // 1.0 == perfectly uniform
}
BENCHMARK(BM_QueueSpreadImbalance)->Arg(2)->Arg(4)->Arg(8)->ArgName("queues")->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
