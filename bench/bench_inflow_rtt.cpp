// In-flow RTT kernel cost (DESIGN.md §5j acceptance) — what continuous
// TCP-timestamp matching adds to the worker fast path.
//
// Three modes over the same pre-generated trans-Pacific trace:
//   off   — in-flow kernel disabled, pre-parse fast path on: the
//           previous skip path (established-flow data segments bypass
//           both parse and tracker).  This is the baseline the
//           acceptance gate compares against (>= 0.95x required).
//   on    — kernel enabled, fast path on: data segments of tracked
//           flows take the fixed-offset timestamp probe + ring match
//           instead of the skip.
//   full  — kernel enabled, fast path off: every segment fully parsed,
//           the upper bound the probe path must beat.
//
// A second bench isolates the matching kernel itself: process_burst on
// a resident table of established flows, every packet a timestamped
// data segment (the worst case: nothing can be skipped).

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "bench_util.hpp"
#include "driver/eal.hpp"
#include "flow/worker.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace ruru;

const std::vector<TimedFrame>& trace() {
  static const std::vector<TimedFrame> frames = [] {
    // Background flows plus one long-lived transfer so the trace carries
    // genuine mid-flow echo traffic, not just handshakes.
    auto model = scenarios::inflow_shift(0x1F10, 1200.0, Duration::from_sec(5.0),
                                         Timestamp::from_sec(2.5), Duration::from_ms(40));
    return ruru::bench::pregenerate(model);
  }();
  return frames;
}

// mode: 0 = off+fast, 1 = on+fast, 2 = on+full-parse.
void BM_WorkerInflowModes(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto& frames = trace();

  std::uint64_t matches = 0;
  std::uint64_t inflow_samples = 0;
  std::uint64_t evictions = 0;
  std::uint64_t handshakes = 0;
  std::uint64_t skips = 0;
  std::uint64_t consumed = 0;
  for (auto _ : state) {
    Mempool pool(1 << 15, 2048);
    NicConfig cfg;
    cfg.num_queues = 1;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);

    InflowConfig icfg;
    icfg.enabled = mode != 0;
    std::uint64_t samples = 0;
    QueueWorker worker(
        nic, 0, 1 << 14, [&samples](const LatencySample&) { ++samples; },
        Duration::from_sec(30.0), FlowTable::kDefaultProbeWindow, icfg);
    worker.set_fast_path(mode != 2);

    std::size_t pending = 0;
    for (const auto& f : frames) {
      while (!nic.inject(f.frame, f.timestamp)) worker.poll_once();
      if (++pending >= 64) {
        worker.poll_once();
        pending = 0;
      }
    }
    while (worker.poll_once() != 0) {
    }

    const InflowStats& st = worker.tracker().inflow_stats();
    matches += st.ts_matches.load();
    inflow_samples += st.inflow_samples.load();
    evictions += st.ts_ring_evictions.load();
    handshakes += worker.tracker_stats().samples_emitted.load();
    skips += worker.stats().fast_path_skips.load();
    consumed += worker.stats().inflow_consumed.load();
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  const auto iters = static_cast<double>(state.iterations());
  state.counters["ts_matches"] = static_cast<double>(matches) / iters;
  state.counters["inflow_samples"] = static_cast<double>(inflow_samples) / iters;
  state.counters["ring_evictions"] = static_cast<double>(evictions) / iters;
  state.counters["handshakes"] = static_cast<double>(handshakes) / iters;
  state.counters["fast_path_skips"] = static_cast<double>(skips) / iters;
  state.counters["inflow_consumed"] = static_cast<double>(consumed) / iters;
}
BENCHMARK(BM_WorkerInflowModes)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("mode")
    ->Unit(benchmark::kMillisecond);

// The acceptance gate: bench_fig2's exact workload (trans-Pacific trace,
// threaded per-queue workers) with the kernel off vs on.  "on" must hold
// >= 0.95x of "off" (the current skip-path numbers).
void BM_Fig2WithInflow(benchmark::State& state) {
  const bool inflow_on = state.range(0) != 0;
  constexpr std::uint16_t kQueues = 4;
  static const std::vector<TimedFrame>& frames = [] {
    static auto model = scenarios::transpacific(0xF162, 4000.0, Duration::from_sec(5.0));
    static const auto f = ruru::bench::pregenerate(model);
    return f;
  }();

  std::uint64_t samples = 0;
  std::uint64_t inflow_samples = 0;
  for (auto _ : state) {
    Mempool pool(1 << 16, 2048);
    NicConfig cfg;
    cfg.num_queues = kQueues;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);

    InflowConfig icfg;
    icfg.enabled = inflow_on;
    std::vector<std::unique_ptr<QueueWorker>> workers;
    std::atomic<std::uint64_t> sample_count{0};
    std::atomic<std::uint64_t> inflow_count{0};
    for (std::uint16_t q = 0; q < kQueues; ++q) {
      workers.push_back(std::make_unique<QueueWorker>(
          nic, q, 1 << 14,
          [&sample_count, &inflow_count](const LatencySample& s) {
            sample_count.fetch_add(1, std::memory_order_relaxed);
            if (s.kind != SampleKind::kHandshake)
              inflow_count.fetch_add(1, std::memory_order_relaxed);
          },
          Duration::from_sec(30.0), FlowTable::kDefaultProbeWindow, icfg));
    }
    LcoreLauncher lcores;
    for (auto& w : workers) {
      QueueWorker* wp = w.get();
      lcores.launch([wp](std::uint32_t, const std::atomic<bool>& stop) { wp->run(stop); });
    }
    for (const auto& f : frames) {
      while (!nic.inject(f.frame, f.timestamp)) {
      }
    }
    lcores.stop_and_join();
    samples += sample_count.load();
    inflow_samples += inflow_count.load();
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  const auto iters = static_cast<double>(state.iterations());
  state.counters["samples"] = static_cast<double>(samples) / iters;
  state.counters["inflow_samples"] = static_cast<double>(inflow_samples) / iters;
}
BENCHMARK(BM_Fig2WithInflow)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("inflow")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Worst case for the kernel: every packet is a timestamped data segment
// of an established, table-resident flow — each one runs the probe, the
// ring match and a note, nothing is skippable.  Per-packet cost here is
// the kernel's ceiling.
void BM_InflowKernelSaturated(benchmark::State& state) {
  constexpr int kFlows = 256;
  std::vector<std::vector<std::uint8_t>> setup;
  std::vector<std::vector<std::uint8_t>> data;
  for (int i = 0; i < kFlows; ++i) {
    const auto client =
        Ipv4Address(10, 1, static_cast<std::uint8_t>(i >> 6), static_cast<std::uint8_t>(i & 63));
    const auto server = Ipv4Address(10, 2, 0, 1);
    const auto cport = static_cast<std::uint16_t>(40'000 + i);
    auto tcp = [&](bool c2s, std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                   std::uint32_t tsval, std::uint32_t tsecr, std::size_t payload,
                   std::vector<std::vector<std::uint8_t>>& out) {
      TcpFrameSpec s;
      s.src_ip = c2s ? client : server;
      s.dst_ip = c2s ? server : client;
      s.src_port = c2s ? cport : 443;
      s.dst_port = c2s ? 443 : cport;
      s.flags = flags;
      s.seq = seq;
      s.ack = ack;
      s.payload_length = payload;
      s.with_timestamps = true;
      s.ts_val = tsval;
      s.ts_ecr = tsecr;
      out.push_back(build_tcp_frame(s));
    };
    tcp(true, TcpFlags::kSyn, 1000, 0, 100, 0, 0, setup);
    tcp(false, TcpFlags::kSyn | TcpFlags::kAck, 5000, 1001, 500, 100, 0, setup);
    tcp(true, TcpFlags::kAck, 1001, 5001, 105, 500, 0, setup);
    // Advancing TSvals round to round (a repeated value would trip the
    // retransmission guard and stop the noting).  Each round's response
    // consumes the request's note and the next request consumes the
    // response's, so ring occupancy stays flat.
    constexpr std::uint32_t kRounds = 16;
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      tcp(true, TcpFlags::kAck, 1001, 5001, 200 + r, r == 0 ? 0 : 600 + r - 1, 512, data);
      tcp(false, TcpFlags::kAck, 5001, 1513, 600 + r, 200 + r, 512, data);
    }
  }

  Mempool pool(1 << 14, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  cfg.queue_depth = 16384;
  SimNic nic(cfg, pool);
  InflowConfig icfg;
  icfg.enabled = true;
  icfg.min_interval = Duration{0};
  QueueWorker worker(nic, 0, 1 << 12, nullptr, Duration::from_sec(1e6),
                     FlowTable::kDefaultProbeWindow, icfg);

  std::int64_t t = 0;
  for (const auto& f : setup) {
    nic.inject(f, Timestamp::from_ns(++t));
    worker.poll_once();
  }

  for (auto _ : state) {
    for (const auto& f : data) {
      while (!nic.inject(f, Timestamp::from_ns(++t))) worker.poll_once();
    }
    while (worker.poll_once() != 0) {
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
  state.counters["ts_matches"] =
      static_cast<double>(worker.tracker().inflow_stats().ts_matches.load());
}
BENCHMARK(BM_InflowKernelSaturated)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
