// E9 / §2 — the ZeroMQ role: zero-copy pub/sub between pipeline stages.
//
// Reports in-proc publish throughput vs payload size and subscriber
// count, the HWM drop behaviour under an absent consumer (the publisher
// must never block), and loopback TCP transport throughput.

#include <benchmark/benchmark.h>

#include <thread>

#include "msg/codec.hpp"
#include "msg/pubsub.hpp"
#include "msg/tcp_transport.hpp"

namespace {

using namespace ruru;

Message make_message(std::size_t payload_size) {
  Message m("ruru.latency");
  m.add(Frame::adopt(std::vector<std::uint8_t>(payload_size, 0xAB)));
  return m;
}

// Publish with one active consumer thread draining.
void BM_InprocPubSub(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  PubSocket pub;
  auto sub = pub.subscribe("", 1 << 14);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> received{0};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (sub->try_recv()) received.fetch_add(1, std::memory_order_relaxed);
    }
    while (sub->try_recv()) received.fetch_add(1, std::memory_order_relaxed);
  });

  const Message msg = make_message(payload);
  for (auto _ : state) {
    pub.publish(msg);  // shares frames; the copy happened once above
  }
  stop.store(true);
  consumer.join();

  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(payload));
  state.counters["delivered"] = static_cast<double>(sub->delivered());
  state.counters["hwm_dropped"] = static_cast<double>(sub->dropped());
}
BENCHMARK(BM_InprocPubSub)->Arg(64)->Arg(512)->Arg(4096)->ArgName("payload");

// Fan-out cost: one publish to N subscribers (each message shared, not
// copied — this measures queue insertion, not memcpy).
void BM_InprocFanout(benchmark::State& state) {
  const auto nsubs = static_cast<std::size_t>(state.range(0));
  PubSocket pub;
  std::vector<std::shared_ptr<Subscription>> subs;
  for (std::size_t i = 0; i < nsubs; ++i) subs.push_back(pub.subscribe("", 1 << 20));
  const Message msg = make_message(68);
  for (auto _ : state) {
    pub.publish(msg);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(nsubs));
  // Confirm zero-copy: every queued message shares one buffer.
  state.counters["payload_use_count"] = static_cast<double>(msg.frames[1].use_count());
}
BENCHMARK(BM_InprocFanout)->Arg(1)->Arg(4)->Arg(16)->ArgName("subscribers");

// HWM policy: a stalled consumer must not slow the publisher down.
void BM_HwmDropUnderStall(benchmark::State& state) {
  PubSocket pub;
  auto sub = pub.subscribe("", 1024);  // nobody drains it
  const Message msg = make_message(68);
  for (auto _ : state) {
    pub.publish(msg);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["dropped"] = static_cast<double>(sub->dropped());
  state.counters["delivered"] = static_cast<double>(sub->delivered());
}
BENCHMARK(BM_HwmDropUnderStall);

// Ablation (DESIGN.md §5): HWM drop vs block with a slow consumer. The
// drop policy keeps the publisher at full speed and sheds load; the
// block policy throttles the publisher to the consumer's pace — which
// on the capture path would mean dropping packets at the NIC instead.
void BM_HwmPolicyWithSlowConsumer(benchmark::State& state) {
  const bool block = state.range(0) == 1;
  PubSocket pub;
  auto sub = pub.subscribe("", 256, block ? HwmPolicy::kBlock : HwmPolicy::kDrop);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (sub->try_recv()) {
        // ~2 us of "work" per message: slower than the publisher.
        const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(2);
        while (std::chrono::steady_clock::now() < until) {
        }
      }
    }
  });

  const Message msg = make_message(68);
  for (auto _ : state) {
    pub.publish(msg);
  }
  done.store(true);
  pub.close_all();  // release a possibly blocked final publish
  consumer.join();

  state.SetItemsProcessed(state.iterations());
  state.counters["delivered"] = static_cast<double>(sub->delivered());
  state.counters["dropped"] = static_cast<double>(sub->dropped());
}
BENCHMARK(BM_HwmPolicyWithSlowConsumer)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("policy(0=drop,1=block)")
    ->UseRealTime();

// The batched latency feed vs the seed per-sample path, measured in
// samples/sec end to end (encode → publish → recv → decode). batch=1
// reproduces the original one-message-per-sample behaviour; larger
// batches amortize the Message/Frame allocation, the queue insertion,
// and the consumer wakeup across N samples.
void BM_LatencyFeedPublish(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  PubSocket pub;
  auto sub = pub.subscribe(std::string(kLatencyTopic), 1 << 14);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> decoded_samples{0};
  std::thread consumer([&] {
    std::vector<LatencySample> decoded;
    decoded.reserve(kMaxLatencyBatch);
    const auto drain_one = [&](const Message& m) {
      decoded.clear();
      if (m.frames.size() >= 2 && decode_latency_payload(m.frames[1], decoded)) {
        decoded_samples.fetch_add(decoded.size(), std::memory_order_relaxed);
      }
    };
    while (!stop.load(std::memory_order_acquire)) {
      if (const auto m = sub->try_recv()) drain_one(*m);
    }
    while (const auto m = sub->try_recv()) drain_one(*m);
  });

  std::vector<LatencySample> samples(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    samples[i].client = Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1));
    samples[i].server = Ipv4Address(10, 2, 0, 1);
    samples[i].client_port = static_cast<std::uint16_t>(40'000 + i);
    samples[i].server_port = 443;
    samples[i].syn_time = Timestamp::from_ms(1);
    samples[i].synack_time = Timestamp::from_ms(120);
    samples[i].ack_time = Timestamp::from_ms(125);
  }

  for (auto _ : state) {
    if (batch == 1) {
      pub.publish(encode_latency_sample(samples[0]), 1);  // seed path
    } else {
      pub.publish(encode_latency_batch(samples), samples.size());
    }
  }
  stop.store(true);
  consumer.join();

  // Items are SAMPLES, so samples/sec is directly comparable across
  // batch sizes.
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["delivered_samples"] = static_cast<double>(sub->delivered());
  state.counters["dropped_samples"] = static_cast<double>(sub->dropped());
  state.counters["decoded_samples"] = static_cast<double>(decoded_samples.load());
}
BENCHMARK(BM_LatencyFeedPublish)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->ArgName("batch")
    ->UseRealTime();

// Loopback TCP transport: serialize + send + receive round.
void BM_TcpTransportLoopback(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  TcpBusServer server;
  if (!server.bind(0).ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  auto client = TcpBusClient::connect("127.0.0.1", server.port());
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  while (server.client_count() < 1) std::this_thread::yield();

  std::atomic<std::uint64_t> received{0};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (client.value().recv()) {
        received.fetch_add(1, std::memory_order_relaxed);
      } else {
        break;
      }
    }
  });

  const Message msg = make_message(payload);
  for (auto _ : state) {
    server.publish(msg);
  }
  done.store(true);
  server.close();  // unblocks the consumer
  consumer.join();

  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(payload));
  state.counters["received"] = static_cast<double>(received.load());
}
BENCHMARK(BM_TcpTransportLoopback)->Arg(68)->Arg(512)->Arg(4096)->ArgName("payload");

}  // namespace

BENCHMARK_MAIN();
