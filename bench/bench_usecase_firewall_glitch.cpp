// E3 / §3 use case — the nightly firewall update (+4000 ms).
//
// Paper claim: a periodic firewall update added 4000 ms to every
// connection started in a short nightly window; SNMP-style polls missed
// it, Ruru's flow-level view showed it clearly.  This bench simulates
// compressed days, runs the full detection path and reports:
//   * detected (0/1) and the offset error of the diagnosed window
//   * recall over glitched flows (EWMA spike alerts)
//   * the contrast metric: glitch contribution to the coarse mean vs to
//     the windowed max — why averages hide it.

#include <benchmark/benchmark.h>

#include <cmath>

#include "anomaly/ewma_detector.hpp"
#include "anomaly/periodic_detector.hpp"
#include "bench_util.hpp"
#include "flow/handshake_tracker.hpp"
#include "net/packet_view.hpp"

namespace {

using namespace ruru;

struct GlitchRun {
  bool detected = false;
  double offset_err_s = -1;
  double ewma_recall = 0;       // glitched flows flagged / glitched flows
  double ewma_false_rate = 0;   // clean flows flagged / clean flows
  double coarse_mean_shift = 0; // % shift of run-wide mean due to glitch
  double window_max_ratio = 0;  // windowed max / baseline median
};

GlitchRun run_glitch(double width_s, double extra_ms, std::uint64_t seed) {
  const Duration day = Duration::from_sec(120.0);
  const Duration width = Duration::from_sec(width_s);
  auto model = scenarios::firewall_glitch(seed, 80.0, Duration::from_sec(360.0), day, width,
                                          Duration::from_ms(static_cast<std::int64_t>(extra_ms)));

  HandshakeTracker tracker(1 << 16);
  PeriodicConfig pcfg;
  pcfg.period = day;
  pcfg.bucket = Duration::from_sec(2.0);
  pcfg.min_periods = 2;
  pcfg.min_samples = 8;
  PeriodicSpikeDetector periodic(pcfg);
  EwmaConfig ecfg;
  ecfg.warmup = 100;
  EwmaDetector ewma(ecfg);

  std::uint64_t glitched = 0, glitched_flagged = 0, clean = 0, clean_flagged = 0;
  double sum_all = 0, sum_clean = 0;
  std::uint64_t n_all = 0, n_clean = 0;

  while (auto f = model.next()) {
    PacketView view;
    if (parse_packet(f->frame, view) != ParseStatus::kOk) continue;
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    if (auto s = tracker.process(view, f->timestamp, rss, 0)) {
      const double ms = s->total().to_ms();
      periodic.add(s->syn_time, s->total());  // bucket by connection start
      const bool flagged = ewma.update(s->ack_time, ms).has_value();
      const bool is_glitched = ms > extra_ms;
      if (is_glitched) {
        ++glitched;
        if (flagged) ++glitched_flagged;
      } else {
        ++clean;
        if (flagged) ++clean_flagged;
        sum_clean += ms;
        ++n_clean;
      }
      sum_all += ms;
      ++n_all;
    }
  }

  GlitchRun r;
  const auto findings = periodic.findings();
  // Ground truth: window starts day/2 into each period.
  const double true_offset = day.to_sec() / 2.0;
  for (const auto& f : findings) {
    const double err = std::abs(f.offset_in_period.to_sec() - true_offset);
    if (r.offset_err_s < 0 || err < r.offset_err_s) r.offset_err_s = err;
    r.detected = true;
    r.window_max_ratio =
        std::max(r.window_max_ratio, static_cast<double>(f.bucket_median.ns) /
                                         static_cast<double>(std::max<std::int64_t>(
                                             f.baseline_median.ns, 1)));
  }
  r.ewma_recall = glitched != 0 ? static_cast<double>(glitched_flagged) /
                                      static_cast<double>(glitched)
                                : 0.0;
  r.ewma_false_rate =
      clean != 0 ? static_cast<double>(clean_flagged) / static_cast<double>(clean) : 0.0;
  const double mean_all = n_all != 0 ? sum_all / static_cast<double>(n_all) : 0;
  const double mean_clean = n_clean != 0 ? sum_clean / static_cast<double>(n_clean) : 0;
  r.coarse_mean_shift = mean_clean > 0 ? (mean_all - mean_clean) / mean_clean * 100.0 : 0;
  return r;
}

void BM_FirewallGlitchDetection(benchmark::State& state) {
  const double width_s = static_cast<double>(state.range(0));
  const double extra_ms = static_cast<double>(state.range(1));
  GlitchRun r;
  for (auto _ : state) {
    r = run_glitch(width_s, extra_ms, 0xF163);
    benchmark::DoNotOptimize(r);
  }
  state.counters["detected"] = r.detected ? 1 : 0;
  state.counters["offset_err_s"] = r.offset_err_s;
  state.counters["ewma_recall"] = r.ewma_recall;
  state.counters["ewma_false_rate"] = r.ewma_false_rate;
  state.counters["coarse_mean_shift_pct"] = r.coarse_mean_shift;
  state.counters["window_vs_baseline_x"] = r.window_max_ratio;
}
// Window width x glitch magnitude. The paper's case: short window,
// +4000 ms. A 0-magnitude control row documents the false-positive floor.
BENCHMARK(BM_FirewallGlitchDetection)
    ->Args({5, 4000})    // the paper's firewall case (compressed)
    ->Args({2, 4000})    // even shorter window
    ->Args({5, 400})     // subtler glitch
    ->Args({5, 0})       // control: no glitch -> detected must be 0
    ->ArgNames({"window_s", "extra_ms"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
