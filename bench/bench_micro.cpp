// Micro-benchmarks for the data-path building blocks: packet parse,
// flow-table ops (vs std::unordered_map ablation), SPSC ring, mempool
// alloc/free, histogram record, checksum, pcap write.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "anomaly/heavy_hitters.hpp"
#include "capture/pcap.hpp"
#include "driver/mempool.hpp"
#include "driver/nic.hpp"
#include "driver/ring.hpp"
#include "driver/toeplitz.hpp"
#include "flow/flow_table.hpp"
#include "viz/heatmap.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_view.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/spsc_ring.hpp"

namespace {

using namespace ruru;

std::vector<std::uint8_t> sample_frame(std::size_t payload) {
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = Ipv4Address(10, 2, 0, 1);
  spec.src_port = 40'000;
  spec.dst_port = 443;
  spec.flags = TcpFlags::kAck;
  spec.payload_length = payload;
  spec.with_timestamps = true;
  return build_tcp_frame(spec);
}

void BM_ParsePacket(benchmark::State& state) {
  const auto frame = sample_frame(static_cast<std::size_t>(state.range(0)));
  PacketView view;
  for (auto _ : state) {
    const auto status = parse_packet(frame, view);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(view.tcp.src_port);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_ParsePacket)->Arg(0)->Arg(1200)->ArgName("payload");

void BM_FlowTableInsertEraseCycle(benchmark::State& state) {
  FlowTable table(1 << 16);
  Pcg32 rng(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    FiveTuple tuple;
    tuple.src = Ipv4Address(rng.next_u32());
    tuple.dst = Ipv4Address(rng.next_u32());
    tuple.src_port = static_cast<std::uint16_t>(rng.next_u32());
    tuple.dst_port = 443;
    tuple.protocol = 6;
    const FlowKey key = FlowKey::from(tuple);
    bool inserted = false;
    const FlowTable::Slot s = table.find_or_insert(key, static_cast<std::uint32_t>(key.hash()),
                                                   Timestamp::from_ns(++t), inserted);
    benchmark::DoNotOptimize(s);
    if (s != FlowTable::kNoSlot) table.erase(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableInsertEraseCycle);

// Ablation: same workload on std::unordered_map (allocating, no probe
// bound) — the open-addressing table should win on the data path.
void BM_UnorderedMapInsertEraseCycle(benchmark::State& state) {
  std::unordered_map<FlowKey, FlowData> table;
  table.reserve(1 << 16);
  Pcg32 rng(1);
  for (auto _ : state) {
    FiveTuple tuple;
    tuple.src = Ipv4Address(rng.next_u32());
    tuple.dst = Ipv4Address(rng.next_u32());
    tuple.src_port = static_cast<std::uint16_t>(rng.next_u32());
    tuple.dst_port = 443;
    tuple.protocol = 6;
    const FlowKey key = FlowKey::from(tuple);
    auto [it, inserted] = table.try_emplace(key);
    benchmark::DoNotOptimize(it);
    table.erase(it);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapInsertEraseCycle);

void BM_FlowTableLookupHit(benchmark::State& state) {
  FlowTable table(1 << 16);
  Pcg32 rng(2);
  std::vector<std::pair<FlowKey, std::uint32_t>> keys;
  for (int i = 0; i < 10'000; ++i) {
    FiveTuple tuple;
    tuple.src = Ipv4Address(rng.next_u32());
    tuple.dst = Ipv4Address(rng.next_u32());
    tuple.src_port = static_cast<std::uint16_t>(rng.next_u32());
    tuple.dst_port = 443;
    tuple.protocol = 6;
    const FlowKey key = FlowKey::from(tuple);
    const auto h = static_cast<std::uint32_t>(key.hash());
    bool inserted = false;
    if (table.find_or_insert(key, h, Timestamp::from_sec(1), inserted) != FlowTable::kNoSlot) {
      keys.emplace_back(key, h);
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [key, h] = keys[i++ % keys.size()];
    benchmark::DoNotOptimize(table.find(key, h, Timestamp::from_sec(1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookupHit);

// RSS hashing: bit-serial reference vs the precomputed lookup table the
// NIC actually uses. 12 bytes = TCP/IPv4 tuple, 36 bytes = TCP/IPv6.
void BM_ToeplitzScalar(benchmark::State& state) {
  const RssKey& key = symmetric_rss_key();
  Pcg32 rng(6);
  std::uint8_t input[36];
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u32());
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::span<const std::uint8_t> in(input, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(toeplitz_hash(key, in));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ToeplitzScalar)->Arg(12)->Arg(36)->ArgName("bytes");

void BM_ToeplitzTable(benchmark::State& state) {
  const ToeplitzTable table(symmetric_rss_key());
  Pcg32 rng(6);
  std::uint8_t input[36];
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u32());
  const auto len = static_cast<std::size_t>(state.range(0));
  const std::span<const std::uint8_t> in(input, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.hash(in));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ToeplitzTable)->Arg(12)->Arg(36)->ArgName("bytes");

// RX publish path: per-frame inject (one release store per frame) vs
// inject_burst (per-queue staging, one release store per queue). Both
// drain identically, so the delta is the publish path itself.
std::vector<std::vector<std::uint8_t>> inject_bench_frames() {
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 64; ++i) {
    TcpFrameSpec spec;
    spec.src_ip = Ipv4Address(10, 1, static_cast<std::uint8_t>(i), 1);
    spec.dst_ip = Ipv4Address(10, 2, 0, static_cast<std::uint8_t>(i));
    spec.src_port = static_cast<std::uint16_t>(20'000 + i);
    spec.dst_port = 443;
    spec.flags = TcpFlags::kAck;
    frames.push_back(build_tcp_frame(spec));
  }
  return frames;
}

void drain_nic(SimNic& nic) {
  std::array<MbufPtr, 64> out;
  for (std::uint16_t q = 0; q < nic.num_queues(); ++q) {
    std::size_t n = 0;
    while ((n = nic.rx_burst(q, out)) != 0) {
      for (std::size_t i = 0; i < n; ++i) out[i].reset();
    }
  }
}

void BM_NicInject(benchmark::State& state) {
  Mempool pool(1 << 14, 2048);
  NicConfig cfg;
  cfg.num_queues = 4;
  cfg.queue_depth = 8192;
  SimNic nic(cfg, pool);
  const auto frames = inject_bench_frames();
  for (auto _ : state) {
    for (const auto& f : frames) {
      benchmark::DoNotOptimize(nic.inject(f, Timestamp{}));
    }
    drain_nic(nic);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_NicInject);

void BM_NicInjectBurst(benchmark::State& state) {
  Mempool pool(1 << 14, 2048);
  NicConfig cfg;
  cfg.num_queues = 4;
  cfg.queue_depth = 8192;
  SimNic nic(cfg, pool);
  const auto frames = inject_bench_frames();
  std::vector<RxFrame> burst;
  for (const auto& f : frames) burst.push_back({f, Timestamp{}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(nic.inject_burst(burst));
    drain_nic(nic);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_NicInjectBurst);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(4096);
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(++v));
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_MempoolAllocFree(benchmark::State& state) {
  Mempool pool(4096, 2048);
  for (auto _ : state) {
    auto m = pool.alloc();
    benchmark::DoNotOptimize(m.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MempoolAllocFree);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Pcg32 rng(3);
  for (auto _ : state) {
    h.record(static_cast<std::int64_t>(rng.bounded(1'000'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(h.percentile(0.5));
}
BENCHMARK(BM_HistogramRecord);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(1500);

void BM_MpmcRingPushPop(benchmark::State& state) {
  MpmcRing<std::uint64_t> ring(4096);
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(++v));
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcRingPushPop);

void BM_SpaceSavingAdd(benchmark::State& state) {
  SpaceSaving<std::uint32_t> ss(static_cast<std::size_t>(state.range(0)));
  Pcg32 rng(4);
  for (auto _ : state) {
    // Zipf-ish: 30% one hot key, rest spread.
    ss.add(rng.chance(0.3) ? 1u : rng.bounded(100'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(64)->Arg(1024)->ArgName("capacity");

void BM_HeatmapAdd(benchmark::State& state) {
  auto hm = LatencyHeatmap::with_default_bands(Duration::from_sec(1.0));
  Pcg32 rng(5);
  std::int64_t t = 0;
  for (auto _ : state) {
    hm.add(Timestamp::from_us(t += 100),
           Duration::from_ms(static_cast<std::int64_t>(rng.bounded(500))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeatmapAdd);

void BM_PcapWrite(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bench_pcap_" + std::to_string(::getpid()) + ".pcap"))
          .string();
  auto writer = PcapWriter::open(path);
  if (!writer.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  const auto frame = sample_frame(1200);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.value().write(Timestamp::from_us(++t), frame).ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(frame.size()));
  writer.value().close();
  std::remove(path.c_str());
}
BENCHMARK(BM_PcapWrite);

}  // namespace

BENCHMARK_MAIN();
