// Multi-core scale-out: capture -> flow -> bus -> enrichment at 1..8
// workers (ISSUE 6 tentpole bench).
//
// Three angles, all on the same pre-generated trans-Pacific trace:
//
//  * BM_ScalingPipeline — the whole RuruPipeline with N RX queues, N
//    pinned workers and sharded injection (replay_scenario_sharded):
//    one producer lane per queue, per-worker bus publish lanes.  The
//    run also asserts bit-identical measurement output at every N:
//    symmetric RSS puts both directions of a flow on one queue, so the
//    handshake/sample counts must match the 1-worker run exactly
//    (counter `identical_to_1worker`).
//
//  * BM_ScalingShardMakespan — the scaling *model* honest on this
//    container: frames are partitioned with the NIC's own RSS steering
//    (queue_for), then each shard is drained to completion by its own
//    worker, timed sequentially.  Aggregate rate = total frames /
//    slowest shard (the makespan a real N-core host would see, since
//    lanes share nothing: per-queue rings, per-worker tables, per-lane
//    bus queues).  This deliberately removes the 1-core host's
//    scheduler interleaving from the measurement; the environment
//    block in BENCH_scaling.json records the caveat.
//
//  * BM_SoakResidentFlows — millions of concurrent flows resident:
//    per-worker tables at 2M slots are filled to ~1.2M live handshakes
//    each and then probed at full load, shard by shard (makespan
//    model, one ~340MB table instantiated at a time).
//
// Expected shape: near-linear makespan scaling 1 -> 4 (shards share
// nothing), flattening only with RSS shard imbalance; identical sample
// counts at every N.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "driver/eal.hpp"
#include "flow/flow_table.hpp"
#include "flow/worker.hpp"

namespace {

using namespace ruru;

const std::vector<TimedFrame>& trace() {
  static const std::vector<TimedFrame> frames = [] {
    auto model = scenarios::transpacific(0xF162, 4000.0, Duration::from_sec(5.0));
    return ruru::bench::pregenerate(model);
  }();
  return frames;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// --- full pipeline, sharded injection, determinism across N ---

void BM_ScalingPipeline(benchmark::State& state) {
  const auto workers = static_cast<std::uint16_t>(state.range(0));
  static const World world = ruru::bench::scenario_world();
  // Filled by the workers=1 run (registered first); later runs compare.
  static std::uint64_t ref_samples = 0;
  static std::uint64_t ref_handshakes = 0;

  std::uint64_t samples = 0;
  std::uint64_t frames = 0;
  std::uint64_t drops = 0;
  double inject_seconds = 0.0;
  bool identical = true;
  for (auto _ : state) {
    PipelineConfig cfg;
    cfg.num_queues = workers;
    cfg.queue_depth = 16384;
    cfg.enrichment_threads = 1;
    RuruPipeline pipeline(cfg, world.geo, world.as);
    pipeline.start();
    auto model = scenarios::transpacific(0xF162, 4000.0, Duration::from_sec(5.0));
    const ReplayStats rs = replay_scenario_sharded(pipeline, model, /*retry_drops=*/true);
    pipeline.finish();

    const PipelineSummary sum = pipeline.summary();
    const std::uint64_t iter_samples = sum.tracker.samples_emitted;
    const std::uint64_t iter_handshakes = sum.tracker.ack_matched;
    if (workers == 1) {
      ref_samples = iter_samples;
      ref_handshakes = iter_handshakes;
    } else {
      identical = identical && iter_samples == ref_samples &&
                  iter_handshakes == ref_handshakes;
    }
    samples += iter_samples;
    frames += rs.frames;
    drops += rs.inject_drops;
    inject_seconds += rs.wall_seconds;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  state.counters["handshakes"] =
      static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["inject_pps"] =
      inject_seconds > 0 ? static_cast<double>(frames) / inject_seconds : 0.0;
  state.counters["drops"] = static_cast<double>(drops);
  state.counters["identical_to_1worker"] = identical ? 1.0 : 0.0;
}
BENCHMARK(BM_ScalingPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("workers")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- shared-nothing shard makespan: the N-core scaling model ---

void BM_ScalingShardMakespan(benchmark::State& state) {
  const auto workers = static_cast<std::uint16_t>(state.range(0));
  const auto& frames = trace();

  std::uint64_t samples = 0;
  double max_shard = 0.0;
  double min_shard = 0.0;
  double model_pps = 0.0;
  for (auto _ : state) {
    Mempool pool(1 << 16, 2048);
    NicConfig cfg;
    cfg.num_queues = workers;
    cfg.queue_depth = 16384;
    SimNic nic(cfg, pool);

    // Partition with the NIC's own steering hash: shard q is exactly
    // the stream worker q would see live.
    std::vector<std::vector<RxFrame>> shards(workers);
    for (const auto& f : frames) {
      shards[nic.queue_for(f.frame)].push_back({f.frame, f.timestamp});
    }

    double iter_max = 0.0;
    double iter_min = 0.0;
    std::uint64_t iter_samples = 0;
    for (std::uint16_t q = 0; q < workers; ++q) {
      std::uint64_t shard_samples = 0;
      QueueWorker worker(nic, q, 1 << 14,
                         [&shard_samples](const LatencySample&) { ++shard_samples; });
      const std::size_t max_chunk = cfg.queue_depth / 2;
      const auto queued = std::make_unique<bool[]>(max_chunk);
      const auto t0 = std::chrono::steady_clock::now();
      std::span<const RxFrame> rest(shards[q]);
      while (!rest.empty()) {
        // Half-queue-depth chunks: inject a burst, drain it, repeat —
        // the steady state of a lane producer paired with its worker.
        const std::size_t chunk = std::min(rest.size(), max_chunk);
        std::span<const RxFrame> batch = rest.first(chunk);
        nic.inject_shard(q, batch, queued.get());
        for (std::size_t i = 0; i < chunk; ++i) {
          while (!queued[i]) {  // ring/mempool momentarily full: lossless retry
            while (worker.poll_once() != 0) {
            }
            nic.inject_shard(q, batch.subspan(i, 1), queued.get() + i);
          }
        }
        while (worker.poll_once() != 0) {
        }
        rest = rest.subspan(chunk);
      }
      const double dt = seconds_since(t0);
      iter_max = std::max(iter_max, dt);
      iter_min = (q == 0) ? dt : std::min(iter_min, dt);
      iter_samples += shard_samples;
    }
    samples += iter_samples;
    max_shard += iter_max;
    min_shard += iter_min;
    model_pps += static_cast<double>(frames.size()) / iter_max;
  }

  const auto iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(frames.size()) * state.iterations());
  state.counters["aggregate_pps_model"] = model_pps / iters;
  state.counters["shard_imbalance"] =
      min_shard > 0 ? (max_shard / min_shard) : 0.0;
  state.counters["samples"] = static_cast<double>(samples) / iters;
}
BENCHMARK(BM_ScalingShardMakespan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("workers")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- soak: millions of live handshakes resident across worker tables ---

void BM_SoakResidentFlows(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSlotsPerWorker = std::size_t{1} << 21;  // 2M
  constexpr std::size_t kResidentPerWorker = 1'200'000;          // ~57% load
  const Duration stale = Duration::from_sec(3600.0);
  const Timestamp now = Timestamp::from_ns(1'000'000);

  // Synthetic unique flows; rss is a 64-bit mix of the flow ordinal
  // (placement entropy equivalent to a real Toeplitz spread).
  const auto flow_of = [](std::uint64_t i) {
    FiveTuple t;
    t.src = IpAddress(Ipv4Address(10, static_cast<std::uint8_t>(i >> 16),
                                  static_cast<std::uint8_t>(i >> 8),
                                  static_cast<std::uint8_t>(i)));
    t.dst = IpAddress(Ipv4Address(192, 168, static_cast<std::uint8_t>(i >> 24), 1));
    t.src_port = static_cast<std::uint16_t>(20'000 + (i >> 32));
    t.dst_port = 443;
    t.protocol = 6;
    return t;
  };
  const auto rss_of = [](std::uint64_t i) {
    std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<std::uint32_t>(h);
  };

  double max_shard = 0.0;
  std::uint64_t resident_total = 0;
  std::uint64_t probes_total = 0;
  std::uint64_t hits_total = 0;
  for (auto _ : state) {
    double iter_max = 0.0;
    std::uint64_t iter_resident = 0;
    // One worker's table at a time (~340MB each): sequential shards,
    // makespan model as above.
    for (std::size_t w = 0; w < workers; ++w) {
      FlowTable table(kSlotsPerWorker, stale);
      const std::uint64_t base = static_cast<std::uint64_t>(w) << 40;
      for (std::size_t i = 0; i < kResidentPerWorker; ++i) {
        bool inserted = false;
        const FlowKey key = FlowKey::from(flow_of(base + i));
        (void)table.find_or_insert(key, rss_of(base + i), now, inserted);
      }
      iter_resident += table.size();

      // Probe the resident set at full occupancy (strided revisit, so
      // the working set defeats the cache the way a live table does).
      constexpr std::size_t kProbes = 1 << 16;
      std::uint64_t hits = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kProbes; ++i) {
        const std::uint64_t flow = base + (i * 7919) % kResidentPerWorker;
        const FlowKey key = FlowKey::from(flow_of(flow));
        hits += table.find(key, rss_of(flow), now) != FlowTable::kNoSlot ? 1 : 0;
      }
      iter_max = std::max(iter_max, seconds_since(t0));
      probes_total += kProbes;
      hits_total += hits;
    }
    max_shard += iter_max;
    resident_total = iter_resident;  // same every iteration
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(probes_total));
  state.counters["resident_flows_total"] = static_cast<double>(resident_total);
  state.counters["find_hit_per_sec_model"] =
      max_shard > 0 ? static_cast<double>(1 << 16) * static_cast<double>(state.iterations()) /
                          max_shard
                    : 0.0;
  // A handful of the 1.2M inserts (~1e-4) legitimately fail when a probe
  // window fills with live entries; their probes miss.  Anything below
  // ~0.999 would mean the table is losing resident flows.
  state.counters["probe_hit_rate"] =
      probes_total > 0 ? static_cast<double>(hits_total) / static_cast<double>(probes_total)
                       : 0.0;
}
BENCHMARK(BM_SoakResidentFlows)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("workers")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
