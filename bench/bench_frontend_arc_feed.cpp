// E5 / §2 frontends — "multiple thousands of connections per second on a
// live 3D map ... with 30 fps".
//
// The C++-side deliverable is the feed: coalescing samples into per-frame
// arc batches and encoding them as JSON inside WebSocket frames.  This
// bench sweeps the connection rate and reports the feed's capacity:
// frames/sec the encoder can cut, arcs per frame after coalescing, and
// bytes per frame.  Expected shape: arcs/frame stays bounded by the
// pair-geometry (not by connections/sec), so tens of thousands of
// connections/sec remain drawable at 30 fps.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "util/random.hpp"
#include "viz/arc_aggregator.hpp"
#include "viz/frame_encoder.hpp"
#include "viz/websocket.hpp"

namespace {

using namespace ruru;

EnrichedSample synth_sample(Pcg32& rng, int pair_count) {
  EnrichedSample s;
  const int pair = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(pair_count)));
  s.client.city_id = geo_names().intern("src" + std::to_string(pair % 12));
  s.client.latitude = -36.8 + pair % 10;
  s.client.longitude = 174.7;
  s.server.city_id = geo_names().intern("dst" + std::to_string(pair / 12));
  s.server.latitude = 34.0;
  s.server.longitude = -118.2 + pair % 7;
  const std::int64_t ms = 80 + static_cast<std::int64_t>(rng.bounded(700));
  s.total = Duration::from_ms(ms);
  s.internal = Duration::from_ms(5);
  s.external = s.total - s.internal;
  return s;
}

// Full feed pipeline for one simulated second at `conn_rate`, cutting 30
// frames; measures end-to-end feed cost.
void BM_ArcFeedAt30Fps(benchmark::State& state) {
  const auto conn_rate = static_cast<std::uint32_t>(state.range(0));
  Pcg32 rng(0xF3ED);
  ArcAggregator agg;
  FrameEncoder encoder;

  std::uint64_t bytes = 0;
  std::uint64_t arcs = 0;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    // One second of traffic: conn_rate samples, 30 frame cuts.
    const std::uint32_t per_frame = conn_rate / 30;
    for (int frame_i = 0; frame_i < 30; ++frame_i) {
      for (std::uint32_t i = 0; i < per_frame; ++i) agg.add(synth_sample(rng, 60));
      const ArcFrame frame = agg.cut_frame(Timestamp::from_ms(frame_i * 33));
      const std::string json = encoder.encode(frame);
      const auto ws = ws_encode_text(json);
      benchmark::DoNotOptimize(ws.data());
      bytes += ws.size();
      arcs += frame.arcs.size();
      ++frames;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(conn_rate) * state.iterations());
  state.counters["conn_per_s"] = static_cast<double>(conn_rate);
  state.counters["arcs_per_frame"] =
      frames != 0 ? static_cast<double>(arcs) / static_cast<double>(frames) : 0;
  state.counters["bytes_per_frame"] =
      frames != 0 ? static_cast<double>(bytes) / static_cast<double>(frames) : 0;
  // Feed headroom: how many x faster than real time this second encoded.
  state.counters["frames_per_s"] =
      benchmark::Counter(static_cast<double>(frames), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ArcFeedAt30Fps)
    ->Arg(1'000)
    ->Arg(5'000)
    ->Arg(20'000)
    ->Arg(100'000)
    ->ArgName("conn_per_s")
    ->Unit(benchmark::kMillisecond);

// Encoder alone: JSON+WS bytes/sec for frames of varying arc counts.
void BM_FrameEncode(benchmark::State& state) {
  const auto arc_count = static_cast<std::size_t>(state.range(0));
  Pcg32 rng(7);
  ArcAggregator agg;
  for (std::size_t i = 0; i < arc_count * 3; ++i) agg.add(synth_sample(rng, static_cast<int>(arc_count)));
  const ArcFrame frame = agg.cut_frame(Timestamp{});
  FrameEncoder encoder;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const std::string json = encoder.encode(frame);
    benchmark::DoNotOptimize(json.data());
    bytes += json.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["arcs"] = static_cast<double>(frame.arcs.size());
}
BENCHMARK(BM_FrameEncode)->Arg(10)->Arg(100)->Arg(1000)->ArgName("pairs");

// WebSocket framing alone.
void BM_WsEncode(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    const auto ws = ws_encode_text(payload);
    benchmark::DoNotOptimize(ws.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WsEncode)->Arg(128)->Arg(4096)->Arg(65536)->ArgName("payload_bytes");

}  // namespace

BENCHMARK_MAIN();
