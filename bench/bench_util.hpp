#pragma once
// Shared helpers for the experiment benches (DESIGN.md §4).

#include <algorithm>
#include <cmath>
#include <vector>

#include "capture/scenarios.hpp"
#include "capture/traffic_model.hpp"
#include "geo/world.hpp"
#include "util/random.hpp"

namespace ruru::bench {

/// Zipf(s) sampler over ranks [0, n) via a precomputed CDF.  Sampling is
/// a binary search, so pregenerate sequences outside timed loops.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::size_t n, double s = 1.0) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  [[nodiscard]] std::size_t next(Pcg32& rng) const {
    const double u = rng.uniform();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

inline World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto world = build_world(specs);
  if (!world.ok()) std::abort();
  return std::move(world).value();
}

/// Drains a traffic model into a frame vector (pre-generation keeps the
/// generator's cost out of the measured loop).
inline std::vector<TimedFrame> pregenerate(TrafficModel& model) {
  std::vector<TimedFrame> frames;
  while (auto f = model.next()) frames.push_back(std::move(*f));
  return frames;
}

}  // namespace ruru::bench
