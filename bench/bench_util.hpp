#pragma once
// Shared helpers for the experiment benches (DESIGN.md §4).

#include <vector>

#include "capture/scenarios.hpp"
#include "capture/traffic_model.hpp"
#include "geo/world.hpp"

namespace ruru::bench {

inline World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto world = build_world(specs);
  if (!world.ok()) std::abort();
  return std::move(world).value();
}

/// Drains a traffic model into a frame vector (pre-generation keeps the
/// generator's cost out of the measured loop).
inline std::vector<TimedFrame> pregenerate(TrafficModel& model) {
  std::vector<TimedFrame> frames;
  while (auto f = model.next()) frames.push_back(std::move(*f));
  return frames;
}

}  // namespace ruru::bench
