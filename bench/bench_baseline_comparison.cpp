// E8 — Ruru's 3-timestamps-per-flow method vs per-packet passive RTT
// estimators (pping-style TS matching, tcptrace-style seq/ack matching).
//
// Same trace through all three, swept over flow length (data segments).
// Expected shape:
//   * processing cost: Ruru flat per packet and cheapest on long flows
//     (its per-flow state dies after the handshake);
//   * state: Ruru O(open handshakes), tcptrace O(live flows), pping
//     O(packets in flight window) — orders of magnitude apart;
//   * samples: pping >> tcptrace >> Ruru (1/flow) — Ruru trades sample
//     volume for cost, which is the poster's design argument.

#include <benchmark/benchmark.h>

#include "baseline/pping.hpp"
#include "baseline/tcptrace.hpp"
#include "bench_util.hpp"
#include "flow/handshake_tracker.hpp"
#include "net/packet_view.hpp"

namespace {

using namespace ruru;

std::vector<TimedFrame> trace_with_flow_length(double mean_segments) {
  TrafficConfig cfg;
  cfg.seed = 0xBA5E;
  cfg.flows_per_sec = 500;
  cfg.duration = Duration::from_sec(4.0);
  cfg.mean_data_segments = mean_segments;
  TrafficModel model(cfg, scenarios::transpacific_routes());
  return ruru::bench::pregenerate(model);
}

// Pre-parse once so every estimator pays identical parse cost = zero.
struct ParsedTrace {
  std::vector<PacketView> views;
  std::vector<Timestamp> times;
  std::vector<std::uint32_t> rss;
};

ParsedTrace parse_trace(const std::vector<TimedFrame>& frames) {
  ParsedTrace out;
  out.views.reserve(frames.size());
  for (const auto& f : frames) {
    PacketView v;
    if (parse_packet(f.frame, v) != ParseStatus::kOk) continue;
    out.views.push_back(v);
    out.times.push_back(f.timestamp);
    out.rss.push_back(static_cast<std::uint32_t>(FlowKey::from(v.tuple()).hash()));
  }
  return out;
}

const ParsedTrace& trace_for(std::int64_t segments) {
  static std::map<std::int64_t, ParsedTrace> cache;
  auto it = cache.find(segments);
  if (it == cache.end()) {
    it = cache.emplace(segments, parse_trace(trace_with_flow_length(
                                     static_cast<double>(segments)))).first;
  }
  return it->second;
}

void BM_RuruHandshake(benchmark::State& state) {
  const ParsedTrace& t = trace_for(state.range(0));
  std::uint64_t samples = 0;
  std::size_t peak_state = 0;
  for (auto _ : state) {
    HandshakeTracker tracker(1 << 16);
    for (std::size_t i = 0; i < t.views.size(); ++i) {
      if (tracker.process(t.views[i], t.times[i], t.rss[i], 0)) ++samples;
      peak_state = std::max(peak_state, tracker.table().size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(t.views.size()) * state.iterations());
  state.counters["samples"] = static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["peak_state"] = static_cast<double>(peak_state);
}
BENCHMARK(BM_RuruHandshake)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->ArgName("segments")->Unit(benchmark::kMillisecond);

void BM_PpingTsMatching(benchmark::State& state) {
  const ParsedTrace& t = trace_for(state.range(0));
  std::uint64_t samples = 0;
  std::size_t peak_state = 0;
  for (auto _ : state) {
    PpingEstimator est;
    for (std::size_t i = 0; i < t.views.size(); ++i) {
      if (est.process(t.views[i], t.times[i])) ++samples;
    }
    peak_state = std::max(peak_state, est.stats().peak_entries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(t.views.size()) * state.iterations());
  state.counters["samples"] = static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["peak_state"] = static_cast<double>(peak_state);
}
BENCHMARK(BM_PpingTsMatching)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->ArgName("segments")->Unit(benchmark::kMillisecond);

void BM_TcptraceSeqAck(benchmark::State& state) {
  const ParsedTrace& t = trace_for(state.range(0));
  std::uint64_t samples = 0;
  std::size_t peak_state = 0;
  for (auto _ : state) {
    TcptraceEstimator est;
    for (std::size_t i = 0; i < t.views.size(); ++i) {
      if (est.process(t.views[i], t.times[i])) ++samples;
    }
    peak_state = std::max(peak_state, est.stats().peak_entries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(t.views.size()) * state.iterations());
  state.counters["samples"] = static_cast<double>(samples) / static_cast<double>(state.iterations());
  state.counters["peak_state"] = static_cast<double>(peak_state);
}
BENCHMARK(BM_TcptraceSeqAck)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->ArgName("segments")->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
