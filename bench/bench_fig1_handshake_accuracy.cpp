// E1 / Figure 1 — handshake latency calculation accuracy.
//
// Paper claim: the three timestamps (SYN, following SYN-ACK, first ACK)
// decompose end-to-end latency into internal + external halves.  This
// bench replays scenarios with known ground truth through the tracker
// and reports the measurement error, swept over jitter and SYN-loss
// levels.  Expected shape: zero error on clean traffic (the tap sees
// exact timestamps), internal+external == total always, and SYN loss
// inflating external by exactly the RTO (a documented property of the
// method, not a bug).

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench_util.hpp"
#include "flow/handshake_tracker.hpp"
#include "net/packet_view.hpp"

namespace {

using namespace ruru;

struct AccuracyResult {
  double mean_abs_err_ms = 0;
  double max_abs_err_ms = 0;
  double sum_identity_err_ms = 0;  // |internal+external-total| summed
  std::uint64_t samples = 0;
  std::uint64_t packets = 0;
};

AccuracyResult run_accuracy(double jitter_frac, double syn_loss_prob, std::int64_t base_rtt_ms) {
  TrafficConfig cfg;
  cfg.seed = 0xF161;
  cfg.flows_per_sec = 400;
  cfg.duration = Duration::from_sec(5.0);
  cfg.syn_loss_prob = syn_loss_prob;
  cfg.mean_data_segments = 2;

  RouteProfile route;
  route.name = "sweep";
  route.clients = HostPool::from_range(Ipv4Address(10, 1, 0, 0), 200);
  route.servers = HostPool::from_range(Ipv4Address(10, 2, 0, 0), 200);
  route.internal_rtt = Duration::from_ms(5);
  route.external_rtt = Duration::from_ms(base_rtt_ms);
  route.jitter_frac = jitter_frac;

  TrafficModel model(cfg, {route});
  HandshakeTracker tracker(1 << 16);

  // Measured samples keyed by (client, sport).
  std::map<std::pair<std::uint32_t, std::uint16_t>, LatencySample> measured;
  AccuracyResult r;
  while (auto f = model.next()) {
    PacketView view;
    if (parse_packet(f->frame, view) != ParseStatus::kOk) continue;
    ++r.packets;
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    if (auto s = tracker.process(view, f->timestamp, rss, 0)) {
      measured[{s->client.v4.value(), s->client_port}] = *s;
    }
  }

  for (const auto& truth : model.truth()) {
    if (!truth.handshake_completes) continue;
    const auto it = measured.find({truth.tuple.src.v4.value(), truth.tuple.src_port});
    if (it == measured.end()) continue;
    const LatencySample& s = it->second;
    const double err_ext =
        std::abs((s.external() - truth.expected_measured_external()).to_ms());
    const double err_int = std::abs((s.internal() - truth.true_internal).to_ms());
    const double err = err_ext + err_int;
    r.mean_abs_err_ms += err;
    r.max_abs_err_ms = std::max(r.max_abs_err_ms, err);
    r.sum_identity_err_ms +=
        std::abs((s.internal() + s.external() - s.total()).to_ms());
    ++r.samples;
  }
  if (r.samples != 0) r.mean_abs_err_ms /= static_cast<double>(r.samples);
  return r;
}

// Sweep: jitter in {0, 8, 20}% x syn loss in {0, 2, 10}%.
void BM_HandshakeAccuracy(benchmark::State& state) {
  const double jitter = static_cast<double>(state.range(0)) / 100.0;
  const double loss = static_cast<double>(state.range(1)) / 100.0;
  AccuracyResult r;
  for (auto _ : state) {
    r = run_accuracy(jitter, loss, /*base_rtt_ms=*/128);
    benchmark::DoNotOptimize(r);
  }
  state.counters["samples"] = static_cast<double>(r.samples);
  state.counters["mean_abs_err_ms"] = r.mean_abs_err_ms;
  state.counters["max_abs_err_ms"] = r.max_abs_err_ms;
  state.counters["identity_err_ms"] = r.sum_identity_err_ms;  // must be 0
  state.SetItemsProcessed(static_cast<std::int64_t>(r.packets) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HandshakeAccuracy)
    ->ArgsProduct({{0, 8, 20}, {0, 2, 10}})
    ->ArgNames({"jitter_pct", "synloss_pct"})
    ->Unit(benchmark::kMillisecond);

// RTT magnitude sweep: accuracy must be flat from 1 ms to 300 ms routes.
void BM_HandshakeAccuracyVsRtt(benchmark::State& state) {
  AccuracyResult r;
  for (auto _ : state) {
    r = run_accuracy(0.08, 0.0, state.range(0));
    benchmark::DoNotOptimize(r);
  }
  state.counters["samples"] = static_cast<double>(r.samples);
  state.counters["mean_abs_err_ms"] = r.mean_abs_err_ms;
}
BENCHMARK(BM_HandshakeAccuracyVsRtt)
    ->Arg(1)
    ->Arg(30)
    ->Arg(128)
    ->Arg(300)
    ->ArgName("base_rtt_ms")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
