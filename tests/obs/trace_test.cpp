// Flight-recorder primitives (ISSUE 8): event word encoding, the
// 1-in-N hash sampler, ring overwrite semantics at capacity, inert
// handles, the locked multi-producer emit path and the Chrome
// trace_event JSON exporter.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace ruru::obs {
namespace {

TEST(TraceEvent, WordEncodingRoundTrips) {
  TraceEvent e;
  e.ts_ns = 1'234'567'890'123ll;
  e.trace_id = 0xDEADBEEFu;
  e.dur_ns = 0xCAFEBABEu;
  e.arg = 42;
  e.stage = TraceStage::kEnrich;
  e.kind = TraceKind::kSpan;
  e.shard = 7;

  const TraceEvent d = TraceEvent::from_words(e.word0(), e.word1(), e.word2());
  EXPECT_EQ(d.ts_ns, e.ts_ns);
  EXPECT_EQ(d.trace_id, e.trace_id);
  EXPECT_EQ(d.dur_ns, e.dur_ns);
  EXPECT_EQ(d.arg, e.arg);
  EXPECT_EQ(d.stage, e.stage);
  EXPECT_EQ(d.kind, e.kind);
  EXPECT_EQ(d.shard, e.shard);
}

TEST(TraceIdFor, PureFunctionOfHashAndRate) {
  // Off (sample_n == 0): never selects.
  EXPECT_EQ(trace_id_for(64, 0), 0u);
  // Hash 0 never selects — 0 is the "untraced" sentinel.
  EXPECT_EQ(trace_id_for(0, 1), 0u);
  // hash % n == 0 selects, id IS the hash (both directions share it).
  EXPECT_EQ(trace_id_for(128, 64), 128u);
  EXPECT_EQ(trace_id_for(129, 64), 0u);
  // sample_n == 1 traces everything nonzero.
  EXPECT_EQ(trace_id_for(7, 1), 7u);
  // Determinism: same inputs, same answer, everywhere in the pipeline.
  EXPECT_EQ(trace_id_for(12345, 64), trace_id_for(12345, 64));
}

TraceEvent instant_at(std::int64_t ts, std::uint32_t arg) {
  TraceEvent e;
  e.ts_ns = ts;
  e.arg = arg;
  e.stage = TraceStage::kControl;
  e.kind = TraceKind::kInstant;
  return e;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(2).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(4096).capacity(), 4096u);
  EXPECT_EQ(TraceRing(5000).capacity(), 8192u);
}

TEST(TraceRing, SnapshotBelowCapacityReturnsAllInOrder) {
  TraceRing ring(8);
  for (std::uint32_t i = 0; i < 5; ++i) ring.emit(instant_at(100 + i, i));
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].ts_ns, 100 + i);
    EXPECT_EQ(out[i].arg, i);
  }
  EXPECT_EQ(ring.emitted(), 5u);
}

TEST(TraceRing, OverwriteAtCapacityKeepsNewestInOrder) {
  TraceRing ring(8);  // capacity 8
  const std::uint32_t total = 100;
  for (std::uint32_t i = 0; i < total; ++i) ring.emit(instant_at(i, i));
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  // Quiescent writer: all 8 newest survive (the >= capacity-1 guarantee
  // only ever drops a slot under a *concurrent* overwrite).
  ASSERT_GE(out.size(), ring.capacity() - 1);
  ASSERT_LE(out.size(), ring.capacity());
  // Newest `out.size()` generations, oldest first, contiguous.
  const std::uint32_t first = total - static_cast<std::uint32_t>(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arg, first + static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(ring.emitted(), total);
}

TEST(TraceRing, SnapshotDuringConcurrentWritesNeverTears) {
  // A writer hammers the ring while a reader snapshots in a loop.  Every
  // event the reader sees must be one the writer actually emitted
  // (ts == arg pattern), in strictly increasing generation order — the
  // torn-slot filter drops, never corrupts.
  TraceRing ring(16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.emit(instant_at(i, i));
      ++i;
    }
  });
  std::vector<TraceEvent> out;
  for (int round = 0; round < 2000; ++round) {
    ring.snapshot(out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].ts_ns, out[i].arg) << "torn event surfaced";
      if (i > 0) {
        ASSERT_GT(out[i].arg, out[i - 1].arg) << "order violated";
      }
    }
  }
  stop.store(true);
  writer.join();
}

TEST(TraceRing, EmitLockedFromManyThreadsLosesNothingBelowCapacity) {
  TraceRing ring(1024);
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPer = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint32_t i = 0; i < kPer; ++i) {
        ring.emit_locked(instant_at(t, i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.emitted(), static_cast<std::uint64_t>(kThreads) * kPer);
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreads) * kPer);
}

TEST(TraceHandle, DefaultConstructedIsInert) {
  TraceHandle h;
  EXPECT_FALSE(h.attached());
  // No ring: calls are no-ops, not crashes.
  h.span(TraceStage::kNic, 1, 100, 50);
  h.instant(TraceStage::kWorker, 1, 100);
}

TEST(Tracer, DisabledTracerHandsOutInertHandles) {
  Tracer tracer;  // default config: sample_n == 0
  EXPECT_FALSE(tracer.enabled());
  TraceHandle h = tracer.ring("worker.q0");
  EXPECT_FALSE(h.attached());
  EXPECT_EQ(tracer.flow_trace_id(640), 0u);
  EXPECT_EQ(tracer.events_emitted(), 0u);
}

TEST(Tracer, RingRegistrationDedupesByName) {
  Tracer tracer;
  tracer.configure(TracerConfig{.sample_n = 64, .ring_capacity = 16});
  ASSERT_TRUE(tracer.enabled());
  TraceHandle a = tracer.ring("worker.q0");
  TraceHandle b = tracer.ring("worker.q0");
  ASSERT_TRUE(a.attached());
  a.instant(TraceStage::kWorker, 0, 10);
  b.instant(TraceStage::kWorker, 0, 20);
  std::vector<std::pair<std::string, std::vector<TraceEvent>>> all;
  tracer.snapshot_all(all);
  ASSERT_EQ(all.size(), 1u);  // same ring, not two
  EXPECT_EQ(all[0].first, "worker.q0");
  EXPECT_EQ(all[0].second.size(), 2u);
  EXPECT_EQ(tracer.events_emitted(), 2u);
}

TEST(Tracer, ChromeJsonIsStructurallyValid) {
  Tracer tracer;
  tracer.configure(TracerConfig{.sample_n = 1, .ring_capacity = 64});
  TraceHandle nic = tracer.ring("worker.q0");
  TraceHandle sink = tracer.shared_ring("tsdb.sink");
  // One sampled lifecycle: nic span -> tsdb span, same trace id.
  nic.span(TraceStage::kNic, 77, 1000, 500, /*arg=*/60, /*shard=*/0);
  sink.span(TraceStage::kTsdb, 77, 2000, 300, /*arg=*/3, /*shard=*/0);
  // A stage-level span with no trace id: present as "X", no flow arrows.
  nic.span(TraceStage::kWorker, 0, 1500, 200);

  std::string json = tracer.export_chrome_json();
  while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) json.pop_back();
  // Wrapper object with the traceEvents array.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  long depth = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') { ++i; continue; }
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}') --depth;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    ASSERT_GE(depth, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(brackets, 0);
  // Complete events for the spans, thread-name metadata per ring, and
  // flow arrows ("s" start / "f" finish) binding trace id 77 across
  // the two tracks.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker.q0\""), std::string::npos);
  EXPECT_NE(json.find("\"tsdb.sink\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"nic\""), std::string::npos);
  EXPECT_NE(json.find("\"tsdb\""), std::string::npos);
}

TEST(Tracer, FlowArrowsNeedAtLeastTwoEvents) {
  Tracer tracer;
  tracer.configure(TracerConfig{.sample_n = 1, .ring_capacity = 16});
  TraceHandle h = tracer.ring("worker.q0");
  // A lone traced event: an "X" span but no "s"/"f" pair (an arrow to
  // nowhere would be noise).
  h.span(TraceStage::kNic, 99, 1000, 100);
  const std::string json = tracer.export_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"f\""), std::string::npos);
}

}  // namespace
}  // namespace ruru::obs
