#include "obs/exporters.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "tsdb/query.hpp"

namespace ruru::obs {
namespace {

/// A registry with one of each metric kind and fully determined values:
/// the histogram holds a single sample so every quantile is exact.
MetricsSnapshot golden_snapshot() {
  MetricsRegistry reg;
  reg.counter("nic.rx_packets").add(1234);
  reg.gauge("bus.pending").set(17.5);
  reg.histogram("enrich.batch_ns").record(std::int64_t{1000});
  return reg.snapshot(Timestamp::from_sec(42.0));
}

TEST(PrometheusRenderTest, GoldenExposition) {
  const std::string text = render_prometheus(golden_snapshot());
  const std::string expected =
      "# TYPE ruru_nic_rx_packets counter\n"
      "ruru_nic_rx_packets 1234\n"
      "# TYPE ruru_bus_pending gauge\n"
      "ruru_bus_pending 17.5\n"
      "# TYPE ruru_enrich_batch_ns summary\n"
      "ruru_enrich_batch_ns{quantile=\"0.5\"} 1000\n"
      "ruru_enrich_batch_ns{quantile=\"0.95\"} 1000\n"
      "ruru_enrich_batch_ns{quantile=\"0.99\"} 1000\n"
      "ruru_enrich_batch_ns_sum 1000\n"
      "ruru_enrich_batch_ns_count 1\n";
  EXPECT_EQ(text, expected);
}

TEST(PrometheusRenderTest, SanitizesMetricNames) {
  MetricsRegistry reg;
  reg.counter("nic.queue-0/drops").add(1);
  const std::string text = render_prometheus(reg.snapshot(Timestamp{}));
  EXPECT_NE(text.find("ruru_nic_queue_0_drops 1\n"), std::string::npos);
}

TEST(PrometheusRenderTest, EscapesLabelValues) {
  // Per the exposition format, label values escape backslash, newline
  // and double-quote — in that order, so the backslash introduced by
  // the latter two is not itself re-escaped.
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("\\\n\""), "\\\\\\n\\\"");
  EXPECT_EQ(escape_label_value(""), "");
}

TEST(PrometheusExporterTest, StreamVariantAppendsExpositionPerSnapshot) {
  std::ostringstream out;
  PrometheusExporter exporter(out);
  const MetricsSnapshot snap = golden_snapshot();
  const SnapshotDelta delta = SnapshotDelta::between(snap, snap);
  exporter.export_snapshot(snap, delta);
  exporter.export_snapshot(snap, delta);
  const std::string s = out.str();
  // Two full expositions, blank-line separated.
  EXPECT_NE(s.find("ruru_nic_rx_packets 1234\n"), std::string::npos);
  EXPECT_NE(s.find("ruru_nic_rx_packets 1234\n", s.find("ruru_nic_rx_packets 1234\n") + 1),
            std::string::npos);
}

TEST(JsonLinesTest, LineCarriesTotalsRatesAndHistogramStats) {
  MetricsRegistry reg;
  CounterHandle c = reg.counter("pkts");
  c.add(100);
  const MetricsSnapshot s1 = reg.snapshot(Timestamp::from_sec(1.0));
  c.add(50);
  const MetricsSnapshot s2 = reg.snapshot(Timestamp::from_sec(2.0));
  const std::string line = render_json_line(s2, SnapshotDelta::between(s1, s2));
  EXPECT_NE(line.find("\"ts_s\":2"), std::string::npos);
  EXPECT_NE(line.find("\"interval_s\":1"), std::string::npos);
  EXPECT_NE(line.find("\"pkts\":{\"total\":150,\"rate\":50"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line
}

TEST(JsonLinesTest, FlushSyncsTheStream) {
  MetricsRegistry reg;
  reg.counter("pkts").add(1);
  std::ostringstream out;
  JsonLinesExporter exporter(out);
  const MetricsSnapshot s = reg.snapshot(Timestamp::from_sec(1.0));
  exporter.export_snapshot(s, SnapshotDelta::between(s, s));
  exporter.flush();  // no-throw contract, stream already carries the line
  EXPECT_NE(out.str().find("\"pkts\""), std::string::npos);
  // Base-class default: flush on an exporter that never buffers is a
  // no-op, not an abstract hole.
  PrometheusExporter prom(out);
  static_cast<MetricsExporter&>(prom).flush();
}

TEST(SelfIngestTest, WritesPrefixedSeriesWithStatTags) {
  MetricsRegistry reg;
  CounterHandle c = reg.counter("nic.rx_packets");
  GaugeHandle g = reg.gauge("bus.pending");
  HistogramHandle h = reg.histogram("enrich.batch_ns");

  TsdbEngine db;
  SelfIngestExporter exporter(db);

  c.add(100);
  g.set(5.0);
  h.record(std::int64_t{2000});
  const MetricsSnapshot s1 = reg.snapshot(Timestamp::from_sec(1.0));
  exporter.export_snapshot(s1, SnapshotDelta::between(s1, s1));

  c.add(60);
  const MetricsSnapshot s2 = reg.snapshot(Timestamp::from_sec(3.0));
  exporter.export_snapshot(s2, SnapshotDelta::between(s1, s2));

  const Timestamp t0;
  const Timestamp t1 = Timestamp::from_sec(100.0);
  const auto totals = db.aggregate("ruru.self.nic.rx_packets", TagSet{}.add("stat", "total"),
                                   t0, t1);
  EXPECT_EQ(totals.count, 2u);
  EXPECT_DOUBLE_EQ(totals.max, 160.0);

  // Rate over the 2 s second interval: 60 / 2 = 30/s.
  const auto rates = db.aggregate("ruru.self.nic.rx_packets", TagSet{}.add("stat", "rate"),
                                  t0, t1);
  EXPECT_EQ(rates.count, 2u);
  EXPECT_DOUBLE_EQ(rates.max, 30.0);

  const auto gauge = db.aggregate("ruru.self.bus.pending", TagSet{}.add("stat", "value"),
                                  t0, t1);
  EXPECT_EQ(gauge.count, 2u);
  EXPECT_DOUBLE_EQ(gauge.max, 5.0);

  const auto p95 = db.aggregate("ruru.self.enrich.batch_ns", TagSet{}.add("stat", "p95"),
                                t0, t1);
  EXPECT_EQ(p95.count, 2u);
  EXPECT_DOUBLE_EQ(p95.max, 2000.0);  // single sample: quantiles exact
}

}  // namespace
}  // namespace ruru::obs
