#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/histogram.hpp"

namespace ruru::obs {
namespace {

TEST(MetricsRegistryTest, DefaultHandlesAreInertNoOps) {
  CounterHandle c;
  GaugeHandle g;
  HistogramHandle h;
  EXPECT_FALSE(c.attached());
  EXPECT_FALSE(g.attached());
  EXPECT_FALSE(h.attached());
  c.add(5);                 // must not crash
  g.set(1.0);
  h.record(std::int64_t{42});
  h.record_shared(std::int64_t{42});
}

TEST(MetricsRegistryTest, CounterShardsMergeOnSnapshot) {
  MetricsRegistry reg;
  CounterHandle a = reg.counter("pkts", 0);
  CounterHandle b = reg.counter("pkts", 1);
  CounterHandle c = reg.counter("pkts", 2);
  a.add(10);
  b.add(100);
  c.add(1000);
  b.add();  // default increment of 1
  const MetricsSnapshot snap = reg.snapshot(Timestamp::from_sec(1.0));
  ASSERT_NE(snap.counter("pkts"), nullptr);
  EXPECT_EQ(*snap.counter("pkts"), 1111u);
  EXPECT_EQ(snap.counter_or("missing", 7), 7u);
}

TEST(MetricsRegistryTest, SameNameSameShardYieldsSameCell) {
  MetricsRegistry reg;
  CounterHandle a = reg.counter("x");
  CounterHandle b = reg.counter("x");
  a.add(1);
  b.add(2);
  EXPECT_EQ(*reg.snapshot(Timestamp{}).counter("x"), 3u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  GaugeHandle g = reg.gauge("depth");
  g.set(10.0);
  g.set(4.5);
  const MetricsSnapshot snap = reg.snapshot(Timestamp{});
  ASSERT_NE(snap.gauge("depth"), nullptr);
  EXPECT_DOUBLE_EQ(*snap.gauge("depth"), 4.5);
}

TEST(MetricsRegistryTest, CallbackMetricsArePolledAtSnapshotTime) {
  MetricsRegistry reg;
  std::uint64_t live = 3;
  reg.register_counter_fn("cb.count", [&live] { return live; });
  reg.register_gauge_fn("cb.gauge", [&live] { return static_cast<double>(live) * 2.0; });
  EXPECT_EQ(*reg.snapshot(Timestamp{}).counter("cb.count"), 3u);
  live = 9;
  const MetricsSnapshot snap = reg.snapshot(Timestamp{});
  EXPECT_EQ(*snap.counter("cb.count"), 9u);
  EXPECT_DOUBLE_EQ(*snap.gauge("cb.gauge"), 18.0);
}

TEST(MetricsHistogramTest, SingleShardMatchesReferenceHistogram) {
  MetricsRegistry reg;
  HistogramHandle h = reg.histogram("lat");
  Histogram reference;
  for (std::int64_t v : {1, 5, 100, 1000, 12345, 999999, 77}) {
    h.record(v);
    reference.record(v);
  }
  const MetricsSnapshot snap = reg.snapshot(Timestamp{});
  const HistogramStats* stats = snap.histogram("lat");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, reference.count());
  EXPECT_EQ(stats->min, reference.min());
  EXPECT_EQ(stats->max, reference.max());
  EXPECT_DOUBLE_EQ(stats->mean(), reference.mean());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(stats->percentile(q), reference.percentile(q)) << "q=" << q;
  }
}

TEST(MetricsHistogramTest, MergeAcrossShardsStaysWithinQuantileErrorBound) {
  MetricsRegistry reg;
  constexpr int kShards = 4;
  std::vector<HistogramHandle> handles;
  for (int s = 0; s < kShards; ++s) handles.push_back(reg.histogram("lat", s));

  // 1..100000 ns round-robin across shards: exact quantiles are known,
  // so the merged histogram's bucket representatives must land within
  // the log-linear error bound (1/32 minor buckets -> <= ~3.2%).
  constexpr std::int64_t kN = 100'000;
  for (std::int64_t v = 1; v <= kN; ++v) {
    handles[static_cast<std::size_t>(v % kShards)].record(v);
  }
  const MetricsSnapshot snap = reg.snapshot(Timestamp{});
  const HistogramStats* stats = snap.histogram("lat");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(stats->min, 1);
  EXPECT_EQ(stats->max, kN);
  EXPECT_NEAR(stats->mean(), static_cast<double>(kN + 1) / 2.0, 0.5);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double exact = q * static_cast<double>(kN);
    const double got = static_cast<double>(stats->percentile(q));
    EXPECT_NEAR(got, exact, exact * 0.032) << "q=" << q;
  }
}

TEST(MetricsHistogramTest, SharedRecordingKeepsExactCounts) {
  MetricsRegistry reg;
  HistogramHandle h = reg.histogram("shared");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record_shared(static_cast<std::int64_t>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot(Timestamp{});
  const HistogramStats* stats = snap.histogram("shared");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, static_cast<std::uint64_t>(kThreads * kPerThread));
  constexpr std::int64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(stats->sum, kTotal * (kTotal + 1) / 2);
}

// The TSan gate: per-shard writers plus a hammering snapshot reader.
// Counts must balance exactly once the writers join (single-writer
// shards lose nothing), and no torn/raced state may be observed.
TEST(MetricsConcurrencyTest, ConcurrentIncrementAndSnapshotIsRaceFreeAndExact) {
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50'000;

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    CounterHandle c = reg.counter("ops", static_cast<std::size_t>(w));
    HistogramHandle h = reg.histogram("lat", static_cast<std::size_t>(w));
    writers.emplace_back([c, h] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        c.add();
        h.record(static_cast<std::int64_t>(i % 1000 + 1));
      }
    });
  }

  std::atomic<bool> stop{false};
  std::thread reader([&reg, &stop] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = reg.snapshot(Timestamp{});
      const std::uint64_t now = snap.counter_or("ops");
      EXPECT_GE(now, last);  // counters are monotone
      last = now;
      const HistogramStats* h = snap.histogram("lat");
      ASSERT_NE(h, nullptr);
      EXPECT_LE(h->count, kWriters * kPerWriter);
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const MetricsSnapshot final_snap = reg.snapshot(Timestamp{});
  EXPECT_EQ(final_snap.counter_or("ops"), kWriters * kPerWriter);
  EXPECT_EQ(final_snap.histogram("lat")->count, kWriters * kPerWriter);
}

}  // namespace
}  // namespace ruru::obs
