// TSC trace clock (ISSUE 8): calibration sanity, monotonic reads and
// parity against the steady_clock oracle it calibrated from.

#include "obs/tsc_clock.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace ruru::obs {
namespace {

TEST(TscClock, CalibrationIsSaneOrFallsBack) {
  const TscCalibration cal = calibrate_tsc();
  if (!cal.usable) {
    // Hosts without an invariant counter legitimately decline — the
    // clock then forwards to steady_clock and all other tests still run.
    SUCCEED() << "TSC unusable on this host; steady_clock fallback in effect";
    return;
  }
  // ns_per_tick bounds mirror the calibrator's own sanity window
  // (counter frequency between 1 MHz and 10 GHz).
  EXPECT_GT(cal.ns_per_tick, 0.0);
  EXPECT_LT(cal.ns_per_tick, 1000.0);
  EXPECT_GE(cal.ns_per_tick, 0.1);
}

TEST(TscClock, NowIsMonotonicNonDecreasing) {
  const TscClock& clock = trace_clock();
  std::int64_t prev = clock.now_ns();
  for (int i = 0; i < 100000; ++i) {
    const std::int64_t t = clock.now_ns();
    ASSERT_GE(t, prev) << "iteration " << i;
    prev = t;
  }
}

TEST(TscClock, TracksOracleOverSleep) {
  // The calibrated clock and the steady_clock oracle measure the same
  // 50 ms sleep.  Tolerance is generous (20% + 5 ms) — calibration runs
  // over a 2 ms window, so a few thousand ppm of drift is expected; what
  // this catches is unit errors (ms vs ns, tick-rate off by 2x+).
  const TscClock& clock = trace_clock();
  const std::int64_t a0 = clock.now_ns();
  const std::int64_t o0 = TscClock::oracle_now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::int64_t a1 = clock.now_ns();
  const std::int64_t o1 = TscClock::oracle_now_ns();

  const double tsc_elapsed = static_cast<double>(a1 - a0);
  const double oracle_elapsed = static_cast<double>(o1 - o0);
  ASSERT_GT(oracle_elapsed, 0.0);
  const double err = tsc_elapsed > oracle_elapsed ? tsc_elapsed - oracle_elapsed
                                                  : oracle_elapsed - tsc_elapsed;
  EXPECT_LT(err, 0.20 * oracle_elapsed + 5e6)
      << "tsc=" << tsc_elapsed << "ns oracle=" << oracle_elapsed << "ns";
}

TEST(TscClock, AnchoredToSteadyEpoch) {
  // now_ns() is anchored to the same epoch as the oracle, so absolute
  // values interoperate with timestamps other components take from
  // steady_clock directly (enqueued_at stamps, histogram math).
  const TscClock& clock = trace_clock();
  const std::int64_t t = clock.now_ns();
  const std::int64_t o = TscClock::oracle_now_ns();
  const std::int64_t diff = t > o ? t - o : o - t;
  // Within one second of each other — the anchor was taken at first use,
  // drift since is ppm-scale.
  EXPECT_LT(diff, 1'000'000'000ll);
}

TEST(TscClock, SingletonReturnsSameInstance) {
  const TscClock& a = trace_clock();
  const TscClock& b = trace_clock();
  EXPECT_EQ(&a, &b);
}

TEST(TscClock, ClockInterfaceMatchesNowNs) {
  // TscClock is a ruru::Clock: now() must be the same reading as
  // now_ns(), just wrapped.
  const TscClock& clock = trace_clock();
  const std::int64_t lo = clock.now_ns();
  const Timestamp mid = clock.now();
  const std::int64_t hi = clock.now_ns();
  EXPECT_GE(mid.ns, lo);
  EXPECT_LE(mid.ns, hi);
}

}  // namespace
}  // namespace ruru::obs
