#include "obs/snapshot_timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace ruru::obs {
namespace {

/// Captures every (snapshot, delta) pair the timer fans out.
class RecordingExporter final : public MetricsExporter {
 public:
  void export_snapshot(const MetricsSnapshot& snap, const SnapshotDelta& delta) override {
    snapshots.push_back(snap);
    deltas.push_back(delta);
  }
  [[nodiscard]] std::string_view name() const override { return "recording"; }

  std::vector<MetricsSnapshot> snapshots;
  std::vector<SnapshotDelta> deltas;
};

TEST(SnapshotDeltaTest, DeltaAndRateMathAcrossTwoIntervals) {
  MetricsRegistry reg;
  CounterHandle c = reg.counter("pkts");
  HistogramHandle h = reg.histogram("lat");

  c.add(100);
  h.record(std::int64_t{10});
  const MetricsSnapshot s1 = reg.snapshot(Timestamp::from_sec(1.0));

  c.add(150);
  h.record(std::int64_t{20});
  h.record(std::int64_t{30});
  const MetricsSnapshot s2 = reg.snapshot(Timestamp::from_sec(3.0));

  const SnapshotDelta d = SnapshotDelta::between(s1, s2);
  EXPECT_DOUBLE_EQ(d.interval_s, 2.0);
  const MetricRate* r = d.counter("pkts");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->delta, 150u);
  EXPECT_DOUBLE_EQ(r->per_sec, 75.0);
  ASSERT_EQ(d.histogram_counts.size(), 1u);
  EXPECT_EQ(d.histogram_counts[0].delta, 2u);  // two new records
  EXPECT_DOUBLE_EQ(d.histogram_counts[0].per_sec, 1.0);

  // Third interval: nothing recorded -> zero deltas, zero rates.
  const MetricsSnapshot s3 = reg.snapshot(Timestamp::from_sec(4.0));
  const SnapshotDelta d2 = SnapshotDelta::between(s2, s3);
  EXPECT_EQ(d2.counter("pkts")->delta, 0u);
  EXPECT_DOUBLE_EQ(d2.counter("pkts")->per_sec, 0.0);
}

TEST(SnapshotDeltaTest, CounterResetNeverUnderflows) {
  MetricsSnapshot prev;
  prev.taken_at = Timestamp::from_sec(1.0);
  prev.counters.emplace_back("pkts", 500u);
  MetricsSnapshot cur;
  cur.taken_at = Timestamp::from_sec(2.0);
  cur.counters.emplace_back("pkts", 20u);  // reset (e.g. new run)
  const SnapshotDelta d = SnapshotDelta::between(prev, cur);
  EXPECT_EQ(d.counter("pkts")->delta, 0u);
  EXPECT_DOUBLE_EQ(d.counter("pkts")->per_sec, 0.0);
}

TEST(SnapshotTimerTest, ManualTicksDriveExportersWithSimClock) {
  MetricsRegistry reg;
  CounterHandle c = reg.counter("pkts");
  SimClock clock(Timestamp::from_sec(10.0));
  SnapshotTimer timer(reg, Duration::from_sec(1.0), &clock);
  auto exporter = std::make_shared<RecordingExporter>();
  timer.add_exporter(exporter);

  c.add(40);
  timer.tick();
  clock.advance(Duration::from_sec(2.0));
  c.add(80);
  timer.tick();

  EXPECT_EQ(timer.ticks(), 2u);
  ASSERT_EQ(exporter->snapshots.size(), 2u);
  EXPECT_EQ(exporter->snapshots[0].counter_or("pkts"), 40u);
  EXPECT_EQ(exporter->snapshots[1].counter_or("pkts"), 120u);
  // First tick has no previous snapshot: the self-delta has rate 0.
  EXPECT_DOUBLE_EQ(exporter->deltas[0].counter("pkts")->per_sec, 0.0);
  // Second tick: 80 more over 2 simulated seconds.
  EXPECT_EQ(exporter->deltas[1].counter("pkts")->delta, 80u);
  EXPECT_DOUBLE_EQ(exporter->deltas[1].counter("pkts")->per_sec, 40.0);
  EXPECT_EQ(timer.last_snapshot().counter_or("pkts"), 120u);
}

TEST(SnapshotTimerTest, ThreadTicksPeriodicallyAndStopTakesFinalSnapshot) {
  MetricsRegistry reg;
  CounterHandle c = reg.counter("pkts");
  SnapshotTimer timer(reg, Duration::from_ms(10));
  auto exporter = std::make_shared<RecordingExporter>();
  timer.add_exporter(exporter);

  timer.start();
  c.add(7);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  timer.stop();  // joins, then one final tick

  EXPECT_GE(timer.ticks(), 2u);  // several periodic + the final one
  ASSERT_FALSE(exporter->snapshots.empty());
  EXPECT_EQ(exporter->snapshots.back().counter_or("pkts"), 7u);

  const std::uint64_t after_stop = timer.ticks();
  timer.stop();  // idempotent
  EXPECT_EQ(timer.ticks(), after_stop);
}

TEST(SnapshotTimerTest, StopWithoutStartStillDrainsOnce) {
  MetricsRegistry reg;
  CounterHandle c = reg.counter("pkts");
  c.add(5);
  SnapshotTimer timer(reg, Duration::from_sec(100.0));
  auto exporter = std::make_shared<RecordingExporter>();
  timer.add_exporter(exporter);
  timer.stop();  // never started: no thread to join, but the final drain still runs
  ASSERT_EQ(exporter->snapshots.size(), 1u);
  EXPECT_EQ(exporter->snapshots[0].counter_or("pkts"), 5u);
  EXPECT_EQ(timer.ticks(), 1u);
  timer.stop();  // idempotent: the drain happens exactly once
  EXPECT_EQ(exporter->snapshots.size(), 1u);
  EXPECT_EQ(timer.ticks(), 1u);
}

TEST(SnapshotTimerTest, StartedButImmediatelyStoppedStillExportsOnce) {
  MetricsRegistry reg;
  CounterHandle c = reg.counter("pkts");
  c.add(3);
  SnapshotTimer timer(reg, Duration::from_sec(100.0));  // never fires on its own
  auto exporter = std::make_shared<RecordingExporter>();
  timer.add_exporter(exporter);
  timer.start();
  timer.stop();  // short run: the final tick is the only export
  ASSERT_EQ(exporter->snapshots.size(), 1u);
  EXPECT_EQ(exporter->snapshots[0].counter_or("pkts"), 3u);
}

}  // namespace
}  // namespace ruru::obs
