// Stall watchdog (ISSUE 8): SimClock-driven stall detection, re-arm on
// recovery, on-demand dumps carrying ring events, and the backlog gate
// (no pending work == no stall).

#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/time.hpp"

namespace ruru::obs {
namespace {

struct Fixture {
  SimClock clock{Timestamp{1'000'000'000}};
  std::uint64_t counter = 0;
  double backlog = 0.0;
  std::vector<WatchdogReport> reports;

  std::unique_ptr<Watchdog> make(const Tracer* tracer = nullptr,
                                 Duration stall_after = Duration::from_sec(5.0)) {
    WatchdogConfig cfg;
    cfg.stall_after = stall_after;
    cfg.dump_events = 8;
    auto dog = std::make_unique<Watchdog>(cfg, tracer, &clock);
    dog->add_stage(
        "enrich", [this] { return counter; }, [this] { return backlog; });
    dog->set_report_sink([this](const WatchdogReport& r) { reports.push_back(r); });
    return dog;
  }
};

TEST(Watchdog, FrozenCounterWithBacklogFiresOnce) {
  Fixture f;
  auto dog = f.make();
  f.backlog = 10.0;

  dog->poll_now();  // priming pass: baselines, never fires
  EXPECT_EQ(dog->stalls_detected(), 0u);

  f.clock.advance(Duration::from_sec(6.0));
  dog->poll_now();  // frozen for 6s > 5s with backlog: stall
  ASSERT_EQ(dog->stalls_detected(), 1u);
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].reason, "stall");
  EXPECT_EQ(f.reports[0].stage, "enrich");
  EXPECT_GE(f.reports[0].stalled_for.to_sec(), 6.0);
  EXPECT_EQ(f.reports[0].backlog, 10.0);

  f.clock.advance(Duration::from_sec(6.0));
  dog->poll_now();  // still frozen: no duplicate report until it re-arms
  EXPECT_EQ(dog->stalls_detected(), 1u);
}

TEST(Watchdog, ProgressReArmsTheStage) {
  Fixture f;
  auto dog = f.make();
  f.backlog = 1.0;
  dog->poll_now();
  f.clock.advance(Duration::from_sec(6.0));
  dog->poll_now();
  ASSERT_EQ(dog->stalls_detected(), 1u);

  // Counter moves: recovered.  The next freeze fires again.
  ++f.counter;
  dog->poll_now();
  f.clock.advance(Duration::from_sec(6.0));
  dog->poll_now();
  EXPECT_EQ(dog->stalls_detected(), 2u);
}

TEST(Watchdog, NoBacklogMeansNoStall) {
  Fixture f;
  auto dog = f.make();
  f.backlog = 0.0;  // idle, nothing pending
  dog->poll_now();
  f.clock.advance(Duration::from_sec(60.0));
  dog->poll_now();  // frozen forever but with an empty queue: fine
  EXPECT_EQ(dog->stalls_detected(), 0u);
  EXPECT_TRUE(f.reports.empty());
}

TEST(Watchdog, StageWithoutBacklogGaugeMustKeepMoving) {
  SimClock clock{Timestamp{0}};
  std::uint64_t ticks = 0;
  std::vector<WatchdogReport> reports;
  WatchdogConfig cfg;
  cfg.stall_after = Duration::from_sec(5.0);
  Watchdog dog(cfg, nullptr, &clock);
  dog.add_stage("snapshot", [&] { return ticks; });  // time-driven: no gauge
  dog.set_report_sink([&](const WatchdogReport& r) { reports.push_back(r); });

  dog.poll_now();
  clock.advance(Duration::from_sec(6.0));
  dog.poll_now();
  ASSERT_EQ(dog.stalls_detected(), 1u);
  EXPECT_EQ(reports[0].stage, "snapshot");
}

TEST(Watchdog, RequestedDumpCarriesRingEvents) {
  Tracer tracer;
  tracer.configure(TracerConfig{.sample_n = 1, .ring_capacity = 16});
  TraceHandle h = tracer.ring("worker.q0");
  h.span(TraceStage::kNic, 4242, 1000, 500, /*arg=*/60, /*shard=*/0);
  h.instant(TraceStage::kWorker, 4242, 1600);

  Fixture f;
  auto dog = f.make(&tracer);
  dog->poll_now();  // prime
  dog->request_dump();
  dog->poll_now();

  ASSERT_EQ(dog->dumps_taken(), 1u);
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].reason, "dump");
  // The flight record names the ring and the stages of its last events.
  EXPECT_NE(f.reports[0].dump.find("worker.q0"), std::string::npos);
  EXPECT_NE(f.reports[0].dump.find("nic"), std::string::npos);
  EXPECT_NE(f.reports[0].dump.find("worker"), std::string::npos);
  // Dump request is one-shot: consumed by that poll.
  dog->poll_now();
  EXPECT_EQ(dog->dumps_taken(), 1u);
}

TEST(Watchdog, StallReportIncludesFlightRecord) {
  Tracer tracer;
  tracer.configure(TracerConfig{.sample_n = 1, .ring_capacity = 16});
  TraceHandle h = tracer.ring("enrich.w0");
  h.instant(TraceStage::kEnrich, 7, 500);

  Fixture f;
  auto dog = f.make(&tracer);
  f.backlog = 3.0;
  dog->poll_now();
  f.clock.advance(Duration::from_sec(10.0));
  dog->poll_now();
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_NE(f.reports[0].dump.find("enrich.w0"), std::string::npos);
}

TEST(Watchdog, DumpTextWithoutTracerStillListsStages) {
  Fixture f;
  auto dog = f.make(nullptr);
  dog->poll_now();
  const std::string text = dog->dump_text();
  EXPECT_NE(text.find("enrich"), std::string::npos);
}

TEST(Watchdog, BackgroundThreadDetectsRealStall) {
  // Real clock, real thread: a stage that never moves with work pending
  // is reported within a few check intervals.
  std::vector<WatchdogReport> reports;
  std::mutex mu;
  WatchdogConfig cfg;
  cfg.check_interval = Duration::from_ms(5);
  cfg.stall_after = Duration::from_ms(20);
  Watchdog dog(cfg);
  dog.add_stage(
      "wedged", [] { return std::uint64_t{0}; }, [] { return 1.0; });
  dog.set_report_sink([&](const WatchdogReport& r) {
    std::lock_guard lock(mu);
    reports.push_back(r);
  });
  dog.start();
  for (int i = 0; i < 200 && dog.stalls_detected() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  dog.stop();
  EXPECT_GE(dog.stalls_detected(), 1u);
  std::lock_guard lock(mu);
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports[0].stage, "wedged");
}

TEST(Watchdog, Sigusr1TriggersDumpOnNextPoll) {
  Fixture f;
  auto dog = f.make();
  Watchdog::install_sigusr1(dog.get());
  dog->poll_now();  // prime
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  dog->poll_now();
  EXPECT_EQ(dog->dumps_taken(), 1u);
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].reason, "dump");
  Watchdog::install_sigusr1(nullptr);
}

}  // namespace
}  // namespace ruru::obs
