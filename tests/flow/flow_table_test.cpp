#include "flow/flow_table.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace ruru {
namespace {

FlowKey key_for(std::uint32_t client_host, std::uint16_t sport) {
  FiveTuple t;
  t.src = Ipv4Address(client_host);
  t.dst = Ipv4Address(10, 2, 0, 1);
  t.src_port = sport;
  t.dst_port = 443;
  t.protocol = 6;
  return FlowKey::from(t);
}

TEST(FlowTable, InsertThenFind) {
  FlowTable table(64);
  const FlowKey k = key_for(0x0A010001, 40000);
  bool inserted = false;
  FlowEntry* e = table.find_or_insert(k, 0x1234, Timestamp::from_sec(1), inserted);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.size(), 1u);

  FlowEntry* found = table.find(k, 0x1234, Timestamp::from_sec(1));
  EXPECT_EQ(found, e);
  EXPECT_EQ(table.stats().hits, 1u);
}

TEST(FlowTable, FindMissReturnsNull) {
  FlowTable table(64);
  EXPECT_EQ(table.find(key_for(1, 2), 99, Timestamp{}), nullptr);
}

TEST(FlowTable, SecondInsertFindsExisting) {
  FlowTable table(64);
  const FlowKey k = key_for(0x0A010001, 40000);
  bool inserted = false;
  FlowEntry* a = table.find_or_insert(k, 7, Timestamp::from_sec(1), inserted);
  ASSERT_TRUE(inserted);
  FlowEntry* b = table.find_or_insert(k, 7, Timestamp::from_sec(2), inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, EraseFreesSlot) {
  FlowTable table(64);
  bool inserted = false;
  FlowEntry* e = table.find_or_insert(key_for(1, 1), 7, Timestamp{}, inserted);
  table.erase(e);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(key_for(1, 1), 7, Timestamp{}), nullptr);
  table.erase(e);  // double-erase is harmless
  EXPECT_EQ(table.stats().erases, 1u);
}

TEST(FlowTable, CollidingHashesCoexistWithinProbeWindow) {
  FlowTable table(64);
  // Same rss hash for distinct flows: linear probing must separate them.
  bool inserted = false;
  FlowEntry* a = table.find_or_insert(key_for(1, 100), 42, Timestamp{}, inserted);
  FlowEntry* b = table.find_or_insert(key_for(2, 200), 42, Timestamp{}, inserted);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.find(key_for(1, 100), 42, Timestamp{}), a);
  EXPECT_EQ(table.find(key_for(2, 200), 42, Timestamp{}), b);
}

TEST(FlowTable, ProbeWindowExhaustionFailsInsert) {
  FlowTable table(64, Duration::from_sec(1000.0));
  bool inserted = false;
  // Fill one probe window with live entries sharing a hash.
  for (std::size_t i = 0; i < FlowTable::kProbeWindow; ++i) {
    ASSERT_NE(table.find_or_insert(key_for(static_cast<std::uint32_t>(i + 1), 1), 5,
                                   Timestamp::from_sec(1), inserted),
              nullptr);
  }
  EXPECT_EQ(table.find_or_insert(key_for(9999, 1), 5, Timestamp::from_sec(1), inserted), nullptr);
  EXPECT_EQ(table.stats().insert_failures, 1u);
}

TEST(FlowTable, StaleEntriesAreReclaimed) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  for (std::size_t i = 0; i < FlowTable::kProbeWindow; ++i) {
    table.find_or_insert(key_for(static_cast<std::uint32_t>(i + 1), 1), 5, Timestamp::from_sec(1),
                         inserted);
  }
  // 60 s later every occupant is stale: the insert reclaims one.
  FlowEntry* e =
      table.find_or_insert(key_for(9999, 1), 5, Timestamp::from_sec(61), inserted);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.stats().evictions_stale, 1u);
  EXPECT_EQ(table.size(), FlowTable::kProbeWindow);  // one out, one in
}

TEST(FlowTable, StaleEntryNotReturnedByFind) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(1), inserted);
  EXPECT_EQ(table.find(key_for(1, 1), 5, Timestamp::from_sec(100)), nullptr);
  // A re-insert treats it as a fresh handshake.
  FlowEntry* e = table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(100), inserted);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(inserted);
}

TEST(FlowTable, FindErasesStaleMatchSoOccupancyStaysAccurate) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(1), inserted);
  ASSERT_EQ(table.size(), 1u);
  // find() on a stale match reports a miss AND reclaims the slot, so
  // occupancy reflects live flows rather than abandoned handshakes.
  EXPECT_EQ(table.find(key_for(1, 1), 5, Timestamp::from_sec(100)), nullptr);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().evictions_stale, 1u);
}

TEST(FlowTable, StaleReinsertDoesNotLeakOccupancy) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  // Same flow abandoned and retried repeatedly: live_ must not grow.
  for (int round = 0; round < 5; ++round) {
    FlowEntry* e = table.find_or_insert(key_for(1, 1), 5,
                                        Timestamp::from_sec(1 + round * 100), inserted);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(table.size(), 1u);
  }
  EXPECT_EQ(table.stats().evictions_stale, 4u);
}

TEST(FlowTable, CapacityRoundsToPowerOfTwo) {
  FlowTable table(100);
  EXPECT_EQ(table.capacity(), 128u);
}

TEST(FlowTable, ManyFlowsChurnWithoutLoss) {
  // ~10k flows stay live (half of 20k complete immediately); size the
  // table with the same ~3x headroom a deployment would use.
  FlowTable table(1 << 15);
  Pcg32 rng(5);
  bool inserted = false;
  std::uint64_t failures = 0;
  for (int i = 0; i < 20'000; ++i) {
    const FlowKey k = key_for(rng.next_u32(), static_cast<std::uint16_t>(rng.next_u32()));
    const std::uint32_t h = rng.next_u32();
    FlowEntry* e = table.find_or_insert(k, h, Timestamp::from_ms(i), inserted);
    if (e == nullptr) {
      ++failures;
      continue;
    }
    if (inserted) {
      e->syn_time = Timestamp::from_ms(i);
    }
    if (i % 2 == 0) table.erase(e);  // half the flows complete immediately
  }
  // With generous capacity and churn, failures should be negligible.
  EXPECT_LT(failures, 100u);
  EXPECT_LE(table.size(), table.capacity());
}

}  // namespace
}  // namespace ruru
