#include "flow/flow_table.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/random.hpp"

namespace ruru {
namespace {

FlowKey key_for(std::uint32_t client_host, std::uint16_t sport) {
  FiveTuple t;
  t.src = Ipv4Address(client_host);
  t.dst = Ipv4Address(10, 2, 0, 1);
  t.src_port = sport;
  t.dst_port = 443;
  t.protocol = 6;
  return FlowKey::from(t);
}

TEST(FlowTable, InsertThenFind) {
  FlowTable table(64);
  const FlowKey k = key_for(0x0A010001, 40000);
  bool inserted = false;
  const FlowTable::Slot s = table.find_or_insert(k, 0x1234, Timestamp::from_sec(1), inserted);
  ASSERT_NE(s, FlowTable::kNoSlot);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.canonical(s), k.canonical);

  const FlowTable::Slot found = table.find(k, 0x1234, Timestamp::from_sec(1));
  EXPECT_EQ(found, s);
  EXPECT_EQ(table.stats().hits, 1u);
}

TEST(FlowTable, FindMissReturnsNoSlot) {
  FlowTable table(64);
  EXPECT_EQ(table.find(key_for(1, 2), 99, Timestamp{}), FlowTable::kNoSlot);
}

TEST(FlowTable, SecondInsertFindsExisting) {
  FlowTable table(64);
  const FlowKey k = key_for(0x0A010001, 40000);
  bool inserted = false;
  const FlowTable::Slot a = table.find_or_insert(k, 7, Timestamp::from_sec(1), inserted);
  ASSERT_TRUE(inserted);
  const FlowTable::Slot b = table.find_or_insert(k, 7, Timestamp::from_sec(2), inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, EraseFreesSlot) {
  FlowTable table(64);
  bool inserted = false;
  const FlowTable::Slot s = table.find_or_insert(key_for(1, 1), 7, Timestamp{}, inserted);
  table.erase(s);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(key_for(1, 1), 7, Timestamp{}), FlowTable::kNoSlot);
  table.erase(s);  // double-erase is harmless
  EXPECT_EQ(table.stats().erases, 1u);
}

TEST(FlowTable, ErasedSlotIsATombstoneInsertsReuse) {
  FlowTable table(64);
  bool inserted = false;
  const FlowTable::Slot a = table.find_or_insert(key_for(1, 1), 7, Timestamp{}, inserted);
  table.erase(a);
  // A new flow with the same hash lands on the tombstone (first
  // reusable slot in probe order), not on a fresh empty.
  const FlowTable::Slot b = table.find_or_insert(key_for(2, 2), 7, Timestamp{}, inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(b, a);
}

TEST(FlowTable, CollidingHashesCoexistWithinProbeWindow) {
  FlowTable table(64);
  // Same rss hash for distinct flows: group probing must separate them.
  bool inserted = false;
  const FlowTable::Slot a = table.find_or_insert(key_for(1, 100), 42, Timestamp{}, inserted);
  const FlowTable::Slot b = table.find_or_insert(key_for(2, 200), 42, Timestamp{}, inserted);
  ASSERT_NE(a, FlowTable::kNoSlot);
  ASSERT_NE(b, FlowTable::kNoSlot);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.find(key_for(1, 100), 42, Timestamp{}), a);
  EXPECT_EQ(table.find(key_for(2, 200), 42, Timestamp{}), b);
  // The control tag fingerprints the five-tuple, not the shared rss
  // hash, so pile members are told apart at the control byte: with high
  // probability (127/128 per pair) no hot-row verification ever failed.
  EXPECT_LE(table.stats().tag_mismatches.load(), 1u);
}

TEST(FlowTable, TupleTagCollisionsAreVerifiedAndCounted) {
  FlowTable table(64, Duration::from_sec(1000.0));
  bool inserted = false;
  ASSERT_NE(table.find_or_insert(key_for(1, 100), 42, Timestamp{}, inserted),
            FlowTable::kNoSlot);
  // 7-bit tags collide for ~1/128 of keys: probe misses with the same
  // rss hash until one lands on the resident flow's tag.  That probe
  // must verify the hot row, reject it, and count the false positive.
  bool collided = false;
  for (std::uint32_t i = 2; i < 2000; ++i) {
    ASSERT_EQ(table.find(key_for(i, 200), 42, Timestamp{}), FlowTable::kNoSlot);
    if (table.stats().tag_mismatches.load() > 0) {
      collided = true;
      break;
    }
  }
  EXPECT_TRUE(collided);
}

TEST(FlowTable, ProbeWindowExhaustionFailsInsert) {
  FlowTable table(64, Duration::from_sec(1000.0));
  bool inserted = false;
  // Fill one probe window with live entries sharing a hash.
  for (std::size_t i = 0; i < table.probe_window(); ++i) {
    ASSERT_NE(table.find_or_insert(key_for(static_cast<std::uint32_t>(i + 1), 1), 5,
                                   Timestamp::from_sec(1), inserted),
              FlowTable::kNoSlot);
  }
  EXPECT_EQ(table.find_or_insert(key_for(9999, 1), 5, Timestamp::from_sec(1), inserted),
            FlowTable::kNoSlot);
  EXPECT_EQ(table.stats().insert_failures, 1u);
}

TEST(FlowTable, StaleEntriesAreReclaimed) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  for (std::size_t i = 0; i < table.probe_window(); ++i) {
    table.find_or_insert(key_for(static_cast<std::uint32_t>(i + 1), 1), 5, Timestamp::from_sec(1),
                         inserted);
  }
  // 60 s later every occupant is stale: a full window triggers the
  // in-window reclamation, which retires ALL dead entries there (the
  // incremental sweep just had not reached these groups yet).
  const FlowTable::Slot s =
      table.find_or_insert(key_for(9999, 1), 5, Timestamp::from_sec(61), inserted);
  ASSERT_NE(s, FlowTable::kNoSlot);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.stats().evictions_stale, table.probe_window());
  EXPECT_EQ(table.size(), 1u);  // the window's dead handshakes are gone
}

TEST(FlowTable, StaleEntryNotReturnedByFind) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(1), inserted);
  EXPECT_EQ(table.find(key_for(1, 1), 5, Timestamp::from_sec(100)), FlowTable::kNoSlot);
  // A re-insert treats it as a fresh handshake.
  const FlowTable::Slot s =
      table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(100), inserted);
  ASSERT_NE(s, FlowTable::kNoSlot);
  EXPECT_TRUE(inserted);
}

TEST(FlowTable, FindErasesStaleMatchSoOccupancyStaysAccurate) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(1), inserted);
  ASSERT_EQ(table.size(), 1u);
  // find() on a stale match reports a miss AND reclaims the slot, so
  // occupancy reflects live flows rather than abandoned handshakes.
  EXPECT_EQ(table.find(key_for(1, 1), 5, Timestamp::from_sec(100)), FlowTable::kNoSlot);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().evictions_stale, 1u);
}

TEST(FlowTable, ContainsSkipsStaleWithoutMutating) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(1), inserted);
  const std::uint64_t evictions = table.stats().evictions_stale.load();
  // contains() applies the same "a stale match is dead" rule as find(),
  // minus every side effect: no reclamation, no stats.
  EXPECT_FALSE(table.contains(key_for(1, 1), 5, Timestamp::from_sec(100)));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().evictions_stale.load(), evictions);
  EXPECT_TRUE(table.contains(key_for(1, 1), 5, Timestamp::from_sec(2)));
}

TEST(FlowTable, StaleReinsertDoesNotLeakOccupancy) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  // Same flow abandoned and retried repeatedly: live_ must not grow.
  for (int round = 0; round < 5; ++round) {
    const FlowTable::Slot s = table.find_or_insert(key_for(1, 1), 5,
                                                   Timestamp::from_sec(1 + round * 100), inserted);
    ASSERT_NE(s, FlowTable::kNoSlot);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(table.size(), 1u);
  }
  EXPECT_EQ(table.stats().evictions_stale, 4u);
}

TEST(FlowTable, CapacityRoundsToPowerOfTwo) {
  FlowTable table(100);
  EXPECT_EQ(table.capacity(), 128u);
  // Tiny capacities round up to at least one probe group.
  FlowTable tiny(1);
  EXPECT_EQ(tiny.capacity(), 16u);
  EXPECT_EQ(tiny.probe_window(), 16u);  // window clamped to capacity
}

TEST(FlowTable, ProbeWindowIsConfigurable) {
  // One group: saturation after 16 colliding live entries.
  FlowTable narrow(256, Duration::from_sec(1000.0), 16);
  EXPECT_EQ(narrow.probe_window(), 16u);
  bool inserted = false;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_NE(narrow.find_or_insert(key_for(i + 1, 1), 5, Timestamp::from_sec(1), inserted),
              FlowTable::kNoSlot);
  }
  EXPECT_EQ(narrow.find_or_insert(key_for(99, 1), 5, Timestamp::from_sec(1), inserted),
            FlowTable::kNoSlot);

  // Four groups: the same collision pile fits 64 entries.
  FlowTable wide(256, Duration::from_sec(1000.0), 64);
  EXPECT_EQ(wide.probe_window(), 64u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    ASSERT_NE(wide.find_or_insert(key_for(i + 1, 1), 5, Timestamp::from_sec(1), inserted),
              FlowTable::kNoSlot);
  }
  EXPECT_EQ(wide.find_or_insert(key_for(99, 1), 5, Timestamp::from_sec(1), inserted),
            FlowTable::kNoSlot);

  // Ragged windows round up to whole groups.
  FlowTable ragged(256, Duration::from_sec(30.0), 17);
  EXPECT_EQ(ragged.probe_window(), 32u);
}

// --- collision saturation ----------------------------------------------

TEST(FlowTableCollision, SaturatedWindowStillFindsEveryResident) {
  FlowTable table(256, Duration::from_sec(1000.0));
  bool inserted = false;
  const std::size_t window = table.probe_window();
  for (std::uint32_t i = 0; i < window; ++i) {
    ASSERT_NE(table.find_or_insert(key_for(i + 1, 1), 5, Timestamp::from_sec(1), inserted),
              FlowTable::kNoSlot);
  }
  // Saturated: inserts fail but every resident is still reachable.
  EXPECT_EQ(table.find_or_insert(key_for(9999, 1), 5, Timestamp::from_sec(1), inserted),
            FlowTable::kNoSlot);
  for (std::uint32_t i = 0; i < window; ++i) {
    EXPECT_NE(table.find(key_for(i + 1, 1), 5, Timestamp::from_sec(2)), FlowTable::kNoSlot)
        << "resident " << i << " lost under saturation";
    EXPECT_TRUE(table.contains(key_for(i + 1, 1), 5, Timestamp::from_sec(2)));
  }
}

TEST(FlowTableCollision, EraseUnderSaturationMakesRoomForExactlyOne) {
  FlowTable table(256, Duration::from_sec(1000.0));
  bool inserted = false;
  const std::size_t window = table.probe_window();
  std::vector<FlowTable::Slot> slots;
  for (std::uint32_t i = 0; i < window; ++i) {
    slots.push_back(table.find_or_insert(key_for(i + 1, 1), 5, Timestamp::from_sec(1), inserted));
  }
  table.erase(slots[window / 2]);
  const FlowTable::Slot s =
      table.find_or_insert(key_for(9999, 1), 5, Timestamp::from_sec(1), inserted);
  EXPECT_EQ(s, slots[window / 2]);  // the tombstone is the only opening
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.find_or_insert(key_for(8888, 1), 5, Timestamp::from_sec(1), inserted),
            FlowTable::kNoSlot);
}

TEST(FlowTableCollision, StaleReclamationUnderCollisionKeepsLiveEntries) {
  FlowTable table(256, Duration::from_sec(30.0));
  bool inserted = false;
  const std::size_t window = table.probe_window();
  // Interleave: even flows inserted at t=1 (will go stale), odd flows
  // refreshed at t=40 (still live at t=50).
  for (std::uint32_t i = 0; i < window; ++i) {
    table.find_or_insert(key_for(i + 1, 1), 5, Timestamp::from_sec(1), inserted);
  }
  for (std::uint32_t i = 1; i < window; i += 2) {
    ASSERT_NE(table.find(key_for(i + 1, 1), 5, Timestamp::from_sec(25)), FlowTable::kNoSlot);
    // find() refreshes nothing by itself; touch the live ones.
    table.touch(table.find(key_for(i + 1, 1), 5, Timestamp::from_sec(25)),
                Timestamp::from_sec(40));
  }
  // t=50: evens are 49 s idle (stale), odds 10 s (live). The full window
  // forces in-window reclamation of the evens only.
  const FlowTable::Slot s =
      table.find_or_insert(key_for(9999, 1), 5, Timestamp::from_sec(50), inserted);
  ASSERT_NE(s, FlowTable::kNoSlot);
  EXPECT_TRUE(inserted);
  for (std::uint32_t i = 1; i < window; i += 2) {
    EXPECT_NE(table.find(key_for(i + 1, 1), 5, Timestamp::from_sec(50)), FlowTable::kNoSlot)
        << "live flow " << i << " lost to reclamation";
  }
  for (std::uint32_t i = 0; i < window; i += 2) {
    EXPECT_EQ(table.find(key_for(i + 1, 1), 5, Timestamp::from_sec(50)), FlowTable::kNoSlot);
  }
}

// --- incremental sweep -------------------------------------------------

TEST(FlowTableSweep, ReclaimsStaleEntriesIncrementally) {
  FlowTable table(256, Duration::from_sec(30.0));  // 16 groups
  Pcg32 rng(3);
  bool inserted = false;
  std::size_t live = 0;
  for (int i = 0; i < 100; ++i) {
    if (table.find_or_insert(key_for(rng.next_u32(), static_cast<std::uint16_t>(i)),
                             rng.next_u32(), Timestamp::from_sec(1), inserted) !=
        FlowTable::kNoSlot) {
      ++live;
    }
  }
  ASSERT_EQ(table.size(), live);

  // Sweep 4 groups at a time at t=100 (everything stale): after at most
  // 4 calls (16 groups total) the table is empty.
  std::size_t reclaimed = 0;
  for (int pass = 0; pass < 4; ++pass) {
    reclaimed += table.sweep(Timestamp::from_sec(100), 4);
  }
  EXPECT_EQ(reclaimed, live);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().sweep_evictions, live);
  EXPECT_EQ(table.stats().evictions_stale, live);
}

TEST(FlowTableSweep, PartialSweepOnlyTouchesRequestedGroups) {
  FlowTable table(256, Duration::from_sec(30.0));  // 16 groups
  bool inserted = false;
  std::size_t live = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    if (table.find_or_insert(key_for(i * 2654435761u + 1, 1), i * 2654435761u,
                             Timestamp::from_sec(1), inserted) != FlowTable::kNoSlot) {
      ++live;
    }
  }
  // One group per call: after one call some entries must survive.
  table.sweep(Timestamp::from_sec(100), 1);
  EXPECT_GT(table.size(), 0u);
  // The cursor wraps and eventually clears everything.
  for (int pass = 0; pass < 15; ++pass) table.sweep(Timestamp::from_sec(100), 1);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTableSweep, LeavesLiveEntriesAlone) {
  FlowTable table(64, Duration::from_sec(30.0));
  bool inserted = false;
  table.find_or_insert(key_for(1, 1), 5, Timestamp::from_sec(90), inserted);
  table.find_or_insert(key_for(2, 2), 77, Timestamp::from_sec(1), inserted);
  EXPECT_EQ(table.sweep(Timestamp::from_sec(100), 64), 1u);  // only the t=1 entry
  EXPECT_EQ(table.size(), 1u);
  EXPECT_NE(table.find(key_for(1, 1), 5, Timestamp::from_sec(100)), FlowTable::kNoSlot);
}

// --- scalar / SIMD parity ----------------------------------------------

TEST(FlowTableParity, ScalarAndSimdKernelsAgreeOnRandomWorkload) {
  FlowTable simd(1 << 10, Duration::from_sec(30.0), 32, ProbeKernel::kSimd);
  FlowTable scalar(1 << 10, Duration::from_sec(30.0), 32, ProbeKernel::kScalar);
  EXPECT_FALSE(scalar.simd_active());

  Pcg32 rng(11);
  std::vector<std::pair<FlowKey, std::uint32_t>> flows;
  for (int i = 0; i < 400; ++i) {
    // Bias hashes into few values so probe windows collide hard.
    flows.emplace_back(key_for(rng.next_u32(), static_cast<std::uint16_t>(i)),
                       rng.bounded(16) * 7919u);
  }
  for (int step = 0; step < 20'000; ++step) {
    const auto& [key, rss] = flows[rng.bounded(static_cast<std::uint32_t>(flows.size()))];
    const Timestamp now = Timestamp::from_ms(step * 5);
    switch (rng.bounded(4)) {
      case 0: {
        bool ia = false, ib = false;
        const FlowTable::Slot a = simd.find_or_insert(key, rss, now, ia);
        const FlowTable::Slot b = scalar.find_or_insert(key, rss, now, ib);
        ASSERT_EQ(a == FlowTable::kNoSlot, b == FlowTable::kNoSlot);
        ASSERT_EQ(ia, ib);
        break;
      }
      case 1:
        ASSERT_EQ(simd.find(key, rss, now) == FlowTable::kNoSlot,
                  scalar.find(key, rss, now) == FlowTable::kNoSlot);
        break;
      case 2:
        ASSERT_EQ(simd.contains(key, rss, now), scalar.contains(key, rss, now));
        break;
      case 3: {
        const FlowTable::Slot a = simd.find(key, rss, now);
        const FlowTable::Slot b = scalar.find(key, rss, now);
        ASSERT_EQ(a == FlowTable::kNoSlot, b == FlowTable::kNoSlot);
        if (a != FlowTable::kNoSlot) {
          simd.erase(a);
          scalar.erase(b);
        }
        break;
      }
    }
    ASSERT_EQ(simd.size(), scalar.size()) << "diverged at step " << step;
  }
  EXPECT_EQ(simd.stats().inserts.load(), scalar.stats().inserts.load());
  EXPECT_EQ(simd.stats().hits.load(), scalar.stats().hits.load());
  EXPECT_EQ(simd.stats().evictions_stale.load(), scalar.stats().evictions_stale.load());
  EXPECT_EQ(simd.stats().insert_failures.load(), scalar.stats().insert_failures.load());
  EXPECT_EQ(simd.stats().erases.load(), scalar.stats().erases.load());
  EXPECT_EQ(simd.stats().tag_mismatches.load(), scalar.stats().tag_mismatches.load());
}

TEST(FlowTable, ManyFlowsChurnWithoutLoss) {
  // ~10k flows stay live (half of 20k complete immediately); size the
  // table with the same ~3x headroom a deployment would use.
  FlowTable table(1 << 15);
  Pcg32 rng(5);
  bool inserted = false;
  std::uint64_t failures = 0;
  for (int i = 0; i < 20'000; ++i) {
    const FlowKey k = key_for(rng.next_u32(), static_cast<std::uint16_t>(rng.next_u32()));
    const std::uint32_t h = rng.next_u32();
    const FlowTable::Slot s = table.find_or_insert(k, h, Timestamp::from_ms(i), inserted);
    if (s == FlowTable::kNoSlot) {
      ++failures;
      continue;
    }
    if (inserted) {
      table.data(s).syn_time = Timestamp::from_ms(i);
    }
    if (i % 2 == 0) table.erase(s);  // half the flows complete immediately
  }
  // With generous capacity and churn, failures should be negligible.
  EXPECT_LT(failures, 100u);
  EXPECT_LE(table.size(), table.capacity());
}

// --- concurrency: the metrics snapshot thread vs the data path ---------
//
// The owning worker is the only mutator, but the snapshot thread reads
// stats()/size() live, and a second reader may call contains() (it is
// documented mutation-free). Run under TSan (tools/check.sh flow) this
// proves those reads race nothing.

TEST(FlowTableConcurrency, StatsSnapshotRacesDataPathCleanly) {
  FlowTable table(1 << 12);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      sink += table.stats().inserts.load() + table.stats().hits.load() +
              table.stats().evictions_stale.load() + table.stats().erases.load() +
              table.stats().tag_mismatches.load() + table.stats().sweep_evictions.load() +
              table.size();
    }
    // Consume so the loop is not optimized away.
    EXPECT_GE(sink, 0u);
  });

  Pcg32 rng(21);
  bool inserted = false;
  for (int i = 0; i < 50'000; ++i) {
    const FlowKey k = key_for(rng.bounded(512) + 1, static_cast<std::uint16_t>(rng.bounded(64)));
    const std::uint32_t h = rng.bounded(1024);
    const Timestamp now = Timestamp::from_ms(i);
    switch (rng.bounded(4)) {
      case 0:
        table.find_or_insert(k, h, now, inserted);
        break;
      case 1:
        (void)table.find(k, h, now);
        break;
      case 2: {
        const FlowTable::Slot s = table.find(k, h, now);
        if (s != FlowTable::kNoSlot) table.erase(s);
        break;
      }
      case 3:
        table.sweep(now, 2);
        break;
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

}  // namespace
}  // namespace ruru
