#include "flow/worker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/packet_builder.hpp"

namespace ruru {
namespace {

class WorkerTest : public ::testing::Test {
 protected:
  WorkerTest() : pool_(4096, 2048) {
    NicConfig cfg;
    cfg.num_queues = 1;
    nic_ = std::make_unique<SimNic>(cfg, pool_);
  }

  void inject_handshake(Ipv4Address client, std::uint16_t cport, Timestamp t0, Duration external,
                        Duration internal) {
    TcpFrameSpec syn;
    syn.src_ip = client;
    syn.dst_ip = server_;
    syn.src_port = cport;
    syn.dst_port = 443;
    syn.seq = 100;
    syn.flags = TcpFlags::kSyn;
    nic_->inject(build_tcp_frame(syn), t0);

    TcpFrameSpec synack;
    synack.src_ip = server_;
    synack.dst_ip = client;
    synack.src_port = 443;
    synack.dst_port = cport;
    synack.seq = 500;
    synack.ack = 101;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    nic_->inject(build_tcp_frame(synack), t0 + external);

    TcpFrameSpec ack;
    ack.src_ip = client;
    ack.dst_ip = server_;
    ack.src_port = cport;
    ack.dst_port = 443;
    ack.seq = 101;
    ack.ack = 501;
    ack.flags = TcpFlags::kAck;
    nic_->inject(build_tcp_frame(ack), t0 + external + internal);
  }

  /// A pure-ACK data segment (post-handshake traffic) at time `t_ms`.
  void inject_data_segment(Ipv4Address src, std::uint16_t sp, Ipv4Address dst, std::uint16_t dp,
                           std::int64_t t_ms) {
    TcpFrameSpec data;
    data.src_ip = src;
    data.dst_ip = dst;
    data.src_port = sp;
    data.dst_port = dp;
    data.seq = 101;
    data.ack = 501;
    data.flags = TcpFlags::kAck;
    data.payload_length = 64;
    nic_->inject(build_tcp_frame(data), Timestamp::from_ms(t_ms));
  }

  Mempool pool_;
  std::unique_ptr<SimNic> nic_;
  Ipv4Address server_{Ipv4Address(10, 2, 0, 1)};
};

TEST_F(WorkerTest, PollProcessesHandshake) {
  std::vector<LatencySample> samples;
  QueueWorker worker(*nic_, 0, 1024, [&](const LatencySample& s) { samples.push_back(s); });
  inject_handshake(Ipv4Address(10, 1, 0, 1), 40'000, Timestamp::from_ms(0),
                   Duration::from_ms(128), Duration::from_ms(5));
  while (worker.poll_once() != 0) {
  }
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].external().ns, Duration::from_ms(128).ns);
  EXPECT_EQ(samples[0].internal().ns, Duration::from_ms(5).ns);
  EXPECT_EQ(worker.stats().packets, 3u);
  EXPECT_EQ(worker.stats().parse_status[0], 3u);  // all kOk
}

TEST_F(WorkerTest, CountsParseStatuses) {
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  nic_->inject(build_non_ip_frame(), Timestamp{});
  nic_->inject(build_udp_frame(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2, 10),
               Timestamp{});
  while (worker.poll_once() != 0) {
  }
  EXPECT_EQ(worker.stats().parse_status[static_cast<int>(ParseStatus::kNotIp)], 1u);
  EXPECT_EQ(worker.stats().parse_status[static_cast<int>(ParseStatus::kNotTcp)], 1u);
}

TEST_F(WorkerTest, SynSinkFiresPerSyn) {
  std::vector<std::pair<Timestamp, Ipv4Address>> syns;
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  worker.set_syn_sink([&](Timestamp t, Ipv4Address server) { syns.emplace_back(t, server); });
  inject_handshake(Ipv4Address(10, 1, 0, 1), 40'000, Timestamp::from_ms(10),
                   Duration::from_ms(100), Duration::from_ms(5));
  while (worker.poll_once() != 0) {
  }
  ASSERT_EQ(syns.size(), 1u);  // only the SYN, not SYN-ACK/ACK
  EXPECT_EQ(syns[0].first.ns, Timestamp::from_ms(10).ns);
  EXPECT_EQ(syns[0].second, server_);
}

TEST_F(WorkerTest, RunDrainsOnStop) {
  std::atomic<int> samples{0};
  QueueWorker worker(*nic_, 0, 1024, [&](const LatencySample&) { samples.fetch_add(1); });

  std::atomic<bool> stop{false};
  std::thread t([&] { worker.run(stop); });

  for (int i = 0; i < 50; ++i) {
    inject_handshake(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1)),
                     static_cast<std::uint16_t>(20'000 + i), Timestamp::from_ms(i * 10),
                     Duration::from_ms(100), Duration::from_ms(5));
  }
  stop.store(true);
  t.join();
  // run() drains the queue after stop: all 50 handshakes measured.
  EXPECT_EQ(samples.load(), 50);
}

TEST_F(WorkerTest, BatchSinkFlushesWhenFull) {
  std::vector<std::size_t> flush_sizes;
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  worker.set_batch_sink(
      [&](std::span<const LatencySample> samples) { flush_sizes.push_back(samples.size()); },
      /*batch_size=*/2);
  for (int i = 0; i < 5; ++i) {
    inject_handshake(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1)),
                     static_cast<std::uint16_t>(30'000 + i), Timestamp::from_ms(i),
                     Duration::from_ms(100), Duration::from_ms(5));
  }
  while (worker.poll_once() != 0) {
  }
  // 5 samples at batch=2: two full flushes, then the empty poll flushes
  // the remainder (end-of-burst idle).
  ASSERT_EQ(flush_sizes.size(), 3u);
  EXPECT_EQ(flush_sizes[0], 2u);
  EXPECT_EQ(flush_sizes[1], 2u);
  EXPECT_EQ(flush_sizes[2], 1u);
  EXPECT_EQ(worker.stats().batch_flushes, 3u);
  EXPECT_EQ(worker.stats().batched_samples, 5u);
}

TEST_F(WorkerTest, BatchSinkIdleFlushDeliversPartialBatch) {
  std::vector<LatencySample> seen;
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  worker.set_batch_sink(
      [&](std::span<const LatencySample> samples) {
        seen.insert(seen.end(), samples.begin(), samples.end());
      },
      /*batch_size=*/64);
  inject_handshake(Ipv4Address(10, 1, 0, 1), 40'000, Timestamp::from_ms(0),
                   Duration::from_ms(128), Duration::from_ms(5));
  while (worker.poll_once() != 0) {
  }
  // Far below batch_size, but the empty poll must not sit on the sample.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].external().ns, Duration::from_ms(128).ns);
}

TEST_F(WorkerTest, BatchSinkLingerFlushesOldSamples) {
  std::vector<std::size_t> flush_sizes;
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  worker.set_batch_sink(
      [&](std::span<const LatencySample> samples) { flush_sizes.push_back(samples.size()); },
      /*batch_size=*/64, /*linger=*/Duration::from_ms(10));
  // Two completions 50 ms apart in capture time, processed in one burst:
  // the second sample's timestamp exceeds the linger and forces a flush
  // even though the batch is nowhere near full.
  inject_handshake(Ipv4Address(10, 1, 0, 1), 40'000, Timestamp::from_ms(0),
                   Duration::from_ms(1), Duration::from_ms(1));
  inject_handshake(Ipv4Address(10, 1, 0, 2), 40'001, Timestamp::from_ms(50),
                   Duration::from_ms(1), Duration::from_ms(1));
  while (worker.poll_once() != 0) {
  }
  ASSERT_FALSE(flush_sizes.empty());
  // The linger flush fired inside the burst (2 samples together), not
  // only at the trailing empty poll.
  EXPECT_EQ(flush_sizes[0], 2u);
  EXPECT_EQ(worker.stats().batched_samples, 2u);
}

TEST_F(WorkerTest, BatchSizeOneMatchesPerSampleBehaviour) {
  std::vector<std::size_t> flush_sizes;
  std::vector<LatencySample> per_sample;
  QueueWorker worker(*nic_, 0, 1024,
                     [&](const LatencySample& s) { per_sample.push_back(s); });
  worker.set_batch_sink(
      [&](std::span<const LatencySample> samples) { flush_sizes.push_back(samples.size()); },
      /*batch_size=*/1);
  for (int i = 0; i < 3; ++i) {
    inject_handshake(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1)),
                     static_cast<std::uint16_t>(31'000 + i), Timestamp::from_ms(i),
                     Duration::from_ms(100), Duration::from_ms(5));
  }
  while (worker.poll_once() != 0) {
  }
  // batch=1: every sample flushes alone, and the per-sample sink still
  // fires alongside the batch sink.
  ASSERT_EQ(flush_sizes.size(), 3u);
  for (const auto n : flush_sizes) EXPECT_EQ(n, 1u);
  EXPECT_EQ(per_sample.size(), 3u);
}

TEST_F(WorkerTest, RunFlushesResidualBatchOnStop) {
  std::atomic<std::uint64_t> samples{0};
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  worker.set_batch_sink(
      [&](std::span<const LatencySample> s) {
        samples.fetch_add(s.size(), std::memory_order_relaxed);
      },
      /*batch_size=*/kMaxLatencyBatch);  // never fills: only the shutdown flush
  std::atomic<bool> stop{false};
  std::thread t([&] { worker.run(stop); });
  for (int i = 0; i < 20; ++i) {
    inject_handshake(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1)),
                     static_cast<std::uint16_t>(32'000 + i), Timestamp::from_ms(i * 10),
                     Duration::from_ms(100), Duration::from_ms(5));
  }
  stop.store(true);
  t.join();
  EXPECT_EQ(samples.load(), 20u);  // nothing stranded in the accumulator
}

TEST_F(WorkerTest, FastPathSkipsEstablishedDataSegments) {
  std::vector<LatencySample> samples;
  QueueWorker worker(*nic_, 0, 1024, [&](const LatencySample& s) { samples.push_back(s); });
  const Ipv4Address client(10, 1, 0, 1);
  inject_handshake(client, 40'000, Timestamp::from_ms(0), Duration::from_ms(128),
                   Duration::from_ms(5));
  // Established-flow data segments: pure ACKs with payload, both
  // directions. None of them can change tracker state.
  for (int i = 0; i < 10; ++i) {
    inject_data_segment(client, 40'000, server_, 443, 200 + i);
    inject_data_segment(server_, 443, client, 40'000, 600 + i);
  }
  while (worker.poll_once() != 0) {
  }
  // The sample is intact: the handshake itself never takes the fast path.
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].external().ns, Duration::from_ms(128).ns);
  // Synthetic-trace invariant: skips == packets - handshake packets.
  EXPECT_EQ(worker.stats().packets, 23u);
  EXPECT_EQ(worker.stats().fast_path_skips, 20u);
  std::uint64_t classified = 0;
  for (const auto c : worker.stats().parse_status) classified += c;
  EXPECT_EQ(classified, 3u);  // only the handshake hit the full parser
}

TEST_F(WorkerTest, FastPathDisabledParsesEverything) {
  std::vector<LatencySample> samples;
  QueueWorker worker(*nic_, 0, 1024, [&](const LatencySample& s) { samples.push_back(s); });
  worker.set_fast_path(false);
  const Ipv4Address client(10, 1, 0, 1);
  inject_handshake(client, 40'000, Timestamp::from_ms(0), Duration::from_ms(128),
                   Duration::from_ms(5));
  for (int i = 0; i < 10; ++i) {
    inject_data_segment(client, 40'000, server_, 443, 200 + i);
  }
  while (worker.poll_once() != 0) {
  }
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(worker.stats().fast_path_skips, 0u);
  std::uint64_t classified = 0;
  for (const auto c : worker.stats().parse_status) classified += c;
  EXPECT_EQ(classified, worker.stats().packets);
}

TEST_F(WorkerTest, FastPathNeverSkipsSynFinRst) {
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  // All on untracked flows — flag-carrying segments must still reach the
  // full parser (a SYN opens a flow; FIN/RST could tear one down).
  TcpFrameSpec fin;
  fin.src_ip = Ipv4Address(10, 9, 0, 1);
  fin.dst_ip = server_;
  fin.src_port = 50'000;
  fin.dst_port = 443;
  fin.flags = TcpFlags::kFin | TcpFlags::kAck;
  nic_->inject(build_tcp_frame(fin), Timestamp{});
  TcpFrameSpec rst = fin;
  rst.src_port = 50'001;
  rst.flags = TcpFlags::kRst;
  nic_->inject(build_tcp_frame(rst), Timestamp{});
  while (worker.poll_once() != 0) {
  }
  EXPECT_EQ(worker.stats().packets, 2u);
  EXPECT_EQ(worker.stats().fast_path_skips, 0u);
  EXPECT_EQ(worker.stats().parse_status[0], 2u);  // both fully parsed (kOk)
}

TEST_F(WorkerTest, FastPathDoesNotSkipMidHandshakePackets) {
  // A pure ACK on a flow the tracker is mid-handshake on must go through
  // the full parser — it is the packet that completes the measurement.
  std::vector<LatencySample> samples;
  QueueWorker worker(*nic_, 0, 1024, [&](const LatencySample& s) { samples.push_back(s); });
  inject_handshake(Ipv4Address(10, 1, 0, 9), 41'000, Timestamp::from_ms(0), Duration::from_ms(80),
                   Duration::from_ms(3));
  while (worker.poll_once() != 0) {
  }
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(worker.stats().fast_path_skips, 0u);  // nothing skippable in a bare handshake
}

TEST_F(WorkerTest, EmptyPollsAreCounted) {
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  EXPECT_EQ(worker.poll_once(), 0u);
  EXPECT_EQ(worker.stats().empty_polls, 1u);
  EXPECT_EQ(worker.stats().polls, 1u);
}

}  // namespace
}  // namespace ruru
