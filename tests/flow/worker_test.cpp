#include "flow/worker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/packet_builder.hpp"

namespace ruru {
namespace {

class WorkerTest : public ::testing::Test {
 protected:
  WorkerTest() : pool_(4096, 2048) {
    NicConfig cfg;
    cfg.num_queues = 1;
    nic_ = std::make_unique<SimNic>(cfg, pool_);
  }

  void inject_handshake(Ipv4Address client, std::uint16_t cport, Timestamp t0, Duration external,
                        Duration internal) {
    TcpFrameSpec syn;
    syn.src_ip = client;
    syn.dst_ip = server_;
    syn.src_port = cport;
    syn.dst_port = 443;
    syn.seq = 100;
    syn.flags = TcpFlags::kSyn;
    nic_->inject(build_tcp_frame(syn), t0);

    TcpFrameSpec synack;
    synack.src_ip = server_;
    synack.dst_ip = client;
    synack.src_port = 443;
    synack.dst_port = cport;
    synack.seq = 500;
    synack.ack = 101;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    nic_->inject(build_tcp_frame(synack), t0 + external);

    TcpFrameSpec ack;
    ack.src_ip = client;
    ack.dst_ip = server_;
    ack.src_port = cport;
    ack.dst_port = 443;
    ack.seq = 101;
    ack.ack = 501;
    ack.flags = TcpFlags::kAck;
    nic_->inject(build_tcp_frame(ack), t0 + external + internal);
  }

  Mempool pool_;
  std::unique_ptr<SimNic> nic_;
  Ipv4Address server_{Ipv4Address(10, 2, 0, 1)};
};

TEST_F(WorkerTest, PollProcessesHandshake) {
  std::vector<LatencySample> samples;
  QueueWorker worker(*nic_, 0, 1024, [&](const LatencySample& s) { samples.push_back(s); });
  inject_handshake(Ipv4Address(10, 1, 0, 1), 40'000, Timestamp::from_ms(0),
                   Duration::from_ms(128), Duration::from_ms(5));
  while (worker.poll_once() != 0) {
  }
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].external().ns, Duration::from_ms(128).ns);
  EXPECT_EQ(samples[0].internal().ns, Duration::from_ms(5).ns);
  EXPECT_EQ(worker.stats().packets, 3u);
  EXPECT_EQ(worker.stats().parse_status[0], 3u);  // all kOk
}

TEST_F(WorkerTest, CountsParseStatuses) {
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  nic_->inject(build_non_ip_frame(), Timestamp{});
  nic_->inject(build_udp_frame(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2, 10),
               Timestamp{});
  while (worker.poll_once() != 0) {
  }
  EXPECT_EQ(worker.stats().parse_status[static_cast<int>(ParseStatus::kNotIp)], 1u);
  EXPECT_EQ(worker.stats().parse_status[static_cast<int>(ParseStatus::kNotTcp)], 1u);
}

TEST_F(WorkerTest, SynSinkFiresPerSyn) {
  std::vector<std::pair<Timestamp, Ipv4Address>> syns;
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  worker.set_syn_sink([&](Timestamp t, Ipv4Address server) { syns.emplace_back(t, server); });
  inject_handshake(Ipv4Address(10, 1, 0, 1), 40'000, Timestamp::from_ms(10),
                   Duration::from_ms(100), Duration::from_ms(5));
  while (worker.poll_once() != 0) {
  }
  ASSERT_EQ(syns.size(), 1u);  // only the SYN, not SYN-ACK/ACK
  EXPECT_EQ(syns[0].first.ns, Timestamp::from_ms(10).ns);
  EXPECT_EQ(syns[0].second, server_);
}

TEST_F(WorkerTest, RunDrainsOnStop) {
  std::atomic<int> samples{0};
  QueueWorker worker(*nic_, 0, 1024, [&](const LatencySample&) { samples.fetch_add(1); });

  std::atomic<bool> stop{false};
  std::thread t([&] { worker.run(stop); });

  for (int i = 0; i < 50; ++i) {
    inject_handshake(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1)),
                     static_cast<std::uint16_t>(20'000 + i), Timestamp::from_ms(i * 10),
                     Duration::from_ms(100), Duration::from_ms(5));
  }
  stop.store(true);
  t.join();
  // run() drains the queue after stop: all 50 handshakes measured.
  EXPECT_EQ(samples.load(), 50);
}

TEST_F(WorkerTest, EmptyPollsAreCounted) {
  QueueWorker worker(*nic_, 0, 1024, nullptr);
  EXPECT_EQ(worker.poll_once(), 0u);
  EXPECT_EQ(worker.stats().empty_polls, 1u);
  EXPECT_EQ(worker.stats().polls, 1u);
}

}  // namespace
}  // namespace ruru
