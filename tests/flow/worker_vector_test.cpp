// Vector-loop exactness tests: the staged lane pipeline
// (LoopKernel::kVector) must emit bit-identical samples and stats to the
// retired per-packet loop (LoopKernel::kScalar, kept as the oracle) on
// any input — including the adversarial case the flush-at-lane-boundary
// rule exists for, a handshake completing mid-burst immediately before a
// data segment of the same flow.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "flow/worker.hpp"
#include "net/packet_builder.hpp"
#include "util/random.hpp"

namespace ruru {
namespace {

// --- oracle harness -------------------------------------------------

/// One worker with its own mempool and NIC, so two harnesses can replay
/// the exact same frame stream without sharing any state.
struct Harness {
  Harness(QueueWorker::LoopKernel kernel, std::size_t table_capacity, Duration stale_after,
          InflowConfig inflow, std::size_t prefetch_depth = 1)
      : pool(4096, 2048) {
    NicConfig cfg;
    cfg.num_queues = 1;
    nic = std::make_unique<SimNic>(cfg, pool);
    worker = std::make_unique<QueueWorker>(*nic, 0, table_capacity,
                                           [this](const LatencySample& s) { samples.push_back(s); },
                                           stale_after, FlowTable::kDefaultProbeWindow, inflow);
    worker->set_loop_kernel(kernel);
    worker->set_prefetch_depth(prefetch_depth);
  }

  void replay(const std::vector<std::vector<std::pair<std::vector<std::uint8_t>, Timestamp>>>&
                  rounds) {
    for (const auto& round : rounds) {
      for (const auto& [frame, t] : round) nic->inject(frame, t);
      while (worker->poll_once() != 0) {
      }
    }
  }

  Mempool pool;
  std::unique_ptr<SimNic> nic;
  std::unique_ptr<QueueWorker> worker;
  std::vector<LatencySample> samples;
};

void expect_samples_equal(const std::vector<LatencySample>& a,
                          const std::vector<LatencySample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "sample " << i);
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].server, b[i].server);
    EXPECT_EQ(a[i].client_port, b[i].client_port);
    EXPECT_EQ(a[i].server_port, b[i].server_port);
    EXPECT_EQ(a[i].syn_time.ns, b[i].syn_time.ns);
    EXPECT_EQ(a[i].synack_time.ns, b[i].synack_time.ns);
    EXPECT_EQ(a[i].ack_time.ns, b[i].ack_time.ns);
    EXPECT_EQ(a[i].rss_hash, b[i].rss_hash);
    EXPECT_EQ(a[i].queue_id, b[i].queue_id);
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
    EXPECT_EQ(a[i].toward_client, b[i].toward_client);
  }
}

/// Every counter the two loop kernels must agree on (the lane_* cells
/// are vector-only by design and excluded).
void expect_stats_equal(const Harness& scalar, const Harness& vec) {
  const WorkerStats& ws = scalar.worker->stats();
  const WorkerStats& wv = vec.worker->stats();
  EXPECT_EQ(ws.packets, wv.packets);
  EXPECT_EQ(ws.bytes, wv.bytes);
  for (std::size_t i = 0; i < ws.parse_status.size(); ++i) {
    EXPECT_EQ(ws.parse_status[i], wv.parse_status[i]) << "parse_status[" << i << "]";
  }
  EXPECT_EQ(ws.fast_path_skips, wv.fast_path_skips);
  EXPECT_EQ(ws.inflow_consumed, wv.inflow_consumed);

  const TrackerStats& ts = scalar.worker->tracker_stats();
  const TrackerStats& tv = vec.worker->tracker_stats();
  EXPECT_EQ(ts.syn_seen, tv.syn_seen);
  EXPECT_EQ(ts.syn_retransmissions, tv.syn_retransmissions);
  EXPECT_EQ(ts.synack_seen, tv.synack_seen);
  EXPECT_EQ(ts.synack_unmatched, tv.synack_unmatched);
  EXPECT_EQ(ts.ack_matched, tv.ack_matched);
  EXPECT_EQ(ts.rst_seen, tv.rst_seen);
  EXPECT_EQ(ts.samples_emitted, tv.samples_emitted);
  EXPECT_EQ(ts.table_drops, tv.table_drops);

  const InflowStats& is = scalar.worker->tracker().inflow_stats();
  const InflowStats& iv = vec.worker->tracker().inflow_stats();
  EXPECT_EQ(is.ts_matches, iv.ts_matches);
  EXPECT_EQ(is.ts_ring_evictions, iv.ts_ring_evictions);
  EXPECT_EQ(is.ts_wraps, iv.ts_wraps);
  EXPECT_EQ(is.inflow_samples, iv.inflow_samples);
  EXPECT_EQ(is.one_sided_samples, iv.one_sided_samples);
  EXPECT_EQ(is.rate_limited, iv.rate_limited);

  const FlowTableStats& fs = scalar.worker->tracker().table().stats();
  const FlowTableStats& fv = vec.worker->tracker().table().stats();
  EXPECT_EQ(fs.inserts, fv.inserts);
  EXPECT_EQ(fs.hits, fv.hits);
  EXPECT_EQ(fs.evictions_stale, fv.evictions_stale);
  EXPECT_EQ(fs.insert_failures, fv.insert_failures);
  EXPECT_EQ(fs.erases, fv.erases);
  EXPECT_EQ(fs.tag_mismatches, fv.tag_mismatches);
  EXPECT_EQ(fs.sweep_evictions, fv.sweep_evictions);

  EXPECT_EQ(scalar.worker->tracker().table().size(), vec.worker->tracker().table().size());
}

// --- fuzz stream ----------------------------------------------------

/// A seeded stream of injection rounds drawn from a small flow pool:
/// handshake segments in and out of order, timestamped and bare data
/// segments both directions, teardowns, junk (UDP / non-IP / truncated),
/// and occasional 3-second time jumps so entries go stale under the
/// 2-second horizon and the classify walk sees verified-stale entries.
std::vector<std::vector<std::pair<std::vector<std::uint8_t>, Timestamp>>> fuzz_rounds(
    std::uint64_t seed, int n_rounds) {
  struct FuzzFlow {
    std::uint32_t tsval_c = 0;
    std::uint32_t tsval_s = 0;
  };
  constexpr int kFlows = 48;
  const Ipv4Address server(10, 2, 0, 1);
  std::array<FuzzFlow, kFlows> flows{};
  Pcg32 rng(seed);
  std::int64_t t_ms = 0;

  std::vector<std::vector<std::pair<std::vector<std::uint8_t>, Timestamp>>> rounds;
  rounds.reserve(static_cast<std::size_t>(n_rounds));
  for (int r = 0; r < n_rounds; ++r) {
    std::vector<std::pair<std::vector<std::uint8_t>, Timestamp>> round;
    const std::size_t count = 1 + rng.bounded(32);
    for (std::size_t k = 0; k < count; ++k) {
      t_ms += static_cast<std::int64_t>(rng.bounded(5));
      if (rng.bounded(96) == 0) t_ms += 3'000;  // staleness jump
      const auto fi = rng.bounded(kFlows);
      FuzzFlow& f = flows[fi];
      const Ipv4Address client(10, 1, static_cast<std::uint8_t>(fi / 8),
                               static_cast<std::uint8_t>(fi % 8 + 1));
      const auto cport = static_cast<std::uint16_t>(40'000 + fi);
      const bool with_ts = rng.bounded(4) != 0;

      TcpFrameSpec s;
      s.src_ip = client;
      s.dst_ip = server;
      s.src_port = cport;
      s.dst_port = 443;
      switch (rng.bounded(12)) {
        case 0:
        case 1:  // SYN
          s.seq = 1'000;
          s.flags = TcpFlags::kSyn;
          s.with_timestamps = with_ts;
          s.ts_val = ++f.tsval_c;
          break;
        case 2:  // SYN-ACK
          s.src_ip = server;
          s.dst_ip = client;
          s.src_port = 443;
          s.dst_port = cport;
          s.seq = 5'000;
          s.ack = 1'001;
          s.flags = TcpFlags::kSyn | TcpFlags::kAck;
          s.with_timestamps = with_ts;
          s.ts_val = ++f.tsval_s;
          s.ts_ecr = f.tsval_c;
          break;
        case 3:
        case 4:  // completing ACK (pure — a fast-path candidate lane)
          s.seq = 1'001;
          s.ack = 5'001;
          s.flags = TcpFlags::kAck;
          s.with_timestamps = with_ts;
          s.ts_val = ++f.tsval_c;
          s.ts_ecr = f.tsval_s;
          break;
        case 5:
        case 6:
        case 7:  // client data segment
          s.seq = 1'001;
          s.ack = 5'001;
          s.flags = TcpFlags::kAck;
          s.payload_length = 64;
          s.with_timestamps = with_ts;
          s.ts_val = ++f.tsval_c;
          s.ts_ecr = f.tsval_s;
          break;
        case 8:
        case 9:  // server data segment
          s.src_ip = server;
          s.dst_ip = client;
          s.src_port = 443;
          s.dst_port = cport;
          s.seq = 5'001;
          s.ack = 1'065;
          s.flags = TcpFlags::kAck;
          s.payload_length = 128;
          s.with_timestamps = with_ts;
          s.ts_val = ++f.tsval_s;
          s.ts_ecr = f.tsval_c;
          break;
        case 10:  // teardown
          s.seq = 1'065;
          s.ack = 5'129;
          s.flags = rng.bounded(2) == 0 ? static_cast<std::uint8_t>(TcpFlags::kFin | TcpFlags::kAck)
                                        : TcpFlags::kRst;
          break;
        default: {  // junk: UDP, non-IP, or a truncated TCP frame
          switch (rng.bounded(3)) {
            case 0:
              round.emplace_back(build_udp_frame(client, server, cport, 53, 32),
                                 Timestamp::from_ms(t_ms));
              break;
            case 1:
              round.emplace_back(build_non_ip_frame(), Timestamp::from_ms(t_ms));
              break;
            default: {
              s.flags = TcpFlags::kAck;
              auto frame = build_tcp_frame(s);
              frame.resize(frame.size() / 2);  // mid-TCP-header truncation
              round.emplace_back(std::move(frame), Timestamp::from_ms(t_ms));
              break;
            }
          }
          continue;
        }
      }
      round.emplace_back(build_tcp_frame(s), Timestamp::from_ms(t_ms));
    }
    rounds.push_back(std::move(round));
  }
  return rounds;
}

void run_oracle(std::uint64_t seed, InflowConfig inflow, std::size_t vector_prefetch_depth) {
  const auto rounds = fuzz_rounds(seed, 200);
  // Capacity 64 against 48 flows: real probe collisions, tag mismatches
  // and insert pressure. stale_after 2 s + the stream's 3 s jumps:
  // verified-stale entries in the classify walk.
  Harness scalar(QueueWorker::LoopKernel::kScalar, 64, Duration::from_sec(2.0), inflow);
  Harness vec(QueueWorker::LoopKernel::kVector, 64, Duration::from_sec(2.0), inflow,
              vector_prefetch_depth);
  scalar.replay(rounds);
  vec.replay(rounds);
  expect_samples_equal(scalar.samples, vec.samples);
  expect_stats_equal(scalar, vec);
  // The vector loop's own conservation: every fast-path skip was decided
  // on a candidate lane.
  EXPECT_EQ(vec.worker->stats().lane_skip, vec.worker->stats().fast_path_skips);
}

TEST(WorkerVectorFuzz, MatchesScalarOracleInflowOff) {
  run_oracle(0xA11CE, InflowConfig{}, /*vector_prefetch_depth=*/1);
}

TEST(WorkerVectorFuzz, MatchesScalarOracleInflowOn) {
  InflowConfig inflow;
  inflow.enabled = true;
  inflow.ring_entries = 8;
  inflow.min_interval = Duration{0};
  run_oracle(0xB0B, inflow, /*vector_prefetch_depth=*/2);
}

TEST(WorkerVectorFuzz, MatchesScalarOracleRateLimited) {
  // min_interval > 0 exercises the rate-limit branch and the kOneSided
  // suppression bookkeeping under both kernels.
  InflowConfig inflow;
  inflow.enabled = true;
  inflow.ring_entries = 4;
  inflow.min_interval = Duration::from_ms(5);
  run_oracle(0xC0FFEE, inflow, /*vector_prefetch_depth=*/0);
}

// --- the mid-burst completion case ----------------------------------

TEST(WorkerVector, HandshakeCompletingMidBurstIsVisibleToNextLane) {
  // One burst: SYN, SYN-ACK, completing ACK, then a timestamped data
  // segment of the SAME flow, then the server's echo.  The completing
  // ACK is itself a pure-ACK candidate lane; the data segment's
  // provisional verdict was computed before the handshake completed, so
  // the lane loop must flush at the boundary, void the verdict, and
  // re-run the mutating lookup — the segment lands in the established
  // kernel, not the fast-path skip.
  InflowConfig inflow;
  inflow.enabled = true;
  inflow.ring_entries = 8;
  inflow.min_interval = Duration{0};

  auto feed = [&](Harness& h) {
    const Ipv4Address client(10, 1, 0, 7);
    const Ipv4Address server(10, 2, 0, 1);
    auto tcp = [&](bool c2s, std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                   std::uint32_t tsval, std::uint32_t tsecr, std::size_t payload,
                   std::int64_t t_ms) {
      TcpFrameSpec s;
      s.src_ip = c2s ? client : server;
      s.dst_ip = c2s ? server : client;
      s.src_port = c2s ? 45'000 : 443;
      s.dst_port = c2s ? 443 : 45'000;
      s.flags = flags;
      s.seq = seq;
      s.ack = ack;
      s.payload_length = payload;
      s.with_timestamps = true;
      s.ts_val = tsval;
      s.ts_ecr = tsecr;
      h.nic->inject(build_tcp_frame(s), Timestamp::from_ms(t_ms));
    };
    tcp(true, TcpFlags::kSyn, 1000, 0, 100, 0, 0, 0);
    tcp(false, TcpFlags::kSyn | TcpFlags::kAck, 5000, 1001, 500, 100, 0, 128);
    tcp(true, TcpFlags::kAck, 1001, 5001, 105, 500, 0, 133);            // completes
    tcp(true, TcpFlags::kAck, 1001, 5001, 200, 500, 300, 134);          // data, same flow
    tcp(false, TcpFlags::kAck, 5001, 1301, 600, 200, 900, 170);         // echo of 200
    while (h.worker->poll_once() != 0) {
    }
  };

  Harness vec(QueueWorker::LoopKernel::kVector, 1024, Duration::from_sec(30.0), inflow);
  Harness scalar(QueueWorker::LoopKernel::kScalar, 1024, Duration::from_sec(30.0), inflow);
  feed(vec);
  feed(scalar);
  expect_samples_equal(scalar.samples, vec.samples);
  expect_stats_equal(scalar, vec);

  // The full-parse path runs the in-flow kernel on handshake segments
  // too (the SYN notes TSval 100), so four samples emerge in order:
  // the SYN-ACK's echo (128 ms), the completing ACK's handshake sample
  // followed by its own echo (5 ms), then the data segment's echo
  // measured by the established-lane kernel (echo of TSval 200 at t=170
  // against the note at t=134) — not skipped and not re-parsed.
  ASSERT_EQ(vec.samples.size(), 4u);
  EXPECT_EQ(static_cast<int>(vec.samples[0].kind), static_cast<int>(SampleKind::kInflow));
  EXPECT_EQ(vec.samples[0].total().ns, Duration::from_ms(128).ns);
  EXPECT_EQ(static_cast<int>(vec.samples[1].kind), static_cast<int>(SampleKind::kHandshake));
  EXPECT_EQ(static_cast<int>(vec.samples[2].kind), static_cast<int>(SampleKind::kInflow));
  EXPECT_EQ(vec.samples[2].total().ns, Duration::from_ms(5).ns);
  EXPECT_EQ(static_cast<int>(vec.samples[3].kind), static_cast<int>(SampleKind::kInflow));
  EXPECT_EQ(vec.samples[3].total().ns, Duration::from_ms(36).ns);
  EXPECT_EQ(vec.worker->stats().inflow_consumed, 2u);
  EXPECT_EQ(vec.worker->stats().lane_established, 2u);
  EXPECT_EQ(vec.worker->stats().fast_path_skips, 0u);
  // Both post-completion lanes ran the mutating lookup: the mid-run
  // flush that completed the handshake voided their batched verdicts.
  EXPECT_GE(vec.worker->stats().lane_revalidated.load(), 2u);
}

TEST(WorkerVector, ScalarLoopNeverDrivesLaneCounters) {
  Harness h(QueueWorker::LoopKernel::kScalar, 1024, Duration::from_sec(30.0), InflowConfig{});
  const auto rounds = fuzz_rounds(0xD00D, 20);
  h.replay(rounds);
  EXPECT_GT(h.worker->stats().packets.load(), 0u);
  EXPECT_EQ(h.worker->stats().lane_skip, 0u);
  EXPECT_EQ(h.worker->stats().lane_established, 0u);
  EXPECT_EQ(h.worker->stats().lane_need_parse, 0u);
  EXPECT_EQ(h.worker->stats().lane_revalidated, 0u);
  EXPECT_EQ(h.worker->stats().classify_reprobes, 0u);
}

// --- shutdown drain -------------------------------------------------

TEST(WorkerVector, ShutdownEmitsEachStagedSampleExactlyOnce) {
  // run()'s drain must flush the batch accumulator exactly once (the
  // terminating empty poll): every completed handshake reaches the sink
  // exactly one time, with no duplicate or empty trailing flush.
  Mempool pool(4096, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, pool);
  std::vector<LatencySample> seen;
  std::atomic<std::uint64_t> flushes{0};
  QueueWorker worker(nic, 0, 1024, nullptr);
  worker.set_batch_sink(
      [&](std::span<const LatencySample> s) {
        flushes.fetch_add(1);
        seen.insert(seen.end(), s.begin(), s.end());
      },
      /*batch_size=*/kMaxLatencyBatch);  // never fills: only the drain flush

  std::atomic<bool> stop{false};
  std::thread t([&] { worker.run(stop); });
  const Ipv4Address server(10, 2, 0, 1);
  for (int i = 0; i < 30; ++i) {
    const Ipv4Address client(10, 1, 0, static_cast<std::uint8_t>(i + 1));
    const auto cport = static_cast<std::uint16_t>(33'000 + i);
    TcpFrameSpec syn;
    syn.src_ip = client;
    syn.dst_ip = server;
    syn.src_port = cport;
    syn.dst_port = 443;
    syn.seq = 100;
    syn.flags = TcpFlags::kSyn;
    nic.inject(build_tcp_frame(syn), Timestamp::from_ms(i * 10));
    TcpFrameSpec synack;
    synack.src_ip = server;
    synack.dst_ip = client;
    synack.src_port = 443;
    synack.dst_port = cport;
    synack.seq = 500;
    synack.ack = 101;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    nic.inject(build_tcp_frame(synack), Timestamp::from_ms(i * 10 + 2));
    TcpFrameSpec ack;
    ack.src_ip = client;
    ack.dst_ip = server;
    ack.src_port = cport;
    ack.dst_port = 443;
    ack.seq = 101;
    ack.ack = 501;
    ack.flags = TcpFlags::kAck;
    nic.inject(build_tcp_frame(ack), Timestamp::from_ms(i * 10 + 3));
  }
  stop.store(true);
  t.join();

  ASSERT_EQ(seen.size(), 30u);
  std::set<std::uint16_t> ports;
  for (const auto& s : seen) ports.insert(s.client_port);
  EXPECT_EQ(ports.size(), 30u);  // each handshake exactly once, none twice
  EXPECT_EQ(worker.stats().batched_samples, 30u);
  EXPECT_EQ(worker.stats().batch_flushes, flushes.load());
  // Every flush the sink saw carried samples — no empty shutdown flush.
  EXPECT_GE(flushes.load(), 1u);
}

}  // namespace
}  // namespace ruru
