#include "flow/link_meter.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TEST(LinkMeter, WindowsCloseOnTimeAdvance) {
  LinkMeter meter(Duration::from_sec(1.0));
  // 10 packets of 1000 B in second 0, 5 in second 1.
  for (int i = 0; i < 10; ++i) meter.on_packet(Timestamp::from_ms(i * 100), 1000);
  for (int i = 0; i < 5; ++i) meter.on_packet(Timestamp::from_ms(1000 + i * 100), 1000);
  ASSERT_EQ(meter.closed().size(), 1u);
  const LinkWindow& w = meter.closed()[0];
  EXPECT_EQ(w.packets, 10u);
  EXPECT_EQ(w.bytes, 10'000u);
  EXPECT_DOUBLE_EQ(w.mbps(), 10'000 * 8.0 / 1e6);
  EXPECT_DOUBLE_EQ(w.pps(), 10.0);
  EXPECT_EQ(w.start.ns, 0);
}

TEST(LinkMeter, FlushClosesCurrentWindow) {
  LinkMeter meter(Duration::from_sec(1.0));
  meter.on_packet(Timestamp::from_ms(100), 500);
  EXPECT_TRUE(meter.closed().empty());
  meter.flush();
  ASSERT_EQ(meter.closed().size(), 1u);
  EXPECT_EQ(meter.closed()[0].bytes, 500u);
}

TEST(LinkMeter, GapsProduceZeroWindows) {
  LinkMeter meter(Duration::from_sec(1.0));
  meter.on_packet(Timestamp::from_ms(100), 100);
  meter.on_packet(Timestamp::from_ms(3'500), 100);  // 3 s later
  // Windows 0 (100 B), 1 (0), 2 (0) closed; window 3 in progress.
  ASSERT_EQ(meter.closed().size(), 3u);
  EXPECT_EQ(meter.closed()[0].packets, 1u);
  EXPECT_EQ(meter.closed()[1].packets, 0u);
  EXPECT_EQ(meter.closed()[2].packets, 0u);
}

TEST(LinkMeter, TotalsAccumulate) {
  LinkMeter meter(Duration::from_ms(100));
  for (int i = 0; i < 100; ++i) meter.on_packet(Timestamp::from_ms(i * 10), 64);
  EXPECT_EQ(meter.total_packets(), 100u);
  EXPECT_EQ(meter.total_bytes(), 6'400u);
}

TEST(LinkMeter, FlushOnEmptyMeterIsNoop) {
  LinkMeter meter;
  meter.flush();
  EXPECT_TRUE(meter.closed().empty());
}

TEST(LinkMeter, WindowStartsAlignToGrid) {
  LinkMeter meter(Duration::from_sec(1.0));
  meter.on_packet(Timestamp::from_ms(750), 1);  // first packet mid-window
  meter.on_packet(Timestamp::from_ms(1250), 1);
  ASSERT_EQ(meter.closed().size(), 1u);
  EXPECT_EQ(meter.closed()[0].start.ns, 0);  // aligned, not 750 ms
}

}  // namespace
}  // namespace ruru
