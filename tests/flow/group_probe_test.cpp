#include "flow/group_probe.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/random.hpp"

namespace ruru {
namespace {

// Control arrays that hit every byte class: tags (0x00..0x7F), empties
// (0x80) and tombstones (0xFE), in random mixtures.
std::array<std::uint8_t, kFlowGroupWidth> random_group(Pcg32& rng) {
  std::array<std::uint8_t, kFlowGroupWidth> g{};
  for (auto& b : g) {
    switch (rng.bounded(4)) {
      case 0:
        b = kCtrlEmpty;
        break;
      case 1:
        b = kCtrlTombstone;
        break;
      default:
        b = static_cast<std::uint8_t>(rng.bounded(0x80));
        break;
    }
  }
  return g;
}

TEST(GroupProbe, ScalarMatchFindsExactPositions) {
  std::array<std::uint8_t, kFlowGroupWidth> g{};
  g.fill(kCtrlEmpty);
  g[0] = 0x2A;
  g[7] = 0x2A;
  g[15] = 0x2A;
  EXPECT_EQ(group_match_scalar(g.data(), 0x2A), (1u << 0) | (1u << 7) | (1u << 15));
  EXPECT_EQ(group_match_scalar(g.data(), 0x2B), 0u);
}

TEST(GroupProbe, ScalarClassMasksPartitionTheGroup) {
  Pcg32 rng(101);
  for (int iter = 0; iter < 1000; ++iter) {
    const auto g = random_group(rng);
    const GroupMask full = group_full_scalar(g.data());
    const GroupMask reusable = group_reusable_scalar(g.data());
    const GroupMask empty = group_empty_scalar(g.data());
    // Full and reusable partition all 16 positions; empty ⊆ reusable.
    EXPECT_EQ(full & reusable, 0u);
    EXPECT_EQ(full | reusable, 0xFFFFu);
    EXPECT_EQ(empty & ~reusable, 0u);
    for (std::size_t i = 0; i < kFlowGroupWidth; ++i) {
      EXPECT_EQ((full >> i) & 1u, (g[i] & 0x80u) == 0 ? 1u : 0u);
    }
  }
}

TEST(GroupProbe, ScalarMaskedEqSelectsPureAckLanes) {
  // The worker's classify predicate: (flags & (SYN|FIN|RST|ACK)) == ACK.
  // 0x10 = bare ACK, 0x18 = ACK|PSH (still a pure data segment); any
  // SYN/FIN/RST bit or the 0xFF ineligible sentinel must never match.
  std::array<std::uint8_t, kFlowGroupWidth> g{};
  g.fill(0xFF);  // ineligible / tail padding
  g[0] = 0x10;   // ACK
  g[3] = 0x18;   // ACK|PSH
  g[5] = 0x12;   // ACK|SYN
  g[7] = 0x11;   // ACK|FIN
  g[9] = 0x14;   // ACK|RST
  g[11] = 0x02;  // bare SYN
  g[13] = 0x00;  // no flags
  const GroupMask m = group_masked_eq_scalar(g.data(), 0x17, 0x10);
  EXPECT_EQ(m, (1u << 0) | (1u << 3));
}

TEST(GroupProbe, TagsNeverMatchSentinels) {
  std::array<std::uint8_t, kFlowGroupWidth> g{};
  for (std::size_t i = 0; i < kFlowGroupWidth; ++i) {
    g[i] = (i % 2 == 0) ? kCtrlEmpty : kCtrlTombstone;
  }
  for (unsigned tag = 0; tag < 0x80; ++tag) {
    EXPECT_EQ(group_match_scalar(g.data(), static_cast<std::uint8_t>(tag)), 0u);
  }
}

#if RURU_FLOW_GROUP_SIMD

TEST(GroupProbe, SimdMatchesScalarOnRandomGroupsAllTags) {
  Pcg32 rng(202);
  for (int iter = 0; iter < 500; ++iter) {
    const auto g = random_group(rng);
    for (unsigned tag = 0; tag < 0x80; ++tag) {
      const auto t = static_cast<std::uint8_t>(tag);
      ASSERT_EQ(group_match_simd(g.data(), t), group_match_scalar(g.data(), t))
          << "iter " << iter << " tag " << tag;
    }
    ASSERT_EQ(group_empty_simd(g.data()), group_empty_scalar(g.data()));
    ASSERT_EQ(group_full_simd(g.data()), group_full_scalar(g.data()));
    ASSERT_EQ(group_reusable_simd(g.data()), group_reusable_scalar(g.data()));
  }
}

TEST(GroupProbe, SimdHandlesAllEmptyAndAllFullGroups) {
  std::array<std::uint8_t, kFlowGroupWidth> g{};
  g.fill(kCtrlEmpty);
  EXPECT_EQ(group_empty_simd(g.data()), 0xFFFFu);
  EXPECT_EQ(group_full_simd(g.data()), 0u);
  EXPECT_EQ(group_reusable_simd(g.data()), 0xFFFFu);
  g.fill(0x3C);
  EXPECT_EQ(group_empty_simd(g.data()), 0u);
  EXPECT_EQ(group_full_simd(g.data()), 0xFFFFu);
  EXPECT_EQ(group_reusable_simd(g.data()), 0u);
  EXPECT_EQ(group_match_simd(g.data(), 0x3C), 0xFFFFu);
}

TEST(GroupProbe, SimdMaskedEqMatchesScalarOnRandomBytes) {
  // Full-range bytes (TCP flags, not ctrl tags) with random mask/value
  // pairs — the masked compare must agree lane-for-lane with the scalar
  // twin, including the all-ones sentinel lanes.
  Pcg32 rng(404);
  for (int iter = 0; iter < 1000; ++iter) {
    std::array<std::uint8_t, kFlowGroupWidth> g{};
    for (auto& b : g) b = static_cast<std::uint8_t>(rng.bounded(256));
    if (rng.bounded(4) == 0) g[rng.bounded(kFlowGroupWidth)] = 0xFF;
    const auto mask = static_cast<std::uint8_t>(rng.bounded(256));
    const auto value = static_cast<std::uint8_t>(rng.bounded(256) & mask);
    ASSERT_EQ(group_masked_eq_simd(g.data(), mask, value),
              group_masked_eq_scalar(g.data(), mask, value))
        << "iter " << iter << " mask " << int(mask) << " value " << int(value);
    ASSERT_EQ(group_masked_eq(true, g.data(), mask, value),
              group_masked_eq(false, g.data(), mask, value));
  }
}

TEST(GroupProbe, ResolveSimdHonoursKernelChoice) {
  EXPECT_TRUE(resolve_simd(ProbeKernel::kAuto));
  EXPECT_TRUE(resolve_simd(ProbeKernel::kSimd));
  EXPECT_FALSE(resolve_simd(ProbeKernel::kScalar));
}

TEST(GroupProbe, DispatchRoutesToRequestedKernel) {
  Pcg32 rng(303);
  for (int iter = 0; iter < 200; ++iter) {
    const auto g = random_group(rng);
    const auto tag = static_cast<std::uint8_t>(rng.bounded(0x80));
    ASSERT_EQ(group_match(true, g.data(), tag), group_match(false, g.data(), tag));
    ASSERT_EQ(group_empty(true, g.data()), group_empty(false, g.data()));
    ASSERT_EQ(group_full(true, g.data()), group_full(false, g.data()));
    ASSERT_EQ(group_reusable(true, g.data()), group_reusable(false, g.data()));
  }
}

#else

TEST(GroupProbe, ScalarOnlyBuildNeverReportsSimd) {
  EXPECT_FALSE(kHaveGroupSimd);
  EXPECT_FALSE(resolve_simd(ProbeKernel::kAuto));
  EXPECT_FALSE(resolve_simd(ProbeKernel::kSimd));
}

#endif  // RURU_FLOW_GROUP_SIMD

}  // namespace
}  // namespace ruru
