#include "flow/handshake_tracker.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"

namespace ruru {
namespace {

// Small harness: builds the three handshake frames of Figure 1 and feeds
// them to a tracker as parsed views.
class TrackerHarness {
 public:
  explicit TrackerHarness(std::size_t capacity = 1024) : tracker_(capacity) {}

  std::optional<LatencySample> feed(const TcpFrameSpec& spec, Timestamp t) {
    const auto frame = build_tcp_frame(spec);
    PacketView view;
    EXPECT_EQ(parse_packet(frame, view), ParseStatus::kOk);
    return tracker_.process(view, t, /*rss_hash=*/1234, /*queue=*/0);
  }

  HandshakeTracker& tracker() { return tracker_; }

 private:
  HandshakeTracker tracker_;
};

struct Flow {
  Ipv4Address client{Ipv4Address(10, 1, 0, 1)};
  Ipv4Address server{Ipv4Address(10, 2, 0, 1)};
  std::uint16_t cport = 40'000;
  std::uint16_t sport = 443;
  std::uint32_t isn_c = 1'000;
  std::uint32_t isn_s = 9'000;

  TcpFrameSpec syn() const {
    TcpFrameSpec s;
    s.src_ip = client;
    s.dst_ip = server;
    s.src_port = cport;
    s.dst_port = sport;
    s.seq = isn_c;
    s.flags = TcpFlags::kSyn;
    return s;
  }
  TcpFrameSpec synack() const {
    TcpFrameSpec s;
    s.src_ip = server;
    s.dst_ip = client;
    s.src_port = sport;
    s.dst_port = cport;
    s.seq = isn_s;
    s.ack = isn_c + 1;
    s.flags = TcpFlags::kSyn | TcpFlags::kAck;
    return s;
  }
  TcpFrameSpec ack() const {
    TcpFrameSpec s;
    s.src_ip = client;
    s.dst_ip = server;
    s.src_port = cport;
    s.dst_port = sport;
    s.seq = isn_c + 1;
    s.ack = isn_s + 1;
    s.flags = TcpFlags::kAck;
    return s;
  }
};

TEST(HandshakeTracker, Figure1Decomposition) {
  TrackerHarness h;
  Flow f;
  EXPECT_FALSE(h.feed(f.syn(), Timestamp::from_ms(1000)).has_value());
  EXPECT_FALSE(h.feed(f.synack(), Timestamp::from_ms(1128)).has_value());
  const auto sample = h.feed(f.ack(), Timestamp::from_ms(1133));
  ASSERT_TRUE(sample.has_value());

  EXPECT_EQ(sample->external().ns, Duration::from_ms(128).ns);
  EXPECT_EQ(sample->internal().ns, Duration::from_ms(5).ns);
  EXPECT_EQ(sample->total().ns, Duration::from_ms(133).ns);
  EXPECT_EQ(sample->total().ns, (sample->internal() + sample->external()).ns);
  EXPECT_EQ(sample->client.v4, f.client);
  EXPECT_EQ(sample->server.v4, f.server);
  EXPECT_EQ(sample->client_port, f.cport);
  EXPECT_EQ(sample->server_port, f.sport);
  EXPECT_EQ(sample->queue_id, 0);
  EXPECT_EQ(h.tracker().stats().samples_emitted, 1u);
}

TEST(HandshakeTracker, RetransmittedSynKeepsFirstTimestamp) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  h.feed(f.syn(), Timestamp::from_ms(1000));  // RTO retransmission
  h.feed(f.synack(), Timestamp::from_ms(1128));
  const auto sample = h.feed(f.ack(), Timestamp::from_ms(1133));
  ASSERT_TRUE(sample.has_value());
  // External measured from the FIRST SYN (paper semantics): 1128 ms.
  EXPECT_EQ(sample->external().ns, Duration::from_ms(1128).ns);
  EXPECT_EQ(h.tracker().stats().syn_retransmissions, 1u);
}

TEST(HandshakeTracker, DuplicateSynAckIgnored) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  h.feed(f.synack(), Timestamp::from_ms(100));
  h.feed(f.synack(), Timestamp::from_ms(140));  // dup; must not re-stamp
  const auto sample = h.feed(f.ack(), Timestamp::from_ms(150));
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->external().ns, Duration::from_ms(100).ns);
  EXPECT_EQ(sample->internal().ns, Duration::from_ms(50).ns);
}

TEST(HandshakeTracker, OnlyFirstAckEmitsSample) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  h.feed(f.synack(), Timestamp::from_ms(100));
  ASSERT_TRUE(h.feed(f.ack(), Timestamp::from_ms(105)).has_value());
  // Later ACKs (e.g. data acks) do not produce more samples.
  auto data_ack = f.ack();
  data_ack.ack = f.isn_s + 500;
  EXPECT_FALSE(h.feed(data_ack, Timestamp::from_ms(110)).has_value());
  EXPECT_FALSE(h.feed(f.ack(), Timestamp::from_ms(120)).has_value());
  EXPECT_EQ(h.tracker().stats().samples_emitted, 1u);
}

TEST(HandshakeTracker, SynAckMustAckTheSyn) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  auto bogus = f.synack();
  bogus.ack = f.isn_c + 999;  // does not acknowledge our SYN
  h.feed(bogus, Timestamp::from_ms(50));
  // A correct SYN-ACK later still completes the handshake.
  h.feed(f.synack(), Timestamp::from_ms(100));
  const auto sample = h.feed(f.ack(), Timestamp::from_ms(105));
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->external().ns, Duration::from_ms(100).ns);
}

TEST(HandshakeTracker, AckMustAckTheSynAck) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  h.feed(f.synack(), Timestamp::from_ms(100));
  auto wrong = f.ack();
  wrong.ack = f.isn_s + 2;  // acknowledges more than the SYN-ACK
  EXPECT_FALSE(h.feed(wrong, Timestamp::from_ms(105)).has_value());
  // The genuine first ACK then completes it.
  ASSERT_TRUE(h.feed(f.ack(), Timestamp::from_ms(106)).has_value());
}

TEST(HandshakeTracker, AckFromWrongDirectionIgnored) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  h.feed(f.synack(), Timestamp::from_ms(100));
  // An ACK from the server side (e.g. delayed dup) must not complete.
  TcpFrameSpec server_ack;
  server_ack.src_ip = f.server;
  server_ack.dst_ip = f.client;
  server_ack.src_port = f.sport;
  server_ack.dst_port = f.cport;
  server_ack.seq = f.isn_s + 1;
  server_ack.ack = f.isn_s + 1;  // matches synack_seq+1 but wrong direction
  server_ack.flags = TcpFlags::kAck;
  EXPECT_FALSE(h.feed(server_ack, Timestamp::from_ms(104)).has_value());
  EXPECT_TRUE(h.feed(f.ack(), Timestamp::from_ms(105)).has_value());
}

TEST(HandshakeTracker, SynAckWithoutSynIsUnmatched) {
  TrackerHarness h;
  Flow f;
  EXPECT_FALSE(h.feed(f.synack(), Timestamp::from_ms(0)).has_value());
  EXPECT_EQ(h.tracker().stats().synack_unmatched, 1u);
}

TEST(HandshakeTracker, RstAbortsTracking) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  auto rst = f.synack();
  rst.flags = TcpFlags::kRst | TcpFlags::kAck;
  h.feed(rst, Timestamp::from_ms(10));
  h.feed(f.synack(), Timestamp::from_ms(100));  // no SYN on record anymore
  EXPECT_FALSE(h.feed(f.ack(), Timestamp::from_ms(105)).has_value());
  EXPECT_EQ(h.tracker().stats().rst_seen, 1u);
  EXPECT_EQ(h.tracker().stats().samples_emitted, 0u);
}

TEST(HandshakeTracker, PortReuseRestartsMeasurement) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  // Same 5-tuple, new ISN long after: a fresh connection attempt.
  Flow f2 = f;
  f2.isn_c = 77'000;
  f2.isn_s = 88'000;
  h.feed(f2.syn(), Timestamp::from_ms(5000));
  h.feed(f2.synack(), Timestamp::from_ms(5100));
  const auto sample = h.feed(f2.ack(), Timestamp::from_ms(5103));
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->external().ns, Duration::from_ms(100).ns);
}

TEST(HandshakeTracker, EntryFreedAfterSample) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  h.feed(f.synack(), Timestamp::from_ms(100));
  ASSERT_TRUE(h.feed(f.ack(), Timestamp::from_ms(105)).has_value());
  EXPECT_EQ(h.tracker().table().size(), 0u);
}

TEST(HandshakeTracker, PiggybackedFirstAckWithDataCounts) {
  TrackerHarness h;
  Flow f;
  h.feed(f.syn(), Timestamp::from_ms(0));
  h.feed(f.synack(), Timestamp::from_ms(100));
  auto ack = f.ack();
  ack.payload_length = 300;  // request data riding on the first ACK
  ack.flags = TcpFlags::kAck | TcpFlags::kPsh;
  const auto sample = h.feed(ack, Timestamp::from_ms(107));
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->internal().ns, Duration::from_ms(7).ns);
}

TEST(HandshakeTracker, InterleavedFlowsKeepSeparateState) {
  TrackerHarness h;
  Flow a;
  Flow b;
  b.client = Ipv4Address(10, 1, 0, 2);
  b.cport = 50'000;
  b.isn_c = 5'000;
  b.isn_s = 6'000;

  h.feed(a.syn(), Timestamp::from_ms(0));
  h.feed(b.syn(), Timestamp::from_ms(1));
  h.feed(b.synack(), Timestamp::from_ms(31));
  h.feed(a.synack(), Timestamp::from_ms(128));
  const auto sb = h.feed(b.ack(), Timestamp::from_ms(36));
  const auto sa = h.feed(a.ack(), Timestamp::from_ms(133));
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sa->external().ns, Duration::from_ms(128).ns);
  EXPECT_EQ(sb->external().ns, Duration::from_ms(30).ns);
  EXPECT_EQ(sb->internal().ns, Duration::from_ms(5).ns);
}

}  // namespace
}  // namespace ruru
