// In-flow RTT kernel tests: the ts_ring matching core, the tracker's
// in-flow layer (kinds, halves, rate limiting, one-sided mode), and the
// oracle property at the heart of the feature — the worker fast path
// replaying a full scenario emits exactly the sample sequence the
// offline pping baseline (the shared algorithm's reference
// implementation) computes on the same frames.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "baseline/pping.hpp"
#include "capture/scenarios.hpp"
#include "flow/ts_ring.hpp"
#include "flow/worker.hpp"
#include "msg/codec.hpp"
#include "net/packet_builder.hpp"

namespace ruru {
namespace {

// --- ts_ring core ---------------------------------------------------

/// Owning test ring: the production lanes live inside the flow table's
/// SoA arrays, so tests build their own pair.
struct TestRing {
  explicit TestRing(std::size_t n) : vals(n, 0), times(n, kTsNever) {}
  [[nodiscard]] TsRingRef ref() { return {vals, times}; }
  std::vector<std::uint32_t> vals;
  std::vector<std::int64_t> times;
};

TEST(TsRing, NoteMatchConsume) {
  TestRing ring(8);
  TsDirState st;
  EXPECT_TRUE(ts_note(ring.ref(), st, 100, 5'000).noted);
  EXPECT_EQ(ts_match(ring.ref(), 100), 5'000);
  // Consumed: the same TSecr cannot match twice (one sample per TSval).
  EXPECT_EQ(ts_match(ring.ref(), 100), kTsNever);
}

TEST(TsRing, RetransmissionDoesNotRejuvenate) {
  TestRing ring(8);
  TsDirState st;
  EXPECT_TRUE(ts_note(ring.ref(), st, 100, 1'000).noted);
  EXPECT_FALSE(ts_note(ring.ref(), st, 100, 9'000).noted);  // retransmission
  EXPECT_EQ(ts_match(ring.ref(), 100), 1'000);              // first departure stands
}

TEST(TsRing, ConsumedEntryCanBeReNoted) {
  // Liveness lives in the times lane: a consumed note's stale TSval in
  // the vals lane neither matches nor blocks a fresh note of the same
  // value (a peer clock that stalled, or a wrapped value coming around).
  TestRing ring(8);
  TsDirState st;
  EXPECT_TRUE(ts_note(ring.ref(), st, 100, 1'000).noted);
  EXPECT_EQ(ts_match(ring.ref(), 100), 1'000);
  EXPECT_TRUE(ts_note(ring.ref(), st, 100, 7'000).noted);
  EXPECT_EQ(ts_match(ring.ref(), 100), 7'000);
}

TEST(TsRing, FullRingEvictsOldest) {
  TestRing ring(2);
  TsDirState st;
  EXPECT_FALSE(ts_note(ring.ref(), st, 1, 10).evicted);
  EXPECT_FALSE(ts_note(ring.ref(), st, 2, 20).evicted);
  EXPECT_TRUE(ts_note(ring.ref(), st, 3, 30).evicted);  // overwrites tsval 1
  EXPECT_EQ(ts_match(ring.ref(), 1), kTsNever);
  EXPECT_EQ(ts_match(ring.ref(), 2), 20);
  EXPECT_EQ(ts_match(ring.ref(), 3), 30);
}

TEST(TsRing, WrapDetectedBySignedDistance) {
  TestRing ring(8);
  TsDirState st;
  EXPECT_FALSE(ts_note(ring.ref(), st, 0xFFFF'FFF0u, 10).wrapped);
  const TsNoteResult r = ts_note(ring.ref(), st, 5, 20);  // newer mod 2^32, smaller value
  EXPECT_TRUE(r.noted);
  EXPECT_TRUE(r.wrapped);
  // Going backwards (an old duplicate with a different value) is not a wrap.
  EXPECT_FALSE(ts_note(ring.ref(), st, 2, 30).wrapped);
}

// --- tracker in-flow layer ------------------------------------------

class InflowTrackerTest : public ::testing::Test {
 protected:
  static constexpr std::uint16_t kQueue = 2;

  explicit InflowTrackerTest() { reset({true, 8, Duration{0}}); }

  void reset(InflowConfig cfg) {
    tracker_ = std::make_unique<HandshakeTracker>(1 << 10, Duration::from_sec(30.0),
                                                  FlowTable::kDefaultProbeWindow,
                                                  ProbeKernel::kAuto, cfg);
  }

  /// Feeds one frame through the full-parse path, returning emitted
  /// samples.
  std::vector<LatencySample> feed(const TcpFrameSpec& spec, std::int64_t t_ms) {
    const auto frame = build_tcp_frame(spec);
    PacketView view;
    EXPECT_EQ(parse_packet(frame, view), ParseStatus::kOk);
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    std::vector<LatencySample> out;
    tracker_->process(view, Timestamp::from_ms(t_ms), rss, kQueue, out);
    return out;
  }

  TcpFrameSpec seg(bool c2s, std::uint32_t tsval, std::uint32_t tsecr, std::size_t payload,
                   std::uint8_t flags = TcpFlags::kAck) {
    TcpFrameSpec s;
    s.src_ip = c2s ? client_ : server_;
    s.dst_ip = c2s ? server_ : client_;
    s.src_port = c2s ? cport_ : 443;
    s.dst_port = c2s ? 443 : cport_;
    s.flags = flags;
    s.payload_length = payload;
    s.with_timestamps = true;
    s.ts_val = tsval;
    s.ts_ecr = tsecr;
    return s;
  }

  /// SYN(t0) / SYN-ACK(t0+ext) / ACK(t0+ext+in) with timestamps; leaves
  /// the flow established.
  void establish(std::int64_t t0_ms = 0) {
    TcpFrameSpec syn = seg(true, 100, 0, 0, TcpFlags::kSyn);
    syn.seq = 1000;
    feed(syn, t0_ms);
    TcpFrameSpec synack = seg(false, 500, 100, 0, TcpFlags::kSyn | TcpFlags::kAck);
    synack.seq = 5000;
    synack.ack = 1001;
    feed(synack, t0_ms + 128);
    TcpFrameSpec ack = seg(true, 105, 500, 0);
    ack.seq = 1001;
    ack.ack = 5001;
    feed(ack, t0_ms + 133);
  }

  std::unique_ptr<HandshakeTracker> tracker_;
  Ipv4Address client_{10, 1, 0, 1};
  Ipv4Address server_{10, 2, 0, 1};
  std::uint16_t cport_ = 40'000;
};

TEST_F(InflowTrackerTest, EstablishedExchangeYieldsBothHalves) {
  establish();
  // Request with payload at t=200 (tsval 200, echoing server's 500 —
  // already consumed by the handshake ACK, so no match here).
  auto out = feed(seg(true, 200, 500, 300), 200);
  EXPECT_TRUE(out.empty());
  // Response echoes tsval 200 one external RTT later: external half.
  out = feed(seg(false, 600, 200, 1000), 330);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, SampleKind::kInflow);
  EXPECT_FALSE(out[0].toward_client);
  EXPECT_EQ(out[0].total().ns, Duration::from_ms(130).ns);
  EXPECT_EQ(out[0].external().ns, Duration::from_ms(130).ns);
  EXPECT_EQ(out[0].internal().ns, 0);
  EXPECT_TRUE(out[0].client == IpAddress(client_));
  EXPECT_TRUE(out[0].server == IpAddress(server_));
  EXPECT_EQ(out[0].queue_id, kQueue);
  // Client ack echoes 600 five ms later: internal half.
  out = feed(seg(true, 205, 600, 0), 335);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, SampleKind::kInflow);
  EXPECT_TRUE(out[0].toward_client);
  EXPECT_EQ(out[0].total().ns, Duration::from_ms(5).ns);
  EXPECT_EQ(out[0].internal().ns, Duration::from_ms(5).ns);
  EXPECT_EQ(out[0].external().ns, 0);
  // 4: SYN-ACK echoed the SYN, the ACK echoed the SYN-ACK, plus the two
  // exchange echoes above.
  EXPECT_EQ(tracker_->inflow_stats().ts_matches.load(), 4u);
}

TEST_F(InflowTrackerTest, PureAcksAreNotNoted) {
  establish();
  // A pure ACK's TSval must not be noted: the opposite direction echoing
  // it later finds nothing.
  feed(seg(true, 300, 0, 0), 200);
  const auto out = feed(seg(false, 700, 300, 500), 330);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tracker_->inflow_stats().ts_matches.load(), 2u);  // handshake echoes only
}

TEST_F(InflowTrackerTest, RateLimitEmitsFirstMatchPerWindow) {
  reset({true, 8, Duration::from_ms(100)});
  establish();
  feed(seg(true, 200, 0, 300), 200);
  feed(seg(true, 201, 0, 300), 205);
  // Two echoes 10 ms apart in the same direction: only the first emits.
  auto out = feed(seg(false, 600, 200, 500), 330);
  ASSERT_EQ(out.size(), 1u);
  out = feed(seg(false, 601, 201, 500), 340);
  EXPECT_TRUE(out.empty());
  // 2 handshake matches + 2 exchange matches; the handshake's own samples
  // (one per direction, windows fresh) plus the first exchange echo emit,
  // the second exchange echo lands 10 ms into the server->client window.
  EXPECT_EQ(tracker_->inflow_stats().ts_matches.load(), 4u);
  EXPECT_EQ(tracker_->inflow_stats().inflow_samples.load(), 3u);
  EXPECT_EQ(tracker_->inflow_stats().rate_limited.load(), 1u);
}

TEST_F(InflowTrackerTest, OneSidedModeEmitsDepartureDeltas) {
  // Only the client direction is visible (asymmetric tap): after the
  // SYN, data segments keep arriving with no reverse traffic ever seen.
  TcpFrameSpec syn = seg(true, 100, 0, 0, TcpFlags::kSyn);
  syn.seq = 1000;
  feed(syn, 0);
  auto out = feed(seg(true, 150, 0, 300), 50);
  ASSERT_EQ(out.size(), 1u);  // delta to the SYN's note
  EXPECT_EQ(out[0].kind, SampleKind::kOneSided);
  EXPECT_EQ(out[0].total().ns, Duration::from_ms(50).ns);
  out = feed(seg(true, 170, 0, 300), 70);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, SampleKind::kOneSided);
  EXPECT_EQ(out[0].total().ns, Duration::from_ms(20).ns);
  EXPECT_EQ(tracker_->inflow_stats().one_sided_samples.load(), 2u);

  // The moment the reverse direction appears, one-sided mode stops.
  feed(seg(false, 900, 0, 0), 80);
  out = feed(seg(true, 190, 0, 300), 90);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tracker_->inflow_stats().one_sided_samples.load(), 2u);
}

TEST_F(InflowTrackerTest, FinRetiresTheFlow) {
  establish();
  feed(seg(true, 200, 0, 100), 200);
  feed(seg(true, 210, 0, 0, TcpFlags::kFin | TcpFlags::kAck), 210);
  // Flow erased: the echo of tsval 200 finds no state.
  const auto out = feed(seg(false, 600, 200, 500), 330);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tracker_->table().size(), 0u);
}

// --- worker fast path vs offline pping oracle -----------------------

struct OracleSample {
  std::int64_t rtt_ns;
  std::int64_t at_ns;
  bool operator==(const OracleSample&) const = default;
};

class InflowOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InflowOracleTest, WorkerMatchesOfflinePpingOnReplayedScenario) {
  // Buffer one scenario's frames so every configuration replays the
  // exact same tap stream.
  auto model = scenarios::transpacific(GetParam(), 150.0, Duration::from_sec(3.0));
  std::vector<TimedFrame> frames;
  while (auto f = model.next()) frames.push_back(std::move(*f));
  ASSERT_GT(frames.size(), 1000u);

  for (const std::size_t ring : {std::size_t{8}, std::size_t{2}}) {
    // Offline oracle: the shared kernel with fast-path note rules and
    // the same fixed ring size (ring <= kInitialRing keeps the offline
    // rings fixed-size from the first note, so eviction order is
    // bit-identical to the flow table's rings).
    PpingConfig ocfg;
    ocfg.ring_entries = ring;
    ocfg.eliciting_only = true;
    PpingEstimator oracle(ocfg);
    std::vector<OracleSample> expected;
    for (const auto& f : frames) {
      PacketView view;
      if (parse_packet(f.frame, view) != ParseStatus::kOk) continue;
      if (auto s = oracle.process(view, f.timestamp)) {
        expected.push_back({s->rtt.ns, s->at.ns});
      }
    }
    ASSERT_GT(expected.size(), 100u) << "scenario produced too few echo samples";

    for (const bool fast_path : {true, false}) {
      Mempool pool(8192, 2048);
      NicConfig ncfg;
      ncfg.num_queues = 1;
      SimNic nic(ncfg, pool);
      InflowConfig icfg;
      icfg.enabled = true;
      icfg.ring_entries = ring;
      icfg.min_interval = Duration{0};  // the oracle has no rate limit
      std::vector<LatencySample> samples;
      QueueWorker worker(nic, 0, 1 << 14, [&](const LatencySample& s) { samples.push_back(s); },
                         Duration::from_sec(30.0), FlowTable::kDefaultProbeWindow, icfg);
      worker.set_fast_path(fast_path);

      std::size_t pending = 0;
      for (const auto& f : frames) {
        while (!nic.inject(f.frame, f.timestamp)) worker.poll_once();
        if (++pending >= 16) {
          worker.poll_once();
          pending = 0;
        }
      }
      while (worker.poll_once() != 0) {
      }
      ASSERT_EQ(worker.tracker_stats().table_drops.load(), 0u);

      std::vector<OracleSample> got;
      for (const auto& s : samples) {
        if (s.kind == SampleKind::kInflow) got.push_back({s.total().ns, s.ack_time.ns});
      }
      ASSERT_EQ(got.size(), expected.size())
          << "ring=" << ring << " fast_path=" << fast_path;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i]) << "sample " << i << " ring=" << ring << " fast_path="
                                       << fast_path << " rtt=" << got[i].rtt_ns
                                       << " expected=" << expected[i].rtt_ns;
      }
      // Kernel-level stats agree with the oracle's too.
      const InflowStats& st = worker.tracker().inflow_stats();
      EXPECT_EQ(st.ts_matches.load(), oracle.stats().samples);
      EXPECT_EQ(st.ts_ring_evictions.load(), oracle.stats().ring_evictions);
      EXPECT_EQ(st.ts_wraps.load(), oracle.stats().ts_wraps);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InflowOracleTest, ::testing::Values(11, 42, 9001));

// --- handshake byte-identity with the kernel on ----------------------

TEST(InflowWorker, HandshakeSamplesBitIdenticalWithKernelOnOrOff) {
  auto model = scenarios::transpacific(7, 120.0, Duration::from_sec(2.0));
  std::vector<TimedFrame> frames;
  while (auto f = model.next()) frames.push_back(std::move(*f));

  auto run = [&](InflowConfig icfg) {
    Mempool pool(8192, 2048);
    NicConfig ncfg;
    ncfg.num_queues = 1;
    SimNic nic(ncfg, pool);
    std::vector<LatencySample> samples;
    QueueWorker worker(nic, 0, 1 << 14, [&](const LatencySample& s) { samples.push_back(s); },
                       Duration::from_sec(30.0), FlowTable::kDefaultProbeWindow, icfg);
    for (const auto& f : frames) {
      while (!nic.inject(f.frame, f.timestamp)) worker.poll_once();
    }
    while (worker.poll_once() != 0) {
    }
    return samples;
  };

  const auto off = run(InflowConfig{});
  const auto on = run(InflowConfig{true, 8, Duration::from_ms(10)});

  std::vector<LatencySample> on_handshakes;
  for (const auto& s : on) {
    if (s.kind == SampleKind::kHandshake) on_handshakes.push_back(s);
  }
  EXPECT_GT(on.size(), on_handshakes.size());  // the kernel did add in-flow samples
  ASSERT_EQ(on_handshakes.size(), off.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    // Compare the encoded wire records — byte identity, not just field
    // equality (the family byte carries the new kind bits; a handshake
    // record must not change).
    const Message a = encode_latency_sample(off[i]);
    const Message b = encode_latency_sample(on_handshakes[i]);
    ASSERT_EQ(a.frames[1].size(), b.frames[1].size());
    ASSERT_EQ(std::memcmp(a.frames[1].data(), b.frames[1].data(), a.frames[1].size()), 0)
        << "handshake record " << i << " differs";
  }
}

}  // namespace
}  // namespace ruru
