// Property tests: the handshake tracker under adversarial packet
// interleavings.  Whatever order (or garbage) arrives, invariants hold:
// never more samples than distinct completed handshakes, every sample's
// timestamps are ordered, internal+external == total, and state never
// exceeds table capacity.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flow/handshake_tracker.hpp"
#include "net/packet_builder.hpp"
#include "util/random.hpp"

namespace ruru {
namespace {

struct Event {
  Timestamp t;
  std::vector<std::uint8_t> frame;
};

class TrackerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerFuzzTest, InvariantsHoldUnderRandomInterleaving) {
  Pcg32 rng(GetParam());
  constexpr int kFlows = 200;

  // Generate kFlows complete handshakes...
  std::vector<Event> events;
  for (int i = 0; i < kFlows; ++i) {
    const Ipv4Address client(Ipv4Address(10, 1, 0, 0).value() + rng.bounded(64));
    const Ipv4Address server(Ipv4Address(10, 2, 0, 0).value() + rng.bounded(64));
    const auto sport = static_cast<std::uint16_t>(10'000 + i);
    const std::uint32_t isn_c = rng.next_u32();
    const std::uint32_t isn_s = rng.next_u32();
    const Timestamp t0 = Timestamp::from_ms(static_cast<std::int64_t>(rng.bounded(10'000)));

    TcpFrameSpec syn;
    syn.src_ip = client;
    syn.dst_ip = server;
    syn.src_port = sport;
    syn.dst_port = 443;
    syn.seq = isn_c;
    syn.flags = TcpFlags::kSyn;
    events.push_back({t0, build_tcp_frame(syn)});

    TcpFrameSpec synack;
    synack.src_ip = server;
    synack.dst_ip = client;
    synack.src_port = 443;
    synack.dst_port = sport;
    synack.seq = isn_s;
    synack.ack = isn_c + 1;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    events.push_back({t0 + Duration::from_ms(100), build_tcp_frame(synack)});

    TcpFrameSpec ack;
    ack.src_ip = client;
    ack.dst_ip = server;
    ack.src_port = sport;
    ack.dst_port = 443;
    ack.seq = isn_c + 1;
    ack.ack = isn_s + 1;
    ack.flags = TcpFlags::kAck;
    events.push_back({t0 + Duration::from_ms(105), build_tcp_frame(ack)});

    // ...with random duplicates.
    if (rng.chance(0.3)) events.push_back({t0 + Duration::from_ms(1), build_tcp_frame(syn)});
    if (rng.chance(0.3)) {
      events.push_back({t0 + Duration::from_ms(101), build_tcp_frame(synack)});
    }
  }

  // Shuffle into a completely arbitrary arrival order (the tap never
  // reorders, but the tracker must still never misbehave).
  for (std::size_t i = events.size(); i > 1; --i) {
    std::swap(events[i - 1], events[rng.bounded(static_cast<std::uint32_t>(i))]);
  }

  HandshakeTracker tracker(512);
  std::uint64_t samples = 0;
  for (const auto& e : events) {
    PacketView view;
    ASSERT_EQ(parse_packet(e.frame, view), ParseStatus::kOk);
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    if (auto s = tracker.process(view, e.t, rss, 0)) {
      ++samples;
      // Sample invariants regardless of interleaving.
      EXPECT_LE(s->syn_time.ns, s->synack_time.ns);
      EXPECT_LE(s->synack_time.ns, s->ack_time.ns);
      EXPECT_EQ((s->internal() + s->external()).ns, s->total().ns);
    }
    EXPECT_LE(tracker.table().size(), tracker.table().capacity());
  }
  // At most one sample per flow, no matter what arrived.
  EXPECT_LE(samples, static_cast<std::uint64_t>(kFlows));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerFuzzTest,
                         ::testing::Values(1, 7, 42, 1337, 0xDEAD, 0xBEEF, 2024, 31415));

// Oracle test: the same adversarial stream through the SIMD group-probed
// table (batched, prefetch-pipelined) and through a kScalar reference
// tracker fed one packet at a time.  Every emitted sample must agree
// field-by-field, and the final stats and table occupancy must match —
// the SIMD kernels and process_burst() are pure accelerations, never a
// behaviour change.
class TrackerOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerOracleTest, SimdBurstMatchesScalarPerPacketOracle) {
  Pcg32 rng(GetParam() ^ 0x5EED);
  constexpr int kFlows = 200;

  std::vector<Event> events;
  for (int i = 0; i < kFlows; ++i) {
    // Few hosts/ports so flows collide hard in the table.
    const Ipv4Address client(Ipv4Address(10, 1, 0, 0).value() + rng.bounded(16));
    const Ipv4Address server(Ipv4Address(10, 2, 0, 0).value() + rng.bounded(8));
    const auto sport = static_cast<std::uint16_t>(10'000 + rng.bounded(64));
    const std::uint32_t isn_c = rng.next_u32();
    const std::uint32_t isn_s = rng.next_u32();
    const Timestamp t0 = Timestamp::from_ms(static_cast<std::int64_t>(rng.bounded(10'000)));

    TcpFrameSpec syn;
    syn.src_ip = client;
    syn.dst_ip = server;
    syn.src_port = sport;
    syn.dst_port = 443;
    syn.seq = isn_c;
    syn.flags = TcpFlags::kSyn;
    events.push_back({t0, build_tcp_frame(syn)});

    TcpFrameSpec synack;
    synack.src_ip = server;
    synack.dst_ip = client;
    synack.src_port = 443;
    synack.dst_port = sport;
    synack.seq = isn_s;
    synack.ack = isn_c + 1;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    events.push_back({t0 + Duration::from_ms(100), build_tcp_frame(synack)});

    TcpFrameSpec ack;
    ack.src_ip = client;
    ack.dst_ip = server;
    ack.src_port = sport;
    ack.dst_port = 443;
    ack.seq = isn_c + 1;
    ack.ack = isn_s + 1;
    ack.flags = TcpFlags::kAck;
    events.push_back({t0 + Duration::from_ms(105), build_tcp_frame(ack)});

    if (rng.chance(0.3)) events.push_back({t0 + Duration::from_ms(1), build_tcp_frame(syn)});
    if (rng.chance(0.3)) {
      events.push_back({t0 + Duration::from_ms(101), build_tcp_frame(synack)});
    }
    if (rng.chance(0.1)) {
      TcpFrameSpec rst = ack;
      rst.flags = TcpFlags::kRst;
      events.push_back({t0 + Duration::from_ms(103), build_tcp_frame(rst)});
    }
  }
  for (std::size_t i = events.size(); i > 1; --i) {
    std::swap(events[i - 1], events[rng.bounded(static_cast<std::uint32_t>(i))]);
  }

  // Deliberately small table + window so saturation paths run too.
  HandshakeTracker simd(256, Duration::from_sec(30.0), 32, ProbeKernel::kAuto);
  HandshakeTracker scalar(256, Duration::from_sec(30.0), 32, ProbeKernel::kScalar);

  std::vector<LatencySample> simd_samples;
  std::vector<LatencySample> scalar_samples;
  std::vector<TrackedPacket> burst;
  std::vector<PacketView> views(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(parse_packet(events[i].frame, views[i]), ParseStatus::kOk);
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(views[i].tuple()).hash());
    burst.push_back({views[i], events[i].t, rss});
    // Flush in ragged burst sizes so batch boundaries move around.
    if (burst.size() == 1 + rng.bounded(32) || i + 1 == events.size()) {
      simd.process_burst(burst, 3, simd_samples);
      for (const auto& p : burst) {
        if (auto s = scalar.process(p.view, p.rx_time, p.rss_hash, 3)) {
          scalar_samples.push_back(*s);
        }
      }
      burst.clear();
    }
  }

  ASSERT_EQ(simd_samples.size(), scalar_samples.size());
  for (std::size_t i = 0; i < simd_samples.size(); ++i) {
    const auto& a = simd_samples[i];
    const auto& b = scalar_samples[i];
    EXPECT_EQ(a.client, b.client) << "sample " << i;
    EXPECT_EQ(a.server, b.server) << "sample " << i;
    EXPECT_EQ(a.client_port, b.client_port) << "sample " << i;
    EXPECT_EQ(a.server_port, b.server_port) << "sample " << i;
    EXPECT_EQ(a.syn_time.ns, b.syn_time.ns) << "sample " << i;
    EXPECT_EQ(a.synack_time.ns, b.synack_time.ns) << "sample " << i;
    EXPECT_EQ(a.ack_time.ns, b.ack_time.ns) << "sample " << i;
    EXPECT_EQ(a.rss_hash, b.rss_hash) << "sample " << i;
    EXPECT_EQ(a.queue_id, b.queue_id) << "sample " << i;
  }

  EXPECT_EQ(simd.stats().syn_seen, scalar.stats().syn_seen);
  EXPECT_EQ(simd.stats().syn_retransmissions, scalar.stats().syn_retransmissions);
  EXPECT_EQ(simd.stats().synack_seen, scalar.stats().synack_seen);
  EXPECT_EQ(simd.stats().synack_unmatched, scalar.stats().synack_unmatched);
  EXPECT_EQ(simd.stats().ack_matched, scalar.stats().ack_matched);
  EXPECT_EQ(simd.stats().rst_seen, scalar.stats().rst_seen);
  EXPECT_EQ(simd.stats().samples_emitted, scalar.stats().samples_emitted);
  EXPECT_EQ(simd.stats().table_drops, scalar.stats().table_drops);
  EXPECT_EQ(simd.table().size(), scalar.table().size());
  EXPECT_EQ(simd.table().stats().inserts, scalar.table().stats().inserts);
  EXPECT_EQ(simd.table().stats().hits, scalar.table().stats().hits);
  EXPECT_EQ(simd.table().stats().erases, scalar.table().stats().erases);
  EXPECT_EQ(simd.table().stats().insert_failures, scalar.table().stats().insert_failures);
  EXPECT_EQ(simd.table().stats().tag_mismatches, scalar.table().stats().tag_mismatches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerOracleTest,
                         ::testing::Values(3, 9, 64, 2025, 0xCAFE, 86028157));

TEST(TrackerFuzz, RandomFlagCombinationsNeverCrash) {
  Pcg32 rng(77);
  HandshakeTracker tracker(256);
  for (int i = 0; i < 20'000; ++i) {
    TcpFrameSpec spec;
    spec.src_ip = Ipv4Address(Ipv4Address(10, 0, 0, 0).value() + rng.bounded(16));
    spec.dst_ip = Ipv4Address(Ipv4Address(10, 0, 0, 0).value() + rng.bounded(16));
    spec.src_port = static_cast<std::uint16_t>(rng.bounded(8));
    spec.dst_port = static_cast<std::uint16_t>(rng.bounded(8));
    spec.seq = rng.bounded(1000);
    spec.ack = rng.bounded(1000);
    spec.flags = static_cast<std::uint8_t>(rng.next_u32() & 0x3f);  // all flag combos
    const auto frame = build_tcp_frame(spec);
    PacketView view;
    ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
    tracker.process(view, Timestamp::from_ms(i), rng.next_u32(), 0);
  }
  // Tracker stats stay self-consistent.
  const auto& s = tracker.stats();
  EXPECT_LE(s.samples_emitted, s.ack_matched + 1);
  EXPECT_LE(tracker.table().size(), tracker.table().capacity());
}

}  // namespace
}  // namespace ruru
