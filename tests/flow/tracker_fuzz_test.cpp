// Property tests: the handshake tracker under adversarial packet
// interleavings.  Whatever order (or garbage) arrives, invariants hold:
// never more samples than distinct completed handshakes, every sample's
// timestamps are ordered, internal+external == total, and state never
// exceeds table capacity.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flow/handshake_tracker.hpp"
#include "net/packet_builder.hpp"
#include "util/random.hpp"

namespace ruru {
namespace {

struct Event {
  Timestamp t;
  std::vector<std::uint8_t> frame;
};

class TrackerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerFuzzTest, InvariantsHoldUnderRandomInterleaving) {
  Pcg32 rng(GetParam());
  constexpr int kFlows = 200;

  // Generate kFlows complete handshakes...
  std::vector<Event> events;
  for (int i = 0; i < kFlows; ++i) {
    const Ipv4Address client(Ipv4Address(10, 1, 0, 0).value() + rng.bounded(64));
    const Ipv4Address server(Ipv4Address(10, 2, 0, 0).value() + rng.bounded(64));
    const auto sport = static_cast<std::uint16_t>(10'000 + i);
    const std::uint32_t isn_c = rng.next_u32();
    const std::uint32_t isn_s = rng.next_u32();
    const Timestamp t0 = Timestamp::from_ms(static_cast<std::int64_t>(rng.bounded(10'000)));

    TcpFrameSpec syn;
    syn.src_ip = client;
    syn.dst_ip = server;
    syn.src_port = sport;
    syn.dst_port = 443;
    syn.seq = isn_c;
    syn.flags = TcpFlags::kSyn;
    events.push_back({t0, build_tcp_frame(syn)});

    TcpFrameSpec synack;
    synack.src_ip = server;
    synack.dst_ip = client;
    synack.src_port = 443;
    synack.dst_port = sport;
    synack.seq = isn_s;
    synack.ack = isn_c + 1;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    events.push_back({t0 + Duration::from_ms(100), build_tcp_frame(synack)});

    TcpFrameSpec ack;
    ack.src_ip = client;
    ack.dst_ip = server;
    ack.src_port = sport;
    ack.dst_port = 443;
    ack.seq = isn_c + 1;
    ack.ack = isn_s + 1;
    ack.flags = TcpFlags::kAck;
    events.push_back({t0 + Duration::from_ms(105), build_tcp_frame(ack)});

    // ...with random duplicates.
    if (rng.chance(0.3)) events.push_back({t0 + Duration::from_ms(1), build_tcp_frame(syn)});
    if (rng.chance(0.3)) {
      events.push_back({t0 + Duration::from_ms(101), build_tcp_frame(synack)});
    }
  }

  // Shuffle into a completely arbitrary arrival order (the tap never
  // reorders, but the tracker must still never misbehave).
  for (std::size_t i = events.size(); i > 1; --i) {
    std::swap(events[i - 1], events[rng.bounded(static_cast<std::uint32_t>(i))]);
  }

  HandshakeTracker tracker(512);
  std::uint64_t samples = 0;
  for (const auto& e : events) {
    PacketView view;
    ASSERT_EQ(parse_packet(e.frame, view), ParseStatus::kOk);
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    if (auto s = tracker.process(view, e.t, rss, 0)) {
      ++samples;
      // Sample invariants regardless of interleaving.
      EXPECT_LE(s->syn_time.ns, s->synack_time.ns);
      EXPECT_LE(s->synack_time.ns, s->ack_time.ns);
      EXPECT_EQ((s->internal() + s->external()).ns, s->total().ns);
    }
    EXPECT_LE(tracker.table().size(), tracker.table().capacity());
  }
  // At most one sample per flow, no matter what arrived.
  EXPECT_LE(samples, static_cast<std::uint64_t>(kFlows));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerFuzzTest,
                         ::testing::Values(1, 7, 42, 1337, 0xDEAD, 0xBEEF, 2024, 31415));

TEST(TrackerFuzz, RandomFlagCombinationsNeverCrash) {
  Pcg32 rng(77);
  HandshakeTracker tracker(256);
  for (int i = 0; i < 20'000; ++i) {
    TcpFrameSpec spec;
    spec.src_ip = Ipv4Address(Ipv4Address(10, 0, 0, 0).value() + rng.bounded(16));
    spec.dst_ip = Ipv4Address(Ipv4Address(10, 0, 0, 0).value() + rng.bounded(16));
    spec.src_port = static_cast<std::uint16_t>(rng.bounded(8));
    spec.dst_port = static_cast<std::uint16_t>(rng.bounded(8));
    spec.seq = rng.bounded(1000);
    spec.ack = rng.bounded(1000);
    spec.flags = static_cast<std::uint8_t>(rng.next_u32() & 0x3f);  // all flag combos
    const auto frame = build_tcp_frame(spec);
    PacketView view;
    ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
    tracker.process(view, Timestamp::from_ms(i), rng.next_u32(), 0);
  }
  // Tracker stats stay self-consistent.
  const auto& s = tracker.stats();
  EXPECT_LE(s.samples_emitted, s.ack_matched + 1);
  EXPECT_LE(tracker.table().size(), tracker.table().capacity());
}

}  // namespace
}  // namespace ruru
