#include "capture/scenarios.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/packet_view.hpp"

namespace ruru {
namespace {

TEST(Scenarios, SitePlanIsConsistent) {
  const auto& nz = scenarios::nz_sites();
  const auto& world = scenarios::world_sites();
  EXPECT_GE(nz.size(), 5u);
  EXPECT_GE(world.size(), 10u);
  // Address blocks must not collide (they seed the geo DB too).
  std::vector<std::uint32_t> starts;
  for (const auto& s : nz) starts.push_back(s.block.value());
  for (const auto& s : world) starts.push_back(s.block.value());
  std::sort(starts.begin(), starts.end());
  for (std::size_t i = 1; i < starts.size(); ++i) {
    EXPECT_GE(starts[i] - starts[i - 1], 256u) << "blocks overlap at " << i;
  }
}

TEST(Scenarios, RoutesCoverWeightsAndRtts) {
  const auto routes = scenarios::transpacific_routes();
  ASSERT_FALSE(routes.empty());
  double weight = 0;
  for (const auto& r : routes) {
    EXPECT_FALSE(r.clients.addresses.empty());
    EXPECT_FALSE(r.servers.addresses.empty());
    EXPECT_GT(r.external_rtt.ns, r.internal_rtt.ns) << r.name;
    weight += r.weight;
  }
  EXPECT_NEAR(weight, 1.0, 0.01);
}

TEST(Scenarios, TranspacificProducesTraffic) {
  auto model = scenarios::transpacific(7, 100.0, Duration::from_sec(1.0));
  std::uint64_t frames = 0;
  while (model.next()) ++frames;
  EXPECT_GT(frames, 200u);
  EXPECT_GT(model.truth().size(), 50u);
}

TEST(Scenarios, FirewallGlitchFlowsCarryExtraLatency) {
  // Compressed "day": 60 s period, 5 s window, run 120 s.
  auto model = scenarios::firewall_glitch(11, 30.0, Duration::from_sec(120.0),
                                          Duration::from_sec(60.0), Duration::from_sec(5.0));
  while (model.next()) {
  }
  int glitched = 0;
  for (const auto& t : model.truth()) {
    if (t.true_external.ns > Duration::from_ms(4000).ns) ++glitched;
  }
  EXPECT_GT(glitched, 20);
  // Window fraction is 5/60 of all arrivals, give or take.
  const double frac = static_cast<double>(glitched) / static_cast<double>(model.truth().size());
  EXPECT_NEAR(frac, 5.0 / 60.0, 0.05);
}

TEST(Scenarios, SynFloodScenarioFloods) {
  auto model = scenarios::syn_flood(13, 20.0, 2000.0, Duration::from_sec(2.0),
                                    Timestamp::from_sec(0.5), Duration::from_sec(1.0));
  std::uint64_t bare_syns_to_target = 0;
  while (auto f = model.next()) {
    PacketView v;
    if (parse_packet(f->frame, v) == ParseStatus::kOk && v.tcp.is_syn_only() &&
        v.ip4.dst == Ipv4Address(10, 1, 0, 80)) {
      ++bare_syns_to_target;
    }
  }
  EXPECT_GT(bare_syns_to_target, 1000u);
}

}  // namespace
}  // namespace ruru
