// IPv6 traffic path: the flow logic is family-agnostic; these tests run
// a v6 route through generation, parsing and handshake tracking.

#include <gtest/gtest.h>

#include <map>

#include "capture/traffic_model.hpp"
#include "flow/handshake_tracker.hpp"
#include "net/packet_view.hpp"

namespace ruru {
namespace {

RouteProfile v6_route() {
  RouteProfile r;
  r.name = "v6";
  r.clients = HostPool::from_range(Ipv4Address(10, 1, 0, 0), 16);
  r.servers = HostPool::from_range(Ipv4Address(10, 2, 0, 0), 16);
  r.internal_rtt = Duration::from_ms(5);
  r.external_rtt = Duration::from_ms(120);
  r.ipv6 = true;
  return r;
}

TrafficConfig config() {
  TrafficConfig cfg;
  cfg.seed = 6;
  cfg.flows_per_sec = 50;
  cfg.duration = Duration::from_sec(2.0);
  cfg.mean_data_segments = 1;
  return cfg;
}

TEST(Ipv6Traffic, FramesAreWellFormedV6) {
  TrafficModel model(config(), {v6_route()});
  std::uint64_t v6_frames = 0;
  while (auto f = model.next()) {
    PacketView view;
    const auto status = parse_packet(f->frame, view);
    ASSERT_EQ(status, ParseStatus::kOk);
    EXPECT_FALSE(view.is_v4);
    EXPECT_EQ(view.ip6.src.to_string().substr(0, 9), "2001:db8:");
    ++v6_frames;
  }
  EXPECT_GT(v6_frames, 100u);
}

TEST(Ipv6Traffic, TruthCarriesV6Tuples) {
  TrafficModel model(config(), {v6_route()});
  while (model.next()) {
  }
  for (const auto& t : model.truth()) {
    EXPECT_FALSE(t.tuple.src.is_v4());
    EXPECT_FALSE(t.tuple.dst.is_v4());
  }
}

TEST(Ipv6Traffic, HandshakesMeasuredExactly) {
  auto cfg = config();
  cfg.mean_data_segments = 0;
  TrafficModel model(cfg, {v6_route()});
  HandshakeTracker tracker(1 << 12);

  std::uint64_t samples = 0;
  std::map<std::string, Duration> measured_external;
  while (auto f = model.next()) {
    PacketView view;
    ASSERT_EQ(parse_packet(f->frame, view), ParseStatus::kOk);
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    if (auto s = tracker.process(view, f->timestamp, rss, 0)) {
      ++samples;
      EXPECT_FALSE(s->client.is_v4());
      measured_external[s->client.to_string() + ":" + std::to_string(s->client_port)] =
          s->external();
    }
  }

  std::uint64_t completed = 0;
  for (const auto& t : model.truth()) {
    if (!t.handshake_completes) continue;
    ++completed;
    const auto key = t.tuple.src.to_string() + ":" + std::to_string(t.tuple.src_port);
    const auto it = measured_external.find(key);
    ASSERT_NE(it, measured_external.end()) << key;
    EXPECT_EQ(it->second.ns, t.expected_measured_external().ns);
  }
  EXPECT_EQ(samples, completed);
  EXPECT_GT(samples, 50u);
}

TEST(Ipv6Traffic, MixedFamilyRoutesCoexist) {
  RouteProfile v4 = v6_route();
  v4.name = "v4";
  v4.ipv6 = false;
  v4.weight = 1.0;
  RouteProfile v6 = v6_route();
  v6.weight = 1.0;
  TrafficModel model(config(), {v4, v6});
  std::uint64_t v4_count = 0, v6_count = 0;
  while (auto f = model.next()) {
    PacketView view;
    if (parse_packet(f->frame, view) != ParseStatus::kOk) continue;
    (view.is_v4 ? v4_count : v6_count) += 1;
  }
  EXPECT_GT(v4_count, 100u);
  EXPECT_GT(v6_count, 100u);
}

}  // namespace
}  // namespace ruru
