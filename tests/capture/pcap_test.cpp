#include "capture/pcap.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "net/packet_builder.hpp"
#include "util/byte_order.hpp"

namespace ruru {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("ruru_pcap_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".pcap"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PcapTest, WriteReadRoundTrip) {
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = Ipv4Address(10, 2, 0, 1);
  spec.src_port = 1234;
  spec.dst_port = 80;
  spec.flags = TcpFlags::kSyn;
  const auto f1 = build_tcp_frame(spec);
  spec.flags = TcpFlags::kSyn | TcpFlags::kAck;
  spec.payload_length = 33;
  const auto f2 = build_tcp_frame(spec);

  {
    auto writer = PcapWriter::open(path_);
    ASSERT_TRUE(writer.ok()) << writer.error();
    ASSERT_TRUE(writer.value().write(Timestamp::from_ns(123'456'789'012), f1).ok());
    ASSERT_TRUE(writer.value().write(Timestamp::from_ns(123'456'790'999), f2).ok());
    EXPECT_EQ(writer.value().records_written(), 2u);
  }

  auto reader = PcapReader::open(path_);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(reader.value().nanosecond());

  const auto r1 = reader.value().next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->timestamp.ns, 123'456'789'012);
  EXPECT_EQ(r1->frame, f1);

  const auto r2 = reader.value().next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->timestamp.ns, 123'456'790'999);
  EXPECT_EQ(r2->frame, f2);

  EXPECT_FALSE(reader.value().next().has_value());
  EXPECT_FALSE(reader.value().truncated());
}

TEST_F(PcapTest, SnaplenTruncatesFrames) {
  std::vector<std::uint8_t> big(1000, 0x5A);
  // Needs a valid-enough ethernet header region; content is arbitrary.
  {
    auto writer = PcapWriter::open(path_, 100);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().write(Timestamp::from_sec(1), big).ok());
  }
  auto reader = PcapReader::open(path_);
  ASSERT_TRUE(reader.ok());
  const auto rec = reader.value().next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->frame.size(), 100u);
}

TEST_F(PcapTest, RejectsBadMagic) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  const char garbage[24] = "not a pcap file at all";
  std::fwrite(garbage, 1, 24, f);
  std::fclose(f);
  EXPECT_FALSE(PcapReader::open(path_).ok());
}

TEST_F(PcapTest, RejectsMissingFile) {
  EXPECT_FALSE(PcapReader::open("/nonexistent/dir/x.pcap").ok());
  EXPECT_FALSE(PcapWriter::open("/nonexistent/dir/x.pcap").ok());
}

TEST_F(PcapTest, ToleratesTornTrailingRecord) {
  {
    auto writer = PcapWriter::open(path_);
    ASSERT_TRUE(writer.ok());
    std::vector<std::uint8_t> frame(64, 1);
    ASSERT_TRUE(writer.value().write(Timestamp::from_sec(1), frame).ok());
  }
  // Append half a record header (a crash mid-write).
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  const std::uint8_t partial[7] = {1, 2, 3, 4, 5, 6, 7};
  std::fwrite(partial, 1, sizeof partial, f);
  std::fclose(f);

  auto reader = PcapReader::open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().next().has_value());   // intact record
  EXPECT_FALSE(reader.value().next().has_value());  // torn -> EOF
  EXPECT_TRUE(reader.value().truncated());
}

TEST_F(PcapTest, ReadsMicrosecondMagicFiles) {
  // Hand-craft a classic usec pcap with one 4-byte record.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  std::uint8_t hdr[24] = {};
  store_le32(&hdr[0], 0xa1b2c3d4);
  store_le16(&hdr[4], 2);
  store_le16(&hdr[6], 4);
  store_le32(&hdr[16], 65535);
  store_le32(&hdr[20], 1);  // ethernet
  std::fwrite(hdr, 1, 24, f);
  std::uint8_t rec[16];
  store_le32(&rec[0], 10);       // sec
  store_le32(&rec[4], 500'000);  // usec
  store_le32(&rec[8], 4);
  store_le32(&rec[12], 4);
  std::fwrite(rec, 1, 16, f);
  const std::uint8_t payload[4] = {0xde, 0xad, 0xbe, 0xef};
  std::fwrite(payload, 1, 4, f);
  std::fclose(f);

  auto reader = PcapReader::open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().nanosecond());
  const auto rec_read = reader.value().next();
  ASSERT_TRUE(rec_read.has_value());
  EXPECT_EQ(rec_read->timestamp.ns, 10'500'000'000);  // 10.5 s
  EXPECT_EQ(rec_read->frame.size(), 4u);
}

TEST_F(PcapTest, EmptyCaptureHasZeroRecords) {
  {
    auto writer = PcapWriter::open(path_);
    ASSERT_TRUE(writer.ok());
  }
  auto reader = PcapReader::open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().next().has_value());
  EXPECT_FALSE(reader.value().truncated());
}

}  // namespace
}  // namespace ruru
