#include "capture/traffic_model.hpp"

#include <gtest/gtest.h>

#include <map>

#include "net/packet_view.hpp"

namespace ruru {
namespace {

RouteProfile simple_route() {
  RouteProfile r;
  r.name = "test";
  r.clients = HostPool::from_range(Ipv4Address(10, 1, 0, 0), 16);
  r.servers = HostPool::from_range(Ipv4Address(10, 2, 0, 0), 16);
  r.internal_rtt = Duration::from_ms(5);
  r.external_rtt = Duration::from_ms(120);
  r.jitter_frac = 0.05;
  return r;
}

TrafficConfig small_config() {
  TrafficConfig cfg;
  cfg.seed = 42;
  cfg.flows_per_sec = 50;
  cfg.duration = Duration::from_sec(2.0);
  return cfg;
}

TEST(HostPool, FromRange) {
  const auto pool = HostPool::from_range(Ipv4Address(10, 0, 0, 250), 10);
  ASSERT_EQ(pool.addresses.size(), 10u);
  EXPECT_EQ(pool.addresses[0], Ipv4Address(10, 0, 0, 250));
  EXPECT_EQ(pool.addresses[6], Ipv4Address(10, 0, 1, 0));  // crosses /24 boundary
}

TEST(GlitchWindow, ActivePeriodically) {
  GlitchWindow g;
  g.first_start = Timestamp::from_sec(100);
  g.period = Duration::from_sec(1000.0);
  g.width = Duration::from_sec(10.0);
  g.extra_external = Duration::from_ms(4000);
  EXPECT_FALSE(g.active_at(Timestamp::from_sec(50)));
  EXPECT_TRUE(g.active_at(Timestamp::from_sec(100)));
  EXPECT_TRUE(g.active_at(Timestamp::from_sec(109)));
  EXPECT_FALSE(g.active_at(Timestamp::from_sec(110)));
  EXPECT_TRUE(g.active_at(Timestamp::from_sec(1105)));
  EXPECT_FALSE(g.active_at(Timestamp::from_sec(1111)));
}

TEST(TrafficModel, FramesAreTimeOrdered) {
  TrafficModel model(small_config(), {simple_route()});
  Timestamp prev{INT64_MIN};
  std::uint64_t frames = 0;
  while (auto f = model.next()) {
    EXPECT_GE(f->timestamp.ns, prev.ns);
    prev = f->timestamp;
    ++frames;
  }
  EXPECT_GT(frames, 100u);
  EXPECT_EQ(frames, model.frames_emitted());
  EXPECT_FALSE(model.truth().empty());
}

TEST(TrafficModel, DeterministicAcrossRuns) {
  TrafficModel a(small_config(), {simple_route()});
  TrafficModel b(small_config(), {simple_route()});
  while (true) {
    auto fa = a.next();
    auto fb = b.next();
    ASSERT_EQ(fa.has_value(), fb.has_value());
    if (!fa) break;
    EXPECT_EQ(fa->timestamp.ns, fb->timestamp.ns);
    EXPECT_EQ(fa->frame, fb->frame);
  }
  EXPECT_EQ(a.truth().size(), b.truth().size());
}

TEST(TrafficModel, HandshakeTimingMatchesGroundTruth) {
  auto cfg = small_config();
  cfg.mean_data_segments = 0;  // handshake + FIN only
  TrafficModel model(cfg, {simple_route()});

  // Observed per-flow timestamps keyed by (client, sport).
  struct Observed {
    Timestamp syn, synack, ack;
    bool has_syn = false, has_synack = false, has_ack = false;
  };
  std::map<std::pair<std::uint32_t, std::uint16_t>, Observed> seen;

  while (auto f = model.next()) {
    PacketView v;
    if (parse_packet(f->frame, v) != ParseStatus::kOk) continue;
    if (v.tcp.is_syn_only()) {
      auto& o = seen[{v.ip4.src.value(), v.tcp.src_port}];
      if (!o.has_syn) {
        o.syn = f->timestamp;
        o.has_syn = true;
      }
    } else if (v.tcp.is_syn_ack()) {
      auto& o = seen[{v.ip4.dst.value(), v.tcp.dst_port}];
      if (!o.has_synack) {
        o.synack = f->timestamp;
        o.has_synack = true;
      }
    } else if (v.tcp.ack_flag() && !v.tcp.fin() && v.payload_length == 0) {
      auto& o = seen[{v.ip4.src.value(), v.tcp.src_port}];
      if (o.has_synack && !o.has_ack) {
        o.ack = f->timestamp;
        o.has_ack = true;
      }
    }
  }

  int checked = 0;
  for (const auto& truth : model.truth()) {
    if (!truth.handshake_completes) continue;
    const auto it = seen.find({truth.tuple.src.v4.value(), truth.tuple.src_port});
    ASSERT_NE(it, seen.end());
    const Observed& o = it->second;
    ASSERT_TRUE(o.has_syn && o.has_synack && o.has_ack);
    EXPECT_EQ(o.syn.ns, truth.syn_time.ns);
    EXPECT_EQ((o.synack - o.syn).ns, truth.expected_measured_external().ns);
    EXPECT_EQ((o.ack - o.synack).ns, truth.true_internal.ns);
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST(TrafficModel, SynLossProducesRetransmission) {
  auto cfg = small_config();
  cfg.syn_loss_prob = 1.0;  // every flow retransmits
  cfg.syn_rto = Duration::from_ms(1000);
  cfg.mean_data_segments = 0;
  TrafficModel model(cfg, {simple_route()});
  std::uint64_t syns = 0;
  while (auto f = model.next()) {
    PacketView v;
    if (parse_packet(f->frame, v) == ParseStatus::kOk && v.tcp.is_syn_only()) ++syns;
  }
  const auto& truth = model.truth();
  ASSERT_FALSE(truth.empty());
  // Two SYNs per flow.
  EXPECT_EQ(syns, 2 * truth.size());
  for (const auto& t : truth) {
    EXPECT_TRUE(t.syn_retransmitted);
    EXPECT_EQ(t.expected_measured_external().ns, (t.true_external + t.syn_rto).ns);
  }
}

TEST(TrafficModel, AbandonedHandshakesHaveNoSynAck) {
  auto cfg = small_config();
  cfg.handshake_abandon_prob = 1.0;
  TrafficModel model(cfg, {simple_route()});
  std::uint64_t synacks = 0;
  std::uint64_t syns = 0;
  while (auto f = model.next()) {
    PacketView v;
    if (parse_packet(f->frame, v) != ParseStatus::kOk) continue;
    if (v.tcp.is_syn_ack()) ++synacks;
    if (v.tcp.is_syn_only()) ++syns;
  }
  EXPECT_EQ(synacks, 0u);
  EXPECT_GT(syns, 0u);
  for (const auto& t : model.truth()) EXPECT_FALSE(t.handshake_completes);
}

TEST(TrafficModel, GlitchInflatesExternalForWindowFlows) {
  auto cfg = small_config();
  cfg.flows_per_sec = 200;
  TrafficModel model(cfg, {simple_route()});
  GlitchWindow g;
  g.first_start = Timestamp::from_sec(1.0);
  g.period = Duration::from_sec(10.0);  // only one window inside 2s run
  g.width = Duration::from_sec(0.5);
  g.extra_external = Duration::from_ms(4000);
  model.add_glitch(g);
  while (model.next()) {
  }
  int in_window = 0, outside = 0;
  for (const auto& t : model.truth()) {
    if (g.active_at(t.syn_time)) {
      EXPECT_GT(t.true_external.ns, Duration::from_ms(4000).ns);
      ++in_window;
    } else {
      EXPECT_LT(t.true_external.ns, Duration::from_ms(1000).ns);
      ++outside;
    }
  }
  EXPECT_GT(in_window, 10);
  EXPECT_GT(outside, 100);
}

TEST(TrafficModel, SynFloodEmitsBareSyns) {
  auto cfg = small_config();
  cfg.flows_per_sec = 10;
  TrafficModel model(cfg, {simple_route()});
  SynFloodSpec flood;
  flood.start = Timestamp::from_sec(0.5);
  flood.duration = Duration::from_sec(1.0);
  flood.syns_per_sec = 500;
  flood.target = Ipv4Address(10, 2, 0, 1);
  flood.target_port = 80;
  model.add_syn_flood(flood);

  std::uint64_t flood_syns = 0;
  while (auto f = model.next()) {
    PacketView v;
    if (parse_packet(f->frame, v) != ParseStatus::kOk) continue;
    if (v.tcp.is_syn_only() && v.ip4.dst == flood.target && v.tcp.dst_port == 80 &&
        v.ip4.src.in_prefix(Ipv4Address(198, 51, 0, 0), 16)) {
      ++flood_syns;
    }
  }
  EXPECT_EQ(flood_syns, model.flood_syns_emitted());
  // ~500/s for 1 s.
  EXPECT_GT(flood_syns, 350u);
  EXPECT_LT(flood_syns, 700u);
}

TEST(TrafficModel, UdpBackgroundMixesIn) {
  auto cfg = small_config();
  cfg.udp_background_frac = 1.0;
  TrafficModel model(cfg, {simple_route()});
  std::uint64_t udp = 0;
  while (auto f = model.next()) {
    PacketView v;
    if (parse_packet(f->frame, v) == ParseStatus::kNotTcp) ++udp;
  }
  EXPECT_EQ(udp, model.truth().size());  // one UDP frame per flow at frac=1
}

TEST(TrafficModel, CorruptionDamagesFramesNotTruth) {
  auto cfg = small_config();
  cfg.corrupt_frac = 0.3;
  TrafficModel model(cfg, {simple_route()});
  TrafficModel clean_model(small_config(), {simple_route()});

  std::uint64_t malformed_or_odd = 0;
  std::uint64_t frames = 0;
  while (auto f = model.next()) {
    ++frames;
    PacketView v;
    if (parse_packet(f->frame, v) != ParseStatus::kOk) ++malformed_or_odd;
  }
  EXPECT_GT(model.frames_corrupted(), frames / 5);
  // Most corrupted frames fail parsing or classification (some bit flips
  // hit payload bytes and stay parseable — that's realistic too).
  EXPECT_GT(malformed_or_odd, model.frames_corrupted() / 4);
  // Ground truth identical to the clean run: corruption is tap-side.
  while (clean_model.next()) {
  }
  ASSERT_EQ(model.truth().size(), clean_model.truth().size());
  for (std::size_t i = 0; i < model.truth().size(); ++i) {
    EXPECT_EQ(model.truth()[i].true_external.ns, clean_model.truth()[i].true_external.ns);
  }
}

TEST(TrafficModel, DiurnalCurveModulatesArrivals) {
  auto cfg = small_config();
  cfg.seed = 99;
  cfg.flows_per_sec = 400;
  cfg.duration = Duration::from_sec(10.0);
  cfg.mean_data_segments = 0;
  TrafficModel model(cfg, {simple_route()});
  model.set_rate_curve(diurnal_curve(Duration::from_sec(10.0), 0.8));
  while (model.next()) {
  }
  // Peak quarter (t in [1.25, 3.75), sine max at 2.5) vs trough quarter
  // (t in [6.25, 8.75)).
  int peak = 0, trough = 0;
  for (const auto& t : model.truth()) {
    const double sec = t.syn_time.to_sec();
    if (sec >= 1.25 && sec < 3.75) ++peak;
    if (sec >= 6.25 && sec < 8.75) ++trough;
  }
  EXPECT_GT(peak, trough * 3);  // 1.8x vs 0.2x nominal rate
}

TEST(TrafficModel, InternalExternalSumIsTotal) {
  TrafficModel model(small_config(), {simple_route()});
  while (model.next()) {
  }
  for (const auto& t : model.truth()) {
    EXPECT_EQ(t.expected_measured_total().ns,
              (t.expected_measured_external() + t.true_internal).ns);
  }
}

}  // namespace
}  // namespace ruru
