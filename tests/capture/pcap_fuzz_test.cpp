// Fuzz-ish robustness: the pcap reader must reject or cleanly truncate
// arbitrary byte soup — never crash, never return frames longer than the
// file could contain.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "capture/pcap.hpp"
#include "util/byte_order.hpp"
#include "util/random.hpp"

namespace ruru {
namespace {

std::string temp_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("pcap_fuzz_") + tag + "_" + std::to_string(::getpid()) + ".pcap"))
      .string();
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

class PcapFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcapFuzzTest, RandomBytesNeverCrashReader) {
  const std::string path = temp_path("rand");
  Pcg32 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint8_t> soup(rng.bounded(4096));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.next_u32());
    write_bytes(path, soup);
    auto reader = PcapReader::open(path);
    if (!reader.ok()) continue;  // rejected: fine
    std::uint64_t frames = 0;
    std::uint64_t bytes_claimed = 0;
    while (auto rec = reader.value().next()) {
      ++frames;
      bytes_claimed += rec->frame.size();
      ASSERT_LE(rec->frame.size(), 65'535u);
      if (frames > 10'000) break;  // sanity: garbage can't yield unbounded frames
    }
    ASSERT_LE(bytes_claimed, soup.size() + 65'536u);
  }
  std::remove(path.c_str());
}

TEST_P(PcapFuzzTest, RandomBytesWithValidHeaderNeverOverread) {
  const std::string path = temp_path("hdr");
  Pcg32 rng(GetParam() ^ 0xABCDEF);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint8_t> file(24 + rng.bounded(2048));
    for (auto& b : file) b = static_cast<std::uint8_t>(rng.next_u32());
    // Valid global header, garbage records.
    store_le32(&file[0], 0xa1b23c4d);
    store_le16(&file[4], 2);
    store_le16(&file[6], 4);
    store_le32(&file[16], 65535);
    store_le32(&file[20], 1);
    write_bytes(path, file);

    auto reader = PcapReader::open(path);
    ASSERT_TRUE(reader.ok());
    std::size_t total = 0;
    while (auto rec = reader.value().next()) {
      total += 16 + rec->frame.size();
      ASSERT_LE(total, file.size()) << "reader returned more bytes than the file holds";
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcapFuzzTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace ruru
