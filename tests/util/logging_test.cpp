#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace ruru {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&out_);
    Logger::instance().set_level(LogLevel::kDebug);
    Logger::instance().set_timestamps(false);  // byte-exact assertions
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);  // back to stderr
    Logger::instance().set_level(LogLevel::kInfo);
    Logger::instance().set_timestamps(true);
  }
  std::ostringstream out_;
};

TEST_F(LoggingTest, FormatsLevelModuleMessage) {
  RURU_LOG(kInfo, "flow") << "evicted " << 3 << " entries";
  EXPECT_EQ(out_.str(), "[INFO] [flow] evicted 3 entries\n");
}

TEST_F(LoggingTest, TimestampedLinesCarryIso8601AndThreadId) {
  Logger::instance().set_timestamps(true);
  RURU_LOG(kWarn, "driver") << "mempool exhausted";
  const std::string s = out_.str();
  // "[YYYY-MM-DDTHH:MM:SS.mmmZ] [WARN] [tid N] [driver] mempool exhausted\n"
  ASSERT_GE(s.size(), 26u);
  EXPECT_EQ(s[0], '[');
  EXPECT_EQ(s[5], '-');
  EXPECT_EQ(s[8], '-');
  EXPECT_EQ(s[11], 'T');
  EXPECT_EQ(s[14], ':');
  EXPECT_EQ(s[17], ':');
  EXPECT_EQ(s[20], '.');
  EXPECT_EQ(s[24], 'Z');
  EXPECT_EQ(s[25], ']');
  EXPECT_NE(s.find(" [WARN] [tid "), std::string::npos);
  EXPECT_NE(s.find("] [driver] mempool exhausted\n"), std::string::npos);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsAnyCase) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST_F(LoggingTest, LevelFiltering) {
  Logger::instance().set_level(LogLevel::kWarn);
  RURU_LOG(kDebug, "x") << "hidden";
  RURU_LOG(kInfo, "x") << "hidden";
  RURU_LOG(kWarn, "x") << "shown";
  RURU_LOG(kError, "x") << "shown too";
  const std::string s = out_.str();
  EXPECT_EQ(s.find("hidden"), std::string::npos);
  EXPECT_NE(s.find("shown"), std::string::npos);
  EXPECT_NE(s.find("shown too"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  RURU_LOG(kError, "x") << "nope";
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(LoggingTest, DisabledLevelsDoNotEvaluateArguments) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  RURU_LOG(kDebug, "x") << expensive();
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits
  RURU_LOG(kError, "x") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, EveryNLogsFirstThenEveryNth) {
  for (int i = 0; i < 10; ++i) {
    RURU_LOG_EVERY_N(kWarn, "ring", 4) << "occurrence " << i;
  }
  std::istringstream in(out_.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  // Occurrences 0, 4 and 8 fire (1st, then every 4th).
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("occurrence 0"), std::string::npos);
  EXPECT_NE(lines[1].find("occurrence 4"), std::string::npos);
  EXPECT_NE(lines[2].find("occurrence 8"), std::string::npos);
}

TEST_F(LoggingTest, EveryNSitesAreIndependent) {
  for (int i = 0; i < 3; ++i) {
    RURU_LOG_EVERY_N(kWarn, "a", 100) << "site A";
    RURU_LOG_EVERY_N(kWarn, "b", 100) << "site B";
  }
  const std::string s = out_.str();
  // Each site logs its own first occurrence.
  EXPECT_NE(s.find("site A"), std::string::npos);
  EXPECT_NE(s.find("site B"), std::string::npos);
  std::istringstream in(s);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) ++count;
  EXPECT_EQ(count, 2);
}

TEST_F(LoggingTest, EveryNDoesNotCountWhenLevelDisabled) {
  auto site = [](int i) { RURU_LOG_EVERY_N(kDebug, "x", 3) << "occurrence " << i; };
  Logger::instance().set_level(LogLevel::kError);
  for (int i = 0; i < 5; ++i) site(i);
  EXPECT_TRUE(out_.str().empty());
  // Re-enabled: the site's counter never advanced while disabled, so
  // the very next call is occurrence 1 and fires.
  Logger::instance().set_level(LogLevel::kDebug);
  site(99);
  EXPECT_NE(out_.str().find("occurrence 99"), std::string::npos);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, ConcurrentWritersProduceWholeLines) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        RURU_LOG(kInfo, "thread") << "t" << t << " line " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every line intact: starts with [INFO] and ends cleanly.
  std::istringstream in(out_.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("[INFO] [thread] t", 0), 0u) << line;
    ++count;
  }
  EXPECT_EQ(count, 800);
}

}  // namespace
}  // namespace ruru
