#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace ruru {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&out_);
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);  // back to stderr
    Logger::instance().set_level(LogLevel::kInfo);
  }
  std::ostringstream out_;
};

TEST_F(LoggingTest, FormatsLevelModuleMessage) {
  RURU_LOG(kInfo, "flow") << "evicted " << 3 << " entries";
  EXPECT_EQ(out_.str(), "[INFO] [flow] evicted 3 entries\n");
}

TEST_F(LoggingTest, LevelFiltering) {
  Logger::instance().set_level(LogLevel::kWarn);
  RURU_LOG(kDebug, "x") << "hidden";
  RURU_LOG(kInfo, "x") << "hidden";
  RURU_LOG(kWarn, "x") << "shown";
  RURU_LOG(kError, "x") << "shown too";
  const std::string s = out_.str();
  EXPECT_EQ(s.find("hidden"), std::string::npos);
  EXPECT_NE(s.find("shown"), std::string::npos);
  EXPECT_NE(s.find("shown too"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  RURU_LOG(kError, "x") << "nope";
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(LoggingTest, DisabledLevelsDoNotEvaluateArguments) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  RURU_LOG(kDebug, "x") << expensive();
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits
  RURU_LOG(kError, "x") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, ConcurrentWritersProduceWholeLines) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        RURU_LOG(kInfo, "thread") << "t" << t << " line " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every line intact: starts with [INFO] and ends cleanly.
  std::istringstream in(out_.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("[INFO] [thread] t", 0), 0u) << line;
    ++count;
  }
  EXPECT_EQ(count, 800);
}

}  // namespace
}  // namespace ruru
