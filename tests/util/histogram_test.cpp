#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.hpp"

namespace ruru {
namespace {

TEST(Histogram, EmptyIsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1'000'000);  // 1 ms
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1'000'000);
  EXPECT_EQ(h.max(), 1'000'000);
  EXPECT_DOUBLE_EQ(h.mean(), 1'000'000.0);
  // Median equals the single value within bucket resolution.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 1e6, 1e6 * 0.04);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::int64_t v = 0; v < 32; ++v) h.record(v);
  // Values below 32 are identity-bucketed.
  for (std::int64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(Histogram::bucket_value(Histogram::bucket_index(v)), v);
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
}

TEST(Histogram, BucketRelativeErrorBounded) {
  Pcg32 rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(rng.next_u64() % (1ULL << 40)) + 32;
    const std::int64_t rep = Histogram::bucket_value(Histogram::bucket_index(v));
    const double err = std::abs(static_cast<double>(rep - v)) / static_cast<double>(v);
    EXPECT_LT(err, 0.033) << "value " << v << " rep " << rep;
  }
}

TEST(Histogram, BucketIndexIsMonotonic) {
  std::size_t prev = 0;
  for (std::int64_t v = 0; v < 1'000'000; v = v < 64 ? v + 1 : v + v / 7) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "at value " << v;
    prev = idx;
  }
}

TEST(Histogram, PercentilesOrderedAndWithinRange) {
  Histogram h;
  Pcg32 rng(7);
  for (int i = 0; i < 100'000; ++i) {
    h.record(static_cast<std::int64_t>(rng.exponential(50e6)));  // ~50ms mean
  }
  const auto p50 = h.percentile(0.5);
  const auto p95 = h.percentile(0.95);
  const auto p99 = h.percentile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Exponential(mean m): median = m*ln2.
  EXPECT_NEAR(static_cast<double>(p50), 50e6 * 0.6931, 50e6 * 0.08);
}

TEST(Histogram, PercentileMatchesSortedVectorOnUniformData) {
  Histogram h;
  std::vector<std::int64_t> raw;
  Pcg32 rng(99);
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.bounded(1'000'000'000));
    h.record(v);
    raw.push_back(v);
  }
  std::sort(raw.begin(), raw.end());
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const auto exact = raw[static_cast<std::size_t>(q * (raw.size() - 1))];
    const auto approx = h.percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                std::max(64.0, static_cast<double>(exact) * 0.04))
        << "q=" << q;
  }
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  Pcg32 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.bounded(1'000'000));
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q)) << "q=" << q;
  }
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a, b;
  b.record(123);
  b.record(456);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 123);
  EXPECT_EQ(a.max(), 456);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(1234);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(Histogram, RecordsDurations) {
  Histogram h;
  h.record(Duration::from_ms(4000));
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 4e9, 4e9 * 0.04);
}

// Property sweep: p0 == min and p100 == max for arbitrary data shapes.
class HistogramPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramPropertyTest, ExtremesMatchMinMax) {
  Histogram h;
  Pcg32 rng(GetParam());
  const int n = 1 + static_cast<int>(rng.bounded(5000));
  for (int i = 0; i < n; ++i) {
    h.record(static_cast<std::int64_t>(rng.next_u64() % (1ULL << rng.bounded(50))));
  }
  EXPECT_EQ(h.percentile(0.0), h.min());
  EXPECT_EQ(h.percentile(1.0), h.max());
  EXPECT_GE(h.mean(), static_cast<double>(h.min()));
  EXPECT_LE(h.mean(), static_cast<double>(h.max()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ruru
