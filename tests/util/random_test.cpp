#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ruru {
namespace {

TEST(Pcg32, DeterministicAcrossInstances) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBounds) {
  Pcg32 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(10);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Pcg32, ExponentialHasRequestedMean) {
  Pcg32 rng(11);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Pcg32, NormalMoments) {
  Pcg32 rng(12);
  double sum = 0, sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Pcg32, ParetoRespectsMinimum) {
  Pcg32 rng(13);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 3.0), 3.0);
  }
}

TEST(Pcg32, ChanceFrequency) {
  Pcg32 rng(14);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Pcg32, BoundedIsRoughlyUniform) {
  Pcg32 rng(15);
  int counts[8] = {};
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, n / 8.0 * 0.05);
  }
}

}  // namespace
}  // namespace ruru
