#include "util/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ruru {
namespace {

TEST(MpmcQueue, PushPop) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, TryPushFullFails) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(MpmcQueue, TryPopEmptyFails) {
  MpmcQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, CloseUnblocksAndDrains) {
  MpmcQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));          // closed: pushes fail
  EXPECT_EQ(q.pop().value(), 7);    // drains remaining
  EXPECT_FALSE(q.pop().has_value());  // then signals end
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] {
    const auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(MpmcQueue, BlockingPushWaitsForSpace) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until a pop frees space
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, ManyProducersManyConsumersConserveItems) {
  MpmcQueue<int> q(64);
  constexpr int kPerProducer = 10'000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;

  std::atomic<std::int64_t> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  // Join producers (first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[static_cast<std::size_t>(kProducers + c)].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  const std::int64_t expected =
      static_cast<std::int64_t>(total) * (total - 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace ruru
