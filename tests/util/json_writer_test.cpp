#include "util/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ruru {
namespace {

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, SimpleObject) {
  JsonWriter w;
  w.begin_object().key("a").value(std::int64_t{1}).key("b").value("x").end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x"})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter w;
  w.begin_object()
      .key("arr")
      .begin_array()
      .value(std::int64_t{1})
      .value(std::int64_t{2})
      .begin_object()
      .key("k")
      .value(true)
      .end_object()
      .end_array()
      .key("n")
      .null()
      .end_object();
  EXPECT_EQ(w.str(), R"({"arr":[1,2,{"k":true}],"n":null})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  JsonWriter w;
  w.begin_object().key("s").value("a\"b\\c\nd\te\r").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\r\"}");
}

TEST(JsonWriter, EscapesControlCharacters) {
  JsonWriter w;
  std::string s = "x";
  s.push_back('\x01');
  w.begin_array().value(s).end_array();
  EXPECT_EQ(w.str(), "[\"x\\u0001\"]");
}

TEST(JsonWriter, NumbersRoundTrip) {
  JsonWriter w;
  w.begin_array()
      .value(3.5)
      .value(std::int64_t{-42})
      .value(std::uint64_t{18446744073709551615ULL})
      .end_array();
  EXPECT_EQ(w.str(), "[3.5,-42,18446744073709551615]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::nan("")).value(1.0 / 0.0).end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, ResetReusesBuffer) {
  JsonWriter w;
  w.begin_object().key("a").value(std::int64_t{1}).end_object();
  w.reset();
  w.begin_array().end_array();
  EXPECT_EQ(w.str(), "[]");
}

TEST(JsonWriter, ArrayOfStrings) {
  JsonWriter w;
  w.begin_array().value("one").value("two").end_array();
  EXPECT_EQ(w.str(), R"(["one","two"])");
}

}  // namespace
}  // namespace ruru
