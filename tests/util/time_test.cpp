#include "util/time.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TEST(Time, ConstructorsAndConversions) {
  EXPECT_EQ(Timestamp::from_ms(1).ns, 1'000'000);
  EXPECT_EQ(Timestamp::from_us(1).ns, 1'000);
  EXPECT_EQ(Timestamp::from_sec(1.5).ns, 1'500'000'000);
  EXPECT_DOUBLE_EQ(Timestamp::from_ms(250).to_sec(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::from_ms(4000).to_sec(), 4.0);
}

TEST(Time, Arithmetic) {
  const Timestamp t0 = Timestamp::from_sec(1.0);
  const Timestamp t1 = Timestamp::from_sec(2.5);
  EXPECT_EQ((t1 - t0).ns, 1'500'000'000);
  EXPECT_EQ((t0 + Duration::from_ms(500)).ns, 1'500'000'000);
  EXPECT_EQ((t1 - Duration::from_sec(0.5)).ns, 2'000'000'000);
  EXPECT_EQ((Duration::from_ms(10) * 3).ns, 30'000'000);
  EXPECT_EQ((Duration::from_ms(10) / 2).ns, 5'000'000);
}

TEST(Time, Ordering) {
  EXPECT_LT(Timestamp::from_ms(1), Timestamp::from_ms(2));
  EXPECT_GT(Duration::from_ms(5), Duration::from_ms(4));
  EXPECT_EQ(Timestamp::from_us(1000), Timestamp::from_ms(1));
}

TEST(Time, Formatting) {
  EXPECT_EQ(to_string(Duration::from_ns(812)), "812 ns");
  EXPECT_EQ(to_string(Duration::from_us(15)), "15.0 us");
  EXPECT_EQ(to_string(Duration::from_ms(4000)), "4.000 s");
  EXPECT_EQ(to_string(Duration::from_ms(128)), "128.0 ms");
}

TEST(Time, SimClockAdvances) {
  SimClock clock(Timestamp::from_sec(10));
  EXPECT_EQ(clock.now(), Timestamp::from_sec(10.0));
  clock.advance(Duration::from_ms(1500));
  EXPECT_EQ(clock.now().ns, Timestamp::from_sec(11.5).ns);
  clock.set(Timestamp::from_sec(0));
  EXPECT_EQ(clock.now().ns, 0);
}

TEST(Time, SystemClockMonotonic) {
  SystemClock clock;
  const Timestamp a = clock.now();
  const Timestamp b = clock.now();
  EXPECT_LE(a.ns, b.ns);
}

}  // namespace
}  // namespace ruru
