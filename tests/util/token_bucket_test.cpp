#include "util/token_bucket.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(10.0, 5.0);
  const Timestamp t0 = Timestamp::from_sec(0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tb.allow(t0)) << i;
  EXPECT_FALSE(tb.allow(t0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(10.0, 5.0);  // 10 tokens/sec
  Timestamp t = Timestamp::from_sec(0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(tb.allow(t));
  EXPECT_FALSE(tb.allow(t));
  // 100 ms later exactly one token has accrued.
  t = t + Duration::from_ms(100);
  EXPECT_TRUE(tb.allow(t));
  EXPECT_FALSE(tb.allow(t));
}

TEST(TokenBucket, BurstCapped) {
  TokenBucket tb(1000.0, 3.0);
  Timestamp t = Timestamp::from_sec(0);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(tb.allow(t));
  ASSERT_FALSE(tb.allow(t));
  // A long idle period cannot accumulate more than burst.
  t = t + Duration::from_sec(100.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(tb.allow(t)) << i;
  EXPECT_FALSE(tb.allow(t));
}

TEST(TokenBucket, MultiTokenRequests) {
  TokenBucket tb(10.0, 10.0);
  Timestamp t = Timestamp::from_sec(0);
  EXPECT_TRUE(tb.allow(t, 10.0));
  EXPECT_FALSE(tb.allow(t, 0.5));
  t = t + Duration::from_ms(50);  // +0.5 tokens
  EXPECT_TRUE(tb.allow(t, 0.5));
}

TEST(TokenBucket, TimeGoingBackwardsIsIgnored) {
  TokenBucket tb(10.0, 1.0);
  Timestamp t = Timestamp::from_sec(10);
  EXPECT_TRUE(tb.allow(t));
  // Clock regression must not mint tokens.
  EXPECT_FALSE(tb.allow(Timestamp::from_sec(5)));
  EXPECT_FALSE(tb.allow(Timestamp::from_sec(9.99)));
}

TEST(TokenBucket, ThirtyFpsShaping) {
  // The viz feed's exact use: 30 fps cap over a 1-second burst of ticks.
  TokenBucket tb(30.0, 1.0);
  int admitted = 0;
  for (int ms = 0; ms < 1000; ++ms) {
    if (tb.allow(Timestamp::from_ms(ms))) ++admitted;
  }
  EXPECT_GE(admitted, 29);
  EXPECT_LE(admitted, 31);
}

}  // namespace
}  // namespace ruru
