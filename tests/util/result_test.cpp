#include "util/result.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ruru {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return make_error("not positive");
  return v;
}

TEST(Result, OkPath) {
  const auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(r.value_or(-1), 5);
}

TEST(Result, ErrorPath) {
  const auto r = parse_positive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "not positive");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(Result, MutableValueAccess) {
  Result<std::string> r = std::string("abc");
  r.value() += "def";
  EXPECT_EQ(r.value(), "abcdef");
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(Status, CarriesError) {
  const Status s = make_error("disk full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "disk full");
}

Status do_io(bool fail) {
  if (fail) return make_error("io failed");
  return {};
}

TEST(Status, FunctionReturnStyle) {
  EXPECT_TRUE(do_io(false).ok());
  EXPECT_FALSE(do_io(true).ok());
}

}  // namespace
}  // namespace ruru
