#include "util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace ruru {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r(100);
  EXPECT_EQ(r.capacity(), 128u);
  SpscRing<int> r2(128);
  EXPECT_EQ(r2.capacity(), 128u);
  SpscRing<int> r3(1);
  EXPECT_EQ(r3.capacity(), 1u);
}

TEST(SpscRing, PushPopSingle) {
  SpscRing<int> r(4);
  EXPECT_TRUE(r.try_push(42));
  EXPECT_EQ(r.size(), 1u);
  const auto v = r.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(r.size(), 0u);
}

TEST(SpscRing, PopFromEmptyFails) {
  SpscRing<int> r(4);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, PushToFullFails) {
  SpscRing<int> r(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));
  EXPECT_EQ(r.size(), 4u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> r(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(r.try_push(i));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.try_pop().value(), i);
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> r(4);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(r.try_push(round));
    ASSERT_TRUE(r.try_push(round + 1000));
    EXPECT_EQ(r.try_pop().value(), round);
    EXPECT_EQ(r.try_pop().value(), round + 1000);
  }
}

TEST(SpscRing, BurstPop) {
  SpscRing<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  int out[32];
  const std::size_t n = r.pop_burst(out, 32);
  EXPECT_EQ(n, 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(r.pop_burst(out, 32), 0u);
}

TEST(SpscRing, BurstPopRespectsMax) {
  SpscRing<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  int out[4];
  EXPECT_EQ(r.pop_burst(out, 4), 4u);
  EXPECT_EQ(r.size(), 6u);
}

TEST(SpscRing, BurstPushAllFit) {
  SpscRing<int> r(16);
  int in[10];
  std::iota(in, in + 10, 0);
  EXPECT_EQ(r.push_burst(in, 10), 10u);
  EXPECT_EQ(r.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.try_pop().value(), i);
}

TEST(SpscRing, BurstPushPartialOnNearlyFullRing) {
  SpscRing<int> r(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(r.try_push(i));
  int in[6] = {100, 101, 102, 103, 104, 105};
  // Only 3 slots free: the leading 3 items go in, the tail is left.
  EXPECT_EQ(r.push_burst(in, 6), 3u);
  EXPECT_EQ(r.size(), 8u);
  EXPECT_EQ(r.push_burst(in + 3, 3), 0u);  // full: nothing moves
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r.try_pop().value(), i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(r.try_pop().value(), 100 + i);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, BurstPushWrapsAround) {
  SpscRing<int> r(8);
  // Advance head/tail so a burst straddles the physical end of the ring.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(r.try_push(i));
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(r.try_pop().has_value());
  int in[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(r.push_burst(in, 8), 8u);  // slots 6,7 then wrap to 0..5
  int out[8];
  EXPECT_EQ(r.pop_burst(out, 8), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRing, BurstPushMovesUniquePtrs) {
  SpscRing<std::unique_ptr<int>> r(4);
  std::unique_ptr<int> in[6];
  for (int i = 0; i < 6; ++i) in[i] = std::make_unique<int>(i);
  EXPECT_EQ(r.push_burst(in, 6), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(in[i], nullptr);  // moved out
  // The unpushed tail is intact for the caller to retry or drop.
  ASSERT_NE(in[4], nullptr);
  ASSERT_NE(in[5], nullptr);
  EXPECT_EQ(*in[4], 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(**r.try_pop(), i);
}

TEST(SpscRing, ConcurrentBurstProducerBurstConsumer) {
  SpscRing<std::uint64_t> r(256);
  constexpr std::uint64_t kItems = 100'000;

  std::thread producer([&] {
    std::uint64_t buf[32];
    std::uint64_t next = 0;
    while (next < kItems) {
      std::size_t n = 0;
      while (n < 32 && next + n < kItems) {
        buf[n] = next + n;
        ++n;
      }
      std::size_t pushed = 0;
      while (pushed < n) pushed += r.push_burst(buf + pushed, n - pushed);
      next += n;
    }
  });

  std::uint64_t received = 0;
  std::uint64_t expect = 0;
  std::uint64_t out[64];
  while (received < kItems) {
    const std::size_t n = r.pop_burst(out, 64);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], expect++);
    received += n;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, MovesUniquePtrs) {
  SpscRing<std::unique_ptr<int>> r(4);
  ASSERT_TRUE(r.try_push(std::make_unique<int>(7)));
  auto p = r.try_pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(**p, 7);
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesAllItems) {
  SpscRing<std::uint64_t> r(1024);
  constexpr std::uint64_t kItems = 200'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (r.try_push(i)) ++i;
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kItems) {
    if (auto v = r.try_pop()) {
      EXPECT_EQ(*v, expected);  // order preserved
      sum += *v;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, ConcurrentBurstConsumer) {
  SpscRing<std::uint64_t> r(256);
  constexpr std::uint64_t kItems = 100'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (r.try_push(i)) ++i;
    }
  });

  std::uint64_t received = 0;
  std::uint64_t next = 0;
  std::uint64_t buf[64];
  while (received < kItems) {
    const std::size_t n = r.pop_burst(buf, 64);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(buf[i], next++);
    }
    received += n;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
}

}  // namespace
}  // namespace ruru
