#include "util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace ruru {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r(100);
  EXPECT_EQ(r.capacity(), 128u);
  SpscRing<int> r2(128);
  EXPECT_EQ(r2.capacity(), 128u);
  SpscRing<int> r3(1);
  EXPECT_EQ(r3.capacity(), 1u);
}

TEST(SpscRing, PushPopSingle) {
  SpscRing<int> r(4);
  EXPECT_TRUE(r.try_push(42));
  EXPECT_EQ(r.size(), 1u);
  const auto v = r.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(r.size(), 0u);
}

TEST(SpscRing, PopFromEmptyFails) {
  SpscRing<int> r(4);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, PushToFullFails) {
  SpscRing<int> r(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));
  EXPECT_EQ(r.size(), 4u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> r(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(r.try_push(i));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.try_pop().value(), i);
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> r(4);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(r.try_push(round));
    ASSERT_TRUE(r.try_push(round + 1000));
    EXPECT_EQ(r.try_pop().value(), round);
    EXPECT_EQ(r.try_pop().value(), round + 1000);
  }
}

TEST(SpscRing, BurstPop) {
  SpscRing<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  int out[32];
  const std::size_t n = r.pop_burst(out, 32);
  EXPECT_EQ(n, 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(r.pop_burst(out, 32), 0u);
}

TEST(SpscRing, BurstPopRespectsMax) {
  SpscRing<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  int out[4];
  EXPECT_EQ(r.pop_burst(out, 4), 4u);
  EXPECT_EQ(r.size(), 6u);
}

TEST(SpscRing, MovesUniquePtrs) {
  SpscRing<std::unique_ptr<int>> r(4);
  ASSERT_TRUE(r.try_push(std::make_unique<int>(7)));
  auto p = r.try_pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(**p, 7);
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesAllItems) {
  SpscRing<std::uint64_t> r(1024);
  constexpr std::uint64_t kItems = 200'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (r.try_push(i)) ++i;
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kItems) {
    if (auto v = r.try_pop()) {
      EXPECT_EQ(*v, expected);  // order preserved
      sum += *v;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, ConcurrentBurstConsumer) {
  SpscRing<std::uint64_t> r(256);
  constexpr std::uint64_t kItems = 100'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (r.try_push(i)) ++i;
    }
  });

  std::uint64_t received = 0;
  std::uint64_t next = 0;
  std::uint64_t buf[64];
  while (received < kItems) {
    const std::size_t n = r.pop_burst(buf, 64);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(buf[i], next++);
    }
    received += n;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
}

}  // namespace
}  // namespace ruru
