#include "geo/as_db.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

namespace ruru {
namespace {

AsRecord rec(std::uint32_t start, std::uint32_t end, std::uint32_t asn, std::string org) {
  AsRecord r;
  r.range_start = start;
  r.range_end = end;
  r.asn = asn;
  r.organization = std::move(org);
  return r;
}

TEST(AsDb, LookupByRange) {
  auto db = AsDatabase::build({
      rec(100, 199, 9431, "REANNZ"),
      rec(200, 299, 15169, "Google"),
  });
  ASSERT_TRUE(db.ok());
  const auto r = db.value().lookup_record(Ipv4Address(150));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->asn, 9431u);
  EXPECT_EQ(r->organization, "REANNZ");
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(250))->asn, 15169u);
  EXPECT_FALSE(db.value().lookup_record(Ipv4Address(350)).has_value());
}

TEST(AsDb, RowAccessorsMatchRecords) {
  auto db = AsDatabase::build({rec(100, 199, 9431, "REANNZ")});
  ASSERT_TRUE(db.ok());
  const std::size_t i = db.value().find(Ipv4Address(123));
  ASSERT_NE(i, AsDatabase::npos);
  EXPECT_EQ(db.value().asn(i), 9431u);
  EXPECT_EQ(geo_names().view(db.value().org_id(i)), "REANNZ");
  EXPECT_EQ(db.value().find(Ipv4Address(99)), AsDatabase::npos);
}

TEST(AsDb, RejectsOverlapsAndInversions) {
  EXPECT_FALSE(AsDatabase::build({rec(100, 200, 1, "a"), rec(150, 300, 2, "b")}).ok());
  EXPECT_FALSE(AsDatabase::build({rec(5, 1, 1, "x")}).ok());
}

TEST(AsDb, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("as_test_" + std::to_string(::getpid()) + ".db"))
          .string();
  auto db = AsDatabase::build({
      rec(0x0A010000, 0x0A0104FF, 9431, "REANNZ Research Network"),
      rec(0x0A020000, 0x0A0200FF, 15169, "Google LLC"),
  });
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value().save(path).ok());
  auto loaded = AsDatabase::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().size(), 2u);
  const auto r = loaded.value().lookup_record(Ipv4Address(0x0A010203));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->asn, 9431u);
  EXPECT_EQ(r->organization, "REANNZ Research Network");
  std::remove(path.c_str());
}

TEST(AsDb, LoadRejectsTruncatedFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("as_bad_" + std::to_string(::getpid()) + ".db"))
          .string();
  auto db = AsDatabase::build({rec(1, 2, 3, "x")});
  ASSERT_TRUE(db.value().save(path).ok());
  // Truncate mid-record.
  std::filesystem::resize_file(path, 12);
  EXPECT_FALSE(AsDatabase::load(path).ok());
  std::remove(path.c_str());
}

TEST(AsDb, EmptyDbRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("as_empty_" + std::to_string(::getpid()) + ".db"))
          .string();
  auto db = AsDatabase::build({});
  ASSERT_TRUE(db.value().save(path).ok());
  auto loaded = AsDatabase::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ruru
