// Loader robustness for the three range-DB file formats: untrusted
// files must fail cleanly — garbage, truncation at every byte, a
// record count larger than the file could possibly hold (the bound
// that keeps a 12-byte file from reserving 4 G records), and records
// that decode but violate the non-overlap invariant.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "geo/as_db.hpp"
#include "geo/db_io.hpp"
#include "geo/geo6_db.hpp"
#include "geo/geo_db.hpp"

namespace ruru {
namespace {

std::string temp_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string(tag) + "_" + std::to_string(::getpid()) + ".db"))
      .string();
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!data.empty()) ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  return data;
}

void patch_u32(std::vector<std::uint8_t>& data, std::size_t off, std::uint32_t v) {
  data[off] = static_cast<std::uint8_t>(v);
  data[off + 1] = static_cast<std::uint8_t>(v >> 8);
  data[off + 2] = static_cast<std::uint8_t>(v >> 16);
  data[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

// ---- reference databases -------------------------------------------------

std::vector<std::uint8_t> golden_geo_bytes(const std::string& path) {
  GeoRecord a;
  a.range_start = 100;
  a.range_end = 199;
  a.country = "NZ";
  a.city = "Auckland";
  a.latitude = -36.8;
  a.longitude = 174.7;
  GeoRecord b;
  b.range_start = 0xC0000000;
  b.range_end = 0xC00000FF;
  b.country = "US";
  b.city = "Los Angeles";
  auto db = GeoDatabase::build({a, b});
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE(db.value().save(path).ok());
  return read_bytes(path);
}

std::vector<std::uint8_t> golden_as_bytes(const std::string& path) {
  AsRecord a;
  a.range_start = 100;
  a.range_end = 199;
  a.asn = 9431;
  a.organization = "REANNZ";
  AsRecord b;
  b.range_start = 200;
  b.range_end = 299;
  b.asn = 15169;
  b.organization = "Google LLC";
  auto db = AsDatabase::build({a, b});
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE(db.value().save(path).ok());
  return read_bytes(path);
}

std::vector<std::uint8_t> golden_geo6_bytes(const std::string& path) {
  auto v6 = [](const char* t) { return Ipv6Address::parse(t).value(); };
  Geo6Record a;
  a.range_start = v6("2001:db8::");
  a.range_end = v6("2001:db8::ffff");
  a.country = "NZ";
  a.city = "Auckland";
  a.asn = 9431;
  a.as_org = "REANNZ";
  Geo6Record b;
  b.range_start = v6("2001:db8:1::");
  b.range_end = v6("2001:db8:1::ffff");
  b.country = "US";
  b.city = "LA";
  auto db = Geo6Database::build({a, b});
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE(db.value().save(path).ok());
  return read_bytes(path);
}

// ---- golden round-trips --------------------------------------------------

TEST(DbLoaderRobustness, GeoGoldenRoundTripIsByteStable) {
  const std::string p1 = temp_path("geo_gold1");
  const std::string p2 = temp_path("geo_gold2");
  const auto bytes = golden_geo_bytes(p1);
  auto loaded = GeoDatabase::load(p1);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_TRUE(loaded.value().save(p2).ok());
  EXPECT_EQ(read_bytes(p2), bytes);  // load -> save reproduces the file
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(DbLoaderRobustness, AsGoldenRoundTripIsByteStable) {
  const std::string p1 = temp_path("as_gold1");
  const std::string p2 = temp_path("as_gold2");
  const auto bytes = golden_as_bytes(p1);
  auto loaded = AsDatabase::load(p1);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_TRUE(loaded.value().save(p2).ok());
  EXPECT_EQ(read_bytes(p2), bytes);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(DbLoaderRobustness, Geo6GoldenRoundTripIsByteStable) {
  const std::string p1 = temp_path("geo6_gold1");
  const std::string p2 = temp_path("geo6_gold2");
  const auto bytes = golden_geo6_bytes(p1);
  auto loaded = Geo6Database::load(p1);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_TRUE(loaded.value().save(p2).ok());
  EXPECT_EQ(read_bytes(p2), bytes);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

// ---- truncation at every byte --------------------------------------------

template <typename LoadFn>
void expect_all_truncations_fail(const std::vector<std::uint8_t>& full, const std::string& path,
                                 LoadFn load) {
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_bytes(path, std::vector<std::uint8_t>(full.begin(), full.begin() + len));
    EXPECT_FALSE(load(path).ok()) << "truncated to " << len << " bytes parsed as valid";
  }
  std::remove(path.c_str());
}

TEST(DbLoaderRobustness, GeoTruncatedAtEveryByteFails) {
  const std::string p = temp_path("geo_trunc");
  expect_all_truncations_fail(golden_geo_bytes(p), p, GeoDatabase::load);
}

TEST(DbLoaderRobustness, AsTruncatedAtEveryByteFails) {
  const std::string p = temp_path("as_trunc");
  expect_all_truncations_fail(golden_as_bytes(p), p, AsDatabase::load);
}

TEST(DbLoaderRobustness, Geo6TruncatedAtEveryByteFails) {
  const std::string p = temp_path("geo6_trunc");
  expect_all_truncations_fail(golden_geo6_bytes(p), p, Geo6Database::load);
}

// ---- oversized record counts ---------------------------------------------

TEST(DbLoaderRobustness, GeoOversizedCountRejected) {
  const std::string p = temp_path("geo_count");
  auto bytes = golden_geo_bytes(p);
  patch_u32(bytes, 8, 0xFFFFFFFFu);  // count after magic + version
  write_bytes(p, bytes);
  auto r = GeoDatabase::load(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("count exceeds file size"), std::string::npos) << r.error();
  std::remove(p.c_str());
}

TEST(DbLoaderRobustness, AsOversizedCountRejected) {
  const std::string p = temp_path("as_count");
  auto bytes = golden_as_bytes(p);
  patch_u32(bytes, 4, 0xFFFFFFFFu);  // count after magic
  write_bytes(p, bytes);
  auto r = AsDatabase::load(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("count exceeds file size"), std::string::npos) << r.error();
  std::remove(p.c_str());
}

TEST(DbLoaderRobustness, Geo6OversizedCountRejected) {
  const std::string p = temp_path("geo6_count");
  auto bytes = golden_geo6_bytes(p);
  patch_u32(bytes, 8, 0xFFFFFFFFu);  // count after magic + version
  write_bytes(p, bytes);
  auto r = Geo6Database::load(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("count exceeds file size"), std::string::npos) << r.error();
  std::remove(p.c_str());
}

TEST(DbLoaderRobustness, CountLargerThanRecordsPresentRejected) {
  // A count that passes the min-record-size bound but exceeds the
  // records actually present must still fail (cursor exhaustion), not
  // fabricate records.
  const std::string p = temp_path("geo_count2");
  auto bytes = golden_geo_bytes(p);
  patch_u32(bytes, 8, 3);  // file holds 2 records
  write_bytes(p, bytes);
  EXPECT_FALSE(GeoDatabase::load(p).ok());
  std::remove(p.c_str());
}

// ---- records that decode but violate invariants --------------------------

TEST(DbLoaderRobustness, GeoOverlappingRangesInFileRejected) {
  // Hand-build a well-formed v1 file whose two ranges overlap.
  std::vector<std::uint8_t> out;
  geo_io::put_u32(out, 0x4F454747);  // "GGEO"
  geo_io::put_u32(out, 1);           // version
  geo_io::put_u32(out, 2);           // count
  auto put_rec = [&out](std::uint32_t start, std::uint32_t end) {
    geo_io::put_u32(out, start);
    geo_io::put_u32(out, end);
    geo_io::put_str(out, "XX");
    geo_io::put_str(out, "city");
    geo_io::put_f64(out, 0.0);
    geo_io::put_f64(out, 0.0);
  };
  put_rec(100, 200);
  put_rec(150, 250);  // overlaps
  const std::string p = temp_path("geo_overlap");
  write_bytes(p, out);
  auto r = GeoDatabase::load(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("overlapping"), std::string::npos) << r.error();
  std::remove(p.c_str());
}

}  // namespace
}  // namespace ruru
