#include "geo/flat_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace ruru {
namespace {

// Key whose set index is fully controlled by the test: hash() returns
// the low bits verbatim, so keys with equal `set` collide by design.
struct TestKey {
  std::uint64_t set = 0;
  std::uint64_t salt = 0;
  friend bool operator==(const TestKey&, const TestKey&) = default;
  [[nodiscard]] std::uint64_t hash() const { return set; }
};

using Cache = FlatCache<TestKey, int, 4>;

TEST(FlatCache, MissThenHit) {
  Cache c(64);
  const TestKey k{1, 7};
  EXPECT_EQ(c.find(k), nullptr);
  *c.insert(k) = 42;
  const int* v = c.find(k);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(c.size(), 1u);
}

TEST(FlatCache, CapacityRoundsUpToPowerOfTwoSets) {
  Cache c(100);
  EXPECT_GE(c.capacity(), 100u);
  EXPECT_EQ(c.set_count() & (c.set_count() - 1), 0u);  // power of two
  EXPECT_EQ(c.ways(), 4u);
}

TEST(FlatCache, InsertSameKeyUpdatesInPlace) {
  Cache c(64);
  const TestKey k{3, 1};
  *c.insert(k) = 1;
  *c.insert(k) = 2;
  EXPECT_EQ(*c.find(k), 2);
  EXPECT_EQ(c.size(), 1u);
}

TEST(FlatCache, ExactKeyMatchNoFalseHits) {
  // Two keys in the same set (same hash) but different identity must
  // not alias.
  Cache c(64);
  const TestKey a{5, 1};
  const TestKey b{5, 2};
  *c.insert(a) = 10;
  EXPECT_EQ(c.find(b), nullptr);
  *c.insert(b) = 20;
  EXPECT_EQ(*c.find(a), 10);
  EXPECT_EQ(*c.find(b), 20);
}

TEST(FlatCache, EvictsLeastRecentlyUsedWayInFullSet) {
  Cache c(64);
  const std::uint64_t set = 2;
  // Fill all four ways of one set.
  for (std::uint64_t i = 0; i < 4; ++i) *c.insert(TestKey{set, i}) = static_cast<int>(i);
  // Touch ways 1..3 so way 0 (salt 0) becomes LRU.
  for (std::uint64_t i = 1; i < 4; ++i) EXPECT_NE(c.find(TestKey{set, i}), nullptr);
  // A fifth key in the same set evicts the LRU way only.
  *c.insert(TestKey{set, 99}) = 99;
  EXPECT_EQ(c.find(TestKey{set, 0}), nullptr);  // evicted
  for (std::uint64_t i = 1; i < 4; ++i) {
    ASSERT_NE(c.find(TestKey{set, i}), nullptr) << i;
    EXPECT_EQ(*c.find(TestKey{set, i}), static_cast<int>(i));
  }
  EXPECT_EQ(*c.find(TestKey{set, 99}), 99);
}

TEST(FlatCache, FindRefreshesRecency) {
  Cache c(64);
  const std::uint64_t set = 6;
  for (std::uint64_t i = 0; i < 4; ++i) *c.insert(TestKey{set, i}) = static_cast<int>(i);
  // Refresh way 0; way 1 is now LRU.
  EXPECT_NE(c.find(TestKey{set, 0}), nullptr);
  for (std::uint64_t i = 2; i < 4; ++i) EXPECT_NE(c.find(TestKey{set, i}), nullptr);
  *c.insert(TestKey{set, 99}) = 99;
  EXPECT_NE(c.find(TestKey{set, 0}), nullptr);  // survived
  EXPECT_EQ(c.find(TestKey{set, 1}), nullptr);  // evicted
}

TEST(FlatCache, DistinctSetsDoNotInterfere) {
  Cache c(64);
  for (std::uint64_t s = 0; s < c.set_count(); ++s) *c.insert(TestKey{s, 0}) = static_cast<int>(s);
  for (std::uint64_t s = 0; s < c.set_count(); ++s) {
    ASSERT_NE(c.find(TestKey{s, 0}), nullptr) << s;
    EXPECT_EQ(*c.find(TestKey{s, 0}), static_cast<int>(s));
  }
  EXPECT_EQ(c.size(), c.set_count());
}

}  // namespace
}  // namespace ruru
