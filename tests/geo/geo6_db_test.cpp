#include "geo/geo6_db.hpp"

#include <gtest/gtest.h>

#include "geo/world.hpp"

namespace ruru {
namespace {

Ipv6Address v6(const char* text) { return Ipv6Address::parse(text).value(); }

Geo6Record rec(const char* start, const char* end, std::string city) {
  Geo6Record r;
  r.range_start = v6(start);
  r.range_end = v6(end);
  r.city = std::move(city);
  r.country = "XX";
  return r;
}

TEST(Geo6Db, LookupInsideRanges) {
  auto db = Geo6Database::build({
      rec("2001:db8::", "2001:db8::ffff", "Auckland"),
      rec("2001:db8:1::", "2001:db8:1::ffff", "Los Angeles"),
  });
  ASSERT_TRUE(db.ok()) << db.error();
  const Geo6Record* r = db.value().lookup(v6("2001:db8::42"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->city, "Auckland");
  EXPECT_EQ(db.value().lookup(v6("2001:db8:1::1"))->city, "Los Angeles");
  EXPECT_EQ(db.value().lookup(v6("2001:db8:2::1")), nullptr);
  EXPECT_EQ(db.value().lookup(v6("::1")), nullptr);
}

TEST(Geo6Db, RangeEndpointsInclusive) {
  auto db = Geo6Database::build({rec("2001:db8::10", "2001:db8::20", "X")});
  ASSERT_TRUE(db.ok());
  EXPECT_NE(db.value().lookup(v6("2001:db8::10")), nullptr);
  EXPECT_NE(db.value().lookup(v6("2001:db8::20")), nullptr);
  EXPECT_EQ(db.value().lookup(v6("2001:db8::f")), nullptr);
  EXPECT_EQ(db.value().lookup(v6("2001:db8::21")), nullptr);
}

TEST(Geo6Db, RejectsOverlapsAndInversions) {
  EXPECT_FALSE(Geo6Database::build({
                                       rec("2001:db8::", "2001:db8::ff", "A"),
                                       rec("2001:db8::80", "2001:db8::1ff", "B"),
                                   })
                   .ok());
  EXPECT_FALSE(Geo6Database::build({rec("2001:db8::ff", "2001:db8::1", "bad")}).ok());
}

TEST(Geo6Db, DeriveFromSitePlanMatchesTrafficMapping) {
  std::vector<SiteSpec> sites;
  SiteSpec akl;
  akl.city = "Auckland";
  akl.country = "NZ";
  akl.latitude = -36.8;
  akl.longitude = 174.7;
  akl.asn = 9431;
  akl.block_start = Ipv4Address(10, 1, 0, 0).value();
  akl.block_size = 256;
  sites.push_back(akl);

  auto db = derive_geo6(sites);
  ASSERT_TRUE(db.ok()) << db.error();
  // The traffic model maps 10.1.0.5 -> 2001:db8:6464::10.1.0.5 == ...:a01:5.
  const Geo6Record* r = db.value().lookup(v6("2001:db8:6464::a01:5"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->city, "Auckland");
  EXPECT_EQ(r->asn, 9431u);
  // One past the block is a miss.
  EXPECT_EQ(db.value().lookup(v6("2001:db8:6464::a01:100")), nullptr);
}

}  // namespace
}  // namespace ruru
