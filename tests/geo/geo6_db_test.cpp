#include "geo/geo6_db.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "geo/world.hpp"

namespace ruru {
namespace {

Ipv6Address v6(const char* text) { return Ipv6Address::parse(text).value(); }

Geo6Record rec(const char* start, const char* end, std::string city) {
  Geo6Record r;
  r.range_start = v6(start);
  r.range_end = v6(end);
  r.city = std::move(city);
  r.country = "XX";
  return r;
}

TEST(Geo6Db, LookupInsideRanges) {
  auto db = Geo6Database::build({
      rec("2001:db8::", "2001:db8::ffff", "Auckland"),
      rec("2001:db8:1::", "2001:db8:1::ffff", "Los Angeles"),
  });
  ASSERT_TRUE(db.ok()) << db.error();
  const auto r = db.value().lookup_record(v6("2001:db8::42"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->city, "Auckland");
  EXPECT_EQ(db.value().lookup_record(v6("2001:db8:1::1"))->city, "Los Angeles");
  EXPECT_FALSE(db.value().lookup_record(v6("2001:db8:2::1")).has_value());
  EXPECT_FALSE(db.value().lookup_record(v6("::1")).has_value());
}

TEST(Geo6Db, RangeEndpointsInclusive) {
  auto db = Geo6Database::build({rec("2001:db8::10", "2001:db8::20", "X")});
  ASSERT_TRUE(db.ok());
  EXPECT_NE(db.value().find(v6("2001:db8::10")), Geo6Database::npos);
  EXPECT_NE(db.value().find(v6("2001:db8::20")), Geo6Database::npos);
  EXPECT_EQ(db.value().find(v6("2001:db8::f")), Geo6Database::npos);
  EXPECT_EQ(db.value().find(v6("2001:db8::21")), Geo6Database::npos);
}

TEST(Geo6Db, RejectsOverlapsAndInversions) {
  EXPECT_FALSE(Geo6Database::build({
                                       rec("2001:db8::", "2001:db8::ff", "A"),
                                       rec("2001:db8::80", "2001:db8::1ff", "B"),
                                   })
                   .ok());
  EXPECT_FALSE(Geo6Database::build({rec("2001:db8::ff", "2001:db8::1", "bad")}).ok());
}

TEST(Geo6Db, SaveLoadRoundTrip) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            ("geo6_test_" + std::to_string(::getpid()) + ".db"))
                               .string();
  auto rec_full = rec("2001:db8::", "2001:db8::ffff", "Auckland");
  rec_full.latitude = -36.8485;
  rec_full.longitude = 174.7633;
  rec_full.asn = 9431;
  rec_full.as_org = "REANNZ";
  auto db = Geo6Database::build({rec_full, rec("2001:db8:1::", "2001:db8:1::ffff", "LA")});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value().save(path).ok());

  auto loaded = Geo6Database::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 2u);
  const auto r = loaded.value().lookup_record(v6("2001:db8::42"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->city, "Auckland");
  EXPECT_EQ(r->country, "XX");
  EXPECT_DOUBLE_EQ(r->latitude, -36.8485);
  EXPECT_EQ(r->asn, 9431u);
  EXPECT_EQ(r->as_org, "REANNZ");
  std::remove(path.c_str());
}

TEST(Geo6Db, LoadRejectsGarbage) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            ("geo6_bad_" + std::to_string(::getpid()) + ".db"))
                               .string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("garbage!", 1, 8, f);
  std::fclose(f);
  EXPECT_FALSE(Geo6Database::load(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(Geo6Database::load("/no/such/geo6.db").ok());
}

TEST(Geo6Db, DeriveFromSitePlanMatchesTrafficMapping) {
  std::vector<SiteSpec> sites;
  SiteSpec akl;
  akl.city = "Auckland";
  akl.country = "NZ";
  akl.latitude = -36.8;
  akl.longitude = 174.7;
  akl.asn = 9431;
  akl.block_start = Ipv4Address(10, 1, 0, 0).value();
  akl.block_size = 256;
  sites.push_back(akl);

  auto db = derive_geo6(sites);
  ASSERT_TRUE(db.ok()) << db.error();
  // The traffic model maps 10.1.0.5 -> 2001:db8:6464::10.1.0.5 == ...:a01:5.
  const auto r = db.value().lookup_record(v6("2001:db8:6464::a01:5"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->city, "Auckland");
  EXPECT_EQ(r->asn, 9431u);
  // One past the block is a miss.
  EXPECT_FALSE(db.value().lookup_record(v6("2001:db8:6464::a01:100")).has_value());
}

}  // namespace
}  // namespace ruru
