#include "geo/geo_db.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "util/random.hpp"

namespace ruru {
namespace {

GeoRecord rec(std::uint32_t start, std::uint32_t end, std::string country, std::string city,
              double lat = 0, double lon = 0) {
  GeoRecord r;
  r.range_start = start;
  r.range_end = end;
  r.country = std::move(country);
  r.city = std::move(city);
  r.latitude = lat;
  r.longitude = lon;
  return r;
}

TEST(GeoDb, LookupInsideRanges) {
  auto db = GeoDatabase::build({
      rec(100, 199, "NZ", "Auckland", -36.8, 174.7),
      rec(200, 299, "US", "Los Angeles", 34.0, -118.2),
      rec(500, 599, "GB", "London"),
  });
  ASSERT_TRUE(db.ok()) << db.error();
  const GeoDatabase& g = db.value();

  const auto r = g.lookup_record(Ipv4Address(150));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->city, "Auckland");
  EXPECT_DOUBLE_EQ(r->latitude, -36.8);

  EXPECT_EQ(g.lookup_record(Ipv4Address(200))->city, "Los Angeles");  // range start
  EXPECT_EQ(g.lookup_record(Ipv4Address(299))->city, "Los Angeles");  // range end inclusive
  EXPECT_EQ(g.lookup_record(Ipv4Address(599))->city, "London");
}

TEST(GeoDb, RowAccessorsMatchRecords) {
  auto db = GeoDatabase::build({rec(100, 199, "NZ", "Auckland", -36.8, 174.7)});
  ASSERT_TRUE(db.ok());
  const std::size_t i = db.value().find(Ipv4Address(100));
  ASSERT_NE(i, GeoDatabase::npos);
  EXPECT_EQ(geo_names().view(db.value().city_id(i)), "Auckland");
  EXPECT_EQ(geo_names().view(db.value().country_id(i)), "NZ");
  EXPECT_DOUBLE_EQ(db.value().latitude(i), -36.8);
  EXPECT_DOUBLE_EQ(db.value().longitude(i), 174.7);
}

TEST(GeoDb, LookupOutsideRangesReturnsNpos) {
  auto db = GeoDatabase::build({rec(100, 199, "NZ", "Auckland")});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().find(Ipv4Address(99)), GeoDatabase::npos);
  EXPECT_EQ(db.value().find(Ipv4Address(200)), GeoDatabase::npos);
  EXPECT_EQ(db.value().find(Ipv4Address(0)), GeoDatabase::npos);
  EXPECT_EQ(db.value().find(Ipv4Address(0xFFFFFFFF)), GeoDatabase::npos);
  EXPECT_FALSE(db.value().lookup_record(Ipv4Address(99)).has_value());
}

TEST(GeoDb, EmptyDatabase) {
  auto db = GeoDatabase::build({});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 0u);
  EXPECT_EQ(db.value().find(Ipv4Address(1)), GeoDatabase::npos);
}

TEST(GeoDb, BuildSortsInput) {
  auto db = GeoDatabase::build({
      rec(500, 599, "GB", "London"),
      rec(100, 199, "NZ", "Auckland"),
  });
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().record(0).city, "Auckland");
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(550))->city, "London");
}

TEST(GeoDb, RejectsOverlaps) {
  EXPECT_FALSE(GeoDatabase::build({rec(100, 200, "A", "a"), rec(150, 250, "B", "b")}).ok());
  EXPECT_FALSE(GeoDatabase::build({rec(100, 200, "A", "a"), rec(200, 250, "B", "b")}).ok());
  // Adjacent (no gap) is fine.
  EXPECT_TRUE(GeoDatabase::build({rec(100, 200, "A", "a"), rec(201, 250, "B", "b")}).ok());
}

TEST(GeoDb, RejectsInvertedRange) {
  EXPECT_FALSE(GeoDatabase::build({rec(200, 100, "A", "a")}).ok());
}

TEST(GeoDb, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("geo_test_" + std::to_string(::getpid()) + ".db"))
          .string();
  auto db = GeoDatabase::build({
      rec(100, 199, "NZ", "Auckland", -36.8485, 174.7633),
      rec(0xC0000000, 0xC00000FF, "US", "Los Angeles", 34.0522, -118.2437),
  });
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value().save(path).ok());

  auto loaded = GeoDatabase::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 2u);
  const auto r = loaded.value().lookup_record(Ipv4Address(0xC0000010));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->city, "Los Angeles");
  EXPECT_DOUBLE_EQ(r->latitude, 34.0522);
  EXPECT_DOUBLE_EQ(r->longitude, -118.2437);
  std::remove(path.c_str());
}

TEST(GeoDb, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("geo_bad_" + std::to_string(::getpid()) + ".db"))
          .string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("garbage!", 1, 8, f);
  std::fclose(f);
  EXPECT_FALSE(GeoDatabase::load(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(GeoDatabase::load("/no/such/file.db").ok());
}

TEST(GeoDb, LookupMatchesLinearScanOnRandomQueries) {
  // Property test: radix-fronted binary search == brute force.
  std::vector<GeoRecord> records;
  std::uint32_t cursor = 0;
  Pcg32 rng(1234);
  for (int i = 0; i < 300; ++i) {
    cursor += 1 + rng.bounded(10'000);
    const std::uint32_t start = cursor;
    cursor += 1 + rng.bounded(5'000);
    records.push_back(rec(start, cursor, "C" + std::to_string(i % 50), "city" + std::to_string(i)));
  }
  auto db = GeoDatabase::build(std::vector<GeoRecord>(records));
  ASSERT_TRUE(db.ok());

  for (int q = 0; q < 5'000; ++q) {
    const Ipv4Address addr(rng.bounded(cursor + 20'000));
    const auto fast = db.value().lookup_record(addr);
    const GeoRecord* slow = nullptr;
    for (const auto& r : records) {
      if (addr.value() >= r.range_start && addr.value() <= r.range_end) {
        slow = &r;
        break;
      }
    }
    if (slow == nullptr) {
      EXPECT_FALSE(fast.has_value()) << addr.to_string();
    } else {
      ASSERT_TRUE(fast.has_value()) << addr.to_string();
      EXPECT_EQ(fast->city, slow->city);
    }
  }
}

TEST(GeoDb, LookupMatchesAcrossRadixBucketBoundaries) {
  // Ranges spanning /16 boundaries exercise the skip-index edge cases:
  // a query whose /16 bucket is empty must still find a range that
  // started in an earlier bucket.
  auto db = GeoDatabase::build({
      rec(0x0001FFF0, 0x00030010, "AA", "spans-two-boundaries"),
      rec(0x00050000, 0x0005FFFF, "BB", "aligned-block"),
  });
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(0x0001FFF0))->city, "spans-two-boundaries");
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(0x00020000))->city, "spans-two-boundaries");
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(0x00028888))->city, "spans-two-boundaries");
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(0x00030010))->city, "spans-two-boundaries");
  EXPECT_FALSE(db.value().lookup_record(Ipv4Address(0x00030011)).has_value());
  EXPECT_FALSE(db.value().lookup_record(Ipv4Address(0x0004FFFF)).has_value());
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(0x00050000))->city, "aligned-block");
  EXPECT_EQ(db.value().lookup_record(Ipv4Address(0x0005FFFF))->city, "aligned-block");
}

}  // namespace
}  // namespace ruru
