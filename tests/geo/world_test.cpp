#include "geo/world.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

SiteSpec site(std::string city, std::string country, std::uint32_t asn, std::uint32_t block) {
  SiteSpec s;
  s.city = std::move(city);
  s.country = std::move(country);
  s.latitude = 1.0;
  s.longitude = 2.0;
  s.asn = asn;
  s.block_start = block;
  s.block_size = 256;
  return s;
}

TEST(World, BuildsConsistentDatabases) {
  const std::vector<SiteSpec> sites = {
      site("Auckland", "NZ", 9431, 0x0A010000),
      site("Los Angeles", "US", 15169, 0x0A020000),
  };
  auto world = build_world(sites);
  ASSERT_TRUE(world.ok()) << world.error();

  const Ipv4Address akl(0x0A010042);
  const auto g = world.value().geo.lookup_record(akl);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->city, "Auckland");
  EXPECT_EQ(g->country, "NZ");
  const auto a = world.value().as.lookup_record(akl);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->asn, 9431u);
}

TEST(World, MergesAdjacentSameAsnBlocks) {
  const std::vector<SiteSpec> sites = {
      site("Auckland", "NZ", 9431, 0x0A010000),
      site("Wellington", "NZ", 9431, 0x0A010100),  // adjacent, same ASN
      site("Christchurch", "NZ", 9432, 0x0A010200),
  };
  auto world = build_world(sites);
  ASSERT_TRUE(world.ok());
  // Geo keeps 3 city records; AS merges the first two.
  EXPECT_EQ(world.value().geo.size(), 3u);
  EXPECT_EQ(world.value().as.size(), 2u);
  EXPECT_EQ(world.value().as.lookup_record(Ipv4Address(0x0A0101FF))->asn, 9431u);
}

TEST(World, OverlappingSitesRejected) {
  const std::vector<SiteSpec> sites = {
      site("A", "AA", 1, 1000),
      site("B", "BB", 2, 1100),  // overlaps the 256-wide block at 1000
  };
  EXPECT_FALSE(build_world(sites).ok());
}

TEST(World, LargeWorldGeneratorIsUsable) {
  const auto sites = large_world_sites(220);
  EXPECT_EQ(sites.size(), 220u);
  auto world = build_world(sites);
  ASSERT_TRUE(world.ok()) << world.error();
  EXPECT_EQ(world.value().geo.size(), 220u);

  // Every site's block resolves to its own city.
  int checked = 0;
  for (const auto& s : sites) {
    const auto g = world.value().geo.lookup_record(Ipv4Address(s.block_start + 7));
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->city, s.city);
    EXPECT_GE(g->latitude, -90.0);
    EXPECT_LE(g->latitude, 90.0);
    ++checked;
  }
  EXPECT_EQ(checked, 220);
}

TEST(World, LargeWorldIsDeterministic) {
  const auto a = large_world_sites(50);
  const auto b = large_world_sites(50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].city, b[i].city);
    EXPECT_DOUBLE_EQ(a[i].latitude, b[i].latitude);
    EXPECT_EQ(a[i].block_start, b[i].block_start);
  }
}

}  // namespace
}  // namespace ruru
