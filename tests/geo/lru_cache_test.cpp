#include "geo/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ruru {
namespace {

TEST(LruCache, PutGet) {
  LruCache<int, std::string> cache(2);
  cache.put(1, "one");
  const auto v = cache.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LruCache, MissReturnsNullopt) {
  LruCache<int, int> cache(2);
  EXPECT_FALSE(cache.get(42).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_TRUE(cache.get(1).has_value());  // 1 is now MRU
  cache.put(3, 30);                       // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutUpdatesExistingKey) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(1, 11);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(1), 11);
}

TEST(LruCache, UpdateRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // 1 refreshed; 2 is LRU now
  cache.put(3, 30);
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(*cache.get(1), 11);
}

TEST(LruCache, CapacityOneWorks) {
  LruCache<int, int> cache(1);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(*cache.get(2), 20);
}

TEST(LruCache, ChurnStaysBounded) {
  LruCache<int, int> cache(64);
  for (int i = 0; i < 10'000; ++i) cache.put(i, i);
  EXPECT_EQ(cache.size(), 64u);
  // The last 64 inserted keys survive.
  for (int i = 10'000 - 64; i < 10'000; ++i) {
    EXPECT_TRUE(cache.get(i).has_value()) << i;
  }
}

}  // namespace
}  // namespace ruru
