#include "geo/interner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ruru {
namespace {

TEST(StringInterner, EmptyStringIsIdZero) {
  StringInterner in;
  EXPECT_EQ(in.intern(""), 0u);
  EXPECT_EQ(in.view(0), "");
  EXPECT_EQ(in.size(), 1u);
}

TEST(StringInterner, SameStringSameId) {
  StringInterner in;
  const std::uint32_t a = in.intern("Auckland");
  const std::uint32_t b = in.intern("Auckland");
  EXPECT_EQ(a, b);
  EXPECT_EQ(in.view(a), "Auckland");
}

TEST(StringInterner, DistinctStringsDistinctIds) {
  StringInterner in;
  const std::uint32_t a = in.intern("Auckland");
  const std::uint32_t b = in.intern("Wellington");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.view(a), "Auckland");
  EXPECT_EQ(in.view(b), "Wellington");
}

TEST(StringInterner, IdsAreStableAcrossLaterInserts) {
  // The property every POD sample depends on: an id handed out at DB
  // load resolves to the same bytes forever, no matter how much is
  // interned afterwards.
  StringInterner in;
  std::vector<std::uint32_t> ids;
  std::vector<std::string> strings;
  for (int i = 0; i < 5'000; ++i) {
    strings.push_back("city-" + std::to_string(i));
    ids.push_back(in.intern(strings.back()));
  }
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_EQ(in.view(ids[i]), strings[i]);
    EXPECT_EQ(in.intern(strings[i]), ids[i]);  // re-intern dedupes
  }
}

TEST(StringInterner, OutOfRangeIdViewsEmpty) {
  StringInterner in;
  EXPECT_EQ(in.view(12345), "");
}

TEST(StringInterner, LongStringsSurviveArenaBlocks) {
  StringInterner in;
  const std::string big(200'000, 'x');  // larger than one arena block
  const std::uint32_t a = in.intern(big);
  const std::uint32_t b = in.intern("small");
  EXPECT_EQ(in.view(a), big);
  EXPECT_EQ(in.view(b), "small");
}

TEST(StringInterner, ConcurrentReadersSeeConsistentViews) {
  // Writers intern under a lock; readers resolve lock-free.  Each reader
  // checks that every id visible via size() resolves to the expected
  // round-trip value.
  StringInterner in;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 20'000; ++i) in.intern("w-" + std::to_string(i));
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const std::uint32_t n = in.size();
        for (std::uint32_t id = n > 16 ? n - 16 : 0; id < n; ++id) {
          const std::string_view v = in.view(id);
          // Either empty (only id 0) or a writer-format string.
          if (id != 0) EXPECT_EQ(v.substr(0, 2), "w-");
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
}

TEST(StringInterner, GeoNamesSingletonIsProcessWide) {
  const std::uint32_t a = geo_names().intern("singleton-check");
  const std::uint32_t b = geo_names().intern("singleton-check");
  EXPECT_EQ(a, b);
  EXPECT_EQ(geo_names().view(a), "singleton-check");
}

}  // namespace
}  // namespace ruru
