#include "analytics/enricher.hpp"

#include <gtest/gtest.h>

#include <string>

#include "geo/geo6_db.hpp"
#include "geo/world.hpp"

namespace ruru {
namespace {

class EnricherTest : public ::testing::Test {
 protected:
  EnricherTest() {
    std::vector<SiteSpec> sites;
    SiteSpec akl;
    akl.city = "Auckland";
    akl.country = "NZ";
    akl.latitude = -36.8;
    akl.longitude = 174.7;
    akl.asn = 9431;
    akl.organization = "REANNZ";
    akl.block_start = Ipv4Address(10, 1, 0, 0).value();
    sites.push_back(akl);
    SiteSpec lax;
    lax.city = "Los Angeles";
    lax.country = "US";
    lax.latitude = 34.05;
    lax.longitude = -118.24;
    lax.asn = 15169;
    lax.block_start = Ipv4Address(10, 2, 0, 0).value();
    sites.push_back(lax);
    auto w = build_world(sites);
    EXPECT_TRUE(w.ok());
    world_ = std::make_unique<World>(std::move(w).value());
    sites_ = std::move(sites);
  }

  LatencySample sample() {
    LatencySample s;
    s.client = Ipv4Address(10, 1, 0, 5);
    s.server = Ipv4Address(10, 2, 0, 9);
    s.client_port = 40'000;
    s.server_port = 443;
    s.syn_time = Timestamp::from_ms(1000);
    s.synack_time = Timestamp::from_ms(1128);
    s.ack_time = Timestamp::from_ms(1133);
    s.queue_id = 2;
    return s;
  }

  std::unique_ptr<World> world_;
  std::vector<SiteSpec> sites_;
};

TEST_F(EnricherTest, EnrichesBothEndpoints) {
  Enricher e(world_->geo, world_->as);
  const EnrichedSample out = e.enrich(sample());
  EXPECT_EQ(out.client.city(), "Auckland");
  EXPECT_EQ(out.client.country(), "NZ");
  EXPECT_EQ(out.client.asn, 9431u);
  EXPECT_EQ(out.client.as_org(), "REANNZ");
  EXPECT_TRUE(out.client.located);
  EXPECT_EQ(out.server.city(), "Los Angeles");
  EXPECT_EQ(out.server.asn, 15169u);
  EXPECT_DOUBLE_EQ(out.server.latitude, 34.05);
}

TEST_F(EnricherTest, LatenciesCarriedThrough) {
  Enricher e(world_->geo, world_->as);
  const EnrichedSample out = e.enrich(sample());
  EXPECT_EQ(out.external.ns, Duration::from_ms(128).ns);
  EXPECT_EQ(out.internal.ns, Duration::from_ms(5).ns);
  EXPECT_EQ(out.total.ns, Duration::from_ms(133).ns);
  EXPECT_EQ(out.completed_at.ns, Timestamp::from_ms(1133).ns);
  EXPECT_EQ(out.queue_id, 2);
}

TEST_F(EnricherTest, UnknownAddressMarkedUnlocated) {
  Enricher e(world_->geo, world_->as);
  LatencySample s = sample();
  s.server = Ipv4Address(203, 0, 113, 1);  // not in the world
  const EnrichedSample out = e.enrich(s);
  EXPECT_TRUE(out.client.located);
  EXPECT_FALSE(out.server.located);
  EXPECT_EQ(e.stats().unlocated, 1u);
}

TEST_F(EnricherTest, Ipv6IsUnlocatedWithoutGeo6) {
  Enricher e(world_->geo, world_->as);
  LatencySample s = sample();
  s.client = Ipv6Address::parse("2001:db8::1").value();
  const EnrichedSample out = e.enrich(s);
  EXPECT_FALSE(out.client.located);
}

TEST_F(EnricherTest, CacheHitsOnRepeatedAddresses) {
  Enricher e(world_->geo, world_->as);
  for (int i = 0; i < 10; ++i) e.enrich(sample());
  // 2 misses (first lookup of each endpoint), 18 hits.
  EXPECT_EQ(e.stats().cache_misses, 2u);
  EXPECT_EQ(e.stats().cache_hits, 18u);
}

TEST_F(EnricherTest, Ipv6GoesThroughTheCache) {
  auto geo6 = derive_geo6(sites_);
  ASSERT_TRUE(geo6.ok()) << geo6.error();
  Enricher e(world_->geo, world_->as);
  e.set_geo6(&geo6.value());
  LatencySample s = sample();
  // The traffic model maps 10.1.0.5 into the derived v6 table.
  s.client = Ipv6Address::parse("2001:db8:6464::a01:5").value();
  for (int i = 0; i < 5; ++i) {
    const EnrichedSample out = e.enrich(s);
    EXPECT_TRUE(out.client.located);
    EXPECT_EQ(out.client.city(), "Auckland");
  }
  // 2 misses (one per endpoint family), the rest hits — the v6 endpoint
  // is cached like the v4 one.
  EXPECT_EQ(e.stats().cache_misses, 2u);
  EXPECT_EQ(e.stats().cache_hits, 8u);
}

TEST_F(EnricherTest, NegativeLookupsAreCached) {
  Enricher e(world_->geo, world_->as);
  LatencySample s = sample();
  s.server = Ipv4Address(203, 0, 113, 1);  // not in the world
  for (int i = 0; i < 4; ++i) e.enrich(s);
  // The unlocated server misses once, then hits its cached negative.
  EXPECT_EQ(e.stats().cache_misses, 2u);
  EXPECT_EQ(e.stats().cache_hits, 6u);
  EXPECT_EQ(e.stats().unlocated, 4u);
}

TEST_F(EnricherTest, BatchMatchesSingleSampleEnrichment) {
  Enricher single(world_->geo, world_->as);
  Enricher batched(world_->geo, world_->as);
  std::vector<LatencySample> batch;
  for (int i = 0; i < 64; ++i) {
    LatencySample s = sample();
    s.client = Ipv4Address(0x0A010000u + static_cast<std::uint32_t>(i % 7));
    s.server = (i % 5 == 0) ? IpAddress(Ipv4Address(203, 0, 113, 9))  // unlocated
                            : IpAddress(Ipv4Address(0x0A020000u + static_cast<std::uint32_t>(i)));
    batch.push_back(s);
  }
  std::vector<EnrichedSample> out;
  batched.enrich_batch(batch, out);
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const EnrichedSample ref = single.enrich(batch[i]);
    EXPECT_EQ(out[i].client.city(), ref.client.city());
    EXPECT_EQ(out[i].server.city(), ref.server.city());
    EXPECT_EQ(out[i].client.asn, ref.client.asn);
    EXPECT_EQ(out[i].server.located, ref.server.located);
    EXPECT_EQ(out[i].total.ns, ref.total.ns);
  }
  EXPECT_EQ(batched.stats().enriched, single.stats().enriched);
  EXPECT_EQ(batched.stats().unlocated, single.stats().unlocated);
  EXPECT_EQ(batched.stats().cache_hits, single.stats().cache_hits);
  EXPECT_EQ(batched.stats().cache_misses, single.stats().cache_misses);
}

TEST_F(EnricherTest, StatsAreTheSingleSourceOfTruth) {
  // hits + misses must equal exactly two lookups per enriched sample —
  // the old LruCache kept its own duplicate counters; these are the only
  // ones now.
  Enricher e(world_->geo, world_->as);
  for (int i = 0; i < 25; ++i) e.enrich(sample());
  EXPECT_EQ(e.stats().cache_hits + e.stats().cache_misses, 2u * e.stats().enriched);
}

TEST_F(EnricherTest, EnrichedSampleCarriesNoAddresses) {
  // Privacy invariant (§2): the output type has no IP fields at all, so
  // this is a compile-time guarantee; assert the location strings do not
  // leak dotted quads either.
  Enricher e(world_->geo, world_->as);
  const EnrichedSample out = e.enrich(sample());
  for (const std::string_view s : {out.client.city(), out.client.country(), out.server.city()}) {
    EXPECT_EQ(s.find("10."), std::string_view::npos);
  }
}

}  // namespace
}  // namespace ruru
