#include "analytics/filter.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

EnrichedSample sample(const std::string& src_city, const std::string& dst_city,
                      const std::string& src_cc, const std::string& dst_cc, std::uint32_t dst_as,
                      std::int64_t total_ms) {
  EnrichedSample s;
  s.client.city_id = geo_names().intern(src_city);
  s.client.country_id = geo_names().intern(src_cc);
  s.client.asn = 9431;
  s.server.city_id = geo_names().intern(dst_city);
  s.server.country_id = geo_names().intern(dst_cc);
  s.server.asn = dst_as;
  s.server.latitude = 34.0;
  s.server.longitude = -118.2;
  s.total = Duration::from_ms(total_ms);
  return s;
}

TEST(SampleFilter, CountryMatchesEitherEndpoint) {
  const auto f = SampleFilter::country("NZ");
  EXPECT_TRUE(f.accepts(sample("Auckland", "LA", "NZ", "US", 1, 100)));
  EXPECT_TRUE(f.accepts(sample("LA", "Auckland", "US", "NZ", 1, 100)));
  EXPECT_FALSE(f.accepts(sample("LA", "London", "US", "GB", 1, 100)));
  EXPECT_EQ(f.name(), "country=NZ");
}

TEST(SampleFilter, CityAndAsn) {
  EXPECT_TRUE(SampleFilter::city("Auckland").accepts(sample("Auckland", "LA", "NZ", "US", 1, 1)));
  EXPECT_FALSE(SampleFilter::city("Sydney").accepts(sample("Auckland", "LA", "NZ", "US", 1, 1)));
  EXPECT_TRUE(SampleFilter::asn(15169).accepts(sample("A", "B", "NZ", "US", 15169, 1)));
  EXPECT_FALSE(SampleFilter::asn(15169).accepts(sample("A", "B", "NZ", "US", 3356, 1)));
}

TEST(SampleFilter, LatencyBands) {
  const auto band = SampleFilter::latency_between(Duration::from_ms(100), Duration::from_ms(200));
  EXPECT_FALSE(band.accepts(sample("A", "B", "NZ", "US", 1, 99)));
  EXPECT_TRUE(band.accepts(sample("A", "B", "NZ", "US", 1, 100)));
  EXPECT_TRUE(band.accepts(sample("A", "B", "NZ", "US", 1, 199)));
  EXPECT_FALSE(band.accepts(sample("A", "B", "NZ", "US", 1, 200)));

  const auto red = SampleFilter::latency_at_least(Duration::from_ms(600));
  EXPECT_TRUE(red.accepts(sample("A", "B", "NZ", "US", 1, 4130)));
  EXPECT_FALSE(red.accepts(sample("A", "B", "NZ", "US", 1, 130)));
}

TEST(SampleFilter, GeoBox) {
  const auto box = SampleFilter::server_in_box(30.0, 40.0, -125.0, -110.0);
  EXPECT_TRUE(box.accepts(sample("A", "LA", "NZ", "US", 1, 1)));
  auto outside = sample("A", "B", "NZ", "US", 1, 1);
  outside.server.latitude = 51.5;
  EXPECT_FALSE(box.accepts(outside));
  auto unlocated = sample("A", "B", "NZ", "US", 1, 1);
  unlocated.server.located = false;
  EXPECT_FALSE(box.accepts(unlocated));
}

TEST(FilterChain, ForwardsOnlyFullMatches) {
  std::vector<std::int64_t> forwarded;
  FilterChain chain([&](const EnrichedSample& s) { forwarded.push_back(s.total.ns); });
  chain.add(SampleFilter::country("NZ")).add(SampleFilter::latency_at_least(Duration::from_ms(500)));

  chain(sample("Auckland", "LA", "NZ", "US", 1, 4130));  // passes both
  chain(sample("Auckland", "LA", "NZ", "US", 1, 130));   // fails latency
  chain(sample("LA", "London", "US", "GB", 1, 4130));    // fails country

  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0], Duration::from_ms(4130).ns);
  EXPECT_EQ(chain.seen(), 3u);
  EXPECT_EQ(chain.forwarded(), 1u);
  EXPECT_EQ(chain.passed(0), 2u);  // country stage passed twice
  EXPECT_EQ(chain.passed(1), 1u);
  EXPECT_EQ(chain.stage_count(), 2u);
}

TEST(FilterChain, EmptyChainForwardsEverything) {
  int n = 0;
  FilterChain chain([&](const EnrichedSample&) { ++n; });
  chain(sample("A", "B", "NZ", "US", 1, 1));
  chain(sample("A", "B", "NZ", "US", 1, 2));
  EXPECT_EQ(n, 2);
}

TEST(FilterChain, NullSinkCountsButDoesNotCrash) {
  FilterChain chain(nullptr);
  chain(sample("A", "B", "NZ", "US", 1, 1));
  EXPECT_EQ(chain.seen(), 1u);
  EXPECT_EQ(chain.forwarded(), 1u);
}

}  // namespace
}  // namespace ruru
