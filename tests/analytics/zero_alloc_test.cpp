// Counting-allocator proof of the allocation-free hot paths: once caches
// and output buffers are warm, enriching a batch, feeding the id-keyed
// aggregators, and resolving a whole RX burst through the flow table
// (process_burst) perform zero heap allocations per sample.  Global
// operator new/delete are overridden for this test binary only; the
// counter is read before and after the measured window with no gtest
// machinery in between.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "analytics/aggregator.hpp"
#include "analytics/enricher.hpp"
#include "flow/handshake_tracker.hpp"
#include "flow/worker.hpp"
#include "geo/world.hpp"
#include "net/packet_builder.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ruru {
namespace {

TEST(ZeroAlloc, EnrichBatchSteadyStateDoesNotAllocate) {
  auto world = build_world(large_world_sites(64));
  ASSERT_TRUE(world.ok());
  Enricher enricher(world.value().geo, world.value().as);

  // A batch cycling through a bounded address set (well inside cache
  // capacity), like heavy-tailed production traffic.
  const auto sites = large_world_sites(64);
  std::vector<LatencySample> batch;
  for (int i = 0; i < 512; ++i) {
    LatencySample s;
    s.client = Ipv4Address(sites[i % 16].block_start + 3);
    s.server = Ipv4Address(sites[16 + (i % 24)].block_start + 9);
    s.syn_time = Timestamp::from_ms(i);
    s.synack_time = Timestamp::from_ms(i + 100);
    s.ack_time = Timestamp::from_ms(i + 105);
    batch.push_back(s);
  }

  std::vector<EnrichedSample> out;
  out.reserve(batch.size());

  // Warm-up: populates the flat cache and faults in the output buffer.
  enricher.enrich_batch(batch, out);
  out.clear();

  const std::uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 10; ++round) {
    out.clear();
    enricher.enrich_batch(batch, out);
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u) << "enrich_batch allocated in steady state";
  EXPECT_EQ(out.size(), batch.size());
  EXPECT_EQ(enricher.stats().cache_misses, 40u);  // 16 + 24 distinct endpoints, warm-up only
}

TEST(ZeroAlloc, AggregatorAddOnWarmPairsDoesNotAllocate) {
  auto world = build_world(large_world_sites(64));
  ASSERT_TRUE(world.ok());
  Enricher enricher(world.value().geo, world.value().as);
  LatencyAggregator cities(LatencyAggregator::Mode::kCityPair);
  LatencyAggregator ases(LatencyAggregator::Mode::kAsPair);

  const auto sites = large_world_sites(64);
  LatencySample s;
  s.client = Ipv4Address(sites[0].block_start + 1);
  s.server = Ipv4Address(sites[1].block_start + 1);
  s.syn_time = Timestamp::from_ms(0);
  s.synack_time = Timestamp::from_ms(100);
  s.ack_time = Timestamp::from_ms(105);

  // Warm-up inserts the pair nodes and any lazy histogram storage.
  for (int i = 0; i < 32; ++i) {
    const EnrichedSample e = enricher.enrich(s);
    cities.add(e);
    ases.add(e);
  }

  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1'000; ++i) {
    const EnrichedSample e = enricher.enrich(s);
    cities.add(e);
    ases.add(e);
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u) << "warm aggregator path allocated";
}

TEST(ZeroAlloc, ProcessBurstSteadyStateDoesNotAllocate) {
  // One RX burst of complete handshakes: 10 flows x (SYN, SYN-ACK, ACK).
  // Each round inserts, matches and erases every flow, walking the whole
  // group-probed table path — probes, claims, reclamations, sample
  // emission — which must stay allocation-free once buffers are sized.
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 10; ++i) {
    TcpFrameSpec syn;
    syn.src_ip = Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1));
    syn.dst_ip = Ipv4Address(10, 2, 0, 1);
    syn.src_port = static_cast<std::uint16_t>(40'000 + i);
    syn.dst_port = 443;
    syn.seq = 1000u + static_cast<std::uint32_t>(i);
    syn.flags = TcpFlags::kSyn;
    frames.push_back(build_tcp_frame(syn));

    TcpFrameSpec synack;
    synack.src_ip = syn.dst_ip;
    synack.dst_ip = syn.src_ip;
    synack.src_port = 443;
    synack.dst_port = syn.src_port;
    synack.seq = 5000u + static_cast<std::uint32_t>(i);
    synack.ack = syn.seq + 1;
    synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
    frames.push_back(build_tcp_frame(synack));

    TcpFrameSpec ack;
    ack.src_ip = syn.src_ip;
    ack.dst_ip = syn.dst_ip;
    ack.src_port = syn.src_port;
    ack.dst_port = 443;
    ack.seq = syn.seq + 1;
    ack.ack = synack.seq + 1;
    ack.flags = TcpFlags::kAck;
    frames.push_back(build_tcp_frame(ack));
  }

  std::vector<TrackedPacket> burst;
  burst.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    PacketView view;
    ASSERT_EQ(parse_packet(frames[i], view), ParseStatus::kOk);
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    burst.push_back({view, Timestamp::from_ms(static_cast<std::int64_t>(i)), rss});
  }

  HandshakeTracker tracker(1 << 10);
  std::vector<LatencySample> out;
  out.reserve(frames.size());

  // Warm-up: first burst sizes nothing lazily (the table is fully built
  // at construction), but run one anyway to mirror production state.
  tracker.process_burst(burst, 0, out);
  ASSERT_EQ(out.size(), 10u);
  out.clear();

  const std::uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 100; ++round) {
    out.clear();
    tracker.process_burst(burst, 0, out);
    tracker.sweep(Timestamp::from_ms(30), 4);
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u) << "process_burst allocated in steady state";
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(tracker.table().size(), 0u);  // every handshake completed and erased
}

TEST(ZeroAlloc, InflowKernelSteadyStateDoesNotAllocate) {
  // Full flow lifecycles with TCP timestamps and the in-flow kernel on:
  // 8 flows x (handshake, request, response, ack, FIN).  Every TSval note
  // is either consumed by its echo or erased with the flow at FIN, so each
  // round replays against identical table state — the matching kernel's
  // rings live inside the flow table's preallocated cold storage and must
  // never touch the heap.
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 8; ++i) {
    const auto client = Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1));
    const auto server = Ipv4Address(10, 2, 0, 1);
    const auto cport = static_cast<std::uint16_t>(41'000 + i);
    auto tcp = [&](bool c2s, std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                   std::uint32_t tsval, std::uint32_t tsecr, std::size_t payload) {
      TcpFrameSpec s;
      s.src_ip = c2s ? client : server;
      s.dst_ip = c2s ? server : client;
      s.src_port = c2s ? cport : 443;
      s.dst_port = c2s ? 443 : cport;
      s.flags = flags;
      s.seq = seq;
      s.ack = ack;
      s.payload_length = payload;
      s.with_timestamps = true;
      s.ts_val = tsval;
      s.ts_ecr = tsecr;
      frames.push_back(build_tcp_frame(s));
    };
    tcp(true, TcpFlags::kSyn, 1000, 0, 100, 0, 0);
    tcp(false, TcpFlags::kSyn | TcpFlags::kAck, 5000, 1001, 500, 100, 0);
    tcp(true, TcpFlags::kAck, 1001, 5001, 105, 500, 0);
    tcp(true, TcpFlags::kAck, 1001, 5001, 200, 500, 300);   // request
    tcp(false, TcpFlags::kAck, 5001, 1301, 600, 200, 900);  // response: external echo
    tcp(true, TcpFlags::kAck, 1301, 5901, 210, 600, 0);     // client ack: internal echo
    tcp(true, TcpFlags::kFin | TcpFlags::kAck, 1301, 5901, 220, 600, 0);
  }

  std::vector<TrackedPacket> burst;
  burst.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    PacketView view;
    ASSERT_EQ(parse_packet(frames[i], view), ParseStatus::kOk);
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    burst.push_back({view, Timestamp::from_ms(static_cast<std::int64_t>(i)), rss});
  }

  InflowConfig icfg;
  icfg.enabled = true;
  icfg.ring_entries = 8;
  icfg.min_interval = Duration{0};
  HandshakeTracker tracker(1 << 10, Duration::from_sec(30.0), FlowTable::kDefaultProbeWindow,
                           ProbeKernel::kAuto, icfg);
  std::vector<LatencySample> out;
  out.reserve(frames.size());

  tracker.process_burst(burst, 0, out);
  const std::size_t per_round = out.size();
  ASSERT_GT(per_round, 8u);  // handshake samples plus in-flow echoes
  ASSERT_EQ(tracker.table().size(), 0u);
  out.clear();

  const std::uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 100; ++round) {
    out.clear();
    tracker.process_burst(burst, 0, out);
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u) << "in-flow kernel allocated in steady state";
  EXPECT_EQ(out.size(), per_round);
  EXPECT_GT(tracker.inflow_stats().ts_matches.load(), 0u);
  EXPECT_EQ(tracker.table().size(), 0u);
}

TEST(ZeroAlloc, VectorPollLoopSteadyStateDoesNotAllocate) {
  // The whole vectorized worker path — NIC inject, rx_burst, the SoA
  // descriptor fill, batched pre-parse + branchless classify, batched
  // flow-table probes, run-partitioned resolve with the in-flow kernel,
  // and the sweep — over full flow lifecycles (handshake, timestamped
  // data both directions, FIN).  Lanes of every class appear in each
  // burst; once the worker's fixed lanes and reused buffers are warm,
  // nothing may touch the heap.
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 8; ++i) {
    const auto client = Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1));
    const auto server = Ipv4Address(10, 2, 0, 1);
    const auto cport = static_cast<std::uint16_t>(42'000 + i);
    auto tcp = [&](bool c2s, std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                   std::uint32_t tsval, std::uint32_t tsecr, std::size_t payload) {
      TcpFrameSpec s;
      s.src_ip = c2s ? client : server;
      s.dst_ip = c2s ? server : client;
      s.src_port = c2s ? cport : 443;
      s.dst_port = c2s ? 443 : cport;
      s.flags = flags;
      s.seq = seq;
      s.ack = ack;
      s.payload_length = payload;
      s.with_timestamps = true;
      s.ts_val = tsval;
      s.ts_ecr = tsecr;
      frames.push_back(build_tcp_frame(s));
    };
    tcp(true, TcpFlags::kSyn, 1000, 0, 100, 0, 0);
    tcp(false, TcpFlags::kSyn | TcpFlags::kAck, 5000, 1001, 500, 100, 0);
    tcp(true, TcpFlags::kAck, 1001, 5001, 105, 500, 0);
    tcp(true, TcpFlags::kAck, 1001, 5001, 200, 500, 300);   // request (candidate lane)
    tcp(false, TcpFlags::kAck, 5001, 1301, 600, 200, 900);  // response: echo
    tcp(true, TcpFlags::kFin | TcpFlags::kAck, 1301, 5901, 220, 600, 0);
  }

  Mempool pool(4096, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, pool);
  InflowConfig icfg;
  icfg.enabled = true;
  icfg.ring_entries = 8;
  icfg.min_interval = Duration{0};
  std::uint64_t delivered = 0;
  QueueWorker worker(nic, 0, 1 << 10, [&](const LatencySample&) { ++delivered; },
                     Duration::from_sec(30.0), FlowTable::kDefaultProbeWindow, icfg);
  ASSERT_EQ(worker.loop_kernel(), QueueWorker::LoopKernel::kVector);

  auto round = [&](std::int64_t base_ms) {
    for (std::size_t i = 0; i < frames.size(); ++i) {
      nic.inject(frames[i], Timestamp::from_ms(base_ms + static_cast<std::int64_t>(i)));
    }
    while (worker.poll_once() != 0) {
    }
  };

  // Warm-up: fault in the mempool, descriptor lanes and staging buffers.
  round(0);
  const std::uint64_t per_round = delivered;
  ASSERT_GT(per_round, 8u);  // handshakes plus in-flow echoes
  ASSERT_EQ(worker.tracker().table().size(), 0u);  // every flow FIN-erased

  const std::uint64_t before = g_alloc_count.load();
  for (int r = 1; r <= 100; ++r) {
    round(r * 10);
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u) << "vector poll loop allocated in steady state";
  EXPECT_EQ(delivered, per_round * 101);
  EXPECT_GT(worker.stats().lane_established.load(), 0u);
  EXPECT_EQ(worker.tracker().table().size(), 0u);
}

}  // namespace
}  // namespace ruru
