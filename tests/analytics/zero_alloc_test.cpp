// Counting-allocator proof of the allocation-free enrichment fast path:
// once the caches and output buffers are warm, enriching a batch and
// feeding the id-keyed aggregators performs zero heap allocations per
// sample.  Global operator new/delete are overridden for this test
// binary only; the counter is read before and after the measured window
// with no gtest machinery in between.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "analytics/aggregator.hpp"
#include "analytics/enricher.hpp"
#include "geo/world.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ruru {
namespace {

TEST(ZeroAlloc, EnrichBatchSteadyStateDoesNotAllocate) {
  auto world = build_world(large_world_sites(64));
  ASSERT_TRUE(world.ok());
  Enricher enricher(world.value().geo, world.value().as);

  // A batch cycling through a bounded address set (well inside cache
  // capacity), like heavy-tailed production traffic.
  const auto sites = large_world_sites(64);
  std::vector<LatencySample> batch;
  for (int i = 0; i < 512; ++i) {
    LatencySample s;
    s.client = Ipv4Address(sites[i % 16].block_start + 3);
    s.server = Ipv4Address(sites[16 + (i % 24)].block_start + 9);
    s.syn_time = Timestamp::from_ms(i);
    s.synack_time = Timestamp::from_ms(i + 100);
    s.ack_time = Timestamp::from_ms(i + 105);
    batch.push_back(s);
  }

  std::vector<EnrichedSample> out;
  out.reserve(batch.size());

  // Warm-up: populates the flat cache and faults in the output buffer.
  enricher.enrich_batch(batch, out);
  out.clear();

  const std::uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 10; ++round) {
    out.clear();
    enricher.enrich_batch(batch, out);
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u) << "enrich_batch allocated in steady state";
  EXPECT_EQ(out.size(), batch.size());
  EXPECT_EQ(enricher.stats().cache_misses, 40u);  // 16 + 24 distinct endpoints, warm-up only
}

TEST(ZeroAlloc, AggregatorAddOnWarmPairsDoesNotAllocate) {
  auto world = build_world(large_world_sites(64));
  ASSERT_TRUE(world.ok());
  Enricher enricher(world.value().geo, world.value().as);
  LatencyAggregator cities(LatencyAggregator::Mode::kCityPair);
  LatencyAggregator ases(LatencyAggregator::Mode::kAsPair);

  const auto sites = large_world_sites(64);
  LatencySample s;
  s.client = Ipv4Address(sites[0].block_start + 1);
  s.server = Ipv4Address(sites[1].block_start + 1);
  s.syn_time = Timestamp::from_ms(0);
  s.synack_time = Timestamp::from_ms(100);
  s.ack_time = Timestamp::from_ms(105);

  // Warm-up inserts the pair nodes and any lazy histogram storage.
  for (int i = 0; i < 32; ++i) {
    const EnrichedSample e = enricher.enrich(s);
    cities.add(e);
    ases.add(e);
  }

  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1'000; ++i) {
    const EnrichedSample e = enricher.enrich(s);
    cities.add(e);
    ases.add(e);
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u) << "warm aggregator path allocated";
}

}  // namespace
}  // namespace ruru
