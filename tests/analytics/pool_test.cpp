#include "analytics/pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>

#include "geo/world.hpp"

namespace ruru {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  PoolTest() {
    auto w = build_world(large_world_sites(8));
    EXPECT_TRUE(w.ok());
    world_ = std::make_unique<World>(std::move(w).value());
  }

  LatencySample sample(std::uint32_t client_ip) {
    LatencySample s;
    s.client = Ipv4Address(client_ip);
    s.server = Ipv4Address((100u << 24) + 7);
    s.syn_time = Timestamp::from_ms(0);
    s.synack_time = Timestamp::from_ms(100);
    s.ack_time = Timestamp::from_ms(105);
    return s;
  }

  std::unique_ptr<World> world_;
};

TEST_F(PoolTest, ProcessesAllPublishedSamples) {
  PubSocket bus;
  auto sub = bus.subscribe(std::string(kLatencyTopic), 1 << 14);
  EnrichmentPool pool(sub, world_->geo, world_->as, 3);
  std::atomic<int> sunk{0};
  pool.add_sink([&](const EnrichedSample&) { sunk.fetch_add(1); });
  pool.start();

  constexpr int kCount = 2'000;
  for (int i = 0; i < kCount; ++i) {
    bus.publish(encode_latency_sample(sample((100u << 24) + static_cast<std::uint32_t>(i % 4096))));
  }
  bus.close_all();
  pool.stop();

  EXPECT_EQ(pool.processed(), static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(sunk.load(), kCount);
  EXPECT_EQ(pool.decode_failures(), 0u);
  EXPECT_EQ(pool.combined_stats().enriched, static_cast<std::uint64_t>(kCount));
}

TEST_F(PoolTest, CountsDecodeFailures) {
  PubSocket bus;
  auto sub = bus.subscribe("", 128);
  EnrichmentPool pool(sub, world_->geo, world_->as, 1);
  pool.start();

  Message bogus("ruru.latency");
  bogus.add(Frame::from_string("not a sample"));
  bus.publish(bogus);
  Message no_payload("ruru.latency");
  bus.publish(no_payload);
  bus.close_all();
  pool.stop();

  EXPECT_EQ(pool.decode_failures(), 2u);
  EXPECT_EQ(pool.processed(), 0u);
}

TEST_F(PoolTest, MultipleSinksAllInvoked) {
  PubSocket bus;
  auto sub = bus.subscribe("", 128);
  EnrichmentPool pool(sub, world_->geo, world_->as, 2);
  std::atomic<int> a{0}, b{0};
  pool.add_sink([&](const EnrichedSample&) { a.fetch_add(1); });
  pool.add_sink([&](const EnrichedSample&) { b.fetch_add(1); });
  pool.start();
  for (int i = 0; i < 100; ++i) bus.publish(encode_latency_sample(sample((100u << 24) + 1)));
  bus.close_all();
  pool.stop();
  EXPECT_EQ(a.load(), 100);
  EXPECT_EQ(b.load(), 100);
}

TEST_F(PoolTest, BatchedMessagesCountSamplesNotMessages) {
  PubSocket bus;
  auto sub = bus.subscribe(std::string(kLatencyTopic), 1 << 14);
  EnrichmentPool pool(sub, world_->geo, world_->as, 3);
  std::atomic<int> sunk{0};
  pool.add_sink([&](const EnrichedSample&) { sunk.fetch_add(1); });
  pool.start();

  constexpr int kBatches = 50;
  constexpr int kBatchSize = 40;
  std::vector<LatencySample> batch;
  for (int b = 0; b < kBatches; ++b) {
    batch.clear();
    for (int i = 0; i < kBatchSize; ++i) {
      batch.push_back(sample((100u << 24) + static_cast<std::uint32_t>(b * kBatchSize + i) % 4096));
    }
    bus.publish(encode_latency_batch(batch), batch.size());
  }
  bus.close_all();
  pool.stop();

  // 50 messages carried 2000 samples: processed() is in samples.
  EXPECT_EQ(pool.processed(), static_cast<std::uint64_t>(kBatches * kBatchSize));
  EXPECT_EQ(sunk.load(), kBatches * kBatchSize);
  EXPECT_EQ(pool.decode_failures(), 0u);
  EXPECT_EQ(pool.combined_stats().enriched, static_cast<std::uint64_t>(kBatches * kBatchSize));
}

TEST_F(PoolTest, CorruptBatchIsOneDecodeFailure) {
  PubSocket bus;
  auto sub = bus.subscribe("", 128);
  EnrichmentPool pool(sub, world_->geo, world_->as, 1);
  pool.start();

  std::vector<LatencySample> batch(8, sample((100u << 24) + 1));
  const Message good = encode_latency_batch(batch);
  std::vector<std::uint8_t> bytes(good.frames[1].data(),
                                  good.frames[1].data() + good.frames[1].size());
  bytes.resize(bytes.size() - 5);  // truncate the last record
  Message corrupt("ruru.latency");
  corrupt.add(Frame::adopt(std::move(bytes)));
  bus.publish(corrupt, batch.size());
  bus.publish(good, batch.size());
  bus.close_all();
  pool.stop();

  // The corrupt batch is rejected whole (one failure, zero samples); the
  // good one decodes fully.
  EXPECT_EQ(pool.decode_failures(), 1u);
  EXPECT_EQ(pool.processed(), batch.size());
}

TEST_F(PoolTest, ShardedInboxConservesSamplesAcrossLanes) {
  // Fan-in lanes + sharded inbox (the production topology): 4 publisher
  // lanes over 3 workers — uneven split, every sample still processed
  // exactly once.
  PubSocket bus(1 << 14, /*fanin_lanes=*/4);
  auto sub = bus.subscribe(std::string(kLatencyTopic), 1 << 14);
  EnrichmentPool pool(sub, world_->geo, world_->as, 3);
  std::atomic<int> sunk{0};
  pool.add_sink([&](const EnrichedSample&) { sunk.fetch_add(1); });
  pool.start();

  constexpr int kCount = 4'000;
  for (int i = 0; i < kCount; ++i) {
    bus.publish_lane(static_cast<std::size_t>(i % 4),
                     encode_latency_sample(sample((100u << 24) + static_cast<std::uint32_t>(i % 4096))));
  }
  bus.close_all();
  pool.stop();

  EXPECT_EQ(pool.processed(), static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(sunk.load(), kCount);
  EXPECT_EQ(pool.decode_failures(), 0u);
}

TEST_F(PoolTest, ShardedInboxOffFallsBackToSharedScan) {
  PubSocket bus(1 << 14, /*fanin_lanes=*/4);
  auto sub = bus.subscribe(std::string(kLatencyTopic), 1 << 14);
  EnrichmentPool pool(sub, world_->geo, world_->as, 3);
  pool.set_shard_inbox(false);
  std::atomic<int> sunk{0};
  pool.add_sink([&](const EnrichedSample&) { sunk.fetch_add(1); });
  pool.start();

  constexpr int kCount = 2'000;
  for (int i = 0; i < kCount; ++i) {
    bus.publish_lane(static_cast<std::size_t>(i % 4),
                     encode_latency_sample(sample((100u << 24) + static_cast<std::uint32_t>(i % 4096))));
  }
  bus.close_all();
  pool.stop();

  EXPECT_EQ(pool.processed(), static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(sunk.load(), kCount);
}

TEST_F(PoolTest, ShardedInboxKeepsLaneOrderPerWorker) {
  // Lane w goes to worker (w % threads); with threads == lanes each
  // lane is handled by exactly one worker, so batches from one lane
  // arrive at the sinks in publish order.
  constexpr std::size_t kLanes = 2;
  PubSocket bus(1 << 14, /*fanin_lanes=*/kLanes);
  auto sub = bus.subscribe(std::string(kLatencyTopic), 1 << 14);
  EnrichmentPool pool(sub, world_->geo, world_->as, kLanes);
  std::array<std::atomic<std::int64_t>, kLanes> last{};
  std::atomic<bool> ordered{true};
  pool.add_sink([&](const EnrichedSample& s) {
    // started_at (== syn_time) carries lane in the low bit and the
    // per-lane sequence number above it; IPs are stripped by design.
    const auto lane = static_cast<std::size_t>(s.started_at.ns & 1);
    const std::int64_t seq = s.started_at.ns >> 1;
    if (seq <= last[lane].exchange(seq)) ordered.store(false);
  });
  pool.start();

  for (std::int64_t i = 1; i <= 3'000; ++i) {
    const auto lane = static_cast<std::size_t>(i % kLanes);
    LatencySample s = sample((100u << 24) + static_cast<std::uint32_t>(i % 4096));
    s.syn_time = Timestamp::from_ns(i * 2 + static_cast<std::int64_t>(lane));
    s.synack_time = s.syn_time + Duration::from_ms(100);
    s.ack_time = s.syn_time + Duration::from_ms(105);
    bus.publish_lane(lane, encode_latency_sample(s));
  }
  bus.close_all();
  pool.stop();

  EXPECT_EQ(pool.processed(), 3'000u);
  EXPECT_TRUE(ordered.load());
}

TEST_F(PoolTest, StopWithoutStartIsSafe) {
  PubSocket bus;
  auto sub = bus.subscribe("", 16);
  EnrichmentPool pool(sub, world_->geo, world_->as, 2);
  pool.stop();  // no crash
}

}  // namespace
}  // namespace ruru
