#include "analytics/aggregator.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ruru {
namespace {

EnrichedSample make_sample(std::string src_city, std::string dst_city, std::uint32_t src_as,
                           std::uint32_t dst_as, std::int64_t total_ms) {
  EnrichedSample s;
  s.client.city_id = geo_names().intern(src_city);
  s.client.country_id = geo_names().intern("NZ");
  s.client.asn = src_as;
  s.server.city_id = geo_names().intern(dst_city);
  s.server.country_id = geo_names().intern("US");
  s.server.asn = dst_as;
  s.total = Duration::from_ms(total_ms);
  s.external = Duration::from_ms(total_ms - 5);
  s.internal = Duration::from_ms(5);
  s.completed_at = Timestamp::from_ms(total_ms);
  return s;
}

TEST(Aggregator, CityPairKeying) {
  LatencyAggregator agg(LatencyAggregator::Mode::kCityPair);
  agg.add(make_sample("Auckland", "Los Angeles", 1, 2, 130));
  agg.add(make_sample("Auckland", "Los Angeles", 1, 2, 134));
  agg.add(make_sample("Wellington", "Los Angeles", 1, 2, 140));

  const auto summaries = agg.summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].key, "Auckland|Los Angeles");  // most connections first
  EXPECT_EQ(summaries[0].connections, 2u);
  EXPECT_EQ(summaries[1].key, "Wellington|Los Angeles");
  EXPECT_EQ(agg.total_connections(), 3u);
  EXPECT_EQ(agg.pair_count(), 2u);
}

TEST(Aggregator, AsPairKeying) {
  LatencyAggregator agg(LatencyAggregator::Mode::kAsPair);
  agg.add(make_sample("A", "B", 9431, 15169, 130));
  const auto summaries = agg.summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].key, "AS9431|AS15169");
}

TEST(Aggregator, CountryPairKeying) {
  LatencyAggregator agg(LatencyAggregator::Mode::kCountryPair);
  agg.add(make_sample("A", "B", 1, 2, 130));
  EXPECT_EQ(agg.summaries()[0].key, "NZ|US");
}

TEST(Aggregator, StatsAreSane) {
  LatencyAggregator agg(LatencyAggregator::Mode::kCityPair);
  for (int i = 1; i <= 99; ++i) agg.add(make_sample("A", "B", 1, 2, i));
  const auto s = agg.summaries()[0];
  EXPECT_EQ(s.connections, 99u);
  EXPECT_EQ(s.min_total.ns, Duration::from_ms(1).ns);
  EXPECT_EQ(s.max_total.ns, Duration::from_ms(99).ns);
  EXPECT_NEAR(static_cast<double>(s.median_total.ns), 50e6, 50e6 * 0.05);
  EXPECT_NEAR(static_cast<double>(s.mean_total.ns), 50e6, 50e6 * 0.05);
  EXPECT_GE(s.p99_total.ns, s.median_total.ns);
}

TEST(Aggregator, UnlocatedBucketsAsQuestionMark) {
  LatencyAggregator agg(LatencyAggregator::Mode::kCityPair);
  auto s = make_sample("Auckland", "X", 1, 2, 100);
  s.server.located = false;
  agg.add(s);
  EXPECT_EQ(agg.summaries()[0].key, "Auckland|?");
}

TEST(Aggregator, ConcurrentAddsAreSafe) {
  LatencyAggregator agg(LatencyAggregator::Mode::kCityPair);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&agg, t] {
      for (int i = 0; i < 5'000; ++i) {
        agg.add(make_sample("city" + std::to_string(t), "dst", 1, 2, 100 + i % 50));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(agg.total_connections(), 20'000u);
  EXPECT_EQ(agg.pair_count(), 4u);
}

}  // namespace
}  // namespace ruru
