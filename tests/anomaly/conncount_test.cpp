#include "anomaly/conncount_detector.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

ConnCountConfig config() {
  ConnCountConfig cfg;
  cfg.window = Duration::from_sec(10.0);
  cfg.alpha = 0.2;
  cfg.k_sigma = 5.0;
  cfg.min_sigma = 2.0;
  cfg.warmup_windows = 3;
  cfg.min_count = 20;
  return cfg;
}

EnrichedSample sample(const std::string& src, const std::string& dst, Timestamp t) {
  EnrichedSample s;
  s.client.city_id = geo_names().intern(src);
  s.server.city_id = geo_names().intern(dst);
  s.total = Duration::from_ms(130);
  s.completed_at = t;
  return s;
}

// Feed `count` connections for the pair inside window `w`.
void feed_window(ConnCountDetector& d, int w, int count, const std::string& src = "Auckland") {
  for (int i = 0; i < count; ++i) {
    d.add(sample(src, "Los Angeles",
                 Timestamp::from_sec(w * 10.0) + Duration::from_ms(i % 9'000)));
  }
}

TEST(ConnCountDetector, SteadyTrafficNoAlerts) {
  ConnCountDetector d(config());
  for (int w = 0; w < 20; ++w) feed_window(d, w, 10);
  std::vector<Alert> alerts;
  d.flush(alerts);
  EXPECT_TRUE(alerts.empty());
}

TEST(ConnCountDetector, DetectsConnectionSurge) {
  ConnCountDetector d(config());
  for (int w = 0; w < 10; ++w) feed_window(d, w, 10);
  feed_window(d, 10, 300);  // 30x surge
  feed_window(d, 11, 10);   // closes the surge window
  std::vector<Alert> alerts;
  d.flush(alerts);
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, "conn-count");
  EXPECT_EQ(alerts[0].subject, "Auckland|Los Angeles");
  EXPECT_GT(alerts[0].score, 5.0);
}

TEST(ConnCountDetector, WarmupSuppressesEarlyAlerts) {
  ConnCountDetector d(config());
  feed_window(d, 0, 500);
  feed_window(d, 1, 1);  // close window 0 during warmup
  std::vector<Alert> alerts;
  d.flush(alerts);
  // Window 0 is within warmup_windows=3 -> silent even though huge.
  for (const auto& a : alerts) EXPECT_NE(a.time.ns, 0);
}

TEST(ConnCountDetector, SmallSpikesBelowMinCountIgnored) {
  auto cfg = config();
  cfg.min_count = 50;
  ConnCountDetector d(cfg);
  for (int w = 0; w < 10; ++w) feed_window(d, w, 2);
  feed_window(d, 10, 30);  // big z-score but below min_count
  feed_window(d, 11, 2);
  std::vector<Alert> alerts;
  d.flush(alerts);
  EXPECT_TRUE(alerts.empty());
}

TEST(ConnCountDetector, PairsAreIndependent) {
  ConnCountDetector d(config());
  for (int w = 0; w < 10; ++w) {
    feed_window(d, w, 10, "Auckland");
    feed_window(d, w, 10, "Wellington");
  }
  feed_window(d, 10, 10, "Auckland");
  feed_window(d, 10, 400, "Wellington");
  feed_window(d, 11, 1, "Auckland");
  std::vector<Alert> alerts;
  d.flush(alerts);
  ASSERT_GE(alerts.size(), 1u);
  for (const auto& a : alerts) {
    EXPECT_EQ(a.subject, "Wellington|Los Angeles");
  }
}

TEST(ConnCountDetector, SurgeNotAbsorbedIntoBaseline) {
  ConnCountDetector d(config());
  for (int w = 0; w < 10; ++w) feed_window(d, w, 10);
  feed_window(d, 10, 300);
  feed_window(d, 11, 300);  // sustained surge keeps alerting
  feed_window(d, 12, 1);
  std::vector<Alert> alerts;
  d.flush(alerts);
  EXPECT_GE(alerts.size(), 2u);
}

}  // namespace
}  // namespace ruru
