#include "anomaly/alert_codec.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

Alert sample_alert() {
  Alert a;
  a.time = Timestamp::from_ms(12'345);
  a.kind = "syn-flood";
  a.subject = "10.1.0.80";
  a.score = 487.5;
  a.detail = "500 SYNs, 3 completions (ratio 0.006) in 1.0s window";
  return a;
}

TEST(AlertCodec, EncodesJsonDocument) {
  const Message m = encode_alert(sample_alert());
  EXPECT_EQ(m.topic(), kAlertTopic);
  ASSERT_EQ(m.frames.size(), 2u);
  const std::string json(m.frames[1].view());
  EXPECT_NE(json.find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"syn-flood\""), std::string::npos);
  EXPECT_NE(json.find("\"subject\":\"10.1.0.80\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":487.5"), std::string::npos);
}

TEST(AlertCodec, RoundTrip) {
  const Alert a = sample_alert();
  const auto d = decode_alert(encode_alert(a).frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, a.kind);
  EXPECT_EQ(d->subject, a.subject);
  EXPECT_EQ(d->detail, a.detail);
  EXPECT_NEAR(d->score, a.score, 1e-6);
  EXPECT_NEAR(d->time.to_sec(), a.time.to_sec(), 1e-3);
}

TEST(AlertCodec, RoundTripWithEscapedCharacters) {
  Alert a = sample_alert();
  a.detail = "line1\nline2\t\"quoted\"";
  const auto d = decode_alert(encode_alert(a).frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->detail, a.detail);
}

TEST(AlertCodec, DecodeRejectsGarbage) {
  EXPECT_FALSE(decode_alert(Frame::from_string("not json")).has_value());
  EXPECT_FALSE(decode_alert(Frame::from_string("{}")).has_value());
  EXPECT_FALSE(decode_alert(Frame()).has_value());
}

}  // namespace
}  // namespace ruru
