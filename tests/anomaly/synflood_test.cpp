#include "anomaly/synflood_detector.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

SynFloodConfig config() {
  SynFloodConfig cfg;
  cfg.window = Duration::from_sec(1.0);
  cfg.min_syns = 100;
  cfg.max_completion_ratio = 0.2;
  return cfg;
}

TEST(SynFloodDetector, DetectsBareSynBurst) {
  SynFloodDetector d(config());
  const Ipv4Address target(10, 1, 0, 80);
  for (int i = 0; i < 500; ++i) {
    d.on_syn(Timestamp::from_ms(i * 2), target);  // 500 SYNs in 1 s
  }
  std::vector<Alert> alerts;
  d.flush(alerts);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, "syn-flood");
  EXPECT_EQ(alerts[0].subject, "10.1.0.80");
  EXPECT_GT(alerts[0].score, 400.0);
}

TEST(SynFloodDetector, HealthyTrafficDoesNotAlert) {
  SynFloodDetector d(config());
  const Ipv4Address target(10, 2, 0, 1);
  for (int i = 0; i < 500; ++i) {
    d.on_syn(Timestamp::from_ms(i * 2), target);
    d.on_completion(Timestamp::from_ms(i * 2 + 1), target);  // every SYN completes
  }
  std::vector<Alert> alerts;
  d.flush(alerts);
  EXPECT_TRUE(alerts.empty());
}

TEST(SynFloodDetector, LowVolumeIgnored) {
  SynFloodDetector d(config());
  const Ipv4Address target(10, 2, 0, 2);
  for (int i = 0; i < 50; ++i) d.on_syn(Timestamp::from_ms(i), target);  // < min_syns
  std::vector<Alert> alerts;
  d.flush(alerts);
  EXPECT_TRUE(alerts.empty());
}

TEST(SynFloodDetector, WindowsCloseAsTimeAdvances) {
  SynFloodDetector d(config());
  const Ipv4Address target(10, 1, 0, 80);
  // Flood in window [0,1); normal in [1,2).
  for (int i = 0; i < 300; ++i) d.on_syn(Timestamp::from_ms(i * 3), target);
  // Crossing into the next window closes the first one.
  d.on_syn(Timestamp::from_ms(1500), target);
  const auto alerts = d.take_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].time.ns, 0);
}

TEST(SynFloodDetector, PerTargetIsolation) {
  SynFloodDetector d(config());
  const Ipv4Address victim(10, 1, 0, 80);
  const Ipv4Address healthy(10, 1, 0, 81);
  for (int i = 0; i < 300; ++i) {
    d.on_syn(Timestamp::from_ms(i * 3), victim);  // flood, no completions
    d.on_syn(Timestamp::from_ms(i * 3), healthy);
    d.on_completion(Timestamp::from_ms(i * 3 + 1), healthy);
  }
  std::vector<Alert> alerts;
  d.flush(alerts);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].subject, victim.to_string());
}

TEST(SynFloodDetector, GapSpanningMultipleWindows) {
  SynFloodDetector d(config());
  const Ipv4Address target(10, 1, 0, 80);
  for (int i = 0; i < 300; ++i) d.on_syn(Timestamp::from_ms(i * 3), target);
  // A long quiet gap: the flood window still closes exactly once.
  d.on_syn(Timestamp::from_sec(100), target);
  EXPECT_EQ(d.take_alerts().size(), 1u);
  EXPECT_TRUE(d.take_alerts().empty());
}

TEST(SynFloodDetector, FlushIsIdempotent) {
  SynFloodDetector d(config());
  const Ipv4Address target(10, 1, 0, 80);
  for (int i = 0; i < 300; ++i) d.on_syn(Timestamp::from_ms(i * 3), target);
  std::vector<Alert> a1, a2;
  d.flush(a1);
  d.flush(a2);
  EXPECT_EQ(a1.size(), 1u);
  EXPECT_TRUE(a2.empty());
}

}  // namespace
}  // namespace ruru
