#include "anomaly/ewma_detector.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace ruru {
namespace {

TEST(EwmaDetector, NoAlertDuringWarmup) {
  EwmaConfig cfg;
  cfg.warmup = 50;
  EwmaDetector d(cfg);
  // Even a wild value during warmup stays silent.
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(d.update(Timestamp::from_ms(i), 100.0).has_value());
  EXPECT_FALSE(d.update(Timestamp::from_ms(21), 100000.0).has_value());
}

TEST(EwmaDetector, DetectsSpikeAfterWarmup) {
  EwmaConfig cfg;
  cfg.warmup = 100;
  cfg.k_sigma = 4.0;
  EwmaDetector d(cfg);
  Pcg32 rng(5);
  for (int i = 0; i < 500; ++i) {
    const double v = 130.0 + rng.normal(0.0, 3.0);
    ASSERT_FALSE(d.update(Timestamp::from_ms(i), v).has_value()) << "false positive at " << i;
  }
  // The firewall glitch: +4000 ms.
  const auto alert = d.update(Timestamp::from_ms(1000), 4130.0);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, "latency-spike");
  EXPECT_GT(alert->score, 4.0);
  EXPECT_EQ(alert->time.ns, Timestamp::from_ms(1000).ns);
}

TEST(EwmaDetector, AnomaliesDontPoisonBaseline) {
  EwmaConfig cfg;
  cfg.warmup = 50;
  EwmaDetector d(cfg);
  for (int i = 0; i < 200; ++i) d.update(Timestamp::from_ms(i), 100.0);
  const double mean_before = d.mean();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(d.update(Timestamp::from_ms(300 + i), 5000.0).has_value());
  }
  EXPECT_DOUBLE_EQ(d.mean(), mean_before);  // spikes rejected from baseline
}

TEST(EwmaDetector, TracksSlowDrift) {
  EwmaConfig cfg;
  cfg.warmup = 50;
  cfg.alpha = 0.05;
  EwmaDetector d(cfg);
  // Latency drifts from 100 to 150 over 2000 samples: no alerts, and the
  // baseline follows.
  for (int i = 0; i < 2000; ++i) {
    const double v = 100.0 + 50.0 * (static_cast<double>(i) / 2000.0);
    EXPECT_FALSE(d.update(Timestamp::from_ms(i), v).has_value()) << i;
  }
  EXPECT_NEAR(d.mean(), 150.0, 5.0);
}

TEST(EwmaDetector, VarianceFloorPreventsZeroSigmaBlowups) {
  EwmaConfig cfg;
  cfg.warmup = 10;
  cfg.min_sigma_ms = 0.5;
  EwmaDetector d(cfg);
  for (int i = 0; i < 100; ++i) d.update(Timestamp::from_ms(i), 100.0);  // zero variance
  EXPECT_GE(d.stddev(), 0.5);
  // +1 ms on a perfectly flat series: not 4 "sigma" with the floor.
  EXPECT_FALSE(d.update(Timestamp::from_ms(200), 101.0).has_value());
  // But +10 ms is.
  EXPECT_TRUE(d.update(Timestamp::from_ms(201), 110.0).has_value());
}

TEST(EwmaDetector, SamplesCounted) {
  EwmaDetector d;
  d.update(Timestamp{}, 1.0);
  d.update(Timestamp{}, 1.0);
  EXPECT_EQ(d.samples(), 2u);
}

}  // namespace
}  // namespace ruru
