#include "anomaly/robust_detector.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace ruru {
namespace {

TEST(RobustDetector, SilentDuringWarmup) {
  RobustConfig cfg;
  cfg.min_samples = 64;
  RobustMadDetector d(cfg);
  for (int i = 0; i < 63; ++i) {
    EXPECT_FALSE(d.update(Timestamp::from_ms(i), 100.0 + (i % 5)).has_value());
  }
}

TEST(RobustDetector, DetectsOutlierAfterWarmup) {
  RobustMadDetector d;
  Pcg32 rng(6);
  for (int i = 0; i < 300; ++i) {
    ASSERT_FALSE(d.update(Timestamp::from_ms(i), 128.0 + rng.normal(0, 2.0)).has_value()) << i;
  }
  const auto alert = d.update(Timestamp::from_ms(500), 4128.0);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, "latency-outlier");
  EXPECT_GT(alert->score, 6.0);
}

TEST(RobustDetector, MedianAndSigmaTrackWindow) {
  RobustConfig cfg;
  cfg.window = 101;
  cfg.min_samples = 10;
  RobustMadDetector d(cfg);
  for (int i = 0; i < 101; ++i) d.update(Timestamp::from_ms(i), static_cast<double>(i));
  EXPECT_NEAR(d.median(), 50.0, 1.0);
  EXPECT_GT(d.robust_sigma(), 10.0);  // wide spread
}

TEST(RobustDetector, ToleratesHeavyContamination) {
  // 30% of samples are moderately high: MAD stays anchored at the bulk,
  // EWMA-style mean/variance would have been dragged.
  RobustConfig cfg;
  cfg.k = 6.0;
  RobustMadDetector d(cfg);
  Pcg32 rng(7);
  int alerts = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.chance(0.3) ? 200.0 : 100.0 + rng.normal(0, 2.0);
    if (d.update(Timestamp::from_ms(i), v).has_value()) ++alerts;
  }
  // Median stays near 100 despite contamination.
  EXPECT_NEAR(d.median(), 100.0, 10.0);
  // A true extreme still fires.
  EXPECT_TRUE(d.update(Timestamp::from_ms(2000), 5000.0).has_value());
}

TEST(RobustDetector, OutliersNotAdmittedToWindow) {
  RobustConfig cfg;
  cfg.min_samples = 32;
  RobustMadDetector d(cfg);
  for (int i = 0; i < 100; ++i) d.update(Timestamp::from_ms(i), 100.0 + (i % 3));
  const double med_before = d.median();
  for (int i = 0; i < 50; ++i) d.update(Timestamp::from_ms(200 + i), 9000.0);
  EXPECT_NEAR(d.median(), med_before, 2.0);
}

TEST(RobustDetector, MadFloorProtectsFlatSeries) {
  RobustConfig cfg;
  cfg.min_samples = 16;
  cfg.min_mad_ms = 0.25;
  cfg.k = 6.0;
  RobustMadDetector d(cfg);
  for (int i = 0; i < 64; ++i) d.update(Timestamp::from_ms(i), 100.0);  // MAD == 0
  EXPECT_GE(d.robust_sigma(), 0.25);
  EXPECT_FALSE(d.update(Timestamp::from_ms(100), 101.0).has_value());
  EXPECT_TRUE(d.update(Timestamp::from_ms(101), 103.0).has_value());
}

}  // namespace
}  // namespace ruru
