#include "anomaly/periodic_detector.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace ruru {
namespace {

PeriodicConfig day_config() {
  PeriodicConfig cfg;
  cfg.period = Duration::from_sec(86'400.0);
  cfg.bucket = Duration::from_sec(60.0);
  cfg.spike_factor = 3.0;
  cfg.min_periods = 2;
  cfg.min_samples = 8;
  return cfg;
}

// Simulate `days` days of traffic: normal flows ~130 ms all day, plus a
// +4000 ms window at `glitch_offset` each day.
void feed_days(PeriodicSpikeDetector& d, int days, Duration glitch_offset, Duration glitch_width,
               std::uint64_t seed) {
  Pcg32 rng(seed);
  for (int day = 0; day < days; ++day) {
    const std::int64_t day_ns = static_cast<std::int64_t>(day) * 86'400'000'000'000;
    // 2000 normal flows spread across the day.
    for (int i = 0; i < 2000; ++i) {
      const Timestamp t{day_ns + static_cast<std::int64_t>(rng.uniform(0, 86'400.0) * 1e9)};
      d.add(t, Duration::from_ms(125 + static_cast<std::int64_t>(rng.bounded(10))));
    }
    // 30 glitched flows inside the window.
    if (glitch_width.ns <= 0) continue;
    for (int i = 0; i < 30; ++i) {
      const Timestamp t{day_ns + glitch_offset.ns +
                        static_cast<std::int64_t>(rng.uniform(0, glitch_width.to_sec()) * 1e9)};
      d.add(t, Duration::from_ms(4130));
    }
  }
}

TEST(PeriodicDetector, FindsNightlyFirewallWindow) {
  PeriodicSpikeDetector d(day_config());
  const Duration offset = Duration::from_sec(3.0 * 3600);  // 03:00 each night
  feed_days(d, 3, offset, Duration::from_sec(30.0), 99);

  const auto findings = d.findings();
  ASSERT_FALSE(findings.empty());
  // The finding's bucket must cover 03:00.
  bool found = false;
  for (const auto& f : findings) {
    if (f.offset_in_period.ns <= offset.ns &&
        offset.ns < f.offset_in_period.ns + Duration::from_sec(60.0).ns) {
      found = true;
      EXPECT_GE(f.periods_seen, 2);
      EXPECT_GT(f.bucket_median.ns, Duration::from_ms(4000).ns);
      EXPECT_LT(f.baseline_median.ns, Duration::from_ms(200).ns);
    }
  }
  EXPECT_TRUE(found);
  // And no more than a couple of buckets flagged (the glitch is 30s wide).
  EXPECT_LE(findings.size(), 2u);
}

TEST(PeriodicDetector, OneOffSpikeIsNotPeriodic) {
  PeriodicSpikeDetector d(day_config());
  // 3 days of normal traffic...
  feed_days(d, 3, Duration::from_sec(0), Duration::from_sec(0), 5);
  // ...plus a single large burst on day 1 only (not recurring).
  const std::int64_t day1 = 86'400'000'000'000;
  for (std::int64_t i = 0; i < 50; ++i) {
    d.add(Timestamp{day1 + 7'200'000'000'000 + i * 1'000'000'000}, Duration::from_ms(4130));
  }
  for (const auto& f : d.findings()) {
    // min_periods=2: the 02:00 bucket of day 1 alone must not qualify.
    EXPECT_NE(f.offset_in_period.ns / 3'600'000'000'000, 2) << "one-off flagged as periodic";
  }
}

TEST(PeriodicDetector, QuietDetectorHasNoFindings) {
  PeriodicSpikeDetector d(day_config());
  EXPECT_TRUE(d.findings().empty());
  EXPECT_TRUE(d.alerts().empty());
  feed_days(d, 2, Duration::from_sec(0), Duration::from_sec(0), 11);
  EXPECT_TRUE(d.findings().empty());
}

TEST(PeriodicDetector, MinSamplesSuppressesThinBuckets) {
  auto cfg = day_config();
  cfg.min_samples = 100;  // higher than the 30 glitched flows per bucket
  PeriodicSpikeDetector d(cfg);
  feed_days(d, 3, Duration::from_sec(3.0 * 3600), Duration::from_sec(30.0), 42);
  // The glitch bucket holds ~90 samples (30/day x 3 days) + background;
  // min_samples=100 filters depends on background... use a stricter bound:
  for (const auto& f : d.findings()) {
    EXPECT_GE(f.samples, 100u);
  }
}

TEST(PeriodicDetector, AlertsCarryFindingDetails) {
  PeriodicSpikeDetector d(day_config());
  feed_days(d, 3, Duration::from_sec(3.0 * 3600), Duration::from_sec(30.0), 99);
  const auto alerts = d.alerts();
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].kind, "periodic-glitch");
  EXPECT_GT(alerts[0].score, 3.0);
  EXPECT_NE(alerts[0].detail.find("recurring spike"), std::string::npos);
}

TEST(PeriodicDetector, BucketCountCoversPeriod) {
  PeriodicSpikeDetector d(day_config());
  EXPECT_EQ(d.bucket_count(), 1440u);  // 24h / 60s
}

}  // namespace
}  // namespace ruru
