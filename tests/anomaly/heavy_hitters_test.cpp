#include "anomaly/heavy_hitters.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/random.hpp"

namespace ruru {
namespace {

TEST(SpaceSaving, ExactWhenUnderCapacity) {
  SpaceSaving<std::string> ss(10);
  for (int i = 0; i < 5; ++i) ss.add("a");
  for (int i = 0; i < 3; ++i) ss.add("b");
  ss.add("c");
  const auto top = ss.top(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[2].key, "c");
  EXPECT_EQ(ss.total(), 9u);
}

TEST(SpaceSaving, EvictsMinimumAndTracksError) {
  SpaceSaving<int> ss(2);
  ss.add(1);
  ss.add(1);
  ss.add(2);
  // Table full {1:2, 2:1}; adding 3 evicts key 2 (min count 1).
  ss.add(3);
  const auto top = ss.top(2);
  ASSERT_EQ(top.size(), 2u);
  // Both survivors have count 2 (tie order unspecified); key 2 is gone.
  const SpaceSaving<int>::Entry* e1 = nullptr;
  const SpaceSaving<int>::Entry* e3 = nullptr;
  for (const auto& e : top) {
    ASSERT_NE(e.key, 2);
    if (e.key == 1) e1 = &e;
    if (e.key == 3) e3 = &e;
  }
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e3, nullptr);
  EXPECT_EQ(e1->count, 2u);
  EXPECT_EQ(e1->error, 0u);
  EXPECT_EQ(e3->count, 2u);  // inherited min + 1
  EXPECT_EQ(e3->error, 1u);  // could be overestimated by the min
}

TEST(SpaceSaving, HeavyHitterAlwaysSurvives) {
  // Guarantee: any key with true count > N/capacity stays in the table.
  Pcg32 rng(42);
  SpaceSaving<int> ss(64);
  std::map<int, std::uint64_t> truth;
  const int kHeavy = 7;
  for (int i = 0; i < 100'000; ++i) {
    // 20% heavy key, rest spread across 10k noise keys.
    const int key = rng.chance(0.2) ? kHeavy : 1000 + static_cast<int>(rng.bounded(10'000));
    ss.add(key);
    ++truth[key];
  }
  const auto top = ss.top(1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, kHeavy);
  // Count bounds: true <= count and count - error <= true.
  EXPECT_GE(top[0].count, truth[kHeavy]);
  EXPECT_LE(top[0].count - top[0].error, truth[kHeavy]);
}

TEST(SpaceSaving, CertainAboveHasNoFalsePositives) {
  Pcg32 rng(7);
  SpaceSaving<int> ss(32);
  std::map<int, std::uint64_t> truth;
  for (int i = 0; i < 50'000; ++i) {
    int key;
    const double u = rng.uniform();
    if (u < 0.3) {
      key = 1;
    } else if (u < 0.5) {
      key = 2;
    } else {
      key = 100 + static_cast<int>(rng.bounded(5'000));
    }
    ss.add(key);
    ++truth[key];
  }
  for (const auto& e : ss.certain_above(5'000)) {
    EXPECT_GE(truth[e.key], 5'000u) << "false positive key " << e.key;
  }
  // And the genuinely heavy keys are reported.
  bool has1 = false, has2 = false;
  for (const auto& e : ss.certain_above(5'000)) {
    has1 |= e.key == 1;
    has2 |= e.key == 2;
  }
  EXPECT_TRUE(has1);
  EXPECT_TRUE(has2);
}

TEST(SpaceSaving, SizeBounded) {
  SpaceSaving<int> ss(16);
  for (int i = 0; i < 10'000; ++i) ss.add(i);
  EXPECT_EQ(ss.size(), 16u);
  EXPECT_EQ(ss.capacity(), 16u);
  EXPECT_EQ(ss.total(), 10'000u);
}

TEST(SpaceSaving, WeightedAdds) {
  SpaceSaving<std::string> ss(4);
  ss.add("bytes-from-a", 1'500);
  ss.add("bytes-from-b", 64);
  ss.add("bytes-from-a", 9'000);
  const auto top = ss.top(1);
  EXPECT_EQ(top[0].key, "bytes-from-a");
  EXPECT_EQ(top[0].count, 10'500u);
}

TEST(SpaceSaving, ZeroCapacityClampsToOne) {
  SpaceSaving<int> ss(0);
  ss.add(1);
  ss.add(2);
  EXPECT_EQ(ss.size(), 1u);
}

}  // namespace
}  // namespace ruru
