#include "baseline/tcptrace.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"

namespace ruru {
namespace {

class TtHarness {
 public:
  explicit TtHarness(TcptraceConfig cfg = {}) : estimator_(cfg) {}

  std::optional<RttSample> feed(const TcpFrameSpec& spec, Timestamp t) {
    const auto frame = build_tcp_frame(spec);
    PacketView view;
    EXPECT_EQ(parse_packet(frame, view), ParseStatus::kOk);
    return estimator_.process(view, t);
  }
  TcptraceEstimator& estimator() { return estimator_; }

 private:
  TcptraceEstimator estimator_;
};

const Ipv4Address kClient(10, 1, 0, 1);
const Ipv4Address kServer(10, 2, 0, 1);

TcpFrameSpec data_pkt(bool c2s, std::uint32_t seq, std::uint32_t ack, std::size_t len,
                      std::uint8_t flags = TcpFlags::kAck) {
  TcpFrameSpec s;
  s.src_ip = c2s ? kClient : kServer;
  s.dst_ip = c2s ? kServer : kClient;
  s.src_port = c2s ? 40'000 : 443;
  s.dst_port = c2s ? 443 : 40'000;
  s.seq = seq;
  s.ack = ack;
  s.payload_length = len;
  s.flags = flags;
  return s;
}

TEST(Tcptrace, MatchesDataSegmentWithAck) {
  TtHarness h;
  // Client sends 100 bytes at seq 1000, t=0.
  EXPECT_FALSE(h.feed(data_pkt(true, 1000, 500, 100), Timestamp::from_ms(0)).has_value());
  // Server acks 1100 at t=128.
  const auto s = h.feed(data_pkt(false, 500, 1100, 0), Timestamp::from_ms(128));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->rtt.ns, Duration::from_ms(128).ns);
  EXPECT_TRUE(s->stimulus.src == IpAddress(kClient));
}

TEST(Tcptrace, SynCounsumesOneSequenceNumber) {
  TtHarness h;
  TcpFrameSpec syn = data_pkt(true, 1000, 0, 0, TcpFlags::kSyn);
  EXPECT_FALSE(h.feed(syn, Timestamp::from_ms(0)).has_value());
  // SYN-ACK acks 1001.
  const auto s = h.feed(data_pkt(false, 500, 1001, 0, TcpFlags::kSyn | TcpFlags::kAck),
                        Timestamp::from_ms(130));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->rtt.ns, Duration::from_ms(130).ns);
}

TEST(Tcptrace, KarnRuleInvalidatesRetransmissions) {
  TtHarness h;
  h.feed(data_pkt(true, 1000, 0, 100), Timestamp::from_ms(0));
  // Retransmission of the same segment.
  h.feed(data_pkt(true, 1000, 0, 100), Timestamp::from_ms(200));
  // The eventual ack is ambiguous -> no sample.
  EXPECT_FALSE(h.feed(data_pkt(false, 500, 1100, 0), Timestamp::from_ms(250)).has_value());
  EXPECT_EQ(h.estimator().stats().karn_invalidations, 1u);
  EXPECT_EQ(h.estimator().stats().samples, 0u);
}

TEST(Tcptrace, OnlyOneOutstandingSamplePerDirection) {
  TtHarness h;
  h.feed(data_pkt(true, 1000, 0, 100), Timestamp::from_ms(0));
  // A second segment while the first is outstanding is not measured.
  h.feed(data_pkt(true, 1100, 0, 100), Timestamp::from_ms(5));
  // Cumulative ack covers both: one sample, for the first segment.
  const auto s = h.feed(data_pkt(false, 500, 1200, 0), Timestamp::from_ms(128));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->rtt.ns, Duration::from_ms(128).ns);
  EXPECT_EQ(h.estimator().stats().samples, 1u);
}

TEST(Tcptrace, BothDirectionsMeasuredIndependently) {
  TtHarness h;
  h.feed(data_pkt(true, 1000, 500, 100), Timestamp::from_ms(0));     // client data
  h.feed(data_pkt(false, 500, 1100, 200), Timestamp::from_ms(128));  // server acks + data
  // Client acks the server's 200 bytes 5 ms later.
  const auto s = h.feed(data_pkt(true, 1100, 700, 0), Timestamp::from_ms(133));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->rtt.ns, Duration::from_ms(5).ns);
  EXPECT_TRUE(s->stimulus.src == IpAddress(kServer));
  EXPECT_EQ(h.estimator().stats().samples, 2u);
}

TEST(Tcptrace, PartialAckDoesNotMatch) {
  TtHarness h;
  h.feed(data_pkt(true, 1000, 0, 100), Timestamp::from_ms(0));
  // Ack below expected_ack (1100): not a match.
  EXPECT_FALSE(h.feed(data_pkt(false, 500, 1050, 0), Timestamp::from_ms(50)).has_value());
  // Full ack matches.
  EXPECT_TRUE(h.feed(data_pkt(false, 500, 1100, 0), Timestamp::from_ms(60)).has_value());
}

TEST(Tcptrace, PureAcksAreNotStimuli) {
  TtHarness h;
  // A dataless ACK consumes no sequence space; nothing to measure later.
  h.feed(data_pkt(true, 1000, 500, 0), Timestamp::from_ms(0));
  EXPECT_FALSE(h.feed(data_pkt(false, 500, 1000, 0), Timestamp::from_ms(20)).has_value());
  EXPECT_EQ(h.estimator().stats().samples, 0u);
}

TEST(Tcptrace, RstClearsFlowState) {
  TtHarness h;
  h.feed(data_pkt(true, 1000, 0, 100), Timestamp::from_ms(0));
  EXPECT_EQ(h.estimator().entries(), 1u);
  h.feed(data_pkt(true, 1100, 0, 0, TcpFlags::kRst), Timestamp::from_ms(10));
  EXPECT_EQ(h.estimator().entries(), 0u);
}

TEST(Tcptrace, StateIsPerFlowNotPerPacket) {
  TtHarness h;
  // 50 segments on ONE flow -> 1 entry (contrast with pping).
  for (int i = 0; i < 50; ++i) {
    h.feed(data_pkt(true, 1000 + static_cast<std::uint32_t>(i) * 100, 0, 100),
           Timestamp::from_ms(i));
  }
  EXPECT_EQ(h.estimator().entries(), 1u);
}

TEST(Tcptrace, SequenceWraparoundHandled) {
  TtHarness h;
  // Segment crossing the 2^32 boundary.
  h.feed(data_pkt(true, 0xFFFFFF00u, 0, 0x200), Timestamp::from_ms(0));
  const auto s = h.feed(data_pkt(false, 500, 0x100, 0), Timestamp::from_ms(100));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->rtt.ns, Duration::from_ms(100).ns);
}

}  // namespace
}  // namespace ruru
