#include "baseline/pping.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"

namespace ruru {
namespace {

class PpingHarness {
 public:
  std::optional<RttSample> feed(const TcpFrameSpec& spec, Timestamp t) {
    const auto frame = build_tcp_frame(spec);
    PacketView view;
    EXPECT_EQ(parse_packet(frame, view), ParseStatus::kOk);
    return estimator_.process(view, t);
  }
  PpingEstimator& estimator() { return estimator_; }

 private:
  PpingEstimator estimator_;
};

TcpFrameSpec pkt(Ipv4Address src, std::uint16_t sp, Ipv4Address dst, std::uint16_t dp,
                 std::uint32_t tsval, std::uint32_t tsecr, std::uint8_t flags = TcpFlags::kAck) {
  TcpFrameSpec s;
  s.src_ip = src;
  s.dst_ip = dst;
  s.src_port = sp;
  s.dst_port = dp;
  s.flags = flags;
  s.with_timestamps = true;
  s.ts_val = tsval;
  s.ts_ecr = tsecr;
  return s;
}

const Ipv4Address kClient(10, 1, 0, 1);
const Ipv4Address kServer(10, 2, 0, 1);

TEST(Pping, MatchesTimestampEcho) {
  PpingHarness h;
  // Client -> server with TSval 100 at t=0.
  EXPECT_FALSE(h.feed(pkt(kClient, 40'000, kServer, 443, 100, 0), Timestamp::from_ms(0)).has_value());
  // Server -> client echoing 100 at t=128: one external half-RTT sample.
  const auto s = h.feed(pkt(kServer, 443, kClient, 40'000, 900, 100), Timestamp::from_ms(128));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->rtt.ns, Duration::from_ms(128).ns);
  // The stimulus was the client's packet (heading to the server).
  EXPECT_TRUE(s->stimulus.src == IpAddress(kClient));
  EXPECT_TRUE(s->stimulus.dst == IpAddress(kServer));
  EXPECT_EQ(s->at.ns, Timestamp::from_ms(128).ns);
}

TEST(Pping, ProducesSamplesInBothDirections) {
  PpingHarness h;
  h.feed(pkt(kClient, 1, kServer, 2, 100, 0), Timestamp::from_ms(0));
  const auto ext = h.feed(pkt(kServer, 2, kClient, 1, 500, 100), Timestamp::from_ms(128));
  ASSERT_TRUE(ext.has_value());
  // Client acks the server's tsval 500 five ms later: internal half.
  const auto in = h.feed(pkt(kClient, 1, kServer, 2, 101, 500), Timestamp::from_ms(133));
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->rtt.ns, Duration::from_ms(5).ns);
  EXPECT_TRUE(in->stimulus.src == IpAddress(kServer));
}

TEST(Pping, EachTsvalMatchedOnce) {
  PpingHarness h;
  h.feed(pkt(kClient, 1, kServer, 2, 100, 0), Timestamp::from_ms(0));
  ASSERT_TRUE(h.feed(pkt(kServer, 2, kClient, 1, 500, 100), Timestamp::from_ms(50)).has_value());
  // A second echo of the same tsval (delayed ack) yields no sample.
  EXPECT_FALSE(h.feed(pkt(kServer, 2, kClient, 1, 501, 100), Timestamp::from_ms(60)).has_value());
}

TEST(Pping, RetransmissionDoesNotRefreshTimestamp) {
  PpingHarness h;
  h.feed(pkt(kClient, 1, kServer, 2, 100, 0), Timestamp::from_ms(0));
  // Retransmission of the same tsval at t=30.
  h.feed(pkt(kClient, 1, kServer, 2, 100, 0), Timestamp::from_ms(30));
  const auto s = h.feed(pkt(kServer, 2, kClient, 1, 500, 100), Timestamp::from_ms(128));
  ASSERT_TRUE(s.has_value());
  // Measured from the FIRST transmission.
  EXPECT_EQ(s->rtt.ns, Duration::from_ms(128).ns);
}

TEST(Pping, PacketsWithoutTimestampsIgnored) {
  PpingHarness h;
  TcpFrameSpec plain = pkt(kClient, 1, kServer, 2, 0, 0);
  plain.with_timestamps = false;
  EXPECT_FALSE(h.feed(plain, Timestamp::from_ms(0)).has_value());
  EXPECT_EQ(h.estimator().stats().with_timestamps, 0u);
  EXPECT_EQ(h.estimator().stats().packets, 1u);
}

TEST(Pping, DistinctFlowsDoNotCrossMatch) {
  PpingHarness h;
  h.feed(pkt(kClient, 1, kServer, 2, 100, 0), Timestamp::from_ms(0));
  // Same tsval on a different flow must not match.
  const auto s =
      h.feed(pkt(kServer, 9, Ipv4Address(10, 1, 0, 99), 8, 500, 100), Timestamp::from_ms(50));
  EXPECT_FALSE(s.has_value());
}

TEST(Pping, StateGrowsPerPacketUnlikeRuru) {
  PpingHarness h;
  // 100 packets with distinct tsvals -> ~100 entries (per-packet state).
  for (int i = 0; i < 100; ++i) {
    h.feed(pkt(kClient, 1, kServer, 2, 1000 + static_cast<std::uint32_t>(i), 0),
           Timestamp::from_ms(i));
  }
  EXPECT_GE(h.estimator().entries(), 100u);
  EXPECT_GE(h.estimator().stats().peak_entries, 100u);
}

TEST(Pping, StaleSweepBoundsMemory) {
  PpingConfig cfg;
  cfg.max_entries = 50;
  cfg.stale_after = Duration::from_ms(100);
  PpingEstimator est(cfg);
  for (int i = 0; i < 200; ++i) {
    TcpFrameSpec s = pkt(kClient, 1, kServer, 2, static_cast<std::uint32_t>(i + 1), 0);
    const auto frame = build_tcp_frame(s);
    PacketView view;
    ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
    est.process(view, Timestamp::from_ms(i * 10));  // entries age out
  }
  EXPECT_LE(est.entries(), 60u);
  EXPECT_GT(est.stats().stale_evictions, 0u);
}

}  // namespace
}  // namespace ruru
