// End-to-end in-flow RTT: a long-lived transfer's mid-flow latency
// shift — invisible to handshake-only measurement — lands in the TSDB's
// "inflow_ms" series, while the handshake output stays exactly what the
// feature-off pipeline produces.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "capture/scenarios.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "geo/world.hpp"

namespace ruru {
namespace {

World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto w = build_world(specs);
  EXPECT_TRUE(w.ok()) << w.error();
  return std::move(w).value();
}

PipelineConfig inflow_config(bool enabled) {
  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.enrichment_threads = 1;
  cfg.inflow_rtt = enabled;
  cfg.inflow_min_interval_us = 0;  // keep every sample: the test inspects window means
  return cfg;
}

TEST(InflowPipeline, MidFlowShiftVisibleInTsdbHandshakesUntouched) {
  const World world = scenario_world();
  const Timestamp shift_at = Timestamp::from_sec(5.0);
  const Duration shift_extra = Duration::from_ms(80);

  auto run = [&](bool enabled) {
    auto model = scenarios::inflow_shift(17, 20.0, Duration::from_sec(10.0), shift_at,
                                         shift_extra);
    auto pipeline = std::make_unique<RuruPipeline>(inflow_config(enabled), world.geo, world.as);
    pipeline->start();
    replay_scenario(*pipeline, model);
    pipeline->finish();
    return pipeline;
  };

  const auto on = run(true);
  const auto off = run(false);

  // The long transfer's external half before and after the shift, as the
  // in-flow kernel measured it at the tap.  The route tags pin it to the
  // Auckland -> Los Angeles series the scenario set up.
  const TagSet route = TagSet{}
                           .add("src_city", "Auckland")
                           .add("dst_city", "Los Angeles")
                           .add("half", "external");
  const auto before =
      on->tsdb().aggregate("inflow_ms", route, Timestamp{}, shift_at - Duration::from_ms(250));
  const auto after = on->tsdb().aggregate("inflow_ms", route, shift_at + Duration::from_ms(250),
                                          Timestamp::from_sec(1000));
  ASSERT_GT(before.count, 10u);
  ASSERT_GT(after.count, 10u);
  // External half grew by ~80 ms mid-flow; allow generous slack for the
  // exchange straddling the boundary.
  EXPECT_GT(after.mean - before.mean, 40.0);
  EXPECT_LT(after.mean - before.mean, 120.0);

  // The internal half did not move.
  const TagSet internal_route = TagSet{}
                                    .add("src_city", "Auckland")
                                    .add("dst_city", "Los Angeles")
                                    .add("half", "internal");
  const auto in_before = on->tsdb().aggregate("inflow_ms", internal_route, Timestamp{},
                                              shift_at - Duration::from_ms(250));
  const auto in_after = on->tsdb().aggregate("inflow_ms", internal_route,
                                             shift_at + Duration::from_ms(250),
                                             Timestamp::from_sec(1000));
  ASSERT_GT(in_before.count, 0u);
  ASSERT_GT(in_after.count, 0u);
  EXPECT_LT(std::abs(in_after.mean - in_before.mean), 5.0);

  // Handshake output is identical with the kernel on or off: same sample
  // count, same totals, bit-for-bit equal aggregates.
  EXPECT_EQ(on->summary().tracker.samples_emitted, off->summary().tracker.samples_emitted);
  const auto total_on =
      on->tsdb().aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1000));
  const auto total_off =
      off->tsdb().aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1000));
  ASSERT_GT(total_on.count, 0u);
  EXPECT_EQ(total_on.count, total_off.count);
  EXPECT_DOUBLE_EQ(total_on.mean, total_off.mean);
  EXPECT_DOUBLE_EQ(total_on.max, total_off.max);

  // With the kernel off, no in-flow series exists at all.
  const auto none =
      off->tsdb().aggregate("inflow_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1000));
  EXPECT_EQ(none.count, 0u);
}

TEST(InflowPipeline, OneSidedSamplesStayOutOfHandshakeSeries) {
  // Plain background traffic with the kernel on: in-flow samples flow to
  // their own measurements and never pollute the handshake aggregates.
  const World world = scenario_world();
  auto model = scenarios::transpacific(23, 80.0, Duration::from_sec(2.0));
  RuruPipeline pipeline(inflow_config(true), world.geo, world.as);
  pipeline.start();
  replay_scenario(pipeline, model);
  pipeline.finish();

  std::uint64_t expected = 0;
  for (const auto& t : model.truth()) {
    if (t.handshake_completes) ++expected;
  }
  // total_ms counts exactly the completed handshakes, in-flow samples land
  // in inflow_ms.
  const auto total =
      pipeline.tsdb().aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1000));
  EXPECT_EQ(total.count, expected);
  const auto inflow =
      pipeline.tsdb().aggregate("inflow_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1000));
  EXPECT_GT(inflow.count, expected);  // continuous: many samples per flow
}

}  // namespace
}  // namespace ruru
