// Flight-recorder end-to-end (ISSUE 8): sampled handshakes leave a
// connected nic -> worker -> flow -> bus -> enrich -> tsdb span chain in
// the rings, tracing never changes the measurement output, and the
// Chrome JSON export lands on disk at pipeline finish.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "capture/scenarios.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "geo/world.hpp"
#include "obs/trace.hpp"

namespace ruru {
namespace {

World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto w = build_world(specs);
  EXPECT_TRUE(w.ok()) << w.error();
  return std::move(w).value();
}

using SampleFacts = std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>;

std::vector<SampleFacts> run_and_collect(const World& world, std::uint32_t sample_n) {
  PipelineConfig cfg;
  cfg.num_queues = 2;
  cfg.queue_depth = 8192;
  cfg.enrichment_threads = 2;
  cfg.flow_table_capacity = 1 << 14;
  cfg.trace_sample_n = sample_n;
  cfg.trace_ring_capacity = 1 << 15;
  RuruPipeline pipeline(cfg, world.geo, world.as);

  std::vector<SampleFacts> samples;
  std::mutex mu;
  pipeline.add_enriched_sink([&](const EnrichedSample& s) {
    std::lock_guard lock(mu);
    samples.emplace_back(s.started_at.ns, s.completed_at.ns, s.internal.ns, s.external.ns);
  });

  pipeline.start();
  auto model = scenarios::transpacific(0xF162, 1500.0, Duration::from_sec(3.0));
  replay_scenario_sharded(pipeline, model, /*retry_drops=*/true);
  pipeline.finish();
  std::sort(samples.begin(), samples.end());
  return samples;
}

#if RURU_TRACE
TEST(PipelineTrace, SampledFlowsLeaveConnectedSpanChains) {
  const World world = scenario_world();
  PipelineConfig cfg;
  cfg.num_queues = 2;
  cfg.queue_depth = 8192;
  cfg.enrichment_threads = 2;
  cfg.flow_table_capacity = 1 << 14;
  // Dense sampling (every 4th hash value) so the 3s replay yields
  // several traced lifecycles even after RSS skew.
  cfg.trace_sample_n = 4;
  cfg.trace_ring_capacity = 1 << 15;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(0xF162, 1500.0, Duration::from_sec(3.0));
  replay_scenario_sharded(pipeline, model, /*retry_drops=*/true);
  pipeline.finish();

  ASSERT_GT(pipeline.summary().tracker.samples_emitted, 0u);
  ASSERT_TRUE(pipeline.tracer().enabled());
  EXPECT_GT(pipeline.tracer().events_emitted(), 0u);

  std::vector<std::pair<std::string, std::vector<obs::TraceEvent>>> rings;
  pipeline.tracer().snapshot_all(rings);
  ASSERT_FALSE(rings.empty());

  // Group per-packet events by trace id; stage-level events (id 0) are
  // ignored here.
  std::map<std::uint32_t, std::set<obs::TraceStage>> stages_by_id;
  for (const auto& [name, events] : rings) {
    for (const obs::TraceEvent& e : events) {
      if (e.trace_id != 0) stages_by_id[e.trace_id].insert(e.stage);
    }
  }
  ASSERT_FALSE(stages_by_id.empty()) << "no sampled packets at 1-in-4";

  // At least one sampled handshake completed end to end: its id shows
  // up at every stage of the journey.
  const std::set<obs::TraceStage> full = {
      obs::TraceStage::kNic,  obs::TraceStage::kWorker, obs::TraceStage::kFlow,
      obs::TraceStage::kBus,  obs::TraceStage::kEnrich, obs::TraceStage::kTsdb,
  };
  bool found_full_chain = false;
  for (const auto& [id, stages] : stages_by_id) {
    if (std::includes(stages.begin(), stages.end(), full.begin(), full.end())) {
      found_full_chain = true;
      break;
    }
  }
  EXPECT_TRUE(found_full_chain)
      << "no trace id traversed all six stages (" << stages_by_id.size()
      << " sampled ids seen)";

  // Every traced id that produced a latency sample reached enrichment
  // on the same id — the chain is connected, not six disjoint samplers.
  for (const auto& [id, stages] : stages_by_id) {
    if (stages.count(obs::TraceStage::kTsdb) != 0) {
      EXPECT_NE(stages.count(obs::TraceStage::kEnrich), 0u)
          << "tsdb span without enrich span for id " << id;
    }
  }
}

TEST(PipelineTrace, ExportsChromeJsonOnFinish) {
  const World world = scenario_world();
  const std::string path = ::testing::TempDir() + "/ruru_trace_test.json";
  std::remove(path.c_str());

  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.enrichment_threads = 1;
  cfg.trace_sample_n = 4;
  cfg.trace_ring_capacity = 1 << 14;
  cfg.trace_json_path = path;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(0xF162, 1000.0, Duration::from_sec(2.0));
  replay_scenario(pipeline, model, /*retry_drops=*/true);
  pipeline.finish();

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "trace JSON not written to " << path;
  std::string json((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) json.pop_back();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  std::remove(path.c_str());
}
#endif  // RURU_TRACE

TEST(PipelineTrace, TracingDoesNotChangeMeasurements) {
  // The flight recorder observes; it must never perturb.  Same replay
  // with tracing off and at 1-in-64: every timing fact bit-identical.
  const World world = scenario_world();
  const std::vector<SampleFacts> untraced = run_and_collect(world, 0);
  ASSERT_FALSE(untraced.empty());
  const std::vector<SampleFacts> traced = run_and_collect(world, 64);
  EXPECT_EQ(traced, untraced);
}

TEST(PipelineTrace, DisabledTracerEmitsNothing) {
  const World world = scenario_world();
  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.enrichment_threads = 1;
  cfg.trace_sample_n = 0;  // off
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(0xF162, 500.0, Duration::from_sec(1.0));
  replay_scenario(pipeline, model, /*retry_drops=*/true);
  pipeline.finish();
  EXPECT_FALSE(pipeline.tracer().enabled());
  EXPECT_EQ(pipeline.tracer().events_emitted(), 0u);
}

TEST(PipelineTrace, WatchdogRunsCleanOnAHealthyPipeline) {
  // A healthy replay under an armed watchdog: no stalls, and an
  // on-demand dump works end to end (the SIGUSR1 path minus the
  // signal).
  const World world = scenario_world();
  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.enrichment_threads = 1;
  cfg.trace_sample_n = 16;
  cfg.watchdog_enabled = true;
  cfg.watchdog_interval = Duration::from_ms(20);
  cfg.watchdog_stall_after = Duration::from_sec(30.0);  // never fires in a 2s run
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  ASSERT_NE(pipeline.watchdog(), nullptr);
  auto model = scenarios::transpacific(0xF162, 1000.0, Duration::from_sec(2.0));
  replay_scenario(pipeline, model, /*retry_drops=*/true);
  pipeline.watchdog()->request_dump();
  pipeline.watchdog()->poll_now();
  pipeline.finish();
  EXPECT_EQ(pipeline.watchdog()->stalls_detected(), 0u);
  EXPECT_GE(pipeline.watchdog()->dumps_taken(), 1u);
  EXPECT_GT(pipeline.summary().tracker.samples_emitted, 0u);
}

}  // namespace
}  // namespace ruru
