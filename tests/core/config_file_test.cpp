#include "core/config_file.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

namespace ruru {
namespace {

TEST(ConfigParse, FlatAndSectionedKeys) {
  const auto r = parse_config_text(
      "top = 1\n"
      "[capture]\n"
      "queues = 8   # inline comment\n"
      "\n"
      "# full-line comment\n"
      "[analytics]\n"
      "threads = 4\n");
  ASSERT_TRUE(r.ok()) << r.error();
  const auto& m = r.value();
  EXPECT_EQ(m.at("top"), "1");
  EXPECT_EQ(m.at("capture.queues"), "8");
  EXPECT_EQ(m.at("analytics.threads"), "4");
}

TEST(ConfigParse, RejectsMalformedLines) {
  EXPECT_FALSE(parse_config_text("just some words\n").ok());
  EXPECT_FALSE(parse_config_text("[unterminated\n").ok());
  EXPECT_FALSE(parse_config_text("[]\n").ok());
  EXPECT_FALSE(parse_config_text("= value\n").ok());
  EXPECT_FALSE(parse_config_text("a = 1\na = 2\n").ok());  // duplicate
}

TEST(ConfigParse, ErrorsNameTheLine) {
  const auto r = parse_config_text("ok = 1\nbroken line\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("line 2"), std::string::npos);
}

TEST(PipelineConfigFile, AppliesOverDefaults) {
  const auto r = pipeline_config_from_text(
      "[capture]\n"
      "queues = 8\n"
      "mempool = 131072\n"
      "[flow]\n"
      "table_capacity = 32768\n"
      "stale_after_s = 10.5\n"
      "[analytics]\n"
      "threads = 4\n"
      "[detectors]\n"
      "synflood = true\n"
      "synflood_min_syns = 500\n"
      "ewma = off\n"
      "periodic = yes\n"
      "periodic_period_s = 86400\n");
  ASSERT_TRUE(r.ok()) << r.error();
  const PipelineConfig& c = r.value();
  EXPECT_EQ(c.num_queues, 8);
  EXPECT_EQ(c.mempool_size, 131072u);
  EXPECT_EQ(c.flow_table_capacity, 32768u);
  EXPECT_EQ(c.flow_stale_after.ns, Duration::from_sec(10.5).ns);
  EXPECT_EQ(c.enrichment_threads, 4u);
  EXPECT_TRUE(c.enable_synflood);
  EXPECT_EQ(c.synflood.min_syns, 500u);
  EXPECT_FALSE(c.enable_ewma);
  EXPECT_TRUE(c.enable_periodic);
  EXPECT_EQ(c.periodic.period.ns, Duration::from_sec(86400).ns);
}

TEST(PipelineConfigFile, DefaultsPreservedForUnsetKeys) {
  PipelineConfig defaults;
  defaults.num_queues = 6;
  const auto r = pipeline_config_from_text("[analytics]\nthreads = 3\n", defaults);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_queues, 6);
  EXPECT_EQ(r.value().enrichment_threads, 3u);
}

TEST(PipelineConfigFile, UnknownKeyIsAnError) {
  const auto r = pipeline_config_from_text("[capture]\nqueuez = 8\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("capture.queuez"), std::string::npos);
}

TEST(PipelineConfigFile, TypeErrorsAreNamed) {
  EXPECT_FALSE(pipeline_config_from_text("[capture]\nqueues = many\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[detectors]\nsynflood = maybe\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nstale_after_s = soon\n").ok());
}

TEST(PipelineConfigFile, SanityBounds) {
  EXPECT_FALSE(pipeline_config_from_text("[capture]\nqueues = 0\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[analytics]\nthreads = 0\n").ok());
}

TEST(PipelineConfigFile, StoragePolicyKeys) {
  const auto r = pipeline_config_from_text(
      "[storage]\ndownsample_window_s = 60\ndownsample_stat = p99\nretention_s = 3600\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().downsample_window.ns, Duration::from_sec(60).ns);
  EXPECT_EQ(r.value().downsample_stat, "p99");
  EXPECT_EQ(r.value().retention_horizon.ns, Duration::from_sec(3600).ns);
  EXPECT_FALSE(
      pipeline_config_from_text("[storage]\ndownsample_stat = mode\n").ok());
}

TEST(PipelineConfigFile, TsdbEngineKeys) {
  const auto r = pipeline_config_from_text(
      "[storage]\ntsdb_shards = 16\ntsdb_chunk_points = 1024\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().tsdb_shards, 16u);
  EXPECT_EQ(r.value().tsdb_chunk_points, 1024u);
  // Bounds: shards in [1, 256], chunk_points >= 1.
  EXPECT_FALSE(pipeline_config_from_text("[storage]\ntsdb_shards = 0\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[storage]\ntsdb_shards = 257\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[storage]\ntsdb_chunk_points = 0\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[storage]\ntsdb_shards = many\n").ok());
}

TEST(PipelineConfigFile, ShardInboxToggle) {
  const auto off = pipeline_config_from_text("[analytics]\nshard_inbox = false\n");
  ASSERT_TRUE(off.ok()) << off.error();
  EXPECT_FALSE(off.value().enrich_shard_inbox);
  const auto defaults = pipeline_config_from_text("");
  ASSERT_TRUE(defaults.ok());
  EXPECT_TRUE(defaults.value().enrich_shard_inbox);  // sharded by default
  EXPECT_FALSE(pipeline_config_from_text("[analytics]\nshard_inbox = maybe\n").ok());
}

TEST(PipelineConfigFile, LinkMeterKeys) {
  const auto r = pipeline_config_from_text("[meter]\nenabled = false\nwindow_s = 5\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_FALSE(r.value().enable_link_meter);
  EXPECT_EQ(r.value().link_meter_window.ns, Duration::from_sec(5).ns);
}

TEST(PipelineConfigFile, BusBatchKeys) {
  const auto r = pipeline_config_from_text("[bus]\nbatch = 128\nbatch_linger_s = 0.02\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().bus_batch_size, 128u);
  EXPECT_EQ(r.value().bus_batch_linger.ns, Duration::from_sec(0.02).ns);
  // batch = 1 is the un-batched compatibility mode, not an error.
  const auto one = pipeline_config_from_text("[bus]\nbatch = 1\n");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().bus_batch_size, 1u);
  // batch = 0 would silently discard every sample: rejected.
  EXPECT_FALSE(pipeline_config_from_text("[bus]\nbatch = 0\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[bus]\nbatch = lots\n").ok());
}

TEST(PipelineConfigFile, InflowRttKeys) {
  const auto r = pipeline_config_from_text(
      "[flow]\n"
      "inflow_rtt = true\n"
      "ts_ring_entries = 16\n"
      "inflow_min_interval_us = 5000\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().inflow_rtt);
  EXPECT_EQ(r.value().ts_ring_entries, 16u);
  EXPECT_EQ(r.value().inflow_min_interval_us, 5'000u);

  // Defaults: the kernel is off, ring 8, 10 ms rate limit.
  const auto d = pipeline_config_from_text("");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d.value().inflow_rtt);
  EXPECT_EQ(d.value().ts_ring_entries, 8u);
  EXPECT_EQ(d.value().inflow_min_interval_us, 10'000u);
}

TEST(PipelineConfigFile, InflowRttBounds) {
  // Ring entries must be a power of two in [2, 64] (ring indexing masks).
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nts_ring_entries = 1\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nts_ring_entries = 3\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nts_ring_entries = 48\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nts_ring_entries = 128\n").ok());
  const auto err = pipeline_config_from_text("[flow]\nts_ring_entries = 3\n");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.error().find("ts_ring_entries"), std::string::npos);
  // The rate-limit interval is capped at one minute.
  EXPECT_FALSE(
      pipeline_config_from_text("[flow]\ninflow_min_interval_us = 60000001\n").ok());
  EXPECT_TRUE(pipeline_config_from_text("[flow]\ninflow_min_interval_us = 0\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[flow]\ninflow_rtt = maybe\n").ok());
}

TEST(PipelineConfigFile, WorkerLoopKeys) {
  const auto r =
      pipeline_config_from_text("[flow]\nprefetch_depth = 2\nvector_loop = false\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().worker_prefetch_depth, 2u);
  EXPECT_FALSE(r.value().worker_vector_loop);

  // Defaults: lane loop on, lookahead 1.
  const auto d = pipeline_config_from_text("");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().worker_prefetch_depth, 1u);
  EXPECT_TRUE(d.value().worker_vector_loop);

  // Depth 0 (prefetch off) and 4 (the cap) are the limit cases, accepted.
  EXPECT_TRUE(pipeline_config_from_text("[flow]\nprefetch_depth = 0\n").ok());
  EXPECT_TRUE(pipeline_config_from_text("[flow]\nprefetch_depth = 4\n").ok());
  const auto deep = pipeline_config_from_text("[flow]\nprefetch_depth = 5\n");
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.error().find("prefetch_depth"), std::string::npos);
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nvector_loop = maybe\n").ok());
}

TEST(PipelineConfigFile, ProbeWindowKey) {
  const auto r = pipeline_config_from_text("[flow]\nprobe_window = 64\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().flow_probe_window, 64u);

  // Must be a power of two >= 16 (whole 16-slot probe groups)...
  const auto odd = pipeline_config_from_text("[flow]\nprobe_window = 48\n");
  ASSERT_FALSE(odd.ok());
  EXPECT_NE(odd.error().find("power of two"), std::string::npos);
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nprobe_window = 8\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[flow]\nprobe_window = 0\n").ok());

  // ...and must fit inside the (rounded) table capacity.
  const auto wide =
      pipeline_config_from_text("[flow]\ntable_capacity = 100\nprobe_window = 256\n");
  ASSERT_FALSE(wide.ok());
  EXPECT_NE(wide.error().find("exceeds flow.table_capacity"), std::string::npos);
  EXPECT_NE(wide.error().find("rounded to 128"), std::string::npos);
  // Window equal to the rounded capacity is the limit case, accepted.
  EXPECT_TRUE(
      pipeline_config_from_text("[flow]\ntable_capacity = 100\nprobe_window = 128\n").ok());
}

TEST(PipelineConfigFile, SymmetricRssToggle) {
  const auto sym = pipeline_config_from_text("[capture]\nsymmetric_rss = true\n");
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(sym.value().rss_key, symmetric_rss_key());
  const auto asym = pipeline_config_from_text("[capture]\nsymmetric_rss = false\n");
  ASSERT_TRUE(asym.ok());
  EXPECT_EQ(asym.value().rss_key, default_rss_key());
}

TEST(PipelineConfigFile, LoadsFromFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ruru_cfg_" + std::to_string(::getpid()) + ".conf"))
          .string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("[capture]\nqueues = 2\n", f);
  std::fclose(f);
  const auto r = pipeline_config_from_file(path);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().num_queues, 2);
  std::remove(path.c_str());

  EXPECT_FALSE(pipeline_config_from_file("/no/such/ruru.conf").ok());
}

TEST(PipelineConfigFile, EmptyTextYieldsDefaults) {
  const auto r = pipeline_config_from_text("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_queues, PipelineConfig{}.num_queues);
}

TEST(PipelineConfigFile, TopologyKeys) {
  const auto r = pipeline_config_from_text(
      "[topology]\n"
      "workers = 4\n"
      "enrichers = 2\n"
      "pin_cpus = 0, 1, -1, 3, 4, 5\n");
  ASSERT_TRUE(r.ok()) << r.error();
  // Workers and RX queues are 1:1 (one flow table per queue).
  EXPECT_EQ(r.value().num_queues, 4);
  EXPECT_EQ(r.value().enrichment_threads, 2u);
  EXPECT_EQ(r.value().pin_cpus, (std::vector<int>{0, 1, -1, 3, 4, 5}));
}

TEST(PipelineConfigFile, PinListMayCoverWorkersOnly) {
  const auto r = pipeline_config_from_text(
      "[topology]\n"
      "workers = 2\n"
      "enrichers = 2\n"
      "pin_cpus = 0,1\n");  // workers pinned, enrichers roam
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().pin_cpus.size(), 2u);
}

TEST(PipelineConfigFile, PinListLengthMismatchRejected) {
  const auto r = pipeline_config_from_text(
      "[topology]\n"
      "workers = 4\n"
      "enrichers = 2\n"
      "pin_cpus = 0,1,2\n");  // neither 4 (workers) nor 6 (workers+enrichers)
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("pin_cpus"), std::string::npos);
}

TEST(PipelineConfigFile, PinListBadEntriesRejected) {
  EXPECT_FALSE(pipeline_config_from_text("[topology]\npin_cpus = 0,,1\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[topology]\npin_cpus = 0,banana\n").ok());
  EXPECT_FALSE(pipeline_config_from_text("[topology]\npin_cpus = 0,2000000\n").ok());
}

TEST(PipelineConfigFile, TraceKeys) {
  const auto r = pipeline_config_from_text(
      "[obs]\n"
      "trace_sample_n = 64\n"
      "trace_ring = 8192\n"
      "trace_json_path = /tmp/ruru_trace.json\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().trace_sample_n, 64u);
  EXPECT_EQ(r.value().trace_ring_capacity, 8192u);
  EXPECT_EQ(r.value().trace_json_path, "/tmp/ruru_trace.json");
  // Defaults: tracing off.
  EXPECT_EQ(PipelineConfig{}.trace_sample_n, 0u);
  // A zero-slot ring with sampling on cannot hold anything: rejected.
  EXPECT_FALSE(
      pipeline_config_from_text("[obs]\ntrace_sample_n = 64\ntrace_ring = 0\n").ok());
  // trace_ring = 0 with tracing off is harmless (never allocated).
  EXPECT_TRUE(pipeline_config_from_text("[obs]\ntrace_ring = 0\n").ok());
}

TEST(PipelineConfigFile, WatchdogKeys) {
  const auto r = pipeline_config_from_text(
      "[obs]\n"
      "watchdog = true\n"
      "watchdog_interval_s = 0.5\n"
      "watchdog_stall_s = 10\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().watchdog_enabled);
  EXPECT_EQ(r.value().watchdog_interval.ns, Duration::from_sec(0.5).ns);
  EXPECT_EQ(r.value().watchdog_stall_after.ns, Duration::from_sec(10.0).ns);
  EXPECT_FALSE(PipelineConfig{}.watchdog_enabled);
  // Non-positive timings with the watchdog armed: rejected.
  EXPECT_FALSE(
      pipeline_config_from_text("[obs]\nwatchdog = on\nwatchdog_interval_s = 0\n").ok());
  EXPECT_FALSE(
      pipeline_config_from_text("[obs]\nwatchdog = on\nwatchdog_stall_s = -1\n").ok());
  // The same zeros with the watchdog off never run: accepted.
  EXPECT_TRUE(pipeline_config_from_text("[obs]\nwatchdog_interval_s = 0\n").ok());
}

}  // namespace
}  // namespace ruru
