// Full-system acceptance tests: the paper's use cases run end-to-end
// through the real pipeline (NIC -> workers -> bus -> analytics -> TSDB /
// detectors) and the outcomes match the ground-truth ledger.

#include <gtest/gtest.h>

#include "capture/scenarios.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "geo/world.hpp"

namespace ruru {
namespace {

World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto w = build_world(specs);
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

TEST(EndToEnd, MeasuredLatenciesMatchGroundTruthExactly) {
  const World world = scenario_world();
  PipelineConfig cfg;
  cfg.num_queues = 4;
  cfg.enrichment_threads = 2;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();

  TrafficConfig tcfg;
  tcfg.seed = 1234;
  tcfg.flows_per_sec = 100;
  tcfg.duration = Duration::from_sec(2.0);
  tcfg.mean_data_segments = 2;
  TrafficModel model(tcfg, scenarios::transpacific_routes());
  replay_scenario(pipeline, model);
  pipeline.finish();

  // Compare TSDB contents against ground truth: the mean measured total
  // must equal the mean expected total (tap semantics are exact in sim).
  double expected_sum = 0;
  std::uint64_t expected_n = 0;
  for (const auto& t : model.truth()) {
    if (!t.handshake_completes) continue;
    expected_sum += t.expected_measured_total().to_sec() * 1e3;
    ++expected_n;
  }
  ASSERT_GT(expected_n, 0u);

  const auto agg = pipeline.tsdb().aggregate("total_ms", TagSet{}, Timestamp{},
                                             Timestamp::from_sec(1000));
  ASSERT_EQ(agg.count, expected_n);
  EXPECT_NEAR(agg.mean, expected_sum / static_cast<double>(expected_n), 0.01);
}

TEST(EndToEnd, FirewallGlitchDetectedByPeriodicModule) {
  const World world = scenario_world();
  PipelineConfig cfg;
  cfg.num_queues = 2;
  cfg.enable_periodic = true;
  // Compressed days: 60 s period, 1 s buckets.
  cfg.periodic.period = Duration::from_sec(60.0);
  cfg.periodic.bucket = Duration::from_sec(1.0);
  cfg.periodic.min_periods = 2;
  cfg.periodic.min_samples = 8;
  cfg.enable_ewma = true;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();

  auto model = scenarios::firewall_glitch(77, 60.0, Duration::from_sec(180.0),
                                          Duration::from_sec(60.0), Duration::from_sec(3.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  const auto alerts = pipeline.alerts().snapshot();
  bool periodic_found = false;
  bool spike_found = false;
  for (const auto& a : alerts) {
    if (a.kind == "periodic-glitch") periodic_found = true;
    if (a.kind == "latency-spike") spike_found = true;
  }
  EXPECT_TRUE(periodic_found) << "nightly firewall window not identified";
  EXPECT_TRUE(spike_found) << "individual +4000ms flows not flagged";

  // The periodic finding sits at the right offset: window starts at
  // period/2 = 30 s into each 60 s "day".
  ASSERT_NE(pipeline.periodic_detector(), nullptr);
  const auto findings = pipeline.periodic_detector()->findings();
  ASSERT_FALSE(findings.empty());
  bool offset_ok = false;
  for (const auto& f : findings) {
    if (f.offset_in_period.ns >= Duration::from_sec(29.0).ns &&
        f.offset_in_period.ns <= Duration::from_sec(34.0).ns) {
      offset_ok = true;
    }
  }
  EXPECT_TRUE(offset_ok);
}

TEST(EndToEnd, SynFloodDetectedAgainstBenignBackground) {
  const World world = scenario_world();
  PipelineConfig cfg;
  cfg.num_queues = 2;
  cfg.synflood.window = Duration::from_sec(1.0);
  cfg.synflood.min_syns = 200;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();

  auto model = scenarios::syn_flood(55, 50.0, 2000.0, Duration::from_sec(4.0),
                                    Timestamp::from_sec(1.0), Duration::from_sec(2.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  const auto alerts = pipeline.alerts().snapshot();
  int flood_alerts = 0;
  for (const auto& a : alerts) {
    if (a.kind == "syn-flood") {
      ++flood_alerts;
      EXPECT_EQ(a.subject, "10.1.0.80");  // the scenario's victim
    }
  }
  // The flood spans 2 one-second windows; multi-threaded workers can
  // deliver slightly out-of-order timestamps, smearing counts into up to
  // two adjacent windows.
  EXPECT_GE(flood_alerts, 1);
  EXPECT_LE(flood_alerts, 4);
}

TEST(EndToEnd, CleanTrafficRaisesNoFloodAlerts) {
  const World world = scenario_world();
  PipelineConfig cfg;
  cfg.num_queues = 2;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(66, 150.0, Duration::from_sec(2.0));
  replay_scenario(pipeline, model);
  pipeline.finish();
  for (const auto& a : pipeline.alerts().snapshot()) {
    EXPECT_NE(a.kind, "syn-flood") << a.detail;
  }
}

TEST(EndToEnd, PrivacyNoAddressesBeyondAnalytics) {
  const World world = scenario_world();
  PipelineConfig cfg;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(10, 100.0, Duration::from_sec(1.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  // The paper's privacy rule: nothing downstream carries IPs. Check the
  // TSDB tag space and the viz arcs for dotted quads.
  const auto groups = pipeline.tsdb().group_by("total_ms", "src_city", TagSet{}, Timestamp{},
                                               Timestamp::from_sec(1000));
  ASSERT_FALSE(groups.empty());
  for (const auto& g : groups) {
    EXPECT_EQ(g.tag_value.find("10."), std::string::npos) << g.tag_value;
  }
  const auto frame = pipeline.arcs().cut_frame(Timestamp::from_sec(1000));
  for (const auto& arc : frame.arcs) {
    EXPECT_EQ(arc.src_city.find("10."), std::string::npos);
    EXPECT_EQ(arc.dst_city.find("10."), std::string::npos);
  }
}

TEST(EndToEnd, Ipv6FlowsLocatedViaGeo6Table) {
  const World world = scenario_world();
  // Derive the v6 table from the same site plan the traffic model maps into.
  std::vector<SiteSpec> specs;
  for (const auto& s : scenarios::nz_sites()) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    specs.push_back(std::move(spec));
  }
  for (const auto& s : scenarios::world_sites()) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    specs.push_back(std::move(spec));
  }
  auto geo6 = derive_geo6(specs);
  ASSERT_TRUE(geo6.ok()) << geo6.error();

  PipelineConfig cfg;
  cfg.num_queues = 2;
  RuruPipeline pipeline(cfg, world.geo, world.as, &geo6.value());
  pipeline.start();

  auto routes = scenarios::transpacific_routes();
  for (auto& r : routes) r.ipv6 = true;  // all-v6 scenario
  TrafficConfig tcfg;
  tcfg.seed = 64;
  tcfg.flows_per_sec = 100;
  tcfg.duration = Duration::from_sec(2.0);
  TrafficModel model(tcfg, std::move(routes));
  replay_scenario(pipeline, model);
  pipeline.finish();

  const auto s = pipeline.summary();
  EXPECT_GT(s.tracker.samples_emitted, 50u);
  EXPECT_EQ(s.unlocated, 0u);  // every v6 endpoint resolved
  bool found_akl_lax = false;
  for (const auto& p : pipeline.city_pairs().summaries()) {
    if (p.key == "Auckland|Los Angeles") found_akl_lax = true;
    EXPECT_EQ(p.key.find('?'), std::string::npos) << p.key;
  }
  EXPECT_TRUE(found_akl_lax);
}

TEST(EndToEnd, InternalPlusExternalEqualsTotalEverywhere) {
  const World world = scenario_world();
  PipelineConfig cfg;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(30, 100.0, Duration::from_sec(1.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  const auto total = pipeline.tsdb().aggregate("total_ms", TagSet{}, Timestamp{},
                                               Timestamp::from_sec(1000));
  const auto internal = pipeline.tsdb().aggregate("internal_ms", TagSet{}, Timestamp{},
                                                  Timestamp::from_sec(1000));
  const auto external = pipeline.tsdb().aggregate("external_ms", TagSet{}, Timestamp{},
                                                  Timestamp::from_sec(1000));
  ASSERT_GT(total.count, 0u);
  EXPECT_EQ(total.count, internal.count);
  EXPECT_EQ(total.count, external.count);
  // Figure 1: sums hold in aggregate (means are additive).
  EXPECT_NEAR(total.mean, internal.mean + external.mean, 0.01);
}

}  // namespace
}  // namespace ruru
