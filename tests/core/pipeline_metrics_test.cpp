// End-to-end checks that the telemetry layer observes a real run: the
// summary is a view over the registry, histograms fill when metrics are
// on, the self-ingest exporter lands "ruru.self.*" series in the TSDB,
// and the Prometheus file appears on disk.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "capture/scenarios.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "geo/world.hpp"
#include "obs/exporters.hpp"

namespace ruru {
namespace {

World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto w = build_world(specs);
  EXPECT_TRUE(w.ok()) << w.error();
  return std::move(w).value();
}

class PipelineMetricsTest : public ::testing::Test {
 protected:
  PipelineMetricsTest() : world_(scenario_world()) {}

  PipelineConfig metrics_config() {
    PipelineConfig cfg;
    cfg.num_queues = 2;
    cfg.enrichment_threads = 2;
    cfg.flow_table_capacity = 1 << 12;
    cfg.metrics_enabled = true;
    cfg.metrics_interval = Duration::from_ms(50);
    cfg.transit_sample_every = 1;  // every bus message hits the transit hist
    return cfg;
  }

  void replay(RuruPipeline& pipeline) {
    auto model = scenarios::transpacific(/*seed=*/21, /*flows_per_sec=*/200.0,
                                         Duration::from_sec(3.0));
    pipeline.start();
    replay_scenario(pipeline, model);
    pipeline.finish();
  }

  World world_;
};

TEST_F(PipelineMetricsTest, SummaryIsAViewOverTheRegistry) {
  RuruPipeline pipeline(metrics_config(), world_.geo, world_.as);
  replay(pipeline);

  const PipelineSummary summary = pipeline.summary();
  const obs::MetricsSnapshot snap = pipeline.metrics().snapshot(Timestamp{});

  EXPECT_GT(summary.nic.rx_packets, 0u);
  EXPECT_EQ(summary.nic.rx_packets, snap.counter_or("nic.rx_packets"));
  EXPECT_EQ(summary.workers.packets, snap.counter_or("worker.packets"));
  EXPECT_EQ(summary.tracker.samples_emitted, snap.counter_or("tracker.samples_emitted"));
  EXPECT_EQ(summary.enriched, snap.counter_or("enrich.processed"));
  EXPECT_EQ(summary.tsdb_points, snap.counter_or("tsdb.points"));
}

TEST_F(PipelineMetricsTest, HotPathHistogramsFillWhenEnabled) {
  RuruPipeline pipeline(metrics_config(), world_.geo, world_.as);
  replay(pipeline);

  const obs::MetricsSnapshot snap = pipeline.metrics().snapshot(Timestamp{});
  const obs::HistogramStats* poll = snap.histogram("worker.poll_batch");
  ASSERT_NE(poll, nullptr);
  EXPECT_GT(poll->count, 0u);
  EXPECT_GE(poll->min, 1);  // empty polls are not recorded

  const obs::HistogramStats* transit = snap.histogram("pipeline.transit_ns");
  ASSERT_NE(transit, nullptr);
  EXPECT_GT(transit->count, 0u);
  EXPECT_GT(transit->max, 0);  // wall-clock anchored: strictly positive

  const obs::HistogramStats* wait = snap.histogram("bus.queue_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_GT(wait->count, 0u);

  const obs::HistogramStats* tsdb = snap.histogram("tsdb.write_ns");
  ASSERT_NE(tsdb, nullptr);
  EXPECT_GT(tsdb->count, 0u);
}

TEST_F(PipelineMetricsTest, HistogramsStayEmptyWhenDisabled) {
  PipelineConfig cfg = metrics_config();
  cfg.metrics_enabled = false;
  RuruPipeline pipeline(cfg, world_.geo, world_.as);
  replay(pipeline);

  const obs::MetricsSnapshot snap = pipeline.metrics().snapshot(Timestamp{});
  // Counters still work (the summary depends on them)...
  EXPECT_GT(snap.counter_or("nic.rx_packets"), 0u);
  // ...but no histogram is even registered: zero hot-path timing cost.
  EXPECT_EQ(snap.histogram("worker.poll_batch"), nullptr);
  EXPECT_EQ(snap.histogram("pipeline.transit_ns"), nullptr);
}

TEST_F(PipelineMetricsTest, SelfIngestLandsSeriesInTheTsdb) {
  RuruPipeline pipeline(metrics_config(), world_.geo, world_.as);
  replay(pipeline);

  // The stop() final tick guarantees at least one export even if the
  // run was shorter than the snapshot interval.
  const Timestamp t0;
  const Timestamp t1 = Timestamp::from_sec(1e9);
  const auto rx = pipeline.tsdb().aggregate("ruru.self.nic.rx_packets",
                                            TagSet{}.add("stat", "total"), t0, t1);
  ASSERT_GT(rx.count, 0u);
  EXPECT_DOUBLE_EQ(rx.max, static_cast<double>(pipeline.summary().nic.rx_packets));

  const auto transit = pipeline.tsdb().aggregate("ruru.self.pipeline.transit_ns",
                                                 TagSet{}.add("stat", "p95"), t0, t1);
  ASSERT_GT(transit.count, 0u);
  EXPECT_GT(transit.max, 0.0);
}

TEST_F(PipelineMetricsTest, InflowCountersAndHistogramExport) {
  const std::string path = ::testing::TempDir() + "ruru_inflow_metrics_test.prom";
  std::remove(path.c_str());

  PipelineConfig cfg = metrics_config();
  cfg.inflow_rtt = true;
  cfg.metrics_prometheus_path = path;
  RuruPipeline pipeline(cfg, world_.geo, world_.as);
  replay(pipeline);

  const obs::MetricsSnapshot snap = pipeline.metrics().snapshot(Timestamp{});
  EXPECT_GT(snap.counter_or("flow.ts_matches"), 0u);
  EXPECT_GT(snap.counter_or("flow.inflow_samples"), 0u);
  EXPECT_GT(snap.counter_or("worker.inflow_consumed"), 0u);
  // Eviction/wrap counters exist even when this scenario never trips them.
  EXPECT_NE(snap.counter("flow.ts_ring_evictions"), nullptr);
  EXPECT_NE(snap.counter("flow.ts_wraps"), nullptr);

  const obs::HistogramStats* rtt = snap.histogram("flow.inflow_rtt_ns");
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->count, 0u);
  EXPECT_GT(rtt->min, 0);

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "no prometheus file at " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("# TYPE ruru_flow_ts_matches counter\n"), std::string::npos);
  EXPECT_NE(text.find("ruru_flow_inflow_rtt_ns_count"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(PipelineMetricsTest, InflowHistogramAbsentWhenFeatureOff) {
  RuruPipeline pipeline(metrics_config(), world_.geo, world_.as);
  replay(pipeline);
  const obs::MetricsSnapshot snap = pipeline.metrics().snapshot(Timestamp{});
  EXPECT_EQ(snap.counter_or("flow.ts_matches"), 0u);
  EXPECT_EQ(snap.histogram("flow.inflow_rtt_ns"), nullptr);
}

TEST_F(PipelineMetricsTest, PrometheusFileIsWrittenWhenPathSet) {
  const std::string path = ::testing::TempDir() + "ruru_metrics_test.prom";
  std::remove(path.c_str());

  PipelineConfig cfg = metrics_config();
  cfg.metrics_prometheus_path = path;
  RuruPipeline pipeline(cfg, world_.geo, world_.as);
  replay(pipeline);

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "no prometheus file at " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("# TYPE ruru_nic_rx_packets counter\n"), std::string::npos);
  EXPECT_NE(text.find("ruru_pipeline_transit_ns_count"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ruru
