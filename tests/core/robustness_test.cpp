// Failure injection and adversarial input: the pipeline must stay
// correct (and account honestly) under garbage frames, resource
// exhaustion and backpressure.

#include <gtest/gtest.h>

#include "capture/scenarios.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "geo/world.hpp"
#include "net/packet_builder.hpp"
#include "util/random.hpp"

namespace ruru {
namespace {

World tiny_world() {
  auto w = build_world(large_world_sites(4));
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

TEST(Robustness, RandomGarbageFramesNeverCrashThePipeline) {
  const World world = tiny_world();
  PipelineConfig cfg;
  cfg.num_queues = 2;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();

  Pcg32 rng(0xBAD);
  std::vector<std::uint8_t> frame;
  for (int i = 0; i < 20'000; ++i) {
    frame.resize(rng.bounded(512));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_u32());
    pipeline.inject(frame, Timestamp::from_us(i));
  }
  pipeline.finish();

  const auto s = pipeline.summary();
  // Every injected frame was received and classified; none measured.
  EXPECT_EQ(s.nic.rx_packets + s.nic.dropped_queue_full + s.nic.dropped_no_mbuf, 20'000u);
  EXPECT_EQ(s.tracker.samples_emitted, 0u);
  std::uint64_t classified = 0;
  for (const auto c : s.workers.parse_status) classified += c;
  EXPECT_EQ(classified, s.workers.packets);
}

TEST(Robustness, TruncatedRealFramesAreRejectedNotMeasured) {
  const World world = tiny_world();
  PipelineConfig cfg;
  cfg.num_queues = 1;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();

  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = Ipv4Address(10, 2, 0, 1);
  spec.src_port = 40'000;
  spec.dst_port = 443;
  spec.flags = TcpFlags::kSyn;
  const auto full = build_tcp_frame(spec);
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    pipeline.inject(std::span<const std::uint8_t>(full.data(), cut), Timestamp::from_us(cut));
  }
  pipeline.finish();
  EXPECT_EQ(pipeline.summary().tracker.samples_emitted, 0u);
  EXPECT_EQ(pipeline.summary().tracker.syn_seen, 0u);  // all truncated before TCP parse
}

TEST(Robustness, TinyMempoolDropsAreCountedNotFatal) {
  const World world = tiny_world();
  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.mempool_size = 8;  // absurdly small on purpose
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(3, 500.0, Duration::from_sec(1.0));
  const auto stats = replay_scenario(pipeline, model, /*retry_drops=*/false);
  pipeline.finish();

  const auto s = pipeline.summary();
  EXPECT_EQ(s.nic.rx_packets + s.nic.dropped_no_mbuf + s.nic.dropped_queue_full, stats.frames);
  // Some traffic made it through; nothing hung or crashed.
  EXPECT_GT(s.nic.rx_packets, 0u);
}

TEST(Robustness, TinyBusHwmDropsAreVisible) {
  const World world = tiny_world();
  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.bus_hwm = 4;             // almost no buffering
  cfg.enrichment_threads = 1;  // slow consumer
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(5, 2000.0, Duration::from_sec(1.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  const auto s = pipeline.summary();
  // Conservation: published == enriched + dropped (never silently lost).
  EXPECT_EQ(s.bus_published, s.enriched + s.bus_dropped);
  EXPECT_GT(s.tracker.samples_emitted, 0u);
}

TEST(Robustness, TinyFlowTableDegradesGracefully) {
  const World world = tiny_world();
  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.flow_table_capacity = 16;  // fewer slots than live flows
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(7, 1000.0, Duration::from_sec(1.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  const auto s = pipeline.summary();
  // Some handshakes measured, some dropped at the table; both visible.
  EXPECT_GT(s.tracker.samples_emitted, 0u);
  EXPECT_GT(s.tracker.table_drops, 0u);
}

TEST(Robustness, FinishWithoutStartIsSafe) {
  const World world = tiny_world();
  PipelineConfig cfg;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.finish();  // never started: no crash, no hang
}

TEST(Robustness, InjectAfterFinishIsHarmless) {
  const World world = tiny_world();
  PipelineConfig cfg;
  cfg.num_queues = 1;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  pipeline.finish();
  // Frames injected after shutdown queue up but are never processed —
  // and nothing crashes.
  const auto frame = build_non_ip_frame();
  pipeline.inject(frame, Timestamp{});
  SUCCEED();
}

// Property sweep: conservation invariants hold across seeds.
class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, CountsBalanceAcrossAllStages) {
  const World world = tiny_world();
  PipelineConfig cfg;
  cfg.num_queues = 2;
  RuruPipeline pipeline(cfg, world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(GetParam(), 300.0, Duration::from_sec(1.0));
  const auto stats = replay_scenario(pipeline, model);
  pipeline.finish();

  const auto s = pipeline.summary();
  // NIC conservation.
  EXPECT_EQ(s.nic.rx_packets, stats.frames - stats.inject_drops);
  // Worker conservation: every received packet either classified by the
  // full parser or skipped by the pre-parse fast path, exactly once.
  std::uint64_t classified = 0;
  for (const auto c : s.workers.parse_status) classified += c;
  EXPECT_EQ(classified + s.workers.fast_path_skips, s.workers.packets);
  EXPECT_GT(s.workers.fast_path_skips, 0u);  // data segments did take the fast path
  EXPECT_EQ(s.workers.packets, s.nic.rx_packets);
  // Measurement conservation.
  EXPECT_EQ(s.tracker.samples_emitted, s.bus_published);
  EXPECT_EQ(s.bus_published, s.enriched + s.bus_dropped);
  // Ground truth: samples == completed handshakes (lossless replay).
  std::uint64_t expected = 0;
  for (const auto& t : model.truth()) {
    if (t.handshake_completes) ++expected;
  }
  EXPECT_EQ(s.tracker.samples_emitted, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace ruru
