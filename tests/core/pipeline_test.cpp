#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "analytics/filter.hpp"
#include "anomaly/alert_codec.hpp"
#include "capture/scenarios.hpp"
#include "core/replay.hpp"
#include "geo/world.hpp"
#include "net/packet_builder.hpp"

namespace ruru {
namespace {

// Builds the world matching the scenario site plan.
World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto w = build_world(specs);
  EXPECT_TRUE(w.ok()) << w.error();
  return std::move(w).value();
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : world_(scenario_world()) {}

  PipelineConfig small_config() {
    PipelineConfig cfg;
    cfg.num_queues = 2;
    cfg.enrichment_threads = 2;
    cfg.flow_table_capacity = 1 << 12;
    return cfg;
  }

  World world_;
};

TEST_F(PipelineTest, ManualHandshakeFlowsThroughAllStages) {
  RuruPipeline pipeline(small_config(), world_.geo, world_.as);
  pipeline.start();

  const Ipv4Address client(10, 1, 0, 5);   // Auckland block
  const Ipv4Address server(10, 2, 0, 9);   // Los Angeles block
  TcpFrameSpec syn;
  syn.src_ip = client;
  syn.dst_ip = server;
  syn.src_port = 40'000;
  syn.dst_port = 443;
  syn.seq = 100;
  syn.flags = TcpFlags::kSyn;
  ASSERT_TRUE(pipeline.inject(build_tcp_frame(syn), Timestamp::from_ms(1000)));

  TcpFrameSpec synack;
  synack.src_ip = server;
  synack.dst_ip = client;
  synack.src_port = 443;
  synack.dst_port = 40'000;
  synack.seq = 900;
  synack.ack = 101;
  synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
  ASSERT_TRUE(pipeline.inject(build_tcp_frame(synack), Timestamp::from_ms(1128)));

  TcpFrameSpec ack;
  ack.src_ip = client;
  ack.dst_ip = server;
  ack.src_port = 40'000;
  ack.dst_port = 443;
  ack.seq = 101;
  ack.ack = 901;
  ack.flags = TcpFlags::kAck;
  ASSERT_TRUE(pipeline.inject(build_tcp_frame(ack), Timestamp::from_ms(1133)));

  pipeline.finish();

  const auto summary = pipeline.summary();
  EXPECT_EQ(summary.nic.rx_packets, 3u);
  EXPECT_EQ(summary.tracker.samples_emitted, 1u);
  EXPECT_EQ(summary.enriched, 1u);
  EXPECT_EQ(summary.bus_dropped, 0u);

  // City pair aggregation saw Auckland -> Los Angeles.
  const auto pairs = pipeline.city_pairs().summaries();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].key, "Auckland|Los Angeles");
  EXPECT_EQ(pairs[0].connections, 1u);
  EXPECT_EQ(pairs[0].median_total.ns, pairs[0].min_total.ns);

  // TSDB holds the three latency measurements with geo/AS tags, plus the
  // link-load windows (one mbps + one pps point for the single window).
  const auto link = pipeline.tsdb().aggregate("link_pps", TagSet{}, Timestamp{},
                                              Timestamp::from_sec(10));
  EXPECT_EQ(link.count, 1u);
  EXPECT_DOUBLE_EQ(link.mean, 3.0);  // 3 packets in the 1 s window
  EXPECT_EQ(pipeline.tsdb().points_written(), 3u + 2u);
  TagSet filter;
  filter.add("src_city", "Auckland");
  const auto agg = pipeline.tsdb().aggregate("total_ms", filter, Timestamp{},
                                             Timestamp::from_sec(10));
  EXPECT_EQ(agg.count, 1u);
  EXPECT_NEAR(agg.mean, 133.0, 0.001);

  // The viz aggregator saw one arc with real coordinates.
  const auto frame = pipeline.arcs().cut_frame(Timestamp::from_sec(2));
  ASSERT_EQ(frame.arcs.size(), 1u);
  EXPECT_NEAR(frame.arcs[0].src_lat, -36.8485, 0.01);
}

TEST_F(PipelineTest, ScenarioReplayEndToEndCounts) {
  RuruPipeline pipeline(small_config(), world_.geo, world_.as);
  pipeline.start();
  auto model = scenarios::transpacific(21, 200.0, Duration::from_sec(3.0));
  const ReplayStats stats = replay_scenario(pipeline, model);
  pipeline.finish();

  EXPECT_EQ(stats.inject_drops, 0u);
  const auto summary = pipeline.summary();
  EXPECT_EQ(summary.nic.rx_packets, stats.frames);

  // Every completed handshake in the ground truth produced a sample.
  std::uint64_t expected = 0;
  for (const auto& t : model.truth()) {
    if (t.handshake_completes) ++expected;
  }
  EXPECT_EQ(summary.tracker.samples_emitted, expected);
  EXPECT_EQ(summary.enriched, expected);
  EXPECT_EQ(pipeline.city_pairs().total_connections(), expected);
  // No endpoint should be unlocated: the world covers the site plan.
  EXPECT_EQ(summary.unlocated, 0u);
}

TEST_F(PipelineTest, FinishIsIdempotentAndDestructorSafe) {
  auto pipeline = std::make_unique<RuruPipeline>(small_config(), world_.geo, world_.as);
  pipeline->start();
  pipeline->finish();
  pipeline->finish();
  pipeline.reset();  // destructor after finish: no hang
}

TEST_F(PipelineTest, SummaryToStringMentionsKeyCounters) {
  RuruPipeline pipeline(small_config(), world_.geo, world_.as);
  pipeline.start();
  pipeline.finish();
  const std::string s = pipeline.summary().to_string();
  EXPECT_NE(s.find("rx="), std::string::npos);
  EXPECT_NE(s.find("samples="), std::string::npos);
}

TEST_F(PipelineTest, AsymmetricRssBreaksMeasurementOnMultiQueue) {
  // The ablation behind the paper's symmetric-RSS choice: with the
  // standard (asymmetric) key and multiple queues, SYN and SYN-ACK land
  // on different workers' flow tables, so almost no handshake completes.
  auto cfg = small_config();
  cfg.num_queues = 8;
  cfg.rss_key = default_rss_key();
  RuruPipeline broken(cfg, world_.geo, world_.as);
  broken.start();
  auto model = scenarios::transpacific(77, 300.0, Duration::from_sec(2.0));
  replay_scenario(broken, model);
  broken.finish();

  std::uint64_t completed = 0;
  for (const auto& t : model.truth()) {
    if (t.handshake_completes) ++completed;
  }
  ASSERT_GT(completed, 100u);
  const auto measured = broken.summary().tracker.samples_emitted;
  // Only the ~1/8 of flows whose two directions happen to share a queue
  // get measured. Generous bound: < 1/3 of the truth.
  EXPECT_LT(measured, completed / 3)
      << "asymmetric RSS should break handshake matching, got " << measured << "/" << completed;

  // Same scenario with the symmetric key: everything measured.
  auto fixed_cfg = small_config();
  fixed_cfg.num_queues = 8;
  RuruPipeline fixed(fixed_cfg, world_.geo, world_.as);
  fixed.start();
  auto model2 = scenarios::transpacific(77, 300.0, Duration::from_sec(2.0));
  replay_scenario(fixed, model2);
  fixed.finish();
  EXPECT_EQ(fixed.summary().tracker.samples_emitted, completed);
}

TEST_F(PipelineTest, FilterModuleAsCustomSink) {
  // The §2 extension, end to end: a geo filter module interposed on the
  // enriched stream, counting only NZ->GB connections over 200 ms.
  RuruPipeline pipeline(small_config(), world_.geo, world_.as);
  std::atomic<int> slow_to_london{0};
  auto chain = std::make_shared<FilterChain>(
      [&](const EnrichedSample&) { slow_to_london.fetch_add(1); });
  chain->add(SampleFilter::city("London"))
      .add(SampleFilter::latency_at_least(Duration::from_ms(200)));
  pipeline.add_enriched_sink([chain](const EnrichedSample& s) { (*chain)(s); });

  pipeline.start();
  auto model = scenarios::transpacific(42, 300.0, Duration::from_sec(2.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  EXPECT_EQ(chain->seen(), pipeline.summary().enriched);
  EXPECT_GT(slow_to_london.load(), 0);  // AKL->London sits around 265 ms
  EXPECT_EQ(static_cast<std::uint64_t>(slow_to_london.load()), chain->forwarded());
  EXPECT_LT(chain->forwarded(), chain->seen());  // it actually filtered
}

TEST_F(PipelineTest, AlertsArePublishedOnTheBus) {
  auto cfg = small_config();
  cfg.synflood.min_syns = 100;
  RuruPipeline pipeline(cfg, world_.geo, world_.as);
  auto alert_sub = pipeline.subscribe("ruru.alerts");
  pipeline.start();
  auto model = scenarios::syn_flood(12, 20.0, 1500.0, Duration::from_sec(3.0),
                                    Timestamp::from_sec(1.0), Duration::from_sec(1.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  ASSERT_GT(pipeline.alerts().count(), 0u);
  int received = 0;
  while (auto m = alert_sub->try_recv()) {
    ASSERT_EQ(m->frames.size(), 2u);
    const auto alert = decode_alert(m->frames[1]);
    ASSERT_TRUE(alert.has_value());
    if (alert->kind == "syn-flood") {
      EXPECT_EQ(alert->subject, "10.1.0.80");
      ++received;
    }
  }
  EXPECT_GE(received, 1);
}

TEST_F(PipelineTest, StoragePolicyDownsamplesAndAgesOutRaw) {
  auto cfg = small_config();
  cfg.downsample_window = Duration::from_sec(1.0);
  cfg.downsample_stat = "median";
  cfg.retention_horizon = Duration::from_sec(1.0);  // keep only the last 1 s raw
  RuruPipeline pipeline(cfg, world_.geo, world_.as);
  pipeline.start();
  auto model = scenarios::transpacific(31, 200.0, Duration::from_sec(4.0));
  replay_scenario(pipeline, model);
  pipeline.finish();

  const auto everything = Timestamp::from_sec(1e6);
  // Downsampled medians exist across the whole run...
  const auto ds = pipeline.tsdb().aggregate("total_ms_median", TagSet{}, Timestamp{}, everything);
  EXPECT_GT(ds.count, 0u);
  EXPECT_NEAR(ds.median, 140.0, 40.0);
  // ...while raw samples older than the horizon were aged out (the
  // capture spans ~4-5 s; everything before t=2 s is certainly stale).
  const auto old_raw =
      pipeline.tsdb().aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(2.0));
  EXPECT_EQ(old_raw.count, 0u);
  const auto all_raw = pipeline.tsdb().aggregate("total_ms", TagSet{}, Timestamp{}, everything);
  EXPECT_LT(all_raw.count, pipeline.summary().enriched);  // most raw aged out
  // Link series survive retention (not in the raw-only list).
  EXPECT_GT(pipeline.tsdb().aggregate("link_pps", TagSet{}, Timestamp{}, everything).count, 1u);
}

TEST_F(PipelineTest, QueueCountIsRespected) {
  auto cfg = small_config();
  cfg.num_queues = 4;
  RuruPipeline pipeline(cfg, world_.geo, world_.as);
  EXPECT_EQ(pipeline.nic().num_queues(), 4);
  pipeline.start();
  auto model = scenarios::transpacific(5, 300.0, Duration::from_sec(1.0));
  replay_scenario(pipeline, model);
  pipeline.finish();
  // Samples arrived from more than one queue (RSS spread).
  const auto frame = pipeline.arcs().cut_frame(Timestamp::from_sec(100));
  EXPECT_FALSE(frame.arcs.empty());
}

}  // namespace
}  // namespace ruru
