#include "core/ruru.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "capture/scenarios.hpp"
#include "geo/world.hpp"

namespace ruru {
namespace {

World tiny_world() {
  auto w = build_world(large_world_sites(4));
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

PipelineConfig tiny_config() {
  PipelineConfig cfg;
  cfg.num_queues = 1;
  cfg.enrichment_threads = 1;
  return cfg;
}

TEST(Replay, PcapRoundTripThroughPipeline) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("replay_test_" + std::to_string(::getpid()) + ".pcap"))
          .string();

  // 1. Record a scenario to pcap.
  auto model = scenarios::transpacific(3, 100.0, Duration::from_sec(1.0));
  std::uint64_t written = 0;
  {
    auto writer = PcapWriter::open(path);
    ASSERT_TRUE(writer.ok());
    while (auto f = model.next()) {
      ASSERT_TRUE(writer.value().write(f->timestamp, f->frame).ok());
      ++written;
    }
  }
  ASSERT_GT(written, 100u);

  // 2. Replay the pcap through a live pipeline.
  const World world = tiny_world();
  RuruPipeline pipeline(tiny_config(), world.geo, world.as);
  pipeline.start();
  const auto stats = replay_pcap(pipeline, path);
  ASSERT_TRUE(stats.ok()) << stats.error();
  pipeline.finish();

  EXPECT_EQ(stats.value().frames, written);
  EXPECT_EQ(stats.value().inject_drops, 0u);
  EXPECT_EQ(pipeline.summary().nic.rx_packets, written);

  // Same number of handshakes as the ground truth says completed.
  std::uint64_t expected = 0;
  for (const auto& t : model.truth()) {
    if (t.handshake_completes) ++expected;
  }
  EXPECT_EQ(pipeline.summary().tracker.samples_emitted, expected);

  std::remove(path.c_str());
}

TEST(Replay, MissingPcapReportsError) {
  const World world = tiny_world();
  RuruPipeline pipeline(tiny_config(), world.geo, world.as);
  pipeline.start();
  EXPECT_FALSE(replay_pcap(pipeline, "/no/such/file.pcap").ok());
  pipeline.finish();
}

TEST(Replay, PacedReplayRespectsTimeScale) {
  const World world = tiny_world();
  RuruPipeline pipeline(tiny_config(), world.geo, world.as);
  pipeline.start();
  // 0.5 s of scenario time at 10x fast-forward ~= 50 ms of wall time.
  auto model = scenarios::transpacific(4, 100.0, Duration::from_sec(0.5));
  const auto stats = replay_scenario_paced(pipeline, model, /*time_scale=*/10.0);
  pipeline.finish();
  EXPECT_GT(stats.frames, 50u);
  EXPECT_GE(stats.wall_seconds, 0.03);  // actually paced, not instant
  EXPECT_LT(stats.wall_seconds, 2.0);   // but compressed well below 0.5 s x frames
  EXPECT_EQ(stats.inject_drops, 0u);
  EXPECT_EQ(pipeline.summary().nic.rx_packets, stats.frames);
}

TEST(Replay, UmbrellaHeaderCompiles) {
  // core/ruru.hpp is the public entry point; this test exists so a
  // regression in any re-exported header breaks visibly.
  SUCCEED();
}

TEST(Replay, ScenarioStatsAccounting) {
  const World world = tiny_world();
  RuruPipeline pipeline(tiny_config(), world.geo, world.as);
  pipeline.start();
  auto model = scenarios::transpacific(9, 50.0, Duration::from_sec(1.0));
  const auto stats = replay_scenario(pipeline, model);
  pipeline.finish();
  EXPECT_EQ(stats.frames, model.frames_emitted());
  EXPECT_GT(stats.bytes, stats.frames * 50);  // frames are > 50B each
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.frames_per_sec(), 0.0);
  EXPECT_GT(stats.gbits_per_sec(), 0.0);
}

}  // namespace
}  // namespace ruru
