// Multi-core scale-out invariants (ISSUE 6): whatever the worker count,
// the measurement output is bit-identical — symmetric RSS pins both
// directions of a flow to one queue, sharded producer lanes enqueue
// per-queue streams identical to the single-producer path, and the bus
// fan-in lanes conserve every sample (delivered + dropped == published).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <tuple>
#include <vector>

#include "capture/scenarios.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "geo/world.hpp"
#include "msg/codec.hpp"

namespace ruru {
namespace {

World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto w = build_world(specs);
  EXPECT_TRUE(w.ok()) << w.error();
  return std::move(w).value();
}

/// Everything that identifies one measurement, minus queue_id (which
/// legitimately depends on N: hash % num_queues).
using SampleFacts = std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>;

struct RunResult {
  std::vector<SampleFacts> samples;  // sorted
  std::uint64_t emitted = 0;
  std::uint64_t bus_published = 0;
  std::uint64_t handshakes = 0;
  std::uint64_t sub_delivered = 0;
  std::uint64_t sub_dropped = 0;
};

RunResult run_sharded(const World& world, std::uint16_t workers) {
  PipelineConfig cfg;
  cfg.num_queues = workers;
  cfg.queue_depth = 8192;
  cfg.enrichment_threads = 1;
  cfg.flow_table_capacity = 1 << 14;
  RuruPipeline pipeline(cfg, world.geo, world.as);

  RunResult result;
  std::mutex mu;
  pipeline.add_enriched_sink([&](const EnrichedSample& s) {
    std::lock_guard lock(mu);
    result.samples.emplace_back(s.started_at.ns, s.completed_at.ns, s.internal.ns,
                                s.external.ns);
  });
  auto sub = pipeline.subscribe(std::string(kLatencyTopic));

  pipeline.start();
  auto model = scenarios::transpacific(0xF162, 1500.0, Duration::from_sec(3.0));
  replay_scenario_sharded(pipeline, model, /*retry_drops=*/true);
  pipeline.finish();

  const PipelineSummary sum = pipeline.summary();
  result.emitted = sum.tracker.samples_emitted;
  result.bus_published = sum.bus_published;
  result.handshakes = sum.tracker.ack_matched;
  result.sub_delivered = sub->delivered();
  result.sub_dropped = sub->dropped();
  std::sort(result.samples.begin(), result.samples.end());
  return result;
}

TEST(Scaling, ShardedNWorkersBitIdenticalTo1Worker) {
  const World world = scenario_world();
  const RunResult one = run_sharded(world, 1);
  ASSERT_GT(one.emitted, 0u);
  ASSERT_EQ(one.samples.size(), one.emitted);

  for (const std::uint16_t workers : {std::uint16_t{2}, std::uint16_t{4}}) {
    const RunResult n = run_sharded(world, workers);
    EXPECT_EQ(n.emitted, one.emitted) << workers << " workers";
    EXPECT_EQ(n.handshakes, one.handshakes) << workers << " workers";
    // Not just the counts: every per-flow timing fact matches, sample
    // for sample.
    EXPECT_EQ(n.samples, one.samples) << workers << " workers";
  }
}

TEST(Scaling, FanInConservesEverySample) {
  const World world = scenario_world();
  for (const std::uint16_t workers : {std::uint16_t{1}, std::uint16_t{2}, std::uint16_t{4}}) {
    const RunResult r = run_sharded(world, workers);
    // Worker-emitted samples all reach the bus (lossless replay, no HWM
    // pressure at this rate), and every published sample is accounted
    // for at our subscriber: accepted or dropped, never silently lost.
    EXPECT_EQ(r.bus_published, r.emitted) << workers << " workers";
    EXPECT_EQ(r.sub_delivered + r.sub_dropped, r.bus_published) << workers << " workers";
  }
}

TEST(Scaling, PinnedTopologyCountsApplyOrFailSoft) {
  const World world = scenario_world();
  // CPU 0 always exists: both workers pin successfully.
  {
    PipelineConfig cfg;
    cfg.num_queues = 2;
    cfg.enrichment_threads = 1;
    cfg.pin_cpus = {0, 0};
    RuruPipeline pipeline(cfg, world.geo, world.as);
    pipeline.start();
    pipeline.finish();
    EXPECT_EQ(pipeline.lcores().pinned(), 2u);
    EXPECT_EQ(pipeline.lcores().pin_failures(), 0u);
  }
  // A CPU id the host does not have: counted as a failure, the pipeline
  // still runs to completion (best-effort contract).
  {
    PipelineConfig cfg;
    cfg.num_queues = 2;
    cfg.enrichment_threads = 1;
    cfg.pin_cpus = {0, 100000};
    RuruPipeline pipeline(cfg, world.geo, world.as);
    pipeline.start();
    auto model = scenarios::transpacific(0xF162, 500.0, Duration::from_sec(1.0));
    replay_scenario_sharded(pipeline, model, /*retry_drops=*/true);
    pipeline.finish();
    EXPECT_EQ(pipeline.lcores().pinned(), 1u);
    EXPECT_EQ(pipeline.lcores().pin_failures(), 1u);
    EXPECT_GT(pipeline.summary().tracker.samples_emitted, 0u);
  }
}

TEST(Scaling, ShardedReplayMatchesWholePortReplay) {
  const World world = scenario_world();
  // Same trace through the single-producer whole-port path: the sharded
  // lanes must reproduce its output exactly (they are the same streams).
  PipelineConfig cfg;
  cfg.num_queues = 4;
  cfg.queue_depth = 8192;
  cfg.enrichment_threads = 1;
  cfg.flow_table_capacity = 1 << 14;
  RuruPipeline whole(cfg, world.geo, world.as);
  whole.start();
  auto model = scenarios::transpacific(0xF162, 1500.0, Duration::from_sec(3.0));
  replay_scenario(whole, model, /*retry_drops=*/true);
  whole.finish();

  const RunResult sharded = run_sharded(world, 4);
  EXPECT_EQ(sharded.emitted, whole.summary().tracker.samples_emitted);
  EXPECT_EQ(sharded.handshakes, whole.summary().tracker.ack_matched);
}

}  // namespace
}  // namespace ruru
