// Fan-in lanes: N single-producer publish lanes per subscription plus
// the shared queue (ISSUE 6 — contention-free bus fan-in).  What these
// tests pin down:
//  * per-lane FIFO ordering survives concurrent multi-lane publishing;
//  * sample conservation: published == delivered + dropped, exactly,
//    with batch weights;
//  * each lane gets the full HWM and drops independently;
//  * lane indexes past a subscriber's topology fall back to the shared
//    queue (mixed-topology safety);
//  * close() wakes consumers only after every lane is drained.

#include "msg/pubsub.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace ruru {
namespace {

Message msg(std::string_view topic, std::string_view payload) {
  Message m(topic);
  m.add(Frame::from_string(payload));
  return m;
}

TEST(FanIn, LanePublishDelivers) {
  PubSocket pub(/*default_hwm=*/64, /*fanin_lanes=*/4);
  auto sub = pub.subscribe("t");
  EXPECT_EQ(sub->lanes(), 4u);
  EXPECT_EQ(pub.publish_lane(2, msg("t", "x")), 1u);
  const auto m = sub->try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->frames[1].view(), "x");
  EXPECT_EQ(sub->delivered(), 1u);
}

TEST(FanIn, PerLaneFifoUnderConcurrentPublishers) {
  constexpr std::size_t kLanes = 4;
  constexpr int kPerLane = 2000;
  PubSocket pub(/*default_hwm=*/kLanes * kPerLane, /*fanin_lanes=*/kLanes);
  auto sub = pub.subscribe("t");

  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&pub, lane] {
      for (int i = 0; i < kPerLane; ++i) {
        const std::string payload = std::to_string(lane) + ":" + std::to_string(i);
        pub.publish_lane(lane, msg("t", payload));
      }
    });
  }

  // Concurrent consumer: per-lane sequence numbers must arrive in order
  // even while lanes interleave arbitrarily.
  std::vector<int> next_seq(kLanes, 0);
  std::uint64_t received = 0;
  bool fifo = true;
  std::thread consumer([&] {
    while (const auto m = sub->recv()) {
      const std::string payload(m->frames[1].view());
      const auto colon = payload.find(':');
      const std::size_t lane = std::stoul(payload.substr(0, colon));
      const int seq = std::stoi(payload.substr(colon + 1));
      fifo = fifo && seq == next_seq[lane];
      ++next_seq[lane];
      ++received;
    }
  });
  for (auto& t : producers) t.join();
  pub.close_all();
  consumer.join();

  EXPECT_TRUE(fifo);
  EXPECT_EQ(received, static_cast<std::uint64_t>(kLanes) * kPerLane);
  EXPECT_EQ(sub->dropped(), 0u);
}

TEST(FanIn, SampleConservationWithBatchWeights) {
  constexpr std::size_t kLanes = 3;
  PubSocket pub(/*default_hwm=*/8, /*fanin_lanes=*/kLanes);
  auto sub = pub.subscribe("t", /*hwm=*/8);

  // 3 lanes x 16 messages of 5 samples each into HWM 8: some accepted,
  // some dropped, the ledger must balance to the sample.
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (int i = 0; i < 16; ++i) pub.publish_lane(lane, msg("t", "b"), /*samples=*/5);
  }
  EXPECT_EQ(pub.published(), kLanes * 16u * 5u);
  EXPECT_EQ(sub->delivered() + sub->dropped(), pub.published());
  // Each lane holds its full HWM of messages: 3 lanes x 8 accepted.
  EXPECT_EQ(sub->delivered(), kLanes * 8u * 5u);
}

TEST(FanIn, EachLaneGetsFullHwm) {
  PubSocket pub(/*default_hwm=*/4, /*fanin_lanes=*/2);
  auto sub = pub.subscribe("t", /*hwm=*/4);
  // Fill lane 0 past its HWM; lane 1 must still accept everything.
  for (int i = 0; i < 10; ++i) pub.publish_lane(0, msg("t", "a"));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(pub.publish_lane(1, msg("t", "b")), 1u);
  EXPECT_EQ(sub->delivered(), 8u);  // 4 on each lane
  EXPECT_EQ(sub->dropped(), 6u);
}

TEST(FanIn, LanePastTopologyFallsBackToSharedQueue) {
  PubSocket with_lanes(/*default_hwm=*/16, /*fanin_lanes=*/2);
  auto sub = with_lanes.subscribe("t");
  // Lane 7 exceeds the 2-lane topology: lands on the shared queue, not
  // dropped, not out of range.
  EXPECT_EQ(with_lanes.publish_lane(7, msg("t", "x")), 1u);
  EXPECT_TRUE(sub->try_recv().has_value());

  // A lane-less socket behaves the same: publish_lane == publish.
  PubSocket no_lanes;
  auto plain = no_lanes.subscribe("t");
  EXPECT_EQ(no_lanes.publish_lane(3, msg("t", "y")), 1u);
  EXPECT_TRUE(plain->try_recv().has_value());
}

TEST(FanIn, CloseDrainsEveryLaneBeforeEof) {
  PubSocket pub(/*default_hwm=*/64, /*fanin_lanes=*/3);
  auto sub = pub.subscribe("t");
  for (std::size_t lane = 0; lane < 3; ++lane) {
    for (int i = 0; i < 5; ++i) pub.publish_lane(lane, msg("t", "x"));
  }
  pub.publish(msg("t", "shared"));
  pub.close_all();
  // All 16 queued messages must come out before the EOF nullopt.
  int drained = 0;
  while (sub->recv().has_value()) ++drained;
  EXPECT_EQ(drained, 16);
  EXPECT_FALSE(sub->recv().has_value());  // stays EOF
}

TEST(FanIn, SharedQueuePublishStillWorksAlongsideLanes) {
  PubSocket pub(/*default_hwm=*/16, /*fanin_lanes=*/2);
  auto sub = pub.subscribe("t");
  pub.publish_lane(0, msg("t", "lane"));
  pub.publish(msg("t", "shared"));
  int got = 0;
  while (sub->try_recv().has_value()) ++got;
  EXPECT_EQ(got, 2);
  EXPECT_EQ(sub->delivered(), 2u);
}

}  // namespace
}  // namespace ruru
