// Fan-in lanes: N single-producer publish lanes per subscription plus
// the shared queue (ISSUE 6 — contention-free bus fan-in).  What these
// tests pin down:
//  * per-lane FIFO ordering survives concurrent multi-lane publishing;
//  * sample conservation: published == delivered + dropped, exactly,
//    with batch weights;
//  * each lane gets the full HWM and drops independently;
//  * lane indexes past a subscriber's topology fall back to the shared
//    queue (mixed-topology safety);
//  * close() wakes consumers only after every lane is drained.

#include "msg/pubsub.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace ruru {
namespace {

Message msg(std::string_view topic, std::string_view payload) {
  Message m(topic);
  m.add(Frame::from_string(payload));
  return m;
}

TEST(FanIn, LanePublishDelivers) {
  PubSocket pub(/*default_hwm=*/64, /*fanin_lanes=*/4);
  auto sub = pub.subscribe("t");
  EXPECT_EQ(sub->lanes(), 4u);
  EXPECT_EQ(pub.publish_lane(2, msg("t", "x")), 1u);
  const auto m = sub->try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->frames[1].view(), "x");
  EXPECT_EQ(sub->delivered(), 1u);
}

TEST(FanIn, PerLaneFifoUnderConcurrentPublishers) {
  constexpr std::size_t kLanes = 4;
  constexpr int kPerLane = 2000;
  PubSocket pub(/*default_hwm=*/kLanes * kPerLane, /*fanin_lanes=*/kLanes);
  auto sub = pub.subscribe("t");

  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&pub, lane] {
      for (int i = 0; i < kPerLane; ++i) {
        const std::string payload = std::to_string(lane) + ":" + std::to_string(i);
        pub.publish_lane(lane, msg("t", payload));
      }
    });
  }

  // Concurrent consumer: per-lane sequence numbers must arrive in order
  // even while lanes interleave arbitrarily.
  std::vector<int> next_seq(kLanes, 0);
  std::uint64_t received = 0;
  bool fifo = true;
  std::thread consumer([&] {
    while (const auto m = sub->recv()) {
      const std::string payload(m->frames[1].view());
      const auto colon = payload.find(':');
      const std::size_t lane = std::stoul(payload.substr(0, colon));
      const int seq = std::stoi(payload.substr(colon + 1));
      fifo = fifo && seq == next_seq[lane];
      ++next_seq[lane];
      ++received;
    }
  });
  for (auto& t : producers) t.join();
  pub.close_all();
  consumer.join();

  EXPECT_TRUE(fifo);
  EXPECT_EQ(received, static_cast<std::uint64_t>(kLanes) * kPerLane);
  EXPECT_EQ(sub->dropped(), 0u);
}

TEST(FanIn, SampleConservationWithBatchWeights) {
  constexpr std::size_t kLanes = 3;
  PubSocket pub(/*default_hwm=*/8, /*fanin_lanes=*/kLanes);
  auto sub = pub.subscribe("t", /*hwm=*/8);

  // 3 lanes x 16 messages of 5 samples each into HWM 8: some accepted,
  // some dropped, the ledger must balance to the sample.
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (int i = 0; i < 16; ++i) pub.publish_lane(lane, msg("t", "b"), /*samples=*/5);
  }
  EXPECT_EQ(pub.published(), kLanes * 16u * 5u);
  EXPECT_EQ(sub->delivered() + sub->dropped(), pub.published());
  // Each lane holds its full HWM of messages: 3 lanes x 8 accepted.
  EXPECT_EQ(sub->delivered(), kLanes * 8u * 5u);
}

TEST(FanIn, EachLaneGetsFullHwm) {
  PubSocket pub(/*default_hwm=*/4, /*fanin_lanes=*/2);
  auto sub = pub.subscribe("t", /*hwm=*/4);
  // Fill lane 0 past its HWM; lane 1 must still accept everything.
  for (int i = 0; i < 10; ++i) pub.publish_lane(0, msg("t", "a"));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(pub.publish_lane(1, msg("t", "b")), 1u);
  EXPECT_EQ(sub->delivered(), 8u);  // 4 on each lane
  EXPECT_EQ(sub->dropped(), 6u);
}

TEST(FanIn, LanePastTopologyFallsBackToSharedQueue) {
  PubSocket with_lanes(/*default_hwm=*/16, /*fanin_lanes=*/2);
  auto sub = with_lanes.subscribe("t");
  // Lane 7 exceeds the 2-lane topology: lands on the shared queue, not
  // dropped, not out of range.
  EXPECT_EQ(with_lanes.publish_lane(7, msg("t", "x")), 1u);
  EXPECT_TRUE(sub->try_recv().has_value());

  // A lane-less socket behaves the same: publish_lane == publish.
  PubSocket no_lanes;
  auto plain = no_lanes.subscribe("t");
  EXPECT_EQ(no_lanes.publish_lane(3, msg("t", "y")), 1u);
  EXPECT_TRUE(plain->try_recv().has_value());
}

TEST(FanIn, CloseDrainsEveryLaneBeforeEof) {
  PubSocket pub(/*default_hwm=*/64, /*fanin_lanes=*/3);
  auto sub = pub.subscribe("t");
  for (std::size_t lane = 0; lane < 3; ++lane) {
    for (int i = 0; i < 5; ++i) pub.publish_lane(lane, msg("t", "x"));
  }
  pub.publish(msg("t", "shared"));
  pub.close_all();
  // All 16 queued messages must come out before the EOF nullopt.
  int drained = 0;
  while (sub->recv().has_value()) ++drained;
  EXPECT_EQ(drained, 16);
  EXPECT_FALSE(sub->recv().has_value());  // stays EOF
}

TEST(FanIn, SharedQueuePublishStillWorksAlongsideLanes) {
  PubSocket pub(/*default_hwm=*/16, /*fanin_lanes=*/2);
  auto sub = pub.subscribe("t");
  pub.publish_lane(0, msg("t", "lane"));
  pub.publish(msg("t", "shared"));
  int got = 0;
  while (sub->try_recv().has_value()) ++got;
  EXPECT_EQ(got, 2);
  EXPECT_EQ(sub->delivered(), 2u);
}

// ---- Sharded receive (recv_shard): each consumer owns the lanes where
// lane % nshards == shard, making lane pops SPSC and keeping a
// publisher lane's messages on one consumer, in order.

TEST(ShardedRecv, TryRecvShardOnlyTouchesOwnLanes) {
  PubSocket pub(/*default_hwm=*/16, /*fanin_lanes=*/4);
  auto sub = pub.subscribe("t");
  for (std::size_t lane = 0; lane < 4; ++lane) {
    pub.publish_lane(lane, msg("t", std::to_string(lane)));
  }
  // Shard 1 of 2 owns lanes 1 and 3 — and must never see 0 or 2.
  std::vector<std::string> got;
  while (const auto m = sub->try_recv_shard(1, 2)) got.emplace_back(m->frames[1].view());
  EXPECT_EQ(got.size(), 2u);
  for (const auto& p : got) EXPECT_TRUE(p == "1" || p == "3") << p;
  // Shard 0 of 2 drains the rest.
  got.clear();
  while (const auto m = sub->try_recv_shard(0, 2)) got.emplace_back(m->frames[1].view());
  EXPECT_EQ(got.size(), 2u);
  for (const auto& p : got) EXPECT_TRUE(p == "0" || p == "2") << p;
}

TEST(ShardedRecv, SharedQueueGoesToShardZero) {
  PubSocket pub(/*default_hwm=*/16, /*fanin_lanes=*/2);
  auto sub = pub.subscribe("t");
  pub.publish(msg("t", "shared"));
  EXPECT_FALSE(sub->try_recv_shard(1, 2).has_value());
  const auto m = sub->try_recv_shard(0, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->frames[1].view(), "shared");
}

TEST(ShardedRecv, DegradesToRecvWithoutLanes) {
  // A lane-less subscription has nothing to shard: any shard index
  // behaves exactly like recv(), so mixed topologies stay live.
  PubSocket pub(/*default_hwm=*/16, /*fanin_lanes=*/0);
  auto sub = pub.subscribe("t");
  pub.publish(msg("t", "x"));
  const auto m = sub->try_recv_shard(3, 4);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->frames[1].view(), "x");
}

TEST(ShardedRecv, NshardsOneIsPlainRecv) {
  PubSocket pub(/*default_hwm=*/16, /*fanin_lanes=*/3);
  auto sub = pub.subscribe("t");
  pub.publish_lane(0, msg("t", "a"));
  pub.publish_lane(2, msg("t", "b"));
  pub.publish(msg("t", "c"));
  int got = 0;
  while (sub->try_recv_shard(0, 1).has_value()) ++got;
  EXPECT_EQ(got, 3);
}

TEST(ShardedRecv, ConservationAcrossConcurrentShardConsumers) {
  // 5 lanes over 3 shard consumers (uneven split: shard 0 -> lanes 0,3
  // + shared queue; shard 1 -> 1,4; shard 2 -> 2).  Every message must
  // arrive exactly once, per-lane FIFO must hold within each consumer,
  // and every consumer must see EOF after close.
  constexpr std::size_t kLanes = 5;
  constexpr std::size_t kShards = 3;
  constexpr int kPerLane = 3000;
  constexpr int kShared = 500;
  PubSocket pub(/*default_hwm=*/kLanes * kPerLane + kShared, /*fanin_lanes=*/kLanes);
  auto sub = pub.subscribe("t");

  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&pub, lane] {
      for (int i = 0; i < kPerLane; ++i) {
        pub.publish_lane(lane, msg("t", std::to_string(lane) + ":" + std::to_string(i)));
      }
    });
  }
  producers.emplace_back([&pub] {
    for (int i = 0; i < kShared; ++i) pub.publish(msg("t", "s:" + std::to_string(i)));
  });

  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> shared_received{0};
  std::atomic<bool> fifo{true};
  std::atomic<bool> lane_ownership{true};
  std::vector<std::thread> consumers;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    consumers.emplace_back([&, shard] {
      std::vector<int> next_seq(kLanes, 0);
      int next_shared = 0;
      while (const auto m = sub->recv_shard(shard, kShards)) {
        const std::string payload(m->frames[1].view());
        const auto colon = payload.find(':');
        const int seq = std::stoi(payload.substr(colon + 1));
        if (payload[0] == 's') {
          // Shared-queue messages only ever reach shard 0, in order.
          if (shard != 0 || seq != next_shared) lane_ownership.store(false);
          ++next_shared;
          shared_received.fetch_add(1);
        } else {
          const std::size_t lane = std::stoul(payload.substr(0, colon));
          if (lane % kShards != shard) lane_ownership.store(false);
          if (seq != next_seq[lane]) fifo.store(false);
          ++next_seq[lane];
        }
        received.fetch_add(1);
      }
      // EOF is sticky per shard.
      EXPECT_FALSE(sub->recv_shard(shard, kShards).has_value());
    });
  }

  for (auto& t : producers) t.join();
  pub.close_all();
  for (auto& t : consumers) t.join();

  EXPECT_TRUE(fifo.load());
  EXPECT_TRUE(lane_ownership.load());
  EXPECT_EQ(received.load(), static_cast<std::uint64_t>(kLanes) * kPerLane + kShared);
  EXPECT_EQ(shared_received.load(), static_cast<std::uint64_t>(kShared));
  EXPECT_EQ(sub->dropped(), 0u);
}

TEST(ShardedRecv, ShardBeyondLaneCountSeesEofAfterClose) {
  // 2 lanes, 4 shards: shards 2 and 3 own nothing and must not hang.
  PubSocket pub(/*default_hwm=*/16, /*fanin_lanes=*/2);
  auto sub = pub.subscribe("t");
  pub.publish_lane(0, msg("t", "a"));
  pub.publish_lane(1, msg("t", "b"));
  pub.close_all();
  EXPECT_FALSE(sub->recv_shard(2, 4).has_value());
  EXPECT_FALSE(sub->recv_shard(3, 4).has_value());
  EXPECT_TRUE(sub->recv_shard(0, 4).has_value());
  EXPECT_TRUE(sub->recv_shard(1, 4).has_value());
}

}  // namespace
}  // namespace ruru
