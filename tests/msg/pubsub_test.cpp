#include "msg/pubsub.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ruru {
namespace {

Message msg(std::string_view topic, std::string_view payload) {
  Message m(topic);
  m.add(Frame::from_string(payload));
  return m;
}

TEST(PubSub, DeliverToMatchingSubscriber) {
  PubSocket pub;
  auto sub = pub.subscribe("ruru.");
  EXPECT_EQ(pub.publish(msg("ruru.latency", "x")), 1u);
  const auto m = sub->try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->topic(), "ruru.latency");
  EXPECT_EQ(m->frames[1].view(), "x");
}

TEST(PubSub, TopicPrefixFiltering) {
  PubSocket pub;
  auto lat = pub.subscribe("ruru.latency");
  auto all = pub.subscribe("");
  auto other = pub.subscribe("ruru.alerts");

  pub.publish(msg("ruru.latency", "a"));
  EXPECT_TRUE(lat->try_recv().has_value());
  EXPECT_TRUE(all->try_recv().has_value());
  EXPECT_FALSE(other->try_recv().has_value());
  EXPECT_EQ(other->delivered(), 0u);
}

TEST(PubSub, HwmDropsInsteadOfBlocking) {
  PubSocket pub;
  auto sub = pub.subscribe("t", /*hwm=*/4);
  for (int i = 0; i < 10; ++i) pub.publish(msg("t", "x"));
  EXPECT_EQ(sub->delivered(), 4u);
  EXPECT_EQ(sub->dropped(), 6u);
  EXPECT_EQ(sub->pending(), 4u);
  // The publisher itself never blocked: all 10 publishes returned.
  EXPECT_EQ(pub.published(), 10u);
}

TEST(PubSub, NoSubscribersIsFine) {
  PubSocket pub;
  EXPECT_EQ(pub.publish(msg("t", "x")), 0u);
}

TEST(PubSub, MultipleSubscribersEachGetACopy) {
  PubSocket pub;
  auto a = pub.subscribe("");
  auto b = pub.subscribe("");
  pub.publish(msg("t", "payload"));
  const auto ma = a->try_recv();
  const auto mb = b->try_recv();
  ASSERT_TRUE(ma && mb);
  // Zero-copy: both received messages share the same payload buffer.
  EXPECT_EQ(ma->frames[1].data(), mb->frames[1].data());
}

TEST(PubSub, CloseAllSignalsConsumers) {
  PubSocket pub;
  auto sub = pub.subscribe("");
  pub.publish(msg("t", "1"));
  pub.close_all();
  EXPECT_TRUE(sub->recv().has_value());   // drains the backlog
  EXPECT_FALSE(sub->recv().has_value());  // then reports closed
}

TEST(PubSub, BlockingRecvWokenByPublish) {
  PubSocket pub;
  auto sub = pub.subscribe("");
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto m = sub->recv();
    got = m.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pub.publish(msg("t", "wake"));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(PubSub, ConcurrentPublishersAllDeliver) {
  PubSocket pub;
  auto sub = pub.subscribe("", 1 << 16);
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> pubs;
  for (int t = 0; t < 4; ++t) {
    pubs.emplace_back([&pub] {
      for (int i = 0; i < kPerThread; ++i) pub.publish(msg("t", "x"));
    });
  }
  for (auto& t : pubs) t.join();
  EXPECT_EQ(sub->delivered(), 4u * kPerThread);
  EXPECT_EQ(sub->dropped(), 0u);
}

TEST(PubSub, BlockPolicyStallsPublisherUntilDrained) {
  PubSocket pub;
  auto sub = pub.subscribe("", /*hwm=*/2, HwmPolicy::kBlock);
  pub.publish(msg("t", "1"));
  pub.publish(msg("t", "2"));

  std::atomic<bool> third_published{false};
  std::thread publisher([&] {
    pub.publish(msg("t", "3"));  // blocks at HWM
    third_published = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_published.load());  // backpressure, unlike kDrop
  EXPECT_TRUE(sub->try_recv().has_value());
  publisher.join();
  EXPECT_TRUE(third_published.load());
  EXPECT_EQ(sub->dropped(), 0u);
  EXPECT_EQ(sub->delivered(), 3u);
}

TEST(PubSub, BlockPolicyUnblocksOnClose) {
  PubSocket pub;
  auto sub = pub.subscribe("", 1, HwmPolicy::kBlock);
  pub.publish(msg("t", "1"));
  std::thread publisher([&] { pub.publish(msg("t", "2")); });  // blocks
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pub.close_all();  // must release the stuck publisher
  publisher.join();
  SUCCEED();
}

TEST(PubSub, WeightedPublishCountsSamples) {
  PubSocket pub;
  auto sub = pub.subscribe("t", /*hwm=*/2);
  // Two batched messages accepted, one dropped at the HWM: counters are
  // denominated in samples, so the drop loses the whole batch's worth.
  EXPECT_EQ(pub.publish(msg("t", "batch"), 32), 1u);
  EXPECT_EQ(pub.publish(msg("t", "batch"), 32), 1u);
  EXPECT_EQ(pub.publish(msg("t", "batch"), 32), 0u);
  EXPECT_EQ(pub.published(), 96u);
  EXPECT_EQ(sub->delivered(), 64u);
  EXPECT_EQ(sub->dropped(), 32u);
  EXPECT_EQ(sub->pending(), 2u);  // pending stays in messages
}

// Subscribing concurrently with a publishing thread must never lose or
// duplicate deliveries: a subscriber created before the stream starts
// sees every sample exactly once, and late subscribers see a suffix.
TEST(PubSub, ConcurrentSubscribeDuringPublish) {
  PubSocket pub;
  constexpr std::uint64_t kMessages = 20'000;
  auto early = pub.subscribe("t", kMessages + 16);

  std::atomic<bool> go{false};
  std::thread publisher([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t i = 0; i < kMessages; ++i) pub.publish(msg("t", "x"));
  });

  std::vector<std::shared_ptr<Subscription>> late;
  go.store(true, std::memory_order_release);
  for (int i = 0; i < 64; ++i) {
    late.push_back(pub.subscribe("t", kMessages + 16));
  }
  publisher.join();

  EXPECT_EQ(early->delivered(), kMessages);
  EXPECT_EQ(early->dropped(), 0u);
  std::uint64_t drained = 0;
  while (early->try_recv()) ++drained;
  EXPECT_EQ(drained, kMessages);
  for (const auto& sub : late) {
    // A late subscriber sees only messages published after it attached —
    // never more than the stream, never a drop at this HWM.
    EXPECT_LE(sub->delivered(), kMessages);
    EXPECT_EQ(sub->dropped(), 0u);
    std::uint64_t got = 0;
    while (sub->try_recv()) ++got;
    EXPECT_EQ(got, sub->delivered());
  }
  EXPECT_EQ(pub.subscriber_count(), 65u);
}

TEST(PubSub, SubscribeMidStreamSeesOnlyNewMessages) {
  PubSocket pub;
  pub.publish(msg("t", "before"));
  auto sub = pub.subscribe("");
  pub.publish(msg("t", "after"));
  const auto m = sub->try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->frames[1].view(), "after");
  EXPECT_FALSE(sub->try_recv().has_value());
}

}  // namespace
}  // namespace ruru
