#include "msg/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "msg/codec.hpp"

namespace ruru {
namespace {

Message msg(std::string_view topic, std::string_view payload) {
  Message m(topic);
  m.add(Frame::from_string(payload));
  return m;
}

void wait_for_clients(const TcpBusServer& server, std::size_t n) {
  for (int i = 0; i < 500 && server.client_count() < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.client_count(), n);
}

TEST(TcpTransport, BindEphemeralPort) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  EXPECT_NE(server.port(), 0);
  server.close();
}

TEST(TcpTransport, SingleClientReceivesMessages) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto client = TcpBusClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.error();
  wait_for_clients(server, 1);

  EXPECT_EQ(server.publish(msg("ruru.latency", "abc")), 1u);
  const auto m = client.value().recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->topic(), "ruru.latency");
  EXPECT_EQ(m->frames[1].view(), "abc");
}

TEST(TcpTransport, MultipleClientsAllReceive) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto c1 = TcpBusClient::connect("127.0.0.1", server.port());
  auto c2 = TcpBusClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(c1.ok() && c2.ok());
  wait_for_clients(server, 2);

  EXPECT_EQ(server.publish(msg("t", "fanout")), 2u);
  EXPECT_EQ(c1.value().recv()->frames[1].view(), "fanout");
  EXPECT_EQ(c2.value().recv()->frames[1].view(), "fanout");
}

TEST(TcpTransport, MultiFrameAndBinaryPayloads) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto client = TcpBusClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  wait_for_clients(server, 1);

  LatencySample s;
  s.client = Ipv4Address(10, 1, 0, 1);
  s.server = Ipv4Address(10, 2, 0, 1);
  s.syn_time = Timestamp::from_ms(1);
  s.synack_time = Timestamp::from_ms(129);
  s.ack_time = Timestamp::from_ms(134);
  server.publish(encode_latency_sample(s));

  const auto m = client.value().recv();
  ASSERT_TRUE(m.has_value());
  const auto decoded = decode_latency_sample(m->frames[1]);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->external().ns, Duration::from_ms(128).ns);
}

TEST(TcpTransport, DisconnectedClientIsPruned) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  {
    auto client = TcpBusClient::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    wait_for_clients(server, 1);
  }  // client closes
  // Publishing into the closed socket eventually fails and prunes.
  for (int i = 0; i < 50 && server.client_count() > 0; ++i) {
    server.publish(msg("t", std::string(1024, 'x')));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.client_count(), 0u);
  EXPECT_GE(server.disconnects(), 1u);
}

TEST(TcpTransport, StalledLivelyClientIsDroppedNotWaitedOn) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto client = TcpBusClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  wait_for_clients(server, 1);

  // The client never reads. Pumping large messages fills the socket
  // buffers; the bounded send (100 ms) then fails and the client is
  // dropped — the publisher must not hang indefinitely.
  Message big("t");
  big.add(Frame::adopt(std::vector<std::uint8_t>(64 * 1024, 0x55)));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 200 && server.client_count() > 0; ++i) {
    server.publish(big);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_EQ(server.client_count(), 0u);
  EXPECT_GE(server.disconnects(), 1u);
  EXPECT_LT(secs, 10.0);  // bounded, not a hang
}

TEST(TcpTransport, ClientRecvReturnsNulloptOnServerClose) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto client = TcpBusClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  wait_for_clients(server, 1);
  server.close();
  EXPECT_FALSE(client.value().recv().has_value());
}

TEST(TcpTransport, ConnectToClosedPortFails) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  const std::uint16_t port = server.port();
  server.close();
  const auto client = TcpBusClient::connect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

TEST(TcpTransport, ManyMessagesInOrder) {
  TcpBusServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto client = TcpBusClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  wait_for_clients(server, 1);

  constexpr int kCount = 500;
  std::thread publisher([&] {
    for (int i = 0; i < kCount; ++i) server.publish(msg("seq", std::to_string(i)));
  });
  for (int i = 0; i < kCount; ++i) {
    const auto m = client.value().recv();
    ASSERT_TRUE(m.has_value()) << "at " << i;
    EXPECT_EQ(m->frames[1].view(), std::to_string(i));
  }
  publisher.join();
}

}  // namespace
}  // namespace ruru
