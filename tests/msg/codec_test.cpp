#include "msg/codec.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace ruru {
namespace {

LatencySample sample_v4() {
  LatencySample s;
  s.client = Ipv4Address(10, 1, 0, 7);
  s.server = Ipv4Address(10, 2, 3, 4);
  s.client_port = 40'123;
  s.server_port = 443;
  s.syn_time = Timestamp::from_ns(1'000'000'123);
  s.synack_time = Timestamp::from_ns(1'128'000'456);
  s.ack_time = Timestamp::from_ns(1'133'000'789);
  s.rss_hash = 0xDEADBEEF;
  s.queue_id = 3;
  return s;
}

TEST(Codec, RoundTripV4) {
  const LatencySample s = sample_v4();
  const Message m = encode_latency_sample(s);
  EXPECT_EQ(m.topic(), kLatencyTopic);
  ASSERT_EQ(m.frames.size(), 2u);

  const auto d = decode_latency_sample(m.frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->client == s.client);
  EXPECT_TRUE(d->server == s.server);
  EXPECT_EQ(d->client_port, s.client_port);
  EXPECT_EQ(d->server_port, s.server_port);
  EXPECT_EQ(d->syn_time.ns, s.syn_time.ns);
  EXPECT_EQ(d->synack_time.ns, s.synack_time.ns);
  EXPECT_EQ(d->ack_time.ns, s.ack_time.ns);
  EXPECT_EQ(d->rss_hash, s.rss_hash);
  EXPECT_EQ(d->queue_id, s.queue_id);
  // Derived latencies survive the trip exactly.
  EXPECT_EQ(d->external().ns, s.external().ns);
  EXPECT_EQ(d->internal().ns, s.internal().ns);
}

TEST(Codec, RoundTripV6) {
  LatencySample s = sample_v4();
  s.client = Ipv6Address::parse("2001:db8::1").value();
  s.server = Ipv6Address::parse("2001:db8:ffff::2").value();
  const Message m = encode_latency_sample(s);
  const auto d = decode_latency_sample(m.frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->client.is_v4());
  EXPECT_EQ(d->client.to_string(), "2001:db8::1");
  EXPECT_EQ(d->server.to_string(), "2001:db8:ffff::2");
}

TEST(Codec, RejectsWrongSize) {
  EXPECT_FALSE(decode_latency_sample(Frame::from_string("short")).has_value());
  EXPECT_FALSE(decode_latency_sample(Frame()).has_value());
  std::vector<std::uint8_t> too_long(200, 0);
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::move(too_long))).has_value());
}

TEST(Codec, RejectsWrongVersionOrFamily) {
  const Message m = encode_latency_sample(sample_v4());
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes[0] = 99;  // bad version
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::vector<std::uint8_t>(bytes))).has_value());
  bytes[0] = 1;
  bytes[1] = 5;  // bad family
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::move(bytes))).has_value());
}

TEST(Codec, RoundTripInflowKindBits) {
  // In-flow and one-sided samples ride the same record: the kind and
  // orientation pack into the family byte's upper bits.
  LatencySample s = sample_v4();
  s.kind = SampleKind::kInflow;
  s.toward_client = true;
  const Message m = encode_latency_sample(s);
  // family byte = 4 | kind<<4 | toward_client<<6
  EXPECT_EQ(m.frames[1].data()[1], 4 | (1 << 4) | (1 << 6));
  auto d = decode_latency_sample(m.frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, SampleKind::kInflow);
  EXPECT_TRUE(d->toward_client);
  EXPECT_EQ(d->total().ns, s.total().ns);

  s.kind = SampleKind::kOneSided;
  s.toward_client = false;
  d = decode_latency_sample(encode_latency_sample(s).frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, SampleKind::kOneSided);
  EXPECT_FALSE(d->toward_client);

  // A handshake sample's family byte is the bare family: the wire format
  // with the feature off is byte-identical to the pre-kind format.
  const Message h = encode_latency_sample(sample_v4());
  EXPECT_EQ(h.frames[1].data()[1], 4);
}

TEST(Codec, RejectsBadKindBits) {
  const Message m = encode_latency_sample(sample_v4());
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes[1] = 4 | (3 << 4);  // kind 3 is unassigned
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::vector<std::uint8_t>(bytes))).has_value());
  bytes[1] = 4 | 0x80;  // reserved high bit
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::move(bytes))).has_value());
}

TEST(CodecBatch, RoundTripMixedKinds) {
  std::vector<LatencySample> in;
  for (int i = 0; i < 30; ++i) {
    LatencySample s = sample_v4();
    s.client_port = static_cast<std::uint16_t>(2000 + i);
    s.kind = static_cast<SampleKind>(i % 3);
    s.toward_client = (i % 2) == 0;
    in.push_back(s);
  }
  const Message m = encode_latency_batch(in);
  std::vector<LatencySample> out;
  ASSERT_TRUE(decode_latency_batch(m.frames[1], out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].kind, in[i].kind) << i;
    EXPECT_EQ(out[i].toward_client, in[i].toward_client) << i;
  }
}

TEST(CodecBatch, RejectsBadKindBitsInRecord) {
  std::vector<LatencySample> in(2, sample_v4());
  const Message m = encode_latency_batch(in);
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes[3 + 67] = 4 | (3 << 4);  // second record: unassigned kind
  std::vector<LatencySample> out;
  EXPECT_FALSE(decode_latency_batch(Frame::adopt(std::move(bytes)), out));
  EXPECT_TRUE(out.empty());
}

TEST(CodecBatch, RoundTripEmpty) {
  const Message m = encode_latency_batch({});
  EXPECT_EQ(m.topic(), kLatencyTopic);
  ASSERT_EQ(m.frames.size(), 2u);
  std::vector<LatencySample> out;
  EXPECT_TRUE(decode_latency_batch(m.frames[1], out));
  EXPECT_TRUE(out.empty());
}

TEST(CodecBatch, RoundTripSingle) {
  const LatencySample s = sample_v4();
  const Message m = encode_latency_batch({&s, 1});
  std::vector<LatencySample> out;
  ASSERT_TRUE(decode_latency_batch(m.frames[1], out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].client == s.client);
  EXPECT_EQ(out[0].ack_time.ns, s.ack_time.ns);
  EXPECT_EQ(out[0].queue_id, s.queue_id);
}

TEST(CodecBatch, RoundTripManyMixedFamilies) {
  std::vector<LatencySample> in;
  for (int i = 0; i < 100; ++i) {
    LatencySample s = sample_v4();
    s.client_port = static_cast<std::uint16_t>(1000 + i);
    s.syn_time = Timestamp::from_ns(i * 1'000);
    if (i % 3 == 0) {
      s.client = Ipv6Address::parse("2001:db8::1").value();
      s.server = Ipv6Address::parse("2001:db8:ffff::2").value();
    }
    in.push_back(s);
  }
  const Message m = encode_latency_batch(in);
  std::vector<LatencySample> out;
  ASSERT_TRUE(decode_latency_batch(m.frames[1], out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_TRUE(out[i].client == in[i].client) << i;
    EXPECT_TRUE(out[i].server == in[i].server) << i;
    EXPECT_EQ(out[i].client_port, in[i].client_port) << i;
    EXPECT_EQ(out[i].syn_time.ns, in[i].syn_time.ns) << i;
  }
}

TEST(CodecBatch, TopicFrameIsInterned) {
  const LatencySample s = sample_v4();
  const Message a = encode_latency_batch({&s, 1});
  const Message b = encode_latency_batch({&s, 1});
  const Message c = encode_latency_sample(s);
  // All latency messages share one topic buffer: no per-publish topic
  // allocation.
  EXPECT_EQ(a.frames[0].data(), b.frames[0].data());
  EXPECT_EQ(a.frames[0].data(), c.frames[0].data());
}

TEST(CodecBatch, RejectsTruncatedPayload) {
  std::vector<LatencySample> in(3, sample_v4());
  const Message m = encode_latency_batch(in);
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes.resize(bytes.size() - 10);  // truncate mid-record
  std::vector<LatencySample> out;
  out.push_back(sample_v4());  // pre-existing content must survive rejection
  EXPECT_FALSE(decode_latency_batch(Frame::adopt(std::move(bytes)), out));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(decode_latency_batch(Frame(), out));
  EXPECT_FALSE(decode_latency_batch(Frame::from_string("xx"), out));
}

TEST(CodecBatch, RejectsCorruptVersionByte) {
  const LatencySample s = sample_v4();
  const Message m = encode_latency_batch({&s, 1});
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes[0] = 99;
  std::vector<LatencySample> out;
  EXPECT_FALSE(decode_latency_batch(Frame::adopt(std::move(bytes)), out));
  EXPECT_TRUE(out.empty());
}

TEST(CodecBatch, RejectsCorruptRecordFamily) {
  std::vector<LatencySample> in(4, sample_v4());
  const Message m = encode_latency_batch(in);
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes[3 + 67 * 2] = 9;  // third record's family byte
  std::vector<LatencySample> out;
  EXPECT_FALSE(decode_latency_batch(Frame::adopt(std::move(bytes)), out));
  EXPECT_TRUE(out.empty());  // whole-batch rejection, no partial decode
}

TEST(CodecBatch, RejectsOversizeRecordCount) {
  // A count beyond kMaxLatencyBatch is rejected even when the payload
  // length matches it exactly (no multi-megabyte allocation, no UB).
  const std::size_t count = kMaxLatencyBatch + 1;
  std::vector<std::uint8_t> bytes(3 + count * 67, 0);
  bytes[0] = 2;
  bytes[1] = static_cast<std::uint8_t>(count >> 8);
  bytes[2] = static_cast<std::uint8_t>(count & 0xFF);
  std::vector<LatencySample> out;
  EXPECT_FALSE(decode_latency_batch(Frame::adopt(std::move(bytes)), out));
  EXPECT_TRUE(out.empty());
}

TEST(CodecBatch, RejectsCountLengthMismatch) {
  const LatencySample s = sample_v4();
  const Message m = encode_latency_batch({&s, 1});
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes[2] = 2;  // claims two records, carries one
  std::vector<LatencySample> out;
  EXPECT_FALSE(decode_latency_batch(Frame::adopt(std::move(bytes)), out));
}

TEST(CodecBatch, PayloadDispatchAcceptsBothVersions) {
  const LatencySample s = sample_v4();
  std::vector<LatencySample> out;
  ASSERT_TRUE(decode_latency_payload(encode_latency_sample(s).frames[1], out));
  ASSERT_TRUE(decode_latency_payload(encode_latency_batch({&s, 1}).frames[1], out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].client == out[1].client);
  EXPECT_FALSE(decode_latency_payload(Frame(), out));
  EXPECT_FALSE(decode_latency_payload(Frame::from_string("junk"), out));
}

TEST(Codec, FuzzRoundTrip) {
  Pcg32 rng(31337);
  for (int i = 0; i < 500; ++i) {
    LatencySample s;
    s.client = Ipv4Address(rng.next_u32());
    s.server = Ipv4Address(rng.next_u32());
    s.client_port = static_cast<std::uint16_t>(rng.next_u32());
    s.server_port = static_cast<std::uint16_t>(rng.next_u32());
    s.syn_time = Timestamp::from_ns(static_cast<std::int64_t>(rng.next_u64() >> 1));
    s.synack_time = Timestamp::from_ns(static_cast<std::int64_t>(rng.next_u64() >> 1));
    s.ack_time = Timestamp::from_ns(static_cast<std::int64_t>(rng.next_u64() >> 1));
    s.rss_hash = rng.next_u32();
    s.queue_id = static_cast<std::uint16_t>(rng.next_u32());
    const auto d = decode_latency_sample(encode_latency_sample(s).frames[1]);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->client == s.client);
    EXPECT_EQ(d->ack_time.ns, s.ack_time.ns);
    EXPECT_EQ(d->rss_hash, s.rss_hash);
  }
}

}  // namespace
}  // namespace ruru
