#include "msg/codec.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace ruru {
namespace {

LatencySample sample_v4() {
  LatencySample s;
  s.client = Ipv4Address(10, 1, 0, 7);
  s.server = Ipv4Address(10, 2, 3, 4);
  s.client_port = 40'123;
  s.server_port = 443;
  s.syn_time = Timestamp::from_ns(1'000'000'123);
  s.synack_time = Timestamp::from_ns(1'128'000'456);
  s.ack_time = Timestamp::from_ns(1'133'000'789);
  s.rss_hash = 0xDEADBEEF;
  s.queue_id = 3;
  return s;
}

TEST(Codec, RoundTripV4) {
  const LatencySample s = sample_v4();
  const Message m = encode_latency_sample(s);
  EXPECT_EQ(m.topic(), kLatencyTopic);
  ASSERT_EQ(m.frames.size(), 2u);

  const auto d = decode_latency_sample(m.frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->client == s.client);
  EXPECT_TRUE(d->server == s.server);
  EXPECT_EQ(d->client_port, s.client_port);
  EXPECT_EQ(d->server_port, s.server_port);
  EXPECT_EQ(d->syn_time.ns, s.syn_time.ns);
  EXPECT_EQ(d->synack_time.ns, s.synack_time.ns);
  EXPECT_EQ(d->ack_time.ns, s.ack_time.ns);
  EXPECT_EQ(d->rss_hash, s.rss_hash);
  EXPECT_EQ(d->queue_id, s.queue_id);
  // Derived latencies survive the trip exactly.
  EXPECT_EQ(d->external().ns, s.external().ns);
  EXPECT_EQ(d->internal().ns, s.internal().ns);
}

TEST(Codec, RoundTripV6) {
  LatencySample s = sample_v4();
  s.client = Ipv6Address::parse("2001:db8::1").value();
  s.server = Ipv6Address::parse("2001:db8:ffff::2").value();
  const Message m = encode_latency_sample(s);
  const auto d = decode_latency_sample(m.frames[1]);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->client.is_v4());
  EXPECT_EQ(d->client.to_string(), "2001:db8::1");
  EXPECT_EQ(d->server.to_string(), "2001:db8:ffff::2");
}

TEST(Codec, RejectsWrongSize) {
  EXPECT_FALSE(decode_latency_sample(Frame::from_string("short")).has_value());
  EXPECT_FALSE(decode_latency_sample(Frame()).has_value());
  std::vector<std::uint8_t> too_long(200, 0);
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::move(too_long))).has_value());
}

TEST(Codec, RejectsWrongVersionOrFamily) {
  const Message m = encode_latency_sample(sample_v4());
  std::vector<std::uint8_t> bytes(m.frames[1].data(), m.frames[1].data() + m.frames[1].size());
  bytes[0] = 99;  // bad version
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::vector<std::uint8_t>(bytes))).has_value());
  bytes[0] = 1;
  bytes[1] = 5;  // bad family
  EXPECT_FALSE(decode_latency_sample(Frame::adopt(std::move(bytes))).has_value());
}

TEST(Codec, FuzzRoundTrip) {
  Pcg32 rng(31337);
  for (int i = 0; i < 500; ++i) {
    LatencySample s;
    s.client = Ipv4Address(rng.next_u32());
    s.server = Ipv4Address(rng.next_u32());
    s.client_port = static_cast<std::uint16_t>(rng.next_u32());
    s.server_port = static_cast<std::uint16_t>(rng.next_u32());
    s.syn_time = Timestamp::from_ns(static_cast<std::int64_t>(rng.next_u64() >> 1));
    s.synack_time = Timestamp::from_ns(static_cast<std::int64_t>(rng.next_u64() >> 1));
    s.ack_time = Timestamp::from_ns(static_cast<std::int64_t>(rng.next_u64() >> 1));
    s.rss_hash = rng.next_u32();
    s.queue_id = static_cast<std::uint16_t>(rng.next_u32());
    const auto d = decode_latency_sample(encode_latency_sample(s).frames[1]);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->client == s.client);
    EXPECT_EQ(d->ack_time.ns, s.ack_time.ns);
    EXPECT_EQ(d->rss_hash, s.rss_hash);
  }
}

}  // namespace
}  // namespace ruru
