#include "msg/bus_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ruru {
namespace {

TEST(BusQueue, FifoWithinCapacity) {
  BusQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BusQueue, EnforcesNonPowerOfTwoHwmExactly) {
  BusQueue<int> q(3);  // backing ring rounds to 4; HWM must stay 3
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.size(), 3u);
}

TEST(BusQueue, HwmOfOne) {
  BusQueue<int> q(1);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(2));
}

TEST(BusQueue, CloseDrainsThenReportsClosed) {
  BusQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  q.close();
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.pop().value(), 1);          // backlog drains
  EXPECT_FALSE(q.pop().has_value());      // then closed
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BusQueue, BlockingPopWokenByPush) {
  BusQueue<int> q(8);
  std::atomic<int> got{0};
  std::thread consumer([&] {
    const auto v = q.pop();
    got.store(v.value_or(-1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(q.try_push(42));
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(BusQueue, BlockingPushWaitsForSpaceAndFailsAfterClose) {
  BusQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer drains
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(second_done.load());
  EXPECT_EQ(q.try_pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_done.load());

  q.close();
  EXPECT_FALSE(q.push(3));  // closed: blocking push returns false
}

TEST(BusQueue, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  BusQueue<std::uint64_t> q(256);

  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        popped_sum.fetch_add(*v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<std::uint64_t>(p) * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : threads) t.join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);  // every value exactly once
}

}  // namespace
}  // namespace ruru
