#include "msg/message.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TEST(Frame, CopyHoldsBytes) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  const Frame f = Frame::copy(data);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f.data()[0], 1);
  EXPECT_EQ(f.data()[3], 4);
  EXPECT_FALSE(f.empty());
}

TEST(Frame, FromString) {
  const Frame f = Frame::from_string("hello");
  EXPECT_EQ(f.view(), "hello");
}

TEST(Frame, AdoptAvoidsCopy) {
  std::vector<std::uint8_t> buf(1000, 7);
  const auto* original_data = buf.data();
  const Frame f = Frame::adopt(std::move(buf));
  EXPECT_EQ(f.data(), original_data);  // same allocation, no copy
  EXPECT_EQ(f.size(), 1000u);
}

TEST(Frame, CopyingFrameSharesBuffer) {
  const Frame a = Frame::from_string("shared");
  EXPECT_EQ(a.use_count(), 1);
  const Frame b = a;  // NOLINT deliberate copy
  EXPECT_EQ(a.data(), b.data());  // zero-copy share
  EXPECT_EQ(a.use_count(), 2);
}

TEST(Frame, DefaultIsEmpty) {
  const Frame f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.use_count(), 0);
}

TEST(Message, TopicIsFirstFrame) {
  Message m("ruru.latency");
  EXPECT_EQ(m.topic(), "ruru.latency");
  m.add(Frame::from_string("payload"));
  EXPECT_EQ(m.frames.size(), 2u);
  EXPECT_EQ(m.total_bytes(), std::string("ruru.latency").size() + 7);
}

TEST(Message, EmptyMessageHasNoTopic) {
  const Message m;
  EXPECT_EQ(m.topic(), "");
  EXPECT_EQ(m.total_bytes(), 0u);
}

TEST(Message, CopySharesAllFrames) {
  Message m("topic");
  m.add(Frame::from_string("payload"));
  const Message copy = m;
  EXPECT_EQ(copy.frames[0].data(), m.frames[0].data());
  EXPECT_EQ(copy.frames[1].data(), m.frames[1].data());
  EXPECT_EQ(m.frames[1].use_count(), 2);
}

}  // namespace
}  // namespace ruru
