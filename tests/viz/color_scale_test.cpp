#include "viz/color_scale.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TEST(ColorScale, DefaultThresholds) {
  ColorScale scale;
  EXPECT_EQ(scale.bucket(Duration::from_ms(50)), ArcColor::kGreen);
  EXPECT_EQ(scale.bucket(Duration::from_ms(149)), ArcColor::kGreen);
  EXPECT_EQ(scale.bucket(Duration::from_ms(150)), ArcColor::kYellow);
  EXPECT_EQ(scale.bucket(Duration::from_ms(299)), ArcColor::kYellow);
  EXPECT_EQ(scale.bucket(Duration::from_ms(300)), ArcColor::kOrange);
  EXPECT_EQ(scale.bucket(Duration::from_ms(600)), ArcColor::kRed);
  EXPECT_EQ(scale.bucket(Duration::from_ms(4130)), ArcColor::kRed);  // firewall glitch
}

TEST(ColorScale, CustomThresholds) {
  ColorThresholds t;
  t.yellow = Duration::from_ms(10);
  t.orange = Duration::from_ms(20);
  t.red = Duration::from_ms(30);
  ColorScale scale(t);
  EXPECT_EQ(scale.bucket(Duration::from_ms(15)), ArcColor::kYellow);
  EXPECT_EQ(scale.bucket(Duration::from_ms(25)), ArcColor::kOrange);
  EXPECT_EQ(scale.bucket(Duration::from_ms(35)), ArcColor::kRed);
}

TEST(ColorScale, NamesAndCss) {
  EXPECT_EQ(to_string(ArcColor::kGreen), "green");
  EXPECT_EQ(to_string(ArcColor::kRed), "red");
  EXPECT_EQ(to_css(ArcColor::kGreen), "#2ecc71");
  EXPECT_EQ(to_css(ArcColor::kRed), "#e74c3c");
  EXPECT_EQ(to_css(ArcColor::kYellow)[0], '#');
  EXPECT_EQ(to_css(ArcColor::kOrange).size(), 7u);
}

TEST(ColorScale, ZeroAndNegativeAreGreen) {
  ColorScale scale;
  EXPECT_EQ(scale.bucket(Duration::from_ms(0)), ArcColor::kGreen);
  EXPECT_EQ(scale.bucket(Duration::from_ms(-5)), ArcColor::kGreen);
}

}  // namespace
}  // namespace ruru
