#include "viz/arc_aggregator.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ruru {
namespace {

EnrichedSample sample(const std::string& src, const std::string& dst, std::int64_t total_ms,
                      double src_lat = -36.8, double dst_lat = 34.0) {
  EnrichedSample s;
  s.client.city_id = geo_names().intern(src);
  s.client.latitude = src_lat;
  s.client.longitude = 174.7;
  s.server.city_id = geo_names().intern(dst);
  s.server.latitude = dst_lat;
  s.server.longitude = -118.2;
  s.total = Duration::from_ms(total_ms);
  s.completed_at = Timestamp::from_ms(total_ms);
  return s;
}

TEST(ArcAggregator, CoalescesSamePairSameColor) {
  ArcAggregator agg;
  for (int i = 0; i < 100; ++i) agg.add(sample("Auckland", "Los Angeles", 130));
  const ArcFrame frame = agg.cut_frame(Timestamp::from_sec(1));
  ASSERT_EQ(frame.arcs.size(), 1u);
  EXPECT_EQ(frame.arcs[0].count, 100u);
  EXPECT_EQ(frame.samples, 100u);
  EXPECT_EQ(frame.arcs[0].src_city, "Auckland");
  EXPECT_EQ(frame.arcs[0].color, ArcColor::kGreen);
}

TEST(ArcAggregator, SeparatesByColorBucket) {
  ArcAggregator agg;
  agg.add(sample("Auckland", "Los Angeles", 130));   // green
  agg.add(sample("Auckland", "Los Angeles", 4130));  // red (glitch)
  const ArcFrame frame = agg.cut_frame(Timestamp::from_sec(1));
  ASSERT_EQ(frame.arcs.size(), 2u);  // red-among-green visual from §3
}

TEST(ArcAggregator, SeparatesByPair) {
  ArcAggregator agg;
  agg.add(sample("Auckland", "Los Angeles", 130));
  agg.add(sample("Wellington", "Los Angeles", 135));
  const ArcFrame frame = agg.cut_frame(Timestamp::from_sec(1));
  EXPECT_EQ(frame.arcs.size(), 2u);
}

TEST(ArcAggregator, TracksMeanAndMax) {
  ArcAggregator agg;
  agg.add(sample("A", "B", 100));
  agg.add(sample("A", "B", 140));
  const ArcFrame frame = agg.cut_frame(Timestamp::from_sec(1));
  ASSERT_EQ(frame.arcs.size(), 1u);
  EXPECT_EQ(frame.arcs[0].max_latency.ns, Duration::from_ms(140).ns);
  EXPECT_EQ(frame.arcs[0].mean_latency.ns, Duration::from_ms(120).ns);
}

TEST(ArcAggregator, CutFrameResetsAccumulation) {
  ArcAggregator agg;
  agg.add(sample("A", "B", 100));
  const ArcFrame f1 = agg.cut_frame(Timestamp::from_sec(1));
  EXPECT_EQ(f1.arcs.size(), 1u);
  const ArcFrame f2 = agg.cut_frame(Timestamp::from_sec(2));
  EXPECT_TRUE(f2.arcs.empty());
  EXPECT_EQ(f2.samples, 0u);
  EXPECT_EQ(f2.sequence, f1.sequence + 1);
  EXPECT_EQ(agg.samples_seen(), 1u);  // lifetime counter unaffected
}

TEST(ArcAggregator, CoordinatesComeFromFirstSample) {
  ArcAggregator agg;
  agg.add(sample("A", "B", 100, -36.8, 34.0));
  const ArcFrame frame = agg.cut_frame(Timestamp::from_sec(1));
  EXPECT_DOUBLE_EQ(frame.arcs[0].src_lat, -36.8);
  EXPECT_DOUBLE_EQ(frame.arcs[0].dst_lat, 34.0);
}

TEST(ArcAggregator, ThousandsOfConnectionsPerFrameStayDrawable) {
  // The paper's claim: thousands of connections/sec rendered at 30 fps.
  // 5000 samples over 20 pairs in one frame -> at most 20*4 arcs.
  ArcAggregator agg;
  for (int i = 0; i < 5000; ++i) {
    agg.add(sample("city" + std::to_string(i % 20), "LA", 100 + (i % 3) * 200));
  }
  const ArcFrame frame = agg.cut_frame(Timestamp::from_sec(1));
  EXPECT_EQ(frame.samples, 5000u);
  EXPECT_LE(frame.arcs.size(), 80u);
  std::uint64_t total = 0;
  for (const auto& a : frame.arcs) total += a.count;
  EXPECT_EQ(total, 5000u);  // no sample lost in coalescing
}

TEST(ArcAggregator, ConcurrentAddsSafe) {
  ArcAggregator agg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&agg] {
      for (int i = 0; i < 2'000; ++i) agg.add(sample("A", "B", 100));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(agg.samples_seen(), 8'000u);
  EXPECT_EQ(agg.cut_frame(Timestamp{}).samples, 8'000u);
}

}  // namespace
}  // namespace ruru
