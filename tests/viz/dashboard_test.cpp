#include "viz/dashboard.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TagSet route_tags() {
  TagSet t;
  t.add("src_city", "Auckland").add("dst_city", "Los Angeles");
  return t;
}

class DashboardTest : public ::testing::Test {
 protected:
  DashboardTest() {
    // 60 s of data: ~130 ms, except a +4000 ms burst at t in [30, 33).
    for (int ms = 0; ms < 60'000; ms += 100) {
      const bool glitch = ms >= 30'000 && ms < 33'000;
      db_.write("total_ms", route_tags(), Timestamp::from_ms(ms), glitch ? 4130.0 : 130.0);
    }
  }
  TsdbEngine db_;
};

TEST_F(DashboardTest, GraphShowsSpikeColumn) {
  DashboardOptions opt;
  opt.graph_width = 60;  // 1 column per second
  opt.graph_height = 6;
  opt.ascii_only = true;
  Dashboard dash(db_, opt);
  const std::string g =
      dash.render_graph("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(60), "max");
  EXPECT_NE(g.find("max(total_ms)"), std::string::npos);
  EXPECT_NE(g.find("peak 4130.0 ms"), std::string::npos);
  // The top row must contain a bar (the glitch) and mostly spaces.
  const std::size_t first_row = g.find('\n') + 1;
  const std::string top_row = g.substr(first_row, g.find('\n', first_row) - first_row);
  EXPECT_NE(top_row.find('#'), std::string::npos);
  const auto bars = static_cast<int>(std::count(top_row.begin(), top_row.end(), '#'));
  EXPECT_LE(bars, 5);  // only the glitch columns reach the top
}

TEST_F(DashboardTest, QuietIntervalFillsAllColumns) {
  // Over a glitch-free interval the scale adapts: every column with data
  // reaches the bottom row (uniform 130 ms values fill the whole graph).
  DashboardOptions opt;
  opt.graph_width = 20;
  opt.graph_height = 4;
  opt.ascii_only = true;
  Dashboard dash(db_, opt);
  const std::string g =
      dash.render_graph("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(20), "max");
  EXPECT_NE(g.find("peak 130.0 ms"), std::string::npos);
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < g.size()) {
    const auto nl = g.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(g.substr(pos, nl - pos));
    pos = nl + 1;
  }
  // All value rows (1..graph_height) fully filled: flat data == max.
  for (int row = 1; row <= opt.graph_height; ++row) {
    const std::string& line = lines[static_cast<std::size_t>(row)];
    EXPECT_EQ(std::count(line.begin(), line.end(), '#'), 20) << "row " << row << ": " << line;
  }
}

TEST_F(DashboardTest, EmptyDataHandled) {
  Dashboard dash(db_);
  EXPECT_EQ(dash.render_graph("nope", TagSet{}, Timestamp{}, Timestamp::from_sec(10)),
            "(no data)\n");
  EXPECT_EQ(dash.render_graph("total_ms", TagSet{}, Timestamp{}, Timestamp{}),
            "(empty interval)\n");
}

TEST_F(DashboardTest, StatsStripHasAllStatistics) {
  Dashboard dash(db_);
  const std::string s =
      dash.render_stats_strip("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(60));
  EXPECT_NE(s.find("min=130.0ms"), std::string::npos);
  EXPECT_NE(s.find("max=4130.0ms"), std::string::npos);
  EXPECT_NE(s.find("median=130.0ms"), std::string::npos);
  EXPECT_NE(s.find("n=600"), std::string::npos);
}

TEST_F(DashboardTest, FilteredStripRespectsTags) {
  db_.write("total_ms", TagSet().add("src_city", "Wellington").add("dst_city", "X"),
            Timestamp::from_ms(100), 9999.0);
  Dashboard dash(db_);
  TagSet filter;
  filter.add("src_city", "Auckland");
  const std::string s =
      dash.render_stats_strip("total_ms", filter, Timestamp{}, Timestamp::from_sec(60));
  EXPECT_EQ(s.find("9999"), std::string::npos);
}

TEST_F(DashboardTest, PairTableTopN) {
  DashboardOptions opt;
  opt.top_pairs = 2;
  Dashboard dash(db_, opt);
  std::vector<PairSummary> pairs(5);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    pairs[i].key = "pair" + std::to_string(i);
    pairs[i].connections = 100 - i;
    pairs[i].median_total = Duration::from_ms(130);
  }
  const std::string t = dash.render_pair_table(pairs);
  EXPECT_NE(t.find("pair0"), std::string::npos);
  EXPECT_NE(t.find("pair1"), std::string::npos);
  EXPECT_EQ(t.find("pair2"), std::string::npos);
}

}  // namespace
}  // namespace ruru
