#include "viz/ascii_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ruru {
namespace {

ArcFrame frame_with_arc(double src_lat, double src_lon, double dst_lat, double dst_lon,
                        ArcColor color) {
  ArcFrame f;
  Arc a;
  a.src_city = "S";
  a.dst_city = "D";
  a.src_lat = src_lat;
  a.src_lon = src_lon;
  a.dst_lat = dst_lat;
  a.dst_lon = dst_lon;
  a.color = color;
  a.count = 1;
  f.arcs.push_back(a);
  return f;
}

TEST(AsciiMap, EmptyFrameIsBlank) {
  AsciiMap map(40, 10);
  const std::string out = map.render(ArcFrame{});
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 10);
  for (const char c : out) {
    EXPECT_TRUE(c == ' ' || c == '\n');
  }
}

TEST(AsciiMap, EndpointsMarked) {
  AsciiMap map(40, 10);
  const std::string out =
      map.render(frame_with_arc(-36.8, 174.7, 34.0, -118.2, ArcColor::kGreen));
  EXPECT_NE(out.find('o'), std::string::npos);   // endpoints
  EXPECT_NE(out.find('.'), std::string::npos);   // green path
}

TEST(AsciiMap, RedArcUsesHash) {
  AsciiMap map(60, 20);
  const std::string out = map.render(frame_with_arc(-36.8, 174.7, 34.0, -118.2, ArcColor::kRed));
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiMap, WorstColorDominatesSharedCells) {
  AsciiMap map(60, 20);
  ArcFrame f = frame_with_arc(0, -100, 0, 100, ArcColor::kGreen);
  ArcFrame g = frame_with_arc(0, -100, 0, 100, ArcColor::kRed);
  f.arcs.push_back(g.arcs[0]);
  const std::string out = map.render(f);
  // The shared horizontal line must show red, not green.
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_EQ(out.find('.'), std::string::npos);
}

TEST(AsciiMap, ExtremeCoordinatesClampInsideGrid) {
  AsciiMap map(20, 5);
  // Out-of-range coordinates must not crash or write out of bounds.
  const std::string out = map.render(frame_with_arc(95.0, -200.0, -95.0, 200.0, ArcColor::kOrange));
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(AsciiMap, LineDimensionsStable) {
  AsciiMap map(33, 7);
  const std::string out = map.render(frame_with_arc(10, 10, -10, -10, ArcColor::kYellow));
  std::size_t pos = 0;
  int lines = 0;
  while (true) {
    const std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, 33u);
    pos = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 7);
}

}  // namespace
}  // namespace ruru
