#include "viz/ws_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace ruru {
namespace {

void wait_for_clients(const WsServer& server, std::size_t n) {
  for (int i = 0; i < 1000 && server.client_count() < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.client_count(), n);
}

TEST(WsServer, UpgradeHandshakeAndPush) {
  WsServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto fd = ws_client_connect("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.error();
  wait_for_clients(server, 1);
  EXPECT_EQ(server.upgrades(), 1u);

  EXPECT_EQ(server.broadcast_text(R"({"type":"arc_frame"})"), 1u);
  std::vector<std::uint8_t> carry;
  const auto payload = ws_client_recv_text(fd.value(), carry);
  ASSERT_TRUE(payload.ok()) << payload.error();
  EXPECT_EQ(payload.value(), R"({"type":"arc_frame"})");
  ::close(fd.value());
  server.close();
}

TEST(WsServer, MultipleClientsAllReceive) {
  WsServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto a = ws_client_connect("127.0.0.1", server.port());
  auto b = ws_client_connect("127.0.0.1", server.port(), "AAAAAAAAAAAAAAAAAAAAAA==");
  ASSERT_TRUE(a.ok() && b.ok());
  wait_for_clients(server, 2);

  EXPECT_EQ(server.broadcast_text("frame1"), 2u);
  std::vector<std::uint8_t> carry_a, carry_b;
  EXPECT_EQ(ws_client_recv_text(a.value(), carry_a).value(), "frame1");
  EXPECT_EQ(ws_client_recv_text(b.value(), carry_b).value(), "frame1");
  ::close(a.value());
  ::close(b.value());
}

TEST(WsServer, RejectsNonWebsocketRequest) {
  WsServer server;
  ASSERT_TRUE(server.bind(0).ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char* req = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";  // no upgrade headers
  ASSERT_GT(::send(fd, req, std::strlen(req), 0), 0);

  char buf[256];
  const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  ASSERT_GT(n, 0);
  buf[n] = '\0';
  EXPECT_NE(std::strstr(buf, "400"), nullptr);
  ::close(fd);

  for (int i = 0; i < 500 && server.rejected_handshakes() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.rejected_handshakes(), 1u);
  EXPECT_EQ(server.client_count(), 0u);
}

TEST(WsServer, DisconnectedClientPruned) {
  WsServer server;
  ASSERT_TRUE(server.bind(0).ok());
  {
    auto fd = ws_client_connect("127.0.0.1", server.port());
    ASSERT_TRUE(fd.ok());
    wait_for_clients(server, 1);
    ::close(fd.value());
  }
  for (int i = 0; i < 100 && server.client_count() > 0; ++i) {
    server.broadcast_text(std::string(2048, 'x'));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.client_count(), 0u);
}

TEST(WsServer, BroadcastWithNoClients) {
  WsServer server;
  ASSERT_TRUE(server.bind(0).ok());
  EXPECT_EQ(server.broadcast_text("nobody home"), 0u);
}

TEST(WsServer, ManyFramesInOrder) {
  WsServer server;
  ASSERT_TRUE(server.bind(0).ok());
  auto fd = ws_client_connect("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  wait_for_clients(server, 1);
  for (int i = 0; i < 100; ++i) server.broadcast_text("frame-" + std::to_string(i));
  std::vector<std::uint8_t> carry;
  for (int i = 0; i < 100; ++i) {
    const auto p = ws_client_recv_text(fd.value(), carry);
    ASSERT_TRUE(p.ok()) << i;
    EXPECT_EQ(p.value(), "frame-" + std::to_string(i));
  }
  ::close(fd.value());
}

}  // namespace
}  // namespace ruru
