#include "viz/frame_encoder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ruru {
namespace {

ArcFrame sample_frame() {
  ArcFrame f;
  f.time = Timestamp::from_sec(12.5);
  f.sequence = 7;
  f.samples = 150;
  Arc a;
  a.src_city = "Auckland";
  a.dst_city = "Los Angeles";
  a.src_lat = -36.8;
  a.src_lon = 174.7;
  a.dst_lat = 34.05;
  a.dst_lon = -118.24;
  a.color = ArcColor::kGreen;
  a.count = 150;
  a.mean_latency = Duration::from_ms(133);
  a.max_latency = Duration::from_ms(140);
  f.arcs.push_back(a);
  return f;
}

TEST(FrameEncoder, EncodesArcFrameJson) {
  FrameEncoder enc;
  const std::string json = enc.encode(sample_frame());
  EXPECT_NE(json.find("\"type\":\"arc_frame\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":150"), std::string::npos);
  EXPECT_NE(json.find("\"src\":\"Auckland\""), std::string::npos);
  EXPECT_NE(json.find("\"color\":\"#2ecc71\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_ms\":133"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(FrameEncoder, EmptyFrame) {
  FrameEncoder enc;
  ArcFrame f;
  f.sequence = 0;
  const std::string json = enc.encode(f);
  EXPECT_NE(json.find("\"arcs\":[]"), std::string::npos);
}

TEST(FrameEncoder, ReuseAcrossFrames) {
  FrameEncoder enc;
  const std::string a = enc.encode(sample_frame());
  const std::string b = enc.encode(sample_frame());
  EXPECT_EQ(a, b);  // no state leaks between encodes
}

TEST(FrameEncoder, EscapesCityNames) {
  FrameEncoder enc;
  ArcFrame f = sample_frame();
  f.arcs[0].src_city = "Val\"divia\\";
  const std::string json = enc.encode(f);
  EXPECT_NE(json.find("Val\\\"divia\\\\"), std::string::npos);
}

TEST(FrameEncoder, PairStatsDocument) {
  FrameEncoder enc;
  std::vector<PairSummary> pairs;
  PairSummary p;
  p.key = "Auckland|Los Angeles";
  p.connections = 1234;
  p.min_total = Duration::from_ms(120);
  p.median_total = Duration::from_ms(133);
  p.mean_total = Duration::from_ms(135);
  p.max_total = Duration::from_ms(4130);
  p.p99_total = Duration::from_ms(900);
  pairs.push_back(p);
  const std::string json = enc.encode_pair_stats(pairs);
  EXPECT_NE(json.find("\"type\":\"pair_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"median_ms\":133"), std::string::npos);
  EXPECT_NE(json.find("\"max_ms\":4130"), std::string::npos);
}

TEST(FrameEncoder, PairStatsTopNCap) {
  FrameEncoder enc;
  std::vector<PairSummary> pairs(100);
  for (std::size_t i = 0; i < pairs.size(); ++i) pairs[i].key = "k" + std::to_string(i);
  const std::string json = enc.encode_pair_stats(pairs, 10);
  EXPECT_NE(json.find("\"k9\""), std::string::npos);
  EXPECT_EQ(json.find("\"k10\""), std::string::npos);
}

}  // namespace
}  // namespace ruru
