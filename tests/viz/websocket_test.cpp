#include "viz/websocket.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ruru {
namespace {

std::span<const std::uint8_t> bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Sha1, KnownVectors) {
  // FIPS 180-1 test vectors.
  auto hex = [](const std::array<std::uint8_t, 20>& d) {
    std::string out;
    char buf[3];
    for (const auto b : d) {
      std::snprintf(buf, sizeof buf, "%02x", b);
      out += buf;
    }
    return out;
  };
  EXPECT_EQ(hex(sha1(bytes("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex(sha1(bytes(""))), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex(sha1(bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(hex(sha1(bytes(std::string(1000, 'a')))),
            "291e9a6c66994949b57ba5e650361e98fc36b1ba");
}

TEST(Base64, KnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(base64_encode(bytes("")), "");
  EXPECT_EQ(base64_encode(bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(bytes("foobar")), "Zm9vYmFy");
}

TEST(WebSocket, AcceptKeyFromRfcExample) {
  // RFC 6455 §1.3 worked example.
  EXPECT_EQ(websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ=="),
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=");
}

TEST(WebSocket, ShortTextFrameRoundTrip) {
  const auto wire = ws_encode_text("hello");
  EXPECT_EQ(wire.size(), 2u + 5u);
  EXPECT_EQ(wire[0], 0x81);  // FIN | text
  EXPECT_EQ(wire[1], 5);     // unmasked, len 5

  const auto frame = ws_decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->opcode, WsOpcode::kText);
  EXPECT_TRUE(frame->fin);
  EXPECT_EQ(std::string(frame->payload.begin(), frame->payload.end()), "hello");
  EXPECT_EQ(frame->wire_size, wire.size());
}

TEST(WebSocket, MediumFrameUses16BitLength) {
  const std::string payload(300, 'x');
  const auto wire = ws_encode_text(payload);
  EXPECT_EQ(wire[1], 126);
  EXPECT_EQ(wire.size(), 4u + 300u);
  const auto frame = ws_decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), 300u);
}

TEST(WebSocket, LargeFrameUses64BitLength) {
  const std::string payload(70'000, 'y');
  const auto wire = ws_encode_text(payload);
  EXPECT_EQ(wire[1], 127);
  EXPECT_EQ(wire.size(), 10u + 70'000u);
  const auto frame = ws_decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), 70'000u);
}

TEST(WebSocket, MaskedFrameRoundTrip) {
  const std::string payload = "masked payload!";
  const std::array<std::uint8_t, 4> mask = {0x12, 0x34, 0x56, 0x78};
  const auto wire = ws_encode_frame_masked(WsOpcode::kText, bytes(payload), mask);
  EXPECT_EQ(wire[1] & 0x80, 0x80);  // mask bit set
  // Payload on the wire is actually scrambled.
  EXPECT_NE(std::string(wire.begin() + 6, wire.end()), payload);
  const auto frame = ws_decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(std::string(frame->payload.begin(), frame->payload.end()), payload);
}

TEST(WebSocket, BinaryAndControlOpcodes) {
  const std::uint8_t data[3] = {1, 2, 3};
  const auto bin = ws_encode_frame(WsOpcode::kBinary, data);
  EXPECT_EQ(bin[0] & 0x0f, 0x2);
  const auto ping = ws_encode_frame(WsOpcode::kPing, {});
  const auto f = ws_decode_frame(ping);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->opcode, WsOpcode::kPing);
  EXPECT_TRUE(f->payload.empty());
}

TEST(WebSocket, IncompleteFramesReturnNullopt) {
  const auto wire = ws_encode_text("some payload here");
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(ws_decode_frame(std::span<const std::uint8_t>(wire.data(), len)).has_value())
        << "prefix " << len;
  }
}

TEST(WebSocket, DecodeReportsConsumedBytesForStreamParsing) {
  auto wire = ws_encode_text("first");
  const auto second = ws_encode_text("second");
  wire.insert(wire.end(), second.begin(), second.end());

  const auto f1 = ws_decode_frame(wire);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(std::string(f1->payload.begin(), f1->payload.end()), "first");
  const auto f2 = ws_decode_frame(std::span<const std::uint8_t>(wire).subspan(f1->wire_size));
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(std::string(f2->payload.begin(), f2->payload.end()), "second");
}

}  // namespace
}  // namespace ruru
