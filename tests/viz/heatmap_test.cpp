#include "viz/heatmap.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TEST(Heatmap, BandAssignment) {
  LatencyHeatmap hm(Duration::from_sec(1.0),
                    {Duration::from_ms(100), Duration::from_ms(300)});
  EXPECT_EQ(hm.band_count(), 3u);
  EXPECT_EQ(hm.band_for(Duration::from_ms(50)), 0u);
  EXPECT_EQ(hm.band_for(Duration::from_ms(100)), 1u);  // [100, 300)
  EXPECT_EQ(hm.band_for(Duration::from_ms(299)), 1u);
  EXPECT_EQ(hm.band_for(Duration::from_ms(300)), 2u);
  EXPECT_EQ(hm.band_for(Duration::from_ms(4130)), 2u);
}

TEST(Heatmap, CountsPerCell) {
  LatencyHeatmap hm(Duration::from_sec(1.0), {Duration::from_ms(100)});
  hm.add(Timestamp::from_ms(100), Duration::from_ms(50));
  hm.add(Timestamp::from_ms(200), Duration::from_ms(60));
  hm.add(Timestamp::from_ms(300), Duration::from_ms(150));
  hm.add(Timestamp::from_ms(1'500), Duration::from_ms(50));

  EXPECT_EQ(hm.count_at(Timestamp::from_ms(500), 0), 2u);
  EXPECT_EQ(hm.count_at(Timestamp::from_ms(500), 1), 1u);
  EXPECT_EQ(hm.count_at(Timestamp::from_ms(1'500), 0), 1u);
  EXPECT_EQ(hm.count_at(Timestamp::from_ms(9'000), 0), 0u);
  EXPECT_EQ(hm.total(), 4u);
}

TEST(Heatmap, DefaultBandsCoverWanRange) {
  auto hm = LatencyHeatmap::with_default_bands();
  EXPECT_EQ(hm.band_count(), 9u);
  EXPECT_EQ(hm.band_for(Duration::from_ms(10)), 0u);
  EXPECT_EQ(hm.band_for(Duration::from_ms(130)), 2u);   // [100,150)
  EXPECT_EQ(hm.band_for(Duration::from_ms(4130)), 8u);  // >= 4000
}

TEST(Heatmap, AsciiRenderShowsGlitchBand) {
  auto hm = LatencyHeatmap::with_default_bands(Duration::from_sec(1.0));
  // 10 s of normal traffic, a glitch in second 5.
  for (int s = 0; s < 10; ++s) {
    for (int i = 0; i < 20; ++i) {
      hm.add(Timestamp::from_ms(s * 1000 + i * 50), Duration::from_ms(130));
    }
  }
  for (int i = 0; i < 15; ++i) {
    hm.add(Timestamp::from_ms(5'000 + i * 60), Duration::from_ms(4130));
  }
  const std::string panel = hm.render_ascii(Timestamp{}, Timestamp::from_sec(10));
  // Top band row exists and contains exactly one hot column.
  const std::size_t top_row_end = panel.find('\n');
  const std::string top_row = panel.substr(0, top_row_end);
  EXPECT_NE(top_row.find(">= 4000ms"), std::string::npos);
  int filled = 0;
  for (const char c : top_row) {
    if (c == '@' || c == '%' || c == '#' || c == '*') ++filled;
  }
  EXPECT_EQ(filled, 1);
}

TEST(Heatmap, EmptyIntervalHandled) {
  auto hm = LatencyHeatmap::with_default_bands();
  EXPECT_EQ(hm.render_ascii(Timestamp{}, Timestamp{}), "(empty interval)\n");
}

TEST(Heatmap, LabelsFormatted) {
  LatencyHeatmap hm(Duration::from_sec(1.0),
                    {Duration::from_ms(100), Duration::from_ms(300)});
  EXPECT_NE(hm.band_label(0).find("<"), std::string::npos);
  EXPECT_NE(hm.band_label(1).find("100"), std::string::npos);
  EXPECT_NE(hm.band_label(2).find(">="), std::string::npos);
}

}  // namespace
}  // namespace ruru
