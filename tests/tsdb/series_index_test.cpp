// SeriesIndex: identity, filters and canonical forms on interned ids.
// The contract under test is "legacy TagSet semantics, zero strings on
// the hot path": tag insertion order must not split a series, filters
// must match exactly like TagSet::matches, and unknown strings must
// short-circuit to impossible instead of crashing or allocating.

#include "tsdb/series_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace ruru {
namespace {

TagSet tags2(const std::string& a, const std::string& av, const std::string& b,
             const std::string& bv) {
  TagSet t;
  t.add(a, av).add(b, bv);
  return t;
}

TEST(SeriesIndex, SameSeriesSameId) {
  SeriesIndex idx;
  const SeriesId a = idx.resolve("total_ms", tags2("src_city", "AKL", "dst_city", "LA"));
  const SeriesId b = idx.resolve("total_ms", tags2("src_city", "AKL", "dst_city", "LA"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(SeriesIndex, TagOrderDoesNotSplitSeries) {
  SeriesIndex idx;
  const SeriesId a = idx.resolve("m", tags2("src_city", "AKL", "dst_city", "LA"));
  const SeriesId b = idx.resolve("m", tags2("dst_city", "LA", "src_city", "AKL"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(idx.canonical(a), "dst_city=LA,src_city=AKL");
}

TEST(SeriesIndex, DistinctIdentitiesGetDistinctIds) {
  SeriesIndex idx;
  const SeriesId a = idx.resolve("m", tags2("k1", "v1", "k2", "v2"));
  const SeriesId b = idx.resolve("m", tags2("k1", "v2", "k2", "v1"));  // values swapped
  const SeriesId c = idx.resolve("other", tags2("k1", "v1", "k2", "v2"));
  const SeriesId d = idx.resolve("m", TagSet{});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(idx.size(), 4u);
}

TEST(SeriesIndex, FilterMatchesLikeLegacyTagSet) {
  SeriesIndex idx;
  const TagSet series_tags = tags2("src_city", "AKL", "dst_city", "LA");
  const SeriesId sid = idx.resolve("m", series_tags);

  const auto check = [&](const TagSet& filter) {
    const TagFilter f = idx.make_filter(filter);
    EXPECT_FALSE(f.impossible);
    EXPECT_EQ(idx.matches(sid, f), series_tags.matches(filter))
        << "filter: " << filter.canonical();
  };
  check(TagSet{});                                       // empty matches everything
  check(TagSet{}.add("src_city", "AKL"));                // subset
  check(tags2("src_city", "AKL", "dst_city", "LA"));     // exact
  check(TagSet{}.add("src_city", "LA"));                 // wrong value (strings known)
}

TEST(SeriesIndex, UnknownFilterStringIsImpossible) {
  SeriesIndex idx;
  idx.resolve("m", tags2("src_city", "AKL", "dst_city", "LA"));
  const TagFilter f = idx.make_filter(TagSet{}.add("src_city", "never_interned"));
  EXPECT_TRUE(f.impossible);
}

TEST(SeriesIndex, FindNameReturnsNotFoundForUnseen) {
  SeriesIndex idx;
  EXPECT_EQ(idx.find_name("ghost"), SeriesIndex::kNotFound);
  idx.resolve("total_ms", TagSet{}.add("src_city", "AKL"));
  EXPECT_NE(idx.find_name("total_ms"), SeriesIndex::kNotFound);
  EXPECT_NE(idx.find_name("src_city"), SeriesIndex::kNotFound);
  EXPECT_NE(idx.find_name("AKL"), SeriesIndex::kNotFound);
  EXPECT_EQ(idx.find_name("ghost"), SeriesIndex::kNotFound);
}

TEST(SeriesIndex, TagValueIdFollowsCanonicalFirstMatch) {
  SeriesIndex idx;
  const SeriesId sid = idx.resolve("m", tags2("src_city", "AKL", "dst_city", "LA"));
  const std::uint32_t key = idx.find_name("src_city");
  ASSERT_NE(key, SeriesIndex::kNotFound);
  const std::uint32_t vid = idx.tag_value_id(sid, key);
  ASSERT_NE(vid, SeriesIndex::kNotFound);
  EXPECT_EQ(idx.name(vid), "AKL");
  EXPECT_EQ(idx.tag_value_id(sid, idx.find_name("m")), SeriesIndex::kNotFound);
}

TEST(SeriesIndex, ResolveLikeCopiesTagIdentity) {
  SeriesIndex idx;
  const SeriesId src = idx.resolve("total_ms", tags2("src_city", "AKL", "dst_city", "LA"));
  const SeriesId dst = idx.resolve_like(src, "total_ms_1m");
  EXPECT_NE(src, dst);
  EXPECT_EQ(idx.canonical(dst), idx.canonical(src));
  EXPECT_EQ(idx.name(idx.measurement_id(dst)), "total_ms_1m");
  // Idempotent: the re-keyed identity resolves to the same id again.
  EXPECT_EQ(idx.resolve_like(src, "total_ms_1m"), dst);
  EXPECT_EQ(idx.resolve("total_ms_1m", tags2("src_city", "AKL", "dst_city", "LA")), dst);
}

TEST(SeriesIndex, SeriesOfAndMeasurementsEnumerate) {
  SeriesIndex idx;
  const SeriesId a = idx.resolve("m1", TagSet{}.add("k", "a"));
  const SeriesId b = idx.resolve("m1", TagSet{}.add("k", "b"));
  const SeriesId c = idx.resolve("m2", TagSet{}.add("k", "a"));

  std::vector<std::uint32_t> mids;
  idx.measurements(mids);
  ASSERT_EQ(mids.size(), 2u);

  std::vector<SeriesId> out;
  idx.series_of(idx.measurement_id(a), out);
  EXPECT_EQ(out, (std::vector<SeriesId>{a, b}));
  out.clear();
  idx.series_of(idx.measurement_id(c), out);
  EXPECT_EQ(out, (std::vector<SeriesId>{c}));
}

TEST(SeriesIndex, ManySeriesSurviveTableGrowth) {
  SeriesIndex idx;
  std::vector<SeriesId> ids;
  for (int i = 0; i < 5'000; ++i) {
    ids.push_back(idx.resolve("m", TagSet{}.add("src_city", "city" + std::to_string(i))));
  }
  EXPECT_EQ(idx.size(), 5'000u);
  // Every identity still resolves to its original id after rehashing.
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_EQ(idx.resolve("m", TagSet{}.add("src_city", "city" + std::to_string(i))),
              ids[static_cast<std::size_t>(i)]);
  }
  // Dense, never reused.
  std::vector<SeriesId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace ruru
