#include "tsdb/tsdb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "util/random.hpp"

namespace ruru {
namespace {

TagSet tags(std::string src, std::string dst) {
  TagSet t;
  t.add("src_city", std::move(src)).add("dst_city", std::move(dst));
  return t;
}

TEST(TagSet, CanonicalIsSortedByKey) {
  TagSet t;
  t.add("zeta", "1").add("alpha", "2");
  EXPECT_EQ(t.canonical(), "alpha=2,zeta=1");
}

TEST(TagSet, MatchesSubset) {
  const TagSet t = tags("Auckland", "Los Angeles");
  TagSet filter;
  filter.add("src_city", "Auckland");
  EXPECT_TRUE(t.matches(filter));
  filter.add("dst_city", "London");
  EXPECT_FALSE(t.matches(filter));
  EXPECT_TRUE(t.matches(TagSet{}));  // empty filter matches all
}

TEST(TagSet, GetByKey) {
  const TagSet t = tags("A", "B");
  EXPECT_EQ(t.get("src_city").value(), "A");
  EXPECT_FALSE(t.get("nope").has_value());
}

TEST(Tsdb, AggregateBasicStats) {
  TimeSeriesDb db;
  const TagSet t = tags("Auckland", "Los Angeles");
  for (int i = 1; i <= 100; ++i) {
    db.write("total_ms", t, Timestamp::from_ms(i), static_cast<double>(i));
  }
  const auto r = db.aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(10));
  EXPECT_EQ(r.count, 100u);
  EXPECT_DOUBLE_EQ(r.min, 1.0);
  EXPECT_DOUBLE_EQ(r.max, 100.0);
  EXPECT_DOUBLE_EQ(r.mean, 50.5);
  EXPECT_DOUBLE_EQ(r.median, 50.5);  // interpolated
  EXPECT_NEAR(r.p95, 95.05, 0.01);
}

TEST(Tsdb, TimeRangeIsHalfOpen) {
  TimeSeriesDb db;
  const TagSet t = tags("A", "B");
  db.write("m", t, Timestamp::from_ms(10), 1.0);
  db.write("m", t, Timestamp::from_ms(20), 2.0);
  const auto r = db.aggregate("m", TagSet{}, Timestamp::from_ms(10), Timestamp::from_ms(20));
  EXPECT_EQ(r.count, 1u);  // [10, 20) excludes the second point
}

TEST(Tsdb, FilterByTags) {
  TimeSeriesDb db;
  db.write("m", tags("Auckland", "LA"), Timestamp::from_ms(1), 10.0);
  db.write("m", tags("Auckland", "London"), Timestamp::from_ms(2), 20.0);
  db.write("m", tags("Wellington", "LA"), Timestamp::from_ms(3), 30.0);

  TagSet filter;
  filter.add("src_city", "Auckland");
  const auto r = db.aggregate("m", filter, Timestamp{}, Timestamp::from_sec(1));
  EXPECT_EQ(r.count, 2u);
  EXPECT_DOUBLE_EQ(r.max, 20.0);
}

TEST(Tsdb, UnknownMeasurementIsEmpty) {
  TimeSeriesDb db;
  const auto r = db.aggregate("nope", TagSet{}, Timestamp{}, Timestamp::from_sec(1));
  EXPECT_EQ(r.count, 0u);
}

TEST(Tsdb, WindowAggregateBucketsByTime) {
  TimeSeriesDb db;
  const TagSet t = tags("A", "B");
  // 10 points per second for 5 seconds, value = second index.
  for (int sec = 0; sec < 5; ++sec) {
    for (int i = 0; i < 10; ++i) {
      db.write("m", t, Timestamp::from_ms(sec * 1000 + i * 50), static_cast<double>(sec));
    }
  }
  const auto windows = db.window_aggregate("m", TagSet{}, Timestamp{}, Timestamp::from_sec(5),
                                           Duration::from_sec(1.0));
  ASSERT_EQ(windows.size(), 5u);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_EQ(windows[w].window_start.ns, Timestamp::from_sec(static_cast<double>(w)).ns);
    EXPECT_EQ(windows[w].stats.count, 10u);
    EXPECT_DOUBLE_EQ(windows[w].stats.mean, static_cast<double>(w));
  }
}

TEST(Tsdb, WindowAggregateSkipsEmptyWindows) {
  TimeSeriesDb db;
  const TagSet t = tags("A", "B");
  db.write("m", t, Timestamp::from_sec(0.5), 1.0);
  db.write("m", t, Timestamp::from_sec(3.5), 2.0);
  const auto windows =
      db.window_aggregate("m", TagSet{}, Timestamp{}, Timestamp::from_sec(4), Duration::from_sec(1.0));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window_start.ns, 0);
  EXPECT_EQ(windows[1].window_start.ns, Timestamp::from_sec(3).ns);
}

TEST(Tsdb, GroupByTagKey) {
  TimeSeriesDb db;
  db.write("m", tags("Auckland", "LA"), Timestamp::from_ms(1), 10.0);
  db.write("m", tags("Auckland", "LA"), Timestamp::from_ms(2), 20.0);
  db.write("m", tags("Wellington", "LA"), Timestamp::from_ms(3), 99.0);

  const auto groups = db.group_by("m", "src_city", TagSet{}, Timestamp{}, Timestamp::from_sec(1));
  ASSERT_EQ(groups.size(), 2u);
  // Groups are sorted by tag value (std::map).
  EXPECT_EQ(groups[0].tag_value, "Auckland");
  EXPECT_EQ(groups[0].stats.count, 2u);
  EXPECT_DOUBLE_EQ(groups[0].stats.mean, 15.0);
  EXPECT_EQ(groups[1].tag_value, "Wellington");
  EXPECT_DOUBLE_EQ(groups[1].stats.max, 99.0);
}

TEST(Tsdb, RetentionDropsOldPoints) {
  TimeSeriesDb db;
  const TagSet t = tags("A", "B");
  for (int i = 0; i < 100; ++i) db.write("m", t, Timestamp::from_sec(i), 1.0);
  const std::size_t dropped =
      db.enforce_retention(Timestamp::from_sec(100), Duration::from_sec(30.0));
  EXPECT_EQ(dropped, 70u);
  const auto r = db.aggregate("m", TagSet{}, Timestamp{}, Timestamp::from_sec(1000));
  EXPECT_EQ(r.count, 30u);
}

TEST(Tsdb, ScopedRetentionSparesOtherMeasurements) {
  TimeSeriesDb db;
  const TagSet t = tags("A", "B");
  for (int i = 0; i < 10; ++i) {
    db.write("raw", t, Timestamp::from_sec(i), 1.0);
    db.write("downsampled", t, Timestamp::from_sec(i), 1.0);
  }
  const auto dropped =
      db.enforce_retention(Timestamp::from_sec(10), Duration::from_sec(0.0), {"raw"});
  EXPECT_EQ(dropped, 10u);
  EXPECT_EQ(db.aggregate("raw", TagSet{}, Timestamp{}, Timestamp::from_sec(100)).count, 0u);
  EXPECT_EQ(db.aggregate("downsampled", TagSet{}, Timestamp{}, Timestamp::from_sec(100)).count,
            10u);
}

TEST(Tsdb, RetentionRemovesEmptySeries) {
  TimeSeriesDb db;
  db.write("m", tags("A", "B"), Timestamp::from_sec(1), 1.0);
  EXPECT_EQ(db.series_count(), 1u);
  db.enforce_retention(Timestamp::from_sec(100), Duration::from_sec(10.0));
  EXPECT_EQ(db.series_count(), 0u);
}

TEST(Tsdb, OutOfOrderWritesStillQueryCorrectly) {
  TimeSeriesDb db;
  const TagSet t = tags("A", "B");
  db.write("m", t, Timestamp::from_ms(100), 3.0);
  db.write("m", t, Timestamp::from_ms(50), 1.0);  // out of order
  db.write("m", t, Timestamp::from_ms(75), 2.0);
  const auto r = db.aggregate("m", TagSet{}, Timestamp::from_ms(60), Timestamp::from_ms(110));
  EXPECT_EQ(r.count, 2u);
  EXPECT_DOUBLE_EQ(r.min, 2.0);
}

TEST(Tsdb, StatsMatchBruteForceOnRandomData) {
  TimeSeriesDb db;
  const TagSet t = tags("X", "Y");
  Pcg32 rng(2024);
  std::vector<double> in_range;
  for (int i = 0; i < 5'000; ++i) {
    const auto ts = Timestamp::from_ms(static_cast<std::int64_t>(rng.bounded(10'000)));
    const double v = rng.uniform(0.0, 500.0);
    db.write("m", t, ts, v);
    if (ts >= Timestamp::from_ms(2'000) && ts < Timestamp::from_ms(8'000)) in_range.push_back(v);
  }
  const auto r = db.aggregate("m", TagSet{}, Timestamp::from_ms(2'000), Timestamp::from_ms(8'000));
  ASSERT_EQ(r.count, in_range.size());
  std::sort(in_range.begin(), in_range.end());
  EXPECT_DOUBLE_EQ(r.min, in_range.front());
  EXPECT_DOUBLE_EQ(r.max, in_range.back());
  double sum = 0;
  for (const double v : in_range) sum += v;
  EXPECT_NEAR(r.mean, sum / static_cast<double>(in_range.size()), 1e-9);
}

TEST(Tsdb, ConcurrentWritersAreSafe) {
  TimeSeriesDb db;
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&db, w] {
      const TagSet t = tags("src" + std::to_string(w), "dst");
      for (int i = 0; i < 5'000; ++i) {
        db.write("m", t, Timestamp::from_ms(i), static_cast<double>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(db.points_written(), 20'000u);
  EXPECT_EQ(db.series_count(), 4u);
}

}  // namespace
}  // namespace ruru
