// TsdbEngine oracle parity: the engine must answer every query
// bit-for-bit identically to the uncompressed TimeSeriesDb when both
// receive the same write sequence.  summarize() sorts before
// accumulating on both sides and the chunk codec is exact, so EXPECT_EQ
// on doubles is the honest assertion — any epsilon would hide a codec
// or scan bug.  chunk_points=4 and a narrow time partition force seal
// boundaries mid-stream; retention forces straddling-chunk rewrites.

#include "tsdb/query.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tsdb/tsdb.hpp"
#include "util/random.hpp"

namespace ruru {
namespace {

const char* const kMeasurements[] = {"total_ms", "internal_ms", "external_ms"};
const char* const kCities[] = {"AKL", "WLG", "LA", "?"};

TagSet make_tags(std::uint32_t src, std::uint32_t dst) {
  TagSet t;
  t.add("src_city", kCities[src % 4]).add("dst_city", kCities[dst % 4]);
  return t;
}

void expect_same_aggregate(const AggregateResult& a, const AggregateResult& b,
                           const std::string& what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.p95, b.p95) << what;
  EXPECT_EQ(a.p99, b.p99) << what;
}

/// Runs the full query battery on both stores and requires identical
/// answers: aggregates over several ranges and filters, windowed
/// aggregates, and group_by on every tag key (plus an unknown one).
void expect_parity(const TimeSeriesDb& legacy, const TsdbEngine& engine, Timestamp t0,
                   Timestamp t1) {
  EXPECT_EQ(legacy.series_count(), engine.series_count());

  std::vector<TagSet> filters;
  filters.emplace_back();
  filters.push_back(TagSet{}.add("src_city", "AKL"));
  filters.push_back(TagSet{}.add("dst_city", "?"));
  filters.push_back(make_tags(0, 2));
  filters.push_back(TagSet{}.add("src_city", "nowhere"));  // never interned

  const Timestamp mid{(t0.ns + t1.ns) / 2};
  const std::vector<std::pair<Timestamp, Timestamp>> ranges = {
      {t0, t1}, {t0, mid}, {mid, t1}, {t1, t0},  // inverted -> empty
      {Timestamp{t0.ns - 50}, Timestamp{t1.ns + 50}}};

  for (const char* m : kMeasurements) {
    for (std::size_t fi = 0; fi < filters.size(); ++fi) {
      for (const auto& [lo, hi] : ranges) {
        const std::string what = std::string(m) + " filter#" + std::to_string(fi) + " [" +
                                 std::to_string(lo.ns) + "," + std::to_string(hi.ns) + ")";
        expect_same_aggregate(legacy.aggregate(m, filters[fi], lo, hi),
                              engine.aggregate(m, filters[fi], lo, hi), what);

        const Duration step{(hi.ns - lo.ns) / 7 + 3};
        const auto lw = legacy.window_aggregate(m, filters[fi], lo, hi, step);
        const auto ew = engine.window_aggregate(m, filters[fi], lo, hi, step);
        ASSERT_EQ(lw.size(), ew.size()) << what;
        for (std::size_t i = 0; i < lw.size(); ++i) {
          EXPECT_EQ(lw[i].window_start.ns, ew[i].window_start.ns) << what << " win " << i;
          expect_same_aggregate(lw[i].stats, ew[i].stats, what + " win " + std::to_string(i));
        }
      }
    }
    for (const char* key : {"src_city", "dst_city", "no_such_key"}) {
      const auto lg = legacy.group_by(m, key, TagSet{}, t0, t1);
      const auto eg = engine.group_by(m, key, TagSet{}, t0, t1);
      ASSERT_EQ(lg.size(), eg.size()) << m << " group_by " << key;
      for (std::size_t i = 0; i < lg.size(); ++i) {
        EXPECT_EQ(lg[i].tag_value, eg[i].tag_value) << m << " group_by " << key;
        expect_same_aggregate(lg[i].stats, eg[i].stats,
                              std::string(m) + " group_by " + key + "=" + lg[i].tag_value);
      }
    }
  }
}

/// Same pseudo-random write sequence into both stores.
void load_random(TimeSeriesDb& legacy, TsdbEngine& engine, std::uint64_t seed, int n,
                 std::int64_t t_span) {
  Pcg32 rng(seed);
  for (int i = 0; i < n; ++i) {
    const char* m = kMeasurements[rng.bounded(3)];
    const TagSet tags = make_tags(rng.bounded(4), rng.bounded(4));
    const Timestamp t{static_cast<std::int64_t>(rng.next_u64() % static_cast<std::uint64_t>(t_span))};
    const double v = rng.chance(0.1) ? static_cast<double>(rng.bounded(100))  // repeats
                                     : rng.uniform(0.0, 500.0);
    legacy.write(m, tags, t, v);
    engine.write(m, tags, t, v);
  }
}

TEST(EngineParity, EmptyStores) {
  TimeSeriesDb legacy;
  TsdbEngine engine;
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{1000});
  EXPECT_EQ(engine.points_written(), 0u);
  EXPECT_EQ(engine.storage_stats().points, 0u);
}

TEST(EngineParity, RandomizedWorkloadAcrossSealBoundaries) {
  TimeSeriesDb legacy;
  // Tiny chunks + narrow partitions: most series end up with several
  // sealed chunks plus an open tail, so scans cross every boundary kind.
  TsdbEngine engine(TsdbOptions{4, 4, Duration::from_ns(10'000)});
  load_random(legacy, engine, 0xA11CE, 4'000, 100'000);
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{100'000});
  EXPECT_EQ(engine.points_written(), 4'000u);
  EXPECT_EQ(engine.storage_stats().points, 4'000u);
  EXPECT_GT(engine.storage_stats().sealed_chunks, 0u);
}

TEST(EngineParity, SingleShardAndManyShardsAgree) {
  TimeSeriesDb legacy;
  TsdbEngine one(TsdbOptions{1, 4, Duration::from_ns(10'000)});
  TsdbEngine many(TsdbOptions{64, 7, Duration::from_ns(25'000)});
  Pcg32 rng(99);
  for (int i = 0; i < 2'000; ++i) {
    const char* m = kMeasurements[rng.bounded(3)];
    const TagSet tags = make_tags(rng.bounded(4), rng.bounded(4));
    const Timestamp t{static_cast<std::int64_t>(rng.next_u64() % 100'000)};
    const double v = rng.uniform(0.0, 500.0);
    legacy.write(m, tags, t, v);
    one.write(m, tags, t, v);
    many.write(m, tags, t, v);
  }
  expect_parity(legacy, one, Timestamp{0}, Timestamp{100'000});
  expect_parity(legacy, many, Timestamp{0}, Timestamp{100'000});
}

TEST(EngineParity, HotPathAppendMatchesLegacyWrite) {
  TimeSeriesDb legacy;
  TsdbEngine engine(TsdbOptions{8, 16, Duration::from_ns(50'000)});
  // Resolve once, append per point — the pipeline's route-cache path.
  const TagSet tags = make_tags(0, 1);
  const SeriesId sid = engine.series("total_ms", tags);
  Pcg32 rng(5);
  for (int i = 0; i < 1'000; ++i) {
    const Timestamp t{i * 97};
    const double v = rng.uniform(0.0, 250.0);
    legacy.write("total_ms", tags, t, v);
    engine.append(sid, t, v);
  }
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{1'000 * 97});
}

TEST(EngineParity, DownsamplePreservesContract) {
  for (const char* stat : {"mean", "median", "min", "max", "count", "p99"}) {
    TimeSeriesDb legacy;
    TsdbEngine engine(TsdbOptions{4, 4, Duration::from_ns(10'000)});
    load_random(legacy, engine, 0xD5, 1'500, 60'000);
    const std::size_t lw = legacy.downsample("total_ms", "total_1m", Duration{7'000}, stat);
    const std::size_t ew = engine.downsample("total_ms", "total_1m", Duration{7'000}, stat);
    EXPECT_EQ(lw, ew) << stat;
    expect_parity(legacy, engine, Timestamp{0}, Timestamp{60'000});
    // The rollup measurement itself must agree too.
    expect_same_aggregate(
        legacy.aggregate("total_1m", TagSet{}, Timestamp{0}, Timestamp{60'000}),
        engine.aggregate("total_1m", TagSet{}, Timestamp{0}, Timestamp{60'000}),
        std::string("downsampled ") + stat);
  }
}

TEST(EngineParity, RetentionDropsIdentically) {
  TimeSeriesDb legacy;
  TsdbEngine engine(TsdbOptions{4, 4, Duration::from_ns(10'000)});
  load_random(legacy, engine, 0x7EE, 3'000, 100'000);

  // Cutoff mid-range: whole-chunk drops, straddling-chunk rewrites and
  // open-chunk rewrites all occur.
  const Timestamp now{100'000};
  const std::size_t ld = legacy.enforce_retention(now, Duration{60'000});
  const std::size_t ed = engine.enforce_retention(now, Duration{60'000});
  EXPECT_EQ(ld, ed);
  EXPECT_GT(ed, 0u);
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{100'000});
  EXPECT_EQ(engine.storage_stats().points, 3'000u - ed);

  // Scoped retention: only one measurement is trimmed further.
  const std::size_t ld2 = legacy.enforce_retention(now, Duration{20'000}, {"total_ms"});
  const std::size_t ed2 = engine.enforce_retention(now, Duration{20'000}, {"total_ms"});
  EXPECT_EQ(ld2, ed2);
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{100'000});

  // Scoped to a measurement neither store has: a no-op on both.
  EXPECT_EQ(legacy.enforce_retention(now, Duration{1}, {"ghost"}),
            engine.enforce_retention(now, Duration{1}, {"ghost"}));
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{100'000});
}

TEST(EngineParity, RetentionToEmptyAndRefill) {
  TimeSeriesDb legacy;
  TsdbEngine engine(TsdbOptions{2, 4, Duration::from_ns(5'000)});
  load_random(legacy, engine, 3, 500, 10'000);

  // Horizon 0 at t=far-future empties every series; legacy erases the
  // series, the engine must report the same series_count and empty
  // group_by afterwards.
  const std::size_t ld = legacy.enforce_retention(Timestamp{1'000'000}, Duration{0});
  const std::size_t ed = engine.enforce_retention(Timestamp{1'000'000}, Duration{0});
  EXPECT_EQ(ld, ed);
  EXPECT_EQ(ld, 500u);
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{1'000'000});
  EXPECT_EQ(engine.series_count(), 0u);
  EXPECT_EQ(engine.storage_stats().points, 0u);

  // Refill after the wipe: series identities revive cleanly.
  load_random(legacy, engine, 4, 500, 10'000);
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{1'000'000});
}

TEST(EngineStorage, CompressionBeatsRawOnSteadyCadence) {
  TsdbEngine engine(TsdbOptions{4, 512, Duration::from_sec(600.0)});
  const SeriesId sid = engine.series("rtt_ms", TagSet{}.add("src_city", "AKL"));
  Pcg32 rng(11);
  double ms = 100.0;
  for (int i = 0; i < 20'000; ++i) {
    // 1s cadence; the gauge moves in small sub-ms steps ~30% of the
    // time and repeats otherwise — the monitoring shape the sealed
    // format is sized for.
    if (rng.chance(0.3)) {
      ms += (static_cast<double>(rng.bounded(7)) - 3.0) * 0.125;
    }
    engine.append(sid, Timestamp::from_ns(i * 1'000'000'000LL), ms);
  }
  const auto stats = engine.storage_stats();
  EXPECT_EQ(stats.points, 20'000u);
  EXPECT_LT(stats.bytes_per_point(), 2.0);  // >= 8x vs the 16-byte DataPoint
}

TEST(EngineOptions, DegenerateOptionsStillCorrect) {
  TimeSeriesDb legacy;
  // chunk_points=1 seals every append; partition<=0 disables time
  // partitioning; shards clamp from 0 to 1.
  TsdbEngine engine(TsdbOptions{0, 1, Duration{0}});
  load_random(legacy, engine, 21, 800, 50'000);
  expect_parity(legacy, engine, Timestamp{0}, Timestamp{50'000});
}

}  // namespace
}  // namespace ruru
