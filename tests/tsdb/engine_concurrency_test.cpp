// TsdbEngine under concurrency: ingest from several threads, queries
// decoding snapshots while chunks seal underneath them, retention
// rewriting chunks mid-scan, and series creation racing appends.  Run
// under TSan (tools/check.sh tsdb) these tests are the data-race proof
// for the reader-writer-decoupled design; under plain ctest they pin
// the accounting invariants the races must not break.

#include "tsdb/query.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "tsdb/tsdb.hpp"
#include "util/random.hpp"

namespace ruru {
namespace {

TEST(EngineConcurrency, ParallelAppendsAllLand) {
  TsdbEngine engine(TsdbOptions{8, 32, Duration::from_ns(1'000'000)});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;

  // Each thread appends to its own series and to one shared series:
  // both the uncontended and the same-shard-contended paths run.
  std::vector<SeriesId> own(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    own[static_cast<std::size_t>(i)] =
        engine.series("m", TagSet{}.add("src_city", "city" + std::to_string(i)));
  }
  const SeriesId shared = engine.series("m", TagSet{}.add("src_city", "shared"));

  std::vector<std::thread> writers;
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([&engine, &own, shared, i] {
      Pcg32 rng(static_cast<std::uint64_t>(i) + 1);
      for (int n = 0; n < kPerThread; ++n) {
        const Timestamp t{static_cast<std::int64_t>(n) * 1'000 + i};
        engine.append(own[static_cast<std::size_t>(i)], t, rng.uniform(0.0, 100.0));
        engine.append(shared, t, rng.uniform(0.0, 100.0));
      }
    });
  }
  for (auto& t : writers) t.join();

  const std::uint64_t expected = static_cast<std::uint64_t>(kThreads) * kPerThread * 2;
  EXPECT_EQ(engine.points_written(), expected);
  EXPECT_EQ(engine.storage_stats().points, expected);
  EXPECT_EQ(
      engine.aggregate("m", TagSet{}, Timestamp{INT64_MIN}, Timestamp{INT64_MAX}).count,
      expected);
  EXPECT_EQ(engine.aggregate("m", TagSet{}.add("src_city", "shared"), Timestamp{INT64_MIN},
                             Timestamp{INT64_MAX})
                .count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(EngineConcurrency, QueriesDuringIngestSeeConsistentPrefixes) {
  TsdbEngine engine(TsdbOptions{8, 16, Duration::from_ns(50'000)});
  constexpr int kWriters = 3;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&engine, i] {
      const SeriesId sid =
          engine.series("rtt", TagSet{}.add("src_city", "w" + std::to_string(i)));
      for (int n = 0; n < kPerThread; ++n) {
        // Monotonic per-thread values: any snapshot's max is bounded by
        // its count, which a torn read would violate.
        engine.append(sid, Timestamp{static_cast<std::int64_t>(n) * 100},
                      static_cast<double>(n));
      }
    });
  }

  std::thread reader([&engine, &done] {
    std::uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto agg =
          engine.aggregate("rtt", TagSet{}, Timestamp{INT64_MIN}, Timestamp{INT64_MAX});
      // Counts only grow while no retention runs, and every decoded
      // value must be one a writer actually appended.
      EXPECT_GE(agg.count, last_count);
      last_count = agg.count;
      if (agg.count > 0) {
        EXPECT_GE(agg.min, 0.0);
        EXPECT_LT(agg.max, static_cast<double>(kPerThread));
      }
      const auto windows = engine.window_aggregate("rtt", TagSet{}, Timestamp{0},
                                                   Timestamp{kPerThread * 100}, Duration{7'700});
      std::uint64_t windowed = 0;
      for (const auto& w : windows) windowed += w.stats.count;
      EXPECT_LE(windowed, static_cast<std::uint64_t>(kWriters) * kPerThread);
      (void)engine.group_by("rtt", "src_city", TagSet{}, Timestamp{INT64_MIN},
                            Timestamp{INT64_MAX});
    }
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(engine.points_written(), static_cast<std::uint64_t>(kWriters) * kPerThread);
}

TEST(EngineConcurrency, RetentionRacesIngestWithoutLosingAccounting) {
  TsdbEngine engine(TsdbOptions{4, 8, Duration::from_ns(10'000)});
  constexpr int kWriters = 3;
  constexpr int kPerThread = 15'000;
  std::atomic<bool> writers_done{false};
  std::atomic<std::uint64_t> dropped_total{0};

  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&engine, i] {
      const SeriesId sid =
          engine.series("m", TagSet{}.add("src_city", "w" + std::to_string(i)));
      for (int n = 0; n < kPerThread; ++n) {
        engine.append(sid, Timestamp{static_cast<std::int64_t>(n) * 50}, 1.0);
      }
    });
  }

  std::thread reaper([&engine, &writers_done, &dropped_total] {
    std::int64_t now = 0;
    while (!writers_done.load(std::memory_order_acquire)) {
      now += 40'000;
      dropped_total.fetch_add(
          engine.enforce_retention(Timestamp{now}, Duration{100'000}),
          std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  reaper.join();

  // Every appended point is either still resident or was counted as
  // dropped by exactly one retention pass.
  const std::uint64_t total = static_cast<std::uint64_t>(kWriters) * kPerThread;
  EXPECT_EQ(engine.points_written(), total);
  EXPECT_EQ(engine.storage_stats().points + dropped_total.load(), total);
  EXPECT_EQ(
      engine.aggregate("m", TagSet{}, Timestamp{INT64_MIN}, Timestamp{INT64_MAX}).count +
          dropped_total.load(),
      total);
}

TEST(EngineConcurrency, SeriesCreationRacesResolve) {
  TsdbEngine engine(TsdbOptions{8, 64, Duration{0}});
  constexpr int kThreads = 4;
  constexpr int kSeries = 500;

  // All threads resolve the same identities concurrently; the index
  // must hand every thread the same id per identity, and one append per
  // thread per series must all land.
  std::vector<std::thread> threads;
  std::vector<std::vector<SeriesId>> seen(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&engine, &seen, i] {
      for (int s = 0; s < kSeries; ++s) {
        const SeriesId sid =
            engine.series("m", TagSet{}.add("src_city", "c" + std::to_string(s)));
        seen[static_cast<std::size_t>(i)].push_back(sid);
        engine.append(sid, Timestamp{static_cast<std::int64_t>(s)}, static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0]);
  }
  EXPECT_EQ(engine.series_count(), static_cast<std::size_t>(kSeries));
  EXPECT_EQ(engine.points_written(), static_cast<std::uint64_t>(kThreads) * kSeries);
}

}  // namespace
}  // namespace ruru
