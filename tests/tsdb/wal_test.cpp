#include "tsdb/wal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "tsdb/tsdb.hpp"

namespace ruru {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("wal_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".wal"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TagSet tags(std::string src) {
  TagSet t;
  t.add("src_city", std::move(src)).add("dst_city", "LA");
  return t;
}

TEST_F(WalTest, ReplayRebuildsExactState) {
  TimeSeriesDb original;
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok()) << wal.error();
    original.attach_wal(&wal.value());
    original.write("total_ms", tags("Auckland"), Timestamp::from_ms(1), 128.5);
    original.write("total_ms", tags("Auckland"), Timestamp::from_ms(2), 130.25);
    original.write("internal_ms", tags("Wellington"), Timestamp::from_ms(3), 5.0);
    EXPECT_EQ(wal.value().records(), 3u);
    wal.value().sync();
  }

  TimeSeriesDb rebuilt;
  const auto applied = Wal::replay(path_, rebuilt);
  ASSERT_TRUE(applied.ok()) << applied.error();
  EXPECT_EQ(applied.value(), 3u);
  EXPECT_EQ(rebuilt.points_written(), 3u);
  EXPECT_EQ(rebuilt.series_count(), 2u);

  const auto a = original.aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1));
  const auto b = rebuilt.aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1));
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);

  // Tag filters still work post-replay (canonical form parsed back).
  TagSet filter;
  filter.add("src_city", "Wellington");
  EXPECT_EQ(rebuilt.aggregate("internal_ms", filter, Timestamp{}, Timestamp::from_sec(1)).count,
            1u);
}

TEST_F(WalTest, ToleratesTornTail) {
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
    TimeSeriesDb db;
    db.attach_wal(&wal.value());
    db.write("m", tags("A"), Timestamp::from_ms(1), 1.0);
    db.write("m", tags("B"), Timestamp::from_ms(2), 2.0);
    wal.value().sync();
  }
  // Simulate a crash mid-append.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  const std::uint8_t partial[5] = {3, 0, 'z', 'z', 'z'};
  std::fwrite(partial, 1, sizeof partial, f);
  std::fclose(f);

  TimeSeriesDb rebuilt;
  const auto applied = Wal::replay(path_, rebuilt);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 2u);  // intact records only
}

TEST_F(WalTest, ReplayMissingFileFails) {
  TimeSeriesDb db;
  EXPECT_FALSE(Wal::replay("/no/such/file.wal", db).ok());
}

TEST_F(WalTest, EmptyWalReplaysZero) {
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
  }
  TimeSeriesDb db;
  const auto applied = Wal::replay(path_, db);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 0u);
}

TEST_F(WalTest, ManyRecordsSurvive) {
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
    TimeSeriesDb db;
    db.attach_wal(&wal.value());
    for (int i = 0; i < 10'000; ++i) {
      db.write("m", tags("city" + std::to_string(i % 20)), Timestamp::from_ms(i),
               static_cast<double>(i));
    }
    wal.value().sync();
  }
  TimeSeriesDb rebuilt;
  const auto applied = Wal::replay(path_, rebuilt);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 10'000u);
  EXPECT_EQ(rebuilt.series_count(), 20u);
}

}  // namespace
}  // namespace ruru
