// WAL v2 (length + CRC32 framing): round-trip into both the legacy
// store and the engine, plus the recovery contract the format exists
// for — replay applies exactly the records that were fully and
// correctly written, truncating at the first torn or corrupt record.
// The truncation test cuts the log at EVERY byte offset; the
// corruption test flips EVERY byte.  Both assertions are exact, not
// "some prefix": the framed record boundaries are recomputed from the
// headers, so the tests fail loudly if the format or the recovery
// logic drifts.

#include "tsdb/wal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tsdb/query.hpp"
#include "tsdb/tsdb.hpp"

namespace ruru {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("wal_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".wal"))
                .string();
    mut_path_ = path_ + ".mut";
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mut_path_.c_str());
  }
  std::string path_;
  std::string mut_path_;
};

TagSet tags(std::string src) {
  TagSet t;
  t.add("src_city", std::move(src)).add("dst_city", "LA");
  return t;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes,
                std::size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(len));
}

/// Walks the framed records (u32 len | u32 crc | payload) and returns
/// each record's exclusive end offset.
std::vector<std::size_t> record_ends(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::size_t> ends;
  std::size_t off = 0;
  while (off + 8 <= bytes.size()) {
    const std::uint32_t len = static_cast<std::uint32_t>(bytes[off]) |
                              (static_cast<std::uint32_t>(bytes[off + 1]) << 8) |
                              (static_cast<std::uint32_t>(bytes[off + 2]) << 16) |
                              (static_cast<std::uint32_t>(bytes[off + 3]) << 24);
    if (off + 8 + len > bytes.size()) break;
    off += 8 + len;
    ends.push_back(off);
  }
  return ends;
}

TEST_F(WalTest, ReplayRebuildsExactState) {
  TimeSeriesDb original;
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok()) << wal.error();
    original.attach_wal(&wal.value());
    original.write("total_ms", tags("Auckland"), Timestamp::from_ms(1), 128.5);
    original.write("total_ms", tags("Auckland"), Timestamp::from_ms(2), 130.25);
    original.write("internal_ms", tags("Wellington"), Timestamp::from_ms(3), 5.0);
    EXPECT_EQ(wal.value().records(), 3u);
    wal.value().sync();
  }

  TimeSeriesDb rebuilt;
  const auto applied = Wal::replay(path_, rebuilt);
  ASSERT_TRUE(applied.ok()) << applied.error();
  EXPECT_EQ(applied.value(), 3u);
  EXPECT_EQ(rebuilt.points_written(), 3u);
  EXPECT_EQ(rebuilt.series_count(), 2u);

  const auto a = original.aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1));
  const auto b = rebuilt.aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1));
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);

  // Tag filters still work post-replay (canonical form parsed back).
  TagSet filter;
  filter.add("src_city", "Wellington");
  EXPECT_EQ(rebuilt.aggregate("internal_ms", filter, Timestamp{}, Timestamp::from_sec(1)).count,
            1u);
}

TEST_F(WalTest, EngineWritesReplayIntoEngineAndLegacy) {
  // The engine mirrors appends through the same WAL; a log written by
  // the engine must rebuild either store.
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok()) << wal.error();
    TsdbEngine engine;
    engine.attach_wal(&wal.value());
    const SeriesId sid = engine.series("total_ms", tags("Auckland"));
    for (int i = 0; i < 100; ++i) {
      engine.append(sid, Timestamp::from_ms(i), 100.0 + i * 0.5);
    }
    engine.write("internal_ms", tags("Wellington"), Timestamp::from_ms(7), 5.0);
    EXPECT_EQ(wal.value().records(), 101u);
    wal.value().sync();
  }

  TsdbEngine engine2;
  const auto into_engine = Wal::replay(path_, engine2);
  ASSERT_TRUE(into_engine.ok()) << into_engine.error();
  EXPECT_EQ(into_engine.value(), 101u);

  TimeSeriesDb legacy;
  const auto into_legacy = Wal::replay(path_, legacy);
  ASSERT_TRUE(into_legacy.ok()) << into_legacy.error();
  EXPECT_EQ(into_legacy.value(), 101u);

  // Both rebuilt stores agree with each other (oracle parity holds
  // through a WAL round-trip, tags included).
  TagSet filter;
  filter.add("src_city", "Auckland");
  const auto a = legacy.aggregate("total_ms", filter, Timestamp{}, Timestamp::from_sec(10));
  const auto b = engine2.aggregate("total_ms", filter, Timestamp{}, Timestamp::from_sec(10));
  EXPECT_EQ(a.count, 100u);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.median, b.median);
}

TEST_F(WalTest, ToleratesTornTail) {
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
    TimeSeriesDb db;
    db.attach_wal(&wal.value());
    db.write("m", tags("A"), Timestamp::from_ms(1), 1.0);
    db.write("m", tags("B"), Timestamp::from_ms(2), 2.0);
    wal.value().sync();
  }
  // Simulate a crash mid-append.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  const std::uint8_t partial[5] = {3, 0, 'z', 'z', 'z'};
  std::fwrite(partial, 1, sizeof partial, f);
  std::fclose(f);

  TimeSeriesDb rebuilt;
  const auto applied = Wal::replay(path_, rebuilt);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 2u);  // intact records only
}

TEST_F(WalTest, TruncationAtEveryByteOffset) {
  constexpr int kRecords = 6;
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
    TimeSeriesDb db;
    db.attach_wal(&wal.value());
    for (int i = 0; i < kRecords; ++i) {
      // Varying string lengths so record sizes differ.
      db.write("m" + std::string(static_cast<std::size_t>(i % 3), 'x'),
               tags("city" + std::to_string(i)), Timestamp::from_ms(i),
               static_cast<double>(i));
    }
    wal.value().sync();
  }

  const std::vector<std::uint8_t> bytes = read_file(path_);
  const std::vector<std::size_t> ends = record_ends(bytes);
  ASSERT_EQ(ends.size(), static_cast<std::size_t>(kRecords));
  ASSERT_EQ(ends.back(), bytes.size());

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    write_file(mut_path_, bytes, cut);
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;

    TimeSeriesDb rebuilt;
    const auto applied = Wal::replay(mut_path_, rebuilt);
    ASSERT_TRUE(applied.ok()) << "cut at " << cut;
    EXPECT_EQ(applied.value(), expect) << "cut at " << cut;
    EXPECT_EQ(rebuilt.points_written(), expect) << "cut at " << cut;
  }
}

TEST_F(WalTest, ByteFlipStopsAtDamagedRecord) {
  constexpr int kRecords = 4;
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
    TimeSeriesDb db;
    db.attach_wal(&wal.value());
    for (int i = 0; i < kRecords; ++i) {
      db.write("m", tags("c" + std::to_string(i)), Timestamp::from_ms(i),
               static_cast<double>(i));
    }
    wal.value().sync();
  }

  const std::vector<std::uint8_t> bytes = read_file(path_);
  const std::vector<std::size_t> ends = record_ends(bytes);
  ASSERT_EQ(ends.size(), static_cast<std::size_t>(kRecords));

  std::vector<std::uint8_t> mutated = bytes;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    mutated[pos] = static_cast<std::uint8_t>(bytes[pos] ^ 0xFF);
    write_file(mut_path_, mutated, mutated.size());
    mutated[pos] = bytes[pos];

    // The record containing the flipped byte fails its CRC (or its
    // length sanity check); everything before it replays, nothing at
    // or after it does.
    std::size_t damaged = 0;
    while (ends[damaged] <= pos) ++damaged;

    TimeSeriesDb rebuilt;
    const auto applied = Wal::replay(mut_path_, rebuilt);
    ASSERT_TRUE(applied.ok()) << "flip at " << pos;
    EXPECT_EQ(applied.value(), damaged) << "flip at " << pos;
    EXPECT_EQ(rebuilt.points_written(), damaged) << "flip at " << pos;
  }
}

TEST_F(WalTest, ImplausibleLengthFieldsStopReplay) {
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
    TimeSeriesDb db;
    db.attach_wal(&wal.value());
    db.write("m", tags("A"), Timestamp::from_ms(1), 1.0);
    db.write("m", tags("B"), Timestamp::from_ms(2), 2.0);
    wal.value().sync();
  }
  const std::vector<std::uint8_t> bytes = read_file(path_);
  const std::vector<std::size_t> ends = record_ends(bytes);
  ASSERT_EQ(ends.size(), 2u);

  // Overwrite record 1's length with each implausible value: zero
  // (below the fixed payload floor) and huge (past the framing cap).
  for (const std::uint32_t bad_len : {0u, 0xFFFF'FFFFu, 7u}) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t off = ends[0];
    mutated[off + 0] = static_cast<std::uint8_t>(bad_len);
    mutated[off + 1] = static_cast<std::uint8_t>(bad_len >> 8);
    mutated[off + 2] = static_cast<std::uint8_t>(bad_len >> 16);
    mutated[off + 3] = static_cast<std::uint8_t>(bad_len >> 24);
    write_file(mut_path_, mutated, mutated.size());

    TimeSeriesDb rebuilt;
    const auto applied = Wal::replay(mut_path_, rebuilt);
    ASSERT_TRUE(applied.ok());
    EXPECT_EQ(applied.value(), 1u) << "len=" << bad_len;
  }
}

TEST_F(WalTest, ReplayMissingFileFails) {
  TimeSeriesDb db;
  EXPECT_FALSE(Wal::replay("/no/such/file.wal", db).ok());
}

TEST_F(WalTest, EmptyWalReplaysZero) {
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
  }
  TimeSeriesDb db;
  const auto applied = Wal::replay(path_, db);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 0u);
}

TEST_F(WalTest, ManyRecordsSurvive) {
  {
    auto wal = Wal::create(path_);
    ASSERT_TRUE(wal.ok());
    TimeSeriesDb db;
    db.attach_wal(&wal.value());
    for (int i = 0; i < 10'000; ++i) {
      db.write("m", tags("city" + std::to_string(i % 20)), Timestamp::from_ms(i),
               static_cast<double>(i));
    }
    wal.value().sync();
  }
  TimeSeriesDb rebuilt;
  const auto applied = Wal::replay(path_, rebuilt);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 10'000u);
  EXPECT_EQ(rebuilt.series_count(), 20u);
}

}  // namespace
}  // namespace ruru
