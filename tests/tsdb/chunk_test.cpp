// Gorilla chunk codec: the engine's correctness rests on every
// (timestamp, value) pair decoding bit-identically, because the query
// layer promises oracle parity with the uncompressed store.  These
// tests pin that down with deterministic fuzz against the trivial
// "remember what I appended" oracle: random walks, NaN/inf/-0.0 bit
// patterns, equal-timestamp runs, out-of-order timestamps, decoding a
// snapshot taken mid-write, and seal/reopen boundaries.

#include "tsdb/chunk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/random.hpp"

namespace ruru {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

struct Point {
  std::int64_t ts;
  double value;
};

/// Appends every point, seals, and asserts the decoded stream is
/// bit-identical (NaN payloads included) to what went in.
void expect_roundtrip(const std::vector<Point>& points) {
  ChunkWriter w;
  for (const Point& p : points) w.append(Timestamp::from_ns(p.ts), p.value);
  ASSERT_EQ(w.count(), points.size());
  const auto sealed = w.seal();
  ASSERT_NE(sealed, nullptr);
  EXPECT_EQ(sealed->count, points.size());

  ChunkCursor cursor(*sealed);
  Timestamp ts;
  double value;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(cursor.next(ts, value)) << "point " << i;
    EXPECT_EQ(ts.ns, points[i].ts) << "point " << i;
    EXPECT_EQ(bits_of(value), bits_of(points[i].value)) << "point " << i;
  }
  EXPECT_FALSE(cursor.next(ts, value));
}

TEST(BitStream, RoundTripsMixedWidths) {
  BitWriter w;
  w.put(0b1, 1);
  w.put(0b1010, 4);
  w.put(0x3FFF, 14);
  w.put(0xDEADBEEFCAFEF00DULL, 64);
  w.put(0, 7);
  w.put(0x1FF, 9);

  BitReader r(w.bytes().data(), w.size_bytes());
  EXPECT_EQ(r.get(1), 0b1u);
  EXPECT_EQ(r.get(4), 0b1010u);
  EXPECT_EQ(r.get(14), 0x3FFFu);
  EXPECT_EQ(r.get(64), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(r.get(7), 0u);
  EXPECT_EQ(r.get(9), 0x1FFu);
}

TEST(BitStream, ReadPastEndYieldsZeros) {
  BitWriter w;
  w.put(0xFF, 8);
  BitReader r(w.bytes().data(), w.size_bytes());
  EXPECT_EQ(r.get(8), 0xFFu);
  EXPECT_EQ(r.get(64), 0u);  // bounded by out-of-band count in practice
  EXPECT_EQ(r.get(1), 0u);
}

TEST(ChunkCodec, SinglePoint) { expect_roundtrip({{123'456'789, 42.5}}); }

TEST(ChunkCodec, RegularCadenceDecimalValues) {
  // The monitoring-series sweet spot: fixed cadence and a gauge that
  // changes only occasionally (the Gorilla-paper observation: most
  // consecutive samples repeat).  Must round-trip AND compress >= 8x
  // vs the 16-byte raw DataPoint.
  std::vector<Point> points;
  double v = 128.5;
  for (int i = 0; i < 512; ++i) {
    if (i % 4 == 0) v += (i % 8 == 0) ? 0.25 : -0.25;
    points.push_back({i * 1'000'000'000LL, v});
  }
  expect_roundtrip(points);

  ChunkWriter w;
  for (const Point& p : points) w.append(Timestamp::from_ns(p.ts), p.value);
  const double bytes_per_point =
      static_cast<double>(w.size_bytes()) / static_cast<double>(points.size());
  EXPECT_LT(bytes_per_point, 2.0) << "regular cadence should compress >= 8x vs 16 B raw";
}

TEST(ChunkCodec, EqualTimestampRuns) {
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) points.push_back({5'000, 1.0});
  for (int i = 0; i < 100; ++i) points.push_back({5'000, 2.0 + i});
  expect_roundtrip(points);
}

TEST(ChunkCodec, OutOfOrderTimestamps) {
  expect_roundtrip({{100, 1.0}, {50, 2.0}, {200, 3.0}, {-7, 4.0}, {200, 5.0}});
}

TEST(ChunkCodec, SpecialValues) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double snan = std::numeric_limits<double>::signaling_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  expect_roundtrip({{0, qnan},
                    {1, -qnan},
                    {2, snan},
                    {3, inf},
                    {4, -inf},
                    {5, 0.0},
                    {6, -0.0},
                    {7, std::numeric_limits<double>::denorm_min()},
                    {8, std::numeric_limits<double>::max()},
                    {9, -std::numeric_limits<double>::max()},
                    {10, std::numeric_limits<double>::min()}});
}

TEST(ChunkCodec, ExtremeTimestamps) {
  // Large dods exercise the '1111' raw-zigzag escape in both directions.
  expect_roundtrip({{0, 1.0},
                    {4'000'000'000'000'000'000LL, 2.0},
                    {-4'000'000'000'000'000'000LL, 3.0},
                    {0, 4.0},
                    {1, 5.0}});
}

TEST(ChunkCodec, FuzzRandomWalks) {
  Pcg32 rng(0x9e3779b9u);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Point> points;
    const int n = 1 + static_cast<int>(rng.bounded(300));
    std::int64_t ts = static_cast<std::int64_t>(rng.next_u64() % 1'000'000'000'000LL);
    double value = rng.uniform(0.0, 500.0);
    for (int i = 0; i < n; ++i) {
      switch (rng.bounded(6)) {
        case 0: ts += 0; break;                                    // repeat timestamp
        case 1: ts += 1'000'000'000; break;                        // steady cadence
        case 2: ts += static_cast<std::int64_t>(rng.bounded(1u << 20)); break;
        case 3: ts -= static_cast<std::int64_t>(rng.bounded(1u << 16)); break;
        case 4: ts += static_cast<std::int64_t>(rng.next_u64() % (1ULL << 50)); break;
        default: ts += 999'999'937; break;                         // prime jitter
      }
      switch (rng.bounded(6)) {
        case 0: break;                                             // repeat value
        case 1: value += 0.5; break;                               // exact decimal delta
        case 2: value = rng.uniform(-1e6, 1e6); break;
        case 3: value = rng.normal(128.0, 40.0); break;
        case 4: value = std::numeric_limits<double>::quiet_NaN(); break;
        default: value *= -1.0001; break;
      }
      points.push_back({ts, value});
    }
    expect_roundtrip(points);
  }
}

TEST(ChunkCodec, FuzzScaledIntegerFriendlyWalks) {
  // Millisecond-precision latency walks: the scaled-int path dominates;
  // must stay exact across scale/width escalations.
  Pcg32 rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Point> points;
    std::int64_t ts = 0;
    double ms = 100.0;
    const int n = 2 + static_cast<int>(rng.bounded(400));
    for (int i = 0; i < n; ++i) {
      ts += 10'000'000 + rng.bounded(1000);
      ms += (static_cast<double>(rng.bounded(2001)) - 1000.0) / 1000.0;  // +-1.000 in 0.001 steps
      points.push_back({ts, ms});
    }
    expect_roundtrip(points);
  }
}

TEST(ChunkWriter, SealEmptyReturnsNull) {
  ChunkWriter w;
  EXPECT_EQ(w.seal(), nullptr);
}

TEST(ChunkWriter, SealResetsForReuse) {
  ChunkWriter w;
  w.append(Timestamp::from_ns(10), 1.0);
  w.append(Timestamp::from_ns(20), 2.0);
  const auto first = w.seal();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->count, 2u);
  EXPECT_EQ(first->min_ts, 10);
  EXPECT_EQ(first->max_ts, 20);
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.size_bytes(), 0u);

  // The reused writer must not leak predictor state from before the
  // seal: the next chunk decodes standalone.
  w.append(Timestamp::from_ns(30), 3.0);
  const auto second = w.seal();
  ASSERT_NE(second, nullptr);
  ChunkCursor cursor(*second);
  Timestamp ts;
  double value;
  ASSERT_TRUE(cursor.next(ts, value));
  EXPECT_EQ(ts.ns, 30);
  EXPECT_EQ(value, 3.0);
  EXPECT_FALSE(cursor.next(ts, value));
}

TEST(ChunkWriter, MinMaxTrackOutOfOrderAppends) {
  ChunkWriter w;
  w.append(Timestamp::from_ns(100), 1.0);
  w.append(Timestamp::from_ns(-5), 2.0);
  w.append(Timestamp::from_ns(60), 3.0);
  EXPECT_EQ(w.min_ts(), -5);
  EXPECT_EQ(w.max_ts(), 100);
}

TEST(ChunkWriter, SnapshotMidWriteDecodesPrefix) {
  // The engine copies open-chunk bytes under the shard lock and decodes
  // them after releasing it; the snapshot must be a self-consistent
  // prefix even though the writer keeps appending afterwards.
  ChunkWriter w;
  std::vector<Point> all;
  Pcg32 rng(7);
  for (int i = 0; i < 200; ++i) {
    const Point p{i * 123'456LL, rng.uniform(0.0, 10.0)};
    all.push_back(p);
    w.append(Timestamp::from_ns(p.ts), p.value);
    if (i % 17 == 0) {
      std::vector<std::uint8_t> bytes;
      const std::uint32_t n = w.snapshot(bytes);
      ASSERT_EQ(n, static_cast<std::uint32_t>(i + 1));
      ChunkCursor cursor(bytes.data(), bytes.size(), n);
      Timestamp ts;
      double value;
      for (std::uint32_t k = 0; k < n; ++k) {
        ASSERT_TRUE(cursor.next(ts, value));
        EXPECT_EQ(ts.ns, all[k].ts);
        EXPECT_EQ(bits_of(value), bits_of(all[k].value));
      }
      EXPECT_FALSE(cursor.next(ts, value));
    }
  }
}

}  // namespace
}  // namespace ruru
