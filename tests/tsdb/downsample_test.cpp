#include <gtest/gtest.h>

#include "tsdb/tsdb.hpp"

namespace ruru {
namespace {

TagSet route(const std::string& src) {
  TagSet t;
  t.add("src_city", src).add("dst_city", "LA");
  return t;
}

class DownsampleTest : public ::testing::Test {
 protected:
  DownsampleTest() {
    // Two series, 10 points per second for 10 s; values = second index.
    for (int sec = 0; sec < 10; ++sec) {
      for (int i = 0; i < 10; ++i) {
        const auto t = Timestamp::from_ms(sec * 1000 + i * 100);
        db_.write("total_ms", route("Auckland"), t, static_cast<double>(sec));
        db_.write("total_ms", route("Wellington"), t, static_cast<double>(sec) * 2);
      }
    }
  }
  TimeSeriesDb db_;
};

TEST_F(DownsampleTest, MeanPerWindowPerSeries) {
  const std::size_t written =
      db_.downsample("total_ms", "total_ms_1s", Duration::from_sec(1.0), "mean");
  EXPECT_EQ(written, 20u);  // 10 windows x 2 series

  TagSet filter;
  filter.add("src_city", "Wellington");
  const auto r = db_.aggregate("total_ms_1s", filter, Timestamp{}, Timestamp::from_sec(100));
  EXPECT_EQ(r.count, 10u);
  EXPECT_DOUBLE_EQ(r.min, 0.0);
  EXPECT_DOUBLE_EQ(r.max, 18.0);  // second 9, doubled
}

TEST_F(DownsampleTest, TagsSurviveDownsampling) {
  db_.downsample("total_ms", "ds", Duration::from_sec(1.0));
  const auto groups = db_.group_by("ds", "src_city", TagSet{}, Timestamp{},
                                   Timestamp::from_sec(100));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].tag_value, "Auckland");
  EXPECT_EQ(groups[1].tag_value, "Wellington");
}

TEST_F(DownsampleTest, WindowTimestampsAreBucketStarts) {
  db_.downsample("total_ms", "ds", Duration::from_sec(2.0), "count");
  const auto windows = db_.window_aggregate("ds", TagSet{}, Timestamp{}, Timestamp::from_sec(10),
                                            Duration::from_sec(2.0));
  ASSERT_EQ(windows.size(), 5u);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].window_start.ns % Duration::from_sec(2.0).ns, 0);
    // Each 2s bucket held 20 raw points per series -> count stat == 20.
    EXPECT_DOUBLE_EQ(windows[i].stats.mean, 20.0);
  }
}

TEST_F(DownsampleTest, StatSelection) {
  db_.downsample("total_ms", "med", Duration::from_sec(10.0), "median");
  db_.downsample("total_ms", "mx", Duration::from_sec(10.0), "max");
  TagSet filter;
  filter.add("src_city", "Auckland");
  EXPECT_DOUBLE_EQ(
      db_.aggregate("med", filter, Timestamp{}, Timestamp::from_sec(100)).mean, 4.5);
  EXPECT_DOUBLE_EQ(db_.aggregate("mx", filter, Timestamp{}, Timestamp::from_sec(100)).mean, 9.0);
}

TEST_F(DownsampleTest, RetentionPlusDownsampleWorkflow) {
  // The deployment pattern: downsample to 1 s medians, then drop raw.
  db_.downsample("total_ms", "total_ms_1s", Duration::from_sec(1.0), "median");
  const std::size_t dropped =
      db_.enforce_retention(Timestamp::from_sec(10), Duration::from_sec(0.0));
  EXPECT_GT(dropped, 0u);
  // Raw gone; downsampled series retained... retention dropped everything
  // older than now, including downsampled points (time <= 9 s). Re-check
  // with a horizon that keeps them:
  EXPECT_EQ(db_.aggregate("total_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(100)).count, 0u);
}

TEST_F(DownsampleTest, UnknownSourceOrBadArgs) {
  EXPECT_EQ(db_.downsample("nope", "x", Duration::from_sec(1.0)), 0u);
  EXPECT_EQ(db_.downsample("total_ms", "total_ms", Duration::from_sec(1.0)), 0u);  // src==dst
  EXPECT_EQ(db_.downsample("total_ms", "x", Duration::from_sec(0.0)), 0u);
}

}  // namespace
}  // namespace ruru
