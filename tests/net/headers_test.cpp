#include "net/headers.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

#include <vector>

#include "util/random.hpp"

namespace ruru {
namespace {

TEST(EthernetHeader, RoundTrip) {
  EthernetHeader h;
  h.dst = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55};
  h.src = {0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  h.ether_type = kEtherTypeIpv4;
  std::vector<std::uint8_t> buf(EthernetHeader::kSize);
  EXPECT_EQ(h.write(buf), EthernetHeader::kSize);
  const auto parsed = EthernetHeader::parse(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().dst, h.dst);
  EXPECT_EQ(parsed.value().src, h.src);
  EXPECT_EQ(parsed.value().ether_type, h.ether_type);
}

TEST(EthernetHeader, RejectsShortFrame) {
  std::vector<std::uint8_t> buf(13, 0);
  EXPECT_FALSE(EthernetHeader::parse(buf).ok());
}

TEST(Ipv4Header, RoundTripWithChecksum) {
  Ipv4Header h;
  h.total_length = 64;
  h.identification = 0x1234;
  h.flags_fragment = 0x4000;
  h.ttl = 57;
  h.protocol = kIpProtoTcp;
  h.src = Ipv4Address(10, 0, 0, 1);
  h.dst = Ipv4Address(192, 168, 1, 1);
  std::vector<std::uint8_t> buf(20);
  EXPECT_EQ(h.write(buf), 20u);

  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed.ok());
  const Ipv4Header& p = parsed.value();
  EXPECT_EQ(p.total_length, 64);
  EXPECT_EQ(p.identification, 0x1234);
  EXPECT_EQ(p.ttl, 57);
  EXPECT_EQ(p.src, h.src);
  EXPECT_EQ(p.dst, h.dst);
  EXPECT_NE(p.header_checksum, 0);

  // A written header verifies: checksum over it (incl. checksum field)
  // must be zero after inversion — i.e. internet_checksum == 0.
  EXPECT_EQ(internet_checksum(std::span<const std::uint8_t>(buf.data(), 20)), 0);
}

TEST(Ipv4Header, RejectsBadVersionAndLengths) {
  std::vector<std::uint8_t> buf(20, 0);
  buf[0] = 0x60;  // version 6 in an IPv4 parse
  EXPECT_FALSE(Ipv4Header::parse(buf).ok());
  buf[0] = 0x44;  // ihl=4 < 5
  EXPECT_FALSE(Ipv4Header::parse(buf).ok());
  buf[0] = 0x4F;  // ihl=15 but buffer is 20 bytes
  EXPECT_FALSE(Ipv4Header::parse(buf).ok());
  EXPECT_FALSE(Ipv4Header::parse(std::span<const std::uint8_t>(buf.data(), 10)).ok());
}

TEST(Ipv4Header, FragmentDetection) {
  Ipv4Header h;
  h.flags_fragment = 0x4000;  // DF only
  EXPECT_FALSE(h.is_fragment());
  h.flags_fragment = 0x2000;  // MF
  EXPECT_TRUE(h.is_fragment());
  h.flags_fragment = 0x0010;  // offset != 0
  EXPECT_TRUE(h.is_fragment());
}

TEST(Ipv6Header, RoundTrip) {
  Ipv6Header h;
  h.payload_length = 120;
  h.next_header = kIpProtoTcp;
  h.hop_limit = 60;
  h.src = Ipv6Address::parse("2001:db8::1").value();
  h.dst = Ipv6Address::parse("2001:db8::2").value();
  std::vector<std::uint8_t> buf(Ipv6Header::kSize);
  EXPECT_EQ(h.write(buf), Ipv6Header::kSize);
  const auto parsed = Ipv6Header::parse(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().payload_length, 120);
  EXPECT_EQ(parsed.value().next_header, kIpProtoTcp);
  EXPECT_EQ(parsed.value().src, h.src);
  EXPECT_EQ(parsed.value().dst, h.dst);
}

TEST(TcpHeader, RoundTripPlain) {
  TcpHeader h;
  h.src_port = 43210;
  h.dst_port = 443;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.flags = TcpFlags::kSyn | TcpFlags::kAck;
  h.window = 29200;
  std::vector<std::uint8_t> buf(h.header_length());
  EXPECT_EQ(h.write(buf), 20u);
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().src_port, 43210);
  EXPECT_EQ(parsed.value().dst_port, 443);
  EXPECT_EQ(parsed.value().seq, 0xDEADBEEF);
  EXPECT_EQ(parsed.value().ack, 0x12345678u);
  EXPECT_TRUE(parsed.value().is_syn_ack());
  EXPECT_EQ(parsed.value().window, 29200);
}

TEST(TcpHeader, FlagHelpers) {
  TcpHeader h;
  h.flags = TcpFlags::kSyn;
  EXPECT_TRUE(h.is_syn_only());
  EXPECT_FALSE(h.is_syn_ack());
  h.flags = TcpFlags::kSyn | TcpFlags::kAck;
  EXPECT_FALSE(h.is_syn_only());
  EXPECT_TRUE(h.is_syn_ack());
  h.flags = TcpFlags::kRst;
  EXPECT_TRUE(h.rst());
  h.flags = TcpFlags::kFin | TcpFlags::kAck;
  EXPECT_TRUE(h.fin());
  EXPECT_TRUE(h.ack_flag());
}

TEST(TcpHeader, TimestampOptionRoundTrip) {
  TcpHeader h;
  ASSERT_TRUE(h.add_timestamp_option(0xAABBCCDD, 0x11223344));
  EXPECT_EQ(h.header_length(), 32u);  // 20 + 12
  std::vector<std::uint8_t> buf(h.header_length());
  h.write(buf);
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.ok());
  const auto ts = parsed.value().timestamp_option();
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(ts->ts_val, 0xAABBCCDD);
  EXPECT_EQ(ts->ts_ecr, 0x11223344u);
}

TEST(TcpHeader, MssAndTimestampTogether) {
  TcpHeader h;
  ASSERT_TRUE(h.add_mss_option(1460));
  ASSERT_TRUE(h.add_timestamp_option(100, 0));
  std::vector<std::uint8_t> buf(h.header_length());
  h.write(buf);
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.ok());
  const auto ts = parsed.value().timestamp_option();
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(ts->ts_val, 100u);
}

TEST(TcpHeader, AllSynOptionsTogether) {
  // A realistic modern SYN: MSS + SACK-permitted + TS + window scale.
  TcpHeader h;
  ASSERT_TRUE(h.add_mss_option(1460));
  ASSERT_TRUE(h.add_sack_permitted_option());
  ASSERT_TRUE(h.add_timestamp_option(0x11111111, 0));
  ASSERT_TRUE(h.add_window_scale_option(7));
  std::vector<std::uint8_t> buf(h.header_length());
  h.write(buf);
  const auto p = TcpHeader::parse(buf);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().mss_option().value(), 1460);
  EXPECT_TRUE(p.value().sack_permitted());
  EXPECT_EQ(p.value().timestamp_option()->ts_val, 0x11111111u);
  EXPECT_EQ(p.value().window_scale_option().value(), 7);
}

TEST(TcpHeader, AbsentOptionsReportAbsent) {
  TcpHeader h;
  h.add_timestamp_option(1, 2);
  EXPECT_FALSE(h.mss_option().has_value());
  EXPECT_FALSE(h.window_scale_option().has_value());
  EXPECT_FALSE(h.sack_permitted());
}

TEST(TcpHeader, NoTimestampOptionReturnsNullopt) {
  TcpHeader h;
  EXPECT_FALSE(h.timestamp_option().has_value());
  h.add_mss_option(1460);
  EXPECT_FALSE(h.timestamp_option().has_value());
}

TEST(TcpHeader, MalformedOptionsDontCrash) {
  TcpHeader h;
  h.options_length = 3;
  h.options[0] = 8;   // timestamp kind...
  h.options[1] = 10;  // ...claims 10 bytes but only 3 present
  h.options[2] = 0;
  EXPECT_FALSE(h.timestamp_option().has_value());

  h.options[0] = 5;  // SACK with zero len
  h.options[1] = 0;  // invalid length < 2
  EXPECT_FALSE(h.timestamp_option().has_value());
}

TEST(TcpHeader, OptionSpaceOverflowRejected) {
  TcpHeader h;
  ASSERT_TRUE(h.add_timestamp_option(1, 2));  // 12
  ASSERT_TRUE(h.add_timestamp_option(3, 4));  // 24
  ASSERT_TRUE(h.add_timestamp_option(5, 6));  // 36
  EXPECT_FALSE(h.add_timestamp_option(7, 8));  // 48 > 40
  EXPECT_TRUE(h.add_mss_option(1400));         // 40 exactly fits
  EXPECT_FALSE(h.add_mss_option(1400));
}

TEST(TcpHeader, RejectsTruncated) {
  std::vector<std::uint8_t> buf(19, 0);
  EXPECT_FALSE(TcpHeader::parse(buf).ok());
  buf.resize(20, 0);
  buf[12] = 0x40;  // data_offset 4 < 5
  EXPECT_FALSE(TcpHeader::parse(buf).ok());
  buf[12] = 0x80;  // data_offset 8 -> needs 32 bytes
  EXPECT_FALSE(TcpHeader::parse(buf).ok());
}

// Property: random headers round-trip through write/parse.
class TcpHeaderFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpHeaderFuzzRoundTrip, WriteParseIdentity) {
  Pcg32 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    TcpHeader h;
    h.src_port = static_cast<std::uint16_t>(rng.next_u32());
    h.dst_port = static_cast<std::uint16_t>(rng.next_u32());
    h.seq = rng.next_u32();
    h.ack = rng.next_u32();
    h.flags = static_cast<std::uint8_t>(rng.next_u32() & 0x3f);
    h.window = static_cast<std::uint16_t>(rng.next_u32());
    if (rng.chance(0.5)) h.add_mss_option(static_cast<std::uint16_t>(rng.next_u32()));
    if (rng.chance(0.5)) h.add_timestamp_option(rng.next_u32(), rng.next_u32());
    std::vector<std::uint8_t> buf(h.header_length());
    h.write(buf);
    const auto p = TcpHeader::parse(buf);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().src_port, h.src_port);
    EXPECT_EQ(p.value().dst_port, h.dst_port);
    EXPECT_EQ(p.value().seq, h.seq);
    EXPECT_EQ(p.value().ack, h.ack);
    EXPECT_EQ(p.value().flags, h.flags);
    EXPECT_EQ(p.value().header_length(), h.header_length());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpHeaderFuzzRoundTrip, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace ruru
