#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ruru {
namespace {

TEST(Checksum, KnownVector) {
  // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2, csum ~0xddf2 = 0x220d.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroBufferChecksumIsAllOnes) {
  const std::vector<std::uint8_t> data(8, 0);
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> even = {0x12, 0x34, 0xab, 0x00};
  const std::vector<std::uint8_t> odd = {0x12, 0x34, 0xab};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, EmptyBuffer) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, PartialComposition) {
  // checksum(a ++ b) must equal folding partial sums (even-length split).
  const std::vector<std::uint8_t> a = {1, 2, 3, 4};
  const std::vector<std::uint8_t> b = {5, 6, 7, 8};
  std::vector<std::uint8_t> ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  const std::uint32_t partial = checksum_partial(a);
  const std::uint32_t full = checksum_partial(b, partial);
  EXPECT_EQ(static_cast<std::uint16_t>(~full & 0xffff), internet_checksum(ab));
}

TEST(Checksum, TcpPseudoHeaderValidatesBuiltSegments) {
  // A 20-byte TCP header with checksum zeroed, then checksummed; the
  // verification pass (summing with the checksum in place) must be 0.
  std::vector<std::uint8_t> segment(20, 0);
  segment[13] = 0x02;  // SYN
  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  const std::uint16_t csum = tcp_checksum_v4(src, dst, segment);
  segment[16] = static_cast<std::uint8_t>(csum >> 8);
  segment[17] = static_cast<std::uint8_t>(csum & 0xff);
  EXPECT_EQ(tcp_checksum_v4(src, dst, segment), 0);
}

TEST(Checksum, DiffersWhenAddressesDiffer) {
  std::vector<std::uint8_t> segment(20, 0);
  const std::uint16_t c1 = tcp_checksum_v4(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), segment);
  const std::uint16_t c2 = tcp_checksum_v4(Ipv4Address(1, 1, 1, 2), Ipv4Address(2, 2, 2, 2), segment);
  EXPECT_NE(c1, c2);
}

}  // namespace
}  // namespace ruru
