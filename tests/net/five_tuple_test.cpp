#include "net/five_tuple.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/random.hpp"

namespace ruru {
namespace {

FiveTuple tuple(Ipv4Address s, std::uint16_t sp, Ipv4Address d, std::uint16_t dp) {
  return FiveTuple{s, d, sp, dp, 6};
}

TEST(FiveTuple, EqualityAndReverse) {
  const auto t = tuple(Ipv4Address(1, 1, 1, 1), 100, Ipv4Address(2, 2, 2, 2), 200);
  EXPECT_EQ(t, t);
  const auto r = t.reversed();
  EXPECT_EQ(r.src.v4, Ipv4Address(2, 2, 2, 2));
  EXPECT_EQ(r.src_port, 200);
  EXPECT_EQ(r.reversed(), t);
  EXPECT_FALSE(t == r);
}

TEST(FlowKey, BothDirectionsShareCanonicalForm) {
  const auto fwd = tuple(Ipv4Address(10, 0, 0, 1), 40000, Ipv4Address(10, 0, 0, 2), 443);
  const FlowKey a = FlowKey::from(fwd);
  const FlowKey b = FlowKey::from(fwd.reversed());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.forward, b.forward);
}

TEST(FlowKey, DirectionBitTracksObservedOrientation) {
  const auto fwd = tuple(Ipv4Address(10, 0, 0, 1), 40000, Ipv4Address(10, 0, 0, 2), 443);
  const FlowKey a = FlowKey::from(fwd);
  // Reconstructing the observed tuple from canonical + direction:
  const FiveTuple rebuilt = a.forward ? a.canonical : a.canonical.reversed();
  EXPECT_EQ(rebuilt, fwd);
}

TEST(FlowKey, DifferentFlowsDiffer) {
  const FlowKey a =
      FlowKey::from(tuple(Ipv4Address(10, 0, 0, 1), 40000, Ipv4Address(10, 0, 0, 2), 443));
  const FlowKey b =
      FlowKey::from(tuple(Ipv4Address(10, 0, 0, 1), 40001, Ipv4Address(10, 0, 0, 2), 443));
  EXPECT_FALSE(a == b);
}

TEST(FlowKey, SamePortsDifferentHosts) {
  const FlowKey a =
      FlowKey::from(tuple(Ipv4Address(10, 0, 0, 1), 443, Ipv4Address(10, 0, 0, 2), 443));
  const FlowKey b =
      FlowKey::from(tuple(Ipv4Address(10, 0, 0, 2), 443, Ipv4Address(10, 0, 0, 3), 443));
  EXPECT_FALSE(a == b);
}

TEST(FlowKey, HashSymmetryProperty) {
  Pcg32 rng(77);
  for (int i = 0; i < 2000; ++i) {
    const auto t = tuple(Ipv4Address(rng.next_u32()), static_cast<std::uint16_t>(rng.next_u32()),
                         Ipv4Address(rng.next_u32()), static_cast<std::uint16_t>(rng.next_u32()));
    EXPECT_EQ(FlowKey::from(t).hash(), FlowKey::from(t.reversed()).hash());
  }
}

TEST(FlowKey, HashDispersion) {
  // Many distinct flows should produce (almost) as many distinct hashes.
  Pcg32 rng(88);
  std::unordered_set<std::uint64_t> hashes;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto t = tuple(Ipv4Address(rng.next_u32()), static_cast<std::uint16_t>(rng.next_u32()),
                         Ipv4Address(rng.next_u32()), static_cast<std::uint16_t>(rng.next_u32()));
    hashes.insert(FlowKey::from(t).hash());
  }
  EXPECT_GT(hashes.size(), static_cast<std::size_t>(n - 5));
}

TEST(FlowKey, WorksInUnorderedContainers) {
  std::unordered_set<FlowKey> set;
  const auto t = tuple(Ipv4Address(1, 2, 3, 4), 1, Ipv4Address(4, 3, 2, 1), 2);
  set.insert(FlowKey::from(t));
  EXPECT_EQ(set.count(FlowKey::from(t.reversed())), 1u);
}

TEST(FlowKey, Ipv6FlowsCanonicalize) {
  FiveTuple t;
  t.src = Ipv6Address::parse("2001:db8::1").value();
  t.dst = Ipv6Address::parse("2001:db8::2").value();
  t.src_port = 5000;
  t.dst_port = 80;
  t.protocol = 6;
  EXPECT_EQ(FlowKey::from(t), FlowKey::from(t.reversed()));
  EXPECT_EQ(FlowKey::from(t).hash(), FlowKey::from(t.reversed()).hash());
}

}  // namespace
}  // namespace ruru
