#include "net/packet_view.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet_builder.hpp"

namespace ruru {
namespace {

TcpFrameSpec basic_spec() {
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address(10, 1, 0, 5);
  spec.dst_ip = Ipv4Address(10, 2, 0, 9);
  spec.src_port = 40000;
  spec.dst_port = 443;
  spec.seq = 1000;
  spec.flags = TcpFlags::kSyn;
  return spec;
}

TEST(PacketView, ParsesTcpSyn) {
  const auto frame = build_tcp_frame(basic_spec());
  PacketView view;
  ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
  EXPECT_TRUE(view.is_v4);
  EXPECT_EQ(view.ip4.src, Ipv4Address(10, 1, 0, 5));
  EXPECT_EQ(view.ip4.dst, Ipv4Address(10, 2, 0, 9));
  EXPECT_EQ(view.tcp.src_port, 40000);
  EXPECT_EQ(view.tcp.dst_port, 443);
  EXPECT_TRUE(view.tcp.is_syn_only());
  EXPECT_EQ(view.payload_length, 0u);
  EXPECT_EQ(view.frame_length, frame.size());
}

TEST(PacketView, PayloadLengthAccountsForHeaders) {
  auto spec = basic_spec();
  spec.flags = TcpFlags::kAck | TcpFlags::kPsh;
  spec.payload_length = 777;
  spec.with_timestamps = true;
  const auto frame = build_tcp_frame(spec);
  PacketView view;
  ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
  EXPECT_EQ(view.payload_length, 777u);
}

TEST(PacketView, TupleExtraction) {
  const auto frame = build_tcp_frame(basic_spec());
  PacketView view;
  ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
  const FiveTuple t = view.tuple();
  EXPECT_EQ(t.src.v4, Ipv4Address(10, 1, 0, 5));
  EXPECT_EQ(t.dst.v4, Ipv4Address(10, 2, 0, 9));
  EXPECT_EQ(t.src_port, 40000);
  EXPECT_EQ(t.dst_port, 443);
  EXPECT_EQ(t.protocol, kIpProtoTcp);
}

TEST(PacketView, ParsesTcpIpv6) {
  TcpFrameSpec spec;
  spec.src_ip = Ipv6Address::parse("2001:db8::1").value();
  spec.dst_ip = Ipv6Address::parse("2001:db8::2").value();
  spec.src_port = 1234;
  spec.dst_port = 80;
  spec.flags = TcpFlags::kSyn;
  const auto frame = build_tcp_frame(spec);
  PacketView view;
  ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
  EXPECT_FALSE(view.is_v4);
  EXPECT_EQ(view.ip6.src.to_string(), "2001:db8::1");
  EXPECT_FALSE(view.tuple().src.is_v4());
}

TEST(PacketView, ClassifiesNonIp) {
  const auto frame = build_non_ip_frame();
  PacketView view;
  EXPECT_EQ(parse_packet(frame, view), ParseStatus::kNotIp);
}

TEST(PacketView, ClassifiesUdpAsNotTcp) {
  const auto frame = build_udp_frame(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 53, 5353, 64);
  PacketView view;
  EXPECT_EQ(parse_packet(frame, view), ParseStatus::kNotTcp);
}

TEST(PacketView, ClassifiesFragment) {
  auto frame = build_tcp_frame(basic_spec());
  // Set a nonzero fragment offset in the IPv4 header (bytes 6-7 after eth).
  frame[14 + 6] = 0x00;
  frame[14 + 7] = 0x10;  // offset 16
  // Fix the header checksum so only fragmentation differs semantically
  // (parse_packet does not verify checksums, so zeroing is fine).
  PacketView view;
  EXPECT_EQ(parse_packet(frame, view), ParseStatus::kFragment);
}

TEST(PacketView, RejectsTruncatedFrames) {
  const auto frame = build_tcp_frame(basic_spec());
  PacketView view;
  // Every truncation point must fail cleanly, never read OOB.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto status =
        parse_packet(std::span<const std::uint8_t>(frame.data(), len), view);
    EXPECT_NE(status, ParseStatus::kOk) << "truncated to " << len;
  }
}

TEST(PacketView, RejectsLyingIpTotalLength) {
  auto frame = build_tcp_frame(basic_spec());
  // total_length claims more bytes than the frame carries.
  frame[14 + 2] = 0x40;
  frame[14 + 3] = 0x00;  // 16384
  PacketView view;
  EXPECT_EQ(parse_packet(frame, view), ParseStatus::kMalformed);
}

TEST(PacketView, StatusStrings) {
  EXPECT_STREQ(to_string(ParseStatus::kOk), "ok");
  EXPECT_STREQ(to_string(ParseStatus::kMalformed), "malformed");
  EXPECT_STREQ(to_string(ParseStatus::kNotIp), "not-ip");
}

TEST(PacketBuilder, TcpChecksumIsValid) {
  auto spec = basic_spec();
  spec.payload_length = 100;
  spec.with_timestamps = true;
  spec.ts_val = 42;
  const auto frame = build_tcp_frame(spec);
  PacketView view;
  ASSERT_EQ(parse_packet(frame, view), ParseStatus::kOk);
  // Recompute the TCP checksum over the segment as carried; verifying
  // sum (with embedded checksum) must be zero.
  const std::size_t l4 = 14 + view.ip4.header_length();
  const std::size_t tcp_len = view.ip4.total_length - view.ip4.header_length();
  const std::uint16_t verify = tcp_checksum_v4(
      view.ip4.src, view.ip4.dst, std::span<const std::uint8_t>(frame.data() + l4, tcp_len));
  EXPECT_EQ(verify, 0);
}

}  // namespace
}  // namespace ruru
