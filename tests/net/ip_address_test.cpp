#include "net/ip_address.hpp"

#include <gtest/gtest.h>

namespace ruru {
namespace {

TEST(Ipv4Address, ParseValid) {
  const auto a = Ipv4Address::parse("203.0.113.7");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().value(), 0xCB007107u);
  EXPECT_EQ(a.value().to_string(), "203.0.113.7");
}

TEST(Ipv4Address, ParseEdges) {
  EXPECT_TRUE(Ipv4Address::parse("0.0.0.0").ok());
  EXPECT_TRUE(Ipv4Address::parse("255.255.255.255").ok());
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255").value().value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Address::parse("").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").ok());
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x").ok());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.1000").ok());
}

TEST(Ipv4Address, OctetConstructorMatchesParse) {
  EXPECT_EQ(Ipv4Address(10, 1, 2, 3), Ipv4Address::parse("10.1.2.3").value());
}

TEST(Ipv4Address, RoundTripFormatParse) {
  for (const std::uint32_t v : {0u, 1u, 0x0A000001u, 0xC0A80101u, 0xFFFFFFFFu, 0x7F000001u}) {
    const Ipv4Address a(v);
    EXPECT_EQ(Ipv4Address::parse(a.to_string()).value(), a);
  }
}

TEST(Ipv4Address, PrefixContainment) {
  const auto a = Ipv4Address(10, 1, 2, 3);
  EXPECT_TRUE(a.in_prefix(Ipv4Address(10, 0, 0, 0), 8));
  EXPECT_TRUE(a.in_prefix(Ipv4Address(10, 1, 2, 0), 24));
  EXPECT_FALSE(a.in_prefix(Ipv4Address(10, 1, 3, 0), 24));
  EXPECT_TRUE(a.in_prefix(Ipv4Address(0, 0, 0, 0), 0));
  EXPECT_TRUE(a.in_prefix(a, 32));
  EXPECT_FALSE(Ipv4Address(10, 1, 2, 4).in_prefix(a, 32));
}

TEST(Ipv6Address, ParseFull) {
  const auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "2001:db8::1");
}

TEST(Ipv6Address, ParseCompressed) {
  ASSERT_TRUE(Ipv6Address::parse("::1").ok());
  EXPECT_EQ(Ipv6Address::parse("::1").value().to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("fe80::").value().to_string(), "fe80::");
  EXPECT_EQ(Ipv6Address::parse("::").value().to_string(), "::");
  EXPECT_EQ(Ipv6Address::parse("2001:db8::8a2e:370:7334").value().to_string(),
            "2001:db8::8a2e:370:7334");
}

TEST(Ipv6Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse("").ok());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3").ok());
  EXPECT_FALSE(Ipv6Address::parse("::1::2").ok());
  EXPECT_FALSE(Ipv6Address::parse("12345::").ok());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9").ok());
  EXPECT_FALSE(Ipv6Address::parse("g::1").ok());
  // '::' eliding zero groups while all 8 are present is invalid.
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4::5:6:7:8").ok());
}

TEST(Ipv6Address, RoundTrip) {
  for (const char* s : {"::1", "2001:db8::1", "fe80::1:2:3:4", "1:2:3:4:5:6:7:8"}) {
    const auto a = Ipv6Address::parse(s);
    ASSERT_TRUE(a.ok()) << s;
    EXPECT_EQ(Ipv6Address::parse(a.value().to_string()).value(), a.value()) << s;
  }
}

TEST(Ipv6Address, CompressesLongestRun) {
  // Two zero runs: only the longest is compressed.
  const auto a = Ipv6Address::parse("1:0:0:2:0:0:0:3");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "1:0:0:2::3");
}

TEST(IpAddress, FamilyDispatch) {
  const IpAddress v4 = Ipv4Address(1, 2, 3, 4);
  const IpAddress v6 = Ipv6Address::parse("::1").value();
  EXPECT_TRUE(v4.is_v4());
  EXPECT_FALSE(v6.is_v4());
  EXPECT_EQ(v4.to_string(), "1.2.3.4");
  EXPECT_EQ(v6.to_string(), "::1");
  EXPECT_FALSE(v4 == v6);
  EXPECT_TRUE(v4 == IpAddress(Ipv4Address(1, 2, 3, 4)));
}

}  // namespace
}  // namespace ruru
