#include "driver/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ruru {
namespace {

TEST(MpmcRing, BasicPushPop) {
  MpmcRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRing, FullRejectsPush) {
  MpmcRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.try_pop().value(), 0);
  EXPECT_TRUE(ring.try_push(99));  // slot reusable after pop
}

TEST(MpmcRing, WrapAroundManyTimes) {
  MpmcRing<int> ring(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(ring.try_push(round));
    ASSERT_EQ(ring.try_pop().value(), round);
  }
}

TEST(MpmcRing, MovesUniquePtrs) {
  MpmcRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(5)));
  auto p = ring.try_pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(**p, 5);
}

TEST(MpmcRing, MultiProducerMultiConsumerConservesItems) {
  MpmcRing<std::uint64_t> ring(256);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 30'000;

  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer;) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i;
        if (ring.try_push(v)) {
          produced.fetch_add(1, std::memory_order_relaxed);
          ++i;
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        if (auto v = ring.try_pop()) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) &&
                   consumed.load() == kProducers * kPerProducer) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  producers_done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(produced.load(), n);
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // each value delivered exactly once
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRing, PerItemUniquenessUnderContention) {
  MpmcRing<int> ring(64);
  std::atomic<bool> stop{false};
  std::vector<std::uint8_t> seen(100'000, 0);
  std::mutex seen_mu;

  std::thread consumer1([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (auto v = ring.try_pop()) {
        std::lock_guard lock(seen_mu);
        ASSERT_EQ(seen[static_cast<std::size_t>(*v)], 0) << "duplicate " << *v;
        seen[static_cast<std::size_t>(*v)] = 1;
      }
    }
    while (auto v = ring.try_pop()) {
      std::lock_guard lock(seen_mu);
      ASSERT_EQ(seen[static_cast<std::size_t>(*v)], 0);
      seen[static_cast<std::size_t>(*v)] = 1;
    }
  });

  std::thread producer1([&] {
    for (int i = 0; i < 50'000;) {
      if (ring.try_push(i)) ++i;
    }
  });
  std::thread producer2([&] {
    for (int i = 50'000; i < 100'000;) {
      if (ring.try_push(i)) ++i;
    }
  });
  producer1.join();
  producer2.join();
  stop.store(true, std::memory_order_release);
  consumer1.join();

  std::size_t delivered = 0;
  for (const auto b : seen) delivered += b;
  EXPECT_EQ(delivered, seen.size());
}

}  // namespace
}  // namespace ruru
