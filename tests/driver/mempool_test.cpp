#include "driver/mempool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace ruru {
namespace {

TEST(Mempool, AllocUntilExhaustion) {
  Mempool pool(4, 256);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.available(), 4u);
  std::vector<MbufPtr> held;
  for (int i = 0; i < 4; ++i) {
    auto m = pool.alloc();
    ASSERT_NE(m, nullptr);
    held.push_back(std::move(m));
  }
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
}

TEST(Mempool, ReleaseReturnsBuffer) {
  Mempool pool(1, 256);
  {
    auto m = pool.alloc();
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(pool.available(), 0u);
  }  // m destructs -> returns to pool
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_NE(pool.alloc(), nullptr);
}

TEST(Mempool, AssignCopiesAndBoundsChecks) {
  Mempool pool(1, 64);
  auto m = pool.alloc();
  std::vector<std::uint8_t> data(60, 0xAB);
  EXPECT_TRUE(m->assign(data));
  EXPECT_EQ(m->length(), 60u);
  EXPECT_EQ(std::memcmp(m->data(), data.data(), 60), 0);

  std::vector<std::uint8_t> oversize(65, 1);
  EXPECT_FALSE(m->assign(oversize));
  EXPECT_EQ(m->length(), 60u);  // unchanged on failure
}

TEST(Mempool, ReallocResetsMetadata) {
  Mempool pool(1, 64);
  {
    auto m = pool.alloc();
    m->timestamp = Timestamp::from_sec(5);
    m->rss_hash = 0x1234;
    m->queue_id = 3;
    std::vector<std::uint8_t> data(10, 1);
    m->assign(data);
  }
  auto m2 = pool.alloc();
  EXPECT_EQ(m2->timestamp.ns, 0);
  EXPECT_EQ(m2->rss_hash, 0u);
  EXPECT_EQ(m2->queue_id, 0);
  EXPECT_EQ(m2->length(), 0u);
}

TEST(Mempool, BuffersAreDistinct) {
  Mempool pool(8, 128);
  std::vector<MbufPtr> bufs;
  for (int i = 0; i < 8; ++i) bufs.push_back(pool.alloc());
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      EXPECT_NE(bufs[static_cast<std::size_t>(i)]->data(),
                bufs[static_cast<std::size_t>(j)]->data());
    }
  }
}

TEST(Mempool, ConcurrentAllocFreeKeepsAccounting) {
  Mempool pool(64, 64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 20'000; ++i) {
        auto m = pool.alloc();
        if (m) {
          std::uint8_t byte = static_cast<std::uint8_t>(i);
          m->assign(std::span<const std::uint8_t>(&byte, 1));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.available(), 64u);
}

}  // namespace
}  // namespace ruru
