#include "driver/nic.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>

#include "net/packet_builder.hpp"
#include "net/packet_view.hpp"

namespace ruru {
namespace {

std::vector<std::uint8_t> syn_frame(Ipv4Address src, std::uint16_t sp, Ipv4Address dst,
                                    std::uint16_t dp) {
  TcpFrameSpec spec;
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.src_port = sp;
  spec.dst_port = dp;
  spec.flags = TcpFlags::kSyn;
  return build_tcp_frame(spec);
}

class SimNicTest : public ::testing::Test {
 protected:
  SimNicTest() : pool_(1024, 2048) {}
  Mempool pool_;
};

TEST_F(SimNicTest, InjectAndBurstReceive) {
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, pool_);
  const auto frame = syn_frame(Ipv4Address(10, 0, 0, 1), 1000, Ipv4Address(10, 0, 0, 2), 80);
  ASSERT_TRUE(nic.inject(frame, Timestamp::from_ms(5)));
  EXPECT_EQ(nic.stats().rx_packets, 1u);
  EXPECT_EQ(nic.stats().rx_bytes, frame.size());

  std::array<MbufPtr, 32> burst;
  const std::size_t n = nic.rx_burst(0, burst);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(burst[0]->length(), frame.size());
  EXPECT_EQ(burst[0]->timestamp, Timestamp::from_ms(5));
  EXPECT_EQ(burst[0]->queue_id, 0);
  EXPECT_EQ(std::memcmp(burst[0]->data(), frame.data(), frame.size()), 0);
}

TEST_F(SimNicTest, BothDirectionsLandOnSameQueue) {
  NicConfig cfg;
  cfg.num_queues = 8;
  SimNic nic(cfg, pool_);
  // 200 random flows; SYN direction and reply direction must always
  // match queues thanks to the symmetric RSS key.
  for (int i = 0; i < 200; ++i) {
    const Ipv4Address client(10, 1, 0, static_cast<std::uint8_t>(i));
    const Ipv4Address server(10, 2, 0, static_cast<std::uint8_t>(255 - i));
    const auto sp = static_cast<std::uint16_t>(10'000 + i);
    const auto fwd = syn_frame(client, sp, server, 443);
    const auto rev = syn_frame(server, 443, client, sp);
    EXPECT_EQ(nic.hash_frame(fwd), nic.hash_frame(rev)) << "flow " << i;
  }
}

TEST_F(SimNicTest, AsymmetricKeySplitsDirections) {
  NicConfig cfg;
  cfg.num_queues = 8;
  cfg.rss_key = default_rss_key();
  SimNic nic(cfg, pool_);
  int split = 0;
  for (int i = 0; i < 100; ++i) {
    const Ipv4Address client(10, 1, 0, static_cast<std::uint8_t>(i));
    const Ipv4Address server(10, 2, 0, 1);
    const auto sp = static_cast<std::uint16_t>(10'000 + i);
    if (nic.hash_frame(syn_frame(client, sp, server, 443)) % 8 !=
        nic.hash_frame(syn_frame(server, 443, client, sp)) % 8) {
      ++split;
    }
  }
  EXPECT_GT(split, 50);  // most flows split across queues: broken for Ruru
}

TEST_F(SimNicTest, QueueFullDrops) {
  NicConfig cfg;
  cfg.num_queues = 1;
  cfg.queue_depth = 16;
  SimNic nic(cfg, pool_);
  const auto frame = syn_frame(Ipv4Address(1, 1, 1, 1), 1, Ipv4Address(2, 2, 2, 2), 2);
  int accepted = 0;
  for (int i = 0; i < 40; ++i) {
    if (nic.inject(frame, Timestamp{})) ++accepted;
  }
  EXPECT_EQ(accepted, 16);
  EXPECT_EQ(nic.stats().dropped_queue_full, 24u);
  EXPECT_EQ(nic.stats().rx_packets, 16u);
}

TEST_F(SimNicTest, MempoolExhaustionDrops) {
  Mempool tiny(4, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, tiny);
  const auto frame = syn_frame(Ipv4Address(1, 1, 1, 1), 1, Ipv4Address(2, 2, 2, 2), 2);
  for (int i = 0; i < 10; ++i) nic.inject(frame, Timestamp{});
  EXPECT_EQ(nic.stats().rx_packets, 4u);
  EXPECT_EQ(nic.stats().dropped_no_mbuf, 6u);
  // Draining the queue frees mbufs for new packets.
  std::array<MbufPtr, 8> burst;
  EXPECT_EQ(nic.rx_burst(0, burst), 4u);
  for (auto& b : burst) b.reset();
  EXPECT_TRUE(nic.inject(frame, Timestamp{}));
}

TEST_F(SimNicTest, OversizeFrameDropped) {
  Mempool small(8, 64);
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, small);
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address(1, 1, 1, 1);
  spec.dst_ip = Ipv4Address(2, 2, 2, 2);
  spec.payload_length = 100;  // 154-byte frame vs 64-byte buffers
  const auto frame = build_tcp_frame(spec);
  ASSERT_GT(frame.size(), 64u);
  EXPECT_FALSE(nic.inject(frame, Timestamp{}));
  EXPECT_EQ(nic.stats().dropped_oversize, 1u);
}

TEST_F(SimNicTest, NonIpHashesToQueueZero) {
  NicConfig cfg;
  cfg.num_queues = 4;
  SimNic nic(cfg, pool_);
  const auto arp = build_non_ip_frame();
  ASSERT_TRUE(nic.inject(arp, Timestamp{}));
  std::array<MbufPtr, 4> burst;
  EXPECT_EQ(nic.rx_burst(0, burst), 1u);
}

TEST_F(SimNicTest, MalformedIhlHashesToQueueZero) {
  NicConfig cfg;
  cfg.num_queues = 4;
  SimNic nic(cfg, pool_);
  auto frame = syn_frame(Ipv4Address(10, 1, 0, 7), 32000, Ipv4Address(10, 2, 0, 3), 80);
  ASSERT_NE(nic.hash_frame(frame), 0u);  // valid header hashes normally
  // ihl=4 (< 5): the "L4 offset" would sit inside the IP header and the
  // hash would be computed over garbage. Must hash to 0 / queue 0, the
  // same treatment as any other non-TCP frame.
  frame[14] = 0x44;  // version 4, ihl 4
  EXPECT_EQ(nic.hash_frame(frame), 0u);
  ASSERT_TRUE(nic.inject(frame, Timestamp{}));
  std::array<MbufPtr, 4> burst;
  EXPECT_EQ(nic.rx_burst(0, burst), 1u);
}

TEST_F(SimNicTest, InjectBurstMatchesPerFrameInject) {
  NicConfig cfg;
  cfg.num_queues = 4;
  SimNic burst_nic(cfg, pool_);
  Mempool pool2(1024, 2048);
  SimNic frame_nic(cfg, pool2);

  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 64; ++i) {
    frames.push_back(syn_frame(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i)),
                               static_cast<std::uint16_t>(10'000 + i), Ipv4Address(10, 2, 0, 1),
                               443));
  }
  std::vector<RxFrame> burst;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    burst.push_back({frames[i], Timestamp::from_us(static_cast<std::int64_t>(i))});
    ASSERT_TRUE(frame_nic.inject(frames[i], Timestamp::from_us(static_cast<std::int64_t>(i))));
  }
  const auto queued = std::make_unique<bool[]>(frames.size());
  EXPECT_EQ(burst_nic.inject_burst(burst, queued.get()), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) EXPECT_TRUE(queued[i]);
  EXPECT_EQ(burst_nic.stats().rx_packets, frame_nic.stats().rx_packets);
  EXPECT_EQ(burst_nic.stats().rx_bytes, frame_nic.stats().rx_bytes);

  // Same frames land on the same queues with the same metadata.
  for (std::uint16_t q = 0; q < 4; ++q) {
    std::array<MbufPtr, 64> a, b;
    const std::size_t na = burst_nic.rx_burst(q, a);
    const std::size_t nb = frame_nic.rx_burst(q, b);
    ASSERT_EQ(na, nb) << "queue " << q;
    for (std::size_t i = 0; i < na; ++i) {
      EXPECT_EQ(a[i]->rss_hash, b[i]->rss_hash);
      EXPECT_EQ(a[i]->timestamp, b[i]->timestamp);
      EXPECT_EQ(a[i]->length(), b[i]->length());
    }
  }
}

TEST_F(SimNicTest, InjectBurstPartialDropOnFullQueue) {
  NicConfig cfg;
  cfg.num_queues = 1;
  cfg.queue_depth = 16;
  SimNic nic(cfg, pool_);
  const auto frame = syn_frame(Ipv4Address(1, 1, 1, 1), 1, Ipv4Address(2, 2, 2, 2), 2);
  std::vector<RxFrame> burst(40, RxFrame{frame, Timestamp{}});
  const auto queued = std::make_unique<bool[]>(burst.size());
  EXPECT_EQ(nic.inject_burst(burst, queued.get()), 16u);
  EXPECT_EQ(nic.stats().rx_packets, 16u);
  EXPECT_EQ(nic.stats().dropped_queue_full, 24u);
  // The leading 16 queued, the tail dropped — and the flags say which.
  for (std::size_t i = 0; i < 16; ++i) EXPECT_TRUE(queued[i]);
  for (std::size_t i = 16; i < 40; ++i) EXPECT_FALSE(queued[i]);
  // Dropped mbufs returned to the pool: draining lets a new burst in.
  std::array<MbufPtr, 16> rx;
  EXPECT_EQ(nic.rx_burst(0, rx), 16u);
  for (auto& m : rx) m.reset();
  EXPECT_EQ(nic.inject_burst(std::span<const RxFrame>(burst.data(), 4)), 4u);
}

TEST_F(SimNicTest, InjectBurstMempoolExhaustion) {
  Mempool tiny(4, 2048);
  NicConfig cfg;
  cfg.num_queues = 1;
  SimNic nic(cfg, tiny);
  const auto frame = syn_frame(Ipv4Address(1, 1, 1, 1), 1, Ipv4Address(2, 2, 2, 2), 2);
  std::vector<RxFrame> burst(10, RxFrame{frame, Timestamp{}});
  EXPECT_EQ(nic.inject_burst(burst), 4u);
  EXPECT_EQ(nic.stats().dropped_no_mbuf, 6u);
}

TEST_F(SimNicTest, InjectBurstSpreadsAcrossQueues) {
  NicConfig cfg;
  cfg.num_queues = 4;
  SimNic nic(cfg, pool_);
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<RxFrame> burst;
  for (int i = 0; i < 128; ++i) {
    frames.push_back(syn_frame(Ipv4Address(10, 1, static_cast<std::uint8_t>(i), 1),
                               static_cast<std::uint16_t>(20'000 + i),
                               Ipv4Address(10, 2, 0, static_cast<std::uint8_t>(i)), 443));
  }
  for (const auto& f : frames) burst.push_back({f, Timestamp{}});
  EXPECT_EQ(nic.inject_burst(burst), 128u);
  std::size_t total = 0;
  std::size_t busy_queues = 0;
  for (std::uint16_t q = 0; q < 4; ++q) {
    const std::size_t occ = nic.queue_occupancy(q);
    total += occ;
    if (occ > 0) ++busy_queues;
  }
  EXPECT_EQ(total, 128u);
  EXPECT_GT(busy_queues, 1u);  // RSS actually spread the burst
}

TEST_F(SimNicTest, RssHashStoredInMbufMatchesHashFrame) {
  NicConfig cfg;
  cfg.num_queues = 4;
  SimNic nic(cfg, pool_);
  const auto frame = syn_frame(Ipv4Address(10, 1, 0, 7), 32000, Ipv4Address(10, 2, 0, 3), 80);
  const std::uint32_t expected = nic.hash_frame(frame);
  ASSERT_TRUE(nic.inject(frame, Timestamp{}));
  const auto queue = static_cast<std::uint16_t>(expected % 4);
  std::array<MbufPtr, 4> burst;
  ASSERT_EQ(nic.rx_burst(queue, burst), 1u);
  EXPECT_EQ(burst[0]->rss_hash, expected);
  EXPECT_EQ(burst[0]->queue_id, queue);
}

TEST_F(SimNicTest, InjectShardDeliversToItsLane) {
  NicConfig cfg;
  cfg.num_queues = 4;
  SimNic nic(cfg, pool_);
  const auto frame = syn_frame(Ipv4Address(10, 1, 0, 7), 32000, Ipv4Address(10, 2, 0, 3), 80);
  const std::uint16_t q = nic.queue_for(frame);

  const RxFrame rx{frame, Timestamp::from_ms(9)};
  bool queued = false;
  EXPECT_EQ(nic.inject_shard(q, {&rx, 1}, &queued), 1u);
  EXPECT_TRUE(queued);

  std::array<MbufPtr, 4> burst;
  ASSERT_EQ(nic.rx_burst(q, burst), 1u);
  EXPECT_EQ(burst[0]->timestamp, Timestamp::from_ms(9));
  EXPECT_EQ(burst[0]->queue_id, q);
  EXPECT_EQ(nic.lane_stats(q).rx_packets, 1u);
}

TEST_F(SimNicTest, InjectShardDropsMisroutedFrame) {
  NicConfig cfg;
  cfg.num_queues = 4;
  SimNic nic(cfg, pool_);
  const auto frame = syn_frame(Ipv4Address(10, 1, 0, 7), 32000, Ipv4Address(10, 2, 0, 3), 80);
  const std::uint16_t q = nic.queue_for(frame);
  const auto wrong = static_cast<std::uint16_t>((q + 1) % 4);

  const RxFrame rx{frame, Timestamp{}};
  bool queued = true;
  // A frame whose hash steers elsewhere would break the symmetric-RSS
  // worker-affinity guarantee: the lane refuses it.
  EXPECT_EQ(nic.inject_shard(wrong, {&rx, 1}, &queued), 0u);
  EXPECT_FALSE(queued);
  EXPECT_EQ(nic.lane_stats(wrong).dropped_misrouted, 1u);
  std::array<MbufPtr, 4> burst;
  EXPECT_EQ(nic.rx_burst(wrong, burst), 0u);
  EXPECT_EQ(nic.rx_burst(q, burst), 0u);
}

TEST_F(SimNicTest, InjectShardMatchesWholePortStreams) {
  // The same mixed-flow burst through (a) whole-port inject and (b)
  // pre-partitioned lanes must produce identical per-queue streams.
  NicConfig cfg;
  cfg.num_queues = 2;
  SimNic whole(cfg, pool_);
  Mempool pool2(1024, 2048);
  SimNic sharded(cfg, pool2);

  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 16; ++i) {
    frames.push_back(syn_frame(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i)),
                               static_cast<std::uint16_t>(30000 + i), Ipv4Address(10, 2, 0, 1),
                               443));
  }
  std::vector<std::vector<RxFrame>> shards(2);
  std::int64_t t = 0;
  for (const auto& f : frames) {
    const Timestamp ts = Timestamp::from_ns(++t);
    ASSERT_TRUE(whole.inject(f, ts));
    shards[sharded.queue_for(f)].push_back({f, ts});
  }
  for (std::uint16_t q = 0; q < 2; ++q) {
    ASSERT_EQ(sharded.inject_shard(q, shards[q]), shards[q].size());
  }

  for (std::uint16_t q = 0; q < 2; ++q) {
    std::array<MbufPtr, 32> a;
    std::array<MbufPtr, 32> b;
    const std::size_t na = whole.rx_burst(q, a);
    const std::size_t nb = sharded.rx_burst(q, b);
    ASSERT_EQ(na, nb) << "queue " << q;
    for (std::size_t i = 0; i < na; ++i) {
      EXPECT_EQ(a[i]->timestamp, b[i]->timestamp);
      EXPECT_EQ(a[i]->rss_hash, b[i]->rss_hash);
      ASSERT_EQ(a[i]->length(), b[i]->length());
      EXPECT_EQ(std::memcmp(a[i]->data(), b[i]->data(), a[i]->length()), 0);
    }
  }
}

TEST_F(SimNicTest, StatsTotalsMergePortAndLanes) {
  NicConfig cfg;
  cfg.num_queues = 2;
  SimNic nic(cfg, pool_);
  const auto f1 = syn_frame(Ipv4Address(10, 1, 0, 1), 30001, Ipv4Address(10, 2, 0, 1), 443);
  const auto f2 = syn_frame(Ipv4Address(10, 1, 0, 2), 30002, Ipv4Address(10, 2, 0, 1), 443);

  ASSERT_TRUE(nic.inject(f1, Timestamp{}));  // whole-port path
  const RxFrame rx{f2, Timestamp{}};
  ASSERT_EQ(nic.inject_shard(nic.queue_for(f2), {&rx, 1}), 1u);  // lane path

  const NicStats totals = nic.stats_totals();
  EXPECT_EQ(totals.rx_packets, 2u);
  EXPECT_EQ(totals.rx_bytes, f1.size() + f2.size());
}

}  // namespace
}  // namespace ruru
