#include "driver/eal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ruru {
namespace {

TEST(LcoreLauncher, RunsUntilStopped) {
  LcoreLauncher launcher;
  std::atomic<std::uint64_t> iterations{0};
  launcher.launch([&](std::uint32_t, const std::atomic<bool>& stop) {
    while (!stop.load(std::memory_order_acquire)) iterations.fetch_add(1);
  });
  while (iterations.load() < 1000) std::this_thread::yield();
  launcher.stop_and_join();
  EXPECT_GE(iterations.load(), 1000u);
}

TEST(LcoreLauncher, AssignsSequentialIds) {
  LcoreLauncher launcher;
  std::atomic<std::uint32_t> seen_mask{0};
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t id = launcher.launch([&](std::uint32_t lcore, const std::atomic<bool>& stop) {
      seen_mask.fetch_or(1u << lcore);
      while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
    });
    EXPECT_EQ(id, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(launcher.lcore_count(), 4u);
  while (seen_mask.load() != 0b1111u) std::this_thread::yield();
  launcher.stop_and_join();
  EXPECT_EQ(launcher.lcore_count(), 0u);
}

TEST(LcoreLauncher, StopIsIdempotent) {
  LcoreLauncher launcher;
  launcher.launch([](std::uint32_t, const std::atomic<bool>& stop) {
    while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  launcher.stop_and_join();
  launcher.stop_and_join();  // no crash, no hang
}

TEST(LcoreLauncher, DestructorJoins) {
  std::atomic<bool> exited{false};
  {
    LcoreLauncher launcher;
    launcher.launch([&](std::uint32_t, const std::atomic<bool>& stop) {
      while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
      exited = true;
    });
  }  // destructor must stop and join
  EXPECT_TRUE(exited.load());
}

TEST(LcoreLauncher, RelaunchAfterStop) {
  LcoreLauncher launcher;
  std::atomic<int> runs{0};
  launcher.launch([&](std::uint32_t, const std::atomic<bool>&) { runs.fetch_add(1); });
  launcher.stop_and_join();
  launcher.launch([&](std::uint32_t, const std::atomic<bool>&) { runs.fetch_add(1); });
  launcher.stop_and_join();
  EXPECT_EQ(runs.load(), 2);
}

TEST(LcoreLauncher, PinToExistingCpuCounts) {
  // CPU 0 exists on every host this runs on.
  LcoreLauncher launcher;
  launcher.launch([](std::uint32_t, const std::atomic<bool>&) {}, /*pin_cpu=*/0);
  launcher.stop_and_join();
  EXPECT_EQ(launcher.pinned(), 1u);
  EXPECT_EQ(launcher.pin_failures(), 0u);
}

TEST(LcoreLauncher, PinToImpossibleCpuFailsSoft) {
  LcoreLauncher launcher;
  std::atomic<bool> ran{false};
  launcher.launch(
      [&](std::uint32_t, const std::atomic<bool>&) { ran.store(true); },
      /*pin_cpu=*/100000);
  launcher.stop_and_join();
  // Best-effort contract: the failed pin is counted and the body still ran.
  EXPECT_EQ(launcher.pinned(), 0u);
  EXPECT_EQ(launcher.pin_failures(), 1u);
  EXPECT_TRUE(ran.load());
}

TEST(LcoreLauncher, UnpinnedLaunchTouchesNoCounters) {
  LcoreLauncher launcher;
  launcher.launch([](std::uint32_t, const std::atomic<bool>&) {}, kNoCpuPin);
  launcher.stop_and_join();
  EXPECT_EQ(launcher.pinned(), 0u);
  EXPECT_EQ(launcher.pin_failures(), 0u);
}

TEST(LcoreLauncher, PinSelfMirrorsTheSameRules) {
  EXPECT_TRUE(LcoreLauncher::pin_self(0));
  EXPECT_FALSE(LcoreLauncher::pin_self(100000));
  // Restore: leave the gtest main thread free to roam (pin_self(0) above
  // narrowed its mask; widening back is itself a pin to "any" only on
  // systems that support it, so just document the narrowing is harmless
  // for the remaining single-threaded assertions).
}

}  // namespace
}  // namespace ruru
