#include "driver/toeplitz.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/random.hpp"

namespace ruru {
namespace {

// Published verification vectors for the Microsoft default key
// (from the Windows RSS documentation).
TEST(Toeplitz, MicrosoftKnownVectorsIpv4) {
  const RssKey& key = default_rss_key();
  // 66.9.149.187:2794 -> 161.142.100.80:1766 => 0x51ccc178
  EXPECT_EQ(rss_hash_tcp4(key, Ipv4Address(66, 9, 149, 187), Ipv4Address(161, 142, 100, 80),
                          2794, 1766),
            0x51ccc178u);
  // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
  EXPECT_EQ(rss_hash_tcp4(key, Ipv4Address(199, 92, 111, 2), Ipv4Address(65, 69, 140, 83), 14230,
                          4739),
            0xc626b0eau);
  // 24.19.198.95:12898 -> 12.22.207.184:38024 => 0x5c2b394a
  EXPECT_EQ(rss_hash_tcp4(key, Ipv4Address(24, 19, 198, 95), Ipv4Address(12, 22, 207, 184), 12898,
                          38024),
            0x5c2b394au);
}

// The IPv6 rows of the same verification suite.
TEST(Toeplitz, MicrosoftKnownVectorsIpv6) {
  const RssKey& key = default_rss_key();
  const auto src1 = Ipv6Address::parse("3ffe:2501:200:1fff::7").value();
  const auto dst1 = Ipv6Address::parse("3ffe:2501:200:3::1").value();
  EXPECT_EQ(rss_hash_tcp6(key, src1, dst1, 2794, 1766), 0x40207d3du);
  const auto src2 = Ipv6Address::parse("3ffe:501:8::260:97ff:fe40:efab").value();
  const auto dst2 = Ipv6Address::parse("ff02::1").value();
  EXPECT_EQ(rss_hash_tcp6(key, src2, dst2, 14230, 4739), 0xdde51bbfu);
  const auto src3 = Ipv6Address::parse("3ffe:1900:4545:3:200:f8ff:fe21:67cf").value();
  const auto dst3 = Ipv6Address::parse("fe80::200:f8ff:fe21:67cf").value();
  EXPECT_EQ(rss_hash_tcp6(key, src3, dst3, 44251, 38024), 0x02d1feefu);
}

TEST(ToeplitzTable, MatchesMicrosoftVectorsIpv4) {
  const ToeplitzTable table(default_rss_key());
  EXPECT_EQ(table.hash_tcp4(Ipv4Address(66, 9, 149, 187), Ipv4Address(161, 142, 100, 80), 2794,
                            1766),
            0x51ccc178u);
  EXPECT_EQ(table.hash_tcp4(Ipv4Address(199, 92, 111, 2), Ipv4Address(65, 69, 140, 83), 14230,
                            4739),
            0xc626b0eau);
  EXPECT_EQ(table.hash_tcp4(Ipv4Address(24, 19, 198, 95), Ipv4Address(12, 22, 207, 184), 12898,
                            38024),
            0x5c2b394au);
  EXPECT_EQ(table.hash_tcp4(Ipv4Address(38, 27, 205, 30), Ipv4Address(209, 142, 163, 6), 48228,
                            2217),
            0xafc7327fu);
  EXPECT_EQ(table.hash_tcp4(Ipv4Address(153, 39, 163, 191), Ipv4Address(202, 188, 127, 2), 44251,
                            1303),
            0x10e828a2u);
}

TEST(ToeplitzTable, MatchesMicrosoftVectorsIpv6) {
  const ToeplitzTable table(default_rss_key());
  const auto src = Ipv6Address::parse("3ffe:2501:200:1fff::7").value();
  const auto dst = Ipv6Address::parse("3ffe:2501:200:3::1").value();
  EXPECT_EQ(table.hash_tcp6(src, dst, 2794, 1766), 0x40207d3du);
}

// The table hasher must be bit-exact with the scalar oracle for every
// input length and key — randomized cross-check over both standard keys
// plus arbitrary random keys.
TEST(ToeplitzTable, MatchesScalarOnRandomInputs) {
  Pcg32 rng(7);
  std::vector<RssKey> keys = {default_rss_key(), symmetric_rss_key()};
  for (int k = 0; k < 4; ++k) {
    RssKey random_key;
    for (auto& b : random_key) b = static_cast<std::uint8_t>(rng.next_u32());
    keys.push_back(random_key);
  }
  for (const RssKey& key : keys) {
    const ToeplitzTable table(key);
    for (int i = 0; i < 2000; ++i) {
      std::uint8_t input[36];
      for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u32());
      const std::size_t len = (i % 2 == 0) ? 12 : 36;  // TCP/IPv4 and TCP/IPv6 widths
      const std::span<const std::uint8_t> in(input, len);
      EXPECT_EQ(table.hash(in), toeplitz_hash(key, in));
    }
  }
}

TEST(ToeplitzTable, MatchesScalarTcp4Tcp6Helpers) {
  const ToeplitzTable table(symmetric_rss_key());
  Pcg32 rng(8);
  for (int i = 0; i < 500; ++i) {
    const Ipv4Address a(rng.next_u32()), b(rng.next_u32());
    const auto sp = static_cast<std::uint16_t>(rng.next_u32());
    const auto dp = static_cast<std::uint16_t>(rng.next_u32());
    EXPECT_EQ(table.hash_tcp4(a, b, sp, dp), rss_hash_tcp4(symmetric_rss_key(), a, b, sp, dp));
  }
  const auto s6 = Ipv6Address::parse("2001:db8::1").value();
  const auto d6 = Ipv6Address::parse("2001:db8:ffff::42").value();
  EXPECT_EQ(table.hash_tcp6(s6, d6, 5000, 443),
            rss_hash_tcp6(symmetric_rss_key(), s6, d6, 5000, 443));
}

TEST(ToeplitzTable, SymmetricUnderEndpointSwap) {
  const ToeplitzTable table(symmetric_rss_key());
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const Ipv4Address a(rng.next_u32()), b(rng.next_u32());
    const auto sp = static_cast<std::uint16_t>(rng.next_u32());
    const auto dp = static_cast<std::uint16_t>(rng.next_u32());
    EXPECT_EQ(table.hash_tcp4(a, b, sp, dp), table.hash_tcp4(b, a, dp, sp));
  }
  const auto s6 = Ipv6Address::parse("2001:db8::1").value();
  const auto d6 = Ipv6Address::parse("2001:db8:ffff::42").value();
  EXPECT_EQ(table.hash_tcp6(s6, d6, 5000, 443), table.hash_tcp6(d6, s6, 443, 5000));
}

TEST(ToeplitzTable, TupleDispatchMatchesScalar) {
  const ToeplitzTable table(symmetric_rss_key());
  FiveTuple t;
  t.src = Ipv4Address(10, 1, 0, 1);
  t.dst = Ipv4Address(10, 2, 0, 1);
  t.src_port = 1234;
  t.dst_port = 443;
  EXPECT_EQ(table.hash(t), rss_hash(symmetric_rss_key(), t));
}

TEST(Toeplitz, DefaultKeyIsNotSymmetric) {
  const RssKey& key = default_rss_key();
  const auto fwd =
      rss_hash_tcp4(key, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 40000, 443);
  const auto rev =
      rss_hash_tcp4(key, Ipv4Address(10, 0, 0, 2), Ipv4Address(10, 0, 0, 1), 443, 40000);
  EXPECT_NE(fwd, rev);  // the whole reason Ruru needs the symmetric key
}

TEST(Toeplitz, SymmetricKeyMatchesBothDirectionsIpv4) {
  const RssKey& key = symmetric_rss_key();
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Ipv4Address a(rng.next_u32()), b(rng.next_u32());
    const auto sp = static_cast<std::uint16_t>(rng.next_u32());
    const auto dp = static_cast<std::uint16_t>(rng.next_u32());
    EXPECT_EQ(rss_hash_tcp4(key, a, b, sp, dp), rss_hash_tcp4(key, b, a, dp, sp));
  }
}

TEST(Toeplitz, SymmetricKeyMatchesBothDirectionsIpv6) {
  const RssKey& key = symmetric_rss_key();
  const auto a = Ipv6Address::parse("2001:db8::1").value();
  const auto b = Ipv6Address::parse("2001:db8:ffff::42").value();
  EXPECT_EQ(rss_hash_tcp6(key, a, b, 5000, 443), rss_hash_tcp6(key, b, a, 443, 5000));
}

TEST(Toeplitz, TupleDispatchMatchesExplicit) {
  const RssKey& key = symmetric_rss_key();
  FiveTuple t;
  t.src = Ipv4Address(10, 1, 0, 1);
  t.dst = Ipv4Address(10, 2, 0, 1);
  t.src_port = 1234;
  t.dst_port = 443;
  EXPECT_EQ(rss_hash(key, t),
            rss_hash_tcp4(key, t.src.v4, t.dst.v4, t.src_port, t.dst_port));
}

TEST(Toeplitz, QueueSpreadIsRoughlyUniform) {
  const RssKey& key = symmetric_rss_key();
  Pcg32 rng(4);
  constexpr int kQueues = 8;
  std::map<std::uint32_t, int> counts;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) {
    const auto h = rss_hash_tcp4(key, Ipv4Address(rng.next_u32()), Ipv4Address(rng.next_u32()),
                                 static_cast<std::uint16_t>(rng.next_u32()),
                                 static_cast<std::uint16_t>(rng.next_u32()));
    ++counts[h % kQueues];
  }
  for (int q = 0; q < kQueues; ++q) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::uint32_t>(q)]),
                static_cast<double>(n) / kQueues, n / kQueues * 0.1)
        << "queue " << q;
  }
}

TEST(Toeplitz, ZeroInputHashesToZero) {
  std::uint8_t zeros[12] = {};
  EXPECT_EQ(toeplitz_hash(default_rss_key(), std::span<const std::uint8_t>(zeros, 12)), 0u);
}

TEST(Toeplitz, HashDependsOnEveryField) {
  const RssKey& key = symmetric_rss_key();
  const auto base =
      rss_hash_tcp4(key, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000, 2000);
  EXPECT_NE(base, rss_hash_tcp4(key, Ipv4Address(10, 0, 0, 3), Ipv4Address(10, 0, 0, 2), 1000, 2000));
  EXPECT_NE(base, rss_hash_tcp4(key, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 4), 1000, 2000));
  EXPECT_NE(base, rss_hash_tcp4(key, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1001, 2000));
  EXPECT_NE(base, rss_hash_tcp4(key, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000, 2001));
}

}  // namespace
}  // namespace ruru
