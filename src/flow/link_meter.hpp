#pragma once
// Link-load meter: windowed packet/byte rates for the tapped link.
//
// The paper's §1 motivation contrasts Ruru with SNMP's five-minute load
// averages; operators still want the load view next to the latency view
// (the Grafana dashboards show both).  This meter is fed from the RX
// path (single producer) and closes fixed windows as packet timestamps
// advance — all in capture time, so replays are deterministic.

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace ruru {

struct LinkWindow {
  Timestamp start;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  Duration width;

  [[nodiscard]] double mbps() const {
    const double secs = width.to_sec();
    return secs > 0 ? static_cast<double>(bytes) * 8.0 / secs / 1e6 : 0.0;
  }
  [[nodiscard]] double pps() const {
    const double secs = width.to_sec();
    return secs > 0 ? static_cast<double>(packets) / secs : 0.0;
  }
};

class LinkMeter {
 public:
  explicit LinkMeter(Duration window = Duration::from_sec(1.0)) : window_(window) {}

  /// One packet observed at `t`. Single producer; timestamps
  /// non-decreasing (the tap sees packets in order).
  void on_packet(Timestamp t, std::size_t bytes);

  /// Windows closed so far (not including the one in progress).
  [[nodiscard]] const std::vector<LinkWindow>& closed() const { return closed_; }

  /// Force-close the in-progress window (end of run).
  void flush();

  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  Duration window_;
  bool open_ = false;
  Timestamp current_start_{};
  std::uint64_t current_packets_ = 0;
  std::uint64_t current_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::vector<LinkWindow> closed_;
};

}  // namespace ruru
