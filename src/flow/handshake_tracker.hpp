#pragma once
// The Figure-1 measurement logic: SYN / SYN-ACK / ACK timestamp capture.
//
// Per the paper, exactly three timestamps are recorded per flow: the
// *first* SYN, the SYN-ACK *following* it, and the *first* ACK.
// Retransmissions are therefore deliberately not re-stamped: a repeated
// SYN keeps the original timestamp (so a lost-then-answered SYN inflates
// the measured external latency by the RTO — a real property of the
// deployed system this reproduction preserves), and duplicate SYN-ACKs /
// later ACKs are ignored via sequence-number validation.

#include <cstdint>
#include <optional>

#include "flow/flow_table.hpp"
#include "flow/latency_sample.hpp"
#include "net/packet_view.hpp"

namespace ruru {

/// Single-writer cells (the owning worker thread): readable live by the
/// metrics snapshot thread without tearing.
struct TrackerStats {
  StatCell syn_seen = 0;
  StatCell syn_retransmissions = 0;
  StatCell synack_seen = 0;
  StatCell synack_unmatched = 0;  ///< no awaiting SYN (e.g. pre-capture flow)
  StatCell ack_matched = 0;
  StatCell rst_seen = 0;
  StatCell samples_emitted = 0;
  StatCell table_drops = 0;  ///< SYN not inserted (table pressure)
};

class HandshakeTracker {
 public:
  explicit HandshakeTracker(std::size_t table_capacity,
                            Duration stale_after = Duration::from_sec(30.0))
      : table_(table_capacity, stale_after) {}

  /// Feed one parsed TCP packet observed at `rx_time`. Returns a sample
  /// when this packet is the first ACK completing a tracked handshake.
  std::optional<LatencySample> process(const PacketView& pkt, Timestamp rx_time,
                                       std::uint32_t rss_hash, std::uint16_t queue_id);

  /// Read-only: is `key` a live tracked handshake right now? Used by the
  /// worker fast path to skip full parsing of data segments on flows the
  /// tracker has no interest in; mutates no table state or stats.
  [[nodiscard]] bool tracking(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) const {
    return table_.contains(key, rss_hash, now);
  }

  [[nodiscard]] const TrackerStats& stats() const { return stats_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }

 private:
  FlowTable table_;
  TrackerStats stats_;
};

}  // namespace ruru
