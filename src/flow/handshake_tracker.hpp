#pragma once
// The Figure-1 measurement logic: SYN / SYN-ACK / ACK timestamp capture.
//
// Per the paper, exactly three timestamps are recorded per flow: the
// *first* SYN, the SYN-ACK *following* it, and the *first* ACK.
// Retransmissions are therefore deliberately not re-stamped: a repeated
// SYN keeps the original timestamp (so a lost-then-answered SYN inflates
// the measured external latency by the RTO — a real property of the
// deployed system this reproduction preserves), and duplicate SYN-ACKs /
// later ACKs are ignored via sequence-number validation.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "flow/flow_table.hpp"
#include "flow/latency_sample.hpp"
#include "net/packet_view.hpp"

namespace ruru {

/// Single-writer cells (the owning worker thread): readable live by the
/// metrics snapshot thread without tearing.
struct TrackerStats {
  StatCell syn_seen = 0;
  StatCell syn_retransmissions = 0;
  StatCell synack_seen = 0;
  StatCell synack_unmatched = 0;  ///< no awaiting SYN (e.g. pre-capture flow)
  StatCell ack_matched = 0;
  StatCell rst_seen = 0;
  StatCell samples_emitted = 0;
  StatCell table_drops = 0;  ///< SYN not inserted (table pressure)
};

/// Single-writer cells for the in-flow RTT kernel.
struct InflowStats {
  StatCell ts_matches = 0;         ///< TSecr hits against a noted TSval
  StatCell ts_ring_evictions = 0;  ///< live note overwritten by a full ring
  StatCell ts_wraps = 0;           ///< TSval wrap/reset detected while noting
  StatCell inflow_samples = 0;     ///< kInflow samples emitted (post rate limit)
  StatCell one_sided_samples = 0;  ///< kOneSided samples emitted
  StatCell rate_limited = 0;       ///< matches suppressed by min_interval
};

/// Continuous in-flow RTT configuration (off by default: handshake-only
/// tracking, bit-identical to the pre-feature pipeline).
struct InflowConfig {
  bool enabled = false;
  /// Per-flow, per-direction timestamp ring entries (rounded up to a
  /// power of two by the table).
  std::size_t ring_entries = 8;
  /// Emit at most one in-flow sample per flow direction per interval —
  /// "first match per RTT window".  Zero emits every match.
  Duration min_interval = Duration::from_ms(10);
};

/// One parsed packet queued for batched tracking: everything process()
/// needs, staged so a whole RX burst resolves with table prefetch
/// pipelined one packet ahead.
struct TrackedPacket {
  PacketView view;
  Timestamp rx_time;
  std::uint32_t rss_hash = 0;
};

class HandshakeTracker {
 public:
  explicit HandshakeTracker(std::size_t table_capacity,
                            Duration stale_after = Duration::from_sec(30.0),
                            std::size_t probe_window = FlowTable::kDefaultProbeWindow,
                            ProbeKernel kernel = ProbeKernel::kAuto, InflowConfig inflow = {})
      : table_(table_capacity, stale_after, probe_window, kernel,
               inflow.enabled ? inflow.ring_entries : 0),
        inflow_(inflow) {}

  /// Feed one parsed TCP packet observed at `rx_time`. Returns a sample
  /// when this packet is the first ACK completing a tracked handshake.
  /// Handshake-only view: in-flow samples are dropped — use the vector
  /// overload when the in-flow kernel is enabled.
  std::optional<LatencySample> process(const PacketView& pkt, Timestamp rx_time,
                                       std::uint32_t rss_hash, std::uint16_t queue_id);

  /// Full-parse entry point: handshake tracking plus (when enabled) the
  /// in-flow timestamp kernel.  Appends zero or more samples to `out`.
  void process(const PacketView& pkt, Timestamp rx_time, std::uint32_t rss_hash,
               std::uint16_t queue_id, std::vector<LatencySample>& out);

  /// --- fast-path in-flow kernel (worker pass 2) --------------------
  /// The worker probes established-flow data segments without a full
  /// parse: inflow_lookup() classifies the flow, then (for established
  /// flows) inflow_established() runs the timestamp kernel on the
  /// fixed-offset option probe.  Split in two so the caller can extract
  /// options between the lookup and the kernel, behind the ring
  /// prefetch the lookup issues.
  enum class InflowVerdict : std::uint8_t {
    kUntracked,    ///< no live slot: skip the packet entirely
    kNeedParse,    ///< tracked but mid-handshake: full parse required
    kEstablished,  ///< slot valid, touched, rings prefetched
  };
  struct InflowLookup {
    InflowVerdict verdict = InflowVerdict::kUntracked;
    FlowTable::Slot slot = FlowTable::kNoSlot;
  };
  [[nodiscard]] InflowLookup inflow_lookup(const FlowKey& key, std::uint32_t rss_hash,
                                           Timestamp now);

  /// Batched, mutation-free classification of fast-path candidate lanes:
  /// all group prefetches issue up front, then the probes resolve over
  /// warm lines (FlowTable::probe_batch).  The verdicts are provisional —
  /// resolve each lane with inflow_resolve() (or the plain mutating
  /// lookup after any intra-burst table mutation).
  void inflow_lookup_batch(const std::uint32_t* idx, std::size_t n_idx, const FlowKey* keys,
                           const std::uint32_t* rss, const std::int64_t* ts_ns,
                           FlowTable::FlowClassify* out) const {
    table_.probe_batch(idx, n_idx, keys, rss, ts_ns, out);
  }

  /// Turns a still-valid provisional classification into the exact
  /// inflow_lookup() outcome, replaying the stats the mutating lookup
  /// would have counted.  When the classify walk saw a stale verified
  /// match (`c.stale_seen`) the real lookup runs instead — it reclaims
  /// and counts exactly as the scalar loop would — and `reprobed`
  /// reports whether that lookup actually mutated the table (in which
  /// case later provisional verdicts in the burst are void).
  [[nodiscard]] InflowLookup inflow_resolve(const FlowTable::FlowClassify& c, const FlowKey& key,
                                            std::uint32_t rss_hash, Timestamp now,
                                            bool& reprobed);
  /// Runs the timestamp kernel for an established slot returned by
  /// inflow_lookup().  `forward` is the packet's FlowKey::forward.
  void inflow_established(FlowTable::Slot slot, bool forward, const FastTsProbe& ts,
                          Timestamp rx_time, std::uint32_t rss_hash, std::uint16_t queue_id,
                          std::vector<LatencySample>& out);

  /// Batched process(): resolves `pkts` in order, appending every
  /// emitted sample to `out` (not cleared).  The next packet's flow-
  /// table group is prefetched while the current one is processed —
  /// same lookahead pipelining as Enricher::enrich_batch — so the probe
  /// loads are warm by the time they issue.  Emitted samples and stats
  /// are identical to calling process() per packet.
  void process_burst(std::span<const TrackedPacket> pkts, std::uint16_t queue_id,
                     std::vector<LatencySample>& out);

  /// Read-only: is `key` a live tracked handshake right now? Used by the
  /// worker fast path to skip full parsing of data segments on flows the
  /// tracker has no interest in; mutates no table state or stats.
  [[nodiscard]] bool tracking(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) const {
    return table_.contains(key, rss_hash, now);
  }

  /// Warm the flow-table group `rss_hash` probes into — issue ahead of
  /// the process()/tracking() call that will need it.
  void prefetch(std::uint32_t rss_hash) const { table_.prefetch(rss_hash); }
  /// Deeper warm-up for batched candidate lanes (FlowTable::prefetch_probe).
  void prefetch_probe(std::uint32_t rss_hash) const { table_.prefetch_probe(rss_hash); }

  /// Advance the table's incremental staleness sweep (a few groups per
  /// RX burst). Returns entries reclaimed.
  std::size_t sweep(Timestamp now, std::size_t max_groups) {
    return table_.sweep(now, max_groups);
  }

  /// Install before the tracker runs (not thread-safe afterwards).
  void set_table_obs(FlowTableObs obs) { table_.set_obs(obs); }

  [[nodiscard]] const TrackerStats& stats() const { return stats_; }
  [[nodiscard]] const InflowStats& inflow_stats() const { return inflow_stats_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }
  [[nodiscard]] bool inflow_enabled() const { return inflow_.enabled; }

 private:
  /// What process_core() did with the packet, for the in-flow layer on
  /// top: which slot (if any) the packet resolved to and whether that
  /// slot is still live afterwards.
  struct CoreOutcome {
    FlowTable::Slot slot = FlowTable::kNoSlot;
    bool erased = false;
    std::optional<LatencySample> sample;
  };
  CoreOutcome process_core(const PacketView& pkt, Timestamp rx_time, std::uint32_t rss_hash,
                           std::uint16_t queue_id);

  /// The shared timestamp kernel: match the packet's TSecr against the
  /// opposite direction's ring, then note its TSval (eliciting segments
  /// only: payload, SYN or FIN — pure ACKs draw no timely echo and would
  /// just flush the ring).
  void inflow_segment(FlowTable::Slot slot, bool forward, bool has_payload, bool syn, bool fin,
                      std::uint32_t ts_val, std::uint32_t ts_ecr, Timestamp rx_time,
                      std::uint32_t rss_hash, std::uint16_t queue_id,
                      std::vector<LatencySample>& out);

  /// Rate-limited sample emission for the in-flow kinds.
  void emit_inflow(FlowTable::Slot slot, unsigned dir, SampleKind kind, Timestamp departed,
                   Timestamp rx_time, std::uint32_t rss_hash, std::uint16_t queue_id,
                   std::vector<LatencySample>& out);

  FlowTable table_;
  InflowConfig inflow_;
  TrackerStats stats_;
  InflowStats inflow_stats_;
};

}  // namespace ruru
