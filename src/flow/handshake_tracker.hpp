#pragma once
// The Figure-1 measurement logic: SYN / SYN-ACK / ACK timestamp capture.
//
// Per the paper, exactly three timestamps are recorded per flow: the
// *first* SYN, the SYN-ACK *following* it, and the *first* ACK.
// Retransmissions are therefore deliberately not re-stamped: a repeated
// SYN keeps the original timestamp (so a lost-then-answered SYN inflates
// the measured external latency by the RTO — a real property of the
// deployed system this reproduction preserves), and duplicate SYN-ACKs /
// later ACKs are ignored via sequence-number validation.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "flow/flow_table.hpp"
#include "flow/latency_sample.hpp"
#include "net/packet_view.hpp"

namespace ruru {

/// Single-writer cells (the owning worker thread): readable live by the
/// metrics snapshot thread without tearing.
struct TrackerStats {
  StatCell syn_seen = 0;
  StatCell syn_retransmissions = 0;
  StatCell synack_seen = 0;
  StatCell synack_unmatched = 0;  ///< no awaiting SYN (e.g. pre-capture flow)
  StatCell ack_matched = 0;
  StatCell rst_seen = 0;
  StatCell samples_emitted = 0;
  StatCell table_drops = 0;  ///< SYN not inserted (table pressure)
};

/// One parsed packet queued for batched tracking: everything process()
/// needs, staged so a whole RX burst resolves with table prefetch
/// pipelined one packet ahead.
struct TrackedPacket {
  PacketView view;
  Timestamp rx_time;
  std::uint32_t rss_hash = 0;
};

class HandshakeTracker {
 public:
  explicit HandshakeTracker(std::size_t table_capacity,
                            Duration stale_after = Duration::from_sec(30.0),
                            std::size_t probe_window = FlowTable::kDefaultProbeWindow,
                            ProbeKernel kernel = ProbeKernel::kAuto)
      : table_(table_capacity, stale_after, probe_window, kernel) {}

  /// Feed one parsed TCP packet observed at `rx_time`. Returns a sample
  /// when this packet is the first ACK completing a tracked handshake.
  std::optional<LatencySample> process(const PacketView& pkt, Timestamp rx_time,
                                       std::uint32_t rss_hash, std::uint16_t queue_id);

  /// Batched process(): resolves `pkts` in order, appending every
  /// emitted sample to `out` (not cleared).  The next packet's flow-
  /// table group is prefetched while the current one is processed —
  /// same lookahead pipelining as Enricher::enrich_batch — so the probe
  /// loads are warm by the time they issue.  Emitted samples and stats
  /// are identical to calling process() per packet.
  void process_burst(std::span<const TrackedPacket> pkts, std::uint16_t queue_id,
                     std::vector<LatencySample>& out);

  /// Read-only: is `key` a live tracked handshake right now? Used by the
  /// worker fast path to skip full parsing of data segments on flows the
  /// tracker has no interest in; mutates no table state or stats.
  [[nodiscard]] bool tracking(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) const {
    return table_.contains(key, rss_hash, now);
  }

  /// Warm the flow-table group `rss_hash` probes into — issue ahead of
  /// the process()/tracking() call that will need it.
  void prefetch(std::uint32_t rss_hash) const { table_.prefetch(rss_hash); }

  /// Advance the table's incremental staleness sweep (a few groups per
  /// RX burst). Returns entries reclaimed.
  std::size_t sweep(Timestamp now, std::size_t max_groups) {
    return table_.sweep(now, max_groups);
  }

  /// Install before the tracker runs (not thread-safe afterwards).
  void set_table_obs(FlowTableObs obs) { table_.set_obs(obs); }

  [[nodiscard]] const TrackerStats& stats() const { return stats_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }

 private:
  FlowTable table_;
  TrackerStats stats_;
};

}  // namespace ruru
