#pragma once
// Shared TCP-timestamp matching core (pping's algorithm, ring-ified).
//
// RFC 7323 echoes: every timestamped segment carries the sender's clock
// (TSval) and the newest TSval it has seen from the peer (TSecr).  Noting
// (TSval, departure time) per direction and matching the opposite
// direction's TSecr against those notes yields one RTT sample per TSval
// without touching payload — pping's passive measurement.  This header
// holds the two kernels both consumers share:
//
//  * the offline baseline (src/baseline/pping.cpp) — growable per-flow
//    state, the bit-exact test oracle;
//  * the worker fast path — fixed power-of-two rings embedded in the
//    flow table's cold SoA arrays, zero allocations.
//
// A ring is two parallel lanes (structure-of-arrays): a `vals` lane of
// 4-byte TSvals that every scan walks, and a `times` lane of 8-byte
// departure stamps touched only on a candidate hit or a note write.  An
// 8-entry ring's scan therefore reads 32 bytes — half a cache line, and
// one line covers both directions of a flow — instead of the 128 bytes
// an array-of-structs layout would stream per lookup.  Liveness lives in
// the times lane (`kTsNever` = empty or consumed), so the vals lane is
// never cleared: a stale value there cannot match without its stamp.
//
// Rules the kernels encode (and the fuzz oracle relies on):
//
//  * one sample per TSval: a matched note is consumed (sentinel), so a
//    burst of segments echoing the same TSval yields exactly one RTT;
//  * retransmission does not rejuvenate a note: re-noting an already
//    noted TSval is refused, so the eventual match reports the *first*
//    departure (an inflated-but-honest RTT, never a deflated one);
//  * a full ring overwrites the oldest write position (bounded memory
//    beats a complete sample set at line rate); the overwrite of a
//    still-live note is counted as an eviction;
//  * TSval wraparound (or a peer clock reset) is detected by signed
//    32-bit comparison against the newest noted TSval and counted, not
//    special-cased: stale pre-wrap notes simply age out of the ring.

#include <cstdint>
#include <span>

namespace ruru {

/// Empty/consumed sentinel for a ring's times lane (and "no match"
/// return of ts_match).  INT64_MIN cannot collide with a capture
/// timestamp.
inline constexpr std::int64_t kTsNever = INT64_MIN;

/// Non-owning view of one direction's ring: parallel TSval/departure
/// lanes of the same power-of-two length.
struct TsRingRef {
  std::span<std::uint32_t> vals;
  std::span<std::int64_t> times;
};

/// Per-direction note state carried next to a ring.
struct TsDirState {
  std::uint32_t head = 0;        ///< next write index (mod ring size)
  std::uint32_t last_tsval = 0;  ///< newest TSval noted (wrap detection)
  bool have_last = false;
};

struct TsNoteResult {
  bool noted = false;    ///< false: duplicate TSval (retransmission)
  bool evicted = false;  ///< overwrote a still-live note
  bool wrapped = false;  ///< TSval went backwards mod 2^32 boundary
};

/// Notes (tsval, now) into `ring` unless a live entry for `tsval` is
/// already present (retransmission rule).  Lane length must be a power
/// of two.
inline TsNoteResult ts_note(TsRingRef ring, TsDirState& st, std::uint32_t tsval,
                            std::int64_t now_ns) {
  TsNoteResult r;
  const std::size_t n = ring.vals.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ring.vals[i] == tsval && ring.times[i] != kTsNever) return r;  // retransmission
  }
  if (st.have_last) {
    // Newer iff the signed serial-number distance is positive (RFC 1982
    // style); a wrap is "newer but numerically smaller".
    const auto delta = static_cast<std::int32_t>(tsval - st.last_tsval);
    if (delta > 0) {
      if (tsval < st.last_tsval) r.wrapped = true;
      st.last_tsval = tsval;
    }
  } else {
    st.last_tsval = tsval;
    st.have_last = true;
  }
  const std::size_t idx = st.head & (n - 1);
  if (ring.times[idx] != kTsNever) r.evicted = true;
  ring.times[idx] = now_ns;
  ring.vals[idx] = tsval;
  ++st.head;
  r.noted = true;
  return r;
}

/// Looks up `tsecr` among the opposite direction's notes.  On a hit the
/// note is consumed and its departure time returned; kTsNever on miss.
/// The scan walks only the vals lane (a handful of 4-byte compares on
/// one cache line); the times lane is read just to confirm liveness on
/// an equality hit.
inline std::int64_t ts_match(TsRingRef ring, std::uint32_t tsecr) {
  const std::size_t n = ring.vals.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ring.vals[i] == tsecr && ring.times[i] != kTsNever) {
      const std::int64_t departed = ring.times[i];
      ring.times[i] = kTsNever;  // one sample per TSval
      return departed;
    }
  }
  return kTsNever;
}

/// Resets a ring to all-empty (slot reuse in the flow table).  Only the
/// times lane carries liveness, so the vals lane is left as-is.
inline void ts_clear(TsRingRef ring) {
  for (std::int64_t& t : ring.times) t = kTsNever;
}

}  // namespace ruru
