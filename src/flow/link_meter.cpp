#include "flow/link_meter.hpp"

namespace ruru {

void LinkMeter::on_packet(Timestamp t, std::size_t bytes) {
  if (!open_) {
    current_start_ = Timestamp{(t.ns / window_.ns) * window_.ns};
    open_ = true;
  }
  while (t.ns >= current_start_.ns + window_.ns) {
    closed_.push_back(LinkWindow{current_start_, current_packets_, current_bytes_, window_});
    current_start_ = current_start_ + window_;
    current_packets_ = 0;
    current_bytes_ = 0;
  }
  ++current_packets_;
  current_bytes_ += bytes;
  ++total_packets_;
  total_bytes_ += bytes;
}

void LinkMeter::flush() {
  if (!open_) return;
  closed_.push_back(LinkWindow{current_start_, current_packets_, current_bytes_, window_});
  current_packets_ = 0;
  current_bytes_ = 0;
  open_ = false;
}

}  // namespace ruru
