#pragma once
// The measurement Ruru produces: one record per completed TCP handshake.
//
// Figure 1 of the paper: the tap records the SYN, the following SYN-ACK
// and the first ACK.  `external` (SYN -> SYN-ACK at the tap) covers
// tap -> server -> tap; `internal` (SYN-ACK -> ACK) covers
// tap -> client -> tap; their sum is the end-to-end RTT between the two
// endpoints.

#include <cstdint>

#include "net/ip_address.hpp"
#include "util/time.hpp"

namespace ruru {

/// Upper bound on samples per bus message (worker accumulators flush at
/// or below it; the batch codec rejects counts above it).
inline constexpr std::size_t kMaxLatencyBatch = 1024;

/// What a LatencySample measures.
enum class SampleKind : std::uint8_t {
  /// SYN / SYN-ACK / ACK triple — all three timestamps are distinct
  /// events; external() and internal() are both meaningful.
  kHandshake = 0,
  /// Continuous in-flow RTT from a TCP-timestamp echo (TSval noted at
  /// departure, TSecr matched on the reply).  Only one half of the path
  /// is measured; see `toward_client`.  The measured interval is carried
  /// in that half (the other two timestamps coincide), so external() /
  /// internal() / total() stay meaningful without new fields.
  kInflow = 1,
  /// One direction of the flow was never seen (asymmetric tap): the
  /// sample is the delta between consecutive TSval departures of the
  /// visible sender — pacing, not an RTT, but the only latency signal
  /// such a tap gets.
  kOneSided = 2,
};

struct LatencySample {
  IpAddress client;  ///< handshake initiator (sent the SYN)
  IpAddress server;  ///< responder
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;

  Timestamp syn_time;
  Timestamp synack_time;
  Timestamp ack_time;

  std::uint32_t rss_hash = 0;
  std::uint16_t queue_id = 0;
  SampleKind kind = SampleKind::kHandshake;
  /// In-flow kinds only: true when the measured half is tap <-> client
  /// (the note left toward the client and its echo came back), false for
  /// tap <-> server.  Handshake samples leave it false.
  bool toward_client = false;
  /// Flight-recorder id (obs::trace_id_for of rss_hash); 0 = untraced.
  /// In-process metadata only — never serialized, so the wire format
  /// and the emitted sample bytes are identical with tracing on or off.
  std::uint32_t trace_id = 0;

  /// tap -> server -> tap half (paper: "external latency").
  [[nodiscard]] Duration external() const { return synack_time - syn_time; }
  /// tap -> client -> tap half (paper: "internal latency").
  [[nodiscard]] Duration internal() const { return ack_time - synack_time; }
  /// Full end-to-end RTT between client and server.
  [[nodiscard]] Duration total() const { return ack_time - syn_time; }
};

}  // namespace ruru
