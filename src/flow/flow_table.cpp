#include "flow/flow_table.hpp"

#include <bit>
#include <cstring>

namespace ruru {

std::uint64_t FlowTable::fold_ip(const IpAddress& a) {
  if (a.is_v4()) return a.v4.value();
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::memcpy(&hi, a.v6.bytes().data(), 8);
  std::memcpy(&lo, a.v6.bytes().data() + 8, 8);
  return hi ^ (lo * 0x100000001b3ULL);
}

FlowTable::FlowTable(std::size_t capacity, Duration stale_after, std::size_t probe_window,
                     ProbeKernel kernel, std::size_t ts_ring_entries)
    : stale_after_(stale_after), simd_(resolve_simd(kernel)) {
  std::size_t cap = kFlowGroupWidth;  // at least one full group
  while (cap < capacity) cap <<= 1;
  ctrl_.assign(cap, kCtrlEmpty);
  hot_.resize(cap);
  last_seen_.assign(cap, kDeadNs);  // dead sentinel; see find()'s fast path
  cold_.resize(cap);
  slot_mask_ = cap - 1;
  group_mask_ = cap / kFlowGroupWidth - 1;

  if (ts_ring_entries != 0) {
    std::size_t entries = 2;  // ts_note's index math needs a power of two
    while (entries < ts_ring_entries) entries <<= 1;
    ts_entries_ = entries;
    ts_vals_.assign(cap * 2 * entries, 0);
    ts_times_.assign(cap * 2 * entries, kTsNever);
    ts_state_.resize(cap);
  }

  std::size_t groups = (probe_window + kFlowGroupWidth - 1) / kFlowGroupWidth;
  if (groups == 0) groups = 1;
  if (groups > group_mask_ + 1) groups = group_mask_ + 1;
  window_groups_ = groups;
}

// The one probe core.  Semantics shared by every caller:
//
//  * only slots whose control tag matches are verified against the hot
//    row (rss_hash first, then the canonical tuple); a tag hit that
//    fails verification is a fingerprint false positive, counted in
//    tag_mismatches (except in kContains, which is stat-free);
//  * a verified match that went stale is a dead handshake: find and
//    insert reclaim the slot (tombstone) and keep probing, contains
//    skips it silently — the mutation-free variant of the same rule;
//  * kInsert remembers the first empty-or-tombstone slot in probe order
//    as the insertion point;
//  * every mode stops at the first group containing an empty byte:
//    erase() and the sweep only ever create tombstones, and inserts
//    claim the first reusable slot in probe order, so no live key can
//    sit past an empty byte in its probe sequence.
template <FlowTable::ProbeMode Mode, bool SkipHome>
FlowTable::ProbeResult FlowTable::probe(const FiveTuple& key, std::uint32_t rss_hash,
                                        Timestamp now) {
  const std::uint64_t h = mix(rss_hash);
  ProbeResult r;

  // Home-slot short-circuit: the exact slot `h` maps to is where the
  // no-collision insert put this key, so a clean live hit resolves with
  // one control-byte liveness test and one hot row — no tag computation,
  // no group compare (the tag exists to filter *scans*; a single probed
  // slot is cheaper to verify directly).  Anything else (occupied by
  // another key, stale entry) falls through to the full probe, which
  // repeats the slot inside its first group and applies the usual
  // reclamation/stat accounting exactly once.  find() inlines this same
  // check at its call sites (flow_table.hpp) and comes in with
  // SkipHome, so the failed check is not repeated.
  if constexpr (!SkipHome) {
    const std::size_t home = home_slot(h);
    if ((ctrl_[home] & 0x80u) == 0) {  // live slot
      const HotSlot& hs = hot_[home];
      if (hs.rss_hash == rss_hash && hs.key == key &&
          now.ns - last_seen_[home] <= stale_after_.ns) {
        r.match = static_cast<Slot>(home);
        r.groups = 1;
        return r;
      }
    } else if constexpr (Mode == ProbeMode::kInsert) {
      // Prefer the exact home slot when it is reusable (over an earlier
      // tombstone elsewhere in the group): the next lookup of this key
      // then takes the short-circuit.  The slot is in the first probed
      // group, so the claim keeps the probe-stop invariant intact.
      r.reuse = static_cast<Slot>(home);
    }
  }

  const std::uint8_t tag = tuple_tag(key);
  std::size_t group = home_group(h);
  for (std::size_t gi = 0; gi < window_groups_; ++gi, group = (group + 1) & group_mask_) {
    ++r.groups;
    const std::uint8_t* ctrl = ctrl_.data() + group * kFlowGroupWidth;
    if constexpr (Mode == ProbeMode::kInsert) {
      if (r.reuse == kNoSlot) {
        const GroupMask reusable = group_reusable(simd_, ctrl);
        if (reusable != 0) {
          r.reuse = static_cast<Slot>(group * kFlowGroupWidth +
                                      static_cast<std::size_t>(std::countr_zero(reusable)));
        }
      }
    }
    GroupMask match = group_match(simd_, ctrl, tag);
    while (match != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(match));
      match &= match - 1;
      const auto slot = static_cast<Slot>(group * kFlowGroupWidth + bit);
      const HotSlot& hs = hot_[slot];
      if (hs.rss_hash != rss_hash || !(hs.key == key)) {
        if constexpr (Mode == ProbeMode::kClassify) {
          ++r.mismatches;  // replayed later via apply_*_stats, not counted here
        } else if constexpr (Mode != ProbeMode::kContains) {
          ++stats_.tag_mismatches;
        }
        continue;
      }
      if (now.ns - last_seen_[slot] > stale_after_.ns) {
        if constexpr (Mode == ProbeMode::kContains) continue;  // dead; report a miss
        if constexpr (Mode == ProbeMode::kClassify) {
          // find() would reclaim here: flag the divergence so the caller
          // re-runs the mutating lookup instead of trusting this walk.
          r.stale_seen = true;
          continue;
        } else {
          reclaim(slot);
          if constexpr (Mode == ProbeMode::kInsert) {
            if (r.reuse == kNoSlot) r.reuse = slot;
          }
          continue;
        }
      }
      r.match = slot;
      return r;
    }
    if (group_empty(simd_, ctrl) != 0) break;
  }
  return r;
}

FlowTable::Slot FlowTable::find_slow(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) {
  const ProbeResult r = probe<ProbeMode::kFind, /*SkipHome=*/true>(key.canonical, rss_hash, now);
  obs_.probe_groups.record(static_cast<std::int64_t>(r.groups));
  if (r.match == kNoSlot) return kNoSlot;
  ++stats_.hits;
  return r.match;
}

bool FlowTable::contains(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) const {
  // kContains performs no mutation — no reclamation, no stats, no
  // histogram records (enforced by the if constexpr branches in the
  // core) — so probing through a const_cast is sound and the method
  // stays const for read-only callers.
  auto& self = const_cast<FlowTable&>(*this);
  return self.probe<ProbeMode::kContains>(key.canonical, rss_hash, now).match != kNoSlot;
}

FlowTable::FlowClassify FlowTable::classify(const FlowKey& key, std::uint32_t rss_hash,
                                            Timestamp now) const {
  FlowClassify c;
  // Same inline home-slot check as find(), gated on the control byte:
  // an erased or swept slot carries the kDeadNs last_seen sentinel (so
  // the staleness compare would reject it anyway), but reading the
  // 1-byte ctrl first skips the hot row and last_seen loads entirely —
  // on a skip-heavy mix the home slot is usually dead, and its hot line
  // (one full line per slot) is the probe's most expensive touch.  The
  // ctrl line is shared with the group walk below, so a dead home costs
  // nothing extra.
  const std::size_t home = home_slot(mix(rss_hash));
  if ((ctrl_[home] & 0x80u) == 0) [[likely]] {
    const HotSlot& hs = hot_[home];
    if (hs.rss_hash == rss_hash && hs.key == key.canonical &&
        now.ns - last_seen_[home] <= stale_after_.ns) [[likely]] {
      c.slot = static_cast<Slot>(home);
      c.kind = ClassifyKind::kLive;
      c.home_hit = true;
      c.groups = 1;
      return c;
    }
  }
  // kClassify mutates nothing (same const_cast soundness argument as
  // contains()); SkipHome matches find_slow(), so `groups` counts what
  // find_slow() would record.
  auto& self = const_cast<FlowTable&>(*this);
  const ProbeResult r =
      self.probe<ProbeMode::kClassify, /*SkipHome=*/true>(key.canonical, rss_hash, now);
  c.groups = r.groups;
  c.tag_mismatches = r.mismatches;
  c.stale_seen = r.stale_seen;
  if (r.match != kNoSlot) {
    c.slot = r.match;
    c.kind = ClassifyKind::kLive;
  } else if (r.stale_seen) {
    c.kind = ClassifyKind::kStale;
  }
  return c;
}

void FlowTable::probe_batch(const std::uint32_t* idx, std::size_t n_idx, const FlowKey* keys,
                            const std::uint32_t* rss, const std::int64_t* ts_ns,
                            FlowClassify* out) const {
  // Phase 1: fan every lane's group prefetch out before any probe
  // resolves — the misses overlap instead of serializing one per packet.
  for (std::size_t k = 0; k < n_idx; ++k) prefetch_probe(rss[idx[k]]);
  // Phase 2: resolve back-to-back over warm lines.  Live lanes prefetch
  // what their resolve stage reads next: the cold handshake row (state
  // check) and, when the in-flow kernel is on, the timestamp rings.
  for (std::size_t k = 0; k < n_idx; ++k) {
    const std::uint32_t i = idx[k];
    out[i] = classify(keys[i], rss[i], Timestamp{ts_ns[i]});
    if (out[i].kind == ClassifyKind::kLive) {
      __builtin_prefetch(cold_.data() + out[i].slot, 1 /*write*/, 3);
      if (ts_entries_ != 0) {
        ts_prefetch(out[i].slot);
        // The batch path also warms the times lanes (both directions):
        // a match — every echoed segment, i.e. every lane that emits a
        // sample — reads ts_times to form the delta, and the in-flow
        // note writes it.  The scalar loop leaves these to the store
        // buffer / demand miss (pre-PR behaviour, kept for the oracle);
        // here the lines arrive a full stage early.
        const std::size_t off = static_cast<std::size_t>(out[i].slot) * 2 * ts_entries_;
        __builtin_prefetch(ts_times_.data() + off, 1 /*write*/, 3);
        __builtin_prefetch(ts_times_.data() + off + ts_entries_, 1 /*write*/, 3);
      }
    }
  }
}

FlowTable::Slot FlowTable::find_or_insert(const FlowKey& key, std::uint32_t rss_hash,
                                          Timestamp now, bool& inserted) {
  inserted = false;
  const ProbeResult r = probe<ProbeMode::kInsert>(key.canonical, rss_hash, now);
  obs_.probe_groups.record(static_cast<std::int64_t>(r.groups));
  if (r.match != kNoSlot) {
    ++stats_.hits;
    return r.match;
  }
  Slot slot = r.reuse;
  if (slot == kNoSlot) {
    // No empty or tombstone in the window: the incremental sweep has
    // not reached these groups yet, so reclaim their stale entries now.
    // Preserves the pre-SIMD guarantee that an insert succeeds iff the
    // window holds a free *or stale* slot.
    slot = reclaim_window(rss_hash, now);
    if (slot == kNoSlot) {
      ++stats_.insert_failures;
      return kNoSlot;
    }
  }
  ctrl_[slot] = tuple_tag(key.canonical);
  hot_[slot].key = key.canonical;
  hot_[slot].rss_hash = rss_hash;
  last_seen_[slot] = now.ns;
  cold_[slot] = FlowData{};
  if (ts_entries_ != 0) {
    ts_state_[slot] = TsFlowState{};
    ts_clear(ts_ring(slot, 0));
    ts_clear(ts_ring(slot, 1));
  }
  ++live_;
  ++stats_.inserts;
  inserted = true;
  return slot;
}

FlowTable::Slot FlowTable::reclaim_window(std::uint32_t rss_hash, Timestamp now) {
  std::size_t group = home_group(mix(rss_hash));
  Slot first = kNoSlot;
  for (std::size_t gi = 0; gi < window_groups_; ++gi, group = (group + 1) & group_mask_) {
    GroupMask full = group_full(simd_, ctrl_.data() + group * kFlowGroupWidth);
    while (full != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(full));
      full &= full - 1;
      const auto slot = static_cast<Slot>(group * kFlowGroupWidth + bit);
      if (now.ns - last_seen_[slot] > stale_after_.ns) {
        reclaim(slot);
        if (first == kNoSlot) first = slot;
      }
    }
  }
  return first;
}

void FlowTable::erase(Slot slot) {
  if (slot == kNoSlot || (ctrl_[slot] & 0x80u) != 0) return;  // double-erase is harmless
  ctrl_[slot] = kCtrlTombstone;
  last_seen_[slot] = kDeadNs;
  --live_;
  ++stats_.erases;
}

std::size_t FlowTable::sweep(Timestamp now, std::size_t max_groups) {
  const std::size_t total_groups = group_mask_ + 1;
  if (max_groups > total_groups) max_groups = total_groups;
  std::size_t reclaimed = 0;
  for (std::size_t gi = 0; gi < max_groups; ++gi) {
    const std::size_t group = sweep_cursor_;
    sweep_cursor_ = (sweep_cursor_ + 1) & group_mask_;
    GroupMask full = group_full(simd_, ctrl_.data() + group * kFlowGroupWidth);
    obs_.group_occupancy.record(std::popcount(full));
    while (full != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(full));
      full &= full - 1;
      const auto slot = static_cast<Slot>(group * kFlowGroupWidth + bit);
      if (now.ns - last_seen_[slot] > stale_after_.ns) {
        reclaim(slot);
        ++stats_.sweep_evictions;
        ++reclaimed;
      }
    }
  }
  return reclaimed;
}

}  // namespace ruru
