#include "flow/flow_table.hpp"

namespace ruru {

FlowTable::FlowTable(std::size_t capacity, Duration stale_after) : stale_after_(stale_after) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  slots_.resize(cap);
  mask_ = cap - 1;
}

FlowEntry* FlowTable::find(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) {
  const std::size_t start = slot_for(rss_hash);
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    FlowEntry& e = slots_[(start + i) & mask_];
    if (!e.occupied) continue;  // probing continues across tombstoned gaps
    if (e.rss_hash == rss_hash && e.canonical == key.canonical) {
      // A stale entry is a dead handshake; do not resurrect it — and
      // release its slot now so it stops occupying the probe window and
      // inflating size().
      if (now - e.last_seen > stale_after_) {
        e.occupied = false;
        --live_;
        ++stats_.evictions_stale;
        continue;
      }
      ++stats_.hits;
      return &e;
    }
  }
  return nullptr;
}

bool FlowTable::contains(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) const {
  const std::size_t start = slot_for(rss_hash);
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    const FlowEntry& e = slots_[(start + i) & mask_];
    if (!e.occupied) continue;
    if (e.rss_hash == rss_hash && e.canonical == key.canonical) {
      // A stale match is a dead handshake find() would evict; keep
      // probing like find() does rather than reporting it live.
      if (now - e.last_seen > stale_after_) continue;
      return true;
    }
  }
  return false;
}

FlowEntry* FlowTable::find_or_insert(const FlowKey& key, std::uint32_t rss_hash, Timestamp now,
                                     bool& inserted) {
  inserted = false;
  const std::size_t start = slot_for(rss_hash);
  FlowEntry* free_slot = nullptr;
  FlowEntry* stale_slot = nullptr;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    FlowEntry& e = slots_[(start + i) & mask_];
    if (!e.occupied) {
      if (free_slot == nullptr) free_slot = &e;
      continue;
    }
    const bool stale = now - e.last_seen > stale_after_;
    if (e.rss_hash == rss_hash && e.canonical == key.canonical) {
      if (!stale) {
        ++stats_.hits;
        return &e;
      }
      // The same flow's dead handshake: release the slot immediately
      // instead of leaving it live-counted (an earlier free slot would
      // otherwise win and strand it).
      e.occupied = false;
      --live_;
      ++stats_.evictions_stale;
      if (free_slot == nullptr) free_slot = &e;
      continue;
    }
    if (stale && stale_slot == nullptr) stale_slot = &e;
  }

  FlowEntry* slot = free_slot != nullptr ? free_slot : stale_slot;
  if (slot == nullptr) {
    ++stats_.insert_failures;
    return nullptr;
  }
  if (slot == stale_slot) {
    ++stats_.evictions_stale;
    --live_;  // the stale occupant is discarded
  }
  *slot = FlowEntry{};
  slot->canonical = key.canonical;
  slot->rss_hash = rss_hash;
  slot->occupied = true;
  slot->last_seen = now;
  ++live_;
  ++stats_.inserts;
  inserted = true;
  return slot;
}

void FlowTable::erase(FlowEntry* entry) {
  if (entry == nullptr || !entry->occupied) return;
  entry->occupied = false;
  --live_;
  ++stats_.erases;
}

}  // namespace ruru
