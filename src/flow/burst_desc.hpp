#pragma once
// SoA burst descriptor for the vectorized worker poll loop.
//
// One rx_burst's worth of per-packet scratch, split into lanes the way
// the pipeline stages consume them: the ingest stage fills the frame /
// rss / timestamp lanes, the batched pre-parse fills the probe lanes,
// the branchless classify stage writes one class byte per lane (scanned
// 16 at a time by the group_masked_eq kernels — hence the padded, 64-
// byte-aligned flags array), and the batched flow-table probe fills the
// classification lane for candidate packets.  Everything is fixed-size:
// the steady state allocates nothing.

#include <array>
#include <cstdint>
#include <span>

#include "flow/flow_table.hpp"
#include "net/five_tuple.hpp"
#include "net/packet_view.hpp"

namespace ruru {

struct BurstDesc {
  /// Lane count; the worker's rx burst size must match.
  static constexpr std::size_t kLanes = 32;
  static_assert(kLanes % kFlowGroupWidth == 0, "flags lane is scanned in whole groups");

  /// Per-lane class, written branchlessly from the candidate mask.
  enum Class : std::uint8_t {
    kFullParse = 0,  ///< parsed in the pre-parse stage (pending view/status)
    kCandidate = 1,  ///< pure data segment: batched table probe decides it
  };

  // --- ingest lanes (every lane 0..n-1 valid) --------------------------
  std::array<std::span<const std::uint8_t>, kLanes> frame;
  alignas(64) std::array<std::uint32_t, kLanes> rss;
  alignas(64) std::array<std::int64_t, kLanes> ts_ns;

  // --- pre-parse lanes -------------------------------------------------
  std::array<FastProbe, kLanes> probe;
  /// TCP flags byte per lane, 0xFF for ineligible lanes and tail padding
  /// (0xFF fails the masked ACK-only compare, so dead lanes can never
  /// classify as candidates).
  alignas(64) std::array<std::uint8_t, kLanes> flags;
  alignas(64) std::array<std::uint8_t, kLanes> cls;

  // --- candidate lanes (valid where cls[i] == kCandidate) --------------
  alignas(64) std::array<std::uint16_t, kLanes> l4_offset;
  alignas(64) std::array<std::uint8_t, kLanes> v4;
  std::array<FlowKey, kLanes> key;
  std::array<FlowTable::FlowClassify, kLanes> verdict;
  /// Candidate lane indices in arrival order (dense, for probe_batch).
  alignas(64) std::array<std::uint32_t, kLanes> cand_idx;
};

}  // namespace ruru
