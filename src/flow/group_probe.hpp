#pragma once
// Control-byte group probing for the two-level flow table.
//
// The flow table keeps one control byte per slot: a 7-bit fingerprint of
// the slot's hash (a "tag", 0x00..0x7F) when the slot is full, or one of
// two sentinel values with the high bit set.  A keyed probe scans 16
// control bytes at a time — one SSE2/NEON register — and only touches
// the wide per-slot verification data for slots whose tag matches, so
// the common miss costs a couple of vector compares instead of a walk
// over 16 eighty-byte records.
//
// Every kernel has a scalar twin with identical semantics.  The scalar
// versions are not a fallback afterthought: the table can be forced onto
// them at runtime (ProbeKernel::kScalar) and the test suite runs every
// workload through both, asserting bit-identical masks and behaviour.

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#define RURU_FLOW_GROUP_SIMD 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#define RURU_FLOW_GROUP_SIMD 1
#else
#define RURU_FLOW_GROUP_SIMD 0
#endif

namespace ruru {

/// Slots probed per vector op; the flow table's groups are aligned to it.
inline constexpr std::size_t kFlowGroupWidth = 16;

/// Control sentinels.  Both have the high bit set, so they can never
/// equal a tag (tags are 7-bit) and a single signed compare separates
/// "full" from "not full".
inline constexpr std::uint8_t kCtrlEmpty = 0x80;      ///< never occupied since construction
inline constexpr std::uint8_t kCtrlTombstone = 0xFE;  ///< erased or reclaimed slot

/// One bit per group position (bit i == control byte i).
using GroupMask = std::uint32_t;

/// Which SIMD path (if any) this build carries.
inline constexpr bool kHaveGroupSimd = RURU_FLOW_GROUP_SIMD != 0;

// --- scalar kernels (always compiled, always tested) -------------------

/// Positions whose control byte equals `tag` exactly.
[[nodiscard]] inline GroupMask group_match_scalar(const std::uint8_t* group, std::uint8_t tag) {
  GroupMask m = 0;
  for (std::size_t i = 0; i < kFlowGroupWidth; ++i) {
    m |= static_cast<GroupMask>(group[i] == tag) << i;
  }
  return m;
}

/// Positions holding kCtrlEmpty.
[[nodiscard]] inline GroupMask group_empty_scalar(const std::uint8_t* group) {
  return group_match_scalar(group, kCtrlEmpty);
}

/// Positions holding a tag (full slots): high bit clear.
[[nodiscard]] inline GroupMask group_full_scalar(const std::uint8_t* group) {
  GroupMask m = 0;
  for (std::size_t i = 0; i < kFlowGroupWidth; ++i) {
    m |= static_cast<GroupMask>((group[i] & 0x80u) == 0) << i;
  }
  return m;
}

/// Positions an insert may claim: empty or tombstone (high bit set).
[[nodiscard]] inline GroupMask group_reusable_scalar(const std::uint8_t* group) {
  return static_cast<GroupMask>(~group_full_scalar(group)) & 0xFFFFu;
}

/// Positions where `(byte & mask) == value` — the generic byte-lane
/// classifier behind the worker's branchless candidate partition (the
/// TCP flags lane masked to SYN|FIN|RST|ACK and compared against a lone
/// ACK).  Lives here because it is the same shape as the tag probes: 16
/// bytes in, one bit per lane out, scalar/SIMD twins tested against each
/// other.
[[nodiscard]] inline GroupMask group_masked_eq_scalar(const std::uint8_t* group,
                                                      std::uint8_t mask, std::uint8_t value) {
  GroupMask m = 0;
  for (std::size_t i = 0; i < kFlowGroupWidth; ++i) {
    m |= static_cast<GroupMask>((group[i] & mask) == value) << i;
  }
  return m;
}

// --- SIMD kernels ------------------------------------------------------

#if defined(__SSE2__)

[[nodiscard]] inline GroupMask group_match_simd(const std::uint8_t* group, std::uint8_t tag) {
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  const __m128i t = _mm_set1_epi8(static_cast<char>(tag));
  return static_cast<GroupMask>(_mm_movemask_epi8(_mm_cmpeq_epi8(g, t)));
}

[[nodiscard]] inline GroupMask group_empty_simd(const std::uint8_t* group) {
  return group_match_simd(group, kCtrlEmpty);
}

[[nodiscard]] inline GroupMask group_full_simd(const std::uint8_t* group) {
  // movemask collects the high bit of every byte: set == empty/tombstone.
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  return static_cast<GroupMask>(~_mm_movemask_epi8(g)) & 0xFFFFu;
}

[[nodiscard]] inline GroupMask group_reusable_simd(const std::uint8_t* group) {
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  return static_cast<GroupMask>(_mm_movemask_epi8(g));
}

[[nodiscard]] inline GroupMask group_masked_eq_simd(const std::uint8_t* group, std::uint8_t mask,
                                                    std::uint8_t value) {
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  const __m128i m = _mm_and_si128(g, _mm_set1_epi8(static_cast<char>(mask)));
  const __m128i v = _mm_set1_epi8(static_cast<char>(value));
  return static_cast<GroupMask>(_mm_movemask_epi8(_mm_cmpeq_epi8(m, v)));
}

#elif defined(__ARM_NEON)

namespace detail {
/// Compresses a byte-wise 0x00/0xFF compare result to one bit per lane
/// via the shrn nibble trick (each output nibble mirrors one input byte).
[[nodiscard]] inline GroupMask neon_mask(uint8x16_t eq) {
  const uint8x8_t nibbles = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  std::uint64_t packed = vget_lane_u64(vreinterpret_u64_u8(nibbles), 0);
  packed &= 0x1111111111111111ULL;  // one bit per nibble
  GroupMask m = 0;
  while (packed != 0) {
    const int bit = __builtin_ctzll(packed);
    m |= GroupMask{1} << (bit >> 2);
    packed &= packed - 1;
  }
  return m;
}
}  // namespace detail

[[nodiscard]] inline GroupMask group_match_simd(const std::uint8_t* group, std::uint8_t tag) {
  const uint8x16_t g = vld1q_u8(group);
  return detail::neon_mask(vceqq_u8(g, vdupq_n_u8(tag)));
}

[[nodiscard]] inline GroupMask group_empty_simd(const std::uint8_t* group) {
  return group_match_simd(group, kCtrlEmpty);
}

[[nodiscard]] inline GroupMask group_full_simd(const std::uint8_t* group) {
  const uint8x16_t g = vld1q_u8(group);
  return detail::neon_mask(vcltq_u8(g, vdupq_n_u8(0x80)));
}

[[nodiscard]] inline GroupMask group_reusable_simd(const std::uint8_t* group) {
  const uint8x16_t g = vld1q_u8(group);
  return detail::neon_mask(vcgeq_u8(g, vdupq_n_u8(0x80)));
}

[[nodiscard]] inline GroupMask group_masked_eq_simd(const std::uint8_t* group, std::uint8_t mask,
                                                    std::uint8_t value) {
  const uint8x16_t g = vandq_u8(vld1q_u8(group), vdupq_n_u8(mask));
  return detail::neon_mask(vceqq_u8(g, vdupq_n_u8(value)));
}

#endif  // SIMD flavours

// --- dispatch ----------------------------------------------------------

/// Which kernel a table instance runs on.  kAuto picks SIMD when the
/// build has it; kScalar forces the reference path (tests, benches,
/// odd targets); kSimd asks for SIMD and falls back to scalar when the
/// build has none.
enum class ProbeKernel : std::uint8_t { kAuto, kSimd, kScalar };

[[nodiscard]] inline bool resolve_simd(ProbeKernel k) {
  if (!kHaveGroupSimd) return false;
  return k != ProbeKernel::kScalar;
}

[[nodiscard]] inline GroupMask group_match(bool simd, const std::uint8_t* group,
                                           std::uint8_t tag) {
#if RURU_FLOW_GROUP_SIMD
  if (simd) return group_match_simd(group, tag);
#else
  (void)simd;
#endif
  return group_match_scalar(group, tag);
}

[[nodiscard]] inline GroupMask group_empty(bool simd, const std::uint8_t* group) {
#if RURU_FLOW_GROUP_SIMD
  if (simd) return group_empty_simd(group);
#else
  (void)simd;
#endif
  return group_empty_scalar(group);
}

[[nodiscard]] inline GroupMask group_full(bool simd, const std::uint8_t* group) {
#if RURU_FLOW_GROUP_SIMD
  if (simd) return group_full_simd(group);
#else
  (void)simd;
#endif
  return group_full_scalar(group);
}

[[nodiscard]] inline GroupMask group_reusable(bool simd, const std::uint8_t* group) {
#if RURU_FLOW_GROUP_SIMD
  if (simd) return group_reusable_simd(group);
#else
  (void)simd;
#endif
  return group_reusable_scalar(group);
}

[[nodiscard]] inline GroupMask group_masked_eq(bool simd, const std::uint8_t* group,
                                               std::uint8_t mask, std::uint8_t value) {
#if RURU_FLOW_GROUP_SIMD
  if (simd) return group_masked_eq_simd(group, mask, value);
#else
  (void)simd;
#endif
  return group_masked_eq_scalar(group, mask, value);
}

}  // namespace ruru
