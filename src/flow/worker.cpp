#include "flow/worker.hpp"

#include <algorithm>

#include "obs/tsc_clock.hpp"

namespace ruru {

QueueWorker::QueueWorker(SimNic& nic, std::uint16_t queue_id, std::size_t flow_table_capacity,
                         SampleSink sink, Duration stale_after, std::size_t probe_window,
                         InflowConfig inflow)
    : nic_(nic),
      queue_id_(queue_id),
      tracker_(flow_table_capacity, stale_after, probe_window, ProbeKernel::kAuto, inflow),
      sink_(std::move(sink)),
      inflow_(inflow.enabled),
      simd_(resolve_simd(ProbeKernel::kAuto)) {
  items_.reserve(kBurst);
  // A packet can yield up to two samples with the in-flow kernel on
  // (handshake completion + its echo match): size the staging buffer so
  // the steady state never re-allocates.
  samples_.reserve(2 * kBurst);
}

void QueueWorker::set_batch_sink(BatchSink sink, std::size_t batch_size, Duration linger) {
  batch_sink_ = std::move(sink);
  batch_size_ = std::clamp<std::size_t>(batch_size, 1, kMaxLatencyBatch);
  batch_linger_ = linger;
  batch_.reserve(batch_size_);
}

void QueueWorker::flush_batch() {
  if (!batch_sink_ || batch_.empty()) return;
  batch_sink_(std::span<const LatencySample>(batch_.data(), batch_.size()));
  ++stats_.batch_flushes;
  stats_.batched_samples += batch_.size();
  obs_.batch_fill.record(static_cast<std::int64_t>(batch_.size()));
  batch_.clear();  // keeps capacity: the accumulator never re-allocates
}

void QueueWorker::deliver_sample(const LatencySample& sample) {
  // sample.ack_time is the capture timestamp of the completing packet,
  // so batch-full and linger triggers fire exactly as they did when the
  // sample was delivered inside the per-packet loop.
  if (batch_sink_) {
    if (batch_.empty()) batch_oldest_ = sample.ack_time;
    batch_.push_back(sample);
    if (batch_.size() >= batch_size_ ||
        (batch_linger_.ns > 0 && sample.ack_time - batch_oldest_ >= batch_linger_)) {
      flush_batch();
    }
  }
  if (sink_) sink_(sample);
}

void QueueWorker::flush_items() {
  if (items_.empty()) return;
  samples_.clear();  // keeps capacity
  tracker_.process_burst(items_, queue_id_, samples_);
  items_.clear();
  deliver_staged();
}

void QueueWorker::deliver_staged() {
  const bool tracing = trace_.attached();
  for (LatencySample& s : samples_) {
    if (tracing) {
      // Re-derive rather than thread the id through the tracker: the
      // sampler is a pure function of the RSS hash, so the tracker and
      // the sample's wire format stay untouched.
      s.trace_id = obs::trace_id_for(s.rss_hash, trace_sample_n_);
      if (s.trace_id != 0) {
        trace_.instant(obs::TraceStage::kFlow, s.trace_id, obs::trace_now_ns(), 0,
                       queue_id_);
      }
    }
    if (s.kind == SampleKind::kInflow) {
      obs_.inflow_rtt.record(s.total().ns);
    } else if (s.kind == SampleKind::kOneSided) {
      // A departure delta is sender pacing, not a round trip: its own
      // histogram keeps flow.inflow_rtt_ns unimodal on asymmetric taps.
      obs_.one_sided_delta.record(s.total().ns);
    }
    deliver_sample(s);
  }
}

std::size_t QueueWorker::poll_once() {
  return loop_kernel_ == LoopKernel::kScalar ? poll_once_scalar() : poll_once_vector();
}

std::size_t QueueWorker::poll_once_scalar() {
  std::array<MbufPtr, kBurst> burst;
  const std::size_t n = nic_.rx_burst(queue_id_, burst);
  ++stats_.polls;
  if (n == 0) {
    ++stats_.empty_polls;
    flush_batch();  // end-of-burst idle: don't sit on a partial batch
    return 0;
  }
  obs_.poll_batch.record(static_cast<std::int64_t>(n));

  // Flight recorder: `tracing` is loop-invariant and false on the
  // untraced path, so the per-packet cost there is one predicted
  // branch on a register value.
  const bool tracing = trace_.attached();
  std::int64_t poll_start_ns = 0;
  if (tracing) poll_start_ns = obs::trace_now_ns();

  // Pass 1: classify every mbuf and warm the flow-table group each one
  // will probe.  Slow-path packets are parsed here (parsing reads only
  // the frame, never the table, so order does not matter yet).
  for (std::size_t i = 0; i < n; ++i) {
    // Hide a later mbuf's descriptor + header-bytes miss behind the
    // current packet's classification (the classic rx-loop prefetch).
    if (prefetch_depth_ != 0 && i + prefetch_depth_ < n) {
      const Mbuf* next = burst[i + prefetch_depth_].get();
      __builtin_prefetch(next, 0 /*read*/, 3);
      __builtin_prefetch(next->data(), 0 /*read*/, 3);
    }
    const Mbuf& m = *burst[i];
    ++stats_.packets;
    stats_.bytes += m.length();
    if (tracing && m.trace_id != 0) {
      // The nic span is synthesized here from the ingest stamp: it
      // covers NIC queueing, i.e. inject -> worker pickup.
      const std::int64_t now_ns = obs::trace_now_ns();
      trace_.span(obs::TraceStage::kNic, m.trace_id, m.ingest_ns, now_ns - m.ingest_ns,
                  static_cast<std::uint32_t>(m.length()), queue_id_);
    }

    Pending& p = pending_[i];
    p.mbuf = static_cast<std::uint32_t>(i);
    if (fast_path_) {
      // Pre-parse probe: a pure data segment (ACK, no SYN/FIN/RST) of a
      // flow the tracker is not following can contribute nothing — no
      // timestamp, no state transition — so it is a skip *candidate*.
      // The skip decision itself waits for pass 2: the handshake it
      // might belong to could complete earlier in this very burst.
      const FastProbe probe = probe_tcp_fast(m.bytes());
      constexpr std::uint8_t kSlowFlags = TcpFlags::kSyn | TcpFlags::kFin | TcpFlags::kRst;
      if (probe.eligible && (probe.tcp_flags & kSlowFlags) == 0 &&
          (probe.tcp_flags & TcpFlags::kAck) != 0) {
        p.kind = Pending::Kind::kCandidate;
        p.key = FlowKey::from(probe.tuple);
        p.l4_offset = probe.l4_offset;
        p.probe_v4 = probe.is_v4;
        tracker_.prefetch(m.rss_hash);
        continue;
      }
    }
    p.kind = Pending::Kind::kParsed;
    p.status = parse_packet(m.bytes(), p.view);
    ++stats_.parse_status[static_cast<std::size_t>(p.status)];
    if (p.status == ParseStatus::kOk) tracker_.prefetch(m.rss_hash);
  }

  // Pass 2: resolve in arrival order.  Accumulated parsed packets are
  // run through the tracker in batches; before each fast-path candidate
  // is judged, the batch is flushed so tracking() sees current state.
  for (std::size_t i = 0; i < n; ++i) {
    Pending& p = pending_[i];
    const Mbuf& m = *burst[p.mbuf];
    if (tracing && m.trace_id != 0) {
      trace_.instant(obs::TraceStage::kWorker, m.trace_id, obs::trace_now_ns(),
                     static_cast<std::uint32_t>(i), queue_id_);
    }
    if (p.kind == Pending::Kind::kCandidate) {
      flush_items();
      if (inflow_) {
        // In-flow kernel: one table probe classifies the candidate.
        // Established flows run the timestamp match right here — option
        // extraction happens behind the ring prefetch the lookup issued
        // — and never reach parse_packet().
        const auto look = tracker_.inflow_lookup(p.key, m.rss_hash, m.timestamp);
        if (look.verdict == HandshakeTracker::InflowVerdict::kUntracked) {
          ++stats_.fast_path_skips;
          continue;
        }
        if (look.verdict == HandshakeTracker::InflowVerdict::kEstablished) {
          const FastTsProbe tsp = probe_tcp_timestamps(m.bytes(), p.l4_offset, p.probe_v4);
          if (tsp.valid) [[likely]] {
            samples_.clear();
            tracker_.inflow_established(look.slot, p.key.forward, tsp, m.timestamp, m.rss_hash,
                                        queue_id_, samples_);
            deliver_staged();
            ++stats_.inflow_consumed;
            continue;
          }
          // Inconsistent length fields: let parse_packet() classify it.
        }
      } else if (!tracker_.tracking(p.key, m.rss_hash, m.timestamp)) {
        ++stats_.fast_path_skips;
        continue;
      }
      // Tracked flow after all: take the full parse like the slow path.
      p.status = parse_packet(m.bytes(), p.view);
      ++stats_.parse_status[static_cast<std::size_t>(p.status)];
    }
    if (p.status != ParseStatus::kOk) continue;

    if (syn_sink_ && p.view.tcp.is_syn_only() && p.view.is_v4) {
      syn_sink_(m.timestamp, p.view.ip4.dst);
    }
    items_.push_back(TrackedPacket{p.view, m.timestamp, m.rss_hash});
  }
  flush_items();

  // Retire abandoned handshakes a few groups at a time, so probes never
  // pay a staleness scan and the table never needs a stop-the-world GC.
  tracker_.sweep(burst[n - 1]->timestamp, kSweepGroupsPerBurst);

  if (tracing) {
    const std::int64_t now_ns = obs::trace_now_ns();
    trace_.span(obs::TraceStage::kWorker, 0, poll_start_ns, now_ns - poll_start_ns,
                static_cast<std::uint32_t>(n), queue_id_);
  }
  return n;
}

std::size_t QueueWorker::poll_once_vector() {
  std::array<MbufPtr, kBurst> burst;
  const std::size_t n = nic_.rx_burst(queue_id_, burst);
  ++stats_.polls;
  if (n == 0) {
    ++stats_.empty_polls;
    flush_batch();  // end-of-burst idle: don't sit on a partial batch
    return 0;
  }
  obs_.poll_batch.record(static_cast<std::int64_t>(n));

  const bool tracing = trace_.attached();
  std::int64_t poll_start_ns = 0;
  if (tracing) poll_start_ns = obs::trace_now_ns();

  // Stage 0: every mbuf header prefetches up front.  By the time the
  // ingest loop reads lane i's descriptor the line is in flight or
  // arrived — the staged shape gives the whole burst as lookahead where
  // the per-packet loop only had `prefetch_depth_` lanes of it.
  if (prefetch_depth_ != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      __builtin_prefetch(burst[i].get(), 0 /*read*/, 3);
    }
  }

  // Stage 1: ingest.  Fill the frame / rss / timestamp lanes; packet
  // and byte accounting and the NIC-queueing trace span live here so
  // they stay in arrival order.  Reading the header exposes the frame
  // pointer, so each lane's payload head prefetches here — a full stage
  // ahead of the pre-parse that reads it.
  for (std::size_t i = 0; i < n; ++i) {
    const Mbuf& m = *burst[i];
    if (prefetch_depth_ != 0) {
      __builtin_prefetch(m.data(), 0 /*read*/, 3);
      __builtin_prefetch(m.data() + 64, 0 /*read*/, 3);
    }
    ++stats_.packets;
    stats_.bytes += m.length();
    if (tracing && m.trace_id != 0) {
      const std::int64_t now_ns = obs::trace_now_ns();
      trace_.span(obs::TraceStage::kNic, m.trace_id, m.ingest_ns, now_ns - m.ingest_ns,
                  static_cast<std::uint32_t>(m.length()), queue_id_);
    }
    desc_.frame[i] = m.bytes();
    desc_.rss[i] = m.rss_hash;
    desc_.ts_ns[i] = m.timestamp.ns;
  }

  // Stage 2: batched pre-parse, then the branchless classify.  The
  // candidate predicate — eligible && (flags & (SYN|FIN|RST|ACK)) == ACK
  // — resolves 16 lanes per masked byte-compare; ineligible lanes and
  // tail padding carry 0xFF, which can never satisfy it.  Full-parse
  // lanes are parsed right here (parsing reads only the frame, never the
  // table, so order does not matter yet), same as the scalar pass 1.
  std::size_t n_cand = 0;
  if (fast_path_) {
    probe_tcp_fast_batch(desc_.frame.data(), n, desc_.probe.data());
    for (std::size_t i = 0; i < n; ++i) {
      desc_.flags[i] = desc_.probe[i].eligible ? desc_.probe[i].tcp_flags : 0xFFu;
    }
    for (std::size_t i = n; i < BurstDesc::kLanes; ++i) desc_.flags[i] = 0xFFu;
    constexpr std::uint8_t kClassMask =
        TcpFlags::kSyn | TcpFlags::kFin | TcpFlags::kRst | TcpFlags::kAck;
    std::uint64_t cand_mask = 0;
    for (std::size_t g = 0; g < BurstDesc::kLanes; g += kFlowGroupWidth) {
      cand_mask |= static_cast<std::uint64_t>(
                       group_masked_eq(simd_, desc_.flags.data() + g, kClassMask, TcpFlags::kAck))
                   << g;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const bool cand = (cand_mask >> i) & 1u;
      desc_.cls[i] = cand ? BurstDesc::kCandidate : BurstDesc::kFullParse;
      if (cand) {
        const FastProbe& pr = desc_.probe[i];
        desc_.key[i] = FlowKey::from(pr.tuple);
        desc_.l4_offset[i] = pr.l4_offset;
        desc_.v4[i] = pr.is_v4 ? 1 : 0;
        desc_.cand_idx[n_cand++] = static_cast<std::uint32_t>(i);
      } else {
        Pending& p = pending_[i];
        p.status = parse_packet(desc_.frame[i], p.view);
        ++stats_.parse_status[static_cast<std::size_t>(p.status)];
        if (p.status == ParseStatus::kOk) tracker_.prefetch(desc_.rss[i]);
      }
    }
    obs_.burst_candidates.record(static_cast<std::int64_t>(n_cand));
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      desc_.cls[i] = BurstDesc::kFullParse;
      Pending& p = pending_[i];
      p.status = parse_packet(desc_.frame[i], p.view);
      ++stats_.parse_status[static_cast<std::size_t>(p.status)];
      if (p.status == ParseStatus::kOk) tracker_.prefetch(desc_.rss[i]);
    }
  }

  // Stage 3: batched provisional flow-table probe over the candidate
  // lanes — all group prefetches issue before any probe resolves.
  if (n_cand != 0) {
    tracker_.inflow_lookup_batch(desc_.cand_idx.data(), n_cand, desc_.key.data(),
                                 desc_.rss.data(), desc_.ts_ns.data(), desc_.verdict.data());
  }

  // Stage 4: resolve in arrival order, one *run* of same-class lanes at
  // a time.  The flush-before-skip-decision rule holds at lane
  // granularity: any candidate lane with staged items flushes before its
  // verdict is consumed, so an intra-burst handshake completion is
  // visible to the very next data segment of that flow.  After any
  // flush (inserts/erases) or an in-reprobe reclamation, the remaining
  // provisional verdicts are void: those lanes take the mutating lookup
  // (`revalidate`), keeping state and stats bit-identical to the scalar
  // loop.
  bool revalidate = false;
  std::size_t i = 0;
  while (i < n) {
    if (desc_.cls[i] == BurstDesc::kFullParse) {
      for (; i < n && desc_.cls[i] == BurstDesc::kFullParse; ++i) {
        const Mbuf& m = *burst[i];
        if (tracing && m.trace_id != 0) {
          trace_.instant(obs::TraceStage::kWorker, m.trace_id, obs::trace_now_ns(),
                         static_cast<std::uint32_t>(i), queue_id_);
        }
        const Pending& p = pending_[i];
        if (p.status != ParseStatus::kOk) continue;
        if (syn_sink_ && p.view.tcp.is_syn_only() && p.view.is_v4) {
          syn_sink_(m.timestamp, p.view.ip4.dst);
        }
        items_.push_back(TrackedPacket{p.view, m.timestamp, m.rss_hash});
      }
      continue;
    }

    const std::size_t run_start = i;
    if (inflow_) {
      // In-flow kernel samples accumulate across the run in samples_ and
      // deliver at the run boundary (or before a mid-run flush) — the
      // per-sample order matches the scalar loop exactly.
      samples_.clear();
      for (; i < n && desc_.cls[i] == BurstDesc::kCandidate; ++i) {
        const Mbuf& m = *burst[i];
        if (tracing && m.trace_id != 0) {
          trace_.instant(obs::TraceStage::kWorker, m.trace_id, obs::trace_now_ns(),
                         static_cast<std::uint32_t>(i), queue_id_);
        }
        if (!items_.empty()) {
          // A lane of this run staged a full parse: deliver the kernel
          // samples staged so far, then flush — the tracker may complete
          // a handshake whose data segment is the very next lane.
          deliver_staged();
          samples_.clear();
          flush_items();
          samples_.clear();
          revalidate = true;
        }
        HandshakeTracker::InflowLookup look;
        if (revalidate) {
          look = tracker_.inflow_lookup(desc_.key[i], m.rss_hash, m.timestamp);
          ++stats_.lane_revalidated;
        } else {
          bool reprobed = false;
          look = tracker_.inflow_resolve(desc_.verdict[i], desc_.key[i], m.rss_hash, m.timestamp,
                                         reprobed);
          if (desc_.verdict[i].stale_seen) ++stats_.classify_reprobes;
          if (reprobed) revalidate = true;
        }
        if (look.verdict == HandshakeTracker::InflowVerdict::kUntracked) {
          ++stats_.fast_path_skips;
          ++stats_.lane_skip;
          continue;
        }
        if (look.verdict == HandshakeTracker::InflowVerdict::kEstablished) {
          const FastTsProbe tsp =
              probe_tcp_timestamps(desc_.frame[i], desc_.l4_offset[i], desc_.v4[i] != 0);
          if (tsp.valid) [[likely]] {
            tracker_.inflow_established(look.slot, desc_.key[i].forward, tsp, m.timestamp,
                                        m.rss_hash, queue_id_, samples_);
            ++stats_.inflow_consumed;
            ++stats_.lane_established;
            continue;
          }
          // Inconsistent length fields: let parse_packet() classify it.
        }
        ++stats_.lane_need_parse;
        Pending& p = pending_[i];
        p.status = parse_packet(desc_.frame[i], p.view);
        ++stats_.parse_status[static_cast<std::size_t>(p.status)];
        if (p.status != ParseStatus::kOk) continue;
        if (syn_sink_ && p.view.tcp.is_syn_only() && p.view.is_v4) {
          syn_sink_(m.timestamp, p.view.ip4.dst);
        }
        items_.push_back(TrackedPacket{p.view, m.timestamp, m.rss_hash});
      }
      deliver_staged();
      samples_.clear();
    } else {
      for (; i < n && desc_.cls[i] == BurstDesc::kCandidate; ++i) {
        const Mbuf& m = *burst[i];
        if (tracing && m.trace_id != 0) {
          trace_.instant(obs::TraceStage::kWorker, m.trace_id, obs::trace_now_ns(),
                         static_cast<std::uint32_t>(i), queue_id_);
        }
        if (!items_.empty()) {
          flush_items();
          revalidate = true;
        }
        bool tracked;
        const FlowTable::FlowClassify& c = desc_.verdict[i];
        if (revalidate || c.stale_seen) {
          // tracking() (contains) is mutation- and stat-free, so this
          // reprobe never voids later lanes' verdicts.
          tracked = tracker_.tracking(desc_.key[i], m.rss_hash, m.timestamp);
          if (revalidate) {
            ++stats_.lane_revalidated;
          } else {
            ++stats_.classify_reprobes;
          }
        } else {
          tracked = c.kind == FlowTable::ClassifyKind::kLive;
        }
        if (!tracked) {
          ++stats_.fast_path_skips;
          ++stats_.lane_skip;
          continue;
        }
        ++stats_.lane_need_parse;
        Pending& p = pending_[i];
        p.status = parse_packet(desc_.frame[i], p.view);
        ++stats_.parse_status[static_cast<std::size_t>(p.status)];
        if (p.status != ParseStatus::kOk) continue;
        if (syn_sink_ && p.view.tcp.is_syn_only() && p.view.is_v4) {
          syn_sink_(m.timestamp, p.view.ip4.dst);
        }
        items_.push_back(TrackedPacket{p.view, m.timestamp, m.rss_hash});
      }
    }
    obs_.candidate_run_len.record(static_cast<std::int64_t>(i - run_start));
  }
  flush_items();

  // Retire abandoned handshakes a few groups at a time, so probes never
  // pay a staleness scan and the table never needs a stop-the-world GC.
  tracker_.sweep(burst[n - 1]->timestamp, kSweepGroupsPerBurst);

  if (tracing) {
    const std::int64_t now_ns = obs::trace_now_ns();
    trace_.span(obs::TraceStage::kWorker, 0, poll_start_ns, now_ns - poll_start_ns,
                static_cast<std::uint32_t>(n), queue_id_);
  }
  return n;
}

void QueueWorker::run(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    poll_once();
  }
  // Final drain so no injected frame is lost at shutdown.  The drain's
  // terminating empty poll flushed the batch accumulator (flush_batch is
  // part of the empty-poll path), so flushing again here would hand the
  // sink a second, empty flush for nothing — shutdown emits each staged
  // sample exactly once.
  while (poll_once() != 0) {
  }
}

}  // namespace ruru
