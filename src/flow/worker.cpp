#include "flow/worker.hpp"

#include <algorithm>

namespace ruru {

QueueWorker::QueueWorker(SimNic& nic, std::uint16_t queue_id, std::size_t flow_table_capacity,
                         SampleSink sink, Duration stale_after)
    : nic_(nic),
      queue_id_(queue_id),
      tracker_(flow_table_capacity, stale_after),
      sink_(std::move(sink)) {}

void QueueWorker::set_batch_sink(BatchSink sink, std::size_t batch_size, Duration linger) {
  batch_sink_ = std::move(sink);
  batch_size_ = std::clamp<std::size_t>(batch_size, 1, kMaxLatencyBatch);
  batch_linger_ = linger;
  batch_.reserve(batch_size_);
}

void QueueWorker::flush_batch() {
  if (!batch_sink_ || batch_.empty()) return;
  batch_sink_(std::span<const LatencySample>(batch_.data(), batch_.size()));
  ++stats_.batch_flushes;
  stats_.batched_samples += batch_.size();
  obs_.batch_fill.record(static_cast<std::int64_t>(batch_.size()));
  batch_.clear();  // keeps capacity: the accumulator never re-allocates
}

std::size_t QueueWorker::poll_once() {
  std::array<MbufPtr, kBurst> burst;
  const std::size_t n = nic_.rx_burst(queue_id_, burst);
  ++stats_.polls;
  if (n == 0) {
    ++stats_.empty_polls;
    flush_batch();  // end-of-burst idle: don't sit on a partial batch
    return 0;
  }
  obs_.poll_batch.record(static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    // Hide the next mbuf's descriptor + header-bytes miss behind the
    // current packet's processing (the classic rx-loop prefetch).
    if (i + 1 < n) {
      const Mbuf* next = burst[i + 1].get();
      __builtin_prefetch(next, 0 /*read*/, 3);
      __builtin_prefetch(next->data(), 0 /*read*/, 3);
    }
    const Mbuf& m = *burst[i];
    ++stats_.packets;
    stats_.bytes += m.length();

    if (fast_path_) {
      // Pre-parse probe: a pure data segment (ACK, no SYN/FIN/RST) of a
      // flow the tracker is not following can contribute nothing — no
      // timestamp, no state transition — so skip the full parse. SYN /
      // SYN-ACK / RST / FIN and tracked-flow segments fall through to
      // the slow path, keeping emitted samples bit-identical.
      const FastProbe probe = probe_tcp_fast(m.bytes());
      constexpr std::uint8_t kSlowFlags = TcpFlags::kSyn | TcpFlags::kFin | TcpFlags::kRst;
      if (probe.eligible && (probe.tcp_flags & kSlowFlags) == 0 &&
          (probe.tcp_flags & TcpFlags::kAck) != 0 &&
          !tracker_.tracking(FlowKey::from(probe.tuple), m.rss_hash, m.timestamp)) {
        ++stats_.fast_path_skips;
        continue;
      }
    }

    PacketView view;
    const ParseStatus status = parse_packet(m.bytes(), view);
    ++stats_.parse_status[static_cast<std::size_t>(status)];
    if (status != ParseStatus::kOk) continue;

    if (syn_sink_ && view.tcp.is_syn_only() && view.is_v4) {
      syn_sink_(m.timestamp, view.ip4.dst);
    }

    if (auto sample = tracker_.process(view, m.timestamp, m.rss_hash, queue_id_)) {
      if (batch_sink_) {
        if (batch_.empty()) batch_oldest_ = m.timestamp;
        batch_.push_back(*sample);
        if (batch_.size() >= batch_size_ ||
            (batch_linger_.ns > 0 && m.timestamp - batch_oldest_ >= batch_linger_)) {
          flush_batch();
        }
      }
      if (sink_) sink_(*sample);
    }
    // burst[i] destructs here -> mbuf returns to the pool.
  }
  return n;
}

void QueueWorker::run(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    poll_once();
  }
  // Final drain so no injected frame is lost at shutdown.
  while (poll_once() != 0) {
  }
  flush_batch();  // the drain's last poll already flushed; belt and braces
}

}  // namespace ruru
