#pragma once
// Fixed-capacity open-addressing flow table, indexed by the RSS hash.
//
// The paper keeps per-flow handshake timestamps "in hash tables (indexed
// by the RSS hash)" — one table per RX queue, so tables are single-
// threaded and need no locks.  Slots are found by linear probing within
// a bounded window; stale entries (handshakes that never completed) are
// reclaimed in place rather than via a separate GC pass, which keeps the
// data path allocation-free and O(probe window) worst case.

#include <cstdint>
#include <vector>

#include "net/five_tuple.hpp"
#include "util/stat_cell.hpp"
#include "util/time.hpp"

namespace ruru {

enum class HandshakeState : std::uint8_t {
  kAwaitSynAck = 0,  ///< SYN recorded
  kAwaitAck,         ///< SYN + SYN-ACK recorded
};

struct FlowEntry {
  FiveTuple canonical;           ///< endpoint-ordered tuple
  Timestamp syn_time;            ///< first SYN at the tap
  Timestamp synack_time;         ///< SYN-ACK following that SYN
  Timestamp last_seen;           ///< for staleness eviction
  std::uint32_t syn_seq = 0;     ///< ISN of the SYN (validates the SYN-ACK)
  std::uint32_t synack_seq = 0;  ///< ISN of the SYN-ACK (validates the ACK)
  std::uint32_t rss_hash = 0;
  HandshakeState state = HandshakeState::kAwaitSynAck;
  bool syn_forward = true;  ///< SYN travelled in canonical direction
  bool occupied = false;
};

/// Single-writer cells (the owning worker thread): readable live by the
/// metrics snapshot thread without tearing.
struct FlowTableStats {
  StatCell inserts = 0;
  StatCell hits = 0;
  StatCell evictions_stale = 0;  ///< reclaimed abandoned handshakes
  StatCell insert_failures = 0;  ///< probe window full of live entries
  StatCell erases = 0;
};

class FlowTable {
 public:
  /// `capacity` rounded up to a power of two. `stale_after`: entries not
  /// touched for this long may be reclaimed by new inserts.
  explicit FlowTable(std::size_t capacity, Duration stale_after = Duration::from_sec(30.0));

  /// Finds the live entry for `key`, or nullptr.
  [[nodiscard]] FlowEntry* find(const FlowKey& key, std::uint32_t rss_hash, Timestamp now);

  /// Read-only probe: true when a live (non-stale) entry for `key`
  /// exists. Unlike find() it mutates nothing — no hit counting, no
  /// stale-slot reclamation — so the capture fast path can ask "is this
  /// flow tracked?" without perturbing table state or stats.
  [[nodiscard]] bool contains(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) const;

  /// Finds or inserts an entry for `key`. On insert the entry is
  /// default-initialized with `canonical`/`rss_hash`/`occupied` set and
  /// `inserted` reports true. Returns nullptr when the probe window has
  /// no free or reclaimable slot (counted as insert_failure).
  FlowEntry* find_or_insert(const FlowKey& key, std::uint32_t rss_hash, Timestamp now,
                            bool& inserted);

  /// Releases the entry (after a sample is emitted or on RST).
  void erase(FlowEntry* entry);

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return live_.load(); }
  [[nodiscard]] const FlowTableStats& stats() const { return stats_; }

  static constexpr std::size_t kProbeWindow = 32;

 private:
  [[nodiscard]] std::size_t slot_for(std::uint32_t rss_hash) const {
    // The RSS hash indexes the table, as in the paper. Spread the hash's
    // entropy over the mask with a 64-bit mix (RSS hashes of flows on
    // one queue share low bits with the queue count).
    std::uint64_t h = rss_hash;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h) & mask_;
  }

  std::vector<FlowEntry> slots_;
  std::size_t mask_;
  Duration stale_after_;
  StatCell live_ = 0;  ///< occupancy gauge, snapshot-thread readable
  FlowTableStats stats_;
};

}  // namespace ruru
