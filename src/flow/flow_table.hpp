#pragma once
// Fixed-capacity group-probed flow table, indexed by the RSS hash.
//
// The paper keeps per-flow handshake timestamps "in hash tables (indexed
// by the RSS hash)" — one table per RX queue, so tables are single-
// threaded and need no locks.  The layout is two-level, Swiss-table
// style:
//
//  * a contiguous control array, one byte per slot: either a 7-bit
//    fingerprint (a "tag") or an empty/tombstone sentinel, probed one
//    16-slot group per vector compare (src/flow/group_probe.hpp).
//    Placement is indexed by the RSS hash (the paper's scheme) but the
//    tag fingerprints the canonical five-tuple: flows that share an RSS
//    hash (symmetric-RSS piles, hash-poor NICs) pile into one probe
//    window either way, yet tuple tags keep them distinguishable at the
//    control byte, so a pile costs one vector compare instead of a hot
//    row verification per resident flow;
//  * an SoA split of the verification data the probe actually needs —
//    hot: canonical five-tuple + rss_hash (one cache line per slot) and
//    a separate last_seen array the staleness sweep scans linearly —
//    from the cold handshake payload (three timestamps, sequence
//    numbers, state) touched only on a verified match.
//
// Slots are located by probing a bounded window of consecutive groups;
// stale entries (handshakes that never completed) are reclaimed by an
// incremental sweep (sweep(), a few groups per burst) plus lazily when a
// probe verifies a match against a dead entry.  Both turn the slot into
// a tombstone, never back into "empty": inserts claim the first empty
// *or* tombstone in probe order, so no live key ever sits past an empty
// byte in its probe sequence — which is what lets every probe stop at
// the first group containing an empty slot.

#include <cstdint>
#include <limits>
#include <vector>

#include <array>

#include "flow/group_probe.hpp"
#include "flow/ts_ring.hpp"
#include "net/five_tuple.hpp"
#include "obs/metrics.hpp"
#include "util/stat_cell.hpp"
#include "util/time.hpp"

namespace ruru {

enum class HandshakeState : std::uint8_t {
  kAwaitSynAck = 0,  ///< SYN recorded
  kAwaitAck,         ///< SYN + SYN-ACK recorded
  kEstablished,      ///< handshake sample emitted; in-flow RTT tracking
};

/// Cold per-flow payload: read/written only after a probe verified the
/// slot, never during probing.
struct FlowData {
  Timestamp syn_time;            ///< first SYN at the tap
  Timestamp synack_time;         ///< SYN-ACK following that SYN
  std::uint32_t syn_seq = 0;     ///< ISN of the SYN (validates the SYN-ACK)
  std::uint32_t synack_seq = 0;  ///< ISN of the SYN-ACK (validates the ACK)
  HandshakeState state = HandshakeState::kAwaitSynAck;
  bool syn_forward = true;  ///< SYN travelled in canonical direction
};

/// Per-flow timestamp-ring bookkeeping for in-flow RTT (cold SoA, only
/// allocated when the feature is on).  Direction index convention: 0 =
/// canonical (FlowKey::forward), 1 = reverse.
struct TsFlowState {
  std::array<TsDirState, 2> dir{};
  /// Last in-flow sample emission per direction (rate limiting).
  std::array<std::int64_t, 2> last_emit_ns{kTsNever, kTsNever};
  /// Departure time of the previous note per direction (one-sided mode:
  /// consecutive TSval advances approximate sender pacing when no echo
  /// ever comes back).
  std::array<std::int64_t, 2> last_note_ns{kTsNever, kTsNever};
  /// Bit 0: canonical direction seen, bit 1: reverse seen.  One-sided
  /// samples are emitted only while exactly one bit is set.
  std::uint8_t seen_dirs = 0;
};

/// Single-writer cells (the owning worker thread): readable live by the
/// metrics snapshot thread without tearing.
struct FlowTableStats {
  StatCell inserts = 0;
  StatCell hits = 0;
  StatCell evictions_stale = 0;  ///< reclaimed abandoned handshakes (all paths)
  StatCell insert_failures = 0;  ///< probe window full of live entries
  StatCell erases = 0;
  StatCell tag_mismatches = 0;   ///< fingerprint matched, key/hash did not
  StatCell sweep_evictions = 0;  ///< evictions_stale subset found by sweep()
};

/// Observability hooks, installed by the pipeline before the worker
/// runs.  Default-constructed handles are inert no-ops.
struct FlowTableObs {
  /// Groups examined per keyed probe that engages the probe core.
  /// find()'s home-slot short-circuit is excluded: such hits examine
  /// exactly one slot by construction, so recording them adds a constant
  /// bucket-1 spike and a histogram touch to the hottest path for no
  /// distribution information.
  obs::HistogramHandle probe_groups;
  obs::HistogramHandle group_occupancy;  ///< full slots per swept group
};

class FlowTable {
 public:
  /// Slot handle: index into the table's arrays.  Valid until the slot
  /// is erased or reclaimed; kNoSlot means "not found / not inserted".
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = 0xFFFFFFFFu;

  /// Default probe window in slots (2 groups).
  static constexpr std::size_t kDefaultProbeWindow = 32;

  /// last_seen_ value of every dead slot (empty or tombstoned).  Any
  /// staleness compare against it fails, which is what lets the find()
  /// fast path skip the ctrl_ liveness byte entirely: a dead slot whose
  /// hot row still matches the probed key is rejected by `now.ns -
  /// last_seen` alone.  min()/2 keeps that subtraction overflow-free
  /// for any timestamp under 2^62 ns (~146 years), the same headroom
  /// the live-slot arithmetic already assumes.
  static constexpr std::int64_t kDeadNs = std::numeric_limits<std::int64_t>::min() / 2;

  /// `capacity` rounded up to a power of two (minimum one group).
  /// `stale_after`: entries not touched for this long may be reclaimed.
  /// `probe_window`: slots probed per lookup, rounded up to whole groups
  /// and clamped to capacity.  `kernel`: force the scalar probe path
  /// (tests, oracles) or let the build pick.  `ts_ring_entries`: per-
  /// flow, per-direction timestamp ring size for in-flow RTT — rounded
  /// up to a power of two; 0 (the default) allocates no ring storage
  /// and disables the ts_* accessors.
  explicit FlowTable(std::size_t capacity, Duration stale_after = Duration::from_sec(30.0),
                     std::size_t probe_window = kDefaultProbeWindow,
                     ProbeKernel kernel = ProbeKernel::kAuto, std::size_t ts_ring_entries = 0);

  /// Finds the live entry for `key`, or kNoSlot.  A verified match that
  /// went stale is reclaimed on the way (it is a dead handshake — do not
  /// resurrect it, and release its slot so it stops inflating size()).
  ///
  /// The home-slot fast path lives here in the header so callers inline
  /// the common case — a clean hit on the exact slot the hash maps to —
  /// down to two cache lines (hot row + last_seen) and the compares, no
  /// function call.  Liveness needs no ctrl_ read: dead slots (empty or
  /// tombstoned) carry the kDeadNs last_seen sentinel, so the staleness
  /// compare rejects them even when their hot row still holds the old
  /// key.  Everything else (displaced keys, stale entries, misses)
  /// takes find_slow().  (Two bigger inline bodies were tried and
  /// measured slower: inlining the whole probe, and an inline tag scan
  /// of successor slots — both inflate the caller loop past what they
  /// gain.)
  [[nodiscard]] Slot find(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) {
    const std::size_t home = home_slot(mix(rss_hash));
    const HotSlot& hs = hot_[home];
    if (hs.rss_hash == rss_hash && hs.key == key.canonical &&
        now.ns - last_seen_[home] <= stale_after_.ns) [[likely]] {
      ++stats_.hits;
      return static_cast<Slot>(home);
    }
    return find_slow(key, rss_hash, now);
  }

  /// Read-only probe: true when a live (non-stale) entry for `key`
  /// exists.  Unlike find() it mutates nothing — no hit counting, no
  /// stale-slot reclamation, no histogram records — so the capture fast
  /// path can ask "is this flow tracked?" without perturbing table state
  /// or stats (and the metrics snapshot thread can race it safely).
  [[nodiscard]] bool contains(const FlowKey& key, std::uint32_t rss_hash, Timestamp now) const;

  /// What a mutation-free classify() walk concluded about a key.
  enum class ClassifyKind : std::uint8_t {
    kMiss,   ///< no verified match anywhere in the window
    kLive,   ///< live (non-stale) entry at `slot`
    kStale,  ///< only verified-but-stale matches (find() would reclaim)
  };

  /// Provisional verdict of classify()/probe_batch(): everything find()
  /// would have learned and counted, carried aside so the caller can
  /// either replay the bookkeeping (apply_hit_stats / apply_miss_stats)
  /// when the verdict is still valid, or fall back to the real mutating
  /// lookup when it is not (`stale_seen`, or table mutations since the
  /// batch ran).
  struct FlowClassify {
    Slot slot = kNoSlot;  ///< live slot (kLive only)
    std::uint32_t groups = 0;
    std::uint16_t tag_mismatches = 0;
    ClassifyKind kind = ClassifyKind::kMiss;
    bool home_hit = false;   ///< resolved by the inline home-slot check
    bool stale_seen = false; ///< walk passed a verified-but-stale entry
  };

  /// Mutation-free twin of find(): same home-slot fast path, same probe
  /// walk, but nothing is reclaimed and nothing is counted — the walk's
  /// would-be bookkeeping is returned in the FlowClassify instead.  A
  /// kLive verdict is exactly "find() would return this slot"; kStale
  /// means find() would additionally reclaim on the way, so the caller
  /// must re-run the mutating lookup to stay bit-identical.
  [[nodiscard]] FlowClassify classify(const FlowKey& key, std::uint32_t rss_hash,
                                      Timestamp now) const;

  /// Batched classify over burst lanes: issues every lane's group
  /// prefetch up front, then resolves the probes back-to-back over warm
  /// lines (memory-level parallelism — the scalar loop serializes one
  /// probe miss per packet).  `idx` selects `n_idx` lanes; `keys`, `rss`
  /// and `ts_ns` are full lane arrays indexed by `idx[k]`, and the
  /// verdict for lane i lands in `out[i]`.  kLive lanes additionally get
  /// their cold row (and timestamp rings, when enabled) prefetched for
  /// the resolve stage that follows.
  void probe_batch(const std::uint32_t* idx, std::size_t n_idx, const FlowKey* keys,
                   const std::uint32_t* rss, const std::int64_t* ts_ns,
                   FlowClassify* out) const;

  /// Replays the stats/histogram updates find() would have made for a
  /// still-valid kLive classification: the inline home hit counts only a
  /// hit; a scan hit also records the probe length and the fingerprint
  /// false positives, exactly as find_slow() does.
  void apply_hit_stats(const FlowClassify& c) {
    ++stats_.hits;
    if (!c.home_hit) {
      stats_.tag_mismatches += c.tag_mismatches;
      obs_.probe_groups.record(static_cast<std::int64_t>(c.groups));
    }
  }
  /// Replays find_slow()'s bookkeeping for a clean miss (no stale
  /// entries seen — those invalidate the classification instead).
  void apply_miss_stats(const FlowClassify& c) {
    stats_.tag_mismatches += c.tag_mismatches;
    obs_.probe_groups.record(static_cast<std::int64_t>(c.groups));
  }

  /// Finds or inserts an entry for `key`.  On insert the slot's payload
  /// is default-initialized, `last_seen` is set to `now` and `inserted`
  /// reports true.  Returns kNoSlot when the probe window has no free or
  /// reclaimable slot (counted as insert_failure).
  Slot find_or_insert(const FlowKey& key, std::uint32_t rss_hash, Timestamp now, bool& inserted);

  /// Releases the slot (after a sample is emitted or on RST).  The slot
  /// becomes a tombstone; double-erase is harmless.
  void erase(Slot slot);

  /// Warms the control group and first hot slot of `rss_hash`'s home
  /// group — issue one lookahead ahead of the probe that will use it.
  void prefetch(std::uint32_t rss_hash) const {
    const std::size_t group = home_group(mix(rss_hash));
    __builtin_prefetch(ctrl_.data() + group * kFlowGroupWidth, 0 /*read*/, 3);
    __builtin_prefetch(hot_.data() + group * kFlowGroupWidth, 0 /*read*/, 3);
  }

  /// The batched-probe variant: warms exactly what classify()'s home
  /// check reads — the ctrl group, the home slot's *own* hot line (each
  /// HotSlot is line-aligned, so the group-base line prefetch() issues
  /// covers the home slot only 1-in-kFlowGroupWidth times), and the home
  /// slot's last_seen word, which the freshness compare and touch() both
  /// hit.  probe_batch() fans this across the burst before any lane
  /// resolves.
  void prefetch_probe(std::uint32_t rss_hash) const {
    const std::uint64_t h = mix(rss_hash);
    const std::size_t home = home_slot(h);
    __builtin_prefetch(ctrl_.data() + home_group(h) * kFlowGroupWidth, 0 /*read*/, 3);
    __builtin_prefetch(hot_.data() + home, 0 /*read*/, 3);
    // Write intent: a live lane's resolve stage calls touch(), so taking
    // the line exclusive up front saves the shared->owned upgrade the
    // store would otherwise wait on.
    __builtin_prefetch(last_seen_.data() + home, 1 /*write*/, 3);
  }

  /// Incremental staleness sweep: examines up to `max_groups` groups
  /// from an internal cursor, tombstoning entries idle longer than
  /// stale_after.  Called with a few groups per RX burst it retires
  /// abandoned handshakes without a per-probe staleness check or a
  /// stop-the-world GC pass.  Returns entries reclaimed.
  std::size_t sweep(Timestamp now, std::size_t max_groups);

  // --- slot accessors (slot must be a live handle) ---
  [[nodiscard]] FlowData& data(Slot slot) { return cold_[slot]; }
  [[nodiscard]] const FlowData& data(Slot slot) const { return cold_[slot]; }
  [[nodiscard]] const FiveTuple& canonical(Slot slot) const { return hot_[slot].key; }
  [[nodiscard]] Timestamp last_seen(Slot slot) const { return Timestamp{last_seen_[slot]}; }
  void touch(Slot slot, Timestamp now) { last_seen_[slot] = now.ns; }

  // --- in-flow timestamp rings (valid only when ts_enabled()) ---
  [[nodiscard]] bool ts_enabled() const { return ts_entries_ != 0; }
  [[nodiscard]] std::size_t ts_ring_entries() const { return ts_entries_; }
  /// `dir`: 0 = canonical direction's notes, 1 = reverse's.  SoA lanes:
  /// both directions' vals sit contiguously per slot (one cache line for
  /// ring sizes <= 8), times likewise.
  [[nodiscard]] TsRingRef ts_ring(Slot slot, unsigned dir) {
    const std::size_t off = (static_cast<std::size_t>(slot) * 2 + dir) * ts_entries_;
    return {{ts_vals_.data() + off, ts_entries_}, {ts_times_.data() + off, ts_entries_}};
  }
  [[nodiscard]] TsFlowState& ts_state(Slot slot) { return ts_state_[slot]; }
  /// Warms the lanes a match is about to scan — issue between the find()
  /// and the option extraction so the lines stream in behind the probe.
  /// The vals lane (both directions) and the state; the times lane is
  /// only dereferenced on a hit or a note, and its store misses hide in
  /// the store buffer.
  void ts_prefetch(Slot slot) const {
    __builtin_prefetch(ts_vals_.data() + static_cast<std::size_t>(slot) * 2 * ts_entries_,
                       1 /*write*/, 3);
    __builtin_prefetch(ts_state_.data() + slot, 1 /*write*/, 3);
  }

  [[nodiscard]] std::size_t capacity() const { return ctrl_.size(); }
  [[nodiscard]] std::size_t size() const { return live_.load(); }
  [[nodiscard]] std::size_t probe_window() const { return window_groups_ * kFlowGroupWidth; }
  [[nodiscard]] bool simd_active() const { return simd_; }
  [[nodiscard]] const FlowTableStats& stats() const { return stats_; }

  /// Install before the table is used (not thread-safe afterwards).
  void set_obs(FlowTableObs obs) { obs_ = obs; }

 private:
  /// Hot probe row: everything a verified match needs to read, one cache
  /// line per slot.  last_seen lives in its own array so the sweep scans
  /// ctrl_ + last_seen_ sequentially without dragging keys through cache.
  struct alignas(64) HotSlot {
    FiveTuple key;
    std::uint32_t rss_hash = 0;
  };

  /// kClassify is kContains with receipts: still mutation- and stat-free,
  /// but the walk's would-be bookkeeping (fingerprint false positives,
  /// verified-but-stale encounters) is returned in the ProbeResult so
  /// the caller can replay or invalidate it later.
  enum class ProbeMode { kFind, kContains, kInsert, kClassify };

  struct ProbeResult {
    Slot match = kNoSlot;
    Slot reuse = kNoSlot;  ///< first empty/tombstone in probe order (kInsert)
    std::uint32_t groups = 0;
    std::uint16_t mismatches = 0;  ///< kClassify: tag matched, key/hash did not
    bool stale_seen = false;       ///< kClassify: walk passed a stale verified match
  };

  /// The RSS hash indexes the table, as in the paper.  Spread its
  /// entropy with a 64-bit mix (RSS hashes of flows on one queue share
  /// low bits with the queue count).
  [[nodiscard]] static std::uint64_t mix(std::uint32_t rss_hash) {
    std::uint64_t h = rss_hash;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return h;
  }
  /// One 64-bit fold of an address (v4: the word; v6: both halves mixed).
  [[nodiscard]] static std::uint64_t fold_ip(const IpAddress& a);
  /// Control tag: a 7-bit fingerprint of the *canonical five-tuple*, not
  /// the RSS hash.  Flows that share an RSS hash share a home group and
  /// a probe window by design, so an RSS-derived tag would match every
  /// slot of the pile and force a hot-row verification per resident
  /// flow; the tuple tag keeps pile members apart at the control byte.
  /// Word folds + two multiplies — no byte loop (FlowKey::hash is FNV
  /// and too slow for a per-probe path).
  [[nodiscard]] static std::uint8_t tuple_tag(const FiveTuple& t) {
    std::uint64_t h = fold_ip(t.src) * 0xff51afd7ed558ccdULL;
    h ^= fold_ip(t.dst) * 0xc4ceb9fe1a85ec53ULL;
    h ^= (static_cast<std::uint64_t>(t.src_port) << 32) |
         (static_cast<std::uint64_t>(t.dst_port) << 16) | t.protocol;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::uint8_t>((h >> 25) & 0x7F);  // 7 bits, 0x00..0x7F
  }
  [[nodiscard]] std::size_t home_group(std::uint64_t h) const {
    return (static_cast<std::size_t>(h) & slot_mask_) / kFlowGroupWidth;
  }
  /// Exact slot `h` lands on — the first slot examined, inside the home
  /// group.  Inserts prefer it when it is free and lookups short-circuit
  /// on it, so in the common no-collision case a hit costs one control
  /// byte compare and one hot row, no group scan at all.
  [[nodiscard]] std::size_t home_slot(std::uint64_t h) const {
    return static_cast<std::size_t>(h) & slot_mask_;
  }

  /// SkipHome: the caller already ran (and failed) the home-slot
  /// short-circuit — find()'s inline fast path — so don't repeat it.
  template <ProbeMode Mode, bool SkipHome = false>
  ProbeResult probe(const FiveTuple& key, std::uint32_t rss_hash, Timestamp now);

  /// Full probe behind find()'s inline home-slot fast path.
  [[nodiscard]] Slot find_slow(const FlowKey& key, std::uint32_t rss_hash, Timestamp now);

  /// Tombstones every stale entry in `rss_hash`'s probe window; returns
  /// the first reclaimed slot (insert fallback when the window has no
  /// empty or tombstone — the incremental sweep simply has not reached
  /// these groups yet).
  Slot reclaim_window(std::uint32_t rss_hash, Timestamp now);

  void reclaim(Slot slot) {
    ctrl_[slot] = kCtrlTombstone;
    last_seen_[slot] = kDeadNs;  // keep the ctrl-free fast path honest
    --live_;
    ++stats_.evictions_stale;
  }

  std::vector<std::uint8_t> ctrl_;     ///< tag | empty | tombstone, per slot
  std::vector<HotSlot> hot_;           ///< probe verification rows
  std::vector<std::int64_t> last_seen_;  ///< Timestamp::ns, sweep-scanned
  std::vector<FlowData> cold_;         ///< handshake payload
  std::vector<std::uint32_t> ts_vals_;   ///< TSval lanes, 2 * ts_entries_ per slot
  std::vector<std::int64_t> ts_times_;   ///< departure lanes, same geometry
  std::vector<TsFlowState> ts_state_;    ///< one per slot (cold)
  std::size_t ts_entries_ = 0;         ///< ring entries per direction (0 = off)
  std::size_t slot_mask_;              ///< capacity - 1
  std::size_t group_mask_;             ///< capacity/16 - 1
  std::size_t window_groups_;          ///< probe window in groups
  std::size_t sweep_cursor_ = 0;       ///< next group sweep() examines
  Duration stale_after_;
  bool simd_;
  StatCell live_ = 0;  ///< occupancy gauge, snapshot-thread readable
  FlowTableStats stats_;
  FlowTableObs obs_;
};

}  // namespace ruru
