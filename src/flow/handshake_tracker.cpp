#include "flow/handshake_tracker.hpp"

namespace ruru {

std::optional<LatencySample> HandshakeTracker::process(const PacketView& pkt, Timestamp rx_time,
                                                       std::uint32_t rss_hash,
                                                       std::uint16_t queue_id) {
  const FiveTuple tuple = pkt.tuple();
  const FlowKey key = FlowKey::from(tuple);
  const TcpHeader& tcp = pkt.tcp;

  if (tcp.rst()) {
    ++stats_.rst_seen;
    const FlowTable::Slot s = table_.find(key, rss_hash, rx_time);
    if (s != FlowTable::kNoSlot) table_.erase(s);
    return std::nullopt;
  }

  if (tcp.is_syn_only()) {
    ++stats_.syn_seen;
    bool inserted = false;
    const FlowTable::Slot s = table_.find_or_insert(key, rss_hash, rx_time, inserted);
    if (s == FlowTable::kNoSlot) {
      ++stats_.table_drops;
      return std::nullopt;
    }
    FlowData& d = table_.data(s);
    if (inserted) {
      d.syn_time = rx_time;
      d.syn_seq = tcp.seq;
      d.syn_forward = key.forward;
      d.state = HandshakeState::kAwaitSynAck;
    } else if (d.state == HandshakeState::kAwaitSynAck && d.syn_forward == key.forward &&
               d.syn_seq == tcp.seq) {
      // Retransmitted SYN: keep the first timestamp (paper semantics).
      ++stats_.syn_retransmissions;
    } else if (d.syn_forward != key.forward) {
      // Simultaneous open — out of scope for the handshake model; track
      // the earliest SYN only.
    } else if (d.syn_seq != tcp.seq) {
      // Same tuple, new ISN: a genuinely new connection attempt (port
      // reuse). Restart the measurement from this SYN.
      d.syn_time = rx_time;
      d.syn_seq = tcp.seq;
      d.syn_forward = key.forward;
      d.state = HandshakeState::kAwaitSynAck;
      d.synack_time = Timestamp{};
    }
    table_.touch(s, rx_time);
    return std::nullopt;
  }

  if (tcp.is_syn_ack()) {
    ++stats_.synack_seen;
    const FlowTable::Slot s = table_.find(key, rss_hash, rx_time);
    if (s == FlowTable::kNoSlot) {
      ++stats_.synack_unmatched;
      return std::nullopt;
    }
    FlowData& d = table_.data(s);
    // The SYN-ACK must travel opposite to the SYN and acknowledge its ISN.
    const bool direction_ok = key.forward != d.syn_forward;
    const bool ack_ok = tcp.ack == d.syn_seq + 1;
    if (d.state == HandshakeState::kAwaitSynAck && direction_ok && ack_ok) {
      d.synack_time = rx_time;
      d.synack_seq = tcp.seq;
      d.state = HandshakeState::kAwaitAck;
    }
    // Duplicate SYN-ACK in kAwaitAck: ignored, first one stands.
    table_.touch(s, rx_time);
    return std::nullopt;
  }

  if (tcp.ack_flag()) {
    const FlowTable::Slot s = table_.find(key, rss_hash, rx_time);
    if (s == FlowTable::kNoSlot) return std::nullopt;  // mid-flow traffic, not tracked
    table_.touch(s, rx_time);
    const FlowData& d = table_.data(s);
    if (d.state != HandshakeState::kAwaitAck) return std::nullopt;
    // First ACK: same direction as the SYN, acknowledging the SYN-ACK ISN.
    const bool direction_ok = key.forward == d.syn_forward;
    const bool ack_ok = tcp.ack == d.synack_seq + 1;
    if (!direction_ok || !ack_ok) return std::nullopt;

    ++stats_.ack_matched;
    LatencySample sample;
    const FiveTuple& canonical = table_.canonical(s);
    const FiveTuple client_oriented = d.syn_forward ? canonical : canonical.reversed();
    sample.client = client_oriented.src;
    sample.server = client_oriented.dst;
    sample.client_port = client_oriented.src_port;
    sample.server_port = client_oriented.dst_port;
    sample.syn_time = d.syn_time;
    sample.synack_time = d.synack_time;
    sample.ack_time = rx_time;
    sample.rss_hash = rss_hash;
    sample.queue_id = queue_id;
    ++stats_.samples_emitted;
    // Handshake measured; free the slot so long flows cost nothing more.
    table_.erase(s);
    return sample;
  }

  return std::nullopt;
}

void HandshakeTracker::process_burst(std::span<const TrackedPacket> pkts, std::uint16_t queue_id,
                                     std::vector<LatencySample>& out) {
  const std::size_t n = pkts.size();
  if (n != 0) table_.prefetch(pkts[0].rss_hash);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) table_.prefetch(pkts[i + 1].rss_hash);
    if (auto s = process(pkts[i].view, pkts[i].rx_time, pkts[i].rss_hash, queue_id)) {
      out.push_back(*s);
    }
  }
}

}  // namespace ruru
