#include "flow/handshake_tracker.hpp"

namespace ruru {

std::optional<LatencySample> HandshakeTracker::process(const PacketView& pkt, Timestamp rx_time,
                                                       std::uint32_t rss_hash,
                                                       std::uint16_t queue_id) {
  const FiveTuple tuple = pkt.tuple();
  const FlowKey key = FlowKey::from(tuple);
  const TcpHeader& tcp = pkt.tcp;

  if (tcp.rst()) {
    ++stats_.rst_seen;
    if (FlowEntry* e = table_.find(key, rss_hash, rx_time)) table_.erase(e);
    return std::nullopt;
  }

  if (tcp.is_syn_only()) {
    ++stats_.syn_seen;
    bool inserted = false;
    FlowEntry* e = table_.find_or_insert(key, rss_hash, rx_time, inserted);
    if (e == nullptr) {
      ++stats_.table_drops;
      return std::nullopt;
    }
    if (inserted) {
      e->syn_time = rx_time;
      e->syn_seq = tcp.seq;
      e->syn_forward = key.forward;
      e->state = HandshakeState::kAwaitSynAck;
    } else if (e->state == HandshakeState::kAwaitSynAck && e->syn_forward == key.forward &&
               e->syn_seq == tcp.seq) {
      // Retransmitted SYN: keep the first timestamp (paper semantics).
      ++stats_.syn_retransmissions;
    } else if (e->syn_forward != key.forward) {
      // Simultaneous open — out of scope for the handshake model; track
      // the earliest SYN only.
    } else if (e->syn_seq != tcp.seq) {
      // Same tuple, new ISN: a genuinely new connection attempt (port
      // reuse). Restart the measurement from this SYN.
      e->syn_time = rx_time;
      e->syn_seq = tcp.seq;
      e->syn_forward = key.forward;
      e->state = HandshakeState::kAwaitSynAck;
      e->synack_time = Timestamp{};
    }
    e->last_seen = rx_time;
    return std::nullopt;
  }

  if (tcp.is_syn_ack()) {
    ++stats_.synack_seen;
    FlowEntry* e = table_.find(key, rss_hash, rx_time);
    if (e == nullptr) {
      ++stats_.synack_unmatched;
      return std::nullopt;
    }
    // The SYN-ACK must travel opposite to the SYN and acknowledge its ISN.
    const bool direction_ok = key.forward != e->syn_forward;
    const bool ack_ok = tcp.ack == e->syn_seq + 1;
    if (e->state == HandshakeState::kAwaitSynAck && direction_ok && ack_ok) {
      e->synack_time = rx_time;
      e->synack_seq = tcp.seq;
      e->state = HandshakeState::kAwaitAck;
    }
    // Duplicate SYN-ACK in kAwaitAck: ignored, first one stands.
    e->last_seen = rx_time;
    return std::nullopt;
  }

  if (tcp.ack_flag()) {
    FlowEntry* e = table_.find(key, rss_hash, rx_time);
    if (e == nullptr) return std::nullopt;  // mid-flow traffic, not tracked
    e->last_seen = rx_time;
    if (e->state != HandshakeState::kAwaitAck) return std::nullopt;
    // First ACK: same direction as the SYN, acknowledging the SYN-ACK ISN.
    const bool direction_ok = key.forward == e->syn_forward;
    const bool ack_ok = tcp.ack == e->synack_seq + 1;
    if (!direction_ok || !ack_ok) return std::nullopt;

    ++stats_.ack_matched;
    LatencySample sample;
    const FiveTuple client_oriented = e->syn_forward ? e->canonical : e->canonical.reversed();
    sample.client = client_oriented.src;
    sample.server = client_oriented.dst;
    sample.client_port = client_oriented.src_port;
    sample.server_port = client_oriented.dst_port;
    sample.syn_time = e->syn_time;
    sample.synack_time = e->synack_time;
    sample.ack_time = rx_time;
    sample.rss_hash = rss_hash;
    sample.queue_id = queue_id;
    ++stats_.samples_emitted;
    // Handshake measured; free the slot so long flows cost nothing more.
    table_.erase(e);
    return sample;
  }

  return std::nullopt;
}

}  // namespace ruru
