#include "flow/handshake_tracker.hpp"

namespace ruru {

std::optional<LatencySample> HandshakeTracker::process(const PacketView& pkt, Timestamp rx_time,
                                                       std::uint32_t rss_hash,
                                                       std::uint16_t queue_id) {
  return process_core(pkt, rx_time, rss_hash, queue_id).sample;
}

HandshakeTracker::CoreOutcome HandshakeTracker::process_core(const PacketView& pkt,
                                                             Timestamp rx_time,
                                                             std::uint32_t rss_hash,
                                                             std::uint16_t queue_id) {
  const FiveTuple tuple = pkt.tuple();
  const FlowKey key = FlowKey::from(tuple);
  const TcpHeader& tcp = pkt.tcp;
  CoreOutcome co;

  if (tcp.rst()) {
    ++stats_.rst_seen;
    const FlowTable::Slot s = table_.find(key, rss_hash, rx_time);
    if (s != FlowTable::kNoSlot) {
      // An RST kills tracking outright — the flow is dead, so even its
      // own timestamps are not worth noting (a dying flow draws no
      // echo).  co.erased keeps the in-flow layer off the dead slot.
      table_.erase(s);
      co.slot = s;
      co.erased = true;
    }
    return co;
  }

  if (tcp.is_syn_only()) {
    ++stats_.syn_seen;
    bool inserted = false;
    const FlowTable::Slot s = table_.find_or_insert(key, rss_hash, rx_time, inserted);
    if (s == FlowTable::kNoSlot) {
      ++stats_.table_drops;
      return co;
    }
    FlowData& d = table_.data(s);
    if (inserted) {
      d.syn_time = rx_time;
      d.syn_seq = tcp.seq;
      d.syn_forward = key.forward;
      d.state = HandshakeState::kAwaitSynAck;
    } else if (d.state == HandshakeState::kAwaitSynAck && d.syn_forward == key.forward &&
               d.syn_seq == tcp.seq) {
      // Retransmitted SYN: keep the first timestamp (paper semantics).
      ++stats_.syn_retransmissions;
    } else if (d.syn_forward != key.forward) {
      // Simultaneous open — out of scope for the handshake model; track
      // the earliest SYN only.
    } else if (d.syn_seq != tcp.seq) {
      // Same tuple, new ISN: a genuinely new connection attempt (port
      // reuse). Restart the measurement from this SYN.
      d.syn_time = rx_time;
      d.syn_seq = tcp.seq;
      d.syn_forward = key.forward;
      d.state = HandshakeState::kAwaitSynAck;
      d.synack_time = Timestamp{};
    }
    table_.touch(s, rx_time);
    co.slot = s;
    return co;
  }

  if (tcp.is_syn_ack()) {
    ++stats_.synack_seen;
    const FlowTable::Slot s = table_.find(key, rss_hash, rx_time);
    if (s == FlowTable::kNoSlot) {
      ++stats_.synack_unmatched;
      return co;
    }
    FlowData& d = table_.data(s);
    // The SYN-ACK must travel opposite to the SYN and acknowledge its ISN.
    const bool direction_ok = key.forward != d.syn_forward;
    const bool ack_ok = tcp.ack == d.syn_seq + 1;
    if (d.state == HandshakeState::kAwaitSynAck && direction_ok && ack_ok) {
      d.synack_time = rx_time;
      d.synack_seq = tcp.seq;
      d.state = HandshakeState::kAwaitAck;
    }
    // Duplicate SYN-ACK in kAwaitAck: ignored, first one stands.
    table_.touch(s, rx_time);
    co.slot = s;
    return co;
  }

  if (tcp.ack_flag()) {
    const FlowTable::Slot s = table_.find(key, rss_hash, rx_time);
    if (s == FlowTable::kNoSlot) return co;  // mid-flow traffic, not tracked
    table_.touch(s, rx_time);
    co.slot = s;
    FlowData& d = table_.data(s);
    if (d.state != HandshakeState::kAwaitAck) return co;
    // First ACK: same direction as the SYN, acknowledging the SYN-ACK ISN.
    const bool direction_ok = key.forward == d.syn_forward;
    const bool ack_ok = tcp.ack == d.synack_seq + 1;
    if (!direction_ok || !ack_ok) return co;

    ++stats_.ack_matched;
    LatencySample sample;
    const FiveTuple& canonical = table_.canonical(s);
    const FiveTuple client_oriented = d.syn_forward ? canonical : canonical.reversed();
    sample.client = client_oriented.src;
    sample.server = client_oriented.dst;
    sample.client_port = client_oriented.src_port;
    sample.server_port = client_oriented.dst_port;
    sample.syn_time = d.syn_time;
    sample.synack_time = d.synack_time;
    sample.ack_time = rx_time;
    sample.rss_hash = rss_hash;
    sample.queue_id = queue_id;
    ++stats_.samples_emitted;
    if (inflow_.enabled) {
      // Keep the slot: the in-flow kernel measures the rest of the flow.
      d.state = HandshakeState::kEstablished;
    } else {
      // Handshake measured; free the slot so long flows cost nothing more.
      table_.erase(s);
      co.erased = true;
    }
    co.sample = sample;
    return co;
  }

  return co;
}

void HandshakeTracker::process(const PacketView& pkt, Timestamp rx_time, std::uint32_t rss_hash,
                               std::uint16_t queue_id, std::vector<LatencySample>& out) {
  CoreOutcome co = process_core(pkt, rx_time, rss_hash, queue_id);
  if (co.sample) out.push_back(*co.sample);
  if (!inflow_.enabled || co.slot == FlowTable::kNoSlot || co.erased) return;
  const FlowKey key = FlowKey::from(pkt.tuple());
  if (const auto ts = pkt.tcp.timestamp_option()) {
    inflow_segment(co.slot, key.forward, pkt.payload_length > 0, pkt.tcp.syn(), pkt.tcp.fin(),
                   ts->ts_val, ts->ts_ecr, rx_time, rss_hash, queue_id, out);
  } else {
    table_.ts_state(co.slot).seen_dirs |= key.forward ? 1u : 2u;
  }
  // Teardown: the first FIN retires an established flow (its own
  // timestamps were processed above — a FIN still elicits an echo, but
  // whatever comes back after it is the peer's teardown, not a flow
  // we keep paying table space for).
  if (pkt.tcp.fin() && table_.data(co.slot).state == HandshakeState::kEstablished) {
    table_.erase(co.slot);
  }
}

HandshakeTracker::InflowLookup HandshakeTracker::inflow_lookup(const FlowKey& key,
                                                               std::uint32_t rss_hash,
                                                               Timestamp now) {
  InflowLookup r;
  const FlowTable::Slot s = table_.find(key, rss_hash, now);
  if (s == FlowTable::kNoSlot) return r;
  r.slot = s;
  if (table_.data(s).state != HandshakeState::kEstablished) {
    // Mid-handshake (including the completing ACK and one-sided flows
    // stuck in kAwaitSynAck): the state machine needs the full parse.
    r.verdict = InflowVerdict::kNeedParse;
    return r;
  }
  table_.touch(s, now);
  table_.ts_prefetch(s);  // rings stream in while the caller extracts options
  r.verdict = InflowVerdict::kEstablished;
  return r;
}

HandshakeTracker::InflowLookup HandshakeTracker::inflow_resolve(const FlowTable::FlowClassify& c,
                                                                const FlowKey& key,
                                                                std::uint32_t rss_hash,
                                                                Timestamp now, bool& reprobed) {
  reprobed = false;
  if (c.stale_seen) {
    // The provisional walk passed a verified-but-stale entry find()
    // reclaims: rerun the mutating lookup so state and stats land
    // exactly where the scalar loop would put them.  Only an actual
    // reclamation invalidates the rest of the burst's verdicts (an
    // entry since freshened by an earlier lane's touch does not).
    const std::uint64_t before = table_.stats().evictions_stale.load();
    InflowLookup r = inflow_lookup(key, rss_hash, now);
    reprobed = table_.stats().evictions_stale.load() != before;
    return r;
  }
  InflowLookup r;
  if (c.kind != FlowTable::ClassifyKind::kLive) {
    table_.apply_miss_stats(c);
    return r;  // kUntracked
  }
  table_.apply_hit_stats(c);
  r.slot = c.slot;
  if (table_.data(c.slot).state != HandshakeState::kEstablished) {
    // Mid-handshake: the state machine needs the full parse (no touch —
    // inflow_lookup() leaves mid-handshake entries untouched too).
    r.verdict = InflowVerdict::kNeedParse;
    return r;
  }
  table_.touch(c.slot, now);
  // No ts_prefetch here: probe_batch's resolve phase already warmed the
  // rings (vals, times, state) a full stage earlier.
  r.verdict = InflowVerdict::kEstablished;
  return r;
}

void HandshakeTracker::inflow_established(FlowTable::Slot slot, bool forward,
                                          const FastTsProbe& ts, Timestamp rx_time,
                                          std::uint32_t rss_hash, std::uint16_t queue_id,
                                          std::vector<LatencySample>& out) {
  if (ts.has_ts) {
    inflow_segment(slot, forward, ts.payload_len > 0, /*syn=*/false, /*fin=*/false, ts.ts_val,
                   ts.ts_ecr, rx_time, rss_hash, queue_id, out);
  } else {
    // No timestamps, but the direction is visibly alive — that gates
    // one-sided mode off, same as the full-parse path.
    table_.ts_state(slot).seen_dirs |= forward ? 1u : 2u;
  }
}

void HandshakeTracker::inflow_segment(FlowTable::Slot slot, bool forward, bool has_payload,
                                      bool syn, bool fin, std::uint32_t ts_val,
                                      std::uint32_t ts_ecr, Timestamp rx_time,
                                      std::uint32_t rss_hash, std::uint16_t queue_id,
                                      std::vector<LatencySample>& out) {
  TsFlowState& st = table_.ts_state(slot);
  const unsigned dir = forward ? 0 : 1;
  st.seen_dirs |= 1u << dir;

  // Match first: this packet's TSecr echoes a TSval the opposite
  // direction noted, and the note must be consumed even when this
  // packet also carries a new TSval of its own.
  if (ts_ecr != 0) {
    const std::int64_t departed = ts_match(table_.ts_ring(slot, 1 - dir), ts_ecr);
    if (departed != kTsNever) {
      ++inflow_stats_.ts_matches;
      emit_inflow(slot, dir, SampleKind::kInflow, Timestamp{departed}, rx_time, rss_hash,
                  queue_id, out);
    }
  }

  // Note only eliciting segments (payload, SYN, FIN): a pure ACK draws
  // no timely echo, so noting it would only flush live notes out of the
  // bounded ring.
  if (has_payload || syn || fin) {
    const TsNoteResult nr = ts_note(table_.ts_ring(slot, dir), st.dir[dir], ts_val, rx_time.ns);
    if (nr.noted) {
      if (nr.evicted) ++inflow_stats_.ts_ring_evictions;
      if (nr.wrapped) ++inflow_stats_.ts_wraps;
      if ((st.seen_dirs & (1u << (1 - dir))) == 0 && st.last_note_ns[dir] != kTsNever) {
        // Only one direction visible so far: emit the departure delta
        // (one-sided mode — sender pacing, the asymmetric tap's signal).
        emit_inflow(slot, dir, SampleKind::kOneSided, Timestamp{st.last_note_ns[dir]}, rx_time,
                    rss_hash, queue_id, out);
      }
      st.last_note_ns[dir] = rx_time.ns;
    }
  }
}

void HandshakeTracker::emit_inflow(FlowTable::Slot slot, unsigned dir, SampleKind kind,
                                   Timestamp departed, Timestamp rx_time, std::uint32_t rss_hash,
                                   std::uint16_t queue_id, std::vector<LatencySample>& out) {
  TsFlowState& st = table_.ts_state(slot);
  if (inflow_.min_interval.ns > 0 && st.last_emit_ns[dir] != kTsNever &&
      rx_time.ns - st.last_emit_ns[dir] < inflow_.min_interval.ns) {
    ++inflow_stats_.rate_limited;
    return;
  }
  st.last_emit_ns[dir] = rx_time.ns;

  const FlowData& d = table_.data(slot);
  const FiveTuple& canonical = table_.canonical(slot);
  const FiveTuple client_oriented = d.syn_forward ? canonical : canonical.reversed();
  LatencySample sample;
  sample.client = client_oriented.src;
  sample.server = client_oriented.dst;
  sample.client_port = client_oriented.src_port;
  sample.server_port = client_oriented.dst_port;
  sample.kind = kind;
  // The sender of the matching packet is the endpoint the measured half
  // reaches: canonical-direction sender is the client iff the SYN
  // travelled canonically.
  sample.toward_client = (dir == 0) == d.syn_forward;
  // Carry the measured interval in the matching half so external() /
  // internal() / total() keep their meaning: internal (SYN-ACK -> ACK)
  // is the tap<->client half, external (SYN -> SYN-ACK) tap<->server.
  if (sample.toward_client) {
    sample.syn_time = departed;
    sample.synack_time = departed;
    sample.ack_time = rx_time;
  } else {
    sample.syn_time = departed;
    sample.synack_time = rx_time;
    sample.ack_time = rx_time;
  }
  sample.rss_hash = rss_hash;
  sample.queue_id = queue_id;
  if (kind == SampleKind::kInflow) {
    ++inflow_stats_.inflow_samples;
  } else {
    ++inflow_stats_.one_sided_samples;
  }
  out.push_back(sample);
}

void HandshakeTracker::process_burst(std::span<const TrackedPacket> pkts, std::uint16_t queue_id,
                                     std::vector<LatencySample>& out) {
  const std::size_t n = pkts.size();
  if (n != 0) table_.prefetch(pkts[0].rss_hash);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) table_.prefetch(pkts[i + 1].rss_hash);
    process(pkts[i].view, pkts[i].rx_time, pkts[i].rss_hash, queue_id, out);
  }
}

}  // namespace ruru
