#pragma once
// Per-queue poll-mode worker: the "DPDK processing thread" of Figure 2.
//
// Each worker owns one RX queue and one flow table (no sharing, no
// locks — symmetric RSS guarantees both directions of a flow arrive on
// this queue).  Parsed handshake completions are handed to a sample sink
// which the pipeline wires to the message bus.
//
// A burst is resolved as a software-pipelined vector of stages over an
// SoA descriptor (flow/burst_desc.hpp):
//
//  1. ingest — fill the frame / rss / timestamp lanes (packet + byte
//     accounting, configurable-depth mbuf prefetch);
//  2. batched pre-parse + branchless classify — probe_tcp_fast_batch
//     fills the probe lanes, then one masked byte-compare per 16 lanes
//     (group_masked_eq, scalar/SIMD twins) partitions the burst into
//     fast-path candidates (pure data segments: ACK set, no SYN/FIN/RST)
//     and full-parse lanes, which are parsed here;
//  3. batched flow-table probe — every candidate lane's group prefetch
//     issues up front, then the mutation-free classify probes resolve
//     back-to-back over warm lines (FlowTable::probe_batch);
//  4. resolve in arrival order, run-partitioned: full-parse lanes stage
//     tracker items; candidate lanes consume their provisional verdict
//     (replaying the stats the mutating lookup would have counted), and
//     flush_items() runs once per *run* of consecutive candidate lanes
//     instead of once per candidate.  The flush-before-skip-decision
//     rule is preserved at lane granularity: a candidate following any
//     staged item still flushes first, so a handshake completing within
//     the burst is visible to the very next data segment; any flush (or
//     a reclamation inside a stale-entry reprobe) voids the remaining
//     provisional verdicts and those lanes fall back to the mutating
//     lookup.  Emitted samples, skip decisions and every stats counter
//     are bit-identical to the retired one-probe-per-packet loop, which
//     is kept as poll_once_scalar() (LoopKernel::kScalar) as the fuzz
//     oracle.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "driver/nic.hpp"
#include "flow/burst_desc.hpp"
#include "flow/handshake_tracker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ruru {

/// Observability hooks for one worker, installed by the pipeline before
/// the worker runs.  Default-constructed handles are inert no-ops, so a
/// worker without hooks pays only a null check per record site.
struct WorkerObs {
  obs::HistogramHandle poll_batch;  ///< packets per non-empty rx_burst
  obs::HistogramHandle batch_fill;  ///< samples per batch-sink flush
  obs::HistogramHandle inflow_rtt;  ///< ns per kInflow RTT sample
  /// ns per kOneSided departure delta — its own distribution: a
  /// departure delta measures sender pacing, not a round trip, and
  /// mixing the two made flow.inflow_rtt_ns bimodal on asymmetric taps.
  obs::HistogramHandle one_sided_delta;
  obs::HistogramHandle burst_candidates;   ///< candidate lanes per non-empty poll
  obs::HistogramHandle candidate_run_len;  ///< consecutive candidate lanes per run
  FlowTableObs flow;                ///< probe-length / group-occupancy
};

/// Single-writer cells (the owning worker thread): readable live by the
/// metrics snapshot thread without tearing.
struct WorkerStats {
  StatCell polls = 0;
  StatCell empty_polls = 0;
  StatCell packets = 0;
  StatCell bytes = 0;
  /// Counts by ParseStatus value (kOk..kMalformed). Packets the fast
  /// path skips are NOT counted here; conservation is
  ///   packets == sum(parse_status) + fast_path_skips.
  std::array<StatCell, 5> parse_status{};
  /// Data segments of untracked flows dismissed by the fixed-offset
  /// pre-parse probe without a full parse_packet().
  StatCell fast_path_skips = 0;
  /// Data segments of established flows consumed by the in-flow
  /// timestamp kernel without a full parse_packet().  Like skips they
  /// bypass parse_status; conservation becomes
  ///   packets == sum(parse_status) + fast_path_skips + inflow_consumed.
  StatCell inflow_consumed = 0;
  /// Batch-sink flushes (any trigger: full, idle, linger, shutdown).
  StatCell batch_flushes = 0;
  /// Samples handed to the batch sink across all flushes.
  StatCell batched_samples = 0;
  /// --- vector-loop lane accounting (zero under LoopKernel::kScalar) ---
  /// Candidate lanes resolved as untracked skips (subset of
  /// fast_path_skips attributable to the lane loop).
  StatCell lane_skip = 0;
  /// Candidate lanes consumed by the in-flow kernel (subset of
  /// inflow_consumed).
  StatCell lane_established = 0;
  /// Candidate lanes that fell back to a full parse (mid-handshake
  /// flows, invalid-length established segments).
  StatCell lane_need_parse = 0;
  /// Candidate lanes whose provisional verdict was voided by an
  /// intra-burst mutation (flush or reclamation) and re-ran the
  /// mutating lookup.
  StatCell lane_revalidated = 0;
  /// Provisional walks that saw a stale verified entry and re-ran the
  /// real probe for exact reclamation/stats.
  StatCell classify_reprobes = 0;
};

class QueueWorker {
 public:
  using SampleSink = std::function<void(const LatencySample&)>;
  /// Batched variant of SampleSink: receives the worker's accumulated
  /// samples in emission order. The span is only valid for the duration
  /// of the call (the accumulator is reused).
  using BatchSink = std::function<void(std::span<const LatencySample>)>;
  /// Optional hook fired for every SYN-only segment (timestamp, server
  /// address) — feeds the SYN-flood module, which must observe
  /// addresses *before* the anonymization boundary.
  using SynSink = std::function<void(Timestamp, Ipv4Address)>;

  static constexpr std::size_t kBurst = 32;
  static_assert(kBurst == BurstDesc::kLanes, "rx burst and descriptor lanes must agree");
  /// Flow-table groups the incremental staleness sweep examines after
  /// each non-empty burst (the whole table is covered every
  /// capacity / (16 * kSweepGroupsPerBurst) bursts).
  static constexpr std::size_t kSweepGroupsPerBurst = 4;
  /// Upper bound on the rx-loop prefetch depth (lookahead distance in
  /// mbufs); deeper than this outruns any plausible L1 latency.
  static constexpr std::size_t kMaxPrefetchDepth = 4;

  /// Which poll-loop implementation runs.  kVector (the default) is the
  /// staged lane pipeline; kScalar is the retired one-probe-per-packet
  /// loop, kept bit-identical as the fuzz/bench oracle.
  enum class LoopKernel : std::uint8_t { kVector, kScalar };

  QueueWorker(SimNic& nic, std::uint16_t queue_id, std::size_t flow_table_capacity,
              SampleSink sink, Duration stale_after = Duration::from_sec(30.0),
              std::size_t probe_window = FlowTable::kDefaultProbeWindow,
              InflowConfig inflow = {});

  /// Install before the worker runs (not thread-safe afterwards).
  void set_syn_sink(SynSink sink) { syn_sink_ = std::move(sink); }

  /// Enable/disable the pre-parse fast path (default on): a fixed-offset
  /// probe reads the TCP flags byte and skips full parse_packet() for
  /// pure data segments (ACK set, no SYN/FIN/RST) of flows the tracker
  /// is not following — the overwhelming majority of line-rate traffic.
  /// Handshake and teardown segments, fragments, non-TCP and anything
  /// the probe cannot bound-check all take the full parse, so emitted
  /// samples are bit-identical either way. Skips are counted in
  /// WorkerStats::fast_path_skips (they bypass parse_status).
  void set_fast_path(bool enabled) { fast_path_ = enabled; }

  /// Select the poll-loop kernel before the worker runs (not thread-safe
  /// afterwards).  Samples, skip decisions and stats counters (other
  /// than the lane_* cells, which only the vector loop drives) are
  /// bit-identical across kernels.
  void set_loop_kernel(LoopKernel kernel) { loop_kernel_ = kernel; }
  [[nodiscard]] LoopKernel loop_kernel() const { return loop_kernel_; }

  /// Rx-loop prefetch knob (default 1, clamped to [0, kMaxPrefetchDepth];
  /// 0 disables prefetching).  On the scalar kernel it is the classic
  /// lookahead distance (prefetch lane i+depth while resolving lane i).
  /// On the vector kernel the staged pipeline already spans the whole
  /// burst, so any nonzero depth enables the stage 0/1 burst prefetch
  /// and the distance itself is moot.  Purely a memory-timing knob,
  /// never a semantic one.
  void set_prefetch_depth(std::size_t depth) {
    prefetch_depth_ = depth > kMaxPrefetchDepth ? kMaxPrefetchDepth : depth;
  }
  [[nodiscard]] std::size_t prefetch_depth() const { return prefetch_depth_; }

  /// Install a batched sink before the worker runs (not thread-safe
  /// afterwards). Samples accumulate in a reused per-worker buffer —
  /// amortized zero allocation — and flush when:
  ///  * the accumulator reaches `batch_size` (clamped to
  ///    [1, kMaxLatencyBatch]); or
  ///  * a poll comes back empty (end-of-burst idle); or
  ///  * `linger` > 0 and the oldest buffered sample is older than
  ///    `linger` in capture time, so low-rate traffic is not delayed.
  /// `batch_size` == 1 flushes every sample — the pre-batching
  /// behaviour. A per-sample SampleSink, if also set, keeps firing.
  void set_batch_sink(BatchSink sink, std::size_t batch_size,
                      Duration linger = Duration{0});

  /// Install metric handles before the worker runs (not thread-safe
  /// afterwards). The handles must outlive the worker's run.
  void set_obs(WorkerObs obs) {
    obs_ = obs;
    tracker_.set_table_obs(obs.flow);
  }

  /// Install the flight-recorder hook before the worker runs (not
  /// thread-safe afterwards).  `sample_n` mirrors the NIC's 1-in-N rate
  /// so the worker re-derives each emitted sample's trace id from its
  /// RSS hash.  A default (inert) handle keeps the poll loop on the
  /// single `attached()` null-check path.
  void set_trace(obs::TraceHandle trace, std::uint32_t sample_n) {
    trace_ = trace;
    trace_sample_n_ = sample_n;
  }

  /// Hands any accumulated samples to the batch sink now.
  void flush_batch();

  /// One rx_burst + processing pass. Returns packets handled (0 == empty
  /// poll).
  std::size_t poll_once();

  /// Poll until `stop` becomes true, then drain the queue dry once.
  void run(const std::atomic<bool>& stop);

  [[nodiscard]] const WorkerStats& stats() const { return stats_; }
  [[nodiscard]] const TrackerStats& tracker_stats() const { return tracker_.stats(); }
  [[nodiscard]] const HandshakeTracker& tracker() const { return tracker_; }
  [[nodiscard]] std::uint16_t queue_id() const { return queue_id_; }

 private:
  /// Pass-1 classification of one mbuf, resolved in arrival order by
  /// pass 2.
  struct Pending {
    enum class Kind : std::uint8_t {
      kParsed,    ///< slow path: parsed in pass 1 (status + view set)
      kCandidate  ///< fast-path candidate: pure data segment, key set
    };
    Kind kind = Kind::kParsed;
    ParseStatus status = ParseStatus::kOk;
    std::uint32_t mbuf = 0;  ///< index into the rx burst
    /// Candidate-only probe carry-over for the in-flow timestamp probe.
    std::uint16_t l4_offset = 0;
    bool probe_v4 = true;
    PacketView view;
    FlowKey key;
  };

  /// Runs accumulated parsed packets through the tracker and delivers
  /// every emitted sample.
  void flush_items();
  /// Delivers whatever is staged in samples_ (trace ids, histograms,
  /// sinks) — shared by flush_items() and the in-flow fast path.
  void deliver_staged();
  void deliver_sample(const LatencySample& sample);

  /// The staged lane pipeline (LoopKernel::kVector, the default).
  std::size_t poll_once_vector();
  /// The retired per-packet loop, kept bit-identical as the oracle.
  std::size_t poll_once_scalar();

  SimNic& nic_;
  std::uint16_t queue_id_;
  HandshakeTracker tracker_;
  SampleSink sink_;
  SynSink syn_sink_;
  BatchSink batch_sink_;
  bool fast_path_ = true;
  bool inflow_ = false;  ///< cached InflowConfig::enabled
  bool simd_ = false;    ///< group_masked_eq kernel choice (mirrors the table's)
  LoopKernel loop_kernel_ = LoopKernel::kVector;
  std::size_t prefetch_depth_ = 1;
  std::size_t batch_size_ = 1;
  Duration batch_linger_{0};
  std::vector<LatencySample> batch_;   ///< reused accumulator
  Timestamp batch_oldest_{};           ///< capture time of batch_[0]
  std::array<Pending, kBurst> pending_;       ///< parse scratch (both kernels)
  BurstDesc desc_;                            ///< vector-loop lane scratch
  std::vector<TrackedPacket> items_;          ///< reused, capacity kBurst
  std::vector<LatencySample> samples_;        ///< reused, capacity kBurst
  obs::TraceHandle trace_;
  std::uint32_t trace_sample_n_ = 0;
  WorkerObs obs_;
  WorkerStats stats_;
};

}  // namespace ruru
