#pragma once
// Deterministic trans-Pacific traffic model.
//
// Substitutes the live Auckland–Los Angeles production link from the
// paper: emits a time-ordered stream of Ethernet frames *as seen at the
// tap*, with a ground-truth ledger of the latency each flow actually
// experienced.  Every TCP flow follows the Figure-1 structure:
//
//    t0          : SYN      (client -> server) passes the tap
//    t0+external : SYN-ACK  (server -> client) passes the tap
//    t0+external+internal : ACK (client -> server) passes the tap
//
// so `external` is the tap->server->tap RTT and `internal` the
// tap->client->tap RTT, exactly Ruru's decomposition.  Impairments the
// paper's deployment observed are injectable: SYN loss + retransmission,
// abandoned handshakes, a periodic "firewall update" window that adds a
// fixed delay (the +4000 ms use case), and SYN floods.

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "net/five_tuple.hpp"
#include "net/packet_builder.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace ruru {

struct TimedFrame {
  Timestamp timestamp;
  std::vector<std::uint8_t> frame;
};

/// A set of hosts on one side of the tap.
struct HostPool {
  std::vector<Ipv4Address> addresses;

  /// `count` consecutive addresses starting at `base`.
  static HostPool from_range(Ipv4Address base, std::size_t count);
};

/// One traffic route: a (client region, server region) pair with its
/// characteristic latency halves at the tap.
struct RouteProfile {
  std::string name;
  HostPool clients;          ///< tap-side (internal) hosts
  HostPool servers;          ///< far-side (external) hosts
  Duration internal_rtt;     ///< mean tap<->client RTT
  Duration external_rtt;     ///< mean tap<->server RTT
  double jitter_frac = 0.1;  ///< stddev as a fraction of the mean
  double weight = 1.0;       ///< relative share of flow arrivals
  /// Emit this route's flows as TCP/IPv6: each IPv4 pool address a.b.c.d
  /// becomes 2001:db8:6464::a.b.c.d (the flow logic, RSS and codec paths
  /// are family-agnostic; geo enrichment marks v6 unlocated, like an
  /// IPv4-only IP2Location table would).
  bool ipv6 = false;
};

/// Periodic extra delay on the external path — models the nightly
/// firewall update from the paper (+4000 ms for flows started inside a
/// short window each period).
struct GlitchWindow {
  Timestamp first_start;
  Duration period;          ///< e.g. 24 h
  Duration width;           ///< e.g. 30 s
  Duration extra_external;  ///< e.g. 4000 ms

  [[nodiscard]] bool active_at(Timestamp t) const {
    if (t < first_start) return false;
    const std::int64_t into = (t - first_start).ns % period.ns;
    return into < width.ns;
  }
};

/// SYN flood: bare SYNs from spoofed sources to one target, never
/// completing a handshake.
struct SynFloodSpec {
  Timestamp start;
  Duration duration;
  double syns_per_sec = 1000.0;
  Ipv4Address target;
  std::uint16_t target_port = 80;
  Ipv4Address spoof_base{Ipv4Address(198, 51, 100, 0)};
  std::size_t spoof_count = 4096;
};

/// One long-lived transfer with a mid-flow latency shift: periodic
/// request/response/ack exchanges whose external half grows by
/// `shift_extra` from `shift_at` on.  A handshake-only measurement sees
/// nothing after the first three segments; the in-flow timestamp kernel
/// must surface the shift — that contrast is what the inflow scenarios
/// assert.
struct LongTransferSpec {
  Timestamp start;
  Duration duration = Duration::from_sec(8.0);
  Duration exchange_interval = Duration::from_ms(50);
  Ipv4Address client{10, 1, 0, 200};
  Ipv4Address server{10, 2, 0, 200};
  std::uint16_t client_port = 45'555;
  std::uint16_t server_port = 443;
  Duration internal_rtt = Duration::from_ms(2);
  Duration external_rtt = Duration::from_ms(128);
  Timestamp shift_at{};           ///< tap time the external path degrades
  Duration shift_extra{};         ///< added to external_rtt from shift_at on
  std::size_t payload = 1200;
};

/// Ground truth for one generated flow (what an oracle at the tap knows).
struct FlowTruth {
  std::uint64_t flow_id = 0;
  FiveTuple tuple;                 ///< client -> server orientation
  std::size_t route_index = 0;
  Timestamp syn_time;              ///< first SYN at the tap
  Duration true_internal;          ///< sampled tap<->client RTT
  Duration true_external;          ///< sampled tap<->server RTT incl. glitch
  bool handshake_completes = true;
  bool syn_retransmitted = false;  ///< SYN lost beyond tap, resent after RTO
  Duration syn_rto;                ///< retransmission gap when retransmitted
  int data_segments = 0;

  /// What a tap-based handshake measurement *should* report for the
  /// external half: retransmitted SYNs inflate it by the RTO, since the
  /// SYN-ACK answers the second SYN (Ruru keeps the first-SYN timestamp).
  [[nodiscard]] Duration expected_measured_external() const {
    return syn_retransmitted ? true_external + syn_rto : true_external;
  }
  [[nodiscard]] Duration expected_measured_total() const {
    return expected_measured_external() + true_internal;
  }
};

struct TrafficConfig {
  std::uint64_t seed = 1;
  double flows_per_sec = 200.0;
  Timestamp start{};
  Duration duration = Duration::from_sec(10.0);
  double syn_loss_prob = 0.0;          ///< SYN dropped beyond the tap
  Duration syn_rto = Duration::from_sec(1.0);
  double handshake_abandon_prob = 0.0; ///< server never answers
  double mean_data_segments = 4.0;     ///< geometric, response segments
  std::size_t data_payload = 1200;
  bool with_tcp_timestamps = true;     ///< attach RFC 7323 TS options
  double udp_background_frac = 0.0;    ///< extra non-TCP frames per flow
  /// Fraction of emitted frames damaged in flight at the tap (truncated
  /// or bit-flipped) — optics errors, slicing taps. The pipeline must
  /// classify these as malformed/odd, never crash or mis-measure.
  double corrupt_frac = 0.0;
};

/// Arrival-rate modulation: multiplier applied to flows_per_sec as a
/// function of time. Default (null) = constant rate.
using RateCurve = std::function<double(Timestamp)>;

/// A day-night sine curve: rate swings between (1-depth) and (1+depth)
/// of nominal with the given period. Models the diurnal load pattern a
/// live link shows.
[[nodiscard]] RateCurve diurnal_curve(Duration period, double depth = 0.6);

class TrafficModel {
 public:
  TrafficModel(TrafficConfig config, std::vector<RouteProfile> routes);

  void add_glitch(const GlitchWindow& g) { glitches_.push_back(g); }
  void add_syn_flood(const SynFloodSpec& f);
  /// Queues one long-lived transfer (handshake, periodic exchanges with
  /// the spec's mid-flow shift, FIN teardown) merged into tap order with
  /// everything else.  Adds a FlowTruth entry like any other flow.
  void add_long_transfer(const LongTransferSpec& spec);
  /// Install an arrival-rate curve (see diurnal_curve).
  void set_rate_curve(RateCurve curve) { rate_curve_ = std::move(curve); }

  /// Next frame in tap order; nullopt when the scenario is exhausted.
  std::optional<TimedFrame> next();

  /// Ground truth for all flows *generated so far* (complete after the
  /// stream is drained).
  [[nodiscard]] const std::vector<FlowTruth>& truth() const { return truth_; }

  [[nodiscard]] std::uint64_t frames_emitted() const { return frames_emitted_; }
  [[nodiscard]] std::uint64_t flood_syns_emitted() const { return flood_syns_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const { return frames_corrupted_; }

 private:
  struct PendingFrame {
    Timestamp ts;
    std::uint64_t seq;  // stable tiebreak
    std::vector<std::uint8_t> frame;
    bool operator>(const PendingFrame& o) const {
      return ts != o.ts ? ts > o.ts : seq > o.seq;
    }
  };

  void generate_flow(Timestamp arrival);
  void generate_flood_syn(std::size_t flood_idx, Timestamp t);
  void push(Timestamp ts, std::vector<std::uint8_t> frame);
  [[nodiscard]] Duration sample_rtt(Duration mean, double jitter);
  [[nodiscard]] std::size_t pick_route();

  void maybe_corrupt(std::vector<std::uint8_t>& frame);
  [[nodiscard]] Duration next_interarrival(Timestamp at);

  TrafficConfig config_;
  std::vector<RouteProfile> routes_;
  std::vector<double> route_cdf_;
  std::vector<GlitchWindow> glitches_;
  std::vector<SynFloodSpec> floods_;
  std::vector<Timestamp> flood_next_;
  RateCurve rate_curve_;
  /// Separate stream so enabling corruption does not perturb flow
  /// generation (ground truth stays comparable to a clean run).
  Pcg32 corrupt_rng_{0xC0112137};
  std::uint64_t frames_corrupted_ = 0;

  Pcg32 rng_;
  std::priority_queue<PendingFrame, std::vector<PendingFrame>, std::greater<>> pending_;
  Timestamp next_arrival_;
  Timestamp end_;
  bool arrivals_done_ = false;
  std::uint64_t next_flow_id_ = 0;
  std::uint64_t push_seq_ = 0;
  std::uint64_t frames_emitted_ = 0;
  std::uint64_t flood_syns_ = 0;
  std::uint16_t next_ephemeral_ = 10'000;
  std::vector<FlowTruth> truth_;
};

}  // namespace ruru
