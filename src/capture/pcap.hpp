#pragma once
// Classic libpcap file format reader/writer (no libpcap dependency).
//
// Supports both the microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d)
// magics, either endianness on read; writes nanosecond little-endian
// (Ruru's timestamps are sub-microsecond, per the paper).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/time.hpp"

namespace ruru {

struct PcapRecord {
  Timestamp timestamp;
  std::vector<std::uint8_t> frame;
};

class PcapWriter {
 public:
  /// Creates/truncates `path` and writes the global header.
  static Result<PcapWriter> open(const std::string& path, std::uint32_t snaplen = 65535);

  PcapWriter(PcapWriter&&) = default;
  PcapWriter& operator=(PcapWriter&&) = default;
  ~PcapWriter();

  /// Appends one record; frames longer than snaplen are truncated with
  /// the original length preserved in the header.
  Status write(Timestamp ts, std::span<const std::uint8_t> frame);

  /// Flush + close; further writes are errors. Called by the destructor.
  void close();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  PcapWriter(std::FILE* file, std::uint32_t snaplen) : file_(file, &std::fclose), snaplen_(snaplen) {}
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  std::uint32_t snaplen_;
  std::uint64_t records_ = 0;
};

class PcapReader {
 public:
  static Result<PcapReader> open(const std::string& path);

  PcapReader(PcapReader&&) = default;
  PcapReader& operator=(PcapReader&&) = default;

  /// Next record, or nullopt at clean EOF. A torn trailing record is
  /// reported once via `truncated()` and treated as EOF.
  std::optional<PcapRecord> next();

  [[nodiscard]] bool nanosecond() const { return nanosecond_; }
  [[nodiscard]] bool swapped() const { return swapped_; }
  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }

 private:
  PcapReader(std::FILE* file) : file_(file, &std::fclose) {}
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  bool nanosecond_ = false;
  bool swapped_ = false;
  bool truncated_ = false;
  std::uint32_t snaplen_ = 0;
};

}  // namespace ruru
