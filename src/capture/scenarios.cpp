#include "capture/scenarios.hpp"

namespace ruru::scenarios {

const std::vector<Site>& nz_sites() {
  static const std::vector<Site> sites = {
      {"Auckland", "NZ", -36.8485, 174.7633, 9431, Ipv4Address(10, 1, 0, 0)},
      {"Wellington", "NZ", -41.2866, 174.7756, 9431, Ipv4Address(10, 1, 1, 0)},
      {"Christchurch", "NZ", -43.5321, 172.6362, 9432, Ipv4Address(10, 1, 2, 0)},
      {"Dunedin", "NZ", -45.8788, 170.5028, 9433, Ipv4Address(10, 1, 3, 0)},
      {"Hamilton", "NZ", -37.7870, 175.2793, 9431, Ipv4Address(10, 1, 4, 0)},
  };
  return sites;
}

const std::vector<Site>& world_sites() {
  static const std::vector<Site> sites = {
      {"Los Angeles", "US", 34.0522, -118.2437, 15169, Ipv4Address(10, 2, 0, 0)},
      {"San Jose", "US", 37.3382, -121.8863, 16509, Ipv4Address(10, 2, 1, 0)},
      {"Seattle", "US", 47.6062, -122.3321, 8075, Ipv4Address(10, 2, 2, 0)},
      {"Chicago", "US", 41.8781, -87.6298, 3356, Ipv4Address(10, 2, 3, 0)},
      {"New York", "US", 40.7128, -74.0060, 6939, Ipv4Address(10, 2, 4, 0)},
      {"London", "GB", 51.5074, -0.1278, 2914, Ipv4Address(10, 2, 5, 0)},
      {"Frankfurt", "DE", 50.1109, 8.6821, 3320, Ipv4Address(10, 2, 6, 0)},
      {"Singapore", "SG", 1.3521, 103.8198, 7473, Ipv4Address(10, 2, 7, 0)},
      {"Tokyo", "JP", 35.6762, 139.6503, 2497, Ipv4Address(10, 2, 8, 0)},
      {"Sydney", "AU", -33.8688, 151.2093, 1221, Ipv4Address(10, 2, 9, 0)},
  };
  return sites;
}

namespace {

HostPool pool_for(const Site& site) { return HostPool::from_range(site.block, 250); }

RouteProfile make_route(const Site& nz, const Site& far, Duration internal, Duration external,
                        double weight) {
  RouteProfile r;
  r.name = std::string(nz.city) + "-" + far.city;
  r.clients = pool_for(nz);
  r.servers = pool_for(far);
  r.internal_rtt = internal;
  r.external_rtt = external;
  r.jitter_frac = 0.08;
  r.weight = weight;
  return r;
}

}  // namespace

std::vector<RouteProfile> transpacific_routes() {
  const auto& nz = nz_sites();
  const auto& world = world_sites();
  // Mean external RTTs from Auckland over the AKL-LAX cable, roughly
  // proportional to great-circle distance.
  struct Mix {
    std::size_t nz_idx, world_idx;
    std::int64_t internal_ms, external_ms;
    double weight;
  };
  static const Mix mixes[] = {
      {0, 0, 2, 128, 0.30},   // Auckland -> Los Angeles (the tapped link)
      {1, 0, 8, 128, 0.12},   // Wellington -> LA
      {2, 1, 12, 136, 0.10},  // Christchurch -> San Jose
      {0, 1, 2, 136, 0.10},   // Auckland -> San Jose
      {0, 2, 2, 145, 0.06},   // Auckland -> Seattle
      {1, 3, 8, 175, 0.05},   // Wellington -> Chicago
      {0, 4, 2, 195, 0.05},   // Auckland -> New York
      {0, 5, 2, 265, 0.06},   // Auckland -> London
      {3, 6, 16, 280, 0.04},  // Dunedin -> Frankfurt
      {0, 7, 2, 165, 0.05},   // Auckland -> Singapore
      {4, 8, 6, 175, 0.04},   // Hamilton -> Tokyo
      {0, 9, 2, 26, 0.03},    // Auckland -> Sydney
  };
  std::vector<RouteProfile> routes;
  routes.reserve(std::size(mixes));
  for (const auto& m : mixes) {
    routes.push_back(make_route(nz[m.nz_idx], world[m.world_idx],
                                Duration::from_ms(m.internal_ms),
                                Duration::from_ms(m.external_ms), m.weight));
  }
  return routes;
}

TrafficModel transpacific(std::uint64_t seed, double flows_per_sec, Duration duration) {
  TrafficConfig cfg;
  cfg.seed = seed;
  cfg.flows_per_sec = flows_per_sec;
  cfg.duration = duration;
  cfg.syn_loss_prob = 0.002;
  cfg.handshake_abandon_prob = 0.005;
  cfg.udp_background_frac = 0.05;
  return TrafficModel(cfg, transpacific_routes());
}

TrafficModel firewall_glitch(std::uint64_t seed, double flows_per_sec, Duration total,
                             Duration period, Duration width, Duration extra) {
  TrafficConfig cfg;
  cfg.seed = seed;
  cfg.flows_per_sec = flows_per_sec;
  cfg.duration = total;
  TrafficModel model(cfg, transpacific_routes());
  GlitchWindow g;
  g.first_start = Timestamp{} + period / 2;  // first window mid-way into day 1
  g.period = period;
  g.width = width;
  g.extra_external = extra;
  model.add_glitch(g);
  return model;
}

TrafficModel inflow_shift(std::uint64_t seed, double flows_per_sec, Duration total,
                          Timestamp shift_at, Duration shift_extra) {
  TrafficConfig cfg;
  cfg.seed = seed;
  cfg.flows_per_sec = flows_per_sec;
  cfg.duration = total;
  TrafficModel model(cfg, transpacific_routes());

  // One long transfer on the tapped Auckland -> Los Angeles route, alive
  // across the shift.  Host .200 sits inside each site's block (the
  // route pools draw from .0-.249) so geo enrichment tags it like any
  // other AKL-LAX flow; the port is above the background's ephemeral
  // range, so the 4-tuple cannot collide.
  LongTransferSpec t;
  t.start = Timestamp{} + Duration::from_ms(200);
  t.duration = total - Duration::from_ms(400);
  t.client = Ipv4Address(nz_sites()[0].block.value() + 200);
  t.server = Ipv4Address(world_sites()[0].block.value() + 200);
  t.shift_at = shift_at;
  t.shift_extra = shift_extra;
  model.add_long_transfer(t);
  return model;
}

TrafficModel syn_flood(std::uint64_t seed, double benign_flows_per_sec,
                       double flood_syns_per_sec, Duration total, Timestamp flood_start,
                       Duration flood_duration) {
  TrafficConfig cfg;
  cfg.seed = seed;
  cfg.flows_per_sec = benign_flows_per_sec;
  cfg.duration = total;
  TrafficModel model(cfg, transpacific_routes());
  SynFloodSpec f;
  f.start = flood_start;
  f.duration = flood_duration;
  f.syns_per_sec = flood_syns_per_sec;
  f.target = Ipv4Address(10, 1, 0, 80);  // an Auckland server
  f.target_port = 80;
  model.add_syn_flood(f);
  return model;
}

}  // namespace ruru::scenarios
