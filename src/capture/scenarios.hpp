#pragma once
// Canned scenarios mirroring the paper's deployment and use cases.
//
// The tap sits in Auckland on REANNZ's international link; "internal"
// hosts are NZ clients, "external" hosts are overseas servers.  Route
// RTTs approximate real geography (AKL-LAX ~ 120 ms round trip on the
// cable, intra-NZ a few ms).

#include "capture/traffic_model.hpp"

namespace ruru::scenarios {

/// Address plan shared by the traffic model and the synthetic geo world:
/// each named site owns one /24-sized block.  Keeping it here lets the
/// geo DB and packet generator agree without a dependency between them.
struct Site {
  const char* city;
  const char* country;
  double latitude;
  double longitude;
  std::uint32_t asn;
  Ipv4Address block;  ///< first address of a 256-address block
};

/// Tap-side (NZ) sites.
[[nodiscard]] const std::vector<Site>& nz_sites();
/// Far-side (US / international) sites.
[[nodiscard]] const std::vector<Site>& world_sites();

/// The standard route mix over those sites (weights sum to ~1).
[[nodiscard]] std::vector<RouteProfile> transpacific_routes();

/// Steady production-like mix: ~`flows_per_sec` flows over the
/// trans-Pacific route mix.
[[nodiscard]] TrafficModel transpacific(std::uint64_t seed, double flows_per_sec,
                                        Duration duration);

/// The §3 firewall use case: `days` simulated days (time-compressed via
/// `period`), with a `width`-long window each period adding
/// `extra` (default 4000 ms) to external latency.
[[nodiscard]] TrafficModel firewall_glitch(std::uint64_t seed, double flows_per_sec,
                                           Duration total, Duration period, Duration width,
                                           Duration extra = Duration::from_ms(4000));

/// Production-like background plus one long-lived Auckland -> Los
/// Angeles transfer whose external half grows by `shift_extra` from
/// `shift_at` on.  The handshake (completed long before the shift) never
/// sees it; only in-flow timestamp samples can.
[[nodiscard]] TrafficModel inflow_shift(std::uint64_t seed, double flows_per_sec,
                                        Duration total, Timestamp shift_at,
                                        Duration shift_extra);

/// Benign traffic plus a SYN flood against one NZ server.
[[nodiscard]] TrafficModel syn_flood(std::uint64_t seed, double benign_flows_per_sec,
                                     double flood_syns_per_sec, Duration total,
                                     Timestamp flood_start, Duration flood_duration);

}  // namespace ruru::scenarios
