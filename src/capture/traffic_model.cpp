#include "capture/traffic_model.hpp"

#include <algorithm>
#include <cassert>

#include "net/headers.hpp"

namespace ruru {

RateCurve diurnal_curve(Duration period, double depth) {
  return [period, depth](Timestamp t) {
    const double phase = 2.0 * 3.14159265358979 *
                         static_cast<double>(t.ns % period.ns) / static_cast<double>(period.ns);
    return 1.0 + depth * std::sin(phase);
  };
}

HostPool HostPool::from_range(Ipv4Address base, std::size_t count) {
  HostPool pool;
  pool.addresses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.addresses.push_back(Ipv4Address(base.value() + static_cast<std::uint32_t>(i)));
  }
  return pool;
}

TrafficModel::TrafficModel(TrafficConfig config, std::vector<RouteProfile> routes)
    : config_(config), routes_(std::move(routes)), rng_(config.seed) {
  assert(!routes_.empty());
  double total = 0.0;
  for (const auto& r : routes_) total += r.weight;
  double acc = 0.0;
  route_cdf_.reserve(routes_.size());
  for (const auto& r : routes_) {
    acc += r.weight / total;
    route_cdf_.push_back(acc);
  }
  route_cdf_.back() = 1.0;  // guard against fp drift

  end_ = config_.start + config_.duration;
  next_arrival_ = config_.start + next_interarrival(config_.start);
}

Duration TrafficModel::next_interarrival(Timestamp at) {
  double rate = config_.flows_per_sec;
  if (rate_curve_) rate *= std::max(0.01, rate_curve_(at));
  return Duration::from_sec(rng_.exponential(1.0 / rate));
}

void TrafficModel::maybe_corrupt(std::vector<std::uint8_t>& frame) {
  if (config_.corrupt_frac <= 0 || !corrupt_rng_.chance(config_.corrupt_frac) || frame.empty()) {
    return;
  }
  ++frames_corrupted_;
  if (corrupt_rng_.chance(0.5)) {
    // Slice: drop the tail (short frame at the tap).
    frame.resize(1 + corrupt_rng_.bounded(static_cast<std::uint32_t>(frame.size())));
  } else {
    // Bit flips in up to 4 random bytes.
    const std::uint32_t flips = 1 + corrupt_rng_.bounded(4);
    for (std::uint32_t i = 0; i < flips; ++i) {
      frame[corrupt_rng_.bounded(static_cast<std::uint32_t>(frame.size()))] ^=
          static_cast<std::uint8_t>(1u << corrupt_rng_.bounded(8));
    }
  }
}

void TrafficModel::add_syn_flood(const SynFloodSpec& f) {
  floods_.push_back(f);
  flood_next_.push_back(f.start);
}

std::size_t TrafficModel::pick_route() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(route_cdf_.begin(), route_cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(route_cdf_.begin(), it));
}

Duration TrafficModel::sample_rtt(Duration mean, double jitter) {
  const double sampled = rng_.normal(static_cast<double>(mean.ns),
                                     jitter * static_cast<double>(mean.ns));
  // RTTs cannot undercut a floor (serialization + propagation minimum).
  const double floor_ns = 0.05 * static_cast<double>(mean.ns);
  return Duration{static_cast<std::int64_t>(std::max(sampled, floor_ns))};
}

void TrafficModel::push(Timestamp ts, std::vector<std::uint8_t> frame) {
  pending_.push(PendingFrame{ts, push_seq_++, std::move(frame)});
}

void TrafficModel::generate_flow(Timestamp arrival) {
  const std::size_t route_idx = pick_route();
  const RouteProfile& route = routes_[route_idx];

  FlowTruth truth;
  truth.flow_id = next_flow_id_++;
  truth.route_index = route_idx;
  truth.syn_time = arrival;
  truth.true_internal = sample_rtt(route.internal_rtt, route.jitter_frac);

  Duration external = sample_rtt(route.external_rtt, route.jitter_frac);
  for (const auto& g : glitches_) {
    if (g.active_at(arrival)) external = external + g.extra_external;
  }
  truth.true_external = external;

  const Ipv4Address client4 =
      route.clients.addresses[rng_.bounded(static_cast<std::uint32_t>(route.clients.addresses.size()))];
  const Ipv4Address server4 =
      route.servers.addresses[rng_.bounded(static_cast<std::uint32_t>(route.servers.addresses.size()))];
  // Map into 2001:db8:6464::/96 for IPv6 routes.
  auto to_v6 = [](Ipv4Address a) {
    std::array<std::uint8_t, 16> b{0x20, 0x01, 0x0d, 0xb8, 0x64, 0x64, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    b[12] = static_cast<std::uint8_t>(a.value() >> 24);
    b[13] = static_cast<std::uint8_t>(a.value() >> 16);
    b[14] = static_cast<std::uint8_t>(a.value() >> 8);
    b[15] = static_cast<std::uint8_t>(a.value());
    return Ipv6Address(b);
  };
  const IpAddress client = route.ipv6 ? IpAddress(to_v6(client4)) : IpAddress(client4);
  const IpAddress server = route.ipv6 ? IpAddress(to_v6(server4)) : IpAddress(server4);
  const std::uint16_t sport = next_ephemeral_;
  next_ephemeral_ = next_ephemeral_ == 65'535 ? 10'000 : static_cast<std::uint16_t>(next_ephemeral_ + 1);
  const std::uint16_t dport = (rng_.chance(0.6)) ? 443 : (rng_.chance(0.5) ? 80 : 8080);

  truth.tuple = FiveTuple{client, server, sport, dport, kIpProtoTcp};
  truth.syn_retransmitted = rng_.chance(config_.syn_loss_prob);
  truth.syn_rto = config_.syn_rto;
  truth.handshake_completes = !rng_.chance(config_.handshake_abandon_prob);

  const std::uint32_t isn_c = rng_.next_u32();
  const std::uint32_t isn_s = rng_.next_u32();

  // TCP timestamp clocks tick in milliseconds of tap time; good enough
  // for the pping baseline which only matches val/ecr pairs.
  const auto ts_ms = [](Timestamp t) { return static_cast<std::uint32_t>(t.ns / 1'000'000); };

  TcpFrameSpec c2s;  // client -> server template
  c2s.src_ip = client;
  c2s.dst_ip = server;
  c2s.src_port = sport;
  c2s.dst_port = dport;
  TcpFrameSpec s2c;  // server -> client template
  s2c.src_ip = server;
  s2c.dst_ip = client;
  s2c.src_port = dport;
  s2c.dst_port = sport;

  // --- SYN (possibly seen twice at the tap on downstream loss) ---
  TcpFrameSpec syn = c2s;
  syn.flags = TcpFlags::kSyn;
  syn.seq = isn_c;
  syn.with_mss = true;
  syn.with_timestamps = config_.with_tcp_timestamps;
  syn.ts_val = ts_ms(arrival);
  syn.ts_ecr = 0;
  push(arrival, build_tcp_frame(syn));

  Timestamp effective_syn = arrival;  // the SYN the server actually answers
  if (truth.syn_retransmitted) {
    const Timestamp retx = arrival + truth.syn_rto;
    TcpFrameSpec syn2 = syn;
    syn2.ts_val = ts_ms(retx);
    push(retx, build_tcp_frame(syn2));
    effective_syn = retx;
  }

  if (!truth.handshake_completes) {
    truth_.push_back(truth);
    return;
  }

  // --- SYN-ACK ---
  const Timestamp synack_t = effective_syn + truth.true_external;
  TcpFrameSpec synack = s2c;
  synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
  synack.seq = isn_s;
  synack.ack = isn_c + 1;
  synack.with_mss = true;
  synack.with_timestamps = config_.with_tcp_timestamps;
  synack.ts_val = ts_ms(synack_t);
  synack.ts_ecr = syn.ts_val;
  push(synack_t, build_tcp_frame(synack));

  // --- final handshake ACK ---
  const Timestamp ack_t = synack_t + truth.true_internal;
  TcpFrameSpec ack = c2s;
  ack.flags = TcpFlags::kAck;
  ack.seq = isn_c + 1;
  ack.ack = isn_s + 1;
  ack.with_timestamps = config_.with_tcp_timestamps;
  ack.ts_val = ts_ms(ack_t);
  ack.ts_ecr = synack.ts_val;
  push(ack_t, build_tcp_frame(ack));

  // --- request + response data segments + teardown ---
  truth.data_segments =
      config_.mean_data_segments > 0
          ? 1 + static_cast<int>(rng_.exponential(config_.mean_data_segments))
          : 0;

  std::uint32_t cseq = isn_c + 1;
  std::uint32_t sseq = isn_s + 1;
  Timestamp cursor = ack_t;
  if (truth.data_segments > 0) {
    // Client request riding right behind the handshake ACK.
    const std::size_t req_len = 200;
    TcpFrameSpec req = c2s;
    req.flags = TcpFlags::kAck | TcpFlags::kPsh;
    req.seq = cseq;
    req.ack = sseq;
    req.payload_length = req_len;
    req.with_timestamps = config_.with_tcp_timestamps;
    req.ts_val = ts_ms(cursor);
    req.ts_ecr = synack.ts_val;
    push(cursor, build_tcp_frame(req));
    cseq += static_cast<std::uint32_t>(req_len);

    // Server response segments, one external RTT later, paced ~1 ms.
    Timestamp seg_t = cursor + truth.true_external;
    std::uint32_t last_client_tsval = req.ts_val;
    for (int i = 0; i < truth.data_segments; ++i) {
      TcpFrameSpec seg = s2c;
      seg.flags = TcpFlags::kAck | (i + 1 == truth.data_segments ? TcpFlags::kPsh : 0);
      seg.seq = sseq;
      seg.ack = cseq;
      seg.payload_length = config_.data_payload;
      seg.with_timestamps = config_.with_tcp_timestamps;
      seg.ts_val = ts_ms(seg_t);
      seg.ts_ecr = last_client_tsval;
      push(seg_t, build_tcp_frame(seg));
      sseq += static_cast<std::uint32_t>(config_.data_payload);

      // Client ACK for this segment one internal RTT later.
      const Timestamp cack_t = seg_t + truth.true_internal;
      TcpFrameSpec cack = c2s;
      cack.flags = TcpFlags::kAck;
      cack.seq = cseq;
      cack.ack = sseq;
      cack.with_timestamps = config_.with_tcp_timestamps;
      cack.ts_val = ts_ms(cack_t);
      cack.ts_ecr = seg.ts_val;
      push(cack_t, build_tcp_frame(cack));
      last_client_tsval = cack.ts_val;

      seg_t = seg_t + Duration::from_ms(1);
      cursor = cack_t;
    }
  }

  // FIN exchange.
  const Timestamp fin_t = cursor + Duration::from_ms(1);
  TcpFrameSpec fin = c2s;
  fin.flags = TcpFlags::kFin | TcpFlags::kAck;
  fin.seq = cseq;
  fin.ack = sseq;
  fin.with_timestamps = config_.with_tcp_timestamps;
  fin.ts_val = ts_ms(fin_t);
  push(fin_t, build_tcp_frame(fin));

  const Timestamp finack_t = fin_t + truth.true_external;
  TcpFrameSpec finack = s2c;
  finack.flags = TcpFlags::kFin | TcpFlags::kAck;
  finack.seq = sseq;
  finack.ack = cseq + 1;
  finack.with_timestamps = config_.with_tcp_timestamps;
  finack.ts_val = ts_ms(finack_t);
  push(finack_t, build_tcp_frame(finack));

  // Optional UDP background noise keyed off this flow's endpoints
  // (IPv4 only; the UDP builder is v4).
  if (config_.udp_background_frac > 0 && rng_.chance(config_.udp_background_frac)) {
    push(arrival + Duration::from_us(37), build_udp_frame(client4, server4, sport, 53, 120));
  }

  truth_.push_back(truth);
}

void TrafficModel::add_long_transfer(const LongTransferSpec& spec) {
  FlowTruth truth;
  truth.flow_id = next_flow_id_++;
  truth.syn_time = spec.start;
  truth.true_internal = spec.internal_rtt;
  truth.true_external = spec.external_rtt;
  truth.tuple = FiveTuple{IpAddress(spec.client), IpAddress(spec.server), spec.client_port,
                          spec.server_port, kIpProtoTcp};

  const auto ts_ms = [](Timestamp t) { return static_cast<std::uint32_t>(t.ns / 1'000'000); };
  const auto external_at = [&](Timestamp t) {
    return t < spec.shift_at ? spec.external_rtt : spec.external_rtt + spec.shift_extra;
  };

  TcpFrameSpec c2s;
  c2s.src_ip = spec.client;
  c2s.dst_ip = spec.server;
  c2s.src_port = spec.client_port;
  c2s.dst_port = spec.server_port;
  c2s.with_timestamps = true;
  TcpFrameSpec s2c;
  s2c.src_ip = spec.server;
  s2c.dst_ip = spec.client;
  s2c.src_port = spec.server_port;
  s2c.dst_port = spec.client_port;
  s2c.with_timestamps = true;

  const std::uint32_t isn_c = rng_.next_u32();
  const std::uint32_t isn_s = rng_.next_u32();

  TcpFrameSpec syn = c2s;
  syn.flags = TcpFlags::kSyn;
  syn.seq = isn_c;
  syn.with_mss = true;
  syn.ts_val = ts_ms(spec.start);
  push(spec.start, build_tcp_frame(syn));

  const Timestamp synack_t = spec.start + external_at(spec.start);
  TcpFrameSpec synack = s2c;
  synack.flags = TcpFlags::kSyn | TcpFlags::kAck;
  synack.seq = isn_s;
  synack.ack = isn_c + 1;
  synack.with_mss = true;
  synack.ts_val = ts_ms(synack_t);
  synack.ts_ecr = syn.ts_val;
  push(synack_t, build_tcp_frame(synack));

  const Timestamp ack_t = synack_t + spec.internal_rtt;
  TcpFrameSpec ack = c2s;
  ack.flags = TcpFlags::kAck;
  ack.seq = isn_c + 1;
  ack.ack = isn_s + 1;
  ack.ts_val = ts_ms(ack_t);
  ack.ts_ecr = synack.ts_val;
  push(ack_t, build_tcp_frame(ack));

  // Periodic request/response/ack exchanges.  Each response echoes the
  // request's TSval one (possibly shifted) external RTT later — the
  // in-flow external half — and each client ack echoes the response one
  // internal RTT after that — the internal half.
  std::uint32_t cseq = isn_c + 1;
  std::uint32_t sseq = isn_s + 1;
  std::uint32_t last_server_tsval = synack.ts_val;
  Timestamp tick = ack_t + spec.exchange_interval;
  Timestamp cursor = ack_t;
  const Timestamp transfer_end = spec.start + spec.duration;
  while (tick < transfer_end) {
    TcpFrameSpec req = c2s;
    req.flags = TcpFlags::kAck | TcpFlags::kPsh;
    req.seq = cseq;
    req.ack = sseq;
    req.payload_length = 200;
    req.ts_val = ts_ms(tick);
    req.ts_ecr = last_server_tsval;
    push(tick, build_tcp_frame(req));
    cseq += 200;

    const Timestamp resp_t = tick + external_at(tick);
    TcpFrameSpec resp = s2c;
    resp.flags = TcpFlags::kAck | TcpFlags::kPsh;
    resp.seq = sseq;
    resp.ack = cseq;
    resp.payload_length = spec.payload;
    resp.ts_val = ts_ms(resp_t);
    resp.ts_ecr = req.ts_val;
    push(resp_t, build_tcp_frame(resp));
    sseq += static_cast<std::uint32_t>(spec.payload);

    const Timestamp cack_t = resp_t + spec.internal_rtt;
    TcpFrameSpec cack = c2s;
    cack.flags = TcpFlags::kAck;
    cack.seq = cseq;
    cack.ack = sseq;
    cack.ts_val = ts_ms(cack_t);
    cack.ts_ecr = resp.ts_val;
    push(cack_t, build_tcp_frame(cack));

    last_server_tsval = resp.ts_val;
    ++truth.data_segments;
    cursor = cack_t;
    tick = tick + spec.exchange_interval;
  }

  const Timestamp fin_t = cursor + Duration::from_ms(1);
  TcpFrameSpec fin = c2s;
  fin.flags = TcpFlags::kFin | TcpFlags::kAck;
  fin.seq = cseq;
  fin.ack = sseq;
  fin.ts_val = ts_ms(fin_t);
  push(fin_t, build_tcp_frame(fin));

  const Timestamp finack_t = fin_t + external_at(fin_t);
  TcpFrameSpec finack = s2c;
  finack.flags = TcpFlags::kFin | TcpFlags::kAck;
  finack.seq = sseq;
  finack.ack = cseq + 1;
  finack.ts_val = ts_ms(finack_t);
  push(finack_t, build_tcp_frame(finack));

  truth_.push_back(truth);
}

void TrafficModel::generate_flood_syn(std::size_t flood_idx, Timestamp t) {
  const SynFloodSpec& f = floods_[flood_idx];
  const Ipv4Address spoofed(f.spoof_base.value() +
                            rng_.bounded(static_cast<std::uint32_t>(f.spoof_count)));
  TcpFrameSpec syn;
  syn.src_ip = spoofed;
  syn.dst_ip = f.target;
  syn.src_port = static_cast<std::uint16_t>(1024 + rng_.bounded(60'000));
  syn.dst_port = f.target_port;
  syn.seq = rng_.next_u32();
  syn.flags = TcpFlags::kSyn;
  push(t, build_tcp_frame(syn));
  ++flood_syns_;
}

std::optional<TimedFrame> TrafficModel::next() {
  // Refill: a future flow's earliest frame is its arrival time, so it is
  // safe to emit queued frames older than both next_arrival_ and every
  // flood's next SYN.
  auto earliest_source = [&]() {
    Timestamp t = arrivals_done_ ? Timestamp{INT64_MAX} : next_arrival_;
    for (std::size_t i = 0; i < floods_.size(); ++i) {
      const Timestamp fe = floods_[i].start + floods_[i].duration;
      if (flood_next_[i] < fe && flood_next_[i] < t) t = flood_next_[i];
    }
    return t;
  };

  while (true) {
    const Timestamp src = earliest_source();
    if (!pending_.empty() && pending_.top().ts <= src) break;
    if (src.ns == INT64_MAX) break;  // all sources exhausted

    // Advance whichever source is earliest.
    bool advanced = false;
    for (std::size_t i = 0; i < floods_.size(); ++i) {
      const Timestamp fe = floods_[i].start + floods_[i].duration;
      if (flood_next_[i] < fe && flood_next_[i] == src) {
        generate_flood_syn(i, src);
        flood_next_[i] =
            flood_next_[i] + Duration::from_sec(rng_.exponential(1.0 / floods_[i].syns_per_sec));
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      if (next_arrival_ <= end_) {
        generate_flow(next_arrival_);
        next_arrival_ = next_arrival_ + next_interarrival(next_arrival_);
        if (next_arrival_ > end_) arrivals_done_ = true;
      } else {
        arrivals_done_ = true;
      }
    }
  }

  if (pending_.empty()) return std::nullopt;
  // priority_queue::top is const; the frame is moved out via const_cast,
  // safe because the element is popped immediately after.
  auto& top = const_cast<PendingFrame&>(pending_.top());
  TimedFrame out{top.ts, std::move(top.frame)};
  pending_.pop();
  maybe_corrupt(out.frame);  // damage happens "at the tap", after truth
  ++frames_emitted_;
  return out;
}

}  // namespace ruru
