#include "capture/pcap.hpp"

#include <cstring>

#include "util/byte_order.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) | (v >> 24);
}

}  // namespace

Result<PcapWriter> PcapWriter::open(const std::string& path, std::uint32_t snaplen) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return make_error("pcap: cannot open '" + path + "' for writing");
  // Global header, nanosecond magic, native (little-endian on our targets)
  // byte order written explicitly as LE.
  std::uint8_t hdr[24] = {};
  store_le32(&hdr[0], kMagicNsec);
  store_le16(&hdr[4], 2);   // version major
  store_le16(&hdr[6], 4);   // version minor
  store_le32(&hdr[8], 0);   // thiszone
  store_le32(&hdr[12], 0);  // sigfigs
  store_le32(&hdr[16], snaplen);
  store_le32(&hdr[20], kLinkTypeEthernet);
  if (std::fwrite(hdr, 1, sizeof hdr, f) != sizeof hdr) {
    std::fclose(f);
    return make_error("pcap: failed to write global header");
  }
  return PcapWriter(f, snaplen);
}

PcapWriter::~PcapWriter() = default;

Status PcapWriter::write(Timestamp ts, std::span<const std::uint8_t> frame) {
  if (!file_) return make_error("pcap: writer is closed");
  const auto incl = static_cast<std::uint32_t>(
      frame.size() > snaplen_ ? snaplen_ : frame.size());
  std::uint8_t rec[16];
  const auto sec = static_cast<std::uint32_t>(ts.ns / 1'000'000'000);
  const auto nsec = static_cast<std::uint32_t>(ts.ns % 1'000'000'000);
  store_le32(&rec[0], sec);
  store_le32(&rec[4], nsec);
  store_le32(&rec[8], incl);
  store_le32(&rec[12], static_cast<std::uint32_t>(frame.size()));
  if (std::fwrite(rec, 1, sizeof rec, file_.get()) != sizeof rec ||
      std::fwrite(frame.data(), 1, incl, file_.get()) != incl) {
    return make_error("pcap: short write");
  }
  ++records_;
  return {};
}

void PcapWriter::close() { file_.reset(); }

Result<PcapReader> PcapReader::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return make_error("pcap: cannot open '" + path + "' for reading");
  std::uint8_t hdr[24];
  if (std::fread(hdr, 1, sizeof hdr, f) != sizeof hdr) {
    std::fclose(f);
    return make_error("pcap: file shorter than global header");
  }
  PcapReader reader(f);
  const std::uint32_t magic = load_le32(&hdr[0]);
  switch (magic) {
    case kMagicUsec: reader.nanosecond_ = false; reader.swapped_ = false; break;
    case kMagicNsec: reader.nanosecond_ = true; reader.swapped_ = false; break;
    case kMagicUsecSwapped: reader.nanosecond_ = false; reader.swapped_ = true; break;
    case kMagicNsecSwapped: reader.nanosecond_ = true; reader.swapped_ = true; break;
    default: return make_error("pcap: unrecognized magic");
  }
  std::uint32_t snaplen = load_le32(&hdr[16]);
  std::uint32_t link = load_le32(&hdr[20]);
  if (reader.swapped_) {
    snaplen = swap32(snaplen);
    link = swap32(link);
  }
  if (link != kLinkTypeEthernet) return make_error("pcap: only Ethernet linktype supported");
  reader.snaplen_ = snaplen;
  return reader;
}

std::optional<PcapRecord> PcapReader::next() {
  if (!file_) return std::nullopt;
  std::uint8_t rec[16];
  const std::size_t got = std::fread(rec, 1, sizeof rec, file_.get());
  if (got == 0) return std::nullopt;  // clean EOF
  if (got != sizeof rec) {
    truncated_ = true;
    return std::nullopt;
  }
  std::uint32_t sec = load_le32(&rec[0]);
  std::uint32_t frac = load_le32(&rec[4]);
  std::uint32_t incl = load_le32(&rec[8]);
  if (swapped_) {
    sec = swap32(sec);
    frac = swap32(frac);
    incl = swap32(incl);
  }
  if (incl > snaplen_ && snaplen_ != 0) {
    truncated_ = true;  // corrupt length field
    return std::nullopt;
  }
  PcapRecord out;
  out.frame.resize(incl);
  if (incl != 0 && std::fread(out.frame.data(), 1, incl, file_.get()) != incl) {
    truncated_ = true;
    return std::nullopt;
  }
  const std::int64_t frac_ns = nanosecond_ ? frac : std::int64_t{frac} * 1'000;
  out.timestamp = Timestamp{std::int64_t{sec} * 1'000'000'000 + frac_ns};
  return out;
}

}  // namespace ruru
