#include "tsdb/series_index.hpp"

#include <algorithm>

namespace ruru {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

SeriesIndex::SeriesIndex() : slot_fp_(64, 0), slot_sid_(64, kEmptySlot) {}

std::uint64_t SeriesIndex::fingerprint(std::uint32_t measurement_id,
                                       const std::vector<TagIdPair>& tags) {
  std::uint64_t h = splitmix64(0x7275727500000000ull | measurement_id);
  for (const TagIdPair& p : tags) {
    h = splitmix64(h ^ ((static_cast<std::uint64_t>(p.key) << 32) | p.value));
  }
  return h;
}

SeriesId SeriesIndex::probe_locked(std::uint64_t fp, std::uint32_t measurement_id,
                                   const std::vector<TagIdPair>& tags) const {
  const std::size_t mask = slot_fp_.size() - 1;
  for (std::size_t i = fp & mask;; i = (i + 1) & mask) {
    const std::uint32_t sid = slot_sid_[i];
    if (sid == kEmptySlot) return kEmptySlot;
    if (slot_fp_[i] != fp) continue;
    const Meta& m = series_[sid];
    if (m.measurement == measurement_id && m.tags == tags) return sid;
  }
}

void SeriesIndex::grow_locked() {
  std::vector<std::uint64_t> old_fp = std::move(slot_fp_);
  std::vector<std::uint32_t> old_sid = std::move(slot_sid_);
  slot_fp_.assign(old_fp.size() * 2, 0);
  slot_sid_.assign(old_sid.size() * 2, kEmptySlot);
  const std::size_t mask = slot_fp_.size() - 1;
  for (std::size_t i = 0; i < old_sid.size(); ++i) {
    if (old_sid[i] == kEmptySlot) continue;
    std::size_t j = old_fp[i] & mask;
    while (slot_sid_[j] != kEmptySlot) j = (j + 1) & mask;
    slot_fp_[j] = old_fp[i];
    slot_sid_[j] = old_sid[i];
  }
}

SeriesId SeriesIndex::insert_locked(std::uint32_t measurement_id, std::vector<TagIdPair> tags,
                                    std::string canonical) {
  if ((used_ + 1) * 10 > slot_fp_.size() * 7) grow_locked();
  const std::uint64_t fp = fingerprint(measurement_id, tags);
  const std::size_t mask = slot_fp_.size() - 1;
  std::size_t i = fp & mask;
  while (slot_sid_[i] != kEmptySlot) i = (i + 1) & mask;

  const SeriesId sid = static_cast<SeriesId>(series_.size());
  series_.push_back(Meta{measurement_id, fp, std::move(tags), std::move(canonical)});
  slot_fp_[i] = fp;
  slot_sid_[i] = sid;
  ++used_;

  auto it = std::find_if(by_measurement_.begin(), by_measurement_.end(),
                         [&](const auto& e) { return e.first == measurement_id; });
  if (it == by_measurement_.end()) {
    by_measurement_.emplace_back(measurement_id, std::vector<SeriesId>{sid});
  } else {
    it->second.push_back(sid);
  }
  return sid;
}

SeriesId SeriesIndex::resolve(std::string_view measurement, const TagSet& tags) {
  // canonical() also normalizes, so entries() below is key-sorted.
  const std::string& canon = tags.canonical();

  std::unique_lock lock(mu_);
  const std::uint32_t mid = names_.intern(measurement);
  std::vector<TagIdPair> pairs;
  pairs.reserve(tags.entries().size());
  for (const auto& [k, v] : tags.entries()) {
    pairs.push_back(TagIdPair{names_.intern(k), names_.intern(v)});
  }
  const std::uint64_t fp = fingerprint(mid, pairs);
  const SeriesId found = probe_locked(fp, mid, pairs);
  if (found != kEmptySlot) return found;
  return insert_locked(mid, std::move(pairs), canon);
}

SeriesId SeriesIndex::resolve_like(SeriesId src, std::string_view measurement) {
  std::unique_lock lock(mu_);
  const std::uint32_t mid = names_.intern(measurement);
  // Copy before insert_locked: push_back may not invalidate deque
  // references, but self-referencing a container element while moving
  // into it is needless risk.
  std::vector<TagIdPair> pairs = series_[src].tags;
  std::string canon = series_[src].canonical;
  const std::uint64_t fp = fingerprint(mid, pairs);
  const SeriesId found = probe_locked(fp, mid, pairs);
  if (found != kEmptySlot) return found;
  return insert_locked(mid, std::move(pairs), std::move(canon));
}

TagFilter SeriesIndex::make_filter(const TagSet& filter) const {
  TagFilter out;
  out.pairs.reserve(filter.entries().size());
  for (const auto& [k, v] : filter.entries()) {
    const std::uint32_t kid = names_.find(k);
    const std::uint32_t vid = names_.find(v);
    if (kid == kNotFound || vid == kNotFound) {
      out.impossible = true;
      return out;
    }
    out.pairs.push_back(TagIdPair{kid, vid});
  }
  return out;
}

bool SeriesIndex::matches(SeriesId sid, const TagFilter& filter) const {
  if (filter.impossible) return false;
  std::shared_lock lock(mu_);
  const Meta& m = series_[sid];
  for (const TagIdPair& want : filter.pairs) {
    std::uint32_t got = kNotFound;
    for (const TagIdPair& have : m.tags) {
      if (have.key == want.key) {
        got = have.value;  // first value per key, canonical order
        break;
      }
    }
    if (got != want.value) return false;
  }
  return true;
}

std::uint32_t SeriesIndex::tag_value_id(SeriesId sid, std::uint32_t key_id) const {
  std::shared_lock lock(mu_);
  for (const TagIdPair& p : series_[sid].tags) {
    if (p.key == key_id) return p.value;
  }
  return kNotFound;
}

std::uint32_t SeriesIndex::measurement_id(SeriesId sid) const {
  std::shared_lock lock(mu_);
  return series_[sid].measurement;
}

const std::string& SeriesIndex::canonical(SeriesId sid) const {
  std::shared_lock lock(mu_);
  return series_[sid].canonical;
}

void SeriesIndex::series_of(std::uint32_t measurement_id, std::vector<SeriesId>& out) const {
  std::shared_lock lock(mu_);
  for (const auto& [mid, sids] : by_measurement_) {
    if (mid == measurement_id) {
      out.insert(out.end(), sids.begin(), sids.end());
      return;
    }
  }
}

void SeriesIndex::measurements(std::vector<std::uint32_t>& out) const {
  std::shared_lock lock(mu_);
  out.reserve(out.size() + by_measurement_.size());
  for (const auto& [mid, sids] : by_measurement_) out.push_back(mid);
}

std::size_t SeriesIndex::size() const {
  std::shared_lock lock(mu_);
  return series_.size();
}

}  // namespace ruru
