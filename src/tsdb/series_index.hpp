#pragma once
// Series identity on packed interned ids.
//
// A series is (measurement, tag set).  The index interns every
// measurement name, tag key and tag value once (reusing StringInterner,
// the same arena discipline as the geo/AS name tables) and keys series
// by (measurement_id:u32, tag_fingerprint:u64) in a flat open-addressed
// u64 map — no canonical-string rebuilding and no std::map pointer
// chasing on the resolve path, and nothing string-shaped at all on the
// per-point append path (appends carry only a SeriesId).
//
// Tag pairs are stored in the TagSet's canonical (key-sorted) order, so
// "first value for a key" matches the legacy TagSet::get() contract and
// the fingerprint is insertion-order independent.  The canonical string
// is built once per series at creation (cold) and kept for the WAL.
//
// Concurrency: resolve() takes the exclusive lock (new series are rare);
// every read-side helper takes the shared lock.  SeriesId values are
// dense, stable, and never reused.

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "geo/interner.hpp"
#include "tsdb/tsdb.hpp"

namespace ruru {

using SeriesId = std::uint32_t;

struct TagIdPair {
  std::uint32_t key = 0;
  std::uint32_t value = 0;

  friend bool operator==(TagIdPair, TagIdPair) = default;
};

/// A tag filter resolved to interned ids.  `impossible` is set when a
/// filter string was never interned anywhere — no series can match.
struct TagFilter {
  std::vector<TagIdPair> pairs;
  bool impossible = false;
};

class SeriesIndex {
 public:
  SeriesIndex();

  SeriesIndex(const SeriesIndex&) = delete;
  SeriesIndex& operator=(const SeriesIndex&) = delete;

  /// Returns the id for (measurement, tags), creating it if unseen.
  SeriesId resolve(std::string_view measurement, const TagSet& tags);

  /// Like resolve(), but copies the tag identity of an existing series —
  /// the downsample path re-keys a source series under a new measurement
  /// without touching strings.
  SeriesId resolve_like(SeriesId src, std::string_view measurement);

  /// Interner id of a measurement/key/value string; kNotFound if unseen.
  [[nodiscard]] std::uint32_t find_name(std::string_view s) const {
    return names_.find(s);
  }

  [[nodiscard]] TagFilter make_filter(const TagSet& filter) const;

  /// True when every (key,value) in `filter` matches this series (legacy
  /// TagSet::matches semantics: first value per key wins).
  [[nodiscard]] bool matches(SeriesId sid, const TagFilter& filter) const;

  /// Value id for `key_id` on this series; kNotFound when absent.
  [[nodiscard]] std::uint32_t tag_value_id(SeriesId sid, std::uint32_t key_id) const;

  [[nodiscard]] std::string_view name(std::uint32_t id) const { return names_.view(id); }
  [[nodiscard]] std::uint32_t measurement_id(SeriesId sid) const;
  /// Canonical "k1=v1,k2=v2" form (stable storage; valid for the index
  /// lifetime — the WAL writes it per record).
  [[nodiscard]] const std::string& canonical(SeriesId sid) const;

  /// Appends the ids of every series of `measurement_id` to `out`.
  void series_of(std::uint32_t measurement_id, std::vector<SeriesId>& out) const;

  /// Appends every distinct measurement id to `out`.
  void measurements(std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t size() const;

  static constexpr std::uint32_t kNotFound = StringInterner::kNotFound;

 private:
  struct Meta {
    std::uint32_t measurement = 0;
    std::uint64_t fingerprint = 0;
    std::vector<TagIdPair> tags;  ///< canonical (key-sorted) order
    std::string canonical;
  };

  static std::uint64_t fingerprint(std::uint32_t measurement_id,
                                   const std::vector<TagIdPair>& tags);
  SeriesId insert_locked(std::uint32_t measurement_id, std::vector<TagIdPair> tags,
                         std::string canonical);
  [[nodiscard]] SeriesId probe_locked(std::uint64_t fp, std::uint32_t measurement_id,
                                      const std::vector<TagIdPair>& tags) const;
  void grow_locked();

  static constexpr std::uint32_t kEmptySlot = 0xFFFF'FFFFu;

  StringInterner names_;
  mutable std::shared_mutex mu_;
  std::deque<Meta> series_;           ///< SeriesId -> meta (stable storage)
  std::vector<std::uint64_t> slot_fp_;  ///< open addressing: fingerprints
  std::vector<std::uint32_t> slot_sid_;
  std::size_t used_ = 0;
  /// measurement id -> series ids, in creation order.
  std::vector<std::pair<std::uint32_t, std::vector<SeriesId>>> by_measurement_;
};

}  // namespace ruru
