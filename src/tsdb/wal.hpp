#pragma once
// Binary write-ahead log for the TSDB: long-term storage durability
// (InfluxDB's role of surviving restarts).  Append-only; replay rebuilds
// the exact in-memory state.
//
// Record layout (little-endian), one fwrite per record:
//   u32 payload_len | u32 crc32(payload) | payload
//   payload = u16 measurement_len | bytes | u16 tags_len |
//             canonical-tags bytes | i64 time_ns | f64 value
//
// Recovery contract: replay applies records until the first torn or
// corrupt one (short read, implausible length, CRC mismatch, or inner
// lengths that disagree with payload_len) and stops there — everything
// before the damage is applied, nothing after it.  A crash mid-append
// therefore loses at most the record being written.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <atomic>
#include <string>
#include <string_view>

#include "util/result.hpp"
#include "util/time.hpp"

namespace ruru {

class TagSet;
class TimeSeriesDb;
class TsdbEngine;

class Wal {
 public:
  static Result<Wal> create(const std::string& path);

  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;

  /// Primitive append: callers that already hold the canonical
  /// "k1=v1,..." tag form (the engine's series index does) pay no
  /// string building here.  Thread-safe: one buffered fwrite per record.
  void append(std::string_view measurement, std::string_view canonical_tags, Timestamp time,
              double value);

  void append(const std::string& measurement, const TagSet& tags, Timestamp time, double value);

  /// Flush buffered records to the OS.
  void sync();

  [[nodiscard]] std::uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }

  /// Replays `path`. Returns records applied; recovery truncates at the
  /// first torn or corrupt record (crash semantics).
  static Result<std::uint64_t> replay(const std::string& path, TimeSeriesDb& db);
  static Result<std::uint64_t> replay(const std::string& path, TsdbEngine& db);

 private:
  explicit Wal(std::FILE* f) : file_(f, &std::fclose) {}
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  std::atomic<std::uint64_t> records_{0};
};

}  // namespace ruru
