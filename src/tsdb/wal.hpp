#pragma once
// Binary write-ahead log for the TSDB: long-term storage durability
// (InfluxDB's role of surviving restarts).  Append-only; replay rebuilds
// the exact in-memory state.
//
// Record layout (little-endian):
//   u16 measurement_len | bytes | u16 tags_len | canonical-tags bytes |
//   i64 time_ns | f64 value

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/result.hpp"
#include "util/time.hpp"

namespace ruru {

class TagSet;
class TimeSeriesDb;

class Wal {
 public:
  static Result<Wal> create(const std::string& path);

  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;

  void append(const std::string& measurement, const TagSet& tags, Timestamp time, double value);

  /// Flush buffered records to the OS.
  void sync();

  [[nodiscard]] std::uint64_t records() const { return records_; }

  /// Replays `path` into `db`. Returns records applied; a torn final
  /// record is tolerated (crash semantics).
  static Result<std::uint64_t> replay(const std::string& path, TimeSeriesDb& db);

 private:
  explicit Wal(std::FILE* f) : file_(f, &std::fclose) {}
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  std::uint64_t records_ = 0;
};

}  // namespace ruru
