#pragma once
// Gorilla-style compressed time-series chunks.
//
// One chunk holds one series' points over one time partition as a
// bit-packed stream: delta-of-delta timestamps and values encoded either
// as scaled-integer deltas (latency samples are ns-derived decimals, so
// "value * 10^k is a small integer delta" is the common case) or as
// XOR residuals against the previous value (the Gorilla fallback that
// round-trips any bit pattern, NaN payloads included).  Decoding is
// exact: every (timestamp, value) pair comes back bit-identical, which
// is what lets the query engine stay a drop-in oracle match for the
// uncompressed store.
//
// Stream layout (MSB-first bit stream):
//   point 0:  64-bit raw timestamp | 64-bit raw value bits
//   point n:  timestamp, then value
//     timestamp (dod = delta - previous delta, z = zigzag(dod)):
//       '0'                      dod == 0
//       '10'   + 14 bits         z < 2^14
//       '110'  + 28 bits         z < 2^28
//       '1110' + 44 bits         z < 2^44
//       '1111' + 64 bits         anything else (raw zigzag)
//     value:
//       '0'                      bit-identical to previous value
//       '10' + 2-bit scale k + 2-bit width w + {10,20,30,64}[w] bits
//            scaled-integer delta: round(v*10^{0,3,6}[k]) - round(prev*...)
//            (only emitted when both endpoints round-trip exactly)
//       '11' + Gorilla XOR: '0' + meaningful bits in the previous
//            leading/trailing window, or '1' + 5-bit leading-zero count
//            + 6-bit (length-1) + meaningful bits
//
// Chunk metadata (count, min/max timestamp, byte size) lives out of
// band in ChunkWriter / SealedChunk — the stream itself is headerless.
//
// Concurrency: a ChunkWriter is single-writer (the owning engine shard
// serializes appends); SealedChunk is immutable and safe to read from
// any thread without synchronization.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/time.hpp"

namespace ruru {

/// Append-only MSB-first bit sink backed by a byte vector.
class BitWriter {
 public:
  /// Appends the low `n` bits of `bits` (n in [0, 64]).
  void put(std::uint64_t bits, unsigned n);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size_bytes() const { return buf_.size(); }
  void clear() {
    buf_.clear();
    free_bits_ = 0;
  }

 private:
  std::vector<std::uint8_t> buf_;
  unsigned free_bits_ = 0;  ///< unused low bits in buf_.back()
};

/// MSB-first bit source over a byte span (not owning).
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t len) : data_(data), len_bits_(len * 8) {}

  /// Reads `n` bits (n in [0, 64]); returns 0 bits past the end (the
  /// caller bounds iteration by the out-of-band point count).
  std::uint64_t get(unsigned n);

 private:
  const std::uint8_t* data_;
  std::size_t len_bits_;
  std::size_t pos_ = 0;
};

/// An immutable, fully-encoded chunk. Reads need no lock.
struct SealedChunk {
  std::vector<std::uint8_t> bytes;
  std::uint32_t count = 0;
  std::int64_t min_ts = 0;
  std::int64_t max_ts = 0;
};

/// Streaming encoder for one open chunk.
class ChunkWriter {
 public:
  void append(Timestamp ts, double value);

  [[nodiscard]] std::uint32_t count() const { return count_; }
  [[nodiscard]] std::int64_t min_ts() const { return min_ts_; }
  [[nodiscard]] std::int64_t max_ts() const { return max_ts_; }
  [[nodiscard]] std::size_t size_bytes() const { return bits_.size_bytes(); }

  /// Freezes the current contents into an immutable chunk and resets the
  /// writer to empty. Returns nullptr when the writer holds no points.
  std::shared_ptr<const SealedChunk> seal();

  /// Copies the encoded bytes so a reader can decode a point-in-time
  /// snapshot of the open chunk without holding the shard lock during
  /// decode. Returns the point count of the snapshot.
  std::uint32_t snapshot(std::vector<std::uint8_t>& out) const;

  void clear();

 private:
  BitWriter bits_;
  std::uint32_t count_ = 0;
  std::int64_t min_ts_ = 0;
  std::int64_t max_ts_ = 0;
  std::int64_t prev_ts_ = 0;
  std::int64_t prev_delta_ = 0;
  double prev_value_ = 0.0;
  std::uint8_t window_lead_ = 0;   ///< XOR window: leading zeros
  std::uint8_t window_trail_ = 0;  ///< XOR window: trailing zeros
  bool window_valid_ = false;
};

/// Decode iterator over an encoded chunk stream.
class ChunkCursor {
 public:
  ChunkCursor(const std::uint8_t* data, std::size_t len, std::uint32_t count)
      : bits_(data, len), remaining_(count) {}

  explicit ChunkCursor(const SealedChunk& chunk)
      : ChunkCursor(chunk.bytes.data(), chunk.bytes.size(), chunk.count) {}

  /// Decodes the next point; false when the chunk is exhausted.
  bool next(Timestamp& ts, double& value);

 private:
  BitReader bits_;
  std::uint32_t remaining_;
  bool first_ = true;
  std::int64_t prev_ts_ = 0;
  std::int64_t prev_delta_ = 0;
  double prev_value_ = 0.0;
  std::uint8_t window_lead_ = 0;
  std::uint8_t window_trail_ = 0;
};

}  // namespace ruru
