#include "tsdb/query.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "tsdb/wal.hpp"

namespace ruru {

namespace {

/// Exact replica of TimeSeriesDb::summarize.  Sorting first makes the
/// result independent of collection order, which is what lets the
/// compressed engine match the uncompressed oracle bit for bit.
AggregateResult summarize(std::vector<double>& values) {
  AggregateResult r;
  if (values.empty()) return r;
  std::sort(values.begin(), values.end());
  r.count = values.size();
  r.min = values.front();
  r.max = values.back();
  double sum = 0.0;
  for (const double v : values) sum += v;
  r.mean = sum / static_cast<double>(values.size());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 < values.size()) return values[i] * (1.0 - frac) + values[i + 1] * frac;
    return values[i];
  };
  r.median = quantile(0.5);
  r.p95 = quantile(0.95);
  r.p99 = quantile(0.99);
  return r;
}

double pick_stat(const AggregateResult& r, const std::string& stat) {
  if (stat == "median") return r.median;
  if (stat == "min") return r.min;
  if (stat == "max") return r.max;
  if (stat == "p99") return r.p99;
  if (stat == "count") return static_cast<double>(r.count);
  return r.mean;
}

/// Floor division for w > 0 (window/partition indices of negative times).
constexpr std::int64_t floor_div(std::int64_t x, std::int64_t w) {
  return x >= 0 ? x / w : (x - w + 1) / w;
}

constexpr Timestamp kScanMin{std::numeric_limits<std::int64_t>::min()};
constexpr Timestamp kScanMax{std::numeric_limits<std::int64_t>::max()};

}  // namespace

TsdbEngine::TsdbEngine(TsdbOptions options) : options_(options) {
  const std::size_t want = std::clamp<std::size_t>(options_.shards, 1, 256);
  std::size_t n = 1;
  unsigned bits = 0;
  while (n < want) {
    n <<= 1;
    ++bits;
  }
  options_.shards = n;
  if (options_.chunk_points == 0) options_.chunk_points = 1;
  shard_shift_ = 32 - bits;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

TsdbEngine::SeriesStore& TsdbEngine::Shard::find_or_create(SeriesId sid) {
  if (sid >= stores.size()) stores.resize(sid + 1);
  if (stores[sid] == nullptr) stores[sid] = std::make_unique<SeriesStore>();
  return *stores[sid];
}

void TsdbEngine::append(SeriesId sid, Timestamp time, double value) {
  if (sid == SeriesIndex::kNotFound) return;
  Shard& sh = shard_of(sid);
  {
    std::lock_guard lock(sh.mu);
    SeriesStore& st = sh.find_or_create(sid);
    const std::int64_t part = options_.partition.ns;
    if (st.open.count() == 0) {
      st.partition_start = part > 0 ? floor_div(time.ns, part) * part : 0;
    } else if (part > 0 &&
               (time.ns < st.partition_start || time.ns - st.partition_start >= part)) {
      if (auto sealed = st.open.seal()) st.sealed.push_back(std::move(sealed));
      st.partition_start = floor_div(time.ns, part) * part;
    }
    st.open.append(time, value);
    if (st.open.count() >= options_.chunk_points) {
      if (auto sealed = st.open.seal()) st.sealed.push_back(std::move(sealed));
    }
  }
  points_.fetch_add(1, std::memory_order_relaxed);
  // WAL mirror happens outside the shard lock; the index's name and
  // canonical-tag storage is stable for the engine's lifetime.
  if (wal_ != nullptr) {
    wal_->append(index_.name(index_.measurement_id(sid)), index_.canonical(sid), time, value);
  }
}

void TsdbEngine::snapshot_series(SeriesId sid, SeriesSnapshot& out) const {
  out.sealed.clear();
  out.open_bytes.clear();
  out.open_count = 0;
  const Shard& sh = shard_of(sid);
  std::lock_guard lock(sh.mu);
  const SeriesStore* st = sh.find(sid);
  if (st == nullptr) return;
  out.sealed.assign(st->sealed.begin(), st->sealed.end());
  out.open_count = st->open.snapshot(out.open_bytes);
  out.open_min = st->open.min_ts();
  out.open_max = st->open.max_ts();
}

template <typename Fn>
void TsdbEngine::scan(const SeriesSnapshot& snap, Timestamp t0, Timestamp t1, Fn&& fn) {
  Timestamp ts;
  double value = 0.0;
  for (const auto& chunk : snap.sealed) {
    if (chunk->count == 0 || chunk->max_ts < t0.ns || chunk->min_ts >= t1.ns) continue;
    ChunkCursor cursor(*chunk);
    while (cursor.next(ts, value)) {
      if (ts.ns >= t0.ns && ts.ns < t1.ns) fn(ts, value);
    }
  }
  if (snap.open_count > 0 && snap.open_max >= t0.ns && snap.open_min < t1.ns) {
    ChunkCursor cursor(snap.open_bytes.data(), snap.open_bytes.size(), snap.open_count);
    while (cursor.next(ts, value)) {
      if (ts.ns >= t0.ns && ts.ns < t1.ns) fn(ts, value);
    }
  }
}

bool TsdbEngine::matching_series(const std::string& measurement, const TagSet& filter,
                                 std::vector<SeriesId>& out) const {
  const std::uint32_t mid = index_.find_name(measurement);
  if (mid == SeriesIndex::kNotFound) return false;
  const TagFilter tf = index_.make_filter(filter);
  if (tf.impossible) return false;
  std::vector<SeriesId> all;
  index_.series_of(mid, all);
  out.reserve(all.size());
  for (const SeriesId sid : all) {
    if (index_.matches(sid, tf)) out.push_back(sid);
  }
  return true;
}

AggregateResult TsdbEngine::aggregate(const std::string& measurement, const TagSet& filter,
                                      Timestamp t0, Timestamp t1) const {
  std::vector<double> values;
  std::vector<SeriesId> sids;
  if (matching_series(measurement, filter, sids)) {
    SeriesSnapshot snap;
    for (const SeriesId sid : sids) {
      snapshot_series(sid, snap);
      scan(snap, t0, t1, [&](Timestamp, double v) { values.push_back(v); });
    }
  }
  return summarize(values);
}

std::vector<WindowResult> TsdbEngine::window_aggregate(const std::string& measurement,
                                                       const TagSet& filter, Timestamp t0,
                                                       Timestamp t1, Duration step) const {
  std::vector<WindowResult> out;
  if (step.ns <= 0 || t1.ns <= t0.ns) return out;
  const auto nwindows = static_cast<std::size_t>((t1.ns - t0.ns + step.ns - 1) / step.ns);
  std::vector<std::vector<double>> buckets(nwindows);
  std::vector<SeriesId> sids;
  if (matching_series(measurement, filter, sids)) {
    SeriesSnapshot snap;
    for (const SeriesId sid : sids) {
      snapshot_series(sid, snap);
      scan(snap, t0, t1, [&](Timestamp ts, double v) {
        buckets[static_cast<std::size_t>((ts.ns - t0.ns) / step.ns)].push_back(v);
      });
    }
  }
  for (std::size_t i = 0; i < nwindows; ++i) {
    if (buckets[i].empty()) continue;
    WindowResult w;
    w.window_start = Timestamp{t0.ns + static_cast<std::int64_t>(i) * step.ns};
    w.stats = summarize(buckets[i]);
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<GroupResult> TsdbEngine::group_by(const std::string& measurement,
                                              const std::string& tag_key, const TagSet& filter,
                                              Timestamp t0, Timestamp t1) const {
  // std::map keys keep the legacy ordering: groups sorted by tag value.
  std::map<std::string, std::vector<double>> groups;
  std::vector<SeriesId> sids;
  const std::uint32_t key_id = index_.find_name(tag_key);
  if (key_id != SeriesIndex::kNotFound && matching_series(measurement, filter, sids)) {
    SeriesSnapshot snap;
    for (const SeriesId sid : sids) {
      const std::uint32_t vid = index_.tag_value_id(sid, key_id);
      if (vid == SeriesIndex::kNotFound) continue;
      snapshot_series(sid, snap);
      // The legacy store creates the (possibly empty) group for every
      // resident series; series whose points were fully dropped by
      // retention are not resident there, so skip empty snapshots.
      if (snap.sealed.empty() && snap.open_count == 0) continue;
      auto& values = groups[std::string(index_.name(vid))];
      scan(snap, t0, t1, [&](Timestamp, double v) { values.push_back(v); });
    }
  }
  std::vector<GroupResult> out;
  out.reserve(groups.size());
  for (auto& [value, samples] : groups) {
    GroupResult g;
    g.tag_value = value;
    g.stats = summarize(samples);
    out.push_back(std::move(g));
  }
  return out;
}

std::size_t TsdbEngine::downsample(const std::string& src, const std::string& dst,
                                   Duration window, const std::string& stat) {
  if (window.ns <= 0 || src == dst) return 0;
  const std::uint32_t mid = index_.find_name(src);
  if (mid == SeriesIndex::kNotFound) return 0;
  std::vector<SeriesId> sids;
  index_.series_of(mid, sids);

  struct Out {
    SeriesId src_sid;
    Timestamp time;
    double value;
  };
  std::vector<Out> pending;
  SeriesSnapshot snap;
  for (const SeriesId sid : sids) {
    snapshot_series(sid, snap);
    std::map<std::int64_t, std::vector<double>> buckets;
    scan(snap, kScanMin, kScanMax,
         [&](Timestamp ts, double v) { buckets[floor_div(ts.ns, window.ns)].push_back(v); });
    for (auto& [idx, values] : buckets) {
      const AggregateResult r = summarize(values);
      pending.push_back(Out{sid, Timestamp{idx * window.ns}, pick_stat(r, stat)});
    }
  }
  // resolve_like re-keys the source tags under `dst` without strings.
  for (const auto& o : pending) append(index_.resolve_like(o.src_sid, dst), o.time, o.value);
  return pending.size();
}

std::size_t TsdbEngine::enforce_retention(Timestamp now, Duration horizon,
                                          const std::vector<std::string>& only_measurements) {
  const Timestamp cutoff = now - horizon;
  std::vector<std::uint32_t> only_mids;
  if (!only_measurements.empty()) {
    only_mids.reserve(only_measurements.size());
    for (const std::string& m : only_measurements) {
      const std::uint32_t mid = index_.find_name(m);
      if (mid != SeriesIndex::kNotFound) only_mids.push_back(mid);
    }
    if (only_mids.empty()) return 0;
  }

  std::size_t dropped = 0;
  Timestamp ts;
  double value = 0.0;
  for (auto& shard_ptr : shards_) {
    Shard& sh = *shard_ptr;
    std::lock_guard lock(sh.mu);
    for (SeriesId sid = 0; sid < sh.stores.size(); ++sid) {
      SeriesStore* st = sh.stores[sid].get();
      if (st == nullptr) continue;
      if (!only_mids.empty()) {
        const std::uint32_t mid = index_.measurement_id(sid);
        if (std::find(only_mids.begin(), only_mids.end(), mid) == only_mids.end()) continue;
      }

      // Whole sealed chunks below the cutoff drop in O(1); straddling
      // chunks are decoded, filtered, and resealed.
      std::vector<std::shared_ptr<const SealedChunk>> kept;
      kept.reserve(st->sealed.size());
      for (auto& chunk : st->sealed) {
        if (chunk->max_ts < cutoff.ns) {
          dropped += chunk->count;
          continue;
        }
        if (chunk->min_ts >= cutoff.ns) {
          kept.push_back(std::move(chunk));
          continue;
        }
        ChunkWriter rewrite;
        ChunkCursor cursor(*chunk);
        while (cursor.next(ts, value)) {
          if (ts.ns >= cutoff.ns) {
            rewrite.append(ts, value);
          } else {
            ++dropped;
          }
        }
        if (auto resealed = rewrite.seal()) kept.push_back(std::move(resealed));
      }
      st->sealed = std::move(kept);

      if (st->open.count() > 0 && st->open.min_ts() < cutoff.ns) {
        std::vector<std::uint8_t> bytes;
        const std::uint32_t n = st->open.snapshot(bytes);
        st->open.clear();
        ChunkCursor cursor(bytes.data(), bytes.size(), n);
        bool first = true;
        while (cursor.next(ts, value)) {
          if (ts.ns < cutoff.ns) {
            ++dropped;
            continue;
          }
          if (first && options_.partition.ns > 0) {
            st->partition_start =
                floor_div(ts.ns, options_.partition.ns) * options_.partition.ns;
          }
          first = false;
          st->open.append(ts, value);
        }
      }

      if (st->open.count() == 0 && st->sealed.empty()) sh.stores[sid].reset();
    }
  }
  return dropped;
}

std::size_t TsdbEngine::series_count() const {
  std::size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& sh = *shard_ptr;
    std::lock_guard lock(sh.mu);
    for (const auto& store : sh.stores) {
      if (store != nullptr) ++n;
    }
  }
  return n;
}

TsdbEngine::StorageStats TsdbEngine::storage_stats() const {
  StorageStats s;
  for (const auto& shard_ptr : shards_) {
    const Shard& sh = *shard_ptr;
    std::lock_guard lock(sh.mu);
    for (const auto& store : sh.stores) {
      if (store == nullptr) continue;
      for (const auto& chunk : store->sealed) {
        s.points += chunk->count;
        s.bytes += chunk->bytes.size();
        ++s.sealed_chunks;
      }
      if (store->open.count() > 0) {
        s.points += store->open.count();
        s.bytes += store->open.size_bytes();
        ++s.open_chunks;
      }
    }
  }
  return s;
}

}  // namespace ruru
