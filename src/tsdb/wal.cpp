#include "tsdb/wal.hpp"

#include <cstring>
#include <vector>

#include "tsdb/tsdb.hpp"
#include "util/byte_order.hpp"

namespace ruru {

Result<Wal> Wal::create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return make_error("wal: cannot open '" + path + "'");
  return Wal(f);
}

void Wal::append(const std::string& measurement, const TagSet& tags, Timestamp time,
                 double value) {
  if (!file_) return;
  const std::string canon = tags.canonical();
  std::vector<std::uint8_t> rec(2 + measurement.size() + 2 + canon.size() + 8 + 8);
  std::uint8_t* p = rec.data();
  store_le16(p, static_cast<std::uint16_t>(measurement.size()));
  std::memcpy(p + 2, measurement.data(), measurement.size());
  p += 2 + measurement.size();
  store_le16(p, static_cast<std::uint16_t>(canon.size()));
  std::memcpy(p + 2, canon.data(), canon.size());
  p += 2 + canon.size();
  const auto t = static_cast<std::uint64_t>(time.ns);
  std::memcpy(p, &t, 8);
  std::memcpy(p + 8, &value, 8);
  std::fwrite(rec.data(), 1, rec.size(), file_.get());
  ++records_;
}

void Wal::sync() {
  if (file_) std::fflush(file_.get());
}

namespace {

/// Parses the canonical "k1=v1,k2=v2" form back into a TagSet.
TagSet parse_tags(const std::string& canon) {
  TagSet tags;
  std::size_t pos = 0;
  while (pos < canon.size()) {
    const std::size_t comma = canon.find(',', pos);
    const std::size_t end = comma == std::string::npos ? canon.size() : comma;
    const std::size_t eq = canon.find('=', pos);
    if (eq != std::string::npos && eq < end) {
      tags.add(canon.substr(pos, eq - pos), canon.substr(eq + 1, end - eq - 1));
    }
    pos = end + 1;
  }
  return tags;
}

}  // namespace

Result<std::uint64_t> Wal::replay(const std::string& path, TimeSeriesDb& db) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) return make_error("wal: cannot open '" + path + "' for replay");

  std::uint64_t applied = 0;
  while (true) {
    std::uint8_t len_buf[2];
    if (std::fread(len_buf, 1, 2, f.get()) != 2) break;  // clean EOF
    const std::uint16_t mlen = load_le16(len_buf);
    std::string measurement(mlen, '\0');
    if (mlen != 0 && std::fread(measurement.data(), 1, mlen, f.get()) != mlen) break;  // torn
    if (std::fread(len_buf, 1, 2, f.get()) != 2) break;
    const std::uint16_t tlen = load_le16(len_buf);
    std::string canon(tlen, '\0');
    if (tlen != 0 && std::fread(canon.data(), 1, tlen, f.get()) != tlen) break;
    std::uint8_t tail[16];
    if (std::fread(tail, 1, 16, f.get()) != 16) break;
    std::uint64_t t;
    double value;
    std::memcpy(&t, tail, 8);
    std::memcpy(&value, tail + 8, 8);
    db.write(measurement, parse_tags(canon), Timestamp{static_cast<std::int64_t>(t)}, value);
    ++applied;
  }
  return applied;
}

}  // namespace ruru
