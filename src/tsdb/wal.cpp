#include "tsdb/wal.hpp"

#include <cstring>
#include <vector>

#include "tsdb/query.hpp"
#include "tsdb/tsdb.hpp"
#include "util/byte_order.hpp"
#include "util/crc32.hpp"

namespace ruru {

namespace {

constexpr std::size_t kHeaderBytes = 8;                      // len + crc
constexpr std::size_t kFixedTail = 16;                       // i64 + f64
constexpr std::size_t kMinPayload = 2 + 2 + kFixedTail;      // empty strings
constexpr std::size_t kMaxPayload = 2 + 0xFFFF + 2 + 0xFFFF + kFixedTail;

}  // namespace

Result<Wal> Wal::create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return make_error("wal: cannot open '" + path + "'");
  return Wal(f);
}

Wal::Wal(Wal&& other) noexcept
    : file_(std::move(other.file_)),
      records_(other.records_.load(std::memory_order_relaxed)) {}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    file_ = std::move(other.file_);
    records_.store(other.records_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  return *this;
}

void Wal::append(std::string_view measurement, std::string_view canonical_tags, Timestamp time,
                 double value) {
  if (!file_) return;
  const std::size_t payload = 2 + measurement.size() + 2 + canonical_tags.size() + kFixedTail;
  std::vector<std::uint8_t> rec(kHeaderBytes + payload);
  std::uint8_t* p = rec.data() + kHeaderBytes;
  store_le16(p, static_cast<std::uint16_t>(measurement.size()));
  std::memcpy(p + 2, measurement.data(), measurement.size());
  p += 2 + measurement.size();
  store_le16(p, static_cast<std::uint16_t>(canonical_tags.size()));
  std::memcpy(p + 2, canonical_tags.data(), canonical_tags.size());
  p += 2 + canonical_tags.size();
  const auto t = static_cast<std::uint64_t>(time.ns);
  std::memcpy(p, &t, 8);
  std::memcpy(p + 8, &value, 8);

  store_le32(rec.data(), static_cast<std::uint32_t>(payload));
  store_le32(rec.data() + 4, crc32(rec.data() + kHeaderBytes, payload));
  // One fwrite per record: stdio locks the stream, so concurrent
  // appenders (engine shards) never interleave record bytes.
  std::fwrite(rec.data(), 1, rec.size(), file_.get());
  records_.fetch_add(1, std::memory_order_relaxed);
}

void Wal::append(const std::string& measurement, const TagSet& tags, Timestamp time,
                 double value) {
  append(std::string_view(measurement), std::string_view(tags.canonical()), time, value);
}

void Wal::sync() {
  if (file_) std::fflush(file_.get());
}

namespace {

/// Parses the canonical "k1=v1,k2=v2" form back into a TagSet.
TagSet parse_tags(std::string_view canon) {
  TagSet tags;
  std::size_t pos = 0;
  while (pos < canon.size()) {
    const std::size_t comma = canon.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? canon.size() : comma;
    const std::size_t eq = canon.find('=', pos);
    if (eq != std::string_view::npos && eq < end) {
      tags.add(std::string(canon.substr(pos, eq - pos)),
               std::string(canon.substr(eq + 1, end - eq - 1)));
    }
    pos = end + 1;
  }
  return tags;
}

/// Shared recovery loop: applies clean records, stops at the first torn
/// or corrupt one.  `Db` is anything with the legacy write() signature.
template <typename Db>
Result<std::uint64_t> replay_into(const std::string& path, Db& db) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) return make_error("wal: cannot open '" + path + "' for replay");

  std::uint64_t applied = 0;
  std::vector<std::uint8_t> payload;
  while (true) {
    std::uint8_t header[kHeaderBytes];
    if (std::fread(header, 1, kHeaderBytes, f.get()) != kHeaderBytes) break;  // EOF / torn
    const std::uint32_t len = load_le32(header);
    const std::uint32_t want_crc = load_le32(header + 4);
    if (len < kMinPayload || len > kMaxPayload) break;  // corrupt length
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f.get()) != len) break;  // torn
    if (crc32(payload.data(), len) != want_crc) break;              // corrupt

    const std::uint16_t mlen = load_le16(payload.data());
    if (std::size_t{2} + mlen + 2 > len) break;
    const std::uint16_t tlen = load_le16(payload.data() + 2 + mlen);
    if (std::size_t{2} + mlen + 2 + tlen + kFixedTail != len) break;  // inner disagreement

    const auto* m = reinterpret_cast<const char*>(payload.data() + 2);
    const auto* c = reinterpret_cast<const char*>(payload.data() + 2 + mlen + 2);
    std::uint64_t t;
    double value;
    std::memcpy(&t, payload.data() + len - kFixedTail, 8);
    std::memcpy(&value, payload.data() + len - 8, 8);
    db.write(std::string(m, mlen), parse_tags(std::string_view(c, tlen)),
             Timestamp{static_cast<std::int64_t>(t)}, value);
    ++applied;
  }
  return applied;
}

}  // namespace

Result<std::uint64_t> Wal::replay(const std::string& path, TimeSeriesDb& db) {
  return replay_into(path, db);
}

Result<std::uint64_t> Wal::replay(const std::string& path, TsdbEngine& db) {
  return replay_into(path, db);
}

}  // namespace ruru
