#pragma once
// Tagged time-series store (the InfluxDB role in the paper's pipeline).
//
// Data model mirrors what the Grafana dashboards need: a measurement
// name, a small set of tag key/values (src_city, dst_city, src_as, ...),
// and timestamped float values.  Queries compute min / max / mean /
// median (+p95/p99) over a time range — the exact statistics §2 lists —
// optionally grouped by one tag or bucketed into fixed windows.
//
// Thread-safe: one mutex around the series map (the ingest path is a
// single writer in practice; queries are rare and short).

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ruru {

/// Sorted key=value tags; the series identity is (measurement, tags).
class TagSet {
 public:
  TagSet() = default;

  TagSet& add(std::string key, std::string value) {
    tags_.emplace_back(std::move(key), std::move(value));
    normalized_ = false;
    canonical_valid_ = false;
    return *this;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Canonical "k1=v1,k2=v2" form (sorted by key).  Built once and
  /// cached; repeat calls (the per-point legacy write path) return the
  /// cached string instead of reallocating it.
  [[nodiscard]] const std::string& canonical() const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& entries() const {
    return tags_;
  }

  /// True when every (key,value) in `filter` appears in this set.
  [[nodiscard]] bool matches(const TagSet& filter) const;

 private:
  void normalize() const;
  mutable std::vector<std::pair<std::string, std::string>> tags_;
  mutable std::string canonical_;
  mutable bool normalized_ = true;
  mutable bool canonical_valid_ = false;
};

struct DataPoint {
  Timestamp time;
  double value = 0.0;
};

struct AggregateResult {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct WindowResult {
  Timestamp window_start;
  AggregateResult stats;
};

struct GroupResult {
  std::string tag_value;
  AggregateResult stats;
};

class Wal;  // forward; see wal.hpp

class TimeSeriesDb {
 public:
  TimeSeriesDb() = default;

  /// Attach a write-ahead log: every write() is appended to it.
  void attach_wal(Wal* wal) { wal_ = wal; }

  void write(const std::string& measurement, const TagSet& tags, Timestamp time, double value);

  /// Stats over [t0, t1) for points whose tags match `filter`.
  [[nodiscard]] AggregateResult aggregate(const std::string& measurement, const TagSet& filter,
                                          Timestamp t0, Timestamp t1) const;

  /// Fixed-width windows over [t0, t1); empty windows are omitted.
  [[nodiscard]] std::vector<WindowResult> window_aggregate(const std::string& measurement,
                                                           const TagSet& filter, Timestamp t0,
                                                           Timestamp t1, Duration step) const;

  /// Group matching series by the value of `tag_key` ("indexing data on
  /// geo-location and AS information").
  [[nodiscard]] std::vector<GroupResult> group_by(const std::string& measurement,
                                                  const std::string& tag_key,
                                                  const TagSet& filter, Timestamp t0,
                                                  Timestamp t1) const;

  /// Drops all points older than `horizon` before `now`. Returns points
  /// dropped. When `only_measurements` is non-empty, other measurements
  /// are untouched (the keep-downsampled-drop-raw pattern).
  std::size_t enforce_retention(Timestamp now, Duration horizon,
                                const std::vector<std::string>& only_measurements = {});

  /// Continuous-query role: aggregates `src` into `window`-wide buckets
  /// per series (tags preserved) and writes `stat` ("mean"|"median"|
  /// "min"|"max"|"count"|"p99") of each bucket into measurement `dst`
  /// at the bucket start time. Typical use: keep raw samples short-term
  /// (enforce_retention) and 1-minute medians long-term. Returns points
  /// written.
  std::size_t downsample(const std::string& src, const std::string& dst, Duration window,
                         const std::string& stat = "mean");

  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::uint64_t points_written() const;

 private:
  struct Series {
    TagSet tags;
    std::vector<DataPoint> points;  // append-mostly, time-ordered-ish
    bool sorted = true;
  };

  static void collect(const Series& s, Timestamp t0, Timestamp t1, std::vector<double>& out);
  static AggregateResult summarize(std::vector<double>& values);

  mutable std::mutex mu_;
  // measurement -> canonical tags -> series
  std::map<std::string, std::map<std::string, Series>> data_;
  std::uint64_t points_ = 0;
  Wal* wal_ = nullptr;
};

}  // namespace ruru
