#include "tsdb/chunk.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace ruru {

namespace {

constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

// Wrap-safe i64 subtraction (timestamps are arbitrary; the fuzz suite
// feeds INT64_MIN/MAX neighbours).
constexpr std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
}

constexpr std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
}

constexpr double kScales[3] = {1.0, 1e3, 1e6};
// llrint is exact and defined for |x| < 2^63; stay well inside, and
// inside the range where doubles still resolve the scaled integer.
constexpr double kScaledLimit = 9.0e15;

constexpr unsigned kDeltaWidths[4] = {10, 20, 30, 64};

/// True when `v` survives value -> round(v*scale) -> double round-trip
/// bit-for-bit (rejects NaN/inf, -0.0, and sub-scale dust).
bool scaled_exact(double v, double scale, std::int64_t& out) {
  if (!std::isfinite(v)) return false;
  const double scaled = v * scale;
  if (!(std::fabs(scaled) < kScaledLimit)) return false;
  const std::int64_t i = std::llrint(scaled);
  if (std::bit_cast<std::uint64_t>(static_cast<double>(i) / scale) !=
      std::bit_cast<std::uint64_t>(v)) {
    return false;
  }
  out = i;
  return true;
}

/// The reference point only needs a defined (not lossless) scaling: the
/// decoder recomputes the identical integer from the identical previous
/// value, so the delta cancels any rounding.
bool scaled_ref(double v, double scale, std::int64_t& out) {
  if (!std::isfinite(v)) return false;
  const double scaled = v * scale;
  if (!(std::fabs(scaled) < kScaledLimit)) return false;
  out = std::llrint(scaled);
  return true;
}

}  // namespace

void BitWriter::put(std::uint64_t bits, unsigned n) {
  while (n > 0) {
    if (free_bits_ == 0) {
      buf_.push_back(0);
      free_bits_ = 8;
    }
    const unsigned take = n < free_bits_ ? n : free_bits_;
    const unsigned shift = n - take;
    const std::uint64_t chunk = (shift < 64 ? bits >> shift : 0) & ((1ull << take) - 1);
    buf_.back() = static_cast<std::uint8_t>(buf_.back() |
                                            (chunk << (free_bits_ - take)));
    free_bits_ -= take;
    n -= take;
  }
}

std::uint64_t BitReader::get(unsigned n) {
  std::uint64_t out = 0;
  while (n > 0) {
    if (pos_ >= len_bits_) return n < 64 ? out << n : 0;  // past the end: zero-fill
    const unsigned bit_in_byte = static_cast<unsigned>(pos_ & 7);
    const unsigned avail = 8 - bit_in_byte;
    const unsigned take = n < avail ? n : avail;
    const std::uint8_t byte = data_[pos_ >> 3];
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(byte) >> (avail - take)) & ((1ull << take) - 1);
    out = (take < 64 ? out << take : 0) | chunk;
    pos_ += take;
    n -= take;
  }
  return out;
}

void ChunkWriter::append(Timestamp ts, double value) {
  const std::int64_t t = ts.ns;
  if (count_ == 0) {
    bits_.put(static_cast<std::uint64_t>(t), 64);
    bits_.put(std::bit_cast<std::uint64_t>(value), 64);
    min_ts_ = max_ts_ = t;
    prev_ts_ = t;
    prev_delta_ = 0;
    prev_value_ = value;
    window_valid_ = false;
    count_ = 1;
    return;
  }

  // Timestamp: delta-of-delta with width-bucketed zigzag.
  const std::int64_t delta = wrap_sub(t, prev_ts_);
  const std::int64_t dod = wrap_sub(delta, prev_delta_);
  if (dod == 0) {
    bits_.put(0, 1);
  } else {
    const std::uint64_t z = zigzag(dod);
    if (z < (1ull << 14)) {
      bits_.put(0b10, 2);
      bits_.put(z, 14);
    } else if (z < (1ull << 28)) {
      bits_.put(0b110, 3);
      bits_.put(z, 28);
    } else if (z < (1ull << 44)) {
      bits_.put(0b1110, 4);
      bits_.put(z, 44);
    } else {
      bits_.put(0b1111, 4);
      bits_.put(z, 64);
    }
  }
  prev_delta_ = delta;
  prev_ts_ = t;
  if (t < min_ts_) min_ts_ = t;
  if (t > max_ts_) max_ts_ = t;

  // Value.
  const std::uint64_t vbits = std::bit_cast<std::uint64_t>(value);
  const std::uint64_t pbits = std::bit_cast<std::uint64_t>(prev_value_);
  if (vbits == pbits) {
    bits_.put(0, 1);
  } else {
    // Scaled-integer mode: smallest power-of-1000 scale at which the new
    // value round-trips exactly and the previous value scales safely.
    bool done = false;
    for (unsigned k = 0; k < 3 && !done; ++k) {
      std::int64_t cur = 0;
      std::int64_t ref = 0;
      if (!scaled_exact(value, kScales[k], cur)) continue;
      if (!scaled_ref(prev_value_, kScales[k], ref)) continue;
      const std::uint64_t z = zigzag(wrap_sub(cur, ref));
      unsigned w = 3;
      for (unsigned i = 0; i < 3; ++i) {
        if (z < (1ull << kDeltaWidths[i])) {
          w = i;
          break;
        }
      }
      bits_.put(0b10, 2);
      bits_.put(k, 2);
      bits_.put(w, 2);
      bits_.put(z, kDeltaWidths[w]);
      done = true;
    }
    if (!done) {
      // Gorilla XOR fallback: exact for every bit pattern.
      const std::uint64_t x = vbits ^ pbits;  // non-zero here
      bits_.put(0b11, 2);
      unsigned lead = static_cast<unsigned>(std::countl_zero(x));
      const unsigned trail = static_cast<unsigned>(std::countr_zero(x));
      if (lead > 31) lead = 31;
      if (window_valid_ && lead >= window_lead_ && trail >= window_trail_) {
        bits_.put(0, 1);
        const unsigned mlen = 64 - window_lead_ - window_trail_;
        bits_.put(x >> window_trail_, mlen);
      } else {
        const unsigned mlen = 64 - lead - trail;
        bits_.put(1, 1);
        bits_.put(lead, 5);
        bits_.put(mlen - 1, 6);
        bits_.put(x >> trail, mlen);
        window_lead_ = static_cast<std::uint8_t>(lead);
        window_trail_ = static_cast<std::uint8_t>(trail);
        window_valid_ = true;
      }
    }
  }
  prev_value_ = value;
  ++count_;
}

std::shared_ptr<const SealedChunk> ChunkWriter::seal() {
  if (count_ == 0) return nullptr;
  auto chunk = std::make_shared<SealedChunk>();
  chunk->bytes = bits_.bytes();  // copy, then reset below
  chunk->count = count_;
  chunk->min_ts = min_ts_;
  chunk->max_ts = max_ts_;
  clear();
  return chunk;
}

std::uint32_t ChunkWriter::snapshot(std::vector<std::uint8_t>& out) const {
  out.assign(bits_.bytes().begin(), bits_.bytes().end());
  return count_;
}

void ChunkWriter::clear() {
  bits_.clear();
  count_ = 0;
  min_ts_ = max_ts_ = 0;
  prev_ts_ = prev_delta_ = 0;
  prev_value_ = 0.0;
  window_valid_ = false;
}

bool ChunkCursor::next(Timestamp& ts, double& value) {
  if (remaining_ == 0) return false;
  --remaining_;

  if (first_) {
    first_ = false;
    prev_ts_ = static_cast<std::int64_t>(bits_.get(64));
    prev_value_ = std::bit_cast<double>(bits_.get(64));
    prev_delta_ = 0;
    ts = Timestamp{prev_ts_};
    value = prev_value_;
    return true;
  }

  // Timestamp.
  if (bits_.get(1) != 0) {
    unsigned width = 14;
    if (bits_.get(1) != 0) {
      width = 28;
      if (bits_.get(1) != 0) {
        width = bits_.get(1) != 0 ? 64 : 44;
      }
    }
    prev_delta_ = wrap_add(prev_delta_, unzigzag(bits_.get(width)));
  }
  prev_ts_ = wrap_add(prev_ts_, prev_delta_);
  ts = Timestamp{prev_ts_};

  // Value.
  if (bits_.get(1) == 0) {
    value = prev_value_;
    return true;
  }
  if (bits_.get(1) == 0) {
    // Scaled-integer delta.
    const unsigned k = static_cast<unsigned>(bits_.get(2));
    const unsigned w = static_cast<unsigned>(bits_.get(2));
    const std::int64_t delta = unzigzag(bits_.get(kDeltaWidths[w]));
    const double scale = kScales[k < 3 ? k : 2];
    const std::int64_t ref = std::llrint(prev_value_ * scale);
    value = static_cast<double>(wrap_add(ref, delta)) / scale;
  } else {
    // XOR.
    std::uint64_t x;
    if (bits_.get(1) == 0) {
      const unsigned mlen = 64 - window_lead_ - window_trail_;
      x = bits_.get(mlen) << window_trail_;
    } else {
      const unsigned lead = static_cast<unsigned>(bits_.get(5));
      const unsigned mlen = static_cast<unsigned>(bits_.get(6)) + 1;
      const unsigned trail = 64 - lead - mlen;
      x = bits_.get(mlen) << trail;
      window_lead_ = static_cast<std::uint8_t>(lead);
      window_trail_ = static_cast<std::uint8_t>(trail);
    }
    value = std::bit_cast<double>(std::bit_cast<std::uint64_t>(prev_value_) ^ x);
  }
  prev_value_ = value;
  return true;
}

}  // namespace ruru
