#include "tsdb/tsdb.hpp"

#include <algorithm>
#include <cmath>

#include "tsdb/wal.hpp"

namespace ruru {

std::optional<std::string> TagSet::get(const std::string& key) const {
  for (const auto& [k, v] : tags_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

void TagSet::normalize() const {
  if (normalized_) return;
  std::sort(tags_.begin(), tags_.end());
  normalized_ = true;
}

const std::string& TagSet::canonical() const {
  if (canonical_valid_) return canonical_;
  normalize();
  canonical_.clear();
  for (const auto& [k, v] : tags_) {
    if (!canonical_.empty()) canonical_.push_back(',');
    canonical_ += k;
    canonical_.push_back('=');
    canonical_ += v;
  }
  canonical_valid_ = true;
  return canonical_;
}

bool TagSet::matches(const TagSet& filter) const {
  for (const auto& [k, v] : filter.tags_) {
    const auto mine = get(k);
    if (!mine || *mine != v) return false;
  }
  return true;
}

void TimeSeriesDb::write(const std::string& measurement, const TagSet& tags, Timestamp time,
                         double value) {
  std::lock_guard lock(mu_);
  auto& series = data_[measurement][tags.canonical()];
  if (series.points.empty()) series.tags = tags;
  if (!series.points.empty() && time < series.points.back().time) series.sorted = false;
  series.points.push_back(DataPoint{time, value});
  ++points_;
  if (wal_ != nullptr) wal_->append(measurement, tags, time, value);
}

void TimeSeriesDb::collect(const Series& s, Timestamp t0, Timestamp t1,
                           std::vector<double>& out) {
  if (s.sorted) {
    auto lo = std::lower_bound(s.points.begin(), s.points.end(), t0,
                               [](const DataPoint& p, Timestamp t) { return p.time < t; });
    for (auto it = lo; it != s.points.end() && it->time < t1; ++it) out.push_back(it->value);
  } else {
    for (const auto& p : s.points) {
      if (p.time >= t0 && p.time < t1) out.push_back(p.value);
    }
  }
}

AggregateResult TimeSeriesDb::summarize(std::vector<double>& values) {
  AggregateResult r;
  if (values.empty()) return r;
  std::sort(values.begin(), values.end());
  r.count = values.size();
  r.min = values.front();
  r.max = values.back();
  double sum = 0.0;
  for (const double v : values) sum += v;
  r.mean = sum / static_cast<double>(values.size());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 < values.size()) return values[i] * (1.0 - frac) + values[i + 1] * frac;
    return values[i];
  };
  r.median = quantile(0.5);
  r.p95 = quantile(0.95);
  r.p99 = quantile(0.99);
  return r;
}

AggregateResult TimeSeriesDb::aggregate(const std::string& measurement, const TagSet& filter,
                                        Timestamp t0, Timestamp t1) const {
  std::vector<double> values;
  {
    std::lock_guard lock(mu_);
    const auto m = data_.find(measurement);
    if (m != data_.end()) {
      for (const auto& [key, series] : m->second) {
        if (series.tags.matches(filter)) collect(series, t0, t1, values);
      }
    }
  }
  return summarize(values);
}

std::vector<WindowResult> TimeSeriesDb::window_aggregate(const std::string& measurement,
                                                         const TagSet& filter, Timestamp t0,
                                                         Timestamp t1, Duration step) const {
  std::vector<WindowResult> out;
  if (step.ns <= 0) return out;
  const auto nwindows = static_cast<std::size_t>((t1.ns - t0.ns + step.ns - 1) / step.ns);
  std::vector<std::vector<double>> buckets(nwindows);
  {
    std::lock_guard lock(mu_);
    const auto m = data_.find(measurement);
    if (m != data_.end()) {
      for (const auto& [key, series] : m->second) {
        if (!series.tags.matches(filter)) continue;
        for (const auto& p : series.points) {
          if (p.time < t0 || p.time >= t1) continue;
          buckets[static_cast<std::size_t>((p.time.ns - t0.ns) / step.ns)].push_back(p.value);
        }
      }
    }
  }
  for (std::size_t i = 0; i < nwindows; ++i) {
    if (buckets[i].empty()) continue;
    WindowResult w;
    w.window_start = Timestamp{t0.ns + static_cast<std::int64_t>(i) * step.ns};
    w.stats = summarize(buckets[i]);
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<GroupResult> TimeSeriesDb::group_by(const std::string& measurement,
                                                const std::string& tag_key, const TagSet& filter,
                                                Timestamp t0, Timestamp t1) const {
  std::map<std::string, std::vector<double>> groups;
  {
    std::lock_guard lock(mu_);
    const auto m = data_.find(measurement);
    if (m != data_.end()) {
      for (const auto& [key, series] : m->second) {
        if (!series.tags.matches(filter)) continue;
        const auto v = series.tags.get(tag_key);
        if (!v) continue;
        collect(series, t0, t1, groups[*v]);
      }
    }
  }
  std::vector<GroupResult> out;
  out.reserve(groups.size());
  for (auto& [value, samples] : groups) {
    GroupResult g;
    g.tag_value = value;
    g.stats = summarize(samples);
    out.push_back(std::move(g));
  }
  return out;
}

std::size_t TimeSeriesDb::downsample(const std::string& src, const std::string& dst,
                                     Duration window, const std::string& stat) {
  if (window.ns <= 0 || src == dst) return 0;
  struct Out {
    TagSet tags;
    Timestamp time;
    double value;
  };
  std::vector<Out> pending;
  {
    std::lock_guard lock(mu_);
    const auto m = data_.find(src);
    if (m == data_.end()) return 0;
    for (const auto& [key, series] : m->second) {
      // Bucket this series' points by window index.
      std::map<std::int64_t, std::vector<double>> buckets;
      for (const auto& p : series.points) {
        const std::int64_t idx = p.time.ns >= 0
                                     ? p.time.ns / window.ns
                                     : (p.time.ns - window.ns + 1) / window.ns;
        buckets[idx].push_back(p.value);
      }
      for (auto& [idx, values] : buckets) {
        const AggregateResult r = summarize(values);
        double v = r.mean;
        if (stat == "median") v = r.median;
        else if (stat == "min") v = r.min;
        else if (stat == "max") v = r.max;
        else if (stat == "p99") v = r.p99;
        else if (stat == "count") v = static_cast<double>(r.count);
        pending.push_back(Out{series.tags, Timestamp{idx * window.ns}, v});
      }
    }
  }
  for (const auto& o : pending) write(dst, o.tags, o.time, o.value);
  return pending.size();
}

std::size_t TimeSeriesDb::enforce_retention(Timestamp now, Duration horizon,
                                            const std::vector<std::string>& only_measurements) {
  const Timestamp cutoff = now - horizon;
  std::size_t dropped = 0;
  std::lock_guard lock(mu_);
  for (auto& [name, series_map] : data_) {
    if (!only_measurements.empty() &&
        std::find(only_measurements.begin(), only_measurements.end(), name) ==
            only_measurements.end()) {
      continue;
    }
    for (auto it = series_map.begin(); it != series_map.end();) {
      auto& points = it->second.points;
      const std::size_t before = points.size();
      std::erase_if(points, [&](const DataPoint& p) { return p.time < cutoff; });
      dropped += before - points.size();
      if (points.empty()) {
        it = series_map.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::size_t TimeSeriesDb::series_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, series_map] : data_) n += series_map.size();
  return n;
}

std::uint64_t TimeSeriesDb::points_written() const {
  std::lock_guard lock(mu_);
  return points_;
}

}  // namespace ruru
