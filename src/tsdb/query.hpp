#pragma once
// TsdbEngine: the production serving side of the paper's InfluxDB role.
//
// Storage model
//   * Series identity is (measurement_id:u32, tag_fingerprint:u64) on
//     interned ids (series_index.hpp); the per-point ingest path carries
//     only a SeriesId — no strings, no canonicalization, no std::map.
//   * Points live in Gorilla-compressed chunks (chunk.hpp): one open
//     ChunkWriter per series plus a list of immutable SealedChunks.
//     A chunk seals when it reaches `chunk_points` or its timestamp
//     leaves the current time partition.
//   * Series are spread over N shards by series-id hash (the same
//     discipline as the flow table and bus fan-in lanes).  Ingest locks
//     only the owning shard; a query holds a shard lock just long
//     enough to copy sealed-chunk pointers and snapshot the open chunk,
//     then decodes lock-free.  Ingest never serializes behind a scan.
//
// Query model
//   aggregate / window_aggregate / group_by / downsample iterate the
//   compressed chunks directly (decode-on-scan; no materialized
//   vector<double> per series) and reproduce the legacy TimeSeriesDb
//   results exactly: summarize() sorts before accumulating, so results
//   are independent of decode order and the uncompressed store doubles
//   as a bit-for-bit oracle in the parity suite.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/chunk.hpp"
#include "tsdb/series_index.hpp"
#include "tsdb/tsdb.hpp"
#include "util/time.hpp"

namespace ruru {

class Wal;

struct TsdbOptions {
  /// Series shards (rounded up to a power of two, clamped to [1, 256]).
  std::size_t shards = 8;
  /// Seal the open chunk at this many points.
  std::uint32_t chunk_points = 512;
  /// Time-partition width; a point outside the open chunk's partition
  /// seals it.  <= 0 disables time partitioning.
  Duration partition = Duration::from_sec(600.0);
};

class TsdbEngine {
 public:
  explicit TsdbEngine(TsdbOptions options = {});

  TsdbEngine(const TsdbEngine&) = delete;
  TsdbEngine& operator=(const TsdbEngine&) = delete;

  /// Attach a write-ahead log: every append is mirrored into it.
  void attach_wal(Wal* wal) { wal_ = wal; }

  /// Resolves (measurement, tags) to a stable series handle.  Cold path:
  /// call once per distinct series, then append() per point.
  SeriesId series(std::string_view measurement, const TagSet& tags) {
    return index_.resolve(measurement, tags);
  }

  /// Hot ingest path: no strings, locks only the owning shard.
  void append(SeriesId sid, Timestamp time, double value);

  /// Legacy-compatible ingest (resolve + append in one call).
  void write(const std::string& measurement, const TagSet& tags, Timestamp time, double value) {
    append(index_.resolve(measurement, tags), time, value);
  }

  /// Stats over [t0, t1) for points whose tags match `filter`.
  [[nodiscard]] AggregateResult aggregate(const std::string& measurement, const TagSet& filter,
                                          Timestamp t0, Timestamp t1) const;

  /// Fixed-width windows over [t0, t1); empty windows are omitted.
  [[nodiscard]] std::vector<WindowResult> window_aggregate(const std::string& measurement,
                                                           const TagSet& filter, Timestamp t0,
                                                           Timestamp t1, Duration step) const;

  /// Group matching series by the value of `tag_key`.
  [[nodiscard]] std::vector<GroupResult> group_by(const std::string& measurement,
                                                  const std::string& tag_key,
                                                  const TagSet& filter, Timestamp t0,
                                                  Timestamp t1) const;

  /// Continuous-query rollup: same contract as TimeSeriesDb::downsample.
  std::size_t downsample(const std::string& src, const std::string& dst, Duration window,
                         const std::string& stat = "mean");

  /// Drops points older than `horizon` before `now`; whole sealed chunks
  /// below the cutoff drop in O(1), straddling chunks are rewritten.
  std::size_t enforce_retention(Timestamp now, Duration horizon,
                                const std::vector<std::string>& only_measurements = {});

  /// Series currently holding at least one point (legacy semantics).
  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::uint64_t points_written() const {
    return points_.load(std::memory_order_relaxed);
  }

  struct StorageStats {
    std::uint64_t points = 0;        ///< resident (after retention)
    std::uint64_t bytes = 0;         ///< compressed bytes, open + sealed
    std::uint64_t sealed_chunks = 0;
    std::uint64_t open_chunks = 0;
    [[nodiscard]] double bytes_per_point() const {
      return points == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(points);
    }
  };
  [[nodiscard]] StorageStats storage_stats() const;

  [[nodiscard]] const SeriesIndex& index() const { return index_; }

 private:
  struct SeriesStore {
    ChunkWriter open;
    std::int64_t partition_start = 0;
    std::vector<std::shared_ptr<const SealedChunk>> sealed;
  };

  struct Shard {
    mutable std::mutex mu;
    // Indexed directly by SeriesId (ids are dense); entries for ids
    // owned by other shards stay null.  O(1) store lookup per append.
    std::vector<std::unique_ptr<SeriesStore>> stores;

    [[nodiscard]] SeriesStore* find(SeriesId sid) const {
      return sid < stores.size() ? stores[sid].get() : nullptr;
    }
    SeriesStore& find_or_create(SeriesId sid);
  };

  /// Point-in-time view of one series' chunks, decodable without locks.
  struct SeriesSnapshot {
    std::vector<std::shared_ptr<const SealedChunk>> sealed;
    std::vector<std::uint8_t> open_bytes;
    std::uint32_t open_count = 0;
    std::int64_t open_min = 0;
    std::int64_t open_max = 0;
  };

  // Fibonacci-hash the dense ids; the 64-bit intermediate keeps the
  // shift defined when shard_shift_ is 32 (single-shard config).
  [[nodiscard]] std::size_t shard_index(SeriesId sid) const {
    const std::uint64_t h = (static_cast<std::uint64_t>(sid) * 0x9E3779B9ull) & 0xFFFF'FFFFull;
    return static_cast<std::size_t>(h >> shard_shift_);
  }
  [[nodiscard]] Shard& shard_of(SeriesId sid) { return *shards_[shard_index(sid)]; }
  [[nodiscard]] const Shard& shard_of(SeriesId sid) const { return *shards_[shard_index(sid)]; }

  void snapshot_series(SeriesId sid, SeriesSnapshot& out) const;

  /// Invokes fn(ts, value) for every point of `snap` with t0 <= ts < t1.
  template <typename Fn>
  static void scan(const SeriesSnapshot& snap, Timestamp t0, Timestamp t1, Fn&& fn);

  /// Matching series ids for (measurement, filter); false when the
  /// measurement or a filter string is unknown (nothing can match).
  bool matching_series(const std::string& measurement, const TagSet& filter,
                       std::vector<SeriesId>& out) const;

  TsdbOptions options_;
  SeriesIndex index_;
  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned shard_shift_ = 32;
  std::atomic<std::uint64_t> points_{0};
  Wal* wal_ = nullptr;
};

}  // namespace ruru
