#include "viz/ws_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "viz/websocket.hpp"

namespace ruru {

namespace {

bool send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until "\r\n\r\n" or `max` bytes; returns the header block.
Result<std::string> read_http_headers(int fd, std::size_t max = 8192) {
  std::string buf;
  char chunk[512];
  while (buf.size() < max) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return make_error("ws: connection closed during handshake");
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.find("\r\n\r\n") != std::string::npos) return buf;
  }
  return make_error("ws: oversized handshake request");
}

/// Case-insensitive header lookup in a raw HTTP block.
std::string find_header(const std::string& block, std::string_view name) {
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
  };
  const std::string haystack = lower(block);
  const std::string needle = lower(std::string(name)) + ":";
  const std::size_t pos = haystack.find(needle);
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + needle.size();
  const std::size_t end = block.find("\r\n", start);
  std::string value = block.substr(start, end - start);
  const std::size_t first = value.find_first_not_of(' ');
  const std::size_t last = value.find_last_not_of(' ');
  if (first == std::string::npos) return {};
  return value.substr(first, last - first + 1);
}

}  // namespace

WsServer::~WsServer() { close(); }

Status WsServer::bind(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return make_error("ws: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error("ws: bind/listen failed: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  return {};
}

void WsServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;
    }
    if (perform_upgrade(fd)) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      // A stalled browser tab must not stall the feed: bounded sends,
      // then the client is dropped.
      timeval send_timeout{0, 100'000};
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof send_timeout);
      std::lock_guard lock(mu_);
      clients_.push_back(fd);
      upgrades_.fetch_add(1);
    } else {
      rejected_.fetch_add(1);
      ::close(fd);
    }
  }
}

bool WsServer::perform_upgrade(int fd) {
  auto request = read_http_headers(fd);
  if (!request) return false;
  const std::string& req = request.value();
  if (req.rfind("GET ", 0) != 0) return false;
  const std::string key = find_header(req, "Sec-WebSocket-Key");
  const std::string upgrade = find_header(req, "Upgrade");
  if (key.empty() || upgrade.find("websocket") == std::string::npos) {
    const char* bad = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n";
    send_all(fd, bad, std::strlen(bad));
    return false;
  }
  const std::string response = "HTTP/1.1 101 Switching Protocols\r\n"
                               "Upgrade: websocket\r\n"
                               "Connection: Upgrade\r\n"
                               "Sec-WebSocket-Accept: " +
                               websocket_accept_key(key) + "\r\n\r\n";
  return send_all(fd, response.data(), response.size());
}

std::size_t WsServer::broadcast_text(std::string_view payload) {
  const auto frame = ws_encode_text(payload);
  std::lock_guard lock(mu_);
  std::size_t reached = 0;
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (send_all(*it, frame.data(), frame.size())) {
      ++reached;
      ++it;
    } else {
      ::close(*it);
      it = clients_.erase(it);
    }
  }
  return reached;
}

std::size_t WsServer::client_count() const {
  std::lock_guard lock(mu_);
  return clients_.size();
}

void WsServer::close() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(mu_);
  for (const int fd : clients_) ::close(fd);
  clients_.clear();
  listen_fd_ = -1;
}

Result<int> ws_client_connect(const std::string& host, std::uint16_t port,
                              const std::string& key) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return make_error("ws-client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return make_error("ws-client: connect failed");
  }
  const std::string request = "GET /live HTTP/1.1\r\n"
                              "Host: " + host + "\r\n"
                              "Upgrade: websocket\r\n"
                              "Connection: Upgrade\r\n"
                              "Sec-WebSocket-Key: " + key + "\r\n"
                              "Sec-WebSocket-Version: 13\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    return make_error("ws-client: handshake send failed");
  }
  auto response = read_http_headers(fd);
  if (!response) {
    ::close(fd);
    return make_error(response.error());
  }
  const std::string expected = websocket_accept_key(key);
  if (response.value().find("101") == std::string::npos ||
      response.value().find(expected) == std::string::npos) {
    ::close(fd);
    return make_error("ws-client: upgrade rejected");
  }
  return fd;
}

Result<std::string> ws_client_recv_text(int fd, std::vector<std::uint8_t>& carry) {
  std::uint8_t chunk[4096];
  while (carry.size() < (1u << 20)) {
    if (auto frame = ws_decode_frame(carry)) {
      std::string payload(frame->payload.begin(), frame->payload.end());
      carry.erase(carry.begin(), carry.begin() + static_cast<std::ptrdiff_t>(frame->wire_size));
      return payload;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return make_error("ws-client: connection closed");
    }
    carry.insert(carry.end(), chunk, chunk + n);
  }
  return make_error("ws-client: frame too large");
}

}  // namespace ruru
