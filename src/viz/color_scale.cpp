#include "viz/color_scale.hpp"

namespace ruru {

std::string_view to_string(ArcColor c) {
  switch (c) {
    case ArcColor::kGreen: return "green";
    case ArcColor::kYellow: return "yellow";
    case ArcColor::kOrange: return "orange";
    case ArcColor::kRed: return "red";
  }
  return "?";
}

std::string_view to_css(ArcColor c) {
  switch (c) {
    case ArcColor::kGreen: return "#2ecc71";
    case ArcColor::kYellow: return "#f1c40f";
    case ArcColor::kOrange: return "#e67e22";
    case ArcColor::kRed: return "#e74c3c";
  }
  return "#000000";
}

}  // namespace ruru
