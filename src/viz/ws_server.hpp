#pragma once
// Minimal WebSocket push server — the transport §2 uses to deliver
// enriched measurements "to the frontend (using WebSockets) that
// displays the results in real-time".
//
// Server-side only, push-only (the map never sends data back except
// pings): accepts TCP connections on loopback, performs the RFC 6455
// HTTP upgrade using websocket_accept_key(), then broadcast()s text
// frames to every upgraded client.  Clients that stall or disconnect
// are dropped, never waited on — same policy as the bus.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/result.hpp"

namespace ruru {

class WsServer {
 public:
  WsServer() = default;
  ~WsServer();
  WsServer(const WsServer&) = delete;
  WsServer& operator=(const WsServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start accepting +
  /// upgrading clients in a background thread.
  Status bind(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Send one text frame to every upgraded client. Returns clients
  /// reached.
  std::size_t broadcast_text(std::string_view payload);

  [[nodiscard]] std::size_t client_count() const;
  [[nodiscard]] std::uint64_t upgrades() const { return upgrades_.load(); }
  [[nodiscard]] std::uint64_t rejected_handshakes() const { return rejected_.load(); }

  void close();

 private:
  void accept_loop();
  /// Reads the HTTP request, validates the upgrade, replies 101.
  bool perform_upgrade(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mu_;
  std::vector<int> clients_;
  std::atomic<std::uint64_t> upgrades_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// Client-side handshake helper for tests/tools: connects, sends the
/// upgrade request with `key`, verifies the accept header. Returns the
/// connected fd or an error.
Result<int> ws_client_connect(const std::string& host, std::uint16_t port,
                              const std::string& key = "dGhlIHNhbXBsZSBub25jZQ==");

/// Blocking read of one WebSocket frame's payload from `fd` (test
/// helper; assumes text frames < 1 MB).  `carry` holds bytes received
/// beyond the returned frame (TCP coalesces frames); pass the same
/// buffer to every call on one connection.
Result<std::string> ws_client_recv_text(int fd, std::vector<std::uint8_t>& carry);

}  // namespace ruru
