#pragma once
// Terminal fallback for the live map: renders arcs onto a lat/lon
// character grid with per-cell worst-color dominance.  Useful for the
// examples and for eyeballing a pipeline without a browser.

#include <string>

#include "viz/arc_aggregator.hpp"

namespace ruru {

class AsciiMap {
 public:
  AsciiMap(int width = 100, int height = 30) : width_(width), height_(height) {}

  /// Renders endpoints (o) and great-circle-ish straight arc lines,
  /// colored by worst latency bucket: '.' green, '+' yellow, '*' orange,
  /// '#' red.
  [[nodiscard]] std::string render(const ArcFrame& frame) const;

 private:
  [[nodiscard]] int col(double lon) const;
  [[nodiscard]] int row(double lat) const;

  int width_;
  int height_;
};

}  // namespace ruru
