#include "viz/heatmap.hpp"

#include <algorithm>
#include <cstdio>

namespace ruru {

LatencyHeatmap::LatencyHeatmap(Duration time_bucket, std::vector<Duration> band_edges)
    : time_bucket_(time_bucket), edges_(std::move(band_edges)) {
  std::sort(edges_.begin(), edges_.end());
}

LatencyHeatmap LatencyHeatmap::with_default_bands(Duration time_bucket) {
  return LatencyHeatmap(time_bucket,
                        {Duration::from_ms(50), Duration::from_ms(100), Duration::from_ms(150),
                         Duration::from_ms(200), Duration::from_ms(300), Duration::from_ms(600),
                         Duration::from_ms(1000), Duration::from_ms(4000)});
}

std::size_t LatencyHeatmap::band_for(Duration latency) const {
  std::size_t band = 0;
  for (const auto& edge : edges_) {
    if (latency < edge) break;
    ++band;
  }
  return band;
}

void LatencyHeatmap::add(Timestamp t, Duration latency) {
  const std::int64_t bucket = t.ns / time_bucket_.ns;
  auto& counts = cells_[bucket];
  if (counts.empty()) counts.resize(band_count(), 0);
  ++counts[band_for(latency)];
  ++total_;
}

std::uint64_t LatencyHeatmap::count_at(Timestamp t, std::size_t band) const {
  const auto it = cells_.find(t.ns / time_bucket_.ns);
  if (it == cells_.end() || band >= it->second.size()) return 0;
  return it->second[band];
}

std::string LatencyHeatmap::band_label(std::size_t band) const {
  char buf[40];
  if (edges_.empty()) return "all";
  if (band == 0) {
    std::snprintf(buf, sizeof buf, "   <%5.0fms", edges_.front().to_ms());
  } else if (band >= edges_.size()) {
    std::snprintf(buf, sizeof buf, "  >=%5.0fms", edges_.back().to_ms());
  } else {
    std::snprintf(buf, sizeof buf, "%4.0f-%4.0fms", edges_[band - 1].to_ms(),
                  edges_[band].to_ms());
  }
  return buf;
}

std::string LatencyHeatmap::render_ascii(Timestamp t0, Timestamp t1) const {
  const std::int64_t first = t0.ns / time_bucket_.ns;
  const std::int64_t last = (t1.ns + time_bucket_.ns - 1) / time_bucket_.ns;
  const auto cols = static_cast<std::size_t>(std::max<std::int64_t>(0, last - first));
  if (cols == 0) return "(empty interval)\n";

  // Column maxima for normalization.
  std::vector<std::uint64_t> col_max(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) {
    const auto it = cells_.find(first + static_cast<std::int64_t>(c));
    if (it == cells_.end()) continue;
    for (const auto v : it->second) col_max[c] = std::max(col_max[c], v);
  }

  static const char kGlyphs[] = " .:-=+*#%@";
  std::string out;
  for (std::size_t band = band_count(); band-- > 0;) {
    out += band_label(band);
    out += " |";
    for (std::size_t c = 0; c < cols; ++c) {
      const auto it = cells_.find(first + static_cast<std::int64_t>(c));
      const std::uint64_t v =
          it != cells_.end() && band < it->second.size() ? it->second[band] : 0;
      if (v == 0 || col_max[c] == 0) {
        out += ' ';
      } else {
        const std::size_t idx =
            1 + (v * 8) / col_max[c];  // 1..9
        out += kGlyphs[std::min<std::size_t>(idx, 9)];
      }
    }
    out += '\n';
  }
  out += "            +";
  out.append(cols, '-');
  out += '\n';
  return out;
}

}  // namespace ruru
