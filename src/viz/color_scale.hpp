#pragma once
// Latency -> arc color mapping for the live 3D map.
//
// §3: "red lines in areas where most lines are green show increased
// latency for some connections".  Buckets are configurable; defaults
// follow common user-experience bands.

#include <string_view>

#include "util/time.hpp"

namespace ruru {

enum class ArcColor : int { kGreen = 0, kYellow, kOrange, kRed };

[[nodiscard]] std::string_view to_string(ArcColor c);
/// CSS hex color the WebGL frontend applies.
[[nodiscard]] std::string_view to_css(ArcColor c);

struct ColorThresholds {
  Duration yellow = Duration::from_ms(150);
  Duration orange = Duration::from_ms(300);
  Duration red = Duration::from_ms(600);
};

class ColorScale {
 public:
  explicit ColorScale(ColorThresholds thresholds = {}) : t_(thresholds) {}

  [[nodiscard]] ArcColor bucket(Duration total_latency) const {
    if (total_latency >= t_.red) return ArcColor::kRed;
    if (total_latency >= t_.orange) return ArcColor::kOrange;
    if (total_latency >= t_.yellow) return ArcColor::kYellow;
    return ArcColor::kGreen;
  }

 private:
  ColorThresholds t_;
};

}  // namespace ruru
