#include "viz/ascii_map.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ruru {

int AsciiMap::col(double lon) const {
  const double t = (lon + 180.0) / 360.0;
  return std::clamp(static_cast<int>(t * (width_ - 1)), 0, width_ - 1);
}

int AsciiMap::row(double lat) const {
  const double t = (90.0 - lat) / 180.0;
  return std::clamp(static_cast<int>(t * (height_ - 1)), 0, height_ - 1);
}

std::string AsciiMap::render(const ArcFrame& frame) const {
  // cell value: -1 empty, 0..3 color rank, 4 endpoint
  std::vector<int> grid(static_cast<std::size_t>(width_) * height_, -1);
  auto cell = [&](int r, int c) -> int& {
    return grid[static_cast<std::size_t>(r) * width_ + c];
  };
  auto stamp = [&](int r, int c, int rank) {
    int& v = cell(r, c);
    if (rank > v) v = rank;
  };

  for (const Arc& a : frame.arcs) {
    const int r0 = row(a.src_lat), c0 = col(a.src_lon);
    const int r1 = row(a.dst_lat), c1 = col(a.dst_lon);
    const int rank = static_cast<int>(a.color);
    // Bresenham line between the endpoints.
    int dr = std::abs(r1 - r0), dc = std::abs(c1 - c0);
    int sr = r0 < r1 ? 1 : -1, sc = c0 < c1 ? 1 : -1;
    int err = dc - dr, r = r0, c = c0;
    while (true) {
      stamp(r, c, rank);
      if (r == r1 && c == c1) break;
      const int e2 = 2 * err;
      if (e2 > -dr) {
        err -= dr;
        c += sc;
      }
      if (e2 < dc) {
        err += dc;
        r += sr;
      }
    }
    stamp(r0, c0, 4);
    stamp(r1, c1, 4);
  }

  static const char kGlyphs[] = {'.', '+', '*', '#', 'o'};
  std::string out;
  out.reserve(static_cast<std::size_t>((width_ + 1)) * height_);
  for (int r = 0; r < height_; ++r) {
    for (int c = 0; c < width_; ++c) {
      const int v = cell(r, c);
      out.push_back(v < 0 ? ' ' : kGlyphs[v]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace ruru
