#pragma once
// JSON wire encoding of arc frames and stats documents — the payload the
// WebGL map and Grafana-style panels consume over WebSockets.

#include <string>

#include "analytics/aggregator.hpp"
#include "util/json_writer.hpp"
#include "viz/arc_aggregator.hpp"

namespace ruru {

class FrameEncoder {
 public:
  /// {"type":"arc_frame","seq":N,"t":sec,"samples":N,"arcs":[...]}
  [[nodiscard]] std::string encode(const ArcFrame& frame);

  /// {"type":"pair_stats","pairs":[{"key":..,"count":..,"median_ms":..},..]}
  [[nodiscard]] std::string encode_pair_stats(const std::vector<PairSummary>& pairs,
                                              std::size_t top_n = 50);

 private:
  JsonWriter writer_;  // reused buffer between frames
};

}  // namespace ruru
