#pragma once
// Grafana-role text dashboard.
//
// §2: "the Grafana UI also shows statistics and graphs of the measured
// end-to-end latency (e.g., min, max, median, mean) for a required time
// interval".  This module renders those panels from TSDB engine
// queries as fixed-width text: a windowed latency graph (unicode or
// ascii bars), a stats strip, and a top-pairs table.  Examples and
// operators get the Grafana experience in a terminal.

#include <string>

#include "analytics/aggregator.hpp"
#include "tsdb/query.hpp"

namespace ruru {

struct DashboardOptions {
  int graph_width = 72;       ///< columns for the time axis
  int graph_height = 8;       ///< rows for the value axis
  bool ascii_only = false;    ///< '#' bars instead of unicode blocks
  std::size_t top_pairs = 10;
};

class Dashboard {
 public:
  Dashboard(const TsdbEngine& db, DashboardOptions options = {})
      : db_(db), options_(options) {}

  /// Windowed graph of `stat` ("median"|"mean"|"max"|"p99") of
  /// `measurement` over [t0, t1), `windows` buckets wide.
  [[nodiscard]] std::string render_graph(const std::string& measurement, const TagSet& filter,
                                         Timestamp t0, Timestamp t1,
                                         const std::string& stat = "median") const;

  /// One-line min/median/mean/p95/p99/max strip for an interval.
  [[nodiscard]] std::string render_stats_strip(const std::string& measurement,
                                               const TagSet& filter, Timestamp t0,
                                               Timestamp t1) const;

  /// Top-N pair table (from a LatencyAggregator snapshot).
  [[nodiscard]] std::string render_pair_table(const std::vector<PairSummary>& pairs) const;

 private:
  [[nodiscard]] static double pick_stat(const AggregateResult& r, const std::string& stat);

  const TsdbEngine& db_;
  DashboardOptions options_;
};

}  // namespace ruru
